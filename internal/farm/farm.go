// Package farm scales the COBRA reproduction beyond a single device: it
// owns a pool of independently configured core.Device replicas — each
// device drives its own sim.Machine, which is not safe for concurrent use
// — and shards non-feedback workloads across them. The paper's Table 1
// splits modes of operation into feedback and non-feedback precisely
// because the latter admit this replication: in counter mode every
// keystream block E(iv+i) is independent, so a message splits into
// contiguous counter ranges that N devices encrypt concurrently. This is
// the software analogue of tiling several COBRA parts on a board, and the
// same data-parallel mapping the related work applies to replicated SIMON
// cores and programmable-hardware crypto kernels (PAPERS.md).
//
// Jobs are dispatched round-robin over per-worker buffered channels:
// dispatch blocks when a worker's queue is full (backpressure), each job
// carries its caller's context so cancellation and timeouts short-circuit
// queued work, and workers write ciphertext directly into disjoint regions
// of the caller's destination buffer, so reassembly is ordered by
// construction. Round-robin rather than a single shared queue is
// deliberate: the shards of one message are uniform in cost, and a shared
// queue lets whichever goroutine the scheduler wakes first drain several
// shards while its siblings sleep — serializing the simulated wall-clock
// and defeating the scaling measurement this subsystem exists to make.
// Per-worker simulator counters are aggregated into a farm-wide Report
// whose EffectiveMbps is the simulated aggregate throughput the
// cmd/cobra-farm scaling table sweeps.
//
// A Farm implements core.Cipher — the unified API — including the
// feedback mode EncryptCBC, which it serializes onto a single worker
// (Table 1's FB-column penalty made operational). Every farm carries an
// internal/obs registry aggregating its workers' device registries under
// worker="N" labels plus farm-level queue/shard/utilization series;
// attach it to obs.Default via core.Config.Metrics and cobra-farm's
// -metrics flag serves it live.
package farm

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cobra/internal/core"
	"cobra/internal/obs"
	"cobra/internal/sim"
)

// ErrClosed is returned by Encrypt calls made after Close.
var ErrClosed = errors.New("farm: closed")

// DefaultShardBlocks caps a shard at this many 128-bit blocks. Large
// messages therefore split into several jobs per worker, which keeps the
// queue busy (pipelining across shards) at the cost of one pipeline
// fill-and-drain per shard on streaming configurations.
const DefaultShardBlocks = 1024

type mode int

const (
	modeCTR mode = iota
	modeECB
	modeCBC
)

// A job is one contiguous shard of an Encrypt call: a counter range (or
// IV) plus the matching source and destination windows.
type job struct {
	ctx  context.Context
	mode mode
	iv   [16]byte // starting counter block (CTR) or IV (CBC)
	src  []byte
	dst  []byte
	errc chan<- error
}

// workerQueueDepth is each worker's buffered queue capacity; dispatch
// blocks (backpressure) once a worker is this many shards behind.
const workerQueueDepth = 2

// A worker owns one device exclusively; only its goroutine touches dev.
// Its counters live in the farm registry (atomic — Report reads them while
// jobs are in flight), alongside snapshots that let ResetStats rewind the
// report view without disturbing the exported series. fault is a test
// hook: when non-nil it runs before the device and its error is treated
// as the job's outcome.
type worker struct {
	dev    *core.Device
	queue  chan job
	jobs   *obs.Counter
	errs   *obs.Counter
	busyNs *obs.Counter

	jobsSnap atomic.Int64
	busySnap atomic.Int64

	fault func(j *job) error
}

// farmMetrics is the farm-level (not per-worker) instrumentation.
type farmMetrics struct {
	requests  [3]*obs.Counter // indexed by mode
	errsBy    [3]*obs.Counter
	shards    *obs.Counter
	shardSize *obs.Histogram
	queueWait *obs.Timer
}

var modeNames = [3]string{"ctr", "ecb", "cbc"}

func newFarmMetrics(reg *obs.Registry) *farmMetrics {
	m := &farmMetrics{
		shards: reg.Counter("cobra_farm_shards_total",
			"Shards dispatched to worker queues."),
		shardSize: reg.Histogram("cobra_farm_shard_blocks",
			"Size of dispatched shards in 128-bit blocks.", obs.BlockBuckets()),
		queueWait: reg.Timer("cobra_farm_queue_wait_ns",
			"Time dispatch spent handing one shard to a worker queue (backpressure when large)."),
	}
	for i, name := range modeNames {
		l := obs.L("mode", name)
		m.requests[i] = reg.Counter("cobra_farm_requests_total", "Farm-level API calls.", l)
		m.errsBy[i] = reg.Counter("cobra_farm_errors_total", "Farm-level API calls that returned an error.", l)
	}
	return m
}

// Farm is a pool of replicated COBRA devices behind a job queue. Unlike a
// single Device, a Farm is safe for concurrent use: any number of
// goroutines may call EncryptCTR/EncryptECB/EncryptCBC simultaneously and
// their shards interleave across the pool.
type Farm struct {
	alg     core.Algorithm
	mhz     float64
	unroll  int
	rows    int
	workers []*worker
	wg      sync.WaitGroup
	next    atomic.Uint64 // round-robin cursor, advanced once per call

	reg    *obs.Registry
	parent *obs.Registry // detached on Close
	met    *farmMetrics

	mu     sync.RWMutex // serializes Close against job submission
	closed bool
}

// Farm satisfies the unified cipher API (the twin of core's Device
// assertion); farm_test's swap test exercises both through the interface.
var _ core.Cipher = (*Farm)(nil)

// New configures workers identical devices for the algorithm/key pair and
// starts one goroutine per device. The caller must Close the farm to stop
// them. cfg.Metrics names the parent registry the farm's own registry
// (labelled backend="farm", alg=...) attaches to; the workers' device
// registries attach underneath it with worker="N" labels.
func New(alg core.Algorithm, key []byte, cfg core.Config, workers int) (*Farm, error) {
	if workers < 1 {
		return nil, fmt.Errorf("farm: need at least 1 worker, got %d", workers)
	}
	f := &Farm{alg: alg}
	f.reg = obs.NewRegistry(obs.L("backend", "farm"), obs.L("alg", string(alg)))
	if cfg.Trace > 0 {
		f.reg.EnableTrace(cfg.Trace)
	}
	f.met = newFarmMetrics(f.reg)
	wcfg := cfg
	wcfg.Metrics, wcfg.Trace = nil, 0
	for i := 0; i < workers; i++ {
		dev, err := core.Configure(alg, key, wcfg)
		if err != nil {
			return nil, fmt.Errorf("farm: configuring worker %d: %w", i, err)
		}
		wl := obs.L("worker", strconv.Itoa(i))
		f.reg.Attach(dev.Obs(), wl)
		w := &worker{
			dev:   dev,
			queue: make(chan job, workerQueueDepth),
			jobs: f.reg.Counter("cobra_farm_worker_jobs_total",
				"Jobs completed per worker.", wl),
			errs: f.reg.Counter("cobra_farm_worker_errors_total",
				"Jobs that failed (or were cancelled) per worker.", wl),
			busyNs: f.reg.Counter("cobra_farm_worker_busy_ns_total",
				"Wall-clock nanoseconds each worker spent executing jobs (utilization numerator).", wl),
		}
		q := w.queue
		f.reg.GaugeFunc("cobra_farm_queue_depth",
			"Shards waiting in each worker's queue.",
			func() int64 { return int64(len(q)) }, wl)
		f.workers = append(f.workers, w)
	}
	f.reg.Gauge("cobra_farm_workers", "Pool size.").Set(int64(workers))
	// All devices share a geometry and unroll, hence a modeled clock.
	r := f.workers[0].dev.Report()
	f.mhz, f.unroll, f.rows = r.DatapathMHz, r.Unroll, r.Rows
	if cfg.Metrics != nil {
		f.parent = cfg.Metrics
		f.parent.Attach(f.reg)
	}
	for _, w := range f.workers {
		f.wg.Add(1)
		go f.run(w)
	}
	return f, nil
}

// Algorithm returns the configured algorithm.
func (f *Farm) Algorithm() core.Algorithm { return f.alg }

// BlockSize returns the cipher block size in bytes.
func (f *Farm) BlockSize() int { return 16 }

// Workers returns the pool size.
func (f *Farm) Workers() int { return len(f.workers) }

// Obs returns the farm's metrics registry: farm-level series plus every
// worker's device registry under worker="N" labels.
func (f *Farm) Obs() *obs.Registry { return f.reg }

// run is one worker goroutine. The device is used only here — never
// shared between goroutines (the -race regression in race_test.go pins
// this).
func (f *Farm) run(w *worker) {
	defer f.wg.Done()
	for j := range w.queue {
		if err := j.ctx.Err(); err != nil {
			// The caller gave up; skip the simulation, not the reply.
			w.errs.Inc()
			j.errc <- err
			continue
		}
		var err error
		t0 := time.Now()
		if w.fault != nil {
			err = w.fault(&j)
		}
		if err == nil {
			switch j.mode {
			case modeCTR:
				_, err = w.dev.EncryptCTRInto(j.ctx, j.dst, j.iv[:], j.src)
			case modeECB:
				_, err = w.dev.EncryptECBInto(j.ctx, j.dst, j.src)
			case modeCBC:
				_, err = w.dev.EncryptCBCInto(j.ctx, j.dst, j.iv[:], j.src)
			}
		}
		w.busyNs.Add(time.Since(t0).Nanoseconds())
		w.jobs.Inc()
		if err != nil {
			w.errs.Inc()
		}
		j.errc <- err
	}
}

// span is a half-open byte range of one shard.
type span struct{ off, end int }

// shards splits n bytes into contiguous block-aligned spans: one per
// worker when the message is small, capped at DefaultShardBlocks so large
// messages pipeline through the queue.
func (f *Farm) shards(n int) []span {
	nb := (n + 15) / 16
	per := (nb + len(f.workers) - 1) / len(f.workers)
	if per > DefaultShardBlocks {
		per = DefaultShardBlocks
	}
	var out []span
	for off := 0; off < n; off += per * 16 {
		end := off + per*16
		if end > n {
			end = n
		}
		out = append(out, span{off, end})
	}
	return out
}

// dispatch fans the given shards of one call out round-robin over the
// worker queues and waits for every dispatched shard to report back. mk
// fills in the mode-specific job fields for a shard. The round-robin
// cursor advances once per call so concurrent callers start on different
// workers instead of all queueing behind worker 0.
func (f *Farm) dispatch(ctx context.Context, src, dst []byte, shards []span, mk func(span) (job, error)) error {
	if len(src) == 0 {
		return ctx.Err()
	}
	f.mu.RLock()
	if f.closed {
		f.mu.RUnlock()
		return ErrClosed
	}
	errc := make(chan error, len(shards))
	start := int(f.next.Add(1) - 1)
	sent := 0
	var firstErr error
	for i, s := range shards {
		j, err := mk(s)
		if err != nil {
			firstErr = err
			break
		}
		j.ctx, j.src, j.dst, j.errc = ctx, src[s.off:s.end], dst[s.off:s.end], errc
		w := f.workers[(start+i)%len(f.workers)]
		sp := f.met.queueWait.Start()
		select {
		case w.queue <- j:
			sp.End()
			sent++
			f.met.shards.Inc()
			f.met.shardSize.Observe(int64((s.end - s.off + 15) / 16))
		case <-ctx.Done():
			sp.End()
			firstErr = ctx.Err()
		}
		if firstErr != nil {
			break
		}
	}
	f.mu.RUnlock()
	// Drain every dispatched shard, even after an error: workers always
	// reply, so this cannot deadlock, and it keeps dst ownership clean.
	for i := 0; i < sent; i++ {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// finish closes out one farm-level call's accounting.
func (f *Farm) finish(md mode, err error) {
	if err != nil {
		f.met.errsBy[md].Inc()
	}
}

// EncryptCTR encrypts src in counter mode with initial counter block iv
// (16 bytes), sharding the counter range across the pool: shard k starting
// at block offset b is keyed by counter iv+b, so the farm's output is
// byte-identical to a single device's EncryptCTR. src may end in a partial
// block. ctx cancels or times out the call; queued shards short-circuit,
// and the in-flight ones finish their simulation before the call returns.
func (f *Farm) EncryptCTR(ctx context.Context, iv, src []byte) ([]byte, error) {
	f.met.requests[modeCTR].Inc()
	if len(iv) != 16 {
		f.met.errsBy[modeCTR].Inc()
		return nil, fmt.Errorf("farm: iv must be 16 bytes")
	}
	dst := make([]byte, len(src))
	err := f.dispatch(ctx, src, dst, f.shards(len(src)), func(s span) (job, error) {
		ctr, err := core.AddCounter(iv, uint64(s.off/16))
		if err != nil {
			return job{}, err
		}
		return job{mode: modeCTR, iv: ctr}, nil
	})
	f.finish(modeCTR, err)
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// DecryptCTR inverts EncryptCTR; counter mode is an involution.
func (f *Farm) DecryptCTR(ctx context.Context, iv, src []byte) ([]byte, error) {
	return f.EncryptCTR(ctx, iv, src)
}

// EncryptECB encrypts src (a multiple of 16 bytes) in electronic-codebook
// mode, sharding by block range — ECB is the paper's measurement mode and
// the other non-feedback workload of Table 1.
func (f *Farm) EncryptECB(ctx context.Context, src []byte) ([]byte, error) {
	f.met.requests[modeECB].Inc()
	if len(src)%16 != 0 {
		f.met.errsBy[modeECB].Inc()
		return nil, fmt.Errorf("farm: input length %d is not a multiple of the block size", len(src))
	}
	dst := make([]byte, len(src))
	err := f.dispatch(ctx, src, dst, f.shards(len(src)), func(span) (job, error) {
		return job{mode: modeECB}, nil
	})
	f.finish(modeECB, err)
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// EncryptCBC encrypts src in cipher-block-chaining mode. CBC is a
// feedback mode — each block depends on the previous ciphertext — so the
// message cannot shard: the whole call is a single job serialized onto
// one worker (chosen round-robin), and throughput degrades to a single
// device's fill+drain-per-block rate exactly as the paper's Table 1 FB
// column predicts. The farm still provides it so the unified Cipher
// surface is mode-complete on every backend.
func (f *Farm) EncryptCBC(ctx context.Context, iv, src []byte) ([]byte, error) {
	f.met.requests[modeCBC].Inc()
	if len(iv) != 16 {
		f.met.errsBy[modeCBC].Inc()
		return nil, fmt.Errorf("farm: iv must be 16 bytes")
	}
	if len(src)%16 != 0 {
		f.met.errsBy[modeCBC].Inc()
		return nil, fmt.Errorf("farm: input length %d is not a multiple of the block size", len(src))
	}
	dst := make([]byte, len(src))
	var ivb [16]byte
	copy(ivb[:], iv)
	err := f.dispatch(ctx, src, dst, []span{{0, len(src)}}, func(span) (job, error) {
		return job{mode: modeCBC, iv: ivb}, nil
	})
	f.finish(modeCBC, err)
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// QueueDepth returns the number of shards currently waiting in worker
// queues (the sum of the per-worker cobra_farm_queue_depth gauges). It
// is the admission signal cmd/cobrad sheds load on: at QueueCapacity the
// next dispatch would block on backpressure, so a server can answer BUSY
// instead of queueing behind it.
func (f *Farm) QueueDepth() int {
	n := 0
	for _, w := range f.workers {
		n += len(w.queue)
	}
	return n
}

// QueueCapacity returns the total buffered shard capacity of the worker
// queues — the saturation point of QueueDepth.
func (f *Farm) QueueCapacity() int { return len(f.workers) * workerQueueDepth }

// UsesFastpath reports whether the pool's devices serve bulk encryption
// on the trace-compiled executor (the workers are replicas, so one
// answer covers the pool).
func (f *Farm) UsesFastpath() bool { return f.workers[0].dev.UsesFastpath() }

// Close shuts the worker queues, waits for the workers to drain, and
// detaches the farm's registry from its Config.Metrics parent so a closed
// farm stops appearing in /metrics. Encrypt calls already dispatching
// finish normally; calls made after Close return ErrClosed. Close is
// idempotent.
func (f *Farm) Close() error {
	f.mu.Lock()
	wasClosed := f.closed
	if !f.closed {
		f.closed = true
		for _, w := range f.workers {
			close(w.queue)
		}
	}
	f.mu.Unlock()
	f.wg.Wait()
	if !wasClosed && f.parent != nil {
		f.parent.Detach(f.reg)
	}
	return nil
}

// WorkerReport is one worker's accumulated counters.
type WorkerReport struct {
	Jobs   int       `json:"jobs"`
	BusyNs int64     `json:"busy_ns"`
	Stats  sim.Stats `json:"stats"`
}

// Report aggregates the pool's counters: the backend-independent
// core.Summary (Stats totals the workers; ThroughputMbps is the simulated
// aggregate rate) plus the farm-only breakdown. With every device clocked
// alike, WallCycles — the busiest worker's datapath cycles — is the
// simulated wall-clock of the farm, so EffectiveMbps = output bits /
// (WallCycles / DatapathMHz) is the aggregate simulated throughput: N
// ideally-scaling workers multiply a single device's Table 3 rate by N.
// Field names and JSON tags are a stable reporting surface (pinned by the
// golden test in report_test.go).
type Report struct {
	core.Summary
	PerWorker  []WorkerReport `json:"per_worker"`
	WallCycles int            `json:"wall_cycles"`
	// EffectiveMbps duplicates Summary.ThroughputMbps under the farm's
	// historical name.
	EffectiveMbps float64 `json:"effective_mbps"`
}

// Report snapshots the farm-wide counters; safe to call while jobs are in
// flight (every input is an atomic registry counter).
func (f *Farm) Report() Report {
	r := Report{Summary: core.Summary{
		Algorithm:   f.alg,
		Backend:     "farm",
		Workers:     len(f.workers),
		Unroll:      f.unroll,
		Rows:        f.rows,
		DatapathMHz: f.mhz,
	}}
	for _, w := range f.workers {
		wr := WorkerReport{
			Jobs:   int(w.jobs.Value() - w.jobsSnap.Load()),
			BusyNs: w.busyNs.Value() - w.busySnap.Load(),
			Stats:  w.dev.Report().Stats,
		}
		r.PerWorker = append(r.PerWorker, wr)
		r.Stats.Add(wr.Stats)
		if wr.Stats.Cycles > r.WallCycles {
			r.WallCycles = wr.Stats.Cycles
		}
	}
	if r.Stats.BlocksOut > 0 {
		r.CyclesPerBlock = float64(r.Stats.Cycles) / float64(r.Stats.BlocksOut)
	}
	if r.WallCycles > 0 {
		r.EffectiveMbps = float64(r.Stats.BlocksOut) * 128 * f.mhz / float64(r.WallCycles)
	}
	r.ThroughputMbps = r.EffectiveMbps
	return r
}

// Summary returns the backend-independent view of Report (the Cipher
// accessor).
func (f *Farm) Summary() core.Summary { return f.Report().Summary }

// ResetStats zeroes every worker's counters between measurement phases.
// Safe while jobs are in flight: each reset is a snapshot of atomic
// counters, and the exported /metrics series stay monotonic.
func (f *Farm) ResetStats() {
	for _, w := range f.workers {
		w.jobsSnap.Store(w.jobs.Value())
		w.busySnap.Store(w.busyNs.Value())
		w.dev.ResetStats()
	}
}
