package farm

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"cobra/internal/core"
)

// TestOptionsDefaults pins the Options surface: zero values fill in,
// invalid values error, and the deprecated New shim keeps its historical
// validation.
func TestOptionsDefaults(t *testing.T) {
	o, err := Options{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Workers != 4 || o.MinWorkers != 1 || o.QueueDepth != workerQueueDepth ||
		o.ShardBlocks != DefaultShardBlocks || o.Policy != PolicyAffinity || o.StealBacklog != 2 {
		t.Errorf("unexpected defaults: %+v", o)
	}
	if _, err := (Options{Workers: -1}).withDefaults(); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := (Options{Policy: "lifo"}).withDefaults(); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := (Options{QueueDepth: -2}).withDefaults(); err == nil {
		t.Error("negative queue depth accepted")
	}
	if _, err := (Options{ShardBlocks: -8}).withDefaults(); err == nil {
		t.Error("negative shard blocks accepted")
	}
	if o, err := (Options{MinWorkers: 9, Workers: 2}).withDefaults(); err != nil || o.MinWorkers != 2 {
		t.Errorf("MinWorkers not clamped to Workers: %+v (%v)", o, err)
	}
	if _, err := New(core.Rijndael, key, core.Config{}, 0); err == nil {
		t.Error("New with 0 workers accepted")
	}
	if _, err := Open(core.Rijndael, key, Options{Policy: "bogus"}); err == nil {
		t.Error("Open with a bogus policy accepted")
	}
}

// TestFarmDecryptECBMatchesDevice round-trips the sharded ECB decrypt
// path against a single device and checks its validation.
func TestFarmDecryptECBMatchesDevice(t *testing.T) {
	msg := testMessage(16 * 53)
	f, err := Open(core.Rijndael, key, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ct, err := f.EncryptECB(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Configure(core.Rijndael, key, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.DecryptECB(context.Background(), ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.DecryptECB(context.Background(), ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) || !bytes.Equal(got, msg) {
		t.Fatal("farm ECB decrypt diverges from single-device decrypt")
	}
	if _, err := f.DecryptECB(context.Background(), ct[:17]); err == nil {
		t.Error("partial block accepted")
	}
}

// TestFarmDecryptCBCShardBoundaries is the off-by-one regression test
// for sharded CBC decryption: every shard after the first must take its
// chaining IV from the ciphertext block immediately before its boundary.
// A tiny ShardBlocks forces many boundaries, and odd message sizes place
// them away from powers of two; any boundary using the wrong block (or
// the call IV) corrupts the first plaintext block of that shard.
func TestFarmDecryptCBCShardBoundaries(t *testing.T) {
	iv := bytes.Repeat([]byte{0xA5}, 16)
	d, err := core.Configure(core.Rijndael, key, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, blocks := range []int{1, 2, 3, 7, 16, 37} {
		msg := testMessage(16 * blocks)
		ct, err := d.EncryptCBC(context.Background(), iv, msg)
		if err != nil {
			t.Fatal(err)
		}
		for _, shardBlocks := range []int{1, 2, 5} {
			f, err := Open(core.Rijndael, key, Options{Workers: 3, ShardBlocks: shardBlocks})
			if err != nil {
				t.Fatal(err)
			}
			got, err := f.DecryptCBC(context.Background(), iv, ct)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("blocks=%d shardBlocks=%d: sharded CBC decrypt corrupted the plaintext", blocks, shardBlocks)
			}
		}
	}
	f, err := Open(core.Rijndael, key, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.DecryptCBC(context.Background(), iv[:3], testMessage(32)); err == nil {
		t.Error("short IV accepted")
	}
	if _, err := f.DecryptCBC(context.Background(), iv, testMessage(33)); err == nil {
		t.Error("partial block accepted")
	}
}

// TestFarmSameProgramSteal pins the work-stealing path: with one worker
// held mid-job by a gated fault, the shards queued behind it must be
// stolen and completed by its sibling — the dispatch cannot finish
// otherwise — and the steal is counted.
func TestFarmSameProgramSteal(t *testing.T) {
	f, err := Open(core.Rijndael, key, Options{Workers: 2, ShardBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Hold the first job of each worker at a gate: the dispatcher fills
	// both queues behind the held jobs, then releasing only worker 0
	// leaves worker 1 running with a backlog — which worker 0, once its
	// own queue drains, must steal to let the call finish.
	gates := [2]chan struct{}{make(chan struct{}), make(chan struct{})}
	var onces [2]sync.Once
	var releases [2]sync.Once
	release := func(i int) { releases[i].Do(func() { close(gates[i]) }) }
	defer release(0)
	defer release(1)
	for i := range gates {
		i := i
		f.pool.workers[i].fault = func(*job) error {
			onces[i].Do(func() { <-gates[i] })
			return nil
		}
	}
	done := make(chan error, 1)
	go func() {
		// 512 blocks at 64 per shard = 8 shards on 2 workers.
		_, err := f.EncryptCTR(context.Background(), make([]byte, 16), testMessage(16*512))
		done <- err
	}()
	deadline := time.After(10 * time.Second)
	for f.QueueDepth() < 2 {
		select {
		case <-deadline:
			t.Fatal("queues never filled behind the held workers")
		case <-time.After(time.Millisecond):
		}
	}
	release(0)
	for f.pool.SchedStats().ProgramSteals == 0 {
		select {
		case <-deadline:
			t.Fatal("no same-program steal while a worker was held with a backlog")
		case <-time.After(time.Millisecond):
		}
	}
	release(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := f.pool.SchedStats(); st.Reconfigures != 0 {
		t.Errorf("same-program steals paid %d reconfigurations, want 0", st.Reconfigures)
	}
}

// TestFarmAutoscaleQuiesce checks the elastic worker set: an idle pool
// parks down to MinWorkers, and demand reactivates parked workers.
func TestFarmAutoscaleQuiesce(t *testing.T) {
	f, err := Open(core.Rijndael, key, Options{Workers: 4, MinWorkers: 1, IdleQuiesce: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	iv := make([]byte, 16)
	msg := testMessage(16 * 64)
	want, err := f.EncryptCTR(context.Background(), iv, msg)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for f.pool.ActiveWorkers() > 1 {
		select {
		case <-deadline:
			t.Fatalf("pool never quiesced: %d workers active", f.pool.ActiveWorkers())
		case <-time.After(time.Millisecond):
		}
	}
	if st := f.pool.SchedStats(); st.Quiesces < 3 {
		t.Errorf("Quiesces = %d, want >= 3", st.Quiesces)
	}
	// Demand wakes parked workers and the output stays correct.
	got, err := f.EncryptCTR(context.Background(), iv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("post-quiesce output diverges")
	}
	if st := f.pool.SchedStats(); st.ScaleUps == 0 {
		t.Error("no scale-ups recorded after post-quiesce traffic")
	}
}

// TestPoolMultiTenantAffinity is the scheduler's reason to exist: two
// tenants with different keys sharing one pool must partition onto
// disjoint workers after warmup, so steady-state traffic pays zero
// reconfigurations.
func TestPoolMultiTenantAffinity(t *testing.T) {
	p, err := NewPool(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	key2 := bytes.Repeat([]byte{0x5A}, 16)
	a, err := p.Open(core.Rijndael, key, core.Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Open(core.Rijndael, key2, core.Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	iv := make([]byte, 16)
	msg := testMessage(16 * 32)
	round := func() {
		t.Helper()
		if _, err := a.EncryptCTR(context.Background(), iv, msg); err != nil {
			t.Fatal(err)
		}
		if _, err := b.EncryptCTR(context.Background(), iv, msg); err != nil {
			t.Fatal(err)
		}
	}
	// Warmup: the tenants claim workers (cold configures, plus at most a
	// couple of cross-steal reconfigurations while the partition forms).
	for i := 0; i < 2; i++ {
		round()
	}
	warm := p.SchedStats()
	if warm.Reconfigures > 4 {
		t.Errorf("warmup paid %d reconfigurations, want <= 4", warm.Reconfigures)
	}
	for i := 0; i < 8; i++ {
		round()
	}
	st := p.SchedStats()
	if d := st.Reconfigures - warm.Reconfigures; d != 0 {
		t.Errorf("steady state paid %d reconfigurations, want 0", d)
	}
	if st.AffinityHits <= warm.AffinityHits {
		t.Error("no affinity hits recorded in steady state")
	}
	// Tenant reports are independent: both saw traffic, and closing one
	// tenant leaves the other (and the pool) serving.
	if a.Report().Stats.BlocksOut == 0 || b.Report().Stats.BlocksOut == 0 {
		t.Error("tenant reports missing traffic")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.EncryptCTR(context.Background(), iv, msg); err != ErrClosed {
		t.Errorf("closed tenant err = %v, want ErrClosed", err)
	}
	if _, err := b.EncryptCTR(context.Background(), iv, msg); err != nil {
		t.Errorf("sibling tenant broken by Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.EncryptCTR(context.Background(), iv, msg); err != ErrClosed {
		t.Errorf("tenant on closed pool err = %v, want ErrClosed", err)
	}
}

// TestPoolRoundRobinReconfigures is the control arm: the same two-tenant
// workload under PolicyRoundRobin rotates every worker through both
// programs and must pay reconfigurations — the cost the affinity
// scheduler exists to avoid (compared directly in the benchmark sweep).
func TestPoolRoundRobinReconfigures(t *testing.T) {
	p, err := NewPool(Options{Workers: 4, Policy: PolicyRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	key2 := bytes.Repeat([]byte{0x5A}, 16)
	a, err := p.Open(core.Rijndael, key, core.Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Open(core.Rijndael, key2, core.Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	iv := make([]byte, 16)
	msg := testMessage(16 * 32)
	refA := refCTR(t, reference(t, core.Rijndael), iv, msg)
	for i := 0; i < 4; i++ {
		got, err := a.EncryptCTR(context.Background(), iv, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, refA) {
			t.Fatal("round-robin pool corrupted tenant A's ciphertext")
		}
		if _, err := b.EncryptCTR(context.Background(), iv, msg); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.SchedStats(); st.Reconfigures == 0 {
		t.Error("round-robin rotation of two programs paid no reconfigurations")
	}
}

// TestPoolWorkStealingSoak is the -race soak for the scheduler: several
// tenants hammer a small shared pool concurrently in every sharded mode,
// every result verified, so placement, stealing, rebinding, autoscaling
// and tenant accounting all interleave under the race detector.
func TestPoolWorkStealingSoak(t *testing.T) {
	p, err := NewPool(Options{Workers: 4, IdleQuiesce: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	calls := 12
	if testing.Short() {
		calls = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for tn := 0; tn < 3; tn++ {
		tkey := bytes.Repeat([]byte{byte(0x11 * (tn + 1))}, 16)
		f, err := p.Open(core.Rijndael, tkey, core.Config{Unroll: 1})
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(f *Farm, seed int) {
				defer wg.Done()
				ctx := context.Background()
				iv := bytes.Repeat([]byte{byte(seed)}, 16)
				for i := 0; i < calls; i++ {
					msg := testMessage(16 * (64 + 16*seed + i))
					ct, err := f.EncryptCBC(ctx, iv, msg)
					if err != nil {
						errs <- err
						return
					}
					pt, err := f.DecryptCBC(ctx, iv, ct)
					if err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(pt, msg) {
						errs <- fmt.Errorf("seed %d call %d: CBC round trip corrupted", seed, i)
						return
					}
					ecb, err := f.EncryptECB(ctx, msg)
					if err != nil {
						errs <- err
						return
					}
					pt, err = f.DecryptECB(ctx, ecb)
					if err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(pt, msg) {
						errs <- fmt.Errorf("seed %d call %d: ECB round trip corrupted", seed, i)
						return
					}
				}
			}(f, tn*2+g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := p.SchedStats(); st.AffinityHits == 0 {
		t.Errorf("soak recorded no affinity hits: %+v", st)
	}
}
