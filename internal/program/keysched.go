package program

import (
	"fmt"

	"cobra/internal/bits"
	"cobra/internal/cipher"
	"cobra/internal/datapath"
	"cobra/internal/isa"
	"cobra/internal/sim"
)

// On-datapath key scheduling. §4 states that "key scheduling and
// encryption were either coded in COBRA assembly language and assembled
// into microcode or written directly as microcode", with the generic flags
// telling the external system when to provide key material (§3.4). The
// other builders in this package substitute host-side key schedules
// (documented in DESIGN.md); BuildRijndaelKeyed removes that substitution
// for Rijndael: the program is key-independent, requests the raw key over
// the KEYREQ/ready handshake, expands it entirely on the datapath, and
// stores the round keys in the eRAMs through the capture port.
//
// One expansion pass computes four key-schedule words in four rows:
//
//	row 0, col 0: INSEL IND, E1 ROTR 8, C S8, A2 XOR INA
//	              → SubWord(RotWord(w3)) ^ w0         (RotWord is a right
//	                rotate by 8 in the little-endian column layout)
//	row 1, col 0: A1 XOR INER                          → ^ rcon_k  (= w4)
//	row 2, col 1: A1 XOR INB                           → w5 = w1 ^ w4
//	row 3, col 2: A1 XOR INC                           → w6 = w2 ^ w5
//	row 3, col 3: A1 XOR IND, A2 XOR INC               → w7 = w3 ^ w2 ^ w5
//
// The capture port stores each pass's output at successive eRAM addresses,
// which is exactly the rk[r][c] layout the encryption rows read. An
// identity pass captures the raw key itself as rk[0] before the expansion
// rows are configured.

// aesRcon holds the ten round constants of the AES-128 key schedule.
var aesRcon = [10]uint32{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}

// rijndaelKeyExpandRows emits the static expansion-pass configuration.
func (b *builder) rijndaelKeyExpandRows() {
	c0 := isa.SliceAt(0, 0)
	b.insel(0, 0, 3) // IND = w3
	b.cfge(c0, isa.ElemE1, isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcImm, Amt: 8, Neg: true}.Encode())
	b.cfge(c0, isa.ElemC, isa.CCfg{Mode: isa.CS8x8}.Encode())
	b.cfge(c0, isa.ElemA2, aCfg(isa.AXor, isa.SrcINA))
	b.cfge(isa.SliceAt(1, 0), isa.ElemA1, aCfg(isa.AXor, isa.SrcINER))
	b.cfge(isa.SliceAt(2, 1), isa.ElemA1, aCfg(isa.AXor, isa.SrcINB))
	b.cfge(isa.SliceAt(3, 2), isa.ElemA1, aCfg(isa.AXor, isa.SrcINC))
	c3 := isa.SliceAt(3, 3)
	b.cfge(c3, isa.ElemA1, aCfg(isa.AXor, isa.SrcIND))
	b.cfge(c3, isa.ElemA2, aCfg(isa.AXor, isa.SrcINC))
}

// rijndaelKeyExpandClear reverses rijndaelKeyExpandRows.
func (b *builder) rijndaelKeyExpandClear() {
	b.insel(0, 0, 0)
	c0 := isa.SliceAt(0, 0)
	b.cfge(c0, isa.ElemE1, bypass)
	b.cfge(c0, isa.ElemC, bypass)
	b.cfge(c0, isa.ElemA2, bypass)
	b.cfge(isa.SliceAt(1, 0), isa.ElemA1, bypass)
	b.cfge(isa.SliceAt(2, 1), isa.ElemA1, bypass)
	b.cfge(isa.SliceAt(3, 2), isa.ElemA1, bypass)
	c3 := isa.SliceAt(3, 3)
	b.cfge(c3, isa.ElemA1, bypass)
	b.cfge(c3, isa.ElemA2, bypass)
}

// BuildRijndaelKeyed compiles a key-independent AES-128 program for the
// base architecture (two rounds per pass): key expansion on the datapath,
// then the standard encryption flow reading the captured round keys.
func BuildRijndaelKeyed() (*Program, error) {
	const hw = 2
	const rounds = cipher.AESRounds
	p := &Program{
		Name:        "rijndael-keyed-2",
		Cipher:      "rijndael",
		HWRounds:    hw,
		TotalRounds: rounds,
		Geometry:    datapath.BaseGeometry(),
		Window:      1,
		NeedsKey:    true,
	}
	b := &builder{}

	// --- Setup: everything key-independent --------------------------------
	b.disout()
	sbox := cipher.AESSBox()
	for bank := 0; bank < 4; bank++ {
		b.loadS8(isa.SliceAll(), bank, &sbox)
	}
	// Round constants for the expansion (bank 1, column 0).
	for k, rc := range aesRcon {
		b.eramw(0, 1, k, rc)
	}
	// Capture the key-schedule stream into bank 0 from address 0.
	for c := 0; c < 4; c++ {
		b.raw(isa.Instr{Op: isa.OpCfgCapture, Slice: isa.SliceCol(c),
			Data: isa.CaptureCfg{Enabled: true, Bank: 0, Addr: 0}.Encode()})
	}
	b.inmux(isa.InExternal)

	// --- Key request idle --------------------------------------------------
	b.flag(isa.FlagKeyReq|isa.FlagReady, 0)
	b.flag(isa.FlagBusy, isa.FlagKeyReq|isa.FlagReady)

	// Identity pass: consume the raw key; the capture port stores it as
	// rk[0] and the feedback register holds it for the first expansion.
	b.enout()

	// Configure the expansion rows under disabled outputs, then run the
	// ten expansion passes (one datapath cycle each; the rcon address walk
	// is the only per-pass reconfiguration).
	b.disout()
	b.inmux(isa.InFeedback)
	b.rijndaelKeyExpandRows()
	b.er(1, 0, 1, 0) // rcon_0
	b.enout()        // expansion pass 1 (captures rk[1])
	for k := 1; k < rounds; k++ {
		b.er(1, 0, 1, k) // tick: expansion pass k+1
	}

	// --- Reconfigure for encryption ----------------------------------------
	b.disout()
	for c := 0; c < 4; c++ {
		b.raw(isa.Instr{Op: isa.OpCfgCapture, Slice: isa.SliceCol(c),
			Data: isa.CaptureCfg{}.Encode()})
	}
	b.rijndaelKeyExpandClear()
	perm := aesShiftRowsPerm()
	for st := 0; st < hw; st++ {
		b.shuf(st, perm)
	}
	for st := 0; st < hw; st++ {
		b.rijndaelRoundRows(2*st, true)
	}
	b.regRow(1, true)

	// --- Encryption flow (keys from bank 0; AK0 via row 0's A1) ------------
	const passes = rounds / hw
	lastStageRowM := 2*(hw-1) + 1
	b.iterativeFlow(hw, passes, iterHooks{
		FirstPass: func(b *builder) {
			b.cfge(isa.SliceRow(0), isa.ElemA1, aCfg(isa.AXor, isa.SrcINER))
			b.erRow(0, 0, 0)
		},
		SecondPass: func(b *builder) {
			b.cfge(isa.SliceRow(0), isa.ElemA1, bypass)
		},
		LastPass: func(b *builder) {
			b.cfge(isa.SliceRow(lastStageRowM), isa.ElemF, bypass)
		},
		EveryPass: func(b *builder, pass int) {
			for st := 0; st < hw; st++ {
				b.erRow(2*st+1, 0, pass*hw+st+1)
			}
		},
		Epilogue: func(b *builder) {
			b.cfge(isa.SliceRow(lastStageRowM), isa.ElemF,
				isa.FCfg{Mode: isa.FMDS, Consts: [4]uint8{2, 3, 1, 1}}.Encode())
		},
	})
	p.Instrs = b.ins
	return p, nil
}

// LoadKeyed loads a key-independent program and drives the §3.4
// key-scheduling handshake: run to the KEYREQ idle, feed the raw key
// block, let the datapath expand it, and stop at the ready idle. Counters
// are cleared afterwards so measurements cover bulk encryption only; the
// returned count is the key-scheduling cost in datapath cycles.
func LoadKeyed(m *sim.Machine, p *Program, key []byte) (int, error) {
	if !p.NeedsKey {
		return 0, fmt.Errorf("program: %s does not take a runtime key", p.Name)
	}
	if len(key) != 16 {
		return 0, fmt.Errorf("program: key must be 16 bytes, got %d", len(key))
	}
	m.Go = false
	if err := m.LoadProgram(p.Words()); err != nil {
		return 0, err
	}
	reason, err := m.Run(sim.Limits{})
	if err != nil {
		return 0, err
	}
	if reason != sim.StopWaitGo || !m.Seq.Flag(isa.FlagKeyReq) {
		return 0, fmt.Errorf("program: expected key-request idle, got %v", reason)
	}
	m.ResetStats()
	m.PushInput(bits.LoadBlock128(key))
	m.Go = true
	if reason, err = m.Run(sim.Limits{StopAfterInputs: 1}); err != nil {
		return 0, err
	} else if reason != sim.StopInputs {
		return 0, fmt.Errorf("program: key not consumed: %v", reason)
	}
	m.Go = false
	if reason, err = m.Run(sim.Limits{}); err != nil {
		return 0, err
	} else if reason != sim.StopWaitGo {
		return 0, fmt.Errorf("program: key schedule did not reach ready: %v", reason)
	}
	cycles := m.Stats().Cycles
	m.ResetStats()
	return cycles, nil
}
