package program

import (
	"fmt"

	"cobra/internal/cipher"
	"cobra/internal/isa"
)

// RC5-32/r/b on COBRA. RC5 is RC6's 64-bit-block ancestor and an even
// cleaner fit for the §3.2 operation set: each half-round is exactly the
// A1 → E2 → B element chain of one RCE (XOR, data-dependent rotate, add).
//
// Like GOST, a 64-bit block occupies one column pair, so the 128-bit
// datapath processes TWO blocks per pass: block A (words a,b little-endian)
// in columns 0-1, block B in columns 2-3. One round is two rows:
//
//	row T:  a' = ((a ^ b) <<< b) + S[2i]   in the even columns
//	        (b passes untouched in the odd ones)
//	row U:  b' = ((b ^ a') <<< a') + S[2i+1] in the odd columns
//
// The pre-whitening a += S[0], b += S[1] uses the input-side whitening
// adders of all four columns.

// rc5RoundRows emits one RC5 round for both parallel blocks at rows
// (rt, rt+1).
func (b *builder) rc5RoundRows(rt int) {
	ru := rt + 1
	for _, base := range []int{0, 2} {
		// The odd word of the pair: column 0 sees it as INB, column 2 as IND.
		odd := isa.SrcINB
		if base == 2 {
			odd = isa.SrcIND
		}
		// Row T: a' in the even column.
		s := isa.SliceAt(rt, base)
		b.cfge(s, isa.ElemA1, aCfg(isa.AXor, odd))
		b.cfge(s, isa.ElemE2, eCfg(isa.ERotl, odd, 0))
		b.cfge(s, isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcINER))
		// Row U: b' in the odd column; the even word of the pair is INB for
		// column 1 and IND for column 3.
		even := isa.SrcINB
		if base == 2 {
			even = isa.SrcIND
		}
		s = isa.SliceAt(ru, base+1)
		b.cfge(s, isa.ElemA1, aCfg(isa.AXor, even))
		b.cfge(s, isa.ElemE2, eCfg(isa.ERotl, even, 0))
		b.cfge(s, isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcINER))
	}
}

// BuildRC5 compiles RC5-32/rounds/16 encryption at unroll depth hw. rounds
// is normally cipher.RC5Rounds (12); the key is 1–255 bytes like the host
// reference.
func BuildRC5(key []byte, hw, rounds int) (*Program, error) {
	ck, err := cipher.NewRC5Rounds(key, rounds)
	if err != nil {
		return nil, err
	}
	s := ck.RoundKeys()

	full := hw == rounds
	geo, passes, err := validateUnroll("rc5", hw, rounds, 2, 0)
	if err != nil {
		return nil, err
	}
	if geo.Rows < 4 {
		geo.Rows = 4 // the paper's base architecture is the minimum build
	}

	p := &Program{
		Name:        fmt.Sprintf("rc5-%d", hw),
		Cipher:      "rc5",
		HWRounds:    hw,
		TotalRounds: rounds,
		Geometry:    geo,
		Window:      1,
		Streaming:   full,
	}
	b := &builder{}
	b.disout()

	for st := 0; st < hw; st++ {
		b.rc5RoundRows(2 * st)
	}

	// Key layout: bank 0 address r holds round r's S[2r] in the even
	// columns (row T) and S[2r+1] in the odd ones (row U); both parallel
	// blocks share the schedule.
	for r := 1; r <= rounds; r++ {
		b.eramw(0, 0, r, s[2*r])
		b.eramw(2, 0, r, s[2*r])
		b.eramw(1, 0, r, s[2*r+1])
		b.eramw(3, 0, r, s[2*r+1])
	}

	var regs []int
	for st := 0; st < hw; st++ {
		if full || st < hw-1 {
			regs = append(regs, 2*st+1)
		}
	}
	for _, row := range regs {
		b.regRow(row, true)
	}

	if full {
		p.PipelineDepth = len(regs)
		for c := 0; c < 4; c++ {
			b.white(c, isa.WhiteAdd, true, s[c%2])
		}
		for st := 0; st < hw; st++ {
			b.erRow(2*st, 0, st+1)
			b.erRow(2*st+1, 0, st+1)
		}
		b.streamingFlow(len(regs))
		p.Instrs = b.ins
		return p, nil
	}

	b.iterativeFlow(len(regs)+1, passes, iterHooks{
		FirstPass: func(b *builder) {
			for c := 0; c < 4; c++ {
				b.white(c, isa.WhiteAdd, true, s[c%2])
			}
		},
		SecondPass: func(b *builder) {
			for c := 0; c < 4; c++ {
				b.whiteOff(c)
			}
		},
		EveryPass: func(b *builder, pass int) {
			for st := 0; st < hw; st++ {
				b.erRow(2*st, 0, pass*hw+st+1)
				b.erRow(2*st+1, 0, pass*hw+st+1)
			}
		},
	})
	p.Instrs = b.ins
	return p, nil
}

// rc5DecRoundRows emits one RC5 decryption round at rows rt..rt+3. The
// inverse half-rounds subtract before rotating, and the element chain
// evaluates B after E2, so each half-round splits across two rows (the
// same split BuildRC6Decrypt uses):
//
//	row T1:  t  = b - S[2i+1]          (odd columns)
//	row U1:  b' = (t >>> a) ^ a        (odd columns; E2 Neg + A2)
//	row T2:  u  = a - S[2i]            (even columns)
//	row U2:  a' = (u >>> b') ^ b'      (even columns)
func (b *builder) rc5DecRoundRows(rt int) {
	for _, base := range []int{0, 2} {
		even := isa.SrcINB // the pair's even word as seen from the odd column
		odd := isa.SrcINB  // the pair's odd word as seen from the even column
		if base == 2 {
			even = isa.SrcIND
			odd = isa.SrcIND
		}
		b.cfge(isa.SliceAt(rt, base+1), isa.ElemB, bCfg(isa.BSub, 2, isa.SrcINER))
		s := isa.SliceAt(rt+1, base+1)
		b.cfge(s, isa.ElemE2, isa.ECfg{Mode: isa.ERotl, AmtSrc: even, Neg: true}.Encode())
		b.cfge(s, isa.ElemA2, aCfg(isa.AXor, even))
		b.cfge(isa.SliceAt(rt+2, base), isa.ElemB, bCfg(isa.BSub, 2, isa.SrcINER))
		s = isa.SliceAt(rt+3, base)
		b.cfge(s, isa.ElemE2, isa.ECfg{Mode: isa.ERotl, AmtSrc: odd, Neg: true}.Encode())
		b.cfge(s, isa.ElemA2, aCfg(isa.AXor, odd))
	}
}

// BuildRC5Decrypt compiles RC5 decryption at unroll depth hw: four rows per
// round, rounds walked highest-first, with the final a -= S[0], b -= S[1]
// applied as negated-key output whitening.
func BuildRC5Decrypt(key []byte, hw, rounds int) (*Program, error) {
	ck, err := cipher.NewRC5Rounds(key, rounds)
	if err != nil {
		return nil, err
	}
	s := ck.RoundKeys()

	full := hw == rounds
	geo, passes, err := validateUnroll("rc5", hw, rounds, 4, 0)
	if err != nil {
		return nil, err
	}

	p := &Program{
		Name:        fmt.Sprintf("rc5-dec-%d", hw),
		Cipher:      "rc5",
		HWRounds:    hw,
		TotalRounds: rounds,
		Geometry:    geo,
		Window:      1,
		Streaming:   full,
	}
	b := &builder{}
	b.disout()

	for st := 0; st < hw; st++ {
		b.rc5DecRoundRows(4 * st)
	}
	for r := 1; r <= rounds; r++ {
		b.eramw(1, 0, r, s[2*r+1])
		b.eramw(3, 0, r, s[2*r+1])
		b.eramw(0, 0, r, s[2*r])
		b.eramw(2, 0, r, s[2*r])
	}

	var regs []int
	for st := 0; st < hw; st++ {
		if full || st < hw-1 {
			regs = append(regs, 4*st+3)
		}
	}
	for _, row := range regs {
		b.regRow(row, true)
	}

	if full {
		p.PipelineDepth = len(regs)
		for c := 0; c < 4; c++ {
			b.white(c, isa.WhiteAdd, false, -s[c%2])
		}
		for st := 0; st < hw; st++ {
			b.erRow(4*st, 0, rounds-st)
			b.erRow(4*st+2, 0, rounds-st)
		}
		b.streamingFlow(len(regs))
		p.Instrs = b.ins
		return p, nil
	}

	b.iterativeFlow(len(regs)+1, passes, iterHooks{
		LastPass: func(b *builder) {
			for c := 0; c < 4; c++ {
				b.white(c, isa.WhiteAdd, false, -s[c%2])
			}
		},
		EveryPass: func(b *builder, pass int) {
			for st := 0; st < hw; st++ {
				b.erRow(4*st, 0, rounds-(pass*hw+st))
				b.erRow(4*st+2, 0, rounds-(pass*hw+st))
			}
		},
		Epilogue: func(b *builder) {
			for c := 0; c < 4; c++ {
				b.whiteOff(c)
			}
		},
	})
	p.Instrs = b.ins
	return p, nil
}
