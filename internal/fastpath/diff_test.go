// Package fastpath_test is the differential harness proving the
// trace-compiled executor equivalent to the cycle-accurate interpreter:
// for every built-in program — each builder at every unroll depth and
// window — randomized batches run through both engines must produce
// identical ciphertext and identical sim.Stats counters, including across
// dirty resumes, reconfiguration, and the interpreter-fallback paths.
package fastpath_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"cobra/internal/bits"
	"cobra/internal/core"
	"cobra/internal/program"
	"cobra/internal/sim"
)

// builderCase is one built-in program configuration.
type builderCase struct {
	name  string
	build func() (*program.Program, error)
}

// allBuilders enumerates every builder × depth × window combination the
// repository ships: the §4 encryption mappings at every Table-3 unroll,
// the windowed Serpent variants at w = 1..16, GOST, the decryption
// mappings, and the extended 64-bit corpus (RC5, TEA, SIMON 64/128,
// Blowfish, DES) in both directions. Every one of them must
// trace-compile.
func allBuilders() []builderCase {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i)
	}
	key32 := make([]byte, 32)
	for i := range key32 {
		key32[i] = byte(0xa5 ^ i)
	}
	var cases []builderCase
	add := func(name string, build func() (*program.Program, error)) {
		cases = append(cases, builderCase{name, build})
	}
	for _, hw := range []int{1, 2, 4, 5, 10, 20} {
		hw := hw
		add(fmt.Sprintf("rc6-%d", hw), func() (*program.Program, error) {
			return program.BuildRC6(key, hw, 20)
		})
	}
	for _, hw := range []int{1, 2, 5, 10} {
		hw := hw
		add(fmt.Sprintf("rijndael-%d", hw), func() (*program.Program, error) {
			return program.BuildRijndael(key, hw)
		})
	}
	for _, hw := range []int{1, 2, 4, 8, 16, 32} {
		hw := hw
		add(fmt.Sprintf("serpent-%d", hw), func() (*program.Program, error) {
			return program.BuildSerpent(key, hw)
		})
	}
	for w := 1; w <= 16; w++ {
		w := w
		add(fmt.Sprintf("serpent-w%d", w), func() (*program.Program, error) {
			return program.BuildSerpentWindowed(key, w)
		})
	}
	add("gost", func() (*program.Program, error) { return program.BuildGOST(key32) })
	for _, hw := range []int{1, 2, 4, 5, 10, 20} {
		hw := hw
		add(fmt.Sprintf("rc6-dec-%d", hw), func() (*program.Program, error) {
			return program.BuildRC6Decrypt(key, hw, 20)
		})
	}
	for _, hw := range []int{1, 2, 5, 10} {
		hw := hw
		add(fmt.Sprintf("rijndael-dec-%d", hw), func() (*program.Program, error) {
			return program.BuildRijndaelDecrypt(key, hw)
		})
	}
	add("serpent-dec", func() (*program.Program, error) { return program.BuildSerpentDecrypt(key) })
	for _, hw := range []int{1, 2, 3, 4, 6, 12} {
		hw := hw
		add(fmt.Sprintf("rc5-%d", hw), func() (*program.Program, error) {
			return program.BuildRC5(key, hw, 12)
		})
		add(fmt.Sprintf("rc5-dec-%d", hw), func() (*program.Program, error) {
			return program.BuildRC5Decrypt(key, hw, 12)
		})
	}
	for _, hw := range []int{1, 2, 4, 8, 16, 32} {
		hw := hw
		add(fmt.Sprintf("tea-%d", hw), func() (*program.Program, error) {
			return program.BuildTEA(key, hw)
		})
		add(fmt.Sprintf("tea-dec-%d", hw), func() (*program.Program, error) {
			return program.BuildTEADecrypt(key, hw)
		})
	}
	for _, hw := range []int{1, 2, 4, 11, 22, 44} {
		hw := hw
		add(fmt.Sprintf("simon64-%d", hw), func() (*program.Program, error) {
			return program.BuildSIMON(key, hw)
		})
		add(fmt.Sprintf("simon64-dec-%d", hw), func() (*program.Program, error) {
			return program.BuildSIMONDecrypt(key, hw)
		})
	}
	for _, hw := range []int{1, 2} {
		hw := hw
		add(fmt.Sprintf("blowfish-%d", hw), func() (*program.Program, error) {
			return program.BuildBlowfish(key, hw)
		})
		add(fmt.Sprintf("blowfish-dec-%d", hw), func() (*program.Program, error) {
			return program.BuildBlowfishDecrypt(key, hw)
		})
	}
	add("des-1", func() (*program.Program, error) { return program.BuildDES(key[:8]) })
	add("des-dec-1", func() (*program.Program, error) { return program.BuildDESDecrypt(key[:8]) })
	return cases
}

func randomBlocks(rng *rand.Rand, n int) []bits.Block128 {
	out := make([]bits.Block128, n)
	for i := range out {
		for c := 0; c < 4; c++ {
			out[i][c] = rng.Uint32()
		}
	}
	return out
}

// TestDifferentialAllBuilders drives randomized batches through the
// compiled executor and the interpreter for every built-in configuration
// and requires identical ciphertext and identical per-call counters. The
// batch sizes deliberately mix single blocks with longer runs so iterative
// programs resume mid-epilogue and streaming programs hit the
// reload-per-call path and mid-period resume points.
func TestDifferentialAllBuilders(t *testing.T) {
	for _, c := range allBuilders() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			p, err := c.build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			ex, err := p.Compile()
			if err != nil {
				t.Fatalf("trace compilation must succeed for every built-in program: %v", err)
			}
			m, err := program.NewMachine(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := program.Load(m, p); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(0xc0b2a))
			for call, n := range []int{1, 3, 1, 7, 2, 5, 1, 1, 4} {
				in := randomBlocks(rng, n)
				want := make([]bits.Block128, n)
				wantStats, err := program.Run(m, p, want, in, program.Opts{})
				if err != nil {
					t.Fatalf("call %d: interpreter: %v", call, err)
				}
				got := make([]bits.Block128, n)
				gotStats, err := ex.EncryptInto(got, in)
				if err != nil {
					t.Fatalf("call %d: fastpath: %v", call, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("call %d block %d: fastpath %08x != interpreter %08x",
							call, i, got[i], want[i])
					}
				}
				if gotStats != wantStats {
					t.Fatalf("call %d: fastpath stats %+v != interpreter %+v", call, gotStats, wantStats)
				}
			}
		})
	}
}

// TestDifferentialAliasing verifies the executor honors EncryptInto's
// aliasing contract (dst may be the same slice as blocks), which the bulk
// byte paths rely on for in-place conversion.
func TestDifferentialAliasing(t *testing.T) {
	key := make([]byte, 16)
	p, err := program.BuildRC6(key, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	in := randomBlocks(rng, 9)
	sep := make([]bits.Block128, len(in))
	if _, err := ex.EncryptInto(sep, in); err != nil {
		t.Fatal(err)
	}
	ex.Reset()
	alias := append([]bits.Block128(nil), in...)
	if _, err := ex.EncryptInto(alias, alias); err != nil {
		t.Fatal(err)
	}
	for i := range sep {
		if alias[i] != sep[i] {
			t.Fatalf("block %d: aliased output %08x != separate-buffer output %08x", i, alias[i], sep[i])
		}
	}
}

// TestRunFastFallback proves the program-level dispatch: a clean
// machine routes through the executor, a machine that has interpreted since
// its load owns the in-flight state and stays on the interpreter, and both
// histories produce the ciphertext and counters of a pure-interpreter run.
func TestRunFastFallback(t *testing.T) {
	key := []byte("0123456789abcdef")
	p, err := program.BuildRC6(key, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	mMixed, err := program.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	mInterp, err := program.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*sim.Machine{mMixed, mInterp} {
		if err := program.Load(m, p); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(99))
	run := func(call int, n int, useFast bool) {
		in := randomBlocks(rng, n)
		want := make([]bits.Block128, n)
		wantStats, err := program.Run(mInterp, p, want, in, program.Opts{})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]bits.Block128, n)
		var gotStats sim.Stats
		if useFast {
			gotStats, err = program.Run(mMixed, p, got, in, program.Opts{Fast: ex})
		} else {
			gotStats, err = program.Run(mMixed, p, got, in, program.Opts{})
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("call %d block %d mismatch", call, i)
			}
		}
		if gotStats != wantStats {
			t.Fatalf("call %d: stats %+v != %+v", call, gotStats, wantStats)
		}
	}

	if mMixed.Dirty() {
		t.Fatal("freshly loaded machine reports dirty")
	}
	// Interpret first: the machine turns dirty, so every later
	// Run call must keep falling back rather than splitting the
	// stats chain across engines.
	run(0, 2, false)
	if !mMixed.Dirty() {
		t.Fatal("machine clean after interpreting")
	}
	run(1, 3, true)
	run(2, 1, true)
}

// TestDeviceReconfigureInterleaved drives two core devices — fastpath and
// forced-interpreter — through interleaved bulk encryptions and
// reconfigurations across all three algorithms, requiring identical bytes
// and identical accumulated counters throughout. This is the §1
// algorithm-agility scenario with the executor being torn down and
// recompiled under the caller's feet.
func TestDeviceReconfigureInterleaved(t *testing.T) {
	key1 := []byte("{fastpath-key-1}")
	key2 := []byte("[fastpath-key-2]")
	fast, err := core.Configure(core.RC6, key1, core.Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	interp, err := core.Configure(core.RC6, key1, core.Config{Unroll: 1, Interpreter: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.UsesFastpath() {
		t.Fatalf("fastpath refused: %v", fast.FastpathErr())
	}
	if interp.UsesFastpath() {
		t.Fatal("Interpreter config compiled a trace")
	}

	rng := rand.New(rand.NewSource(42))
	iv := make([]byte, 16)
	rng.Read(iv)
	check := func(step string) {
		t.Helper()
		n := 16 * (1 + rng.Intn(6))
		src := make([]byte, n)
		rng.Read(src)
		wantECB, err := interp.EncryptECB(context.Background(), src)
		if err != nil {
			t.Fatalf("%s: interpreter ECB: %v", step, err)
		}
		gotECB, err := fast.EncryptECB(context.Background(), src)
		if err != nil {
			t.Fatalf("%s: fastpath ECB: %v", step, err)
		}
		if !bytes.Equal(gotECB, wantECB) {
			t.Fatalf("%s: ECB ciphertext diverges", step)
		}
		wantCTR, err := interp.EncryptCTR(context.Background(), iv, src)
		if err != nil {
			t.Fatal(err)
		}
		gotCTR, err := fast.EncryptCTR(context.Background(), iv, src)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotCTR, wantCTR) {
			t.Fatalf("%s: CTR ciphertext diverges", step)
		}
		if fr, ir := fast.Report(), interp.Report(); fr.Stats != ir.Stats {
			t.Fatalf("%s: accumulated stats diverge:\nfastpath    %+v\ninterpreter %+v", step, fr.Stats, ir.Stats)
		}
	}

	check("rc6-unroll1")
	for _, step := range []struct {
		alg core.Algorithm
		key []byte
		cfg core.Config
	}{
		{core.Rijndael, key2, core.Config{Unroll: 2}},
		{core.Serpent, key1, core.Config{}}, // full unroll: streaming
		{core.RC6, key2, core.Config{}},
		{core.Rijndael, key1, core.Config{Unroll: 5}},
	} {
		if err := fast.Reconfigure(step.alg, step.key, step.cfg); err != nil {
			t.Fatal(err)
		}
		if err := interp.Reconfigure(step.alg, step.key, core.Config{Unroll: step.cfg.Unroll, Interpreter: true}); err != nil {
			t.Fatal(err)
		}
		if !fast.UsesFastpath() {
			t.Fatalf("%s/%d: fastpath refused after reconfigure: %v", step.alg, step.cfg.Unroll, fast.FastpathErr())
		}
		check(fmt.Sprintf("%s-unroll%d", step.alg, step.cfg.Unroll))
	}
}
