package cipher

import (
	"math/big"
	"sync"
)

// Blowfish: a 64-bit-block Feistel cipher whose F function is the paper's
// canonical example of 8-bit-to-32-bit look-up-table substitution (the C
// element's S8TO32 mode exists for this cipher family).
//
// The P-array and S-boxes are the hexadecimal digits of π. Rather than
// transcribing 4,168 bytes of constants, they are computed once at first
// use from a big.Float evaluation of π — the tables are therefore
// self-validating against the published test vectors in the test suite.

var (
	blowfishOnce  sync.Once
	blowfishInitP [18]uint32
	blowfishInitS [4][256]uint32
)

// piWords returns the first n 32-bit words of the fractional part of π in
// binary (equivalently, its hex digits grouped by eight).
func piWords(n int) []uint32 {
	// Compute π to generous precision with the Chudnovsky-free approach:
	// atan-based Machin formula, exact in big.Float.
	prec := uint(32*n + 128)
	atan := func(invX int64) *big.Float {
		// arctan(1/x) = sum_{k>=0} (-1)^k / ((2k+1) x^(2k+1))
		x := big.NewFloat(0).SetPrec(prec).SetInt64(invX)
		x2 := big.NewFloat(0).SetPrec(prec).Mul(x, x)
		term := big.NewFloat(0).SetPrec(prec).Quo(big.NewFloat(1).SetPrec(prec), x)
		sum := big.NewFloat(0).SetPrec(prec).Set(term)
		sign := int64(-1)
		for k := int64(1); ; k++ {
			term.Quo(term, x2)
			t := big.NewFloat(0).SetPrec(prec).Quo(term, big.NewFloat(float64(2*k+1)).SetPrec(prec))
			if t.MantExp(nil) < -int(prec)+32 {
				break
			}
			if sign > 0 {
				sum.Add(sum, t)
			} else {
				sum.Sub(sum, t)
			}
			sign = -sign
		}
		return sum
	}
	// Machin: π = 16·atan(1/5) − 4·atan(1/239).
	pi := big.NewFloat(0).SetPrec(prec)
	pi.Mul(atan(5), big.NewFloat(16).SetPrec(prec))
	t := big.NewFloat(0).SetPrec(prec).Mul(atan(239), big.NewFloat(4).SetPrec(prec))
	pi.Sub(pi, t)

	// Extract fractional words: frac = π − 3; repeatedly multiply by 2^32.
	frac := big.NewFloat(0).SetPrec(prec).Sub(pi, big.NewFloat(3).SetPrec(prec))
	shift := big.NewFloat(0).SetPrec(prec).SetUint64(1 << 32)
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		frac.Mul(frac, shift)
		w, _ := frac.Uint64()
		out[i] = uint32(w)
		frac.Sub(frac, big.NewFloat(0).SetPrec(prec).SetUint64(w))
	}
	return out
}

func blowfishInit() {
	words := piWords(18 + 4*256)
	copy(blowfishInitP[:], words[:18])
	for i := 0; i < 4; i++ {
		copy(blowfishInitS[i][:], words[18+256*i:18+256*(i+1)])
	}
}

// Blowfish implements Bruce Schneier's Blowfish.
type Blowfish struct {
	p [18]uint32
	s [4][256]uint32
}

// NewBlowfish derives the key schedule from a 1–56 byte key.
func NewBlowfish(key []byte) (*Blowfish, error) {
	if len(key) < 1 || len(key) > 56 {
		return nil, KeySizeError{"blowfish", len(key)}
	}
	blowfishOnce.Do(blowfishInit)
	c := &Blowfish{p: blowfishInitP, s: blowfishInitS}
	j := 0
	for i := range c.p {
		var d uint32
		for k := 0; k < 4; k++ {
			d = d<<8 | uint32(key[j])
			j = (j + 1) % len(key)
		}
		c.p[i] ^= d
	}
	var l, r uint32
	for i := 0; i < 18; i += 2 {
		l, r = c.encryptWords(l, r)
		c.p[i], c.p[i+1] = l, r
	}
	for b := 0; b < 4; b++ {
		for i := 0; i < 256; i += 2 {
			l, r = c.encryptWords(l, r)
			c.s[b][i], c.s[b][i+1] = l, r
		}
	}
	return c, nil
}

// f is the Blowfish round function: four 8→32 table look-ups combined with
// addition and XOR.
func (c *Blowfish) f(x uint32) uint32 {
	return (c.s[0][x>>24] + c.s[1][x>>16&0xff]) ^ c.s[2][x>>8&0xff] + c.s[3][x&0xff]
}

func (c *Blowfish) encryptWords(l, r uint32) (uint32, uint32) {
	for i := 0; i < 16; i++ {
		l ^= c.p[i]
		r ^= c.f(l)
		l, r = r, l
	}
	l, r = r, l
	r ^= c.p[16]
	l ^= c.p[17]
	return l, r
}

func (c *Blowfish) decryptWords(l, r uint32) (uint32, uint32) {
	for i := 17; i > 1; i-- {
		l ^= c.p[i]
		r ^= c.f(l)
		l, r = r, l
	}
	l, r = r, l
	r ^= c.p[1]
	l ^= c.p[0]
	return l, r
}

// Schedule exposes the key-mixed P-array and S-boxes; the COBRA program
// builder loads the S-boxes into C-element LUT banks and walks the P-array
// through the eRAMs.
func (c *Blowfish) Schedule() (p [18]uint32, s [4][256]uint32) { return c.p, c.s }

// BlockSize returns 8.
func (c *Blowfish) BlockSize() int { return 8 }

// Encrypt encrypts one 8-byte block (big-endian word order).
func (c *Blowfish) Encrypt(dst, src []byte) {
	l := uint32(src[0])<<24 | uint32(src[1])<<16 | uint32(src[2])<<8 | uint32(src[3])
	r := uint32(src[4])<<24 | uint32(src[5])<<16 | uint32(src[6])<<8 | uint32(src[7])
	l, r = c.encryptWords(l, r)
	dst[0], dst[1], dst[2], dst[3] = byte(l>>24), byte(l>>16), byte(l>>8), byte(l)
	dst[4], dst[5], dst[6], dst[7] = byte(r>>24), byte(r>>16), byte(r>>8), byte(r)
}

// Decrypt decrypts one 8-byte block.
func (c *Blowfish) Decrypt(dst, src []byte) {
	l := uint32(src[0])<<24 | uint32(src[1])<<16 | uint32(src[2])<<8 | uint32(src[3])
	r := uint32(src[4])<<24 | uint32(src[5])<<16 | uint32(src[6])<<8 | uint32(src[7])
	l, r = c.decryptWords(l, r)
	dst[0], dst[1], dst[2], dst[3] = byte(l>>24), byte(l>>16), byte(l>>8), byte(l)
	dst[4], dst[5], dst[6], dst[7] = byte(r>>24), byte(r>>16), byte(r>>8), byte(r)
}
