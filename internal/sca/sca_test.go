package sca

import (
	"strings"
	"testing"

	"cobra/internal/dataflow"
	"cobra/internal/isa"
	"cobra/internal/vet"
)

// Seeded-defect tests for the lane findings. The base ISA cannot route
// datapath state into an address or control lane — OpJmp targets and flag
// words are immediates, eRAM addresses are configuration fields — so the
// defects are seeded through the injectable lane source: the model of a
// fault or hostile toolchain rewiring a lane to an RCE output register.

func flag(set, clear uint16) isa.Instr {
	return isa.Instr{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: set, Clear: clear}.Encode()}
}

func cfge(s isa.Slice, e isa.Elem, data uint64) isa.Instr {
	return isa.Instr{Op: isa.OpCfgElem, Slice: s, Elem: e, Data: data}
}

func eramw(col, bank, addr int, v uint32) isa.Instr {
	return isa.Instr{Op: isa.OpERAMWrite, Slice: isa.SliceCol(col),
		Data: isa.ERAMWriteCfg{Bank: uint8(bank), Addr: uint8(addr), Value: v}.Encode()}
}

func white(col int, key uint32) isa.Instr {
	return isa.Instr{Op: isa.OpCfgWhite,
		Data: isa.WhiteCfg{Col: uint8(col), Mode: isa.WhiteXor, Key: key}.Encode()}
}

// keyRegProgram builds a looping program whose r0.c0 output register holds
// a key-tainted word: the eRAM cell c0.b0[0] is written with key material,
// r0.c0's A1 XORs it into the column, and the row register latches the
// result. Returns the program and the addresses of the A1 configuration
// and the loop jump.
func keyRegProgram() (prog []isa.Instr, a1Addr, jmpAddr int) {
	prog = []isa.Instr{flag(isa.FlagReady, 0)}
	prog = append(prog, eramw(0, 0, 0, 0x0f1e2d3c))
	prog = append(prog, cfge(isa.SliceAt(0, 0), isa.ElemER, isa.ERCfg{Bank: 0, Addr: 0}.Encode()))
	a1Addr = len(prog)
	prog = append(prog, cfge(isa.SliceAt(0, 0), isa.ElemA1,
		isa.ACfg{Op: isa.AXor, Operand: isa.SrcINER}.Encode()))
	prog = append(prog, cfge(isa.SliceRow(0), isa.ElemReg, isa.RegCfg{Enabled: true}.Encode()))
	for c := 0; c < 4; c++ {
		prog = append(prog, white(c, 0xdeadbeef))
	}
	loop := len(prog)
	prog = append(prog, flag(isa.FlagDValid, 0))
	prog = append(prog, isa.Instr{Op: isa.OpNop})
	jmpAddr = len(prog)
	prog = append(prog, isa.Instr{Op: isa.OpJmp, Data: uint64(loop)})
	return prog, a1Addr, jmpAddr
}

func requireCode(t *testing.T, p *Profile, code string, sev vet.Severity, addr int) {
	t.Helper()
	for _, f := range p.Findings {
		if f.Code == code && f.Addr == addr {
			if f.Sev != sev {
				t.Errorf("%s at %04x has severity %v, want %v", code, addr, f.Sev, sev)
			}
			return
		}
	}
	t.Errorf("missing finding %s at %04x; got %v", code, addr, p.Findings)
}

// TestLanesCleanWithoutOverride pins the ISA-level property: the same
// program analyzed without a lane override has no lane findings and no
// secret-indexed accesses at all (nothing in it reads a table).
func TestLanesCleanWithoutOverride(t *testing.T) {
	prog, _, _ := keyRegProgram()
	p := AnalyzeMicrocode("key-reg", prog, dataflow.Config{})
	if !p.Complete {
		t.Fatalf("walk did not close: %v", p.Findings)
	}
	for _, f := range p.Findings {
		t.Errorf("unexpected finding: %s", f)
	}
	if !p.ConstantTime() {
		t.Error("ConstantTime() = false for a table-free base-ISA program")
	}
}

// TestSeededSecretBranch routes the key-tainted register into the loop
// jump's target lane: the analyzer must report secret-branch at the jump.
func TestSeededSecretBranch(t *testing.T) {
	prog, _, jmpAddr := keyRegProgram()
	p := analyzeMicrocode("key-reg", prog, dataflow.Config{},
		func(site dataflow.LaneSite) (dataflow.RegSource, bool) {
			if site.Kind == dataflow.LaneJmp {
				return dataflow.RegSource{Row: 0, Col: 0}, true
			}
			return dataflow.RegSource{}, false
		})
	requireCode(t, p, "secret-branch", vet.Error, jmpAddr)
	if p.ConstantTime() {
		t.Error("ConstantTime() = true with a secret branch")
	}
	for _, f := range p.Findings {
		if f.Code == "secret-branch" && !strings.Contains(f.Msg, "jmp-target") {
			t.Errorf("finding does not name the lane: %s", f)
		}
	}
}

// TestSeededSecretFlag routes the register into a handshake flag word.
func TestSeededSecretFlag(t *testing.T) {
	prog, _, _ := keyRegProgram()
	p := analyzeMicrocode("key-reg", prog, dataflow.Config{},
		func(site dataflow.LaneSite) (dataflow.RegSource, bool) {
			if site.Kind == dataflow.LaneFlag {
				return dataflow.RegSource{Row: 0, Col: 0}, true
			}
			return dataflow.RegSource{}, false
		})
	found := false
	for _, f := range p.Findings {
		if f.Code == "secret-branch" && f.Sev == vet.Error && strings.Contains(f.Msg, "handshake-flag") {
			found = true
		}
	}
	if !found {
		t.Errorf("no secret-branch finding for the flag lane; got %v", p.Findings)
	}
}

// TestSeededSecretERAMAddr swizzles the key-tainted register into the eRAM
// read-port address lane of the consuming A1: the analyzer must report
// secret-eram-addr at the consumer's configuration word.
func TestSeededSecretERAMAddr(t *testing.T) {
	prog, a1Addr, _ := keyRegProgram()
	p := analyzeMicrocode("key-reg", prog, dataflow.Config{},
		func(site dataflow.LaneSite) (dataflow.RegSource, bool) {
			if site.Kind == dataflow.LaneERAddr && site.Row == 0 && site.Col == 0 {
				return dataflow.RegSource{Row: 0, Col: 0}, true
			}
			return dataflow.RegSource{}, false
		})
	requireCode(t, p, "secret-eram-addr", vet.Error, a1Addr)
	if !strings.Contains(p.Findings[len(p.Findings)-1].Msg, "eRAM-read-address") {
		for _, f := range p.Findings {
			if f.Code == "secret-eram-addr" && !strings.Contains(f.Msg, "eRAM-read-address") {
				t.Errorf("finding does not name the lane: %s", f)
			}
		}
	}
}

// TestUnprovenProgram pins ct-unproven for a program that never produces
// output: no constant-time claim may be made about it.
func TestUnprovenProgram(t *testing.T) {
	prog := []isa.Instr{{Op: isa.OpNop}, {Op: isa.OpHalt}}
	p := AnalyzeMicrocode("nop", prog, dataflow.Config{})
	found := false
	for _, f := range p.Findings {
		if f.Code == "ct-unproven" && f.Sev == vet.Error {
			found = true
		}
	}
	if !found {
		t.Errorf("no ct-unproven finding; got %v", p.Findings)
	}
	if p.ConstantTime() {
		t.Error("ConstantTime() = true for an unproven program")
	}
}

// TestCompareOutputTaint pins the output-column leg of the differential.
func TestCompareOutputTaint(t *testing.T) {
	mc := &Profile{Name: "x", Source: "microcode", Complete: true, Outputs: 1}
	fp := &Profile{Name: "x", Source: "fastpath", Complete: true, Outputs: 1}
	mc.OutTaint[2] = Taint{Key: true, Plain: true}
	fp.OutTaint[2] = Taint{Plain: true}
	fs := Compare(mc, fp)
	if len(fs) != 1 || fs[0].Code != "ct-profile-mismatch" {
		t.Fatalf("findings = %v, want one ct-profile-mismatch", fs)
	}
	if !strings.Contains(fs[0].Msg, "output column 2") {
		t.Errorf("message does not name the column: %s", fs[0].Msg)
	}
}

// TestCompareIncompleteFastpath: a fastpath walk that failed to close
// cannot be differentially checked and must say so.
func TestCompareIncompleteFastpath(t *testing.T) {
	mc := &Profile{Name: "x", Source: "microcode", Complete: true, Outputs: 1}
	fp := &Profile{Name: "x", Source: "fastpath"}
	fs := Compare(mc, fp)
	if len(fs) != 1 || fs[0].Code != "ct-profile-mismatch" {
		t.Fatalf("findings = %v, want one ct-profile-mismatch", fs)
	}
}

// TestReportSummaryShapes pins the Summary strings the gate and the
// EXPERIMENTS table key on.
func TestReportSummaryShapes(t *testing.T) {
	clean := &Profile{Name: "x", Source: "microcode", Complete: true, Outputs: 1}
	rep := BuildReport("x", clean, &Profile{Name: "x", Source: "fastpath", Complete: true, Outputs: 1}, "")
	if got := rep.Summary(); got != "constant-time profile proven; fastpath agrees" {
		t.Errorf("Summary() = %q", got)
	}

	warn := &Profile{Name: "y", Source: "microcode", Complete: true, Outputs: 1,
		Accesses: []Access{{Row: 0, Col: 1, Elem: isa.ElemC, Taint: Taint{Key: true}, CfgAddr: 3}}}
	rep = BuildReport("y", warn, nil, "needs key")
	if got := rep.Summary(); got != "t-table class (1 secret-indexed sites: 1 lut, 0 gf); fastpath skipped: needs key" {
		t.Errorf("Summary() = %q", got)
	}
	if rep.ConstantTime() {
		t.Error("ConstantTime() = true for a t-table profile")
	}
	if rep.HasErrors() {
		t.Error("HasErrors() = true for a warn-only report")
	}
}
