// gost-parallel demonstrates a mapping beyond the paper's evaluation:
// GOST 28147-89 on the base COBRA array. Because GOST blocks are 64 bits,
// the 128-bit datapath encrypts two blocks per pass — block A in columns
// 0-1, block B in columns 2-3 — doubling per-pass throughput relative to
// the 128-bit ciphers. The round function is a single RCE row pair (adder,
// composed 8→8 S-box tables, <<<11, XOR), with the Feistel swap handled by
// input-select role relabeling.
package main

import (
	"bytes"
	"fmt"
	"log"

	"cobra/internal/cipher"
	"cobra/internal/program"
)

func main() {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(3 * i)
	}

	p, err := program.BuildGOST(key)
	if err != nil {
		log.Fatal(err)
	}
	m, err := program.NewMachine(p)
	if err != nil {
		log.Fatal(err)
	}
	if err := program.Load(m, p); err != nil {
		log.Fatal(err)
	}

	// 16 GOST blocks = 8 superblocks of two parallel 64-bit blocks.
	src := make([]byte, 16*8)
	for i := range src {
		src[i] = byte(i)
	}
	ct := make([]byte, len(src))
	stats, err := program.RunBytes(m, p, ct, src, program.Opts{})
	if err != nil {
		log.Fatal(err)
	}

	ref, err := cipher.NewGOST(key)
	if err != nil {
		log.Fatal(err)
	}
	want := make([]byte, len(src))
	for i := 0; i < len(src); i += 8 {
		ref.Encrypt(want[i:], src[i:])
	}
	if !bytes.Equal(ct, want) {
		log.Fatal("datapath output does not match the GOST reference")
	}

	gostBlocks := len(src) / 8
	fmt.Printf("GOST 28147-89 on the base 4x4 COBRA array\n")
	fmt.Printf("  microcode:        %d instructions\n", len(p.Instrs))
	fmt.Printf("  64-bit blocks:    %d (two per 128-bit pass)\n", gostBlocks)
	fmt.Printf("  datapath cycles:  %d (%.1f per 64-bit block)\n",
		stats.Cycles, float64(stats.Cycles)/float64(gostBlocks))
	fmt.Printf("  verified against the reference implementation: ok\n")
}
