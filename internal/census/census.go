// Package census reproduces the §3 block-cipher analysis: the study of 41
// block ciphers with 64- and 128-bit block sizes whose atomic-operation
// occurrence counts (Table 2) drove the COBRA element set.
//
// The paper publishes only the aggregate occurrence counts; the per-cipher
// attribution encoded here is our reconstruction from the public algorithm
// specifications, constrained so that the aggregates equal Table 2 exactly
// (asserted by the test suite). Each operation class maps onto the RCE
// element that serves it, which the Requirements function makes explicit.
package census

import "sort"

// Op is an atomic-operation class from Table 2.
type Op uint

const (
	// OpBoolean is bit-wise XOR, AND or OR (→ A elements).
	OpBoolean Op = 1 << iota
	// OpModAddSub is addition/subtraction mod 2^8/2^16/2^32 (→ B element).
	OpModAddSub
	// OpFixedShift is a fixed shift or rotation (→ E elements).
	OpFixedShift
	// OpVarRotate is data-dependent rotation (→ E elements, 5-bit M mux).
	OpVarRotate
	// OpModMult is multiplication/squaring mod 2^16/2^32 (→ D element).
	OpModMult
	// OpGFMult is fixed-constant GF(2^8) multiplication (→ F element).
	OpGFMult
	// OpModInv is modular inversion (not supported by COBRA; 1 of 41).
	OpModInv
	// OpLUT is look-up-table substitution (→ C element).
	OpLUT
)

// opOrder lists the Table 2 rows in publication order.
var opOrder = []struct {
	Op   Op
	Name string
}{
	{OpBoolean, "Boolean"},
	{OpModAddSub, "Modular Addition and Subtraction"},
	{OpFixedShift, "Fixed Shift"},
	{OpVarRotate, "Variable Rotation"},
	{OpModMult, "Modular Multiplication"},
	{OpGFMult, "Galois Field Multiplication"},
	{OpModInv, "Modular Inversion"},
	{OpLUT, "Look-Up Table Substitution"},
}

// Name returns the Table 2 row label of the operation.
func (o Op) Name() string {
	for _, row := range opOrder {
		if row.Op == o {
			return row.Name
		}
	}
	return "?"
}

// Ops returns the Table 2 operations in publication order.
func Ops() []Op {
	out := make([]Op, len(opOrder))
	for i, row := range opOrder {
		out[i] = row.Op
	}
	return out
}

// Cipher is one entry of the §3 study.
type Cipher struct {
	Name      string
	BlockBits int
	Ops       Op
}

// Uses reports whether the cipher uses the operation class.
func (c Cipher) Uses(o Op) bool { return c.Ops&o != 0 }

// Studied returns the 41 block ciphers of the §3 analysis, in the paper's
// order.
func Studied() []Cipher {
	b := OpBoolean
	add := OpModAddSub
	fs := OpFixedShift
	vr := OpVarRotate
	mm := OpModMult
	gf := OpGFMult
	inv := OpModInv
	lut := OpLUT
	return []Cipher{
		{"Blowfish", 64, b | add | lut},
		{"CAST", 64, b | add | fs | vr | lut},
		{"CAST-128", 64, b | add | fs | vr | lut},
		{"CAST-256", 128, b | add | fs | vr | lut},
		{"CRYPTON", 128, b | fs | gf | lut},
		{"CS-Cipher", 64, b | gf | lut},
		{"DEAL", 128, b | lut},
		{"DES", 64, b | fs | lut},
		{"DFC", 128, b | add | mm | inv},
		{"E2", 128, b | add | fs | mm | lut},
		{"FEAL", 64, b | add | fs},
		{"FROG", 128, b | vr | lut},
		{"GOST", 64, b | add | fs | lut},
		{"Hasty Pudding", 128, b | add | fs | vr | mm | lut},
		{"ICE", 64, b | fs | vr | lut},
		{"IDEA", 64, b | add | mm},
		{"Khafre", 64, b | fs | lut},
		{"Khufu", 64, b | fs | lut},
		{"LOKI91", 64, b | fs | lut},
		{"LOKI97", 128, b | fs | vr | lut},
		{"Lucifer", 128, b | fs | lut},
		{"MacGuffin", 64, b | fs | lut},
		{"MAGENTA", 128, b | gf},
		{"MARS", 128, b | add | fs | vr | mm | lut},
		{"MISTY1", 64, b | fs | lut},
		{"MISTY2", 64, b | fs | lut},
		{"MMB", 128, b | mm},
		{"RC2", 64, b | add},
		{"RC5", 64, b | add | vr},
		{"RC6", 128, b | add | fs | vr | mm},
		{"Rijndael", 128, b | gf | lut},
		{"SAFER K", 64, add | lut},
		{"SAFER+", 128, b | add | lut},
		{"Serpent", 128, b | fs | lut},
		{"SQUARE", 128, b | gf | lut},
		{"SHARK", 64, b | gf | lut},
		{"SKIPJACK", 64, b | lut},
		{"TEA", 64, b | add | fs},
		{"Twofish", 128, b | add | fs | gf | lut},
		{"WAKE", 64, b | add | fs},
		{"WiderWake", 64, b | add | fs},
	}
}

// Count is one Table 2 row: how many of the studied ciphers use the
// operation.
type Count struct {
	Op          Op
	Name        string
	Occurrences int
	Total       int
}

// Table2 computes the occurrence counts over the studied ciphers.
func Table2() []Count {
	ciphers := Studied()
	out := make([]Count, 0, len(opOrder))
	for _, row := range opOrder {
		n := 0
		for _, c := range ciphers {
			if c.Uses(row.Op) {
				n++
			}
		}
		out = append(out, Count{Op: row.Op, Name: row.Name, Occurrences: n, Total: len(ciphers)})
	}
	return out
}

// Requirement maps an operation class to the RCE element serving it; an
// empty element means COBRA deliberately leaves the operation unsupported.
type Requirement struct {
	Op      Op
	Element string
	Note    string
}

// Requirements derives the §3 element requirements from the census: every
// operation used by a substantial share of the studied ciphers maps to a
// dedicated reconfigurable element.
func Requirements() []Requirement {
	return []Requirement{
		{OpBoolean, "A", "bit-wise XOR, AND, OR"},
		{OpModAddSub, "B", "add/subtract mod 2^8, 2^16, 2^32"},
		{OpFixedShift, "E", "fixed shift/rotation (front, middle, rear)"},
		{OpVarRotate, "E", "data-dependent amounts via 5-bit M mux"},
		{OpModMult, "D", "multiply mod 2^16/2^32, square mod 2^32 (RCE MUL)"},
		{OpGFMult, "F", "fixed field constant GF(2^8) multiplication"},
		{OpModInv, "", "1 of 41 — excluded from the architecture (§4: IDEA-specific)"},
		{OpLUT, "C", "4→4 paged, 8→8, and 8→32 look-up tables"},
	}
}

// Supporting returns the names of studied ciphers using the operation,
// sorted, for the census tooling.
func Supporting(o Op) []string {
	var names []string
	for _, c := range Studied() {
		if c.Uses(o) {
			names = append(names, c.Name)
		}
	}
	sort.Strings(names)
	return names
}

// BlockSizes summarizes the block-size restriction of the study (§3: "the
// analysis was restricted to block ciphers that operate on block sizes of
// 64 and 128 bits").
func BlockSizes() map[int]int {
	out := map[int]int{}
	for _, c := range Studied() {
		out[c.BlockBits]++
	}
	return out
}
