// Package iram models the COBRA instruction RAM and its sequencer state
// (§3.3–3.4): a 12-bit × 80-bit memory supporting programs of up to 4096
// instructions, a program counter, and the flag register through which the
// microcode talks to the external system (ready/busy/data-valid/key-request
// and generic flags).
//
// The iRAM operates independently from the datapath; the machine in package
// sim drives one instruction fetch per two iRAM clock cycles and one
// datapath cycle per instruction window, implementing the paper's
// dual-clocking scheme.
package iram

import (
	"fmt"

	"cobra/internal/isa"
)

// Sequencer is the instruction RAM plus fetch state.
type Sequencer struct {
	prog  []isa.Instr
	pc    int
	flags uint16
}

// Load validates and installs a packed microcode image. Loading resets the
// program counter and flags (power-up state; §3.4: the architecture idles
// until the external system indicates that the iRAM has been loaded).
func (s *Sequencer) Load(words []isa.Word) error {
	if len(words) == 0 {
		return fmt.Errorf("iram: empty program")
	}
	if len(words) > isa.IRAMWords {
		return fmt.Errorf("iram: program of %d instructions exceeds iRAM capacity %d",
			len(words), isa.IRAMWords)
	}
	prog := make([]isa.Instr, len(words))
	for i, w := range words {
		in, err := isa.Unpack(w)
		if err != nil {
			return fmt.Errorf("iram: address %#x: %w", i, err)
		}
		prog[i] = in
	}
	for i, in := range prog {
		if in.Op != isa.OpJmp {
			continue
		}
		if t := int(in.Data & 0xfff); t >= len(prog) {
			return fmt.Errorf("iram: address %#x: jump target %#x outside program of %d instructions",
				i, t, len(prog))
		}
	}
	s.prog = prog
	s.Reset()
	return nil
}

// LoadInstrs installs an already-decoded program (test and tooling path).
func (s *Sequencer) LoadInstrs(prog []isa.Instr) error {
	words := make([]isa.Word, len(prog))
	for i, in := range prog {
		words[i] = in.Pack()
	}
	return s.Load(words)
}

// Reset rewinds the program counter and clears the flag register without
// disturbing the loaded program.
func (s *Sequencer) Reset() {
	s.pc = 0
	s.flags = 0
}

// Len returns the number of loaded instructions.
func (s *Sequencer) Len() int { return len(s.prog) }

// PC returns the current program counter.
func (s *Sequencer) PC() int { return s.pc }

// Fetch returns the instruction at the program counter and advances it.
// Running off the end of the program is a microcode bug; the paper's
// programs always end in a jump back to the idle point or a halt.
func (s *Sequencer) Fetch() (isa.Instr, error) {
	if s.pc < 0 || s.pc >= len(s.prog) {
		return isa.Instr{}, fmt.Errorf("iram: program counter %#x outside program of %d instructions",
			s.pc, len(s.prog))
	}
	in := s.prog[s.pc]
	s.pc++
	return in, nil
}

// Jump sets the program counter (OpJmp).
func (s *Sequencer) Jump(addr int) error {
	if addr < 0 || addr >= len(s.prog) {
		return fmt.Errorf("iram: jump target %#x outside program of %d instructions",
			addr, len(s.prog))
	}
	s.pc = addr
	return nil
}

// Flags returns the flag register.
func (s *Sequencer) Flags() uint16 { return s.flags }

// SetFlags applies an OpCtlFlag set/clear pair. Set wins over clear for
// bits present in both masks, matching a set-dominant hardware flag cell.
func (s *Sequencer) SetFlags(cfg isa.FlagCfg) {
	s.flags = (s.flags &^ cfg.Clear) | cfg.Set
}

// Flag reports whether all bits in mask are set.
func (s *Sequencer) Flag(mask uint16) bool { return s.flags&mask == mask }

// Instr returns the instruction at addr for disassembly tooling.
func (s *Sequencer) Instr(addr int) (isa.Instr, error) {
	if addr < 0 || addr >= len(s.prog) {
		return isa.Instr{}, fmt.Errorf("iram: address %#x out of range", addr)
	}
	return s.prog[addr], nil
}
