// Command cobra-farm sweeps the worker count of an internal/farm device
// pool over a fixed non-feedback-mode workload and prints the
// throughput-scaling table: simulated wall-clock cycles, aggregate
// simulated throughput and speedup versus one device, plus the host-side
// wall time of the sweep. This is the replication experiment the paper's
// Table 1 NFB column implies but never runs — non-feedback modes scale by
// adding devices. Decryption in ECB and CBC is non-feedback too (each
// ciphertext block's chaining input is the previous ciphertext block,
// already known), so the sweep covers those as well.
//
// Usage:
//
//	cobra-farm                                   # AES-128 CTR, 4096 blocks, workers 1,2,4,8
//	cobra-farm -alg serpent -workers 1,2,4,8,16  # other datapaths / pool sizes
//	cobra-farm -mode ecb -rounds 2               # ECB sharding on an iterative pipeline
//	cobra-farm -mode decrypt_cbc                 # parallel CBC decryption (Table 1 NFB)
//	cobra-farm -policy roundrobin                # baseline placement, for comparison
//	cobra-farm -metrics 127.0.0.1:9090 -hold 5m  # live /metrics + /debug/vars while sweeping
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"cobra/internal/cipher"
	"cobra/internal/core"
	"cobra/internal/farm"
	"cobra/internal/obs"
)

func main() {
	alg := flag.String("alg", "rijndael", "algorithm: rc6, rijndael, serpent")
	rounds := flag.Int("rounds", 0, "unroll depth (0: full unroll, maximum throughput)")
	blocks := flag.Int("blocks", 4096, "message size in 128-bit blocks")
	workersCSV := flag.String("workers", "1,2,4,8", "comma-separated pool sizes to sweep")
	mode := flag.String("mode", "ctr", "mode of operation: ctr, ecb, decrypt_ecb or decrypt_cbc")
	policy := flag.String("policy", "affinity", "scheduler policy: affinity or roundrobin")
	minWorkers := flag.Int("min-workers", 0, "quiesce floor for idle workers (0: default)")
	queueDepth := flag.Int("queue-depth", 0, "per-worker shard queue depth (0: default)")
	keyHex := flag.String("key", strings.Repeat("00", 16), "key (hex)")
	ivHex := flag.String("iv", strings.Repeat("00", 16), "initial counter block / IV (hex)")
	timeout := flag.Duration("timeout", 0, "per-sweep-point deadline (0: none)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/trace on this address (e.g. 127.0.0.1:9090; port 0 picks one)")
	hold := flag.Duration("hold", 0, "keep the last farm open and the metrics endpoint serving this long after the sweep (requires -metrics)")
	trace := flag.Int("trace", 0, "per-farm span trace ring size (0: disabled; records at /debug/trace)")
	flag.Parse()

	key, err := hex.DecodeString(*keyHex)
	if err != nil {
		fatal(fmt.Errorf("bad -key: %v", err))
	}
	iv, err := hex.DecodeString(*ivHex)
	if err != nil {
		fatal(fmt.Errorf("bad -iv: %v", err))
	}
	workers, err := parseWorkers(*workersCSV)
	if err != nil {
		fatal(err)
	}

	msg := make([]byte, 16**blocks)
	for i := range msg {
		msg[i] = byte(i*31 + i>>8)
	}
	// Encrypt sweeps feed msg and expect the reference ciphertext;
	// decrypt sweeps feed the reference ciphertext and expect msg back.
	ref, err := hostReference(core.Algorithm(*alg), key, iv, msg, *mode)
	if err != nil {
		fatal(err)
	}
	input, want := msg, ref
	if strings.HasPrefix(*mode, "decrypt_") {
		input, want = ref, msg
	}

	var metrics *obs.Registry
	var metricsSrv *obs.Server
	if *metricsAddr != "" {
		metrics = obs.Default
		srv, err := obs.Serve(*metricsAddr, metrics)
		if err != nil {
			fatal(err)
		}
		metricsSrv = srv
		// A SIGTERM/SIGINT racing a scrape must not drop it: drain the
		// endpoint gracefully (deadline-bounded) instead of letting the
		// process exit tear the listener down mid-response.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		// Parsed by the CI smoke test; keep the prefix stable.
		fmt.Printf("metrics: serving on %s\n", srv.URL)
	}

	fmt.Printf("cobra-farm: %s-%s, %d blocks (%d KiB), shard cap %d blocks, policy %s\n\n",
		*alg, *mode, *blocks, len(msg)/1024, farm.DefaultShardBlocks, *policy)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "workers\tjobs\twall cycles\tcyc/blk\tMbps (sim)\tspeedup\trecfg\thost ms")
	base := 0.0
	for _, n := range workers {
		f, err := farm.Open(core.Algorithm(*alg), key, farm.Options{
			Workers:    n,
			MinWorkers: *minWorkers,
			QueueDepth: *queueDepth,
			Policy:     farm.Policy(*policy),
			Metrics:    metrics,
			Trace:      *trace,
			Config:     core.Config{Unroll: *rounds},
		})
		if err != nil {
			fatal(err)
		}
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		startHost := time.Now()
		var got []byte
		switch *mode {
		case "ctr":
			got, err = f.EncryptCTR(ctx, iv, input)
		case "ecb":
			got, err = f.EncryptECB(ctx, input)
		case "decrypt_ecb":
			got, err = f.DecryptECB(ctx, input)
		case "decrypt_cbc":
			got, err = f.DecryptCBC(ctx, iv, input)
		default:
			err = fmt.Errorf("unknown -mode %q", *mode)
		}
		hostMS := float64(time.Since(startHost).Microseconds()) / 1000
		cancel()
		if err != nil {
			fatal(err)
		}
		if string(got) != string(want) {
			fatal(fmt.Errorf("workers=%d: output differs from host reference", n))
		}
		r := f.Report()
		if base == 0 {
			base = r.EffectiveMbps
		}
		speedup := 1.0
		if base > 0 {
			speedup = r.EffectiveMbps / base
		}
		jobs := 0
		for _, wr := range r.PerWorker {
			jobs += wr.Jobs
		}
		recfg := f.Pool().SchedStats().Reconfigures
		fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\t%.1f\t%.2fx\t%d\t%.1f\n",
			n, jobs, r.WallCycles, r.CyclesPerBlock, r.EffectiveMbps, speedup, recfg, hostMS)
		if n == workers[len(workers)-1] && *hold > 0 && metricsSrv != nil {
			// Leave the final pool attached so the endpoint keeps serving
			// its live (post-sweep) counters — scrape, then signal or wait.
			// The hold is interruptible: SIGTERM/SIGINT ends it early and
			// falls through to the graceful metrics drain, so the held
			// process exits cleanly instead of dying mid-scrape.
			w.Flush()
			fmt.Printf("\nholding last farm open for %s (scrape /metrics now; SIGTERM ends the hold)\n", *hold)
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
			select {
			case <-time.After(*hold):
			case s := <-sig:
				fmt.Printf("hold interrupted by %v, draining\n", s)
			}
			signal.Stop(sig)
		}
		f.Close()
	}
	w.Flush()
}

// parseWorkers parses the -workers sweep list.
func parseWorkers(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// hostReference computes the mode's reference ciphertext with the host
// reference cipher, so every sweep point is verified before its
// measurement prints. For the decrypt modes it returns the ciphertext
// the farm is asked to invert.
func hostReference(alg core.Algorithm, key, iv, msg []byte, mode string) ([]byte, error) {
	var blk cipher.Block
	var err error
	switch alg {
	case core.RC6:
		blk, err = cipher.NewRC6(key)
	case core.Rijndael:
		blk, err = cipher.NewRijndael(key)
	case core.Serpent:
		blk, err = cipher.NewSerpentCOBRA(key)
	default:
		err = fmt.Errorf("unknown -alg %q", alg)
	}
	if err != nil {
		return nil, err
	}
	dst := make([]byte, len(msg))
	switch mode {
	case "ctr":
		var c, ks [16]byte
		copy(c[:], iv)
		for off := 0; off < len(msg); off += 16 {
			blk.Encrypt(ks[:], c[:])
			for i := 15; i >= 0; i-- {
				c[i]++
				if c[i] != 0 {
					break
				}
			}
			for j := 0; j < 16 && off+j < len(msg); j++ {
				dst[off+j] = msg[off+j] ^ ks[j]
			}
		}
	case "ecb", "decrypt_ecb":
		if len(msg)%16 != 0 {
			return nil, fmt.Errorf("%s needs whole blocks", mode)
		}
		for off := 0; off < len(msg); off += 16 {
			blk.Encrypt(dst[off:], msg[off:])
		}
	case "decrypt_cbc":
		if len(msg)%16 != 0 {
			return nil, fmt.Errorf("%s needs whole blocks", mode)
		}
		prev := iv
		for off := 0; off < len(msg); off += 16 {
			var x [16]byte
			for j := 0; j < 16; j++ {
				x[j] = msg[off+j] ^ prev[j]
			}
			blk.Encrypt(dst[off:], x[:])
			prev = dst[off : off+16]
		}
	default:
		return nil, fmt.Errorf("unknown -mode %q", mode)
	}
	return dst, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobra-farm:", err)
	os.Exit(1)
}
