// Command cobra-vet statically verifies COBRA microcode (cobravet): the
// §3.4 conventions — instruction-window alignment, DISOUT/ENOUT bracketing
// of overfull reconfigurations, the ready/busy/data-valid protocol — plus
// control flow, dead code, and static range checks, without running the
// simulator.
//
// Usage:
//
//	cobra-vet -builtin              # lint every built-in Table 3 program
//	cobra-vet prog.casm             # lint an assembled source file
//	cobra-vet -window 4 prog.casm   # ...against an instruction window
//	cobra-vet -rows 8 prog.casm     # ...against a taller geometry
//	cobra-vet -dataflow -builtin    # ...plus the dataflow analyzers
//	cobra-vet -equiv -builtin       # ...plus translation validation
//	cobra-vet -ct -builtin          # ...plus side-channel analysis
//	cobra-vet -json ct.json -ct -builtin   # ...plus machine-readable findings
//
// With -dataflow each program additionally runs package dataflow's abstract
// walk: uninitialized-read, dead-element/dead-store, key/plaintext taint,
// and static per-window timing, reported with the effective-gate-count
// summary.
//
// With -equiv each program is additionally trace-compiled and the compiled
// fastpath is symbolically proven equivalent to the microcode (package
// equiv); a program the compiler refuses (key-request handshakes) is
// reported as skipped, not failed. An unproven trace is a finding and
// prints both sides' expressions plus a concrete diverging input witness.
//
// With -ct each program additionally runs package sca's static side-channel
// analysis: key/plaintext taint reaching table indices (the T-table class,
// a warning with element coordinates), eRAM address lanes or control
// decisions (errors), plus the microcode/fastpath profile differential.
// A T-table-class profile is a clean verdict — only Error findings dirty
// the run — so ARX ciphers must prove constant-time profiles while S-box
// ciphers document their access patterns.
//
// With -json <path> every finding is additionally written as a
// machine-readable report ("-" writes to stdout), one entry per
// (program, check) pair — the CI artifact format.
//
// cobra-vet is a full-report tool: every program and every file is checked
// and every finding printed before the exit status is decided. A broken
// program never masks findings in the ones after it. Exit status is 1 if
// any program produced a finding (or failed to build, assemble, or prove),
// 2 on usage errors.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"

	"cobra/internal/asm"
	"cobra/internal/bench"
	"cobra/internal/dataflow"
	"cobra/internal/datapath"
	"cobra/internal/equiv"
	"cobra/internal/fastpath"
	"cobra/internal/isa"
	"cobra/internal/program"
	"cobra/internal/sca"
	"cobra/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool behind an exit code, testable without a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cobra-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	builtin := fs.Bool("builtin", false, "lint every built-in program (Table 3 sweep, decrypt, GOST, windowed Serpent, keyed Rijndael)")
	rows := fs.Int("rows", 4, "geometry rows for .casm files")
	window := fs.Int("window", 1, "instruction window size for .casm files")
	keyHex := fs.String("key", "000102030405060708090a0b0c0d0e0f", "key for the built-in builds (hex)")
	dflow := fs.Bool("dataflow", false, "also run the word-level dataflow analyzers (def-use, liveness, taint, static timing)")
	equivFlag := fs.Bool("equiv", false, "also trace-compile and symbolically validate the fastpath against the microcode")
	ctFlag := fs.Bool("ct", false, "also run the static side-channel analysis (secret-indexed table reads, address/control lanes, fastpath differential)")
	jsonPath := fs.String("json", "", `write machine-readable findings to this path ("-": stdout)`)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if !*builtin && fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	dirty := false
	var jsonReports []vet.JSONReport
	addJSON := func(r vet.JSONReport) {
		if *jsonPath != "" {
			jsonReports = append(jsonReports, r)
		}
	}
	// fail records a finding that is not a vet.Finding: a build, assembly,
	// or validation failure. It never aborts the run — full report first.
	fail := func(format string, a ...any) {
		dirty = true
		msg := fmt.Sprintf(format, a...)
		fmt.Fprintf(stderr, "cobra-vet: %s\n", msg)
		addJSON(vet.JSONReport{Check: "build", Findings: []vet.JSONFinding{
			{Severity: "error", Code: "build-failure", Msg: msg},
		}})
	}
	report := func(name string, fs []vet.Finding) {
		addJSON(vet.NewJSONReport(name, "vet", fs))
		if len(fs) == 0 {
			fmt.Fprintf(stdout, "%-24s clean\n", name)
			return
		}
		dirty = true
		for _, f := range fs {
			fmt.Fprintf(stdout, "%s: %s\n", name, f)
		}
	}
	// reportFlow prints a program's dataflow result: findings (or "flow
	// clean"), then the gate and timing summary for closed walks.
	reportFlow := func(name string, res *dataflow.Result) {
		addJSON(vet.NewJSONReport(name, "dataflow", res.Findings))
		if len(res.Findings) == 0 {
			fmt.Fprintf(stdout, "%-24s flow clean", name)
		} else {
			dirty = true
			fmt.Fprintln(stdout)
			for _, f := range res.Findings {
				fmt.Fprintf(stdout, "%s: %s\n", name, f)
			}
			fmt.Fprintf(stdout, "%-24s", name)
		}
		if res.Complete && res.Outputs > 0 {
			fmt.Fprintf(stdout, "  %d/%d elems live (%d/%d gates)",
				res.Gates.LiveElems, res.Gates.ConfiguredElems,
				res.Gates.LiveGates, res.Gates.ConfiguredGates)
			if res.Timing.Configs > 0 {
				fmt.Fprintf(stdout, "  %.3f MHz over %d cfgs", res.Timing.DatapathMHz, res.Timing.Configs)
			}
		}
		fmt.Fprintln(stdout)
	}
	// reportEquiv prints one translation-validation verdict; an unproven
	// trace dirties the run.
	reportEquiv := func(name string, res *equiv.Result) {
		fmt.Fprintf(stdout, "%s\n", res)
		jr := vet.JSONReport{Name: name, Check: "equiv", Clean: res.Proven, Findings: []vet.JSONFinding{}}
		if !res.Proven {
			dirty = true
			jr.Findings = append(jr.Findings, vet.JSONFinding{
				Severity: "error", Code: "equiv-unproven", Msg: res.String(),
			})
		}
		addJSON(jr)
	}
	// reportCT prints one constant-time verdict: the findings, then the
	// summary line. Only Error findings dirty the run — a T-table-class
	// profile (Warn findings) is a clean verdict with documented access
	// patterns.
	reportCT := func(name string, rep *sca.Report) {
		addJSON(vet.JSONReport{Name: name, Check: "ct", Clean: !rep.HasErrors(),
			Findings: vet.NewJSONReport(name, "ct", rep.Findings).Findings})
		for _, f := range rep.Findings {
			fmt.Fprintf(stdout, "%s: %s\n", name, f)
		}
		fmt.Fprintf(stdout, "%-24s ct: %s\n", name, rep.Summary())
		if rep.HasErrors() {
			dirty = true
		}
	}

	if *builtin {
		key, err := hex.DecodeString(*keyHex)
		if err != nil {
			fmt.Fprintln(stderr, "cobra-vet: bad -key:", err)
			return 2
		}
		if len(key) == 0 {
			fmt.Fprintln(stderr, "cobra-vet: bad -key: empty")
			return 2
		}
		progs, errs := builtins(key)
		for _, err := range errs {
			fail("%v", err)
		}
		for _, p := range progs {
			report(p.Name, p.Vet())
			if *dflow {
				reportFlow(p.Name, p.Analyze())
			}
			if *equivFlag {
				// A compile refusal is a documented skip, not a failure:
				// key-request handshake programs have no trace to validate.
				if res, err := p.Validate(); err != nil {
					fmt.Fprintf(stdout, "%-24s equiv skipped: %v\n", p.Name, err)
				} else {
					reportEquiv(p.Name, res)
				}
			}
			if *ctFlag {
				reportCT(p.Name, p.CheckConstantTime())
			}
		}
	}

	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
			continue
		}
		words, err := asm.Assemble(string(src))
		if err != nil {
			fail("%s: %v", path, err)
			continue
		}
		report(path, vet.CheckWords(words, vet.Config{Rows: *rows, Window: *window}))
		// The dataflow and sca analyses share the decoded instruction list.
		var ins []isa.Instr
		if *dflow || *ctFlag {
			ins = make([]isa.Instr, len(words))
			for i, w := range words {
				in, err := isa.Unpack(w)
				if err != nil {
					fail("%s: word %d: %v", path, i, err)
					ins = nil
					break
				}
				ins[i] = in
			}
		}
		if *dflow && ins != nil {
			reportFlow(path, dataflow.Analyze(ins, dataflow.Config{Rows: *rows, Window: *window}))
		}
		if *equivFlag {
			geo := datapath.Geometry{Rows: *rows}
			ex, err := fastpath.Compile(fastpath.Source{
				Name: path, Words: words, Geometry: geo, Window: *window,
			})
			if err != nil {
				fmt.Fprintf(stdout, "%-24s equiv skipped: %v\n", path, err)
			} else {
				reportEquiv(path, equiv.Validate(words, equiv.Config{
					Name: path, Geometry: geo, Window: *window,
				}, ex.Trace()))
			}
		}
		if *ctFlag && ins != nil {
			geo := datapath.Geometry{Rows: *rows}
			mc := sca.AnalyzeMicrocode(path, ins, dataflow.Config{Rows: *rows, Window: *window})
			var rep *sca.Report
			if ex, err := fastpath.Compile(fastpath.Source{
				Name: path, Words: words, Geometry: geo, Window: *window,
			}); err != nil {
				rep = sca.BuildReport(path, mc, nil, err.Error())
			} else {
				rep = sca.BuildReport(path, mc, sca.AnalyzeTrace(ex.Trace()), "")
			}
			reportCT(path, rep)
		}
	}

	if *jsonPath != "" {
		out := stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintf(stderr, "cobra-vet: -json: %v\n", err)
				return 2
			}
			defer f.Close()
			out = f
		}
		if err := vet.WriteJSON(out, jsonReports); err != nil {
			fmt.Fprintf(stderr, "cobra-vet: -json: %v\n", err)
			return 2
		}
	}

	if dirty {
		return 1
	}
	return 0
}

// builtins compiles every built-in program the repository ships. Builders
// that fail are collected, not fatal: the rest of the corpus still runs.
func builtins(key []byte) ([]*program.Program, []error) {
	var progs []*program.Program
	var errs []error
	add := func(p *program.Program, err error) {
		if err != nil {
			errs = append(errs, err)
			return
		}
		progs = append(progs, p)
	}
	serpentDec := false
	for _, c := range bench.Configurations() {
		add(bench.Build(c, key))
		if c.Alg == "serpent" {
			// The Serpent decryptor is depth-independent; build it once.
			if serpentDec {
				continue
			}
			serpentDec = true
		}
		add(bench.BuildDecrypt(c, key))
	}
	for w := 2; w <= 16; w++ {
		add(program.BuildSerpentWindowed(key, w))
	}
	gostKey := make([]byte, 32) // GOST wants 256 bits; cycle the key bytes
	for i := range gostKey {
		gostKey[i] = key[i%len(key)]
	}
	add(program.BuildGOST(gostKey))
	add(program.BuildRijndaelKeyed())
	for _, c := range bench.ExtendedConfigurations() {
		add(bench.BuildExtended(c, key))
		add(bench.BuildExtendedDecrypt(c, key))
	}
	return progs, errs
}
