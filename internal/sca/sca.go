// Package sca is the static side-channel analyzer (cobra-ct): it verifies,
// per program, where key and plaintext taint flows on the way to the
// ciphertext — not just that it arrives (package dataflow's job).
//
// The paper's array puts every classical software side channel in a
// nameable place: LUT banks are the S-box memories whose read addresses a
// cache observer sees, eRAM read ports and the playback counter are the
// only other memory addresses, and the iRAM sequencer is the only control
// path. The analyzer attaches a dataflow.Tap to the abstract taint walk
// and classifies the taint reaching each of those lanes:
//
//   - secret-branch (Error): key- or plaintext-derived data feeds an iRAM
//     branch decision (OpJmp target) or handshake gate (OpCtlFlag). The
//     base ISA cannot express this — OpJmp is unconditional, flag words
//     are immediates — so any occurrence means a rewired lane; the finding
//     exists so the property is verified, not assumed.
//   - secret-eram-addr (Error): key- or plaintext-derived data feeds an
//     eRAM address lane (an INER read port, the playback counter, or a
//     capture port). Same data-independence argument as above.
//   - secret-lut-index (Warn): a C-element LUT read, or an F element whose
//     GF logic a compiled fastpath realizes as table reads, is indexed by
//     key- or plaintext-derived data. This is the T-table class: inherent
//     to AES/Blowfish/DES-style S-box ciphers and reported with element
//     coordinates so deployments can weigh it; ciphers built from
//     add/rotate/xor (TEA, SIMON, RC5, RC6) prove a fully constant-time
//     profile instead.
//   - ct-unproven (Error): the abstract walk did not close (or collected
//     no output), so no total claim about the schedule can be made.
//   - ct-profile-mismatch (Error): the microcode profile and the compiled
//     fastpath trace's profile disagree — a table read present on one side
//     only, an index taint that differs, or an output word whose taint
//     changed. This is the differential check that the thing actually
//     executed (the op list) leaks exactly where the microcode says.
//
// AnalyzeMicrocode profiles the microcode through the dataflow engine;
// AnalyzeTrace walks the compiled fastpath IR (fastpath.Trace) over the
// same {key, plaintext} lattice; Compare runs the differential; and
// BuildReport bundles the three for Program.CheckConstantTime and
// cobra-vet -ct.
package sca

import (
	"fmt"
	"sort"
	"strings"

	"cobra/internal/asm"
	"cobra/internal/dataflow"
	"cobra/internal/datapath"
	"cobra/internal/isa"
	"cobra/internal/vet"
)

// Taint is the key/plaintext dependency lattice shared with the dataflow
// engine's export surface.
type Taint = dataflow.Taint

// Access is one table-read site: an element instance whose evaluation
// reads a memory by data-derived address. C elements read their LUT banks;
// F elements are included because the compiled fastpath realizes their GF
// multiplies as table reads (and the hardware LUT realization is a memory
// too) — keeping F in both profiles is what makes the microcode/fastpath
// differential exact.
type Access struct {
	Row, Col int
	Elem     isa.Elem // ElemC: LUT banks; ElemF: GF contribution tables
	// Taint is the join of the index value's taint over every observed
	// evaluation of the site.
	Taint Taint
	// FirstTick is the first advancing datapath cycle the site was
	// observed at (microcode: cycles from power-up; fastpath: tick index
	// into head then period).
	FirstTick int
	// Count is the number of observed evaluations; walk lengths differ
	// between the two sides, so Compare ignores it.
	Count int
	// CfgAddr is the iRAM address of the element's configuration word
	// (microcode profiles; -1 in fastpath profiles, where the fold erased
	// addresses).
	CfgAddr int
}

// String renders the site for messages: "r1.c2 C".
func (a Access) String() string {
	return fmt.Sprintf("r%d.c%d %s", a.Row, a.Col, a.Elem)
}

func accessKey(row, col int, elem isa.Elem) [3]int {
	return [3]int{row, col, int(elem)}
}

// Profile is one side's side-channel profile: every table-access site with
// its joined index taint, plus the per-column output taint.
type Profile struct {
	Name   string
	Source string // "microcode" or "fastpath"
	// Complete reports the underlying walk closed with outputs observed,
	// so the profile covers the whole schedule and its claims are total.
	Complete bool
	Outputs  int
	// Elided is the compiled trace's dead-op elision count (fastpath
	// profiles; 0 for microcode). Compare tolerates microcode-only sites
	// when elision dropped ops.
	Elided   int
	Accesses []Access
	OutTaint [datapath.Cols]Taint
	Findings []vet.Finding
}

// ConstantTime reports a proven fully constant-time profile: the walk
// closed, no table access is indexed by secret-derived data, and no
// Error-severity finding (secret control/address lanes, unproven walk)
// exists.
func (p *Profile) ConstantTime() bool {
	if p == nil || !p.Complete {
		return false
	}
	for _, a := range p.Accesses {
		if a.Taint.Tainted() {
			return false
		}
	}
	for _, f := range p.Findings {
		if f.Sev == vet.Error {
			return false
		}
	}
	return true
}

// TaintedSites counts the secret-indexed table sites by element class.
func (p *Profile) TaintedSites() (lut, gf int) {
	if p == nil {
		return 0, 0
	}
	for _, a := range p.Accesses {
		if !a.Taint.Tainted() {
			continue
		}
		if a.Elem == isa.ElemF {
			gf++
		} else {
			lut++
		}
	}
	return lut, gf
}

// Report is the full constant-time verdict for one program: the microcode
// profile, the compiled fastpath profile (or why there is none), and the
// merged findings including the differential check's.
type Report struct {
	Name      string
	Microcode *Profile
	// Fastpath is nil when the program has no compiled trace; FastpathSkip
	// then holds the compile refusal (key-request handshakes and friends —
	// a documented skip, not a failure).
	Fastpath     *Profile
	FastpathSkip string
	// Findings merges the microcode profile's findings with the
	// differential's, sorted by address.
	Findings []vet.Finding

	compareErrs int
}

// BuildReport assembles the verdict: microcode findings, then (when a
// trace exists) the microcode/fastpath differential.
func BuildReport(name string, mc, fp *Profile, fpSkip string) *Report {
	r := &Report{Name: name, Microcode: mc, Fastpath: fp, FastpathSkip: fpSkip}
	r.Findings = append(r.Findings, mc.Findings...)
	if fp != nil {
		r.Findings = append(r.Findings, fp.Findings...)
		cmp := Compare(mc, fp)
		r.compareErrs = len(cmp)
		r.Findings = append(r.Findings, cmp...)
	}
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
	return r
}

// HasErrors reports any Error-severity finding (Warn-level T-table
// profiles are clean verdicts).
func (r *Report) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Sev == vet.Error {
			return true
		}
	}
	return false
}

func (r *Report) errorCount() int {
	n := 0
	for _, f := range r.Findings {
		if f.Sev == vet.Error {
			n++
		}
	}
	return n
}

// ConstantTime reports the program proven fully constant-time: no secret-
// indexed access, data-independent control, and (when compiled) a fastpath
// that agrees.
func (r *Report) ConstantTime() bool {
	return !r.HasErrors() && r.Microcode.ConstantTime()
}

// Summary renders the one-line verdict cobra-vet prints after "ct:".
func (r *Report) Summary() string {
	var b strings.Builder
	switch {
	case r.errorCount() > 0:
		fmt.Fprintf(&b, "NOT proven (%d error findings)", r.errorCount())
	case r.Microcode.ConstantTime():
		b.WriteString("constant-time profile proven")
	default:
		lut, gf := r.Microcode.TaintedSites()
		fmt.Fprintf(&b, "t-table class (%d secret-indexed sites: %d lut, %d gf)", lut+gf, lut, gf)
	}
	switch {
	case r.Fastpath == nil && r.FastpathSkip != "":
		fmt.Fprintf(&b, "; fastpath skipped: %s", r.FastpathSkip)
	case r.Fastpath != nil && r.compareErrs == 0:
		b.WriteString("; fastpath agrees")
	case r.Fastpath != nil:
		fmt.Fprintf(&b, "; fastpath DISAGREES (%d mismatches)", r.compareErrs)
	}
	return b.String()
}

// finding builds a diagnostic with its disassembled source line.
func finding(prog []isa.Instr, addr int, sev vet.Severity, code, msg string) vet.Finding {
	var line string
	if addr >= 0 && addr < len(prog) {
		line = asm.Line(prog[addr])
	}
	return vet.Finding{Addr: addr, Sev: sev, Code: code, Msg: msg, Line: line}
}

// sortedAccesses flattens an access map into row/col/elem order.
func sortedAccesses(acc map[[3]int]*Access) []Access {
	out := make([]Access, 0, len(acc))
	for _, a := range acc {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Elem < b.Elem
	})
	return out
}
