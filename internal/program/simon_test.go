package program

import (
	"bytes"
	"testing"
	"testing/quick"

	"cobra/internal/cipher"
)

// simonDepths are every unroll depth that divides the 44 rounds.
var simonDepths = []int{1, 2, 4, 11, 22, 44}

func TestSIMONOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewSIMON64(testKey)
	if err != nil {
		t.Fatal(err)
	}
	want := refEncryptECB(t, ref, testPlain) // 8 SIMON blocks in 4 superblocks
	for _, hw := range simonDepths {
		p, err := BuildSIMON(testKey, hw)
		if err != nil {
			t.Fatalf("simon64-%d: %v", hw, err)
		}
		got, stats := cobraEncryptECB(t, p, testPlain)
		if !bytes.Equal(got, want) {
			t.Errorf("simon64-%d: ciphertext mismatch\n got %x\nwant %x", hw, got, want)
		}
		perBlock := float64(stats.Cycles) / float64(len(testPlain)/8)
		t.Logf("simon64-%d: %.1f cycles per 64-bit block (%d cycles)", hw, perBlock, stats.Cycles)
	}
}

func TestSIMONDecryptOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewSIMON64(testKey)
	if err != nil {
		t.Fatal(err)
	}
	ct := refEncryptECB(t, ref, testPlain)
	for _, hw := range simonDepths {
		p, err := BuildSIMONDecrypt(testKey, hw)
		if err != nil {
			t.Fatalf("simon64-dec-%d: %v", hw, err)
		}
		got, _ := cobraEncryptECB(t, p, ct)
		if !bytes.Equal(got, testPlain) {
			t.Errorf("simon64-dec-%d: plaintext mismatch\n got %x\nwant %x", hw, got, testPlain)
		}
	}
}

func TestSIMONOnCOBRARandomized(t *testing.T) {
	f := func(key [16]byte, sb [16]byte) bool {
		ref, err := cipher.NewSIMON64(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 16)
		ref.Encrypt(want[0:], sb[0:])
		ref.Encrypt(want[8:], sb[8:])
		p, err := BuildSIMON(key[:], 4)
		if err != nil {
			return false
		}
		m, err := NewMachine(p)
		if err != nil {
			return false
		}
		if err := Load(m, p); err != nil {
			return false
		}
		got, _, err := EncryptBytes(m, p, sb[:])
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSIMONUnrollRejectsBadDepth(t *testing.T) {
	if _, err := BuildSIMON(testKey, 3); err == nil {
		t.Error("expected error: 3 does not divide 44")
	}
	if _, err := BuildSIMONDecrypt(testKey, 0); err == nil {
		t.Error("expected error for depth 0")
	}
	if _, err := BuildSIMON(make([]byte, 8), 2); err == nil {
		t.Error("expected key size error")
	}
}
