package program

import (
	"fmt"

	"cobra/internal/bits"
	"cobra/internal/cipher"
	"cobra/internal/isa"
)

// TEA on COBRA. TEA is the archetype of the paper's Table 2 operation
// profile — additions, fixed shifts and XORs only — but its three-term
// mix ((v<<4)+k ^ v+sum ^ (v>>5)+k') needs three adders per half-round,
// so one 64-bit block spreads across all four columns instead of pairing
// two blocks per superblock the way GOST/RC5/SIMON do. One round is six
// rows (three per half-round):
//
//	r0: t1 = (v1<<4)+k0 | t2 = v1+sum | t3 = (v1>>5)+k1   (cols 2,1,3)
//	r1: u = t1^t2^t3 in col 2; v1 recovered from the bypass
//	r2: v0 += u
//	r3-r5: the mirrored second half-round updating v1
//
// Superblock convention: words 0,1 hold v0,v1 little-endian (the host
// byte-swaps TEA's big-endian words); words 2,3 are scratch lanes that
// emerge holding round intermediates — deliberately key- and
// plaintext-tainted so the dataflow taint gate holds on every output word.
//
// The per-round sums delta*(i+1) live in eRAM bank 1 of column 1 and are
// the only per-pass address walk; k0..k3 are static bank-0 reads in the
// shifted-term columns.

// teaHalfRows emits one TEA half-round at rows (r, r+1, r+2): the three
// terms of the source word, their combination, and the update of the
// destination word. src/dst are the block indices of the two state words
// (1,0 for the first half-round, 0,1 for the second).
func (b *builder) teaHalfRows(r, src, dst int, sub bool) {
	// Row r: three terms. The source word is column 1's INSEL pick and the
	// shifted-term columns' secondary pick.
	if src == 1 {
		b.insel(r, 1, 0) // col 1's own primary block
	} else {
		b.insel(r, 1, 1) // col 1's INB = block 0
	}
	s := isa.SliceAt(r, 1)
	b.cfge(s, isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcINER)) // + sum (bank 1)
	// col 2 sees block 0 as INB (source 1) and block 1 as INC (source 2);
	// col 3 sees block 0 as INB (source 1) and block 1 as INC (source 2).
	sel := uint8(1)
	if src == 1 {
		sel = 2
	}
	b.insel(r, 2, sel)
	s = isa.SliceAt(r, 2)
	b.cfge(s, isa.ElemE1, eImm(isa.EShl, 4))
	b.cfge(s, isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcINER)) // + k0/k2 (bank 0)
	b.insel(r, 3, sel)
	s = isa.SliceAt(r, 3)
	b.cfge(s, isa.ElemE1, eImm(isa.EShr, 5))
	b.cfge(s, isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcINER)) // + k1/k3 (bank 0)

	// Row r+1: u = t1 ^ t2 ^ t3 in col 2; the consumed source word comes
	// back from the one-row bypass into col 1.
	s = isa.SliceAt(r+1, 2)
	b.cfge(s, isa.ElemA1, aCfg(isa.AXor, isa.SrcINC)) // t2 (block 1)
	b.cfge(s, isa.ElemA2, aCfg(isa.AXor, isa.SrcIND)) // t3 (block 3)
	b.insel(r+1, 1, 5)                                // PB: the source word

	// Row r+2: dst = dst ± u (u is block 2: INC for both cols 0 and 1).
	mode := isa.BAdd
	if sub {
		mode = isa.BSub
	}
	b.cfge(isa.SliceAt(r+2, dst), isa.ElemB, bCfg(mode, 2, isa.SrcINC))
}

// teaRoundRows emits one encryption round at rows rt..rt+5.
func (b *builder) teaRoundRows(rt int) {
	b.teaHalfRows(rt, 1, 0, false)   // v0 += mix(v1)
	b.teaHalfRows(rt+3, 0, 1, false) // v1 += mix(v0)
}

// teaDecRoundRows emits one decryption round at rows rt..rt+5.
func (b *builder) teaDecRoundRows(rt int) {
	b.teaHalfRows(rt, 0, 1, true)   // v1 -= mix(v0)
	b.teaHalfRows(rt+3, 1, 0, true) // v0 -= mix(v1)
}

// buildTEA shares the two directions' skeleton: six rows per round, sums
// walked through column 1's bank 1, k-words static in columns 2 and 3.
func buildTEA(key []byte, hw int, decrypt bool) (*Program, error) {
	if _, err := cipher.NewTEA(key); err != nil {
		return nil, err
	}
	var kw [4]uint32
	for i := range kw {
		kw[i] = bits.Load32BE(key[4*i:])
	}
	const rounds = 32

	full := hw == rounds
	geo, passes, err := validateUnroll("tea", hw, rounds, 6, 0)
	if err != nil {
		return nil, err
	}

	name := fmt.Sprintf("tea-%d", hw)
	if decrypt {
		name = fmt.Sprintf("tea-dec-%d", hw)
	}
	p := &Program{
		Name:        name,
		Cipher:      "tea",
		HWRounds:    hw,
		TotalRounds: rounds,
		Geometry:    geo,
		Window:      1,
		Streaming:   full,
	}
	b := &builder{}
	b.disout()

	for st := 0; st < hw; st++ {
		if decrypt {
			b.teaDecRoundRows(6 * st)
		} else {
			b.teaRoundRows(6 * st)
		}
	}

	// Key words: the first half-round's shifted terms read bank-0 address 0,
	// the second half-round's address 1. Encryption mixes (k0,k1) into v0
	// first; decryption undoes v1's (k2,k3) mix first.
	first, second := [2]uint32{kw[0], kw[1]}, [2]uint32{kw[2], kw[3]}
	if decrypt {
		first, second = second, first
	}
	b.eramw(2, 0, 0, first[0])
	b.eramw(3, 0, 0, first[1])
	b.eramw(2, 0, 1, second[0])
	b.eramw(3, 0, 1, second[1])
	for i := 0; i < rounds; i++ {
		b.eramw(1, 1, i, teaDelta*uint32(i+1))
	}
	for st := 0; st < hw; st++ {
		b.er(6*st, 2, 0, 0)
		b.er(6*st, 3, 0, 0)
		b.er(6*st+3, 2, 0, 1)
		b.er(6*st+3, 3, 0, 1)
	}

	var regs []int
	for st := 0; st < hw; st++ {
		if full || st < hw-1 {
			regs = append(regs, 6*st+5)
		}
	}
	for i, row := range regs {
		if full && i == len(regs)-1 {
			b.regRow(row, true) // all four lanes feed the output mux
			continue
		}
		// Interior boundaries: the next round overwrites the scratch
		// lanes without reading them, so only v0 and v1 register.
		b.regAt(row, 0, true)
		b.regAt(row, 1, true)
	}

	// sum returns the bank-1 address stage st reads on pass `pass`: sums
	// walk up for encryption, down for decryption.
	sum := func(pass, st int) int {
		if decrypt {
			return rounds - 1 - (pass*hw + st)
		}
		return pass*hw + st
	}

	if full {
		p.PipelineDepth = len(regs)
		for st := 0; st < hw; st++ {
			b.er(6*st, 1, 1, sum(0, st))
			b.er(6*st+3, 1, 1, sum(0, st))
		}
		b.streamingFlow(len(regs))
		p.Instrs = b.ins
		return p, nil
	}

	b.iterativeFlow(len(regs)+1, passes, iterHooks{
		EveryPass: func(b *builder, pass int) {
			for st := 0; st < hw; st++ {
				b.er(6*st, 1, 1, sum(pass, st))
				b.er(6*st+3, 1, 1, sum(pass, st))
			}
		},
	})
	p.Instrs = b.ins
	return p, nil
}

// teaDelta is the TEA round constant (mirrors cipher.teaDelta, which is
// unexported).
const teaDelta = 0x9e3779b9

// BuildTEA compiles TEA encryption at unroll depth hw (any divisor of the
// 32 rounds; 32 streams one block per cycle through 192 rows).
func BuildTEA(key []byte, hw int) (*Program, error) {
	return buildTEA(key, hw, false)
}

// BuildTEADecrypt compiles TEA decryption at unroll depth hw.
func BuildTEADecrypt(key []byte, hw int) (*Program, error) {
	return buildTEA(key, hw, true)
}
