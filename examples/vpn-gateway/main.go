// vpn-gateway simulates the paper's motivating application (§1): a virtual
// private network gateway that must encrypt bulk traffic at the 622 Mbps
// ATM line rate. The gateway is a real network service here — an
// in-process cobrad (internal/serve) fronting the simulated COBRA
// hardware — and each branch office is a TCP client session pinning its
// own cipher configuration, one per §4 cipher. Every site streams a
// synthetic packet trace through the gateway, round-trips it back, and
// checks the modeled sustained throughput against the requirement — the
// paper's headline claim — before the gateway drains gracefully.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cobra/internal/serve"
	"cobra/internal/serve/client"
)

// packet sizes typical of a mixed traffic distribution, padded to the
// 16-byte block size by the framer.
var packetSizes = []int{64, 1504, 576, 1504, 128, 1504, 352, 48, 1504, 992}

// site is one branch office: a tenant with its own cipher program and key.
var sites = []struct {
	tenant string
	alg    string
}{
	{"site-a", "rc6"},
	{"site-b", "rijndael"},
	{"site-c", "serpent"},
}

func main() {
	fmt.Println("COBRA VPN gateway: 622 Mbps ATM encryption requirement (§1)")
	fmt.Println()

	// The gateway appliance: a shared four-device COBRA farm with
	// program-aware scheduling, so the three sites partition the pool
	// and stream without reconfiguring each other's devices. Each
	// device runs the full-length pipeline (unroll 0) — the
	// configuration the paper shows meets the ATM requirement for all
	// three ciphers.
	gw, err := serve.NewServer(serve.Options{
		Backend:     "farm",
		Workers:     4,
		SchedPolicy: "affinity",
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := gw.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway listening on %s\n\n", gw.Addr())

	for i, site := range sites {
		key := make([]byte, 16)
		for j := range key {
			key[j] = byte(0x42 + j + 16*i) // per-site key material
		}

		c, err := client.Dial(gw.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		ack, err := c.Configure(client.Config{Tenant: site.tenant, Alg: site.alg, Key: key})
		if err != nil {
			log.Fatal(err)
		}

		var trace []byte
		for j, sz := range packetSizes {
			pkt := make([]byte, (sz+15)/16*16)
			for k := range pkt {
				pkt[k] = byte(j*31 + k)
			}
			trace = append(trace, pkt...)
		}

		ct, err := c.Encrypt(serve.ModeECB, nil, trace)
		if err != nil {
			log.Fatal(err)
		}
		if len(ct) != len(trace) {
			log.Fatalf("%s: framer length mismatch", site.alg)
		}

		// Snapshot throughput now: the §1 line-rate requirement is for
		// encryption, and the decrypt spot-check below would fold
		// serpent's base-granularity decryption mapping into the rate.
		st, err := c.Stats()
		if err != nil {
			log.Fatal(err)
		}
		r := st.Backend

		// Spot-check the gateway can decrypt the site's own traffic.
		pt, err := c.Decrypt(serve.ModeECB, nil, ct)
		if err != nil {
			log.Fatal(err)
		}
		for j := range trace {
			if pt[j] != trace[j] {
				log.Fatalf("%s: corrupted traffic at byte %d", site.alg, j)
			}
		}
		verdict := "MEETS"
		if r.ThroughputMbps < 622 {
			verdict = "MISSES"
		}
		fmt.Printf("%-7s %-9s unroll=%-2d rows=%-3d  %7.2f cycles/blk  %7.3f MHz  %9.1f Mbps  -> %s 622 Mbps\n",
			site.tenant, r.Algorithm, ack.Unroll, ack.Rows, r.CyclesPerBlock, r.DatapathMHz,
			r.ThroughputMbps, verdict)
		c.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		log.Fatalf("gateway drain: %v", err)
	}

	fmt.Println()
	fmt.Println("All site traffic round-tripped through the gateway; graceful drain complete.")
}
