package obs

import (
	"sort"
	"sync"
	"time"
)

// Timer measures span-style phase durations into a nanosecond histogram,
// optionally capturing each span into the owning registry's trace ring.
// Timers instrument per-call phases (an EncryptCTR call, a shard's queue
// wait) — never per-block work, which stays on raw counters.
type Timer struct {
	name string
	h    *Histogram
	r    *Registry
}

// Timer returns the timer named name, creating its histogram (with
// DurationBuckets bounds) on first use.
func (r *Registry) Timer(name, help string, labels ...Label) *Timer {
	return &Timer{name: name, h: r.Histogram(name, help, DurationBuckets(), labels...), r: r}
}

// Span is one in-flight timed phase. It is a value type: starting and
// ending a span performs no allocation.
type Span struct {
	t     *Timer
	start time.Time
}

// Start opens a span. A nil timer yields an inert span, so optional
// instrumentation can call Start/End unconditionally.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// End closes the span: the duration lands in the histogram and, when the
// registry has tracing enabled, in the ring buffer.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.start)
	s.t.h.Observe(d.Nanoseconds())
	if ring := s.t.r.ring.Load(); ring != nil {
		ring.Add(SpanRecord{Name: s.t.name, StartUnixNs: s.start.UnixNano(), DurNs: d.Nanoseconds()})
	}
}

// SpanRecord is one captured span in a trace ring.
type SpanRecord struct {
	Name        string `json:"name"`
	StartUnixNs int64  `json:"start_unix_ns"`
	DurNs       int64  `json:"dur_ns"`
}

// Ring is a fixed-size buffer of the most recent spans. Overwrites are
// silent: the ring answers "what has this component been doing lately",
// not "everything it ever did".
type Ring struct {
	mu      sync.Mutex
	buf     []SpanRecord
	pos     int
	wrapped bool
}

// NewRing builds a ring holding the last n spans.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]SpanRecord, n)}
}

// Add records one span, evicting the oldest when full.
func (r *Ring) Add(rec SpanRecord) {
	r.mu.Lock()
	r.buf[r.pos] = rec
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Records returns the captured spans, oldest first.
func (r *Ring) Records() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]SpanRecord(nil), r.buf[:r.pos]...)
	}
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.pos:]...)
	return append(out, r.buf[:r.pos]...)
}

// EnableTrace turns on span capture into a ring of the last n spans
// (n <= 0 disables). Only spans of this registry's own timers are
// captured; children manage their own rings, and TraceRecords aggregates.
func (r *Registry) EnableTrace(n int) {
	if n <= 0 {
		r.ring.Store(nil)
		return
	}
	r.ring.Store(NewRing(n))
}

// TraceRecords collects the captured spans of this registry and every
// attached child, merged oldest-first.
func (r *Registry) TraceRecords() []SpanRecord {
	var out []SpanRecord
	r.traceRecords(&out, 0)
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartUnixNs < out[j].StartUnixNs })
	return out
}

func (r *Registry) traceRecords(out *[]SpanRecord, depth int) {
	if depth > maxDepth {
		return
	}
	if ring := r.ring.Load(); ring != nil {
		*out = append(*out, ring.Records()...)
	}
	r.mu.Lock()
	children := append([]child(nil), r.children...)
	r.mu.Unlock()
	for _, c := range children {
		c.r.traceRecords(out, depth+1)
	}
}
