package serve_test

import (
	"bytes"
	"net"
	"runtime"
	"testing"
	"time"

	"cobra/internal/serve"
	"cobra/internal/serve/client"
)

// waitGoroutines is the leak-check helper: it polls until the process
// goroutine count is back at (or below) max, failing after the
// deadline with a stack dump of the stragglers.
func waitGoroutines(t *testing.T, max int, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		n := runtime.NumGoroutine()
		if n <= max {
			return
		}
		if time.Now().After(end) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d live, want <= %d\n%s", n, max, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeClientDisconnectMidRequest pins the cancellation contract: a
// client that vanishes mid-bulk-request must not leak goroutines, must
// release its backend to the LRU, and must not corrupt the next
// tenant's stream.
func TestServeClientDisconnectMidRequest(t *testing.T) {
	s := startServer(t, serve.Options{
		Backend:     "farm",
		Workers:     2,
		Interpreter: true, // slow path: the request is still running when the client dies
	})
	key := keyN(5)
	blk := refBlock(t, "rc6", key)
	cfg := client.Config{Tenant: "ghost", Alg: "rc6", Key: key, Unroll: 1}

	// Warm the backend with a clean session, so its worker goroutines
	// (which rightly persist in the LRU) are part of the baseline.
	warm, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Encrypt(serve.ModeCTR, testIV, testMessage(16)); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	// Let the warm session's goroutines wind down, then take the
	// baseline the leak check compares against.
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	// The ghost session: handshake, configure, fire a bulk request the
	// interpreter will chew on for hundreds of milliseconds — and hang
	// up without reading the response.
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	rt := func(f serve.Frame) serve.Frame {
		t.Helper()
		if err := serve.WriteFrame(conn, f); err != nil {
			t.Fatal(err)
		}
		resp, err := serve.ReadFrame(conn, 0)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	hello := serve.Hello{MinVersion: serve.Version, MaxVersion: serve.Version}
	if resp := rt(serve.Frame{Type: serve.FrameHello, Payload: hello.Encode()}); resp.Type != serve.FrameHello {
		t.Fatalf("handshake: %v", resp.Type)
	}
	creq := serve.ConfigureReq{Tenant: "ghost", Alg: "rc6", Key: key, Unroll: 1}
	if resp := rt(serve.Frame{Type: serve.FrameConfigure, Payload: creq.Encode()}); resp.Type != serve.FrameConfigure {
		t.Fatalf("configure: %v", resp.Type)
	}
	bulk := serve.CipherReq{Mode: serve.ModeCTR, IV: testIV, Data: testMessage(4096 * 16)}
	if err := serve.WriteFrame(conn, serve.Frame{Type: serve.FrameEncrypt, Payload: bulk.Encode()}); err != nil {
		t.Fatal(err)
	}
	conn.Close() // mid-request disconnect

	// The session's reader sees the dead socket, cancels the session
	// context, the farm abandons the remaining shards, and every
	// session goroutine exits: back to baseline.
	waitGoroutines(t, baseline, 15*time.Second)

	// The backend went back to the LRU (CacheHit), and a fresh tenant's
	// stream is untouched by the aborted work.
	after, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	ack, err := after.Configure(client.Config{Tenant: "survivor", Alg: "rc6", Key: key, Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.CacheHit {
		t.Error("abandoned session did not release its backend to the LRU")
	}
	msg := testMessage(32 * 16)
	ct, err := after.Encrypt(serve.ModeCTR, testIV, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct, refCTR(blk, testIV, msg)) {
		t.Error("stream corrupted after a mid-request disconnect")
	}
}
