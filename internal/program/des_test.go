package program

import (
	"bytes"
	"testing"
	"testing/quick"

	"cobra/internal/cipher"
)

func desPackT(t *testing.T, blocks []byte) []byte {
	t.Helper()
	sbs, err := DESPack(blocks)
	if err != nil {
		t.Fatal(err)
	}
	return sbs
}

func desUnpackT(t *testing.T, sbs []byte) []byte {
	t.Helper()
	blocks, err := DESUnpack(sbs)
	if err != nil {
		t.Fatal(err)
	}
	return blocks
}

func TestDESOnCOBRA(t *testing.T) {
	key := testKey[:8]
	ref, err := cipher.NewDES(key)
	if err != nil {
		t.Fatal(err)
	}
	want := refEncryptECB(t, ref, testPlain) // 8 blocks, one per superblock
	p, err := BuildDES(key)
	if err != nil {
		t.Fatal(err)
	}
	got, stats := cobraEncryptECB(t, p, desPackT(t, testPlain))
	if !bytes.Equal(desUnpackT(t, got), want) {
		t.Errorf("des-1: ciphertext mismatch\n got %x\nwant %x", desUnpackT(t, got), want)
	}
	perBlock := float64(stats.Cycles) / float64(len(testPlain)/8)
	t.Logf("des-1: %.1f cycles per 64-bit block (%d cycles)", perBlock, stats.Cycles)
}

func TestDESDecryptOnCOBRA(t *testing.T) {
	key := testKey[:8]
	ref, err := cipher.NewDES(key)
	if err != nil {
		t.Fatal(err)
	}
	ct := refEncryptECB(t, ref, testPlain)
	p, err := BuildDESDecrypt(key)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := cobraEncryptECB(t, p, desPackT(t, ct))
	if !bytes.Equal(desUnpackT(t, got), testPlain) {
		t.Errorf("des-dec-1: plaintext mismatch\n got %x\nwant %x", desUnpackT(t, got), testPlain)
	}
}

func TestDESOnCOBRARandomized(t *testing.T) {
	f := func(key [8]byte, blk [8]byte) bool {
		ref, err := cipher.NewDES(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 8)
		ref.Encrypt(want, blk[:])
		p, err := BuildDES(key[:])
		if err != nil {
			return false
		}
		m, err := NewMachine(p)
		if err != nil {
			return false
		}
		if err := Load(m, p); err != nil {
			return false
		}
		sbs, err := DESPack(blk[:])
		if err != nil {
			return false
		}
		got, _, err := EncryptBytes(m, p, sbs)
		if err != nil {
			return false
		}
		out, err := DESUnpack(got)
		return err == nil && bytes.Equal(out, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDESPackRejectsRaggedInput(t *testing.T) {
	if _, err := DESPack(make([]byte, 12)); err == nil {
		t.Error("expected error for a partial block")
	}
	if _, err := DESUnpack(make([]byte, 24)); err == nil {
		t.Error("expected error for a partial superblock")
	}
	if _, err := BuildDES(make([]byte, 16)); err == nil {
		t.Error("expected key size error")
	}
}
