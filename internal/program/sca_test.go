package program

import (
	"strings"
	"testing"

	"cobra/internal/dataflow"
	"cobra/internal/fastpath"
	"cobra/internal/sca"
	"cobra/internal/vet"
)

var scaKey = []byte{
	0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef,
	0xfe, 0xdc, 0xba, 0x98, 0x76, 0x54, 0x32, 0x10,
}

// scaCorpus builds one configuration per cipher family (plus a decrypt and
// a windowed variant) with the expected constant-time verdict. The ARX
// ciphers must prove fully constant-time profiles; the S-box ciphers are
// T-table class — Warn findings only.
type scaEntry struct {
	p  *Program
	ct bool
}

func scaCorpus(t *testing.T) []scaEntry {
	t.Helper()
	var out []scaEntry
	add := func(p *Program, err error, ct bool) {
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		out = append(out, scaEntry{p, ct})
	}
	p, err := BuildTEA(scaKey, 1)
	add(p, err, true)
	p, err = BuildSIMON(scaKey, 2)
	add(p, err, true)
	p, err = BuildRC5(scaKey[:16], 2, 12)
	add(p, err, true)
	p, err = BuildRC6(scaKey, 2, 20)
	add(p, err, true)
	p, err = BuildRC6Decrypt(scaKey, 1, 20)
	add(p, err, true)
	p, err = BuildRijndael(scaKey, 1)
	add(p, err, false)
	p, err = BuildSerpent(scaKey, 1)
	add(p, err, false)
	p, err = BuildSerpentWindowed(scaKey, 4)
	add(p, err, false)
	p, err = BuildBlowfish(scaKey, 1)
	add(p, err, false)
	p, err = BuildBlowfish(scaKey, 2)
	add(p, err, false)
	p, err = BuildDES(scaKey[:8])
	add(p, err, false)
	p, err = BuildGOST(append(append([]byte{}, scaKey...), scaKey...))
	add(p, err, false)
	return out
}

// TestCheckConstantTimeCorpus pins the constant-time verdict per cipher
// class: ARX ciphers prove clean profiles, S-box ciphers report
// secret-lut-index warnings and nothing worse, and every compiled fastpath
// profile agrees with its microcode profile.
func TestCheckConstantTimeCorpus(t *testing.T) {
	for _, tc := range scaCorpus(t) {
		tc := tc
		t.Run(tc.p.Name, func(t *testing.T) {
			rep := tc.p.CheckConstantTime()
			if rep.HasErrors() {
				for _, f := range rep.Findings {
					t.Logf("finding: %s", f)
				}
				t.Fatalf("%s: unexpected error findings (summary: %s)", tc.p.Name, rep.Summary())
			}
			if rep.Fastpath == nil {
				t.Fatalf("%s: no fastpath profile (skip: %s)", tc.p.Name, rep.FastpathSkip)
			}
			if got := rep.ConstantTime(); got != tc.ct {
				t.Fatalf("%s: ConstantTime() = %v, want %v (summary: %s)", tc.p.Name, got, tc.ct, rep.Summary())
			}
			if !tc.ct {
				warns := 0
				for _, f := range rep.Findings {
					if f.Code == "secret-lut-index" && f.Sev == vet.Warn {
						warns++
					}
				}
				if warns == 0 {
					t.Fatalf("%s: T-table class but no secret-lut-index warnings", tc.p.Name)
				}
				if !strings.Contains(rep.Summary(), "t-table class") {
					t.Fatalf("%s: summary %q", tc.p.Name, rep.Summary())
				}
			}
			if !strings.Contains(rep.Summary(), "fastpath agrees") {
				t.Fatalf("%s: summary %q", tc.p.Name, rep.Summary())
			}
		})
	}
}

// TestCheckConstantTimeKeyedSkipsFastpath pins the key-handshake program's
// report shape: microcode-only, with the compile refusal recorded.
func TestCheckConstantTimeKeyedSkipsFastpath(t *testing.T) {
	p, err := BuildRijndaelKeyed()
	if err != nil {
		t.Fatal(err)
	}
	rep := p.CheckConstantTime()
	if rep.Fastpath != nil {
		t.Fatal("keyed program unexpectedly produced a fastpath profile")
	}
	if rep.FastpathSkip == "" {
		t.Fatal("FastpathSkip empty")
	}
	if !strings.Contains(rep.Summary(), "fastpath skipped") {
		t.Fatalf("summary %q", rep.Summary())
	}
	if rep.HasErrors() {
		t.Fatalf("unexpected error findings: %v", rep.Findings)
	}
}

// mutateTrace compiles the program and hands the trace to mut for seeded
// corruption, then returns the microcode/fastpath differential.
func mutateTrace(t *testing.T, p *Program, mut func(tr *fastpath.Trace)) []vet.Finding {
	t.Helper()
	ex, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tr := ex.Trace()
	mut(tr)
	mc := sca.AnalyzeMicrocode(p.Name, p.Instrs, dataflow.Config{Rows: p.Geometry.Rows, Window: p.Window})
	return sca.Compare(mc, sca.AnalyzeTrace(tr))
}

// TestSeededDefectMaskingElision drops the initial AddRoundKey whitening
// (a masking op) from column 0 of every compiled cycle of the streaming
// rijndael pipeline: the round-1 SubBytes site in that column is then
// indexed by bare plaintext, its taint loses the key dependency the
// microcode proves, and the differential must say so. The streaming
// config matters — in a feedback config the taint join over later passes
// would hide the drop.
func TestSeededDefectMaskingElision(t *testing.T) {
	p, err := BuildRijndael(scaKey, 10)
	if err != nil {
		t.Fatal(err)
	}
	findings := mutateTrace(t, p, func(tr *fastpath.Trace) {
		dropped := false
		for _, seg := range [][]fastpath.TraceTick{tr.Head, tr.Period} {
			for ti := range seg {
				if seg[ti].WhiteIn[0].Mode != 0 {
					dropped = true
				}
				seg[ti].WhiteIn[0] = fastpath.TraceWhite{}
			}
		}
		if !dropped {
			t.Fatal("no input whitening found to drop")
		}
	})
	requireMismatch(t, findings)
}

// TestSeededDefectDroppedTableRead deletes the round-1 SubBytes read at
// r0.c0 from every compiled cycle without any elision to justify it: the
// site vanishes from the fastpath profile while the microcode still
// schedules it.
func TestSeededDefectDroppedTableRead(t *testing.T) {
	p, err := BuildRijndael(scaKey, 10)
	if err != nil {
		t.Fatal(err)
	}
	findings := mutateTrace(t, p, func(tr *fastpath.Trace) {
		dropped := false
		for _, seg := range [][]fastpath.TraceTick{tr.Head, tr.Period} {
			for ti := range seg {
				if len(seg[ti].Rows) == 0 {
					continue
				}
				cell := &seg[ti].Rows[0].Cells[0]
				for si := 0; si < len(cell.Steps); si++ {
					if cell.Steps[si].Kind == fastpath.StepS8 {
						cell.Steps = append(cell.Steps[:si], cell.Steps[si+1:]...)
						dropped = true
						si--
					}
				}
			}
		}
		if !dropped {
			t.Fatal("no S8 step found to drop at r0.c0")
		}
		tr.Elided = 0 // the drop must not hide behind the elision tolerance
	})
	requireMismatch(t, findings)
}

// TestSeededDefectExtraTableRead inserts a plaintext-indexed table read
// the microcode never scheduled.
func TestSeededDefectExtraTableRead(t *testing.T) {
	p, err := BuildRC6(scaKey, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	var s8 [4][256]uint8
	findings := mutateTrace(t, p, func(tr *fastpath.Trace) {
		tick := &tr.Period[0]
		for ti := range tr.Period {
			if tr.Period[ti].Enabled {
				tick = &tr.Period[ti]
				break
			}
		}
		cell := &tick.Rows[0].Cells[0]
		cell.Passthrough = false
		cell.Steps = append(cell.Steps, fastpath.TraceStep{Kind: fastpath.StepS8, S8: &s8})
	})
	requireMismatch(t, findings)
}

func requireMismatch(t *testing.T, findings []vet.Finding) {
	t.Helper()
	if len(findings) == 0 {
		t.Fatal("differential reported no mismatch for seeded defect")
	}
	for _, f := range findings {
		if f.Code != "ct-profile-mismatch" || f.Sev != vet.Error {
			t.Fatalf("unexpected finding %s", f)
		}
	}
}
