package model_test

import (
	"math"
	"testing"

	"cobra/internal/cipher"
	"cobra/internal/datapath"
	"cobra/internal/model"
	"cobra/internal/program"
)

func loadedMachine(t *testing.T, p *program.Program) *datapath.Array {
	t.Helper()
	m, err := program.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := program.Load(m, p); err != nil {
		t.Fatal(err)
	}
	return m.Array
}

var key16 = make([]byte, 16)

// TestCalibratedFrequencies checks the timing model against the paper's
// §4.1 clock frequencies. The tolerance is deliberately loose (12%): the
// model is calibrated, not synthesized, and EXPERIMENTS.md records the
// exact paper-vs-model numbers.
func TestCalibratedFrequencies(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*program.Program, error)
		want  float64 // MHz from Table 3
	}{
		{"rc6", func() (*program.Program, error) { return program.BuildRC6(key16, 2, cipher.RC6Rounds) }, 60.975},
		{"rijndael", func() (*program.Program, error) { return program.BuildRijndael(key16, 2) }, 102.041},
		{"serpent", func() (*program.Program, error) { return program.BuildSerpent(key16, 1) }, 54.054},
	}
	for _, c := range cases {
		p, err := c.build()
		if err != nil {
			t.Fatal(err)
		}
		arr := loadedMachine(t, p)
		tm := model.Analyze(arr, model.DefaultDelays())
		dev := math.Abs(tm.DatapathMHz-c.want) / c.want
		t.Logf("%s: model %.3f MHz (paper %.3f), path %.2f ns, deviation %.1f%%",
			c.name, tm.DatapathMHz, c.want, tm.CriticalPathNs, dev*100)
		if dev > 0.12 {
			t.Errorf("%s: model frequency %.2f MHz deviates %.0f%% from paper %.2f MHz",
				c.name, tm.DatapathMHz, dev*100, c.want)
		}
	}
}

func TestFrequencyOrderingMatchesPaper(t *testing.T) {
	// Table 3 ordering: Rijndael fastest clock, then RC6, then Serpent.
	freq := func(build func() (*program.Program, error)) float64 {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		return model.Analyze(loadedMachine(t, p), model.DefaultDelays()).DatapathMHz
	}
	fRC6 := freq(func() (*program.Program, error) { return program.BuildRC6(key16, 2, cipher.RC6Rounds) })
	fAES := freq(func() (*program.Program, error) { return program.BuildRijndael(key16, 2) })
	fSer := freq(func() (*program.Program, error) { return program.BuildSerpent(key16, 1) })
	if !(fAES > fRC6 && fRC6 > fSer) {
		t.Errorf("frequency ordering wrong: rijndael %.1f, rc6 %.1f, serpent %.1f", fAES, fRC6, fSer)
	}
}

func TestIRAMIsTwiceDatapath(t *testing.T) {
	p, err := program.BuildRijndael(key16, 2)
	if err != nil {
		t.Fatal(err)
	}
	tm := model.Analyze(loadedMachine(t, p), model.DefaultDelays())
	if math.Abs(tm.IRAMMHz-2*tm.DatapathMHz) > 1e-9 {
		t.Error("iRAM clock must be twice the datapath clock (§3.4)")
	}
}

func TestFrequencyConstantAcrossUnrolls(t *testing.T) {
	// §4.1: "clock frequencies for COBRA implementations remain constant
	// for each block cipher as the number of rounds increases" — the round
	// is the atomic pipeline unit. Allow small variation from the final
	// combinational segment.
	var base float64
	for i, hw := range []int{2, 4, 10, 20} {
		p, err := program.BuildRC6(key16, hw, cipher.RC6Rounds)
		if err != nil {
			t.Fatal(err)
		}
		tm := model.Analyze(loadedMachine(t, p), model.DefaultDelays())
		if i == 0 {
			base = tm.DatapathMHz
			continue
		}
		if math.Abs(tm.DatapathMHz-base)/base > 0.10 {
			t.Errorf("rc6-%d: frequency %.2f deviates from rc6-2's %.2f", hw, tm.DatapathMHz, base)
		}
	}
}

func TestThroughputMbps(t *testing.T) {
	tm := model.Timing{DatapathMHz: 100}
	if got := tm.ThroughputMbps(10); math.Abs(got-1280) > 1e-9 {
		t.Errorf("ThroughputMbps = %v, want 1280", got)
	}
	if tm.ThroughputMbps(0) != 0 {
		t.Error("zero cycles must not divide")
	}
}

func TestTable4Published(t *testing.T) {
	g := model.Table4()
	if g.A != 172 || g.B != 1012 || g.C != 98624 || g.D != 5243 ||
		g.E != 887 || g.F != 10606 {
		t.Errorf("Table 4 constants drifted: %+v", g)
	}
}

func TestTable5BaseMatchesPaper(t *testing.T) {
	a := model.Table5(model.Table4(), datapath.BaseGeometry())
	// The RCE array is calibrated; integer division may lose < 16 gates.
	if diff := a.RCEArray - 2692840; diff < -16 || diff > 0 {
		t.Errorf("RCE array = %d, want 2,692,840 (±16)", a.RCEArray)
	}
	if a.Shufflers != 8556 {
		t.Errorf("shufflers = %d, want 8556", a.Shufflers)
	}
	if a.ERAMs != 1210640 {
		t.Errorf("eRAMs = %d, want 1,210,640", a.ERAMs)
	}
	if a.IRAM != 2773184 {
		t.Errorf("iRAM = %d, want 2,773,184", a.IRAM)
	}
	total := a.Total()
	if diff := total - 6691514; diff < -16 || diff > 0 {
		t.Errorf("total = %d, want 6,691,514 (±16)", total)
	}
}

func TestTable5SRAMEstimate(t *testing.T) {
	// §4.2: "approximately 2.5 million gates" with SRAM blocks.
	a := model.Table5(model.Table4(), datapath.BaseGeometry())
	got := a.TotalWithSRAM()
	if got < 2_000_000 || got > 3_200_000 {
		t.Errorf("SRAM-based estimate %d outside the paper's ~2.5M ballpark", got)
	}
}

func TestTable5ScalesWithRows(t *testing.T) {
	g := model.Table4()
	base := model.Table5(g, datapath.Geometry{Rows: 4})
	dbl := model.Table5(g, datapath.Geometry{Rows: 8})
	if dbl.RCEArray != 2*base.RCEArray {
		t.Errorf("array does not tile: %d vs 2x%d", dbl.RCEArray, base.RCEArray)
	}
	if dbl.Shufflers != 2*base.Shufflers || dbl.ERAMs != 2*base.ERAMs {
		t.Error("shufflers/eRAMs do not scale with rows")
	}
	if dbl.IRAM != base.IRAM {
		t.Error("iRAM should stay fixed")
	}
	if dbl.Total() <= base.Total() {
		t.Error("total must grow with rows")
	}
}

func TestRCEMulCostsMoreThanRCE(t *testing.T) {
	g := model.Table4()
	if model.RCEGates(g, true) <= model.RCEGates(g, false) {
		t.Error("RCE MUL must cost more than a plain RCE")
	}
	if model.RCEGates(g, true)-model.RCEGates(g, false) < g.D {
		t.Error("RCE MUL delta must include the multiplier")
	}
}

func TestCGProducts(t *testing.T) {
	rows := []model.CGRow{
		{Cipher: "x", Rounds: 1, Cycles: 100, Gates: 1000},
		{Cipher: "x", Rounds: 2, Cycles: 40, Gates: 2000},
		{Cipher: "y", Rounds: 1, Cycles: 10, Gates: 100},
	}
	out := model.CGProducts(rows)
	if out[0].CGProduct != 100000 || out[1].CGProduct != 80000 {
		t.Errorf("CG products wrong: %+v", out)
	}
	if out[1].Normalized != 1.0 {
		t.Errorf("best config must normalize to 1.0, got %v", out[1].Normalized)
	}
	if math.Abs(out[0].Normalized-1.25) > 1e-9 {
		t.Errorf("normalized = %v, want 1.25", out[0].Normalized)
	}
	if out[2].Normalized != 1.0 {
		t.Error("per-cipher normalization broken")
	}
}

func TestAnalyzeSegmentsCount(t *testing.T) {
	// RC6-4 has REG rows at stages 0..2 → 3 cuts + final segment.
	p, err := program.BuildRC6(key16, 4, cipher.RC6Rounds)
	if err != nil {
		t.Fatal(err)
	}
	tm := model.Analyze(loadedMachine(t, p), model.DefaultDelays())
	if len(tm.Segments) != 4 {
		t.Errorf("segments = %d, want 4", len(tm.Segments))
	}
}
