package serve_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cobra/internal/cipher"
	"cobra/internal/serve"
	"cobra/internal/serve/client"
)

// soakTenant is one tenant's identity in the soak: a distinct program
// or key, and the host-reference oracle every response is verified
// against. Two tenants share the rijndael program with different keys,
// so a cross-tenant stream mix-up cannot go unnoticed.
type soakTenant struct {
	name string
	alg  string
	key  []byte
	blk  cipher.Block
}

func soakTenants(t testing.TB) []soakTenant {
	tenants := []soakTenant{
		{name: "alpha", alg: "rc6", key: keyN(10)},
		{name: "bravo", alg: "rijndael", key: keyN(20)},
		{name: "charlie", alg: "serpent", key: keyN(30)},
		{name: "delta", alg: "rijndael", key: keyN(40)}, // same program as bravo, different key
	}
	for i := range tenants {
		tenants[i].blk = refBlock(t, tenants[i].alg, tenants[i].key)
	}
	return tenants
}

// TestServeSoak is the headline acceptance test: hundreds of concurrent
// client sessions across four tenants against one farm-backed server,
// every single response differentially verified against the host
// reference ciphers, with admission-control sheds observed and
// recovered from, followed by a graceful drain that completes an
// in-flight request. Run it under -race.
func TestServeSoak(t *testing.T) {
	clients := 500
	if testing.Short() {
		clients = 60
	}
	s := startServer(t, serve.Options{
		Backend:     "farm",
		Workers:     4,
		MaxBackends: 4,
		MaxInflight: 2,
		MaxWaiters:  2,
	})
	tenants := soakTenants(t)

	var (
		sheds     atomic.Int64 // BUSY responses later recovered from
		requests  atomic.Int64
		mismatch  atomic.Int64
		firstFail sync.Once
		failMsg   atomic.Value
	)
	fail := func(format string, args ...any) {
		mismatch.Add(1)
		firstFail.Do(func() { failMsg.Store(fmt.Sprintf(format, args...)) })
	}

	// encryptVerified runs one verified request, retrying BUSY sheds —
	// the recovery half of the admission-control contract.
	encryptVerified := func(c *client.Client, tn *soakTenant, rng *rand.Rand, blocks int) bool {
		msg := testMessage(blocks*16 - rng.Intn(2)*5) // sometimes a partial tail block
		iv := testMessage(16)
		for {
			ct, err := c.Encrypt(serve.ModeCTR, iv, msg)
			if serve.IsBusy(err) {
				sheds.Add(1)
				time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
				continue
			}
			if err != nil {
				fail("tenant %s: encrypt: %v", tn.name, err)
				return false
			}
			requests.Add(1)
			if !bytes.Equal(ct, refCTR(tn.blk, iv, msg)) {
				fail("tenant %s: ciphertext differs from host reference", tn.name)
			}
			return true
		}
	}

	// decryptVerified exercises the block-mode decrypt surface over the
	// wire: sharded ECB and IV-overlapped sharded CBC, both inverted
	// against host-reference ciphertext.
	decryptVerified := func(c *client.Client, tn *soakTenant, rng *rand.Rand, blocks int) bool {
		msg := testMessage(blocks * 16)
		iv := testMessage(16)
		for _, req := range []struct {
			mode serve.Mode
			iv   []byte
			ct   []byte
		}{
			{serve.ModeECB, nil, refECB(tn.blk, msg)},
			{serve.ModeCBC, iv, refCBC(tn.blk, iv, msg)},
		} {
			mode := req.mode
			for {
				pt, err := c.Decrypt(mode, req.iv, req.ct)
				if serve.IsBusy(err) {
					sheds.Add(1)
					time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
					continue
				}
				if err != nil {
					fail("tenant %s: decrypt %s: %v", tn.name, mode, err)
					return false
				}
				requests.Add(1)
				if !bytes.Equal(pt, msg) {
					fail("tenant %s: %s decrypt does not invert host reference", tn.name, mode)
				}
				break
			}
		}
		return true
	}

	// Phase 1: the wide soak. Each session configures its tenant and
	// runs a few small verified requests.
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			tn := &tenants[i%len(tenants)]
			c, err := client.Dial(s.Addr().String())
			if err != nil {
				fail("dial: %v", err)
				return
			}
			defer c.Close()
			for {
				_, err := c.Configure(client.Config{Tenant: tn.name, Alg: tn.alg, Key: tn.key, Unroll: 1})
				if serve.IsBusy(err) {
					sheds.Add(1)
					time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
					continue
				}
				if err != nil {
					fail("tenant %s: configure: %v", tn.name, err)
					return
				}
				break
			}
			for r := 0; r < 3; r++ {
				if !encryptVerified(c, tn, rng, 2+rng.Intn(7)) {
					return
				}
			}
			decryptVerified(c, tn, rng, 2+rng.Intn(7))
		}(i)
	}
	wg.Wait()

	// Phase 2: the shed storm. Small fastpath requests finish inside a
	// scheduler quantum, so phase 1 may serialize cleanly on a small
	// host; requests tens-of-ms long guarantee preemption mid-request
	// and therefore genuine collisions at the admission gate.
	if sheds.Load() == 0 {
		t.Log("no sheds in the wide phase; running storm phase")
	}
	const stormClients = 8
	for i := 0; i < stormClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			tn := &tenants[i%len(tenants)]
			c, err := client.Dial(s.Addr().String())
			if err != nil {
				fail("storm dial: %v", err)
				return
			}
			defer c.Close()
			if _, err := c.Configure(client.Config{Tenant: tn.name, Alg: tn.alg, Key: tn.key, Unroll: 1}); err != nil {
				fail("storm configure: %v", err)
				return
			}
			encryptVerified(c, tn, rng, 8192)
		}(i)
	}
	wg.Wait()

	if msg := failMsg.Load(); msg != nil {
		t.Fatalf("%s (%d failures total)", msg, mismatch.Load())
	}
	if sheds.Load() == 0 {
		t.Error("soak produced no BUSY shed: admission control never engaged")
	}
	t.Logf("soak: %d clients, %d verified responses, %d sheds recovered",
		clients+stormClients, requests.Load(), sheds.Load())

	// Phase 3: graceful drain with a request in flight. The response
	// must arrive complete and correct even though Shutdown began while
	// it was executing.
	tn := &tenants[1]
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Configure(client.Config{Tenant: tn.name, Alg: tn.alg, Key: tn.key, Unroll: 1}); err != nil {
		t.Fatal(err)
	}
	msg := testMessage(8192 * 16)
	iv := testMessage(16)
	type enc struct {
		ct  []byte
		err error
	}
	done := make(chan enc, 1)
	go func() {
		ct, err := c.Encrypt(serve.ModeCTR, iv, msg)
		done <- enc{ct, err}
	}()
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request dropped by drain: %v", r.err)
	}
	if !bytes.Equal(r.ct, refCTR(tn.blk, iv, msg)) {
		t.Fatal("in-flight response corrupted by drain")
	}
}
