package farm

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"cobra/internal/core"
	"cobra/internal/obs"
)

// findSample returns the first gathered sample matching name and every
// given label (extra labels on the sample are allowed).
func findSample(r *obs.Registry, name string, labels ...obs.Label) (obs.Sample, bool) {
	for _, s := range r.Gather() {
		if s.Name != name {
			continue
		}
		ok := true
		for _, want := range labels {
			found := false
			for _, have := range s.Labels {
				if have == want {
					found = true
				}
			}
			if !found {
				ok = false
			}
		}
		if ok {
			return s, true
		}
	}
	return obs.Sample{}, false
}

// TestFarmWorkerErrorPropagation injects a fault into one worker and
// checks the error surfaces to the caller, the counters record it
// consistently at both levels, and the farm keeps serving afterwards.
func TestFarmWorkerErrorPropagation(t *testing.T) {
	f, err := New(core.Rijndael, key, core.Config{Unroll: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	boom := errors.New("injected device fault")
	f.pool.workers[0].fault = func(*job) error { return boom }
	f.pool.workers[1].fault = func(*job) error { return boom }

	msg := testMessage(16 * 8)
	iv := make([]byte, 16)
	if _, err := f.EncryptCTR(context.Background(), iv, msg); !errors.Is(err, boom) {
		t.Fatalf("EncryptCTR err = %v, want the injected fault", err)
	}

	werrs, ok := findSample(f.Obs(), "cobra_farm_worker_errors_total")
	if !ok {
		t.Fatal("no worker error series")
	}
	if werrs.Value == 0 {
		t.Error("worker error counter did not move")
	}
	ferrs, ok := findSample(f.Obs(), "cobra_farm_errors_total", obs.L("mode", "ctr"))
	if !ok || ferrs.Value != 1 {
		t.Errorf("farm ctr error counter = %+v, want 1", ferrs)
	}

	// Faults cleared: the pool recovers, and the output still matches a
	// clean device (the failed call must not have leaked partial state).
	f.pool.workers[0].fault, f.pool.workers[1].fault = nil, nil
	got, err := f.EncryptCTR(context.Background(), iv, msg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Configure(core.Rijndael, key, core.Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.EncryptCTR(context.Background(), iv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("farm output diverges after recovering from a fault")
	}
}

// TestFarmCancellationCounters cancels a call mid-batch — the first
// shard is held at the worker by a gated fault hook while later shards
// queue behind it — and checks the cancellation reaches the caller and
// the skipped/failed shards are recorded as worker errors.
func TestFarmCancellationCounters(t *testing.T) {
	f, err := New(core.Rijndael, key, core.Config{Unroll: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	f.pool.workers[0].fault = func(*job) error {
		once.Do(func() { close(started) })
		<-gate
		return nil
	}
	done := make(chan error, 1)
	go func() {
		// 4096 blocks = 4 shards on one worker: one in flight (held at
		// the gate), two queued, one still dispatching.
		_, err := f.EncryptCTR(ctx, make([]byte, 16), testMessage(16*4096))
		done <- err
	}()
	<-started
	cancel()
	close(gate)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	s, ok := findSample(f.Obs(), "cobra_farm_worker_errors_total")
	if !ok {
		t.Fatal("no worker error series")
	}
	if s.Value == 0 {
		t.Error("cancelled shards were not counted as worker errors")
	}
}

// TestFarmMetricsExport checks the farm's registry tree end to end: the
// farm attaches to a parent, worker device registries appear underneath
// with worker labels, queue/shard series exist, and Close detaches the
// whole tree from the parent.
func TestFarmMetricsExport(t *testing.T) {
	parent := obs.NewRegistry()
	f, err := New(core.Rijndael, key, core.Config{Unroll: 1, Metrics: parent}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.EncryptCTR(context.Background(), make([]byte, 16), testMessage(16*16)); err != nil {
		t.Fatal(err)
	}

	var b bytes.Buffer
	if err := parent.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`cobra_farm_workers{backend="farm",alg="rijndael"} 2`,
		`cobra_farm_worker_jobs_total{`,
		`worker="0"`,
		`worker="1"`,
		"cobra_farm_shards_total{",
		"cobra_farm_queue_depth{",
		"cobra_farm_shard_blocks_bucket{",
		"cobra_device_requests_total{",
		"cobra_sim_ticks_total{",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("farm exposition missing %q", want)
		}
	}
	if _, ok := findSample(parent, "cobra_device_blocks_out_total",
		obs.L("backend", "farm"), obs.L("worker", "1")); !ok {
		t.Error("worker 1's device registry not gathered through the parent")
	}

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if len(parent.Gather()) != 0 {
		t.Error("Close left the farm registry attached to the parent")
	}
}
