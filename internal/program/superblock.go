package program

// Superblock marshalling for the 64-bit-block mappings. The datapath loads
// a 16-byte superblock as four little-endian 32-bit words
// (bits.LoadBlock128). GOST, RC5 and SIMON specify little-endian words, so
// two of their blocks concatenate into a superblock byte-for-byte; ciphers
// specified with big-endian words (TEA, Blowfish, DES) byte-swap each word
// at the host boundary instead — a reordering the byte shufflers cannot
// express, because they apply on every pass rather than once per block.

// SwapWords32 byte-swaps every aligned 4-byte group of buf in place (the
// tail of a non-multiple-of-4 buffer is left untouched). It is its own
// inverse.
func SwapWords32(buf []byte) {
	for i := 0; i+3 < len(buf); i += 4 {
		buf[i], buf[i+3] = buf[i+3], buf[i]
		buf[i+1], buf[i+2] = buf[i+2], buf[i+1]
	}
}
