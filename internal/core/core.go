// Package core is the public face of the COBRA reproduction: it wraps the
// cipher-to-microcode compilers, the cycle-accurate machine, and the
// timing/area models behind a small API sized for applications — configure
// a device for an algorithm and key, stream blocks through it, read the
// performance counters the paper's evaluation is built from, and
// reconfigure on the fly for algorithm agility (§1).
//
// A Device models one COBRA chip plus its external system: Configure
// compiles and loads key-specific microcode (the key schedule is computed
// host-side and shipped as eRAM writes, matching the paper's
// external-system protocol), EncryptECB drives the ready/go/busy/data-valid
// handshake, and Report exposes measured cycles alongside the modeled clock
// frequency, throughput, and gate count.
//
// Every mode method takes a context (the unified Cipher surface, see
// cipher.go) and every Device carries an internal/obs registry: per-mode
// request/latency series, engine and fallback counters, and the simulator
// counters themselves, attachable to a parent registry via Config.Metrics
// for live /metrics export. Report and Summary are views over that
// registry — there is no second set of books.
package core

import (
	"context"
	"fmt"

	"cobra/internal/bits"
	"cobra/internal/cipher"
	"cobra/internal/datapath"
	"cobra/internal/fastpath"
	"cobra/internal/model"
	"cobra/internal/obs"
	"cobra/internal/program"
	"cobra/internal/sim"
)

// Algorithm selects one of the block ciphers mapped onto COBRA in §4.
type Algorithm string

// The supported algorithms. Serpent denotes the COBRA-realizable Serpent
// workload (see cipher.SerpentCOBRA and DESIGN.md for the documented
// S-box-domain substitution).
const (
	RC6      Algorithm = "rc6"
	Rijndael Algorithm = "rijndael"
	Serpent  Algorithm = "serpent"
)

// TotalRounds returns the cipher's full round count.
func (a Algorithm) TotalRounds() (int, error) {
	switch a {
	case RC6:
		return cipher.RC6Rounds, nil
	case Rijndael:
		return cipher.AESRounds, nil
	case Serpent:
		return cipher.SerpentRounds, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", a)
}

// Config selects the architecture configuration for a session.
type Config struct {
	// Unroll is the number of rounds mapped into hardware (Table 3's
	// "Rnds"); 0 selects the full unroll (maximum throughput).
	Unroll int
	// Interpreter forces every encryption through the cycle-accurate
	// interpreter even when the program trace-compiles (the comparison and
	// debugging path; cobra-bench -fastpath measures against it). The
	// default uses the fastpath executor for bulk modes when the program
	// proves steady-state compilable.
	Interpreter bool
	// Validate runs the symbolic translation validator (package equiv) over
	// every compiled fastpath trace before installing it: a trace not proven
	// to compute the microcode's exact block stream is refused, and the
	// device falls back to the interpreter with FastpathErr reporting the
	// verdict. Off by default — validation costs a few ms to tens of ms per
	// (re)load, and the compiler is itself covered by the cobra-vet -equiv
	// corpus gate — but recommended wherever microcode arrives from outside
	// the build (cobrad tenants, assembled .casm files).
	Validate bool
	// Metrics, when non-nil, is the parent obs registry the device's own
	// registry is attached to — typically obs.Default in a binary that
	// serves /metrics. Nil keeps the device's registry detached (hermetic:
	// nothing leaks into process-global export), which is the right
	// default for tests. Ignored by Reconfigure, which keeps the device's
	// existing registry and attachment.
	Metrics *obs.Registry
	// Trace, when positive, enables the per-call span trace ring of that
	// many records on the device's registry (see obs.Registry.EnableTrace
	// and the /debug/trace endpoint). Ignored by Reconfigure.
	Trace int
}

// Device is one COBRA chip with loaded microcode.
//
// A Device is not safe for concurrent use: it owns a single sim.Machine
// (itself single-threaded silicon) and every Encrypt/Decrypt call mutates
// the machine's queues and counters. Report, Summary and ResetStats ARE
// safe to call concurrently with encryption — they read and snapshot
// atomic registry counters — which is how the farm reports on live
// workers. To serve a non-feedback workload in parallel, replicate
// devices — one per goroutine — and shard the data between them;
// internal/farm packages exactly that pattern.
type Device struct {
	alg     Algorithm
	prog    *program.Program
	machine *sim.Machine
	timing  model.Timing
	ref     cipher.Block
	key     []byte
	met     *deviceMetrics

	// oneBlk is the one-block scratch reused by the chaining modes'
	// block-at-a-time path (EncryptCBC), and blkBuf the bulk staging
	// scratch reused by EncryptECBInto/EncryptCTRInto — the CTR hot path
	// is allocation-free once the buffer has grown to the workload's batch
	// size (alloc_test.go pins this).
	oneBlk [1]bits.Block128
	blkBuf []bits.Block128

	// fast is the trace-compiled executor (package fastpath) serving the
	// bulk encryption paths; nil when compilation was refused (fastErr
	// records why) or forced off (interpOnly).
	fast       *fastpath.Exec
	fastErr    error
	interpOnly bool
	validate   bool

	// Decryption datapath, built lazily on first DecryptECB call (in
	// hardware terms: a second device, or this one re-loaded between
	// directions).
	decProg    *program.Program
	decMachine *sim.Machine
}

// Configure compiles the algorithm/key pair into microcode, instantiates
// the matching array geometry, loads the iRAM and runs the configuration
// phase to the idle point.
func Configure(alg Algorithm, key []byte, cfg Config) (*Device, error) {
	total, err := alg.TotalRounds()
	if err != nil {
		return nil, err
	}
	unroll := cfg.Unroll
	if unroll == 0 {
		unroll = total
	}
	var p *program.Program
	var ref cipher.Block
	switch alg {
	case RC6:
		if p, err = program.BuildRC6(key, unroll, total); err == nil {
			ref, err = cipher.NewRC6(key)
		}
	case Rijndael:
		if p, err = program.BuildRijndael(key, unroll); err == nil {
			ref, err = cipher.NewRijndael(key)
		}
	case Serpent:
		if p, err = program.BuildSerpent(key, unroll); err == nil {
			ref, err = cipher.NewSerpentCOBRA(key)
		}
	}
	if err != nil {
		return nil, err
	}
	m, err := program.NewMachine(p)
	if err != nil {
		return nil, err
	}
	met := newDeviceMetrics(alg)
	if cfg.Trace > 0 {
		met.reg.EnableTrace(cfg.Trace)
	}
	// The machine-level observer feeds the cobra_sim_* family: interpreter
	// machine activity including the setup/configuration phase. Fastpath
	// runs never touch the machine, so the device-level
	// cobra_device_*_total mirrors (fed by encryptInto across both
	// engines) are the bulk-encryption source of truth.
	m.Obs = sim.NewObserver(met.reg)
	d := &Device{alg: alg, prog: p, machine: m, ref: ref,
		key: append([]byte(nil), key...), interpOnly: cfg.Interpreter,
		validate: cfg.Validate, met: met}
	if err := d.load(); err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Attach(met.reg)
	}
	return d, nil
}

// load (re)loads the program, refreshes the timing analysis, and
// (re)compiles the fastpath trace — any previously compiled trace is
// invalidated, since it encodes the old program's configuration schedule.
func (d *Device) load() error {
	if err := program.Load(d.machine, d.prog); err != nil {
		return err
	}
	d.timing = model.Analyze(d.machine.Array, model.DefaultDelays())
	if d.fast != nil {
		d.met.invalidations.Inc()
	}
	d.fast, d.fastErr = nil, nil
	d.met.resetStats()
	if !d.interpOnly {
		d.fast, d.fastErr = d.prog.Compile()
		if d.fast != nil && d.validate {
			// The opt-in translation-validation gate: an unproven trace is
			// never installed. The device still works — every encryption
			// routes through the interpreter — and FastpathErr carries the
			// validator's verdict (divergence witness included).
			if res := d.prog.ValidateExec(d.fast); !res.Proven {
				d.fast, d.fastErr = nil, res.Err()
			}
		}
		if d.fast != nil {
			d.met.noteCompile(true, d.fast.Elided())
		} else {
			d.met.noteCompile(false, 0)
		}
	}
	return nil
}

// Obs returns the device's metrics registry — every series the device
// maintains, for attaching to an export parent or scraping in tests.
func (d *Device) Obs() *obs.Registry { return d.met.reg }

// UsesFastpath reports whether bulk encryption runs on the trace-compiled
// executor rather than the cycle-accurate interpreter.
func (d *Device) UsesFastpath() bool { return d.fast != nil }

// FastpathErr returns why trace compilation was refused (nil when the
// fastpath is active or was forced off by Config.Interpreter).
func (d *Device) FastpathErr() error { return d.fastErr }

// encryptInto routes a bulk block batch through the fastpath executor when
// one is compiled, falling back to the interpreter otherwise. A machine
// that has interpreted since its last load owns the in-flight stats chain,
// so such a device stays on the interpreter. The context is checked once
// per batch — a simulated batch is the unit of work a caller can abandon.
func (d *Device) encryptInto(ctx context.Context, dst, blocks []bits.Block128) (sim.Stats, error) {
	if err := ctx.Err(); err != nil {
		return sim.Stats{}, err
	}
	var st sim.Stats
	var err error
	if d.fast != nil && !d.machine.Dirty() {
		st, err = d.fast.EncryptInto(dst, blocks)
		if err == nil {
			d.met.fastBlocks.Add(int64(len(blocks)))
		}
	} else {
		switch {
		case d.interpOnly:
			d.met.fbForced.Inc()
		case d.fast == nil:
			d.met.fbRefused.Inc()
		default:
			d.met.fbDirty.Inc()
		}
		st, err = program.Run(d.machine, d.prog, dst, blocks, program.Opts{})
		if err == nil {
			d.met.interpBlocks.Add(int64(len(blocks)))
		}
	}
	if err != nil {
		return st, err
	}
	d.met.addStats(st)
	return st, nil
}

// scratch returns the bulk staging buffer, grown to hold n blocks. The
// buffer is device-owned (a Device is single-goroutine by contract), so
// steady-state bulk calls allocate nothing.
func (d *Device) scratch(n int) []bits.Block128 {
	if cap(d.blkBuf) < n {
		d.blkBuf = make([]bits.Block128, n)
	}
	return d.blkBuf[:n]
}

// Reconfigure switches the device to a new algorithm/key — the §1
// algorithm-agility scenario. When the new configuration needs a different
// array geometry the device is rebuilt (in hardware terms: a differently
// tiled part); with matching geometry only the microcode reloads. Either
// way the device keeps its metrics registry (and any parent attachment):
// exported counters stay monotonic across the switch, the info series
// flips to the new algorithm, and the Report view resets.
func (d *Device) Reconfigure(alg Algorithm, key []byte, cfg Config) error {
	ncfg := cfg
	ncfg.Metrics, ncfg.Trace = nil, 0
	nd, err := Configure(alg, key, ncfg)
	if err != nil {
		return err
	}
	met := d.met
	if d.fast != nil {
		met.invalidations.Inc()
	}
	met.setAlg(alg)
	if !nd.interpOnly {
		if nd.fast != nil {
			met.noteCompile(true, nd.fast.Elided())
		} else {
			met.noteCompile(false, 0)
		}
	}
	met.resetStats()
	if nd.prog.Geometry == d.prog.Geometry {
		// Same silicon: reload microcode on the existing machine. The
		// decryption datapath is dropped and rebuilt lazily for the new
		// algorithm/key, and the compiled trace is replaced by the new
		// configuration's (nd already compiled it — no second recording).
		d.alg, d.prog, d.ref, d.key = nd.alg, nd.prog, nd.ref, nd.key
		d.decProg, d.decMachine = nil, nil
		d.interpOnly, d.validate = nd.interpOnly, nd.validate
		if err := program.Load(d.machine, d.prog); err != nil {
			return err
		}
		d.timing = nd.timing
		d.fast, d.fastErr = nd.fast, nd.fastErr
		return nil
	}
	// New silicon: adopt the rebuilt device but keep the device-lifetime
	// registry; the new machine's observer rebinds to it (counter lookups
	// are get-or-create by name, so the same series keep counting).
	nd.met = met
	nd.machine.Obs = sim.NewObserver(met.reg)
	*d = *nd
	return nil
}

// Algorithm returns the configured algorithm.
func (d *Device) Algorithm() Algorithm { return d.alg }

// Unroll returns the configured unroll depth.
func (d *Device) Unroll() int { return d.prog.HWRounds }

// Geometry returns the array geometry in rows.
func (d *Device) Geometry() datapath.Geometry { return d.prog.Geometry }

// BlockSize returns the cipher block size in bytes (16 for every §4
// algorithm).
func (d *Device) BlockSize() int { return 16 }

// EncryptECB encrypts src (a multiple of 16 bytes) into a fresh slice by
// streaming the blocks through the datapath in electronic-codebook mode,
// the paper's measurement mode.
func (d *Device) EncryptECB(ctx context.Context, src []byte) ([]byte, error) {
	dst := make([]byte, len(src))
	if _, err := d.EncryptECBInto(ctx, dst, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// EncryptBlocks encrypts 128-bit blocks in place of the byte API.
func (d *Device) EncryptBlocks(ctx context.Context, blocks []bits.Block128) ([]bits.Block128, error) {
	if len(blocks) == 0 {
		return nil, nil
	}
	out := make([]bits.Block128, len(blocks))
	if _, err := d.encryptInto(ctx, out, blocks); err != nil {
		return nil, err
	}
	return out, nil
}

// EncryptECBInto is EncryptECB writing into a caller-supplied buffer
// (len(dst) >= len(src)) and returning the simulator counters for exactly
// this call — the farm's worker path, where per-shard stats are aggregated
// into a pool-wide report.
func (d *Device) EncryptECBInto(ctx context.Context, dst, src []byte) (sim.Stats, error) {
	d.met.calls[opECB].Inc()
	sp := d.met.lat[opECB].Start()
	st, err := d.encryptECBInto(ctx, dst, src)
	sp.End()
	d.met.finish(opECB, len(src), err)
	return st, err
}

func (d *Device) encryptECBInto(ctx context.Context, dst, src []byte) (sim.Stats, error) {
	if len(src)%16 != 0 {
		return sim.Stats{}, fmt.Errorf("core: input length %d is not a multiple of the block size", len(src))
	}
	if len(dst) < len(src) {
		return sim.Stats{}, fmt.Errorf("core: dst is %d bytes, need %d", len(dst), len(src))
	}
	if len(src) == 0 {
		return sim.Stats{}, ctx.Err()
	}
	blocks := d.scratch(len(src) / 16)
	for i := range blocks {
		blocks[i] = bits.LoadBlock128(src[16*i:])
	}
	stats, err := d.encryptInto(ctx, blocks, blocks)
	if err != nil {
		return stats, err
	}
	for i := range blocks {
		blocks[i].StoreBlock128(dst[16*i:])
	}
	return stats, nil
}

// encryptBlockInPlace runs a single block through the datapath, reusing
// the device's one-block scratch so the chaining loop performs no per-block
// slice allocations.
func (d *Device) encryptBlockInPlace(ctx context.Context, b *[16]byte) error {
	d.oneBlk[0] = bits.LoadBlock128(b[:])
	if _, err := d.encryptInto(ctx, d.oneBlk[:], d.oneBlk[:]); err != nil {
		return err
	}
	d.oneBlk[0].StoreBlock128(b[:])
	return nil
}

// EncryptCBC encrypts src in cipher-block-chaining mode: each block is
// XORed with the previous ciphertext before entering the datapath. The
// chaining dependency serializes the device — one block in flight — which
// is exactly the feedback-mode penalty of the paper's Table 1 (FB vs NFB
// columns): a full-length pipeline degrades to its fill+drain latency per
// block. iv must be one block (16 bytes). The context is checked between
// blocks, so a long chained message can be abandoned mid-stream.
func (d *Device) EncryptCBC(ctx context.Context, iv, src []byte) ([]byte, error) {
	dst := make([]byte, len(src))
	if _, err := d.EncryptCBCInto(ctx, dst, iv, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// EncryptCBCInto is EncryptCBC writing into a caller-supplied buffer
// (len(dst) >= len(src), may alias src) — the farm serializes a CBC
// message onto one worker through this entry point.
func (d *Device) EncryptCBCInto(ctx context.Context, dst, iv, src []byte) (sim.Stats, error) {
	d.met.calls[opCBC].Inc()
	sp := d.met.lat[opCBC].Start()
	st, err := d.encryptCBCInto(ctx, dst, iv, src)
	sp.End()
	d.met.finish(opCBC, len(src), err)
	return st, err
}

func (d *Device) encryptCBCInto(ctx context.Context, dst, iv, src []byte) (sim.Stats, error) {
	if len(iv) != 16 {
		return sim.Stats{}, fmt.Errorf("core: iv must be 16 bytes")
	}
	if len(src)%16 != 0 {
		return sim.Stats{}, fmt.Errorf("core: input length %d is not a multiple of the block size", len(src))
	}
	if len(dst) < len(src) {
		return sim.Stats{}, fmt.Errorf("core: dst is %d bytes, need %d", len(dst), len(src))
	}
	start := d.met.statsView()
	prev := iv
	var blk [16]byte
	for i := 0; i < len(src); i += 16 {
		for j := 0; j < 16; j++ {
			blk[j] = src[i+j] ^ prev[j]
		}
		if err := d.encryptBlockInPlace(ctx, &blk); err != nil {
			return sim.Stats{}, err
		}
		copy(dst[i:], blk[:])
		prev = dst[i : i+16]
	}
	return d.met.statsView().Delta(start), nil
}

// incCounter increments a CTR counter block interpreted as a 128-bit
// big-endian integer — the standard incrementing function of NIST
// SP 800-38A — wrapping at 2^128.
func incCounter(c *[16]byte) {
	for i := 15; i >= 0; i-- {
		c[i]++
		if c[i] != 0 {
			return
		}
	}
}

// AddCounter returns iv + n with the counter block interpreted as a
// 128-bit big-endian integer, wrapping modulo 2^128. iv must be 16 bytes.
// The farm uses it to derive the starting counter of each shard from the
// shard's block offset.
func AddCounter(iv []byte, n uint64) ([16]byte, error) {
	var c [16]byte
	if len(iv) != 16 {
		return c, fmt.Errorf("core: iv must be 16 bytes")
	}
	copy(c[:], iv)
	carry := n
	for i := 15; i >= 0 && carry != 0; i-- {
		sum := uint64(c[i]) + carry&0xff
		c[i] = byte(sum)
		carry = carry>>8 + sum>>8
	}
	return c, nil
}

// EncryptCTR encrypts src in counter mode: keystream block i is the
// datapath encryption of iv+i and ciphertext is plaintext XOR keystream
// (the XOR is host-side, as block assembly is in the paper's external
// system). Counter mode is the non-feedback workload of Table 1's NFB
// column — every keystream block is independent, so the counters stream
// through the pipeline back to back, and a message shards across devices
// by counter range (internal/farm). src may end in a partial block: CTR
// turns the block cipher into a stream cipher. Decryption is the same
// operation (DecryptCTR).
func (d *Device) EncryptCTR(ctx context.Context, iv, src []byte) ([]byte, error) {
	dst := make([]byte, len(src))
	if _, err := d.EncryptCTRInto(ctx, dst, iv, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// DecryptCTR inverts EncryptCTR; counter mode is an involution, so the
// call is accounted under mode="ctr" like its encryption twin.
func (d *Device) DecryptCTR(ctx context.Context, iv, src []byte) ([]byte, error) {
	return d.EncryptCTR(ctx, iv, src)
}

// EncryptCTRInto is EncryptCTR writing into a caller-supplied buffer
// (len(dst) >= len(src)) and returning the simulator counters for exactly
// this call. On a warmed device with an active fastpath the call is
// allocation-free (the benchmark gate in internal/fastpath pins this).
func (d *Device) EncryptCTRInto(ctx context.Context, dst, iv, src []byte) (sim.Stats, error) {
	d.met.calls[opCTR].Inc()
	sp := d.met.lat[opCTR].Start()
	st, err := d.encryptCTRInto(ctx, dst, iv, src)
	sp.End()
	d.met.finish(opCTR, len(src), err)
	return st, err
}

func (d *Device) encryptCTRInto(ctx context.Context, dst, iv, src []byte) (sim.Stats, error) {
	if len(iv) != 16 {
		return sim.Stats{}, fmt.Errorf("core: iv must be 16 bytes")
	}
	if len(dst) < len(src) {
		return sim.Stats{}, fmt.Errorf("core: dst is %d bytes, need %d", len(dst), len(src))
	}
	if len(src) == 0 {
		return sim.Stats{}, ctx.Err()
	}
	n := (len(src) + 15) / 16
	ctrs := d.scratch(n)
	var c [16]byte
	copy(c[:], iv)
	for i := range ctrs {
		ctrs[i] = bits.LoadBlock128(c[:])
		incCounter(&c)
	}
	stats, err := d.encryptInto(ctx, ctrs, ctrs)
	if err != nil {
		return sim.Stats{}, err
	}
	var ks [16]byte
	for i := 0; i < n; i++ {
		ctrs[i].StoreBlock128(ks[:])
		off := 16 * i
		m := len(src) - off
		if m > 16 {
			m = 16
		}
		for j := 0; j < m; j++ {
			dst[off+j] = src[off+j] ^ ks[j]
		}
	}
	return stats, nil
}

// DecryptCBC inverts EncryptCBC on the decryption datapath.
func (d *Device) DecryptCBC(ctx context.Context, iv, src []byte) ([]byte, error) {
	dst := make([]byte, len(src))
	if _, err := d.DecryptCBCInto(ctx, dst, iv, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// DecryptCBCInto is DecryptCBC writing into a caller-supplied buffer
// (len(dst) >= len(src); dst must not alias src — the chaining XOR reads
// the previous ciphertext block after the block cipher output lands) and
// returning the simulator counters for exactly this call. CBC decryption
// is a non-feedback direction: every block needs only ciphertext the
// caller already holds, which is why the farm can shard this entry point
// where EncryptCBCInto serializes.
func (d *Device) DecryptCBCInto(ctx context.Context, dst, iv, src []byte) (sim.Stats, error) {
	d.met.calls[opDecCBC].Inc()
	sp := d.met.lat[opDecCBC].Start()
	st, err := d.decryptCBCInto(ctx, dst, iv, src)
	sp.End()
	d.met.finish(opDecCBC, len(src), err)
	return st, err
}

func (d *Device) decryptCBCInto(ctx context.Context, dst, iv, src []byte) (sim.Stats, error) {
	if len(iv) != 16 {
		return sim.Stats{}, fmt.Errorf("core: iv must be 16 bytes")
	}
	st, err := d.decryptECBInto(ctx, dst, src)
	if err != nil {
		return st, err
	}
	prev := iv
	for i := 0; i < len(src); i += 16 {
		for j := 0; j < 16; j++ {
			dst[i+j] ^= prev[j]
		}
		prev = src[i : i+16]
	}
	return st, nil
}

// DecryptECB decrypts src on the datapath. The paper's evaluation maps
// only encryption; the decryption microcode here (internal/program's
// decrypt builders) shows the architecture carries the inverse ciphers
// with the same structures — RC6 via SUB + negated-amount rotates,
// Rijndael via the FIPS-197 equivalent inverse cipher, Serpent via the
// inverse LT rows. The decryption program is compiled and loaded lazily on
// first use.
func (d *Device) DecryptECB(ctx context.Context, src []byte) ([]byte, error) {
	dst := make([]byte, len(src))
	if _, err := d.DecryptECBInto(ctx, dst, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// DecryptECBInto is DecryptECB writing into a caller-supplied buffer
// (len(dst) >= len(src)) and returning the simulator counters for exactly
// this call — the farm's sharded-decrypt worker path.
func (d *Device) DecryptECBInto(ctx context.Context, dst, src []byte) (sim.Stats, error) {
	d.met.calls[opDecECB].Inc()
	sp := d.met.lat[opDecECB].Start()
	st, err := d.decryptECBInto(ctx, dst, src)
	sp.End()
	d.met.finish(opDecECB, len(src), err)
	return st, err
}

func (d *Device) decryptECBInto(ctx context.Context, dst, src []byte) (sim.Stats, error) {
	if err := ctx.Err(); err != nil {
		return sim.Stats{}, err
	}
	if len(src)%16 != 0 {
		return sim.Stats{}, fmt.Errorf("core: input length %d is not a multiple of the block size", len(src))
	}
	if len(dst) < len(src) {
		return sim.Stats{}, fmt.Errorf("core: dst is %d bytes, need %d", len(dst), len(src))
	}
	if d.decMachine == nil {
		if err := d.buildDecryptor(); err != nil {
			return sim.Stats{}, err
		}
	}
	return program.RunBytes(d.decMachine, d.decProg, dst[:len(src)], src, program.Opts{})
}

// buildDecryptor compiles and loads the decryption datapath. Its machine
// shares the device registry's observer, so the cobra_sim_* family covers
// both directions.
func (d *Device) buildDecryptor() error {
	var p *program.Program
	var err error
	key := d.key
	switch d.alg {
	case RC6:
		p, err = program.BuildRC6Decrypt(key, d.prog.HWRounds, d.prog.TotalRounds)
	case Rijndael:
		p, err = program.BuildRijndaelDecrypt(key, d.prog.HWRounds)
	case Serpent:
		// The decryption mapping is evaluated at the paper's base
		// granularity (one round per pass).
		p, err = program.BuildSerpentDecrypt(key)
	default:
		err = fmt.Errorf("core: no decryption mapping for %q", d.alg)
	}
	if err != nil {
		return err
	}
	m, err := program.NewMachine(p)
	if err != nil {
		return err
	}
	m.Obs = sim.NewObserver(d.met.reg)
	if err := program.Load(m, p); err != nil {
		return err
	}
	d.decProg, d.decMachine = p, m
	return nil
}

// DecryptECBHost decrypts with the host-side reference implementation
// (the external system of the paper's protocol), useful for cross-checking
// the datapath.
func (d *Device) DecryptECBHost(src []byte) ([]byte, error) {
	if len(src)%16 != 0 {
		return nil, fmt.Errorf("core: input length %d is not a multiple of the block size", len(src))
	}
	dst := make([]byte, len(src))
	for i := 0; i < len(src); i += 16 {
		d.ref.Decrypt(dst[i:], src[i:])
	}
	return dst, nil
}

// Report summarizes a device's measured and modeled performance: the
// backend-independent Summary plus the device-only timing/area model
// outputs. Field names and JSON tags are a stable reporting surface
// (pinned by the golden test in report_test.go).
type Report struct {
	Summary
	// Streaming reports whether the loaded program is a streaming
	// (full-unroll, non-feedback) mapping.
	Streaming bool `json:"streaming"`
	// IRAMMHz is the modeled instruction-RAM clock (§3.3's dual clocks).
	IRAMMHz float64 `json:"iram_mhz"`
	// Gates is the modeled gate count (Table 5).
	Gates int `json:"gates"`
}

// Report returns the accumulated performance counters combined with the
// timing and area models — the quantities Tables 3, 5 and 6 report. The
// counters sum every bulk encryption since configuration (or ResetStats)
// across both engines: interpreter runs and fastpath runs (which report
// the cycles the interpreter would have spent) accumulate identically.
// The view is derived from the device's obs registry, so Report agrees
// with a concurrent /metrics scrape by construction.
func (d *Device) Report() Report {
	st := d.met.statsView()
	cpb := 0.0
	if st.BlocksOut > 0 {
		cpb = float64(st.Cycles) / float64(st.BlocksOut)
	}
	return Report{
		Summary: Summary{
			Algorithm:      d.alg,
			Backend:        "device",
			Workers:        1,
			Unroll:         d.prog.HWRounds,
			Rows:           d.prog.Geometry.Rows,
			Stats:          st,
			CyclesPerBlock: cpb,
			DatapathMHz:    d.timing.DatapathMHz,
			ThroughputMbps: d.timing.ThroughputMbps(cpb),
		},
		Streaming: d.prog.Streaming,
		IRAMMHz:   d.timing.IRAMMHz,
		Gates:     model.Table5(model.Table4(), d.prog.Geometry).Total(),
	}
}

// Summary returns the backend-independent view of Report (the Cipher
// accessor).
func (d *Device) Summary() Summary { return d.Report().Summary }

// ResetStats zeroes the performance counters between measurement phases.
// The reset is a snapshot of the registry's atomic counters — safe while
// an encryption is in flight, and the exported /metrics series keep
// counting monotonically.
func (d *Device) ResetStats() { d.met.resetStats() }

// Describe renders the configured architecture topology (figure 1 style).
func (d *Device) Describe() string { return d.machine.Array.Describe() }

// Microcode returns the loaded program size in 80-bit instruction words.
func (d *Device) Microcode() int { return len(d.prog.Instrs) }
