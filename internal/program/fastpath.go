package program

import (
	"fmt"

	"cobra/internal/bits"
	"cobra/internal/fastpath"
	"cobra/internal/sim"
	"cobra/internal/vet"
)

// Compile trace-compiles the program into a fastpath executor: one
// steady-state window is recorded on a scratch cycle-accurate machine,
// proven periodic, and flattened into a per-cycle op-list (see package
// fastpath). Programs whose bulk phase cannot be proven steady-state —
// key-request handshakes, eRAM/LUT writes during encryption, aperiodic
// output cadence, or any Error-severity cobravet finding — return an error
// wrapping fastpath.ErrNotSteady; callers keep using the interpreter.
func (p *Program) Compile() (*fastpath.Exec, error) {
	if p.NeedsKey {
		return nil, fmt.Errorf("%w: %s: key-request handshake programs need the external system",
			fastpath.ErrNotSteady, p.Name)
	}
	for _, f := range p.Vet() {
		if f.Sev == vet.Error {
			return nil, fmt.Errorf("%w: %s: vet: %s", fastpath.ErrNotSteady, p.Name, f)
		}
	}
	src := fastpath.Source{
		Name:          p.Name,
		Words:         p.Words(),
		Geometry:      p.Geometry,
		Window:        p.Window,
		Streaming:     p.Streaming,
		PipelineDepth: p.PipelineDepth,
	}
	// Dead-op elision: when the dataflow walk closes with no Error findings,
	// its dead-element mask lets the compiler skip operations whose values
	// provably never reach the ciphertext. The mask is advisory — the
	// compile-time self-check replay still verifies the trace bit-for-bit.
	if res := p.Analyze(); res.Complete && !res.HasErrors() {
		src.DeadElems = res.DeadMask(p.Geometry.Rows)
	}
	return fastpath.Compile(src)
}

// EncryptFastInto encrypts through the compiled executor when it is safe
// and falls back to the cycle-accurate interpreter otherwise.
//
// Deprecated: use Run with Opts{Fast: ex}, which carries the same
// fallback contract.
func EncryptFastInto(ex *fastpath.Exec, m *sim.Machine, p *Program, dst, blocks []bits.Block128) (sim.Stats, error) {
	return Run(m, p, dst, blocks, Opts{Fast: ex})
}
