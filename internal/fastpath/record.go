package fastpath

import (
	"fmt"

	"cobra/internal/bits"
	"cobra/internal/datapath"
	"cobra/internal/isa"
	"cobra/internal/rce"
	"cobra/internal/sim"
)

// recBlocks is the number of output blocks the recorder observes: one head
// segment plus recBlocks−1 steady periods, of which every pair is compared.
// Four verified period repetitions is already redundant — control-state
// equality at one period boundary proves the schedule (see package doc) —
// but redundancy is cheap here and catches recorder bugs.
const recBlocks = 6

// rceSnap is the complete per-cycle control state of one RCE: its control
// registers, the eRAM word its read port presents (resolved, so the
// compiled trace is free of eRAM lookups), and its hold state.
type rceSnap struct {
	cfg  rce.Config
	iner uint32
	hold bool
}

// tickSnap is the complete resolved control state of the machine at one
// datapath cycle, captured by the TickHook just before the cycle runs,
// plus the counter snapshot used to segment the stream.
type tickSnap struct {
	pc       int
	flags    uint16
	enabled  bool
	inMode   isa.InMuxMode
	playAddr uint8
	eramVec  bits.Block128 // resolved playback words (InERAM mode)
	white    [datapath.Cols]isa.WhiteCfg
	capture  [datapath.Cols]bool
	shuf     [][16]uint8
	rces     []rceSnap
	preStats sim.Stats
}

// equalSnap compares two cycle snapshots field by field.
func equalSnap(a, b *tickSnap) bool {
	if a.pc != b.pc || a.flags != b.flags || a.enabled != b.enabled ||
		a.inMode != b.inMode || a.playAddr != b.playAddr || a.eramVec != b.eramVec ||
		a.white != b.white || a.capture != b.capture {
		return false
	}
	for i := range a.shuf {
		if a.shuf[i] != b.shuf[i] {
			return false
		}
	}
	for i := range a.rces {
		if a.rces[i] != b.rces[i] {
			return false
		}
	}
	return true
}

// recording is the raw material Compile works from: the cycle stream of one
// recorded bulk-encryption run and the machine it ran on.
type recording struct {
	m      *sim.Machine
	ticks  []*tickSnap
	final  sim.Stats
	hazard error // set by the Trace watcher on non-replayable instructions

	initReg [][datapath.Cols]uint32
	initFB  bits.Block128
}

// snapshot captures the machine's control state for the cycle about to run.
func (rec *recording) snapshot() {
	m := rec.m
	a := m.Array
	rows := a.Geometry().Rows
	s := &tickSnap{
		pc:       m.Seq.PC(),
		flags:    m.Seq.Flags(),
		enabled:  a.Enabled(),
		inMode:   a.InMux().Mode,
		playAddr: a.PlaybackAddr(),
		shuf:     make([][16]uint8, a.Geometry().Shufflers()),
		rces:     make([]rceSnap, rows*datapath.Cols),
		preStats: m.Stats(),
	}
	if s.inMode == isa.InERAM {
		bank := int(a.InMux().Bank)
		for c := 0; c < datapath.Cols; c++ {
			s.eramVec[c] = a.ReadERAM(c, bank, int(s.playAddr))
		}
	}
	for c := 0; c < datapath.Cols; c++ {
		s.white[c] = a.Whitening(c)
		s.capture[c] = a.Capture(c).Enabled
	}
	for i := range s.shuf {
		s.shuf[i] = a.Shuffler(i)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < datapath.Cols; c++ {
			el := a.RCE(r, c)
			s.rces[r*datapath.Cols+c] = rceSnap{
				cfg:  el.Cfg,
				iner: a.ReadERAM(c, int(el.Cfg.ER.Bank), int(el.Cfg.ER.Addr)),
				hold: a.Held(r, c),
			}
		}
	}
	rec.ticks = append(rec.ticks, s)
}

// watch flags instructions the compiled trace cannot replay: anything that
// mutates state the recorder resolved to immediates (eRAM, LUTs) or that
// writes back into the eRAMs per cycle (capture).
func (rec *recording) watch(addr int, in isa.Instr) {
	if rec.hazard != nil {
		return
	}
	switch in.Op {
	case isa.OpERAMWrite:
		rec.hazard = fmt.Errorf("%w: eRAM write at %#x during bulk encryption", ErrNotSteady, addr)
	case isa.OpLoadLUT:
		rec.hazard = fmt.Errorf("%w: LUT load at %#x during bulk encryption", ErrNotSteady, addr)
	case isa.OpCfgCapture:
		if isa.DecodeCapture(in.Data).Enabled {
			rec.hazard = fmt.Errorf("%w: capture port enabled at %#x during bulk encryption", ErrNotSteady, addr)
		}
	}
}

// record loads the program on a scratch machine, runs the setup phase to
// the idle point, then records a recBlocks-output bulk-encryption run with
// deterministic inputs.
func record(src Source) (*recording, error) {
	if src.Window < 1 {
		return nil, fmt.Errorf("fastpath: %s: window %d", src.Name, src.Window)
	}
	m, err := sim.New(src.Geometry, src.Window)
	if err != nil {
		return nil, err
	}
	m.Go = false
	if err := m.LoadProgram(src.Words); err != nil {
		return nil, err
	}
	reason, err := m.Run(sim.Limits{})
	if err != nil {
		return nil, err
	}
	if reason != sim.StopWaitGo {
		return nil, fmt.Errorf("%w: %s: setup stopped with %v, want idle at ready", ErrNotSteady, src.Name, reason)
	}
	m.ResetStats()

	rec := &recording{m: m}
	rows := src.Geometry.Rows
	rec.initReg = make([][datapath.Cols]uint32, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < datapath.Cols; c++ {
			rec.initReg[r][c] = m.Array.RegValue(r, c)
		}
	}
	rec.initFB = m.Array.Feedback()

	// Deterministic input batch (xorshift32); values are irrelevant to the
	// recorded control stream — the self-check below replays exactly these.
	m.PushInput(recordInputs(recBlocks, src)...)

	m.TickHook = rec.snapshot
	m.Trace = rec.watch
	m.Go = true
	reason, err = m.Run(sim.Limits{StopAfterOutputs: recBlocks})
	m.TickHook = nil
	m.Trace = nil
	if err != nil {
		return nil, err
	}
	if rec.hazard != nil {
		return nil, rec.hazard
	}
	if reason != sim.StopOutputs {
		return nil, fmt.Errorf("%w: %s: recording run stopped with %v before %d outputs",
			ErrNotSteady, src.Name, reason, recBlocks)
	}
	rec.final = m.Stats()
	return rec, nil
}

// recordInputs builds the recording batch: recBlocks pseudo-random blocks,
// plus pipeline flush for streaming programs, exactly as
// program.Run would push them.
func recordInputs(n int, src Source) []bits.Block128 {
	total := n
	if src.Streaming {
		total += src.PipelineDepth + 1
	}
	in := make([]bits.Block128, total)
	seed := uint32(0x9e3779b9)
	for i := 0; i < n; i++ {
		for c := 0; c < datapath.Cols; c++ {
			seed ^= seed << 13
			seed ^= seed >> 17
			seed ^= seed << 5
			in[i][c] = seed
		}
	}
	return in
}

// postStats returns the counter snapshot just after tick t.
func (rec *recording) postStats(t int) sim.Stats {
	if t+1 < len(rec.ticks) {
		return rec.ticks[t+1].preStats
	}
	return rec.final
}

// outputTicks returns the indices of ticks that emitted an output block.
func (rec *recording) outputTicks() []int {
	var out []int
	for t := range rec.ticks {
		if rec.postStats(t).BlocksOut > rec.ticks[t].preStats.BlocksOut {
			out = append(out, t)
		}
	}
	return out
}
