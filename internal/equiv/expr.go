package equiv

import (
	"fmt"
	"strings"

	"cobra/internal/bits"
)

// xid identifies one hash-consed expression node in an Arena. Structural
// equality of canonicalized expressions is id equality: both symbolic
// executors build into one shared arena, so proving two output words equal
// is a single integer comparison.
type xid uint32

// opKind enumerates the expression node kinds: one per word-level operation
// either execution side can perform. The set is closed over both rce.Eval
// (the microcode reference semantics) and the fastpath step kinds, so the
// two sides build structurally identical nodes for equivalent operations.
type opKind uint8

const (
	opConst opKind = iota
	opInput        // aux = blk<<2 | col: word col of the blk-th consumed input block

	// N-ary commutative/associative ops: args sorted by id, constant term
	// folded into val (see the constructor invariants below).
	opXor
	opAnd
	opOr
	opAdd // aux = bits.Width; args may repeat (x+x is not x)
	opMul // aux = bits.Width; val is the folded coefficient

	opSub    // aux = bits.Width; args = [x, y], y non-const
	opSquare // bits.SquareMod32

	opShl  // aux = amount 1..31
	opShr  // aux = amount 1..31
	opRotl // aux = amount 1..31

	opShlVar // args = [x, amt]; aux = 1 when the E element negates the amount
	opShrVar // low 5 bits of amt select the distance
	opRotlVar

	opS8     // aux = S8 table id: 4 lanes through per-lane 256×8 tables
	opS4     // aux = table id<<3 | page: 8 nibble lanes, tables shared pair-wise
	opS8to32 // aux = table id<<2 | byte select: one byte through all four banks
	opGF     // aux = F mode (1 lanes, 2 MDS); val = packed constants
	opGFRaw  // aux = raw 4×256×32 table id (unrecoverable compiled F tables)

	opByte  // aux = byte index 0..3: (x >> 8i) & 0xff
	opPack4 // args = [b0..b3]: b0 | b1<<8 | b2<<16 | b3<<24 (bytes masked)

	opVar // aux = variable index: a generalized carried-state word (inductive step)
)

// node is one interned expression. Nodes are immutable after creation.
type node struct {
	op   opKind
	aux  uint32
	val  uint32
	args []xid
}

// Arena is the hash-consing store: every distinct canonical expression is
// materialized exactly once, so structurally equal expressions always get
// the same xid. Lookup tables are interned by content through the same
// mechanism — equal tables share one id regardless of which side loaded
// them.
type Arena struct {
	nodes []node
	index map[string]xid

	s8Tabs  []*[4][256]uint8
	s8Index map[string]uint32
	s4Tabs  []*[4][128]uint8
	s4Index map[string]uint32
	gfTabs  []*[4][256]uint32
	gfIndex map[string]uint32

	consts map[uint32]xid // fast path for the dominant node kind
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{
		index:   make(map[string]xid),
		s8Index: make(map[string]uint32),
		s4Index: make(map[string]uint32),
		gfIndex: make(map[string]uint32),
		consts:  make(map[uint32]xid),
	}
}

// Size returns the number of interned nodes.
func (a *Arena) Size() int { return len(a.nodes) }

// intern returns the id of a node, creating it if unseen. The key encodes
// every identity-bearing field, so two nodes collide exactly when they are
// structurally identical.
func (a *Arena) intern(n node) xid {
	var sb strings.Builder
	sb.Grow(13 + 4*len(n.args))
	sb.WriteByte(byte(n.op))
	putU32(&sb, n.aux)
	putU32(&sb, n.val)
	for _, arg := range n.args {
		putU32(&sb, uint32(arg))
	}
	k := sb.String()
	if id, ok := a.index[k]; ok {
		return id
	}
	id := xid(len(a.nodes))
	a.nodes = append(a.nodes, n)
	a.index[k] = id
	return id
}

func putU32(sb *strings.Builder, v uint32) {
	sb.WriteByte(byte(v))
	sb.WriteByte(byte(v >> 8))
	sb.WriteByte(byte(v >> 16))
	sb.WriteByte(byte(v >> 24))
}

// Const interns a constant word.
func (a *Arena) Const(v uint32) xid {
	if id, ok := a.consts[v]; ok {
		return id
	}
	id := a.intern(node{op: opConst, val: v})
	a.consts[v] = id
	return id
}

// Input interns the symbolic variable for word col of the blk-th input
// block consumed from the external bus.
func (a *Arena) Input(blk, col int) xid {
	return a.intern(node{op: opInput, aux: uint32(blk)<<2 | uint32(col&3)})
}

// Var interns a generalized carried-state variable: the inductive step
// replaces boundary register/feedback words with fresh vars so one
// symbolic period proves the property for every reachable carried state.
func (a *Arena) Var(idx uint32) xid {
	return a.intern(node{op: opVar, aux: idx})
}

func (a *Arena) isConst(id xid) (uint32, bool) {
	n := &a.nodes[id]
	if n.op == opConst {
		return n.val, true
	}
	return 0, false
}

// --- table interning ---------------------------------------------------------

// InternS8 interns a 4×256×8 LUT bank set by content.
func (a *Arena) InternS8(t *[4][256]uint8) uint32 {
	var sb strings.Builder
	sb.Grow(4 * 256)
	for b := range t {
		sb.Write(t[b][:])
	}
	k := sb.String()
	if id, ok := a.s8Index[k]; ok {
		return id
	}
	cp := *t
	id := uint32(len(a.s8Tabs))
	a.s8Tabs = append(a.s8Tabs, &cp)
	a.s8Index[k] = id
	return id
}

// InternS4 interns a 4×128×4 LUT bank set by content (low nibbles only, the
// stored representation).
func (a *Arena) InternS4(t *[4][128]uint8) uint32 {
	var sb strings.Builder
	sb.Grow(4 * 128)
	for b := range t {
		sb.Write(t[b][:])
	}
	k := sb.String()
	if id, ok := a.s4Index[k]; ok {
		return id
	}
	cp := *t
	id := uint32(len(a.s4Tabs))
	a.s4Tabs = append(a.s4Tabs, &cp)
	a.s4Index[k] = id
	return id
}

// InternGFRaw interns a compiled 4×256×32 F-element table by content; used
// only when the table cannot be re-expanded to its defining GF expression.
func (a *Arena) InternGFRaw(t *[4][256]uint32) uint32 {
	var sb strings.Builder
	sb.Grow(4 * 256 * 4)
	for b := range t {
		for _, w := range t[b] {
			putU32(&sb, w)
		}
	}
	k := sb.String()
	if id, ok := a.gfIndex[k]; ok {
		return id
	}
	cp := *t
	id := uint32(len(a.gfTabs))
	a.gfTabs = append(a.gfTabs, &cp)
	a.gfIndex[k] = id
	return id
}

// --- n-ary commutative constructors ------------------------------------------

// flatten gathers the non-const operands of an n-ary node of kind op (with
// matching aux), recursing one level into same-kind children, and folds
// constants through fold.
func (a *Arena) flatten(op opKind, aux uint32, acc *uint32, fold func(uint32, uint32) uint32, args *[]xid, id xid) {
	n := &a.nodes[id]
	if n.op == opConst {
		*acc = fold(*acc, n.val)
		return
	}
	if n.op == op && n.aux == aux {
		*acc = fold(*acc, n.val)
		*args = append(*args, n.args...)
		return
	}
	*args = append(*args, id)
}

func sortXids(xs []xid) {
	// Insertion sort: operand lists are tiny (almost always 2-4).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Xor builds x ^ y canonically: operands flattened, constants folded into
// the node's val, args sorted, and equal pairs cancelled (x ^ x = 0).
func (a *Arena) Xor(x, y xid) xid {
	acc := uint32(0)
	fold := func(p, q uint32) uint32 { return p ^ q }
	var args []xid
	a.flatten(opXor, 0, &acc, fold, &args, x)
	a.flatten(opXor, 0, &acc, fold, &args, y)
	sortXids(args)
	// Cancel pairs: any arg appearing an even number of times vanishes.
	out := args[:0]
	for i := 0; i < len(args); {
		j := i
		for j < len(args) && args[j] == args[i] {
			j++
		}
		if (j-i)%2 == 1 {
			out = append(out, args[i])
		}
		i = j
	}
	switch {
	case len(out) == 0:
		return a.Const(acc)
	case len(out) == 1 && acc == 0:
		return out[0]
	}
	return a.intern(node{op: opXor, val: acc, args: append([]xid(nil), out...)})
}

// And builds x & y canonically: flattened, deduplicated (x & x = x),
// constants folded; the all-ones constant is the identity and zero
// annihilates.
func (a *Arena) And(x, y xid) xid {
	acc := ^uint32(0)
	fold := func(p, q uint32) uint32 { return p & q }
	var args []xid
	a.flatten(opAnd, 0, &acc, fold, &args, x)
	a.flatten(opAnd, 0, &acc, fold, &args, y)
	if acc == 0 {
		return a.Const(0)
	}
	sortXids(args)
	args = dedupeXids(args)
	switch {
	case len(args) == 0:
		return a.Const(acc)
	case len(args) == 1 && acc == ^uint32(0):
		return args[0]
	}
	return a.intern(node{op: opAnd, val: acc, args: args})
}

// Or builds x | y canonically (dual of And).
func (a *Arena) Or(x, y xid) xid {
	acc := uint32(0)
	fold := func(p, q uint32) uint32 { return p | q }
	var args []xid
	a.flatten(opOr, 0, &acc, fold, &args, x)
	a.flatten(opOr, 0, &acc, fold, &args, y)
	if acc == ^uint32(0) {
		return a.Const(^uint32(0))
	}
	sortXids(args)
	args = dedupeXids(args)
	switch {
	case len(args) == 0:
		return a.Const(acc)
	case len(args) == 1 && acc == 0:
		return args[0]
	}
	return a.intern(node{op: opOr, val: acc, args: args})
}

func dedupeXids(xs []xid) []xid {
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != xs[i-1] {
			out = append(out, v)
		}
	}
	return append([]xid(nil), out...)
}

// Add builds x + y (lane-wise modulo 2^8/2^16/2^32 per w) canonically:
// flattened per width, constants folded with bits.AddMod, args sorted but
// not deduplicated (addition is not idempotent).
func (a *Arena) Add(x, y xid, w bits.Width) xid {
	acc := uint32(0)
	fold := func(p, q uint32) uint32 { return bits.AddMod(p, q, w) }
	var args []xid
	a.flatten(opAdd, uint32(w), &acc, fold, &args, x)
	a.flatten(opAdd, uint32(w), &acc, fold, &args, y)
	sortXids(args)
	switch {
	case len(args) == 0:
		return a.Const(acc)
	case len(args) == 1 && acc == 0:
		return args[0]
	}
	return a.intern(node{op: opAdd, aux: uint32(w), val: acc, args: append([]xid(nil), args...)})
}

// Sub builds x - y at width w. A constant subtrahend becomes an addition of
// its lane-wise negation, so key subtraction and the equivalent negated-key
// addition canonicalize identically; x - x folds to zero.
func (a *Arena) Sub(x, y xid, w bits.Width) xid {
	if c, ok := a.isConst(y); ok {
		return a.Add(x, a.Const(bits.SubMod(0, c, w)), w)
	}
	if x == y {
		return a.Const(0)
	}
	if cx, ok := a.isConst(x); ok {
		if cy, ok2 := a.isConst(y); ok2 {
			return a.Const(bits.SubMod(cx, cy, w))
		}
	}
	return a.intern(node{op: opSub, aux: uint32(w), args: []xid{x, y}})
}

// mulIdent returns the multiplicative identity word at width w. W8 behaves
// as W16 to match bits.MulMod (the D element has no 8-bit width).
func mulIdent(w bits.Width) uint32 {
	if w == bits.W32 {
		return 1
	}
	return 0x00010001
}

// Mul builds x * y (lane-wise modulo per width) canonically: flattened,
// constant coefficient folded with bits.MulMod, identity dropped, zero
// annihilates.
func (a *Arena) Mul(x, y xid, w bits.Width) xid {
	acc := mulIdent(w)
	fold := func(p, q uint32) uint32 { return bits.MulMod(p, q, w) }
	var args []xid
	a.flatten(opMul, uint32(w), &acc, fold, &args, x)
	a.flatten(opMul, uint32(w), &acc, fold, &args, y)
	if acc == 0 {
		return a.Const(0)
	}
	sortXids(args)
	switch {
	case len(args) == 0:
		return a.Const(acc)
	case len(args) == 1 && acc == mulIdent(w):
		return args[0]
	}
	return a.intern(node{op: opMul, aux: uint32(w), val: acc, args: append([]xid(nil), args...)})
}

// Square builds bits.SquareMod32(x).
func (a *Arena) Square(x xid) xid {
	if c, ok := a.isConst(x); ok {
		return a.Const(bits.SquareMod32(c))
	}
	return a.intern(node{op: opSquare, args: []xid{x}})
}

// --- shifts and rotates ------------------------------------------------------

// Shl builds x << amt with bits.Shl saturation (amt >= 32 yields zero) and
// composition of nested logical left shifts.
func (a *Arena) Shl(x xid, amt uint) xid {
	if amt == 0 {
		return x
	}
	if amt >= 32 {
		return a.Const(0)
	}
	if c, ok := a.isConst(x); ok {
		return a.Const(bits.Shl(c, amt))
	}
	if n := &a.nodes[x]; n.op == opShl {
		return a.Shl(n.args[0], amt+uint(n.aux))
	}
	return a.intern(node{op: opShl, aux: uint32(amt), args: []xid{x}})
}

// Shr is the logical right-shift dual of Shl.
func (a *Arena) Shr(x xid, amt uint) xid {
	if amt == 0 {
		return x
	}
	if amt >= 32 {
		return a.Const(0)
	}
	if c, ok := a.isConst(x); ok {
		return a.Const(bits.Shr(c, amt))
	}
	if n := &a.nodes[x]; n.op == opShr {
		return a.Shr(n.args[0], amt+uint(n.aux))
	}
	return a.intern(node{op: opShr, aux: uint32(amt), args: []xid{x}})
}

// Rotl builds a left rotation by amt mod 32, composing nested rotations
// ((x <<< a) <<< b = x <<< (a+b mod 32)) and eliding zero rotations.
func (a *Arena) Rotl(x xid, amt uint) xid {
	amt &= 31
	if amt == 0 {
		return x
	}
	if c, ok := a.isConst(x); ok {
		return a.Const(bits.RotL(c, amt))
	}
	if n := &a.nodes[x]; n.op == opRotl {
		return a.Rotl(n.args[0], amt+uint(n.aux))
	}
	return a.intern(node{op: opRotl, aux: uint32(amt), args: []xid{x}})
}

// shiftVar builds a data-dependent shift: the low five bits of amt select
// the distance, negated mod 32 when neg (the E element's Neg stage). A
// constant amount reduces to the immediate form.
func (a *Arena) shiftVar(op opKind, x, amt xid, neg bool) xid {
	if c, ok := a.isConst(amt); ok {
		dist := uint(c & 31)
		if neg {
			dist = (32 - dist) & 31
		}
		switch op {
		case opShlVar:
			return a.Shl(x, dist)
		case opShrVar:
			return a.Shr(x, dist)
		default:
			return a.Rotl(x, dist)
		}
	}
	aux := uint32(0)
	if neg {
		aux = 1
	}
	return a.intern(node{op: op, aux: aux, args: []xid{x, amt}})
}

// ShlVar builds x << (amt&31), optionally with the negated amount.
func (a *Arena) ShlVar(x, amt xid, neg bool) xid { return a.shiftVar(opShlVar, x, amt, neg) }

// ShrVar builds x >> (amt&31), optionally with the negated amount.
func (a *Arena) ShrVar(x, amt xid, neg bool) xid { return a.shiftVar(opShrVar, x, amt, neg) }

// RotlVar builds x <<< (amt&31), optionally with the negated amount.
func (a *Arena) RotlVar(x, amt xid, neg bool) xid { return a.shiftVar(opRotlVar, x, amt, neg) }

// --- table lookups -----------------------------------------------------------

func evalS8(t *[4][256]uint8, x uint32) uint32 {
	return uint32(t[0][uint8(x)]) |
		uint32(t[1][uint8(x>>8)])<<8 |
		uint32(t[2][uint8(x>>16)])<<16 |
		uint32(t[3][uint8(x>>24)])<<24
}

func evalS4(t *[4][128]uint8, page uint32, x uint32) uint32 {
	base := page * 16
	var out uint32
	for lane := 0; lane < 8; lane++ {
		n := x >> (4 * uint(lane)) & 0xf
		out |= uint32(t[lane/2][base+n]&0xf) << (4 * uint(lane))
	}
	return out
}

func evalS8to32(t *[4][256]uint8, sel uint32, x uint32) uint32 {
	b := uint8(x >> (8 * uint(sel)))
	return uint32(t[0][b]) | uint32(t[1][b])<<8 | uint32(t[2][b])<<16 | uint32(t[3][b])<<24
}

// S8 builds the 4-lane 8→8 substitution through the interned table set.
func (a *Arena) S8(x xid, tab uint32) xid {
	if c, ok := a.isConst(x); ok {
		return a.Const(evalS8(a.s8Tabs[tab], c))
	}
	return a.intern(node{op: opS8, aux: tab, args: []xid{x}})
}

// S4 builds the 8-nibble-lane 4→4 substitution on one page.
func (a *Arena) S4(x xid, tab, page uint32) xid {
	if c, ok := a.isConst(x); ok {
		return a.Const(evalS4(a.s4Tabs[tab], page&7, c))
	}
	return a.intern(node{op: opS4, aux: tab<<3 | page&7, args: []xid{x}})
}

// S8to32 builds the 8→32 substitution: one selected input byte through all
// four 8→8 banks in parallel.
func (a *Arena) S8to32(x xid, tab, sel uint32) xid {
	if c, ok := a.isConst(x); ok {
		return a.Const(evalS8to32(a.s8Tabs[tab], sel&3, c))
	}
	return a.intern(node{op: opS8to32, aux: tab<<2 | sel&3, args: []xid{x}})
}

// GF modes mirror isa.FMode's non-bypass values.
const (
	gfLanes uint32 = 1
	gfMDS   uint32 = 2
)

func packGFConsts(c [4]uint8) uint32 {
	return uint32(c[0]) | uint32(c[1])<<8 | uint32(c[2])<<16 | uint32(c[3])<<24
}

func unpackGFConsts(v uint32) [4]uint8 {
	return [4]uint8{uint8(v), uint8(v >> 8), uint8(v >> 16), uint8(v >> 24)}
}

func evalGF(mode uint32, consts [4]uint8, x uint32) uint32 {
	if mode == gfLanes {
		return bits.GFMulWord(x, consts)
	}
	return bits.GFMDSColumn(x, consts)
}

// GF builds the F element's fixed-field-constant multiply from its defining
// GF(2^8) expression. A degenerate MDS circulant (c,0,0,0) is the same
// function as lane-wise multiplication by (c,c,c,c), so it canonicalizes to
// lane mode; the identity configuration then elides the node entirely.
func (a *Arena) GF(x xid, mode uint32, consts [4]uint8) xid {
	if mode == gfMDS && consts[1] == 0 && consts[2] == 0 && consts[3] == 0 {
		mode = gfLanes
		consts = [4]uint8{consts[0], consts[0], consts[0], consts[0]}
	}
	if mode == gfLanes && consts == [4]uint8{1, 1, 1, 1} {
		return x
	}
	if c, ok := a.isConst(x); ok {
		return a.Const(evalGF(mode, consts, c))
	}
	return a.intern(node{op: opGF, aux: mode, val: packGFConsts(consts), args: []xid{x}})
}

// GFRaw builds an F-element lookup through a verbatim compiled table — the
// fallback for tables that fail GF re-expansion (a corrupted-table defect).
// A GFRaw node can never equal a GF node, so any live use is reported as a
// mismatch, with the witness evaluated through the corrupted table exactly
// as the fastpath executor would.
func (a *Arena) GFRaw(x xid, tab uint32) xid {
	if c, ok := a.isConst(x); ok {
		t := a.gfTabs[tab]
		return a.Const(t[0][c&0xff] ^ t[1][c>>8&0xff] ^ t[2][c>>16&0xff] ^ t[3][c>>24])
	}
	return a.intern(node{op: opGFRaw, aux: tab, args: []xid{x}})
}

// --- byte extraction / packing (shufflers) -----------------------------------

// Byte builds (x >> 8i) & 0xff. Extracting from a packed word selects the
// packed byte directly, so shuffler chains compose without growth.
func (a *Arena) Byte(x xid, i int) xid {
	i &= 3
	if c, ok := a.isConst(x); ok {
		return a.Const(c >> (8 * uint(i)) & 0xff)
	}
	if n := &a.nodes[x]; n.op == opPack4 {
		return n.args[i]
	}
	return a.intern(node{op: opByte, aux: uint32(i), args: []xid{x}})
}

// Pack4 assembles a word from four byte values (each masked to its low
// byte). Re-packing the four bytes of one word in order yields that word,
// so identity shuffles vanish.
func (a *Arena) Pack4(b [4]xid) xid {
	if c0, ok := a.isConst(b[0]); ok {
		if c1, ok := a.isConst(b[1]); ok {
			if c2, ok := a.isConst(b[2]); ok {
				if c3, ok := a.isConst(b[3]); ok {
					return a.Const(c0&0xff | c1&0xff<<8 | c2&0xff<<16 | c3&0xff<<24)
				}
			}
		}
	}
	if n0 := &a.nodes[b[0]]; n0.op == opByte && n0.aux == 0 {
		base := n0.args[0]
		same := true
		for i := 1; i < 4; i++ {
			n := &a.nodes[b[i]]
			if n.op != opByte || n.aux != uint32(i) || n.args[0] != base {
				same = false
				break
			}
		}
		if same {
			return base
		}
	}
	return a.intern(node{op: opPack4, args: []xid{b[0], b[1], b[2], b[3]}})
}

// --- concrete evaluation (witness search) ------------------------------------

// evaluator computes concrete values of arena expressions under one input
// assignment, memoized per node with epoch stamping so repeated assignments
// reuse the buffers.
type evaluator struct {
	a     *Arena
	env   []bits.Block128 // env[blk][col] = input word
	val   []uint32
	stamp []uint32
	epoch uint32
}

func newEvaluator(a *Arena) *evaluator {
	return &evaluator{a: a, val: make([]uint32, len(a.nodes)), stamp: make([]uint32, len(a.nodes))}
}

// reset installs a new input assignment.
func (ev *evaluator) reset(env []bits.Block128) {
	ev.env = env
	ev.epoch++
	if len(ev.val) < len(ev.a.nodes) {
		ev.val = make([]uint32, len(ev.a.nodes))
		ev.stamp = make([]uint32, len(ev.a.nodes))
		ev.epoch = 1
	}
}

func (ev *evaluator) eval(id xid) uint32 {
	if ev.stamp[id] == ev.epoch {
		return ev.val[id]
	}
	n := &ev.a.nodes[id]
	var v uint32
	switch n.op {
	case opConst:
		v = n.val
	case opInput:
		blk, col := int(n.aux>>2), int(n.aux&3)
		if blk < len(ev.env) {
			v = ev.env[blk][col]
		}
	case opVar:
		// Witness evaluation only ever sees var-free expressions (Validate
		// substitutes the actual boundary state first); an unexpected var
		// evaluates as zero rather than faulting.
		v = 0
	case opXor:
		v = n.val
		for _, arg := range n.args {
			v ^= ev.eval(arg)
		}
	case opAnd:
		v = n.val
		for _, arg := range n.args {
			v &= ev.eval(arg)
		}
	case opOr:
		v = n.val
		for _, arg := range n.args {
			v |= ev.eval(arg)
		}
	case opAdd:
		v = n.val
		for _, arg := range n.args {
			v = bits.AddMod(v, ev.eval(arg), bits.Width(n.aux))
		}
	case opMul:
		v = n.val
		for _, arg := range n.args {
			v = bits.MulMod(v, ev.eval(arg), bits.Width(n.aux))
		}
	case opSub:
		v = bits.SubMod(ev.eval(n.args[0]), ev.eval(n.args[1]), bits.Width(n.aux))
	case opSquare:
		v = bits.SquareMod32(ev.eval(n.args[0]))
	case opShl:
		v = bits.Shl(ev.eval(n.args[0]), uint(n.aux))
	case opShr:
		v = bits.Shr(ev.eval(n.args[0]), uint(n.aux))
	case opRotl:
		v = bits.RotL(ev.eval(n.args[0]), uint(n.aux))
	case opShlVar:
		v = bits.Shl(ev.eval(n.args[0]), ev.varAmt(n))
	case opShrVar:
		v = bits.Shr(ev.eval(n.args[0]), ev.varAmt(n))
	case opRotlVar:
		v = bits.RotL(ev.eval(n.args[0]), ev.varAmt(n))
	case opS8:
		v = evalS8(ev.a.s8Tabs[n.aux], ev.eval(n.args[0]))
	case opS4:
		v = evalS4(ev.a.s4Tabs[n.aux>>3], n.aux&7, ev.eval(n.args[0]))
	case opS8to32:
		v = evalS8to32(ev.a.s8Tabs[n.aux>>2], n.aux&3, ev.eval(n.args[0]))
	case opGF:
		v = evalGF(n.aux, unpackGFConsts(n.val), ev.eval(n.args[0]))
	case opGFRaw:
		t := ev.a.gfTabs[n.aux]
		x := ev.eval(n.args[0])
		v = t[0][x&0xff] ^ t[1][x>>8&0xff] ^ t[2][x>>16&0xff] ^ t[3][x>>24]
	case opByte:
		v = ev.eval(n.args[0]) >> (8 * uint(n.aux)) & 0xff
	case opPack4:
		v = ev.eval(n.args[0])&0xff |
			ev.eval(n.args[1])&0xff<<8 |
			ev.eval(n.args[2])&0xff<<16 |
			ev.eval(n.args[3])&0xff<<24
	}
	ev.val[id] = v
	ev.stamp[id] = ev.epoch
	return v
}

func (ev *evaluator) varAmt(n *node) uint {
	amt := uint(ev.eval(n.args[1]) & 31)
	if n.aux == 1 {
		amt = (32 - amt) & 31
	}
	return amt
}

// --- generalized-state substitution ------------------------------------------

// subst rebuilds an expression with every Var node replaced per vars,
// renormalizing through the public constructors (a substituted expression
// is canonical again, so two sides that agree after substitution intern to
// the same id). Vars absent from the map are kept.
func (a *Arena) subst(id xid, vars map[uint32]xid, memo map[xid]xid) xid {
	if r, ok := memo[id]; ok {
		return r
	}
	n := a.nodes[id] // by value: constructors below may grow a.nodes
	arg := func(i int) xid { return a.subst(n.args[i], vars, memo) }
	var r xid
	switch n.op {
	case opConst, opInput:
		r = id
	case opVar:
		if v, ok := vars[n.aux]; ok {
			r = v
		} else {
			r = id
		}
	case opXor:
		r = a.Const(n.val)
		for i := range n.args {
			r = a.Xor(r, arg(i))
		}
	case opAnd:
		r = a.Const(n.val)
		for i := range n.args {
			r = a.And(r, arg(i))
		}
	case opOr:
		r = a.Const(n.val)
		for i := range n.args {
			r = a.Or(r, arg(i))
		}
	case opAdd:
		r = a.Const(n.val)
		for i := range n.args {
			r = a.Add(r, arg(i), bits.Width(n.aux))
		}
	case opMul:
		r = a.Const(n.val)
		for i := range n.args {
			r = a.Mul(r, arg(i), bits.Width(n.aux))
		}
	case opSub:
		r = a.Sub(arg(0), arg(1), bits.Width(n.aux))
	case opSquare:
		r = a.Square(arg(0))
	case opShl:
		r = a.Shl(arg(0), uint(n.aux))
	case opShr:
		r = a.Shr(arg(0), uint(n.aux))
	case opRotl:
		r = a.Rotl(arg(0), uint(n.aux))
	case opShlVar:
		r = a.ShlVar(arg(0), arg(1), n.aux != 0)
	case opShrVar:
		r = a.ShrVar(arg(0), arg(1), n.aux != 0)
	case opRotlVar:
		r = a.RotlVar(arg(0), arg(1), n.aux != 0)
	case opS8:
		r = a.S8(arg(0), n.aux)
	case opS4:
		r = a.S4(arg(0), n.aux>>3, n.aux&7)
	case opS8to32:
		r = a.S8to32(arg(0), n.aux>>2, n.aux&3)
	case opGF:
		r = a.GF(arg(0), n.aux, unpackGFConsts(n.val))
	case opGFRaw:
		r = a.GFRaw(arg(0), n.aux)
	case opByte:
		r = a.Byte(arg(0), int(n.aux))
	case opPack4:
		r = a.Pack4([4]xid{arg(0), arg(1), arg(2), arg(3)})
	}
	memo[id] = r
	return r
}

// --- rendering ---------------------------------------------------------------

// maxRenderDepth caps expression rendering in reports; beyond it subtrees
// render as an ellipsis with the node count.
const maxRenderDepth = 5

// String renders an expression for mismatch reports, depth-capped.
func (a *Arena) String(id xid) string {
	var sb strings.Builder
	a.render(&sb, id, maxRenderDepth)
	return sb.String()
}

func (a *Arena) render(sb *strings.Builder, id xid, depth int) {
	n := &a.nodes[id]
	if depth <= 0 && len(n.args) > 0 {
		fmt.Fprintf(sb, "…#%d", id)
		return
	}
	list := func(name string, constVal uint32, showConst bool) {
		sb.WriteString(name)
		sb.WriteByte('(')
		first := true
		if showConst {
			fmt.Fprintf(sb, "%#x", constVal)
			first = false
		}
		for _, arg := range n.args {
			if !first {
				sb.WriteString(", ")
			}
			first = false
			a.render(sb, arg, depth-1)
		}
		sb.WriteByte(')')
	}
	switch n.op {
	case opConst:
		fmt.Fprintf(sb, "%#x", n.val)
	case opInput:
		fmt.Fprintf(sb, "in[%d].%d", n.aux>>2, n.aux&3)
	case opXor:
		list("xor", n.val, n.val != 0)
	case opAnd:
		list("and", n.val, n.val != ^uint32(0))
	case opOr:
		list("or", n.val, n.val != 0)
	case opAdd:
		list(fmt.Sprintf("add%d", widthBits(n.aux)), n.val, n.val != 0)
	case opMul:
		list(fmt.Sprintf("mul%d", widthBits(n.aux)), n.val, n.val != mulIdent(bits.Width(n.aux)))
	case opSub:
		list(fmt.Sprintf("sub%d", widthBits(n.aux)), 0, false)
	case opSquare:
		list("sqr32", 0, false)
	case opShl:
		a.renderShift(sb, "shl", n, depth)
	case opShr:
		a.renderShift(sb, "shr", n, depth)
	case opRotl:
		a.renderShift(sb, "rotl", n, depth)
	case opShlVar:
		a.renderVarShift(sb, "shl", n, depth)
	case opShrVar:
		a.renderVarShift(sb, "shr", n, depth)
	case opRotlVar:
		a.renderVarShift(sb, "rotl", n, depth)
	case opS8:
		list(fmt.Sprintf("s8[t%d]", n.aux), 0, false)
	case opS4:
		list(fmt.Sprintf("s4[t%d.p%d]", n.aux>>3, n.aux&7), 0, false)
	case opS8to32:
		list(fmt.Sprintf("s8to32[t%d.b%d]", n.aux>>2, n.aux&3), 0, false)
	case opGF:
		c := unpackGFConsts(n.val)
		mode := "lanes"
		if n.aux == gfMDS {
			mode = "mds"
		}
		list(fmt.Sprintf("gf.%s[%02x,%02x,%02x,%02x]", mode, c[0], c[1], c[2], c[3]), 0, false)
	case opGFRaw:
		list(fmt.Sprintf("gfraw[t%d]", n.aux), 0, false)
	case opByte:
		list(fmt.Sprintf("byte%d", n.aux), 0, false)
	case opPack4:
		list("pack4", 0, false)
	}
}

func (a *Arena) renderShift(sb *strings.Builder, name string, n *node, depth int) {
	sb.WriteString(name)
	sb.WriteByte('(')
	a.render(sb, n.args[0], depth-1)
	fmt.Fprintf(sb, ", %d)", n.aux)
}

func (a *Arena) renderVarShift(sb *strings.Builder, name string, n *node, depth int) {
	sb.WriteString(name)
	sb.WriteString("v(")
	a.render(sb, n.args[0], depth-1)
	sb.WriteString(", ")
	a.render(sb, n.args[1], depth-1)
	if n.aux == 1 {
		sb.WriteString(", neg")
	}
	sb.WriteByte(')')
}

func widthBits(aux uint32) int {
	switch bits.Width(aux) {
	case bits.W8:
		return 8
	case bits.W16:
		return 16
	default:
		return 32
	}
}
