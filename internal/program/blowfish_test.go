package program

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"cobra/internal/cipher"
	"cobra/internal/isa"
)

// blowfishDepths are the unroll depths the iRAM's LUT budget admits.
var blowfishDepths = []int{1, 2}

func TestBlowfishOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewBlowfish(testKey)
	if err != nil {
		t.Fatal(err)
	}
	want := refEncryptECB(t, ref, testPlain) // 8 blocks, one per superblock
	for _, hw := range blowfishDepths {
		p, err := BuildBlowfish(testKey, hw)
		if err != nil {
			t.Fatalf("blowfish-%d: %v", hw, err)
		}
		got, stats := cobraEncryptECB(t, p, be64Pack(testPlain))
		if !bytes.Equal(be64Unpack(got), want) {
			t.Errorf("blowfish-%d: ciphertext mismatch\n got %x\nwant %x", hw, be64Unpack(got), want)
		}
		perBlock := float64(stats.Cycles) / float64(len(testPlain)/8)
		t.Logf("blowfish-%d: %.1f cycles per 64-bit block (%d cycles)", hw, perBlock, stats.Cycles)
	}
}

func TestBlowfishDecryptOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewBlowfish(testKey)
	if err != nil {
		t.Fatal(err)
	}
	ct := refEncryptECB(t, ref, testPlain)
	for _, hw := range blowfishDepths {
		p, err := BuildBlowfishDecrypt(testKey, hw)
		if err != nil {
			t.Fatalf("blowfish-dec-%d: %v", hw, err)
		}
		got, _ := cobraEncryptECB(t, p, be64Pack(ct))
		if !bytes.Equal(be64Unpack(got), testPlain) {
			t.Errorf("blowfish-dec-%d: plaintext mismatch\n got %x\nwant %x", hw, be64Unpack(got), testPlain)
		}
	}
}

func TestBlowfishOnCOBRARandomized(t *testing.T) {
	f := func(key [16]byte, blk [8]byte) bool {
		ref, err := cipher.NewBlowfish(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 8)
		ref.Encrypt(want, blk[:])
		p, err := BuildBlowfish(key[:], 1)
		if err != nil {
			return false
		}
		m, err := NewMachine(p)
		if err != nil {
			return false
		}
		if err := Load(m, p); err != nil {
			return false
		}
		got, _, err := EncryptBytes(m, p, be64Pack(blk[:]))
		return err == nil && bytes.Equal(be64Unpack(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBlowfishUnrollRejectsBadDepth(t *testing.T) {
	if _, err := BuildBlowfish(testKey, 3); err == nil {
		t.Error("expected error: 3 does not divide 16")
	}
	if _, err := BuildBlowfish(testKey, 4); err == nil {
		t.Error("expected error: depth 4 exceeds the LUT budget")
	}
	if _, err := BuildBlowfishDecrypt(testKey, 0); err == nil {
		t.Error("expected error for depth 0")
	}
	if _, err := BuildBlowfish(nil, 1); err == nil {
		t.Error("expected key size error")
	}
}

// TestBlowfishIRAMBudgetError pins the typed refusal: depths past the LUT
// budget return *ErrIRAMBudget with the word arithmetic, the boundary
// depth builds, and a depth that fails unroll validation (3 does not
// divide 16) is NOT a budget error — validation runs first.
func TestBlowfishIRAMBudgetError(t *testing.T) {
	for _, hw := range []int{4, 8, 16} {
		_, err := BuildBlowfish(testKey, hw)
		var budget *ErrIRAMBudget
		if !errors.As(err, &budget) {
			t.Fatalf("depth %d: err = %v, want *ErrIRAMBudget", hw, err)
		}
		if want := hw * 4 * 4 * 64; budget.Needed != want {
			t.Errorf("depth %d: Needed = %d, want %d", hw, budget.Needed, want)
		}
		if budget.Available != isa.IRAMWords {
			t.Errorf("depth %d: Available = %d, want %d", hw, budget.Available, isa.IRAMWords)
		}
		if want := fmt.Sprintf("blowfish-%d", hw); budget.Name != want {
			t.Errorf("depth %d: Name = %q, want %q", hw, budget.Name, want)
		}
		if !strings.Contains(budget.Error(), "iRAM") {
			t.Errorf("depth %d: Error() = %q", hw, budget.Error())
		}
		var decBudget *ErrIRAMBudget
		if _, err := BuildBlowfishDecrypt(testKey, hw); !errors.As(err, &decBudget) {
			t.Errorf("decrypt depth %d: err = %v, want *ErrIRAMBudget", hw, err)
		}
	}
	// Boundary: depth 2 is the deepest configuration that fits.
	if _, err := BuildBlowfish(testKey, 2); err != nil {
		t.Errorf("depth 2 should build: %v", err)
	}
	// Depth 3 fails unroll validation before the budget check ever runs.
	_, err := BuildBlowfish(testKey, 3)
	var budget *ErrIRAMBudget
	if err == nil || errors.As(err, &budget) {
		t.Errorf("depth 3: err = %v, want a non-budget validation error", err)
	}
}
