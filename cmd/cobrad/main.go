// Command cobrad is the COBRA cipher daemon: it serves the simulated
// reconfigurable cryptographic hardware (internal/core) to network
// clients over the length-prefixed binary protocol in internal/serve.
// Each connection is a tenant session pinning one (algorithm, key,
// unroll) configuration; a capacity-bounded LRU of configured backends
// shares compiled fastpath traces between sessions, admission control
// sheds BUSY instead of queueing unboundedly, and SIGTERM drains
// gracefully: in-flight requests finish, sessions are told DRAINING,
// and the process exits 0.
//
// Usage:
//
//	cobrad                                     # device backend on 127.0.0.1:7316
//	cobrad -backend farm -workers 4            # shared 4-device pool, program-aware scheduling
//	cobrad -addr :7316 -metrics 127.0.0.1:9090 # plus live /metrics
//	cobra-cli -addr 127.0.0.1:7316 encrypt ... # talk to it
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cobra/internal/obs"
	"cobra/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7316", "listen address (port 0 picks one)")
	backend := flag.String("backend", "device", "backend per configuration: device or farm")
	workers := flag.Int("workers", 4, "shared worker-pool width (farm backend only)")
	minWorkers := flag.Int("min-workers", 0, "idle-quiesce floor for the pool (farm backend only; 0: default)")
	schedPolicy := flag.String("sched", "affinity", "pool scheduling policy: affinity or roundrobin (farm backend only)")
	cache := flag.Int("cache", 8, "max configured backends kept in the LRU")
	maxInflight := flag.Int("max-inflight", 0, "concurrent requests per backend (0: 1 for device, workers for farm)")
	maxWaiters := flag.Int("max-waiters", 0, "requests queued per backend before BUSY (0: 2x max-inflight)")
	maxFrame := flag.Uint("max-frame", uint(serve.DefaultMaxFrame), "max frame payload bytes")
	interp := flag.Bool("interp", false, "force the cycle-accurate interpreter (no fastpath)")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/vars on this address (e.g. 127.0.0.1:9090)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight sessions on SIGTERM before force-close")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}

	var metricsSrv *obs.Server
	opts := serve.Options{
		Backend:     *backend,
		Workers:     *workers,
		MinWorkers:  *minWorkers,
		SchedPolicy: *schedPolicy,
		MaxBackends: *cache,
		MaxInflight: *maxInflight,
		MaxWaiters:  *maxWaiters,
		MaxFrame:    uint32(*maxFrame),
		Interpreter: *interp,
		Logf:        logf,
	}
	if *metricsAddr != "" {
		opts.Metrics = obs.Default
		srv, err := obs.Serve(*metricsAddr, obs.Default)
		if err != nil {
			fatal(err)
		}
		metricsSrv = srv
		// Parsed by the CI smoke test; keep the prefix stable.
		fmt.Printf("metrics: serving on %s\n", srv.URL)
	}

	s, err := serve.NewServer(opts)
	if err != nil {
		fatal(err)
	}
	if err := s.Start(*addr); err != nil {
		fatal(err)
	}
	// Parsed by the CI smoke test and by scripts that use port 0; keep
	// the prefix stable.
	fmt.Printf("cobrad: listening on %s (backend=%s)\n", s.Addr(), *backend)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("cobrad: %v, draining (timeout %s)\n", got, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		// Sessions were force-closed at the deadline: report it, but a
		// bounded drain is still an orderly exit.
		fmt.Printf("cobrad: drain incomplete: %v\n", err)
	}
	if metricsSrv != nil {
		// The metrics endpoint gets its own small budget so a drain that
		// spent the whole timeout doesn't tear down a scrape mid-response.
		mctx, mcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer mcancel()
		if err := metricsSrv.Shutdown(mctx); err != nil {
			fmt.Printf("cobrad: metrics drain incomplete: %v\n", err)
		}
	}
	// Parsed by the CI smoke test; keep the prefix stable.
	fmt.Println("cobrad: drained")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobrad:", err)
	os.Exit(1)
}
