// Command cobra-cli is the client for cobrad, the network-facing COBRA
// cipher daemon: it opens one tenant session, pins a cipher
// configuration, runs one operation, and prints the result.
//
// Usage:
//
//	cobra-cli [flags] encrypt|decrypt|stats
//
//	cobra-cli -alg rijndael -key 000102030405060708090a0b0c0d0e0f \
//	          -mode ctr -iv 000...0 -data 68656c6c6f... encrypt
//	echo -n 'sixteen byte msg' | cobra-cli -alg rc6 -key 00..0 -mode ecb encrypt
//	cobra-cli -tenant alice -alg serpent -key 00..0 stats
//
// encrypt/decrypt print the result as lowercase hex on stdout; stats
// prints the server's per-tenant counters and backend summary as JSON.
// A BUSY shed from the daemon's admission control is retried with
// backoff (-retries bounds it).
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cobra/internal/serve"
	"cobra/internal/serve/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7316", "cobrad address")
	tenant := flag.String("tenant", "default", "tenant label (groups the daemon's per-tenant metrics)")
	alg := flag.String("alg", "rijndael", "algorithm: rc6, rijndael, serpent")
	keyHex := flag.String("key", strings.Repeat("00", 16), "key (hex)")
	unroll := flag.Int("unroll", 0, "unroll depth (0: full unroll)")
	mode := flag.String("mode", "ctr", "mode of operation: ecb, cbc, ctr")
	ivHex := flag.String("iv", strings.Repeat("00", 16), "IV / initial counter block (hex; ignored for ecb)")
	dataHex := flag.String("data", "", "payload (hex; empty: read raw bytes from stdin)")
	retries := flag.Int("retries", 10, "max retries when the daemon sheds BUSY")
	flag.Parse()

	if flag.NArg() != 1 {
		fatal(fmt.Errorf("want exactly one operation: encrypt, decrypt or stats"))
	}
	op := flag.Arg(0)

	key, err := hex.DecodeString(*keyHex)
	if err != nil {
		fatal(fmt.Errorf("bad -key: %v", err))
	}
	m, err := serve.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	var iv []byte
	if m != serve.ModeECB {
		if iv, err = hex.DecodeString(*ivHex); err != nil {
			fatal(fmt.Errorf("bad -iv: %v", err))
		}
	}

	c, err := client.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	if _, err := c.Configure(client.Config{Tenant: *tenant, Alg: *alg, Key: key, Unroll: *unroll}); err != nil {
		fatal(err)
	}

	switch op {
	case "encrypt", "decrypt":
		var data []byte
		if *dataHex != "" {
			if data, err = hex.DecodeString(*dataHex); err != nil {
				fatal(fmt.Errorf("bad -data: %v", err))
			}
		} else if data, err = io.ReadAll(os.Stdin); err != nil {
			fatal(err)
		}
		var out []byte
		for attempt := 0; ; attempt++ {
			if op == "encrypt" {
				out, err = c.Encrypt(m, iv, data)
			} else {
				out, err = c.Decrypt(m, iv, data)
			}
			if serve.IsBusy(err) && attempt < *retries {
				time.Sleep(time.Duration(10*(attempt+1)) * time.Millisecond)
				continue
			}
			break
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(hex.EncodeToString(out))
	case "stats":
		st, err := c.Stats()
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown operation %q (want encrypt, decrypt or stats)", op))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobra-cli:", err)
	os.Exit(1)
}
