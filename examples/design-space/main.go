// design-space sweeps the unroll-depth design space of §4: for every
// Table 3 configuration it measures cycles per block on the simulator,
// derives the clock from the timing model and the gate count from the area
// model, and prints the resulting throughput and cycle-gates product — the
// data behind Tables 3 and 6 and the paper's loop-unrolling discussion
// ("intermediate degrees of unrolling do not always result in an improved
// CG product").
package main

import (
	"fmt"
	"log"

	"cobra/internal/bench"
)

func main() {
	key := make([]byte, 16)
	const batch = 64

	ms, err := bench.MeasureAll(key, batch)
	if err != nil {
		log.Fatal(err)
	}
	rows := bench.Table6Rows(ms)

	fmt.Printf("COBRA design-space sweep (batch of %d blocks per point)\n\n", batch)
	fmt.Printf("%-9s %5s %6s %10s %9s %12s %14s %9s\n",
		"alg", "rnds", "rows", "cyc/blk", "MHz", "Mbps", "gates", "normCG")
	lastAlg := ""
	for i, m := range ms {
		if m.Alg != lastAlg && lastAlg != "" {
			fmt.Println()
		}
		lastAlg = m.Alg
		fmt.Printf("%-9s %5d %6d %10.2f %9.3f %12.2f %14d %9.3f\n",
			m.Alg, m.Rounds, m.Rows, m.CyclesPerBlock, m.FreqMHz, m.Mbps,
			rows[i].Gates, rows[i].Normalized)
	}

	fmt.Println("\nobservations (cf. §4.2):")
	bestRounds := map[string]int{}
	bestNorm := map[string]float64{}
	for _, r := range rows {
		if n, ok := bestNorm[r.Cipher]; !ok || r.Normalized < n {
			bestNorm[r.Cipher] = r.Normalized
			bestRounds[r.Cipher] = r.Rounds
		}
	}
	for _, alg := range []string{"rc6", "rijndael", "serpent"} {
		fmt.Printf("  %-9s best CG product at %d rounds unrolled\n", alg, bestRounds[alg])
	}
}
