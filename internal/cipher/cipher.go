// Package cipher contains from-scratch reference implementations of block
// ciphers studied in the COBRA paper. They serve three roles in the
// reproduction:
//
//  1. Validation oracles: every cipher mapped onto the simulated COBRA
//     datapath is checked bit-for-bit against the corresponding reference
//     here (and the references themselves against published test vectors).
//  2. The software baseline of §1–2: the paper motivates reconfigurable
//     hardware by the gap to general-purpose-processor implementations;
//     BenchmarkSoftwareBaseline* measures these implementations.
//  3. Substantiation of the §3 block-cipher analysis (Table 2): package
//     census cross-references the atomic operations these implementations
//     actually perform.
//
// The Block interface matches crypto/cipher.Block so the implementations
// compose with standard modes.
package cipher

import "fmt"

// Block is a block cipher with fixed-size blocks, the same contract as
// crypto/cipher.Block: Encrypt and Decrypt operate on exactly one block and
// src/dst may overlap completely.
type Block interface {
	BlockSize() int
	Encrypt(dst, src []byte)
	Decrypt(dst, src []byte)
}

// KeySizeError reports an unsupported key length.
type KeySizeError struct {
	Cipher string
	Size   int
}

// Error satisfies the error interface.
func (e KeySizeError) Error() string {
	return fmt.Sprintf("cipher/%s: invalid key size %d", e.Cipher, e.Size)
}
