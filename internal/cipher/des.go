package cipher

// DES (FIPS 46-3). The paper discusses DES at length: its initial and final
// permutations are bit-wise reorderings that COBRA's coarse-grained
// datapath deliberately does not support (§4), which is why DES was
// considered and rejected for mapping. The reference implementation is
// kept here for the census, the software baseline, and to let tests
// demonstrate exactly which DES operations fall outside the COBRA
// operation set.

// DES permutation and selection tables, 1-indexed bit positions as in the
// standard.
var (
	desIP = [64]uint8{
		58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
		62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
		57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
		61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
	}
	desFP = [64]uint8{
		40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
		38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
		36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
		34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
	}
	desE = [48]uint8{
		32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9,
		8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
		16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
		24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
	}
	desP = [32]uint8{
		16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
		2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
	}
	desPC1 = [56]uint8{
		57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
		10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
		63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
		14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
	}
	desPC2 = [48]uint8{
		14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
		23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
		41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
		44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
	}
	desShifts = [16]uint8{1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1}

	// desSBoxes[i][row][col], standard tables.
	desSBoxes = [8][4][16]uint8{
		{
			{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7},
			{0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8},
			{4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0},
			{15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13},
		},
		{
			{15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10},
			{3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5},
			{0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15},
			{13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9},
		},
		{
			{10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8},
			{13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1},
			{13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7},
			{1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12},
		},
		{
			{7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15},
			{13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9},
			{10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4},
			{3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14},
		},
		{
			{2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9},
			{14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6},
			{4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14},
			{11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3},
		},
		{
			{12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11},
			{10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8},
			{9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6},
			{4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13},
		},
		{
			{4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1},
			{13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6},
			{1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2},
			{6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12},
		},
		{
			{13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7},
			{1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2},
			{7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8},
			{2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11},
		},
	}
)

// DES implements the Data Encryption Standard.
type DES struct {
	subkeys [16]uint64 // 48-bit round keys, right-aligned
}

// NewDES derives the key schedule from an 8-byte key (parity ignored).
func NewDES(key []byte) (*DES, error) {
	if len(key) != 8 {
		return nil, KeySizeError{"des", len(key)}
	}
	k := load64BE(key)
	// PC-1: 64 -> 56 bits.
	var cd uint64
	for _, src := range desPC1 {
		cd = cd<<1 | bit64(k, src)
	}
	c := uint32(cd >> 28 & 0x0fffffff)
	d := uint32(cd & 0x0fffffff)
	var sk [16]uint64
	for r := 0; r < 16; r++ {
		s := uint(desShifts[r])
		c = (c<<s | c>>(28-s)) & 0x0fffffff
		d = (d<<s | d>>(28-s)) & 0x0fffffff
		merged := uint64(c)<<28 | uint64(d)
		var out uint64
		for _, src := range desPC2 {
			out = out<<1 | (merged >> (56 - uint(src)) & 1)
		}
		sk[r] = out
	}
	return &DES{subkeys: sk}, nil
}

// bit64 extracts bit pos (1 = most significant) of a 64-bit word.
func bit64(x uint64, pos uint8) uint64 { return x >> (64 - uint(pos)) & 1 }

func load64BE(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func store64BE(b []byte, x uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (56 - 8*uint(i)))
	}
}

// desF is the Feistel function: expand, key mix, S-boxes, permute.
func desF(r uint32, k uint64) uint32 {
	var e uint64
	for _, src := range desE {
		e = e<<1 | uint64(r>>(32-uint(src))&1)
	}
	e ^= k
	var s uint32
	for i := 0; i < 8; i++ {
		six := uint8(e >> (42 - 6*uint(i)) & 0x3f)
		row := six>>4&2 | six&1
		col := six >> 1 & 0xf
		s = s<<4 | uint32(desSBoxes[i][row][col])
	}
	var p uint32
	for _, src := range desP {
		p = p<<1 | s>>(32-uint(src))&1
	}
	return p
}

// BlockSize returns 8.
func (c *DES) BlockSize() int { return 8 }

func (c *DES) crypt(dst, src []byte, decrypt bool) {
	t := DESInitialPermutation(load64BE(src))
	l := uint32(t >> 32)
	r := uint32(t)
	for i := 0; i < 16; i++ {
		k := c.subkeys[i]
		if decrypt {
			k = c.subkeys[15-i]
		}
		l, r = r, l^desF(r, k)
	}
	// Swap halves (the final round omits the swap) and apply FP.
	store64BE(dst, DESFinalPermutation(uint64(r)<<32|uint64(l)))
}

// Encrypt encrypts one 8-byte block.
func (c *DES) Encrypt(dst, src []byte) { c.crypt(dst, src, false) }

// Decrypt decrypts one 8-byte block.
func (c *DES) Decrypt(dst, src []byte) { c.crypt(dst, src, true) }

// --- COBRA mapping support ----------------------------------------------------
//
// The §4 objection to DES is the bit-level IP/FP permutations, not the
// round function: expansion E reads six consecutive R bits per S-box group
// (a rotation window), the key mix is a XOR, the S-boxes fold into 8→32
// lookup tables with P pre-applied (P is linear over GF(2)), and the round
// mix is a word-wide XOR. The exports below slice the reference
// implementation along exactly that line: the COBRA program computes the
// 16 Feistel rounds on IP-domain words while the host applies the rejected
// bit permutations at the block boundary.

// RoundKeys48 returns the 16 48-bit round keys, right-aligned.
func (c *DES) RoundKeys48() [16]uint64 { return c.subkeys }

// DESKeyChunk extracts S-box group i's 6-bit chunk of a 48-bit round key.
func DESKeyChunk(k uint64, i int) uint32 {
	return uint32(k >> (42 - 6*uint(i)) & 0x3f)
}

// DESSPTables builds the eight combined S-box+P 8→32 tables: entry b of
// table i is P applied to S_i(b & 0x3f) in its output nibble position. The
// two high index bits are ignored, so a mapping may index with an unmasked
// rotated-R byte. The identity (pinned by a package test):
//
//	desF(r, k) == XOR_i sp[i][(RotL(r, 4i+5) ^ DESKeyChunk(k, i)) & 0xff]
func DESSPTables() [8][256]uint32 {
	var sp [8][256]uint32
	for i := 0; i < 8; i++ {
		for b := 0; b < 256; b++ {
			six := uint8(b) & 0x3f
			row := six>>4&2 | six&1
			col := six >> 1 & 0xf
			sval := uint32(desSBoxes[i][row][col]) << (28 - 4*uint(i))
			var p uint32
			for _, src := range desP {
				p = p<<1 | sval>>(32-uint(src))&1
			}
			sp[i][b] = p
		}
	}
	return sp
}

// DESInitialPermutation applies IP to a 64-bit block.
func DESInitialPermutation(x uint64) uint64 {
	var t uint64
	for _, p := range desIP {
		t = t<<1 | bit64(x, p)
	}
	return t
}

// DESFinalPermutation applies FP = IP⁻¹ to a 64-bit block.
func DESFinalPermutation(x uint64) uint64 {
	var t uint64
	for _, p := range desFP {
		t = t<<1 | bit64(x, p)
	}
	return t
}

// DESLoad64 and DESStore64 expose the big-endian block packing so program
// tests marshal host blocks into the IP-domain word pair without
// re-implementing it.
func DESLoad64(b []byte) uint64     { return load64BE(b) }
func DESStore64(b []byte, x uint64) { store64BE(b, x) }
