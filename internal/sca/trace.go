package sca

import (
	"cobra/internal/datapath"
	"cobra/internal/fastpath"
	"cobra/internal/isa"
)

// tracePassCap bounds the period fixpoint iteration. The taint state is
// finite (two bits per register word plus feedback), so the walk always
// closes; the cap turns a would-be bug into an incomplete profile instead
// of a stall.
const tracePassCap = 4096

// AnalyzeTrace builds the side-channel profile of a compiled fastpath
// trace by abstract interpretation of the op-list IR over the same
// {key, plaintext} lattice the microcode walk uses: external input words
// are plaintext, resolved eRAM playback words and immediates folded from
// eRAM reads (TraceStep.ImmER) are key material, whitening stages join key
// taint, and every table-read step (S8/S4/S8to32 lanes, folded GF
// contribution tables) records the taint of its index value.
//
// The walker mirrors Exec.runSeg step for step — same input selection,
// shuffle, insel, register swap, and emit points — so a profile mismatch
// against the microcode means the compiled ops and the microcode disagree
// about where secrets reach memory addresses, which is exactly what
// Compare reports.
func AnalyzeTrace(tr *fastpath.Trace) *Profile {
	p := &Profile{Name: tr.Name, Source: "fastpath", Elided: tr.Elided}
	acc := make(map[[3]int]*Access)

	// Registers after the load phase hold key-schedule material.
	reg := make([][datapath.Cols]Taint, tr.Rows)
	for r := range tr.InitReg {
		if r >= len(reg) {
			break
		}
		for c := 0; c < datapath.Cols; c++ {
			reg[r][c] = Taint{Key: true}
		}
	}
	var fb [datapath.Cols]Taint

	w := &traceWalker{p: p, acc: acc, reg: reg}
	w.fb = fb

	tick := 0
	for i := range tr.Head {
		w.tick(&tr.Head[i], tick)
		tick++
	}

	if len(tr.Period) == 0 {
		p.Complete = true
	} else {
		seen := map[string]bool{w.fingerprint(): true}
		for pass := 0; pass < tracePassCap; pass++ {
			for i := range tr.Period {
				w.tick(&tr.Period[i], tick)
				tick++
			}
			fp := w.fingerprint()
			if seen[fp] {
				p.Complete = true
				break
			}
			seen[fp] = true
		}
	}

	p.Accesses = sortedAccesses(acc)
	return p
}

type traceWalker struct {
	p   *Profile
	acc map[[3]int]*Access
	reg [][datapath.Cols]Taint
	fb  [datapath.Cols]Taint
}

// fingerprint serializes the inter-cycle taint state (registers plus
// feedback) for the period fixpoint.
func (w *traceWalker) fingerprint() string {
	buf := make([]byte, 0, (len(w.reg)+1)*datapath.Cols)
	enc := func(t Taint) byte {
		var b byte
		if t.Key {
			b |= 1
		}
		if t.Plain {
			b |= 2
		}
		return b
	}
	for r := range w.reg {
		for c := 0; c < datapath.Cols; c++ {
			buf = append(buf, enc(w.reg[r][c]))
		}
	}
	for c := 0; c < datapath.Cols; c++ {
		buf = append(buf, enc(w.fb[c]))
	}
	return string(buf)
}

func (w *traceWalker) access(row, col int, elem isa.Elem, tick int, taint Taint) {
	k := accessKey(row, col, elem)
	a := w.acc[k]
	if a == nil {
		a = &Access{Row: row, Col: col, Elem: elem, FirstTick: tick, CfgAddr: -1}
		w.acc[k] = a
	}
	a.Taint = a.Taint.Or(taint)
	a.Count++
}

// tick interprets one compiled cycle (mirrors Exec.runSeg).
func (w *traceWalker) tick(ct *fastpath.TraceTick, tick int) {
	if !ct.Enabled {
		return
	}
	var vec [datapath.Cols]Taint
	switch ct.InMode {
	case isa.InExternal:
		for c := range vec {
			vec[c] = Taint{Plain: true}
		}
	case isa.InFeedback:
		vec = w.fb
	default: // InERAM: resolved playback words are key-schedule material
		for c := range vec {
			vec[c] = Taint{Key: true}
		}
	}
	for c := 0; c < datapath.Cols; c++ {
		if ct.WhiteIn[c].Mode != isa.WhiteOff {
			vec[c].Key = true
		}
	}

	prev := vec
	for r := range ct.Rows {
		row := &ct.Rows[r]
		if row.Shuffle != nil {
			vec = shuffleTaint(vec, row.Shuffle)
		}
		rowIn := vec
		var out [datapath.Cols]Taint
		for c := 0; c < datapath.Cols; c++ {
			cell := &row.Cells[c]
			if cell.Passthrough {
				out[c] = vec[c]
				continue
			}
			if cell.RegOnly {
				out[c] = w.reg[r][c]
				continue
			}
			var x Taint
			if cell.Insel < 4 {
				x = vec[cell.Insel]
			} else {
				x = prev[cell.Insel-4]
			}
			x = w.evalSteps(cell.Steps, x, &vec, r, c, tick)
			if cell.Reg {
				out[c] = w.reg[r][c]
				w.reg[r][c] = x
			} else {
				out[c] = x
			}
		}
		vec = out
		prev = rowIn
	}

	for c := 0; c < datapath.Cols; c++ {
		if ct.WhiteOut[c].Mode != isa.WhiteOff {
			vec[c].Key = true
		}
	}
	w.fb = vec
	if ct.Emit {
		w.p.Outputs++
		for c := 0; c < datapath.Cols; c++ {
			w.p.OutTaint[c] = w.p.OutTaint[c].Or(vec[c])
		}
	}
}

// evalSteps folds one compiled element chain over the taint lattice,
// recording table-read index taints as it goes.
func (w *traceWalker) evalSteps(steps []fastpath.TraceStep, x Taint, vec *[datapath.Cols]Taint, row, col, tick int) Taint {
	for i := range steps {
		st := &steps[i]
		switch st.Kind {
		case fastpath.StepS8, fastpath.StepS4, fastpath.StepS8to32:
			w.access(row, col, isa.ElemC, tick, x)
		case fastpath.StepGFTab:
			w.access(row, col, isa.ElemF, tick, x)
		case fastpath.StepXorBlk, fastpath.StepAndBlk, fastpath.StepOrBlk,
			fastpath.StepAddBlk, fastpath.StepSubBlk, fastpath.StepMulBlk,
			fastpath.StepShlVar, fastpath.StepShrVar, fastpath.StepRotlVar:
			x = x.Or(vec[st.Src])
		}
		if st.ImmER {
			x.Key = true
		}
	}
	return x
}

// shuffleTaint propagates taint through a byte shuffler: each destination
// word joins the taints of the source words its four bytes come from.
func shuffleTaint(v [datapath.Cols]Taint, perm *[16]uint8) [datapath.Cols]Taint {
	var out [datapath.Cols]Taint
	for dst := 0; dst < 16; dst++ {
		out[dst>>2] = out[dst>>2].Or(v[perm[dst]>>2])
	}
	return out
}
