package cipher

import "cobra/internal/bits"

// SIMON 64/128: a post-2003 lightweight block cipher (Beaulieu et al.,
// 2013) mapped onto COBRA as a stress test of the paper's algorithm-agility
// claim — its round function is pure rotate/AND/XOR, an operation profile
// even leaner than the Table 2 set the architecture was sized for.

// SIMON64Rounds is the round count of SIMON 64/128.
const SIMON64Rounds = 44

// simonZ3 is the specification's z3 constant sequence (period 62), consumed
// one bit per scheduled key word.
const simonZ3 = "11011011101011000110010111100000010010001010011100110100001111"

// SIMON64 implements SIMON 64/128: 32-bit words, 128-bit key, 44 rounds.
type SIMON64 struct {
	k [SIMON64Rounds]uint32
}

// NewSIMON64 derives the 44-round schedule from a 16-byte key. Key words
// k0..k3 sit little-endian at key[0:4]..key[12:16] with k0 the first round
// key (the specification's (k3,k2,k1,k0) tuple read right to left), and a
// block places the x word little-endian at b[0:4] and y at b[4:8] — the
// convention under which the published 64/128 test vector reproduces
// byte-for-byte (see the package tests).
func NewSIMON64(key []byte) (*SIMON64, error) {
	if len(key) != 16 {
		return nil, KeySizeError{"simon64", len(key)}
	}
	var c SIMON64
	for i := 0; i < 4; i++ {
		c.k[i] = bits.Load32LE(key[4*i:])
	}
	// k[i] = c ^ z3[i-4] ^ k[i-4] ^ (I ^ S^-1)(S^-3 k[i-1] ^ k[i-3]) with
	// c = 2^32 - 4, i.e. ~k[i-4] ^ 3 folded with the sequence bit.
	for i := 4; i < SIMON64Rounds; i++ {
		tmp := bits.RotR(c.k[i-1], 3) ^ c.k[i-3]
		tmp ^= bits.RotR(tmp, 1)
		c.k[i] = ^c.k[i-4] ^ tmp ^ uint32(simonZ3[(i-4)%62]-'0') ^ 3
	}
	return &c, nil
}

// BlockSize returns 8.
func (c *SIMON64) BlockSize() int { return 8 }

// RoundKeys exposes the key schedule; the COBRA program builder loads these
// words into the eRAMs.
func (c *SIMON64) RoundKeys() []uint32 {
	out := make([]uint32, SIMON64Rounds)
	copy(out, c.k[:])
	return out
}

// simonF is the round function f(x) = (x<<<1 & x<<<8) ^ x<<<2.
func simonF(x uint32) uint32 {
	return (bits.RotL(x, 1) & bits.RotL(x, 8)) ^ bits.RotL(x, 2)
}

// Encrypt encrypts one 8-byte block.
func (c *SIMON64) Encrypt(dst, src []byte) {
	x, y := bits.Load32LE(src[0:]), bits.Load32LE(src[4:])
	for i := 0; i < SIMON64Rounds; i++ {
		x, y = y^simonF(x)^c.k[i], x
	}
	bits.Store32LE(dst[0:], x)
	bits.Store32LE(dst[4:], y)
}

// Decrypt decrypts one 8-byte block.
func (c *SIMON64) Decrypt(dst, src []byte) {
	x, y := bits.Load32LE(src[0:]), bits.Load32LE(src[4:])
	for i := SIMON64Rounds - 1; i >= 0; i-- {
		x, y = y, x^simonF(y)^c.k[i]
	}
	bits.Store32LE(dst[0:], x)
	bits.Store32LE(dst[4:], y)
}
