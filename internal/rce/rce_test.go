package rce

import (
	"strings"
	"testing"
	"testing/quick"

	"cobra/internal/bits"
	"cobra/internal/isa"
)

func TestIdentityConfigPassesPrimaryInput(t *testing.T) {
	f := func(a, b, c, d, er uint32) bool {
		r := New(false)
		in := Inputs{INA: a, INB: b, INC: c, IND: d, INER: er}
		return r.Eval(in) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInselSelectsBlocks(t *testing.T) {
	in := Inputs{INA: 10, INB: 20, INC: 30, IND: 40}
	want := []uint32{10, 20, 30, 40}
	for s := uint8(0); s < 4; s++ {
		r := New(false)
		if err := r.ApplyElem(isa.ElemInsel, isa.InselCfg{Source: s}.Encode()); err != nil {
			t.Fatal(err)
		}
		if got := r.Eval(in); got != want[s] {
			t.Errorf("INSEL=%d: got %d, want %d", s, got, want[s])
		}
	}
}

func TestInputsSelect(t *testing.T) {
	in := Inputs{INA: 1, INB: 2, INC: 3, IND: 4, INER: 5}
	cases := []struct {
		src  isa.Src
		want uint32
	}{
		{isa.SrcINA, 1}, {isa.SrcINB, 2}, {isa.SrcINC, 3},
		{isa.SrcIND, 4}, {isa.SrcINER, 5}, {isa.SrcImm, 99},
	}
	for _, c := range cases {
		if got := in.Select(c.src, 99); got != c.want {
			t.Errorf("Select(%v) = %d, want %d", c.src, got, c.want)
		}
	}
	if got := in.Select(isa.Src(7), 99); got != 0 {
		t.Errorf("Select(invalid) = %d, want 0", got)
	}
}

func applyElem(t *testing.T, r *RCE, e isa.Elem, data uint64) {
	t.Helper()
	if err := r.ApplyElem(e, data); err != nil {
		t.Fatal(err)
	}
}

func TestEElementModes(t *testing.T) {
	in := Inputs{INA: 0x80000001, INB: 3}
	cases := []struct {
		cfg  isa.ECfg
		want uint32
	}{
		{isa.ECfg{Mode: isa.EShl, AmtSrc: isa.SrcImm, Amt: 4}, 0x00000010},
		{isa.ECfg{Mode: isa.EShr, AmtSrc: isa.SrcImm, Amt: 4}, 0x08000000},
		{isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcImm, Amt: 1}, 0x00000003},
		{isa.ECfg{Mode: isa.EBypass}, 0x80000001},
		// Data-dependent amount: low 5 bits of INB = 3.
		{isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcINB}, bits.RotL(0x80000001, 3)},
	}
	for _, c := range cases {
		r := New(false)
		applyElem(t, r, isa.ElemE1, c.cfg.Encode())
		if got := r.Eval(in); got != c.want {
			t.Errorf("E %+v: got %#x, want %#x", c.cfg, got, c.want)
		}
	}
}

func TestEElementAllThreeInstances(t *testing.T) {
	// E1, E2 and E3 each rotate by 1; composition must rotate by 3.
	r := New(false)
	cfg := isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcImm, Amt: 1}.Encode()
	applyElem(t, r, isa.ElemE1, cfg)
	applyElem(t, r, isa.ElemE2, cfg)
	applyElem(t, r, isa.ElemE3, cfg)
	f := func(x uint32) bool {
		return r.Eval(Inputs{INA: x}) == bits.RotL(x, 3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAElementOps(t *testing.T) {
	in := Inputs{INA: 0xf0f0f0f0, INB: 0x0ff00ff0}
	cases := []struct {
		op   isa.AOp
		want uint32
	}{
		{isa.AXor, 0xf0f0f0f0 ^ 0x0ff00ff0},
		{isa.AAnd, 0xf0f0f0f0 & 0x0ff00ff0},
		{isa.AOr, 0xf0f0f0f0 | 0x0ff00ff0},
		{isa.ABypass, 0xf0f0f0f0},
	}
	for _, c := range cases {
		r := New(false)
		applyElem(t, r, isa.ElemA1, isa.ACfg{Op: c.op, Operand: isa.SrcINB}.Encode())
		if got := r.Eval(in); got != c.want {
			t.Errorf("A %v: got %#x, want %#x", c.op, got, c.want)
		}
	}
}

func TestAElementImmediate(t *testing.T) {
	r := New(false)
	applyElem(t, r, isa.ElemA1, isa.ACfg{Op: isa.AXor, Operand: isa.SrcImm, Imm: 0xdeadbeef}.Encode())
	if got := r.Eval(Inputs{INA: 0}); got != 0xdeadbeef {
		t.Errorf("A imm: got %#x", got)
	}
}

func TestAElementPreShift(t *testing.T) {
	// x ^ (op << 3), the Serpent linear-transform primitive.
	r := New(false)
	applyElem(t, r, isa.ElemA2, isa.ACfg{Op: isa.AXor, Operand: isa.SrcINB, PreShift: 3}.Encode())
	f := func(x, y uint32) bool {
		return r.Eval(Inputs{INA: x, INB: y}) == x^(y<<3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Rotate variant.
	applyElem(t, r, isa.ElemA2, isa.ACfg{Op: isa.AXor, Operand: isa.SrcINB, PreShift: 7, PreShiftRot: true}.Encode())
	g := func(x, y uint32) bool {
		return r.Eval(Inputs{INA: x, INB: y}) == x^bits.RotL(y, 7)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestBElementWidths(t *testing.T) {
	r := New(false)
	applyElem(t, r, isa.ElemB, isa.BCfg{Mode: isa.BAdd, Width: 2, Operand: isa.SrcINB}.Encode())
	if got := r.Eval(Inputs{INA: 0xffffffff, INB: 2}); got != 1 {
		t.Errorf("B add32: got %#x, want 1", got)
	}
	applyElem(t, r, isa.ElemB, isa.BCfg{Mode: isa.BAdd, Width: 0, Operand: isa.SrcINB}.Encode())
	if got := r.Eval(Inputs{INA: 0x00ff00ff, INB: 0x00010001}); got != 0 {
		t.Errorf("B add8 lanes: got %#x, want 0", got)
	}
	applyElem(t, r, isa.ElemB, isa.BCfg{Mode: isa.BSub, Width: 2, Operand: isa.SrcImm, Imm: 5}.Encode())
	if got := r.Eval(Inputs{INA: 3}); got != 0xfffffffe {
		t.Errorf("B sub imm: got %#x", got)
	}
}

func TestCElementS8x8(t *testing.T) {
	r := New(false)
	// Each lane's table maps v -> v+lane+1 (mod 256).
	for lane := 0; lane < 4; lane++ {
		for v := 0; v < 256; v++ {
			r.LUT.S8[lane][v] = uint8(v + lane + 1)
		}
	}
	applyElem(t, r, isa.ElemC, isa.CCfg{Mode: isa.CS8x8}.Encode())
	got := r.Eval(Inputs{INA: 0x00000000})
	want := uint32(1) | 2<<8 | 3<<16 | 4<<24
	if got != want {
		t.Errorf("C s8x8: got %#x, want %#x", got, want)
	}
}

func TestCElementS4x4Paged(t *testing.T) {
	r := New(false)
	// Page p of every table maps n -> n XOR p.
	for tbl := 0; tbl < 4; tbl++ {
		for page := 0; page < 8; page++ {
			for n := 0; n < 16; n++ {
				r.LUT.S4[tbl][page*16+n] = uint8(n ^ page)
			}
		}
	}
	for page := uint8(0); page < 8; page++ {
		applyElem(t, r, isa.ElemC, isa.CCfg{Mode: isa.CS4x4, Page: page}.Encode())
		in := uint32(0x76543210)
		got := r.Eval(Inputs{INA: in})
		var want uint32
		for lane := 0; lane < 8; lane++ {
			n := in >> (4 * uint(lane)) & 0xf
			want |= (n ^ uint32(page)) << (4 * uint(lane))
		}
		if got != want {
			t.Errorf("C s4x4 page %d: got %#x, want %#x", page, got, want)
		}
	}
}

func TestCElementS8to32(t *testing.T) {
	r := New(false)
	for bank := 0; bank < 4; bank++ {
		for v := 0; v < 256; v++ {
			r.LUT.S8[bank][v] = uint8(v ^ (bank << 4))
		}
	}
	applyElem(t, r, isa.ElemC, isa.CCfg{Mode: isa.CS8to32, ByteSel: 2}.Encode())
	in := uint32(0x00AB0000) // byte 2 = 0xAB
	got := r.Eval(Inputs{INA: in})
	want := uint32(0xab) | uint32(0xab^0x10)<<8 | uint32(0xab^0x20)<<16 | uint32(0xab^0x30)<<24
	if got != want {
		t.Errorf("C s8to32: got %#x, want %#x", got, want)
	}
}

func TestDElementRequiresMul(t *testing.T) {
	r := New(false)
	if err := r.ApplyElem(isa.ElemD, isa.DCfg{Mode: isa.DMul32}.Encode()); err == nil {
		t.Error("expected error configuring D on plain RCE")
	}
	m := New(true)
	if err := m.ApplyElem(isa.ElemD, isa.DCfg{Mode: isa.DMul32}.Encode()); err != nil {
		t.Errorf("unexpected error on RCE MUL: %v", err)
	}
}

func TestDElementModes(t *testing.T) {
	in := Inputs{INA: 7, INB: 6}
	cases := []struct {
		cfg  isa.DCfg
		want uint32
	}{
		{isa.DCfg{Mode: isa.DMul32, Operand: isa.SrcINB}, 42},
		{isa.DCfg{Mode: isa.DMul16, Operand: isa.SrcINB}, 42},
		{isa.DCfg{Mode: isa.DSquare}, 49},
		{isa.DCfg{Mode: isa.DBypass}, 7},
		{isa.DCfg{Mode: isa.DMul32, Operand: isa.SrcImm, Imm: 3}, 21},
	}
	for _, c := range cases {
		r := New(true)
		applyElem(t, r, isa.ElemD, c.cfg.Encode())
		if got := r.Eval(in); got != c.want {
			t.Errorf("D %+v: got %d, want %d", c.cfg, got, c.want)
		}
	}
}

func TestDSquareMatchesSelfMul(t *testing.T) {
	r := New(true)
	applyElem(t, r, isa.ElemD, isa.DCfg{Mode: isa.DSquare}.Encode())
	m := New(true)
	applyElem(t, m, isa.ElemD, isa.DCfg{Mode: isa.DMul32, Operand: isa.SrcINA}.Encode())
	f := func(x uint32) bool {
		in := Inputs{INA: x}
		return r.Eval(in) == m.Eval(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFElementLanes(t *testing.T) {
	r := New(false)
	applyElem(t, r, isa.ElemF, isa.FCfg{Mode: isa.FLanes, Consts: [4]uint8{2, 2, 2, 2}}.Encode())
	f := func(x uint32) bool {
		return r.Eval(Inputs{INA: x}) == bits.GFMulWord(x, [4]uint8{2, 2, 2, 2})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFElementMDSMixColumns(t *testing.T) {
	r := New(false)
	applyElem(t, r, isa.ElemF, isa.FCfg{Mode: isa.FMDS, Consts: [4]uint8{2, 3, 1, 1}}.Encode())
	in := uint32(0xdb) | uint32(0x13)<<8 | uint32(0x53)<<16 | uint32(0x45)<<24
	want := uint32(0x8e) | uint32(0x4d)<<8 | uint32(0xa1)<<16 | uint32(0xbc)<<24
	if got := r.Eval(Inputs{INA: in}); got != want {
		t.Errorf("F MDS: got %#x, want %#x", got, want)
	}
}

func TestLoadLUT8x8(t *testing.T) {
	r := New(false)
	// Load bytes 4..7 of bank 1 with 0x11, 0x22, 0x33, 0x44.
	data := uint64(0x11) | 0x22<<8 | 0x33<<16 | 0x44<<24
	if err := r.LoadLUT(isa.LUTAddr(false, 1, 1), data); err != nil {
		t.Fatal(err)
	}
	want := [4]uint8{0x11, 0x22, 0x33, 0x44}
	for i, w := range want {
		if got := r.LUT.S8[1][4+i]; got != w {
			t.Errorf("S8[1][%d] = %#x, want %#x", 4+i, got, w)
		}
	}
}

func TestLoadLUT4x4(t *testing.T) {
	r := New(false)
	// Load nibbles 8..15 of table 2 with 0..7.
	var data uint64
	for i := 0; i < 8; i++ {
		data |= uint64(i) << (4 * i)
	}
	if err := r.LoadLUT(isa.LUTAddr(true, 2, 1), data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got := r.LUT.S4[2][8+i]; got != uint8(i) {
			t.Errorf("S4[2][%d] = %d, want %d", 8+i, got, i)
		}
	}
}

func TestLoadLUTRejectsOutOfRangeGroup(t *testing.T) {
	r := New(false)
	if err := r.LoadLUT(isa.LUTAddr(true, 0, 16), 0); err == nil {
		t.Error("expected error for 4x4 group 16")
	}
}

func TestChainOrderAppliesE1BeforeB(t *testing.T) {
	// (x << 1) + 1: verifies E1 executes before B in the chain.
	r := New(false)
	applyElem(t, r, isa.ElemE1, isa.ECfg{Mode: isa.EShl, AmtSrc: isa.SrcImm, Amt: 1}.Encode())
	applyElem(t, r, isa.ElemB, isa.BCfg{Mode: isa.BAdd, Width: 2, Operand: isa.SrcImm, Imm: 1}.Encode())
	f := func(x uint32) bool {
		return r.Eval(Inputs{INA: x}) == (x<<1)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRC6QuadraticOnOneRCEMUL(t *testing.T) {
	// t = (x*(2x+1)) <<< 5, the RC6 round quadratic, computed by a single
	// RCE MUL: E1 shl 1, A1 or imm 1 (2x is even, so OR 1 == +1),
	// D mul32 by INA, E3 rotl 5. The B adder sits after D in the chain,
	// which is why the +1 uses the Boolean element.
	r := New(true)
	applyElem(t, r, isa.ElemE1, isa.ECfg{Mode: isa.EShl, AmtSrc: isa.SrcImm, Amt: 1}.Encode())
	applyElem(t, r, isa.ElemA1, isa.ACfg{Op: isa.AOr, Operand: isa.SrcImm, Imm: 1}.Encode())
	applyElem(t, r, isa.ElemD, isa.DCfg{Mode: isa.DMul32, Operand: isa.SrcINA}.Encode())
	applyElem(t, r, isa.ElemE3, isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcImm, Amt: 5}.Encode())
	f := func(x uint32) bool {
		want := bits.RotL(x*(2*x+1), 5)
		return r.Eval(Inputs{INA: x}) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResetRestoresIdentity(t *testing.T) {
	r := New(true)
	applyElem(t, r, isa.ElemE1, isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcImm, Amt: 7}.Encode())
	r.LUT.S8[0][0] = 0xff
	r.Reset()
	if got := r.Eval(Inputs{INA: 0x1234}); got != 0x1234 {
		t.Errorf("after Reset, Eval = %#x", got)
	}
	if r.LUT.S8[0][0] != 0 {
		t.Error("Reset did not clear LUTs")
	}
}

func TestActiveElements(t *testing.T) {
	r := New(true)
	if got := r.ActiveElements(); len(got) != 0 {
		t.Errorf("identity config has active elements: %v", got)
	}
	applyElem(t, r, isa.ElemE1, isa.ECfg{Mode: isa.EShl, AmtSrc: isa.SrcImm, Amt: 1}.Encode())
	applyElem(t, r, isa.ElemD, isa.DCfg{Mode: isa.DSquare}.Encode())
	applyElem(t, r, isa.ElemReg, isa.RegCfg{Enabled: true}.Encode())
	got := r.ActiveElements()
	want := []isa.Elem{isa.ElemE1, isa.ElemD, isa.ElemReg}
	if len(got) != len(want) {
		t.Fatalf("ActiveElements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ActiveElements[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestApplyElemOutIsNoOp(t *testing.T) {
	r := New(false)
	if err := r.ApplyElem(isa.ElemOut, 1); err != nil {
		t.Errorf("ElemOut should be accepted: %v", err)
	}
}

func TestApplyElemRejectsUnknown(t *testing.T) {
	r := New(false)
	if err := r.ApplyElem(isa.Elem(14), 0); err == nil {
		t.Error("expected error for unknown element")
	}
}

func TestDescribeMentionsActiveModes(t *testing.T) {
	r := New(true)
	applyElem(t, r, isa.ElemD, isa.DCfg{Mode: isa.DSquare}.Encode())
	s := r.Describe()
	if s == "" {
		t.Fatal("empty description")
	}
	for _, sub := range []string{"RCE MUL", "D(SQR)", "OUT"} {
		if !strings.Contains(s, sub) {
			t.Errorf("Describe() = %q, missing %q", s, sub)
		}
	}
}

func TestActiveElementsFullChain(t *testing.T) {
	r := New(true)
	applyElem(t, r, isa.ElemInsel, isa.InselCfg{Source: 1}.Encode())
	applyElem(t, r, isa.ElemE1, isa.ECfg{Mode: isa.EShl, AmtSrc: isa.SrcImm, Amt: 1}.Encode())
	applyElem(t, r, isa.ElemA1, isa.ACfg{Op: isa.AXor, Operand: isa.SrcINB}.Encode())
	applyElem(t, r, isa.ElemC, isa.CCfg{Mode: isa.CS8x8}.Encode())
	applyElem(t, r, isa.ElemE2, isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcImm, Amt: 2}.Encode())
	applyElem(t, r, isa.ElemD, isa.DCfg{Mode: isa.DMul32, Operand: isa.SrcINC}.Encode())
	applyElem(t, r, isa.ElemB, isa.BCfg{Mode: isa.BAdd, Width: 2, Operand: isa.SrcIND}.Encode())
	applyElem(t, r, isa.ElemF, isa.FCfg{Mode: isa.FLanes, Consts: [4]uint8{2, 2, 2, 2}}.Encode())
	applyElem(t, r, isa.ElemA2, isa.ACfg{Op: isa.AOr, Operand: isa.SrcINER}.Encode())
	applyElem(t, r, isa.ElemE3, isa.ECfg{Mode: isa.EShr, AmtSrc: isa.SrcImm, Amt: 3}.Encode())
	applyElem(t, r, isa.ElemReg, isa.RegCfg{Enabled: true}.Encode())
	want := []isa.Elem{isa.ElemInsel, isa.ElemE1, isa.ElemA1, isa.ElemC, isa.ElemE2,
		isa.ElemD, isa.ElemB, isa.ElemF, isa.ElemA2, isa.ElemE3, isa.ElemReg}
	got := r.ActiveElements()
	if len(got) != len(want) {
		t.Fatalf("ActiveElements = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("element %d = %v, want %v", i, got[i], want[i])
		}
	}
	if !strings.Contains(r.Describe(), "IN[INB]") {
		t.Error("Describe missing INSEL source")
	}
}
