// Package lint is the repository's Go-source analyzer suite (cobra-lint):
// small syntactic analyzers in the shape of go/analysis, built on the
// standard library only so the suite runs anywhere `go test` does — no
// module downloads, no separate tool install.
//
// Four analyzers ship today:
//
//   - deprecated: bans new callers of the deprecated program.Encrypt*
//     wrappers anywhere outside package program (which declares and tests
//     them). The Run consolidation migrated every caller; this keeps it
//     that way.
//   - farmnew: bans new callers of the deprecated positional farm.New
//     constructor outside package farm. The scheduler redesign moved every
//     caller to farm.Open(alg, key, farm.Options{...}); this keeps it
//     that way.
//   - hotpath: flags fmt calls and allocation-prone builtins (make, new,
//     append) inside functions marked //cobra:hotpath — the fastpath
//     executor's per-block loops, whose zero-allocation property the
//     benchmarks and alloc tests depend on.
//   - hotpathpanic: flags panic and log.Fatal* calls inside
//     //cobra:hotpath functions. The hotpath contract is errors-by-return:
//     cobrad serves these loops to network tenants, where a reachable
//     panic is a denial-of-service primitive and log.Fatal kills the whole
//     service.
//
// Analyzers are purely syntactic (go/ast over one file at a time): no type
// checking, so no dependency resolution and no build cache. That costs a
// little precision — a local variable named fmt would be flagged — and
// buys a linter that can never fail for environmental reasons.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
)

// Finding is one analyzer report at one source position.
type Finding struct {
	Pos  token.Position
	Code string // analyzer name
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Code, f.Msg)
}

// File is one parsed source file handed to each analyzer.
type File struct {
	Fset *token.FileSet
	Path string
	AST  *ast.File
}

// Analyzer is one check over a parsed file.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(f *File) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Deprecated, Farmnew, Hotpath, Hotpathpanic}
}

// deprecatedFuncs are the pre-Run program entry points kept only as
// wrappers; see the Deprecated markers in internal/program.
var deprecatedFuncs = map[string]bool{
	"Encrypt":          true,
	"EncryptInto":      true,
	"EncryptBytes":     true,
	"EncryptBytesInto": true,
	"EncryptFastInto":  true,
}

// Deprecated bans new callers of the deprecated program.Encrypt* wrappers.
// Calls inside package program itself are unqualified and therefore never
// match — the declaring package keeps testing its own wrappers.
var Deprecated = &Analyzer{
	Name: "deprecated",
	Doc:  "ban callers of the deprecated program.Encrypt* wrappers (use program.Run/RunBytes)",
	Run: func(f *File) []Finding {
		// The declaring package's own external tests exercise the wrappers
		// on purpose (its internal files call them unqualified and never
		// match the selector form below).
		if f.AST.Name.Name == "program_test" {
			return nil
		}
		// Resolve the local name the program package is imported under.
		pkgName := ""
		for _, imp := range f.AST.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p != "cobra/internal/program" {
				continue
			}
			pkgName = "program"
			if imp.Name != nil {
				pkgName = imp.Name.Name
			}
		}
		if pkgName == "" || pkgName == "_" {
			return nil
		}
		var fs []Finding
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != pkgName || !deprecatedFuncs[sel.Sel.Name] {
				return true
			}
			fs = append(fs, Finding{
				Pos:  f.Fset.Position(call.Pos()),
				Code: "deprecated",
				Msg:  fmt.Sprintf("call to deprecated %s.%s — use %s.Run/RunBytes", pkgName, sel.Sel.Name, pkgName),
			})
			return true
		})
		return fs
	},
}

// Farmnew bans new callers of the deprecated positional farm.New
// constructor (use farm.Open with a farm.Options). Package farm's own
// files call New unqualified and never match the selector form, so the
// declaring package keeps testing its deprecation shim.
var Farmnew = &Analyzer{
	Name: "farmnew",
	Doc:  "ban callers of the deprecated farm.New constructor (use farm.Open + farm.Options)",
	Run: func(f *File) []Finding {
		pkgName := ""
		for _, imp := range f.AST.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p != "cobra/internal/farm" {
				continue
			}
			pkgName = "farm"
			if imp.Name != nil {
				pkgName = imp.Name.Name
			}
		}
		if pkgName == "" || pkgName == "_" {
			return nil
		}
		var fs []Finding
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != pkgName || sel.Sel.Name != "New" {
				return true
			}
			fs = append(fs, Finding{
				Pos:  f.Fset.Position(call.Pos()),
				Code: "farmnew",
				Msg:  fmt.Sprintf("call to deprecated %s.New — use %s.Open with a %s.Options", pkgName, pkgName, pkgName),
			})
			return true
		})
		return fs
	},
}

// hotpathMarker is the magic comment that opts a function into the hotpath
// analyzer, written directly above the declaration like a compiler
// directive: //cobra:hotpath
const hotpathMarker = "//cobra:hotpath"

// allocBuiltins are the builtins that allocate (or may allocate) on every
// call — the calls the fastpath's per-block loops must not make.
var allocBuiltins = map[string]bool{"make": true, "new": true, "append": true}

// Hotpath flags fmt calls and allocation-prone builtins inside functions
// marked //cobra:hotpath.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag fmt and allocation-prone calls inside //cobra:hotpath functions",
	Run: func(f *File) []Finding {
		var fs []Finding
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasHotpathMarker(fn.Doc) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if allocBuiltins[fun.Name] {
						fs = append(fs, Finding{
							Pos:  f.Fset.Position(call.Pos()),
							Code: "hotpath",
							Msg:  fmt.Sprintf("%s call in hotpath function %s", fun.Name, fn.Name.Name),
						})
					}
				case *ast.SelectorExpr:
					if id, ok := fun.X.(*ast.Ident); ok && id.Name == "fmt" {
						fs = append(fs, Finding{
							Pos:  f.Fset.Position(call.Pos()),
							Code: "hotpath",
							Msg:  fmt.Sprintf("fmt.%s call in hotpath function %s", fun.Sel.Name, fn.Name.Name),
						})
					}
				}
				return true
			})
		}
		return fs
	},
}

// logFatalFuncs are the log-package calls that terminate the process.
var logFatalFuncs = map[string]bool{"Fatal": true, "Fatalf": true, "Fatalln": true}

// Hotpathpanic flags panic and log.Fatal* calls inside //cobra:hotpath
// functions: the hotpath contract is errors-by-return, and these loops run
// under cobrad for network tenants, where a data-reachable panic is a
// denial-of-service primitive.
var Hotpathpanic = &Analyzer{
	Name: "hotpathpanic",
	Doc:  "flag panic and log.Fatal* calls inside //cobra:hotpath functions",
	Run: func(f *File) []Finding {
		var fs []Finding
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasHotpathMarker(fn.Doc) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if fun.Name == "panic" {
						fs = append(fs, Finding{
							Pos:  f.Fset.Position(call.Pos()),
							Code: "hotpathpanic",
							Msg:  fmt.Sprintf("panic call in hotpath function %s — return an error instead", fn.Name.Name),
						})
					}
				case *ast.SelectorExpr:
					if id, ok := fun.X.(*ast.Ident); ok && id.Name == "log" && logFatalFuncs[fun.Sel.Name] {
						fs = append(fs, Finding{
							Pos:  f.Fset.Position(call.Pos()),
							Code: "hotpathpanic",
							Msg:  fmt.Sprintf("log.%s call in hotpath function %s — return an error instead", fun.Sel.Name, fn.Name.Name),
						})
					}
				}
				return true
			})
		}
		return fs
	},
}

// hasHotpathMarker reports whether a declaration's doc block carries the
// //cobra:hotpath directive.
func hasHotpathMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == hotpathMarker {
			return true
		}
	}
	return false
}

// CheckSource parses one file's source and runs the whole suite over it —
// the unit the driver and the tests share. Parse errors are returned, not
// reported as findings.
func CheckSource(path string, src []byte) ([]Finding, error) {
	fset := token.NewFileSet()
	astf, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	file := &File{Fset: fset, Path: path, AST: astf}
	var fs []Finding
	for _, an := range Analyzers() {
		fs = append(fs, an.Run(file)...)
	}
	return fs, nil
}

// CheckDir walks root recursively, checking every .go file (vendor-free
// repo: only .git and testdata trees are skipped, testdata because its
// files are fixtures, not code the module builds).
func CheckDir(root string, read func(string) ([]byte, error)) ([]Finding, error) {
	var all []Finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := read(path)
		if err != nil {
			return err
		}
		fs, err := CheckSource(path, src)
		if err != nil {
			return err
		}
		all = append(all, fs...)
		return nil
	})
	return all, err
}
