package serve

import "cobra/internal/obs"

// serverMetrics is the daemon-level instrumentation: session lifecycle,
// backend-cache behavior, and per-tenant request series. Everything
// lives in one registry (labeled backend="serve") that the daemon
// attaches to obs.Default for the /metrics endpoint; tests keep it
// detached and scrape it directly.
type serverMetrics struct {
	reg *obs.Registry

	sessions       *obs.Counter
	sessionsActive *obs.Gauge
	framesIn       *obs.Counter
	bytesIn        *obs.Counter
	bytesOut       *obs.Counter
	drained        *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg: reg,
		sessions: reg.Counter("cobra_serve_sessions_total",
			"Client connections accepted."),
		sessionsActive: reg.Gauge("cobra_serve_sessions_active",
			"Client connections currently open."),
		framesIn: reg.Counter("cobra_serve_frames_total",
			"Frames received from clients."),
		bytesIn: reg.Counter("cobra_serve_rx_bytes_total",
			"Request payload bytes received."),
		bytesOut: reg.Counter("cobra_serve_tx_bytes_total",
			"Response payload bytes sent."),
		drained: reg.Counter("cobra_serve_drained_sessions_total",
			"Sessions closed by graceful drain."),
	}
}

// tenantMetrics is the per-tenant series set, created (get-or-create —
// two sessions of one tenant share series) at CONFIGURE time so the
// request hot path only touches pre-resolved atomic counters.
type tenantMetrics struct {
	requests  [3]*obs.Counter // by op: encrypt, decrypt, stats
	errors    *obs.Counter
	sheds     *obs.Counter
	latency   [3]*obs.Timer
	blocks    *obs.Counter
	cacheHits *obs.Counter
}

// Tenant op indices.
const (
	opEncrypt = iota
	opDecrypt
	opStats
)

var opNames = [3]string{"encrypt", "decrypt", "stats"}

func newTenantMetrics(reg *obs.Registry, tenant string) *tenantMetrics {
	tl := obs.L("tenant", tenant)
	m := &tenantMetrics{
		errors: reg.Counter("cobra_serve_errors_total",
			"Requests answered with an ERROR frame, per tenant.", tl),
		sheds: reg.Counter("cobra_serve_sheds_total",
			"Requests shed with BUSY by admission control, per tenant.", tl),
		blocks: reg.Counter("cobra_serve_blocks_total",
			"128-bit blocks processed, per tenant.", tl),
		cacheHits: reg.Counter("cobra_serve_backend_reuse_total",
			"CONFIGUREs that reused a cached, already-configured backend.", tl),
	}
	for i, op := range opNames {
		ol := obs.L("op", op)
		m.requests[i] = reg.Counter("cobra_serve_requests_total",
			"Requests served, per tenant and operation.", tl, ol)
		m.latency[i] = reg.Timer("cobra_serve_request_ns",
			"Wall-clock latency of one request, per tenant and operation.", tl, ol)
	}
	return m
}
