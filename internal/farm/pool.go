// The worker pool and its program-aware elastic scheduler.
//
// A Pool owns N workers, each the exclusive driver of one core.Device
// (a sim.Machine is single-threaded silicon). Tenants — Farm values
// opened on the pool — dispatch shards into per-worker run queues
// through a placement function that knows which program each device
// currently holds. Reconfiguring a device (microcode compile plus
// fastpath trace recording) is the expensive operation in this system,
// so the scheduler's whole job is to amortize it: keep each worker on
// its bound program as long as there is same-program work, steal
// same-program work from a sibling's queue before anything else, and
// only pay a reconfiguration when a genuine backlog (StealBacklog) or a
// cold tenant justifies it. The active worker set is elastic: placement
// wakes parked workers on demand (scale-up) and a worker that idles past
// IdleQuiesce parks itself down to the MinWorkers floor, so a
// multi-tenant cobrad deployment doesn't burn cycles polling on behalf
// of cold tenants.
package farm

import (
	"context"
	"strconv"
	"sync"
	"time"

	"cobra/internal/core"
	"cobra/internal/obs"
	"cobra/internal/sim"
)

// progKey identifies one loaded program configuration — the unit of
// scheduler affinity. Two jobs with equal progKeys can run back-to-back
// on one device with no reconfiguration between them.
type progKey struct {
	alg      core.Algorithm
	unroll   int
	key      string
	interp   bool
	validate bool
}

// worker is one pool slot: a goroutine, its exclusively-owned device,
// and its slice of the run queue.
//
// Two domains of state coexist here. Scheduler state (q, bound/boundSet,
// running, active, loaded/loadedSet) is guarded by Pool.mu. Device state
// (dev) is touched only by the worker's own goroutine after startup —
// the one exception is Pool.Open gifting its probe device to an idle
// device-less worker, which happens under mu while the worker provably
// isn't executing, and is published to the worker goroutine by the mu
// acquire in its next pick.
type worker struct {
	idx  int
	wake chan struct{} // buffered 1: placement signal

	q         []job
	bound     progKey // program the scheduler routes here
	boundSet  bool
	loaded    progKey // program actually on the device
	loadedSet bool
	running   bool
	active    bool

	dev *core.Device

	jobs   *obs.Counter
	errs   *obs.Counter
	busyNs *obs.Counter

	// fault is a test hook: when non-nil it runs before the device (and
	// before device configuration) and its error is the job's outcome.
	fault func(j *job) error
}

// idleLocked reports whether the worker has nothing queued or running.
func (w *worker) idleLocked() bool { return !w.running && len(w.q) == 0 }

// poolMetrics is the pool-level scheduler instrumentation.
type poolMetrics struct {
	shards     *obs.Counter
	shardSize  *obs.Histogram
	queueWait  *obs.Timer
	affinity   *obs.Counter
	stealsSame *obs.Counter
	stealsX    *obs.Counter
	rebinds    *obs.Counter
	reconfigs  *obs.Counter
	scaleUps   *obs.Counter
	quiesces   *obs.Counter
}

func newPoolMetrics(reg *obs.Registry) *poolMetrics {
	return &poolMetrics{
		shards: reg.Counter("cobra_farm_shards_total",
			"Shards dispatched to worker queues."),
		shardSize: reg.Histogram("cobra_farm_shard_blocks",
			"Size of dispatched shards in 128-bit blocks.", obs.BlockBuckets()),
		queueWait: reg.Timer("cobra_farm_queue_wait_ns",
			"Time dispatch spent placing one shard on a worker queue (backpressure when large)."),
		affinity: reg.Counter("cobra_farm_affinity_hits_total",
			"Jobs that ran on a device already holding their program (no reconfiguration)."),
		stealsSame: reg.Counter("cobra_farm_steals_total",
			"Jobs stolen from a sibling queue by an idle worker.", obs.L("kind", "program")),
		stealsX: reg.Counter("cobra_farm_steals_total",
			"Jobs stolen from a sibling queue by an idle worker.", obs.L("kind", "cross")),
		rebinds: reg.Counter("cobra_farm_rebinds_total",
			"Workers re-routed from one program to another by placement or stealing."),
		reconfigs: reg.Counter("cobra_farm_reconfigures_total",
			"Device reconfigurations paid to switch a worker's loaded program."),
		scaleUps: reg.Counter("cobra_farm_scale_ups_total",
			"Parked workers reactivated by placement demand."),
		quiesces: reg.Counter("cobra_farm_quiesces_total",
			"Workers parked by the autoscaler after idling past IdleQuiesce."),
	}
}

// SchedStats is the scheduler counter snapshot (a programmatic view of
// the cobra_farm_* scheduler series, used by benches and tests).
type SchedStats struct {
	AffinityHits  int64 `json:"affinity_hits"`
	ProgramSteals int64 `json:"program_steals"`
	CrossSteals   int64 `json:"cross_steals"`
	Rebinds       int64 `json:"rebinds"`
	Reconfigures  int64 `json:"reconfigures"`
	ScaleUps      int64 `json:"scale_ups"`
	Quiesces      int64 `json:"quiesces"`
}

// Pool is a set of workers shared by any number of tenants (Farms).
// Every method is safe for concurrent use.
type Pool struct {
	opts Options

	reg    *obs.Registry
	parent *obs.Registry // detached on Close
	met    *poolMetrics

	// closeMu serializes Close against dispatch: a dispatch holds the
	// read side for the whole placement loop, so once Close holds the
	// write side no new shards can enter the queues.
	closeMu sync.RWMutex
	closed  bool // guarded by closeMu

	mu       sync.Mutex // scheduler state: queues, bindings, active set
	workers  []*worker
	active   int
	rr       int           // roundrobin policy cursor
	space    chan struct{} // closed+remade whenever queue capacity frees
	draining bool

	closeCh chan struct{}
	wg      sync.WaitGroup
}

// NewPool starts a multi-tenant worker pool. Tenants are opened on it
// with Pool.Open; the pool is shut down with Close, which the owner must
// call (tenant Farms opened on a shared pool do not close it).
func NewPool(opts Options) (*Pool, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	return newPool(o)
}

// newPool builds the pool from validated options. extra labels (the
// single-tenant constructors add alg=...) stamp the pool registry.
func newPool(o Options, extra ...obs.Label) (*Pool, error) {
	labels := append([]obs.Label{obs.L("backend", "farm")}, extra...)
	p := &Pool{
		opts:    o,
		reg:     obs.NewRegistry(labels...),
		space:   make(chan struct{}),
		closeCh: make(chan struct{}),
	}
	if o.Trace > 0 {
		p.reg.EnableTrace(o.Trace)
	}
	p.met = newPoolMetrics(p.reg)
	for i := 0; i < o.Workers; i++ {
		wl := obs.L("worker", strconv.Itoa(i))
		w := &worker{
			idx:    i,
			wake:   make(chan struct{}, 1),
			active: true,
			jobs: p.reg.Counter("cobra_farm_worker_jobs_total",
				"Jobs completed per worker.", wl),
			errs: p.reg.Counter("cobra_farm_worker_errors_total",
				"Jobs that failed (or were cancelled) per worker.", wl),
			busyNs: p.reg.Counter("cobra_farm_worker_busy_ns_total",
				"Wall-clock nanoseconds each worker spent executing jobs (utilization numerator).", wl),
		}
		ww := w
		p.reg.GaugeFunc("cobra_farm_queue_depth",
			"Shards waiting in each worker's queue.",
			func() int64 {
				p.mu.Lock()
				defer p.mu.Unlock()
				return int64(len(ww.q))
			}, wl)
		p.workers = append(p.workers, w)
	}
	p.active = o.Workers
	p.reg.Gauge("cobra_farm_workers", "Pool size.").Set(int64(o.Workers))
	p.reg.GaugeFunc("cobra_farm_workers_active",
		"Workers currently in the active set (not quiesced).",
		func() int64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return int64(p.active)
		})
	if o.Metrics != nil {
		p.parent = o.Metrics
		p.parent.Attach(p.reg)
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go p.runWorker(w)
	}
	return p, nil
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.workers) }

// ActiveWorkers returns the current size of the active (non-quiesced)
// worker set.
func (p *Pool) ActiveWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Obs returns the pool's metrics registry: scheduler series plus every
// worker's device registry under worker="N" labels.
func (p *Pool) Obs() *obs.Registry { return p.reg }

// QueueDepth returns the number of shards waiting in worker queues (the
// sum of the per-worker cobra_farm_queue_depth gauges). It is the
// admission signal cmd/cobrad sheds load on: at QueueCapacity the next
// dispatch would block on backpressure, so a server can answer BUSY
// instead of queueing behind it.
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		n += len(w.q)
	}
	return n
}

// QueueCapacity returns the total queued-shard capacity of the pool —
// the saturation point of QueueDepth.
func (p *Pool) QueueCapacity() int { return len(p.workers) * p.opts.QueueDepth }

// SchedStats snapshots the scheduler counters.
func (p *Pool) SchedStats() SchedStats {
	m := p.met
	return SchedStats{
		AffinityHits:  m.affinity.Value(),
		ProgramSteals: m.stealsSame.Value(),
		CrossSteals:   m.stealsX.Value(),
		Rebinds:       m.rebinds.Value(),
		Reconfigures:  m.reconfigs.Value(),
		ScaleUps:      m.scaleUps.Value(),
		Quiesces:      m.quiesces.Value(),
	}
}

// place queues one shard on a worker chosen by the scheduling policy,
// blocking (backpressure) until capacity frees or ctx is done. used is
// the per-call set of workers earlier shards of the same call were
// placed on; the chosen worker is marked in it. The caller must hold
// closeMu.RLock.
func (p *Pool) place(ctx context.Context, j job, used []bool) error {
	for {
		p.mu.Lock()
		w := p.chooseLocked(j.tn.pk, used)
		if w != nil {
			used[w.idx] = true
			w.q = append(w.q, j)
			wakeLocked(w)
			// A shard queued behind a running worker is a steal
			// opportunity: wake the idle active siblings so one of them
			// can take it (the target itself won't look again until its
			// current job ends).
			if w.running && p.opts.Policy == PolicyAffinity {
				for _, o := range p.workers {
					if o != w && o.active && o.idleLocked() {
						wakeLocked(o)
					}
				}
			}
			p.mu.Unlock()
			return nil
		}
		space := p.space
		p.mu.Unlock()
		select {
		case <-space:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// chooseLocked is the placement function: it returns the worker the next
// shard of program pk should queue on, or nil when the pool is saturated
// and the dispatcher must wait for space. Callers hold p.mu.
//
// Under the affinity policy placement runs in two passes. The first
// excludes workers earlier shards of the same call already landed on:
// one call's shards are the unit of Table 1 parallelism, and without the
// exclusion a hot worker that finishes shard k before shard k+1 is
// placed would attract the whole message and serialize the simulated
// wall-clock (program affinity is a cross-call economy, not an
// intra-call one). The second pass drops the exclusion so a call with
// more shards than workers still queues everywhere.
func (p *Pool) chooseLocked(pk progKey, used []bool) *worker {
	if p.opts.Policy == PolicyRoundRobin {
		w := p.workers[p.rr%len(p.workers)]
		if len(w.q) >= p.opts.QueueDepth {
			return nil
		}
		p.rr++
		p.rebindLocked(w, pk)
		return w
	}
	if w := p.affinityLocked(pk, used); w != nil {
		return w
	}
	return p.affinityLocked(pk, nil)
}

// affinityLocked applies the affinity policy's preference order over the
// workers not excluded by avoid (nil excludes none). The order encodes
// the cost model — a reconfiguration (microcode compile + fastpath trace
// recording) is worth avoiding above all else, and a parked worker that
// still holds the program hot beats rebinding a live one:
//
//  1. an idle active worker bound to pk (free: device is hot)
//  2. a parked worker bound to pk (scale up, device still hot)
//  3. an idle active worker with no binding yet (pays one cold
//     configure, never a reconfigure)
//  4. a parked unbound worker (scale up + cold configure)
//  5. queue behind the least-loaded pk-bound worker with space
//
// The remaining rules run only without an avoid set (the second pass)
// AND when pk has no bound worker with room — rebinding another
// program's worker is never worth it just to spread one call wider.
// Even then a rebind must be earned by fairness: pk may claim a worker
// only from a program holding at least two more workers than pk does
// (the claim still leaves the victim no worse off than pk, so every
// claim strictly narrows the imbalance — the partition converges to
// fair shares and then stays put, instead of tenants ping-ponging
// workers and paying a reconfiguration per swing). A cold program with
// no binding at all (more tenants than workers) may claim from anyone
// rather than starve. Among claimable workers:
//
//  6. rebind an idle active claimable worker
//  7. wake and rebind a parked claimable worker
//  8. queue behind the least-loaded claimable worker with space
func (p *Pool) affinityLocked(pk progKey, avoid []bool) *worker {
	skip := func(w *worker) bool { return avoid != nil && avoid[w.idx] }
	for _, w := range p.workers {
		if !skip(w) && w.active && w.idleLocked() && w.boundSet && w.bound == pk {
			return w
		}
	}
	for _, w := range p.workers {
		if !skip(w) && !w.active && w.boundSet && w.bound == pk {
			p.activateLocked(w)
			return w
		}
	}
	for _, w := range p.workers {
		if !skip(w) && w.active && w.idleLocked() && !w.boundSet {
			w.bound, w.boundSet = pk, true
			return w
		}
	}
	for _, w := range p.workers {
		if !skip(w) && !w.active && !w.boundSet {
			p.activateLocked(w)
			w.bound, w.boundSet = pk, true
			return w
		}
	}
	var best *worker
	for _, w := range p.workers {
		if !skip(w) && w.active && w.boundSet && w.bound == pk && len(w.q) < p.opts.QueueDepth {
			if best == nil || len(w.q) < len(best.q) {
				best = w
			}
		}
	}
	if best != nil {
		return best
	}
	if avoid != nil {
		return nil // spreading a call never justifies a rebind
	}
	counts := make(map[progKey]int, len(p.workers))
	for _, w := range p.workers {
		if w.boundSet {
			counts[w.bound]++
		}
	}
	need := counts[pk] + 2
	if counts[pk] == 0 {
		need = 1 // cold program: claim from anyone rather than starve
	}
	claim := func(w *worker) bool {
		return !w.boundSet || (w.bound != pk && counts[w.bound] >= need)
	}
	for _, w := range p.workers {
		if w.active && w.idleLocked() && claim(w) {
			p.rebindLocked(w, pk)
			return w
		}
	}
	for _, w := range p.workers {
		if !w.active && claim(w) {
			p.activateLocked(w)
			p.rebindLocked(w, pk)
			return w
		}
	}
	best = nil
	for _, w := range p.workers {
		if claim(w) && len(w.q) < p.opts.QueueDepth {
			if best == nil || len(w.q) < len(best.q) {
				best = w
			}
		}
	}
	if best != nil {
		p.rebindLocked(best, pk)
		return best
	}
	return nil // wait: pk's fair share of the pool is already working for it
}

func (p *Pool) activateLocked(w *worker) {
	w.active = true
	p.active++
	p.met.scaleUps.Inc()
}

func (p *Pool) rebindLocked(w *worker, pk progKey) {
	if w.boundSet && w.bound != pk {
		p.met.rebinds.Inc()
	}
	w.bound, w.boundSet = pk, true
}

// pickLocked takes the worker's next job: its own queue head first, then
// — under the affinity policy — a steal. Only workers currently running a
// job are valid victims: an idle victim is microseconds from picking its
// own queue, and stealing from it would serialize onto the thief work
// the scheduler had already spread (it would also make placement racy,
// which the fastpath-vs-interpreter aggregate-stats equality depends
// on). Same-program steals (the victim's tail job runs on w without
// reconfiguration) have no threshold; cross-program steals pay a
// reconfiguration and therefore require the victim to be at least
// StealBacklog deep. Stealing from the tail leaves the head for the
// victim, which preserves FIFO order per queue (order between shards of
// one call is irrelevant — they write disjoint dst windows).
func (p *Pool) pickLocked(w *worker) (job, bool) {
	if len(w.q) > 0 {
		j := w.q[0]
		w.q = w.q[1:]
		if len(w.q) == 0 {
			w.q = nil
		}
		return j, true
	}
	if p.opts.Policy != PolicyAffinity {
		return job{}, false
	}
	var victim *worker
	if w.boundSet {
		for _, v := range p.workers {
			if v == w || !v.running || len(v.q) == 0 {
				continue
			}
			if v.q[len(v.q)-1].tn.pk == w.bound && (victim == nil || len(v.q) > len(victim.q)) {
				victim = v
			}
		}
		if victim != nil {
			j := victim.q[len(victim.q)-1]
			victim.q = victim.q[:len(victim.q)-1]
			p.met.stealsSame.Inc()
			return j, true
		}
	}
	for _, v := range p.workers {
		if v == w || !v.running || len(v.q) < p.opts.StealBacklog {
			continue
		}
		if victim == nil || len(v.q) > len(victim.q) {
			victim = v
		}
	}
	if victim != nil {
		j := victim.q[len(victim.q)-1]
		victim.q = victim.q[:len(victim.q)-1]
		p.met.stealsX.Inc()
		p.rebindLocked(w, j.tn.pk)
		return j, true
	}
	return job{}, false
}

// wakeLocked sends the worker its (non-blocking, buffered-1) placement
// token. Callers hold p.mu.
func wakeLocked(w *worker) {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// signalSpaceLocked wakes every dispatcher blocked on pool capacity by
// closing and remaking the broadcast channel. Callers hold p.mu.
func (p *Pool) signalSpaceLocked() {
	close(p.space)
	p.space = make(chan struct{})
}

// runWorker is one worker goroutine: pick (or steal) a job, run it,
// answer it, repeat; park when idle, exit when the pool drains on Close.
// The job's error is sent only after the worker has returned to the idle
// state under mu, so a single sequential caller observes deterministic
// placement (by the time dispatch returns, every worker it used is idle
// again) — the fastpath-vs-interpreter aggregate-stats equality test
// relies on this.
func (p *Pool) runWorker(w *worker) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		j, ok := p.pickLocked(w)
		if ok {
			w.running = true
			p.signalSpaceLocked()
			p.mu.Unlock()
			err := p.execute(w, &j)
			p.mu.Lock()
			w.running = false
			p.signalSpaceLocked()
			p.mu.Unlock()
			j.errc <- err
			continue
		}
		draining := p.draining
		p.mu.Unlock()
		if draining {
			return
		}
		p.waitForWork(w)
	}
}

// waitForWork blocks until placement signals this worker (or the pool
// closes). Under the affinity policy a worker that idles past
// IdleQuiesce parks itself — leaves the active set, down to the
// MinWorkers floor — and keeps waiting; placement reactivates parked
// workers on demand.
func (p *Pool) waitForWork(w *worker) {
	quiesce := p.opts.IdleQuiesce
	if p.opts.Policy != PolicyAffinity || quiesce < 0 {
		select {
		case <-w.wake:
		case <-p.closeCh:
		}
		return
	}
	t := time.NewTimer(quiesce)
	defer t.Stop()
	select {
	case <-w.wake:
		return
	case <-p.closeCh:
		return
	case <-t.C:
	}
	p.mu.Lock()
	if w.active && w.idleLocked() && p.active > p.opts.MinWorkers {
		w.active = false
		p.active--
		p.met.quiesces.Inc()
	}
	p.mu.Unlock()
	select {
	case <-w.wake:
	case <-p.closeCh:
	}
}

// execute runs one job on the worker's device, configuring or
// reconfiguring it first if it doesn't hold the job's program. The test
// fault hook runs before device setup so tests can stall or fail a
// worker without a device existing.
func (p *Pool) execute(w *worker, j *job) error {
	if err := j.ctx.Err(); err != nil {
		// The caller gave up; skip the simulation, not the reply.
		w.errs.Inc()
		return err
	}
	var err error
	t0 := time.Now()
	if w.fault != nil {
		err = w.fault(j)
	}
	var st sim.Stats
	if err == nil {
		if err = p.ensure(w, j.tn); err == nil {
			switch j.mode {
			case modeCTR:
				st, err = w.dev.EncryptCTRInto(j.ctx, j.dst, j.iv[:], j.src)
			case modeECB:
				st, err = w.dev.EncryptECBInto(j.ctx, j.dst, j.src)
			case modeCBC:
				st, err = w.dev.EncryptCBCInto(j.ctx, j.dst, j.iv[:], j.src)
			case modeDecECB:
				st, err = w.dev.DecryptECBInto(j.ctx, j.dst, j.src)
			case modeDecCBC:
				st, err = w.dev.DecryptCBCInto(j.ctx, j.dst, j.iv[:], j.src)
			}
		}
	}
	busy := time.Since(t0).Nanoseconds()
	w.busyNs.Add(busy)
	w.jobs.Inc()
	if err != nil {
		w.errs.Inc()
	}
	j.tn.account(w.idx, st, busy)
	return err
}

// ensure makes the worker's device hold the tenant's program, paying a
// cold configure (first job on this worker) or a reconfiguration
// (program switch) as needed. Runs on the worker goroutine.
func (p *Pool) ensure(w *worker, tn *Farm) error {
	if w.dev != nil && w.loadedSet && w.loaded == tn.pk {
		p.met.affinity.Inc()
		return nil
	}
	if w.dev == nil {
		dev, err := core.Configure(tn.alg, tn.key, tn.wcfg)
		if err != nil {
			return err
		}
		w.dev = dev
		p.reg.Attach(dev.Obs(), obs.L("worker", strconv.Itoa(w.idx)))
	} else {
		p.met.reconfigs.Inc()
		if err := w.dev.Reconfigure(tn.alg, tn.key, tn.wcfg); err != nil {
			p.mu.Lock()
			w.loadedSet = false
			p.mu.Unlock()
			return err
		}
	}
	p.mu.Lock()
	w.loaded, w.loadedSet = tn.pk, true
	p.mu.Unlock()
	return nil
}

// Close drains the queues, stops the workers, and detaches the pool's
// registry from its Metrics parent. Dispatches already placing shards
// finish normally; later dispatches return ErrClosed. Idempotent.
func (p *Pool) Close() error {
	p.closeMu.Lock()
	wasClosed := p.closed
	p.closed = true
	p.closeMu.Unlock()
	if wasClosed {
		p.wg.Wait()
		return nil
	}
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
	close(p.closeCh)
	p.wg.Wait()
	if p.parent != nil {
		p.parent.Detach(p.reg)
	}
	return nil
}
