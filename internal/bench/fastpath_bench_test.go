package bench

import (
	"encoding/json"
	"testing"
)

// TestMeasureFastpath pins the comparison harness itself: every Table 3
// configuration must trace-compile, both engines must agree (Verified),
// and the JSON report must archive the rows.
func TestMeasureFastpath(t *testing.T) {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i)
	}
	fms, err := MeasureFastpathAll(key, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(fms) != len(Configurations()) {
		t.Fatalf("got %d rows, want %d", len(fms), len(Configurations()))
	}
	for _, m := range fms {
		if !m.Verified {
			t.Errorf("%s-%d: engines diverged", m.Alg, m.Rounds)
		}
		if m.FastNsPerBlk <= 0 || m.InterpNsPerBlk <= 0 {
			t.Errorf("%s-%d: non-positive timing", m.Alg, m.Rounds)
		}
	}
	ms, err := MeasureAll(key, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ReportJSON(ms, fms, 8)
	if err != nil {
		t.Fatal(err)
	}
	var r JSONReport
	if err := json.Unmarshal(out, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Fastpath) != len(fms) {
		t.Fatalf("JSON report archived %d fastpath rows, want %d", len(r.Fastpath), len(fms))
	}
	if txt := FastpathTableText(fms); len(txt) == 0 {
		t.Fatal("empty table text")
	}
}
