package core

import (
	"sync/atomic"

	"cobra/internal/obs"
	"cobra/internal/sim"
)

// opMode indexes the per-mode metric families. Decryption modes are
// separate entries so the mixed-direction workloads of the examples show
// up as distinct series.
type opMode int

const (
	opECB opMode = iota
	opCBC
	opCTR
	opDecECB
	opDecCBC
	opModeCount
)

var opModeNames = [opModeCount]string{"ecb", "cbc", "ctr", "decrypt_ecb", "decrypt_cbc"}

// Indices of the device-level simulator-counter mirrors (one obs.Counter
// per sim.Stats field). These accumulate across BOTH engines — the
// cobra_sim_* family underneath covers only the interpreter machine — and
// are the single bookkeeping behind Report/Summary.
const (
	stCycles = iota
	stAdvanced
	stStalled
	stInstructions
	stNops
	stBlocksIn
	stBlocksOut
	statCount
)

var statMetricNames = [statCount]string{
	"cobra_device_cycles_total",
	"cobra_device_cycles_advanced_total",
	"cobra_device_cycles_stalled_total",
	"cobra_device_instructions_total",
	"cobra_device_nops_total",
	"cobra_device_blocks_in_total",
	"cobra_device_blocks_out_total",
}

var statMetricHelp = [statCount]string{
	"Datapath cycles simulated by bulk encryption, both engines.",
	"Datapath cycles that advanced the sequencer.",
	"Datapath cycles stalled on the READY/GO handshake.",
	"Microcode instructions executed (or accounted by the fastpath).",
	"NOP instructions executed.",
	"128-bit blocks consumed from the input queue.",
	"128-bit blocks produced on the output interface.",
}

// deviceMetrics is a Device's instrumentation: every series lives in one
// obs.Registry per device, attachable to a parent (Config.Metrics) for
// export and detached by default so tests stay hermetic. All update paths
// are atomic-counter writes — no locks, no allocations — which is what
// lets farm.Report read a device's counters while its worker goroutine
// encrypts.
type deviceMetrics struct {
	reg *obs.Registry

	// Per-mode request accounting and per-call latency.
	calls  [opModeCount]*obs.Counter
	errs   [opModeCount]*obs.Counter
	blocks [opModeCount]*obs.Counter
	bytes  [opModeCount]*obs.Counter
	lat    [opModeCount]*obs.Timer

	// Engine split: which executor carried the bulk blocks.
	fastBlocks   *obs.Counter
	interpBlocks *obs.Counter

	// Why a bulk call fell back to the interpreter.
	fbDirty   *obs.Counter
	fbRefused *obs.Counter
	fbForced  *obs.Counter

	// Fastpath compiler lifecycle.
	compiles      *obs.Counter
	compileErrs   *obs.Counter
	invalidations *obs.Counter
	elided        *obs.Gauge

	// sim.Stats mirrors (see statMetricNames) and their ResetStats
	// snapshots: Report subtracts the snapshot so resets never make the
	// exported counters go backwards.
	st   [statCount]*obs.Counter
	snap [statCount]atomic.Int64

	// info carries the current algorithm as a label (value 1 for the
	// active algorithm, 0 after a reconfigure away from it), since the
	// registry's own label set is fixed at creation.
	info map[Algorithm]*obs.Gauge
}

func newDeviceMetrics(alg Algorithm) *deviceMetrics {
	reg := obs.NewRegistry()
	m := &deviceMetrics{reg: reg, info: make(map[Algorithm]*obs.Gauge)}
	for md := opMode(0); md < opModeCount; md++ {
		l := obs.L("mode", opModeNames[md])
		m.calls[md] = reg.Counter("cobra_device_requests_total", "Mode-level API calls.", l)
		m.errs[md] = reg.Counter("cobra_device_errors_total", "Mode-level API calls that returned an error.", l)
		m.blocks[md] = reg.Counter("cobra_device_mode_blocks_total", "Blocks processed per mode (partial CTR blocks count as one).", l)
		m.bytes[md] = reg.Counter("cobra_device_mode_bytes_total", "Payload bytes processed per mode.", l)
		m.lat[md] = reg.Timer("cobra_device_call_duration_ns", "Wall-clock latency of one mode-level API call.", l)
	}
	m.fastBlocks = reg.Counter("cobra_device_engine_blocks_total",
		"Bulk blocks by execution engine.", obs.L("engine", "fastpath"))
	m.interpBlocks = reg.Counter("cobra_device_engine_blocks_total",
		"Bulk blocks by execution engine.", obs.L("engine", "interpreter"))
	m.fbDirty = reg.Counter("cobra_device_fastpath_fallbacks_total",
		"Bulk calls routed to the interpreter, by reason.", obs.L("reason", "dirty_machine"))
	m.fbRefused = reg.Counter("cobra_device_fastpath_fallbacks_total",
		"Bulk calls routed to the interpreter, by reason.", obs.L("reason", "compile_refused"))
	m.fbForced = reg.Counter("cobra_device_fastpath_fallbacks_total",
		"Bulk calls routed to the interpreter, by reason.", obs.L("reason", "forced_interpreter"))
	m.compiles = reg.Counter("cobra_device_fastpath_compiles_total",
		"Successful trace compilations.")
	m.compileErrs = reg.Counter("cobra_device_fastpath_compile_errors_total",
		"Refused trace compilations (program not provably steady-state).")
	m.invalidations = reg.Counter("cobra_device_fastpath_invalidations_total",
		"Compiled traces dropped by a microcode reload.")
	m.elided = reg.Gauge("cobra_device_fastpath_elided_ops",
		"Dead operations elided from the current compiled trace.")
	for i := 0; i < statCount; i++ {
		m.st[i] = reg.Counter(statMetricNames[i], statMetricHelp[i])
	}
	m.setAlg(alg)
	return m
}

// setAlg flips the info gauge to the (possibly new) algorithm.
func (m *deviceMetrics) setAlg(alg Algorithm) {
	for a, g := range m.info {
		if a != alg {
			g.Set(0)
		}
	}
	g, ok := m.info[alg]
	if !ok {
		g = m.reg.Gauge("cobra_device_info", "Configured algorithm (1 = active).",
			obs.L("alg", string(alg)))
		m.info[alg] = g
	}
	g.Set(1)
}

// noteCompile records one trace-compilation attempt.
func (m *deviceMetrics) noteCompile(ok bool, elided int) {
	if ok {
		m.compiles.Inc()
		m.elided.Set(int64(elided))
		return
	}
	m.compileErrs.Inc()
	m.elided.Set(0)
}

// addStats folds one bulk call's simulator delta into the device counters.
func (m *deviceMetrics) addStats(st sim.Stats) {
	m.st[stCycles].Add(int64(st.Cycles))
	m.st[stAdvanced].Add(int64(st.Advanced))
	m.st[stStalled].Add(int64(st.Stalled))
	m.st[stInstructions].Add(int64(st.Instructions))
	m.st[stNops].Add(int64(st.Nops))
	m.st[stBlocksIn].Add(int64(st.BlocksIn))
	m.st[stBlocksOut].Add(int64(st.BlocksOut))
}

// statsView reconstructs the accumulated sim.Stats since the last reset
// snapshot. Reads are atomic loads, so a concurrent Report (the farm
// calls one while workers encrypt) is race-free; the fields are sampled
// independently, so a view taken mid-call may mix per-field progress —
// the same self-consistency Report always had under its per-call lock.
func (m *deviceMetrics) statsView() sim.Stats {
	v := func(i int) int { return int(m.st[i].Value() - m.snap[i].Load()) }
	return sim.Stats{
		Cycles:       v(stCycles),
		Advanced:     v(stAdvanced),
		Stalled:      v(stStalled),
		Instructions: v(stInstructions),
		Nops:         v(stNops),
		BlocksIn:     v(stBlocksIn),
		BlocksOut:    v(stBlocksOut),
	}
}

// resetStats snapshots the current counter values; statsView subtracts
// them. The exported series keep counting monotonically.
func (m *deviceMetrics) resetStats() {
	for i := 0; i < statCount; i++ {
		m.snap[i].Store(m.st[i].Value())
	}
}

// finish closes out one mode-level call: error or payload accounting.
// Kept out of line from the latency span so the hot path has no defers.
func (m *deviceMetrics) finish(md opMode, nbytes int, err error) {
	if err != nil {
		m.errs[md].Inc()
		return
	}
	m.bytes[md].Add(int64(nbytes))
	m.blocks[md].Add(int64((nbytes + 15) / 16))
}
