package program

import (
	"fmt"

	"cobra/internal/bits"
	"cobra/internal/fastpath"
	"cobra/internal/sim"
)

// NewMachine builds a machine matching the program's geometry and window.
func NewMachine(p *Program) (*sim.Machine, error) {
	return sim.New(p.Geometry, p.Window)
}

// Load installs the program and runs the setup phase up to the idle point
// (ready flag raised, §3.4), then clears the performance counters so
// subsequent measurement covers bulk encryption only.
func Load(m *sim.Machine, p *Program) error {
	m.Go = false
	if err := m.LoadProgram(p.Words()); err != nil {
		return err
	}
	reason, err := m.Run(sim.Limits{})
	if err != nil {
		return err
	}
	if reason != sim.StopWaitGo {
		return fmt.Errorf("program: setup stopped with %v, want idle at ready", reason)
	}
	m.ResetStats()
	m.MarkClean()
	return nil
}

// Opts configures a Run call. The zero value selects the cycle-accurate
// interpreter with default behavior.
type Opts struct {
	// Fast, when non-nil, routes the call through the trace-compiled
	// executor (Program.Compile) as long as the machine is clean. A
	// machine that has interpreted since its last load owns the in-flight
	// stats chain, so a dirty machine stays on the interpreter rather than
	// splitting one measurement across two engines. Nil always interprets.
	Fast *fastpath.Exec
}

// Run is the bulk-encryption entry point: it streams src blocks through
// the loaded machine (or the compiled executor, see Opts.Fast) into dst
// and returns the simulator counters for exactly this call. dst must hold
// at least len(src) blocks and may alias src (inputs are staged before
// any output is written back).
//
// For streaming (full-unroll, non-feedback) programs pipeline-flush
// blocks are appended so the final outputs drain, mirroring §4.1's
// accounting of "cycles required to output the blocks in the pipeline";
// a dirty machine reloads first for a clean pipeline. The returned stats
// cover exactly this call — a snapshot delta for iterative programs and
// the full post-reload counters for streaming programs — so repeated
// calls on one machine measure independently, and the fastpath engine
// reproduces the interpreter's counters exactly.
func Run(m *sim.Machine, p *Program, dst, src []bits.Block128, o Opts) (sim.Stats, error) {
	if len(src) == 0 {
		return sim.Stats{}, nil
	}
	if len(dst) < len(src) {
		return sim.Stats{}, fmt.Errorf("program: dst holds %d blocks, need %d", len(dst), len(src))
	}
	if o.Fast != nil && !m.Dirty() {
		return o.Fast.EncryptInto(dst, src)
	}
	if p.Streaming && m.Dirty() {
		// A streaming program never returns to the idle point, so a used
		// machine still holds in-flight flush blocks whose outputs would be
		// misattributed to this call. Reload for a clean pipeline (the
		// setup phase re-runs; counters restart at zero).
		if err := Load(m, p); err != nil {
			return sim.Stats{}, err
		}
	}
	start := m.Stats()
	m.ClearOutputs()
	m.PushInput(src...)
	if p.Streaming {
		var flush bits.Block128
		for i := 0; i < p.PipelineDepth+1; i++ {
			m.PushInput(flush)
		}
	}
	m.Go = true
	reason, err := m.Run(sim.Limits{StopAfterOutputs: len(src)})
	if err != nil {
		return sim.Stats{}, err
	}
	if reason != sim.StopOutputs {
		return sim.Stats{}, fmt.Errorf("program: run stopped with %v before %d outputs (got %d)",
			reason, len(src), len(m.Outputs()))
	}
	copy(dst, m.Outputs()[:len(src)])
	return m.Stats().Delta(start), nil
}

// RunBytes is Run for byte-oriented callers: src must be a multiple of 16
// bytes (128-bit blocks); dst must hold at least len(src) bytes and may
// alias src.
func RunBytes(m *sim.Machine, p *Program, dst, src []byte, o Opts) (sim.Stats, error) {
	if len(src)%16 != 0 {
		return sim.Stats{}, fmt.Errorf("program: input length %d is not a multiple of the block size", len(src))
	}
	if len(dst) < len(src) {
		return sim.Stats{}, fmt.Errorf("program: dst is %d bytes, need %d", len(dst), len(src))
	}
	blocks := make([]bits.Block128, len(src)/16)
	for i := range blocks {
		blocks[i] = bits.LoadBlock128(src[16*i:])
	}
	stats, err := Run(m, p, blocks, blocks, o)
	if err != nil {
		return stats, err
	}
	for i, blk := range blocks {
		blk.StoreBlock128(dst[16*i:])
	}
	return stats, nil
}

// Encrypt runs blocks through a loaded machine and returns the ciphertext
// blocks together with the performance counters for the run.
//
// Deprecated: use Run with a caller-supplied destination. Kept as a thin
// wrapper for one release of the stacked-PR sequence.
func Encrypt(m *sim.Machine, p *Program, blocks []bits.Block128) ([]bits.Block128, sim.Stats, error) {
	if len(blocks) == 0 {
		return nil, sim.Stats{}, nil
	}
	out := make([]bits.Block128, len(blocks))
	stats, err := Run(m, p, out, blocks, Opts{})
	if err != nil {
		return nil, sim.Stats{}, err
	}
	return out, stats, nil
}

// EncryptInto is Run without options.
//
// Deprecated: use Run.
func EncryptInto(m *sim.Machine, p *Program, dst, blocks []bits.Block128) (sim.Stats, error) {
	return Run(m, p, dst, blocks, Opts{})
}

// EncryptBytes is RunBytes allocating its destination.
//
// Deprecated: use RunBytes with a caller-supplied destination.
func EncryptBytes(m *sim.Machine, p *Program, src []byte) ([]byte, sim.Stats, error) {
	dst := make([]byte, len(src))
	stats, err := RunBytes(m, p, dst, src, Opts{})
	if err != nil {
		return nil, stats, err
	}
	return dst, stats, nil
}

// EncryptBytesInto is RunBytes without options.
//
// Deprecated: use RunBytes.
func EncryptBytesInto(m *sim.Machine, p *Program, dst, src []byte) (sim.Stats, error) {
	return RunBytes(m, p, dst, src, Opts{})
}
