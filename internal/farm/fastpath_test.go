package farm

// Fastpath regression for the farm: worker devices default to the
// trace-compiled executor (core.Config{}.Interpreter == false), so the
// pool's concurrency contract must hold with compiled traces in the
// loop, and a fastpath farm must be observationally identical to an
// interpreter farm — same bytes, same aggregate counters. Run with
// `go test -race ./internal/farm/...` (CI does): a compiled trace shared
// between two goroutines would trip the detector on the executor's
// mutable register file.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"cobra/internal/core"
)

// TestFarmFastpathDevicesUnderRace hammers a fastpath-device pool from
// many goroutines across both sharded modes, with every ciphertext
// verified against the host reference cipher. The probe device pins that
// the farm's configuration actually compiles a trace — if compilation
// ever started refusing, this test would silently regress to exercising
// the interpreter.
func TestFarmFastpathDevicesUnderRace(t *testing.T) {
	probe, err := core.Configure(core.RC6, key, core.Config{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !probe.UsesFastpath() {
		t.Fatalf("farm worker config does not compile a trace: %v", probe.FastpathErr())
	}
	f, err := New(core.RC6, key, core.Config{Unroll: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ref := reference(t, core.RC6)

	const callers = 6
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			iv := bytes.Repeat([]byte{byte(0x30 + g)}, 16)
			for i := 0; i < 3; i++ {
				msg := testMessage(16*48 + g)
				gotCTR, err := f.EncryptCTR(context.Background(), iv, msg)
				if err != nil {
					errc <- err
					return
				}
				if want := refCTR(t, ref, iv, msg); !bytes.Equal(gotCTR, want) {
					errc <- errors.New("fastpath farm: CTR ciphertext corrupted under concurrency")
					return
				}
				ecbMsg := msg[:16*48]
				gotECB, err := f.EncryptECB(context.Background(), ecbMsg)
				if err != nil {
					errc <- err
					return
				}
				want := make([]byte, len(ecbMsg))
				for off := 0; off < len(ecbMsg); off += 16 {
					ref.Encrypt(want[off:], ecbMsg[off:])
				}
				if !bytes.Equal(gotECB, want) {
					errc <- errors.New("fastpath farm: ECB ciphertext corrupted under concurrency")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestFarmFastpathMatchesInterpreterFarm runs the same deterministic
// workload through a fastpath farm and a forced-interpreter farm and
// requires identical ciphertext and identical aggregate counters. A single
// caller keeps the round-robin shard assignment deterministic, so each
// worker pair sees the same call sequence and the per-call stats
// equivalence proven in internal/fastpath must survive aggregation.
func TestFarmFastpathMatchesInterpreterFarm(t *testing.T) {
	fast, err := New(core.Rijndael, key, core.Config{Unroll: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	interp, err := New(core.Rijndael, key, core.Config{Unroll: 2, Interpreter: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer interp.Close()

	iv := bytes.Repeat([]byte{0x5c}, 16)
	for i, n := range []int{16, 16 * 7, 16*64 + 5, 16 * 200, 3} {
		msg := testMessage(n)
		wantCTR, err := interp.EncryptCTR(context.Background(), iv, msg)
		if err != nil {
			t.Fatal(err)
		}
		gotCTR, err := fast.EncryptCTR(context.Background(), iv, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotCTR, wantCTR) {
			t.Fatalf("call %d: CTR ciphertext diverges between farm engines", i)
		}
		if n%16 == 0 {
			wantECB, err := interp.EncryptECB(context.Background(), msg)
			if err != nil {
				t.Fatal(err)
			}
			gotECB, err := fast.EncryptECB(context.Background(), msg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotECB, wantECB) {
				t.Fatalf("call %d: ECB ciphertext diverges between farm engines", i)
			}
		}
	}
	fr, ir := fast.Report(), interp.Report()
	if fr.Stats != ir.Stats {
		t.Fatalf("aggregate stats diverge:\nfastpath    %+v\ninterpreter %+v", fr.Stats, ir.Stats)
	}
	if fr.Stats.BlocksOut == 0 {
		t.Fatal("no blocks recorded")
	}
}
