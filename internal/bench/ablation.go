package bench

import (
	"bytes"
	"fmt"
	"text/tabwriter"

	"cobra/internal/bits"
	"cobra/internal/cipher"
	"cobra/internal/model"
	"cobra/internal/program"
)

// BatchPoint is one point of the pipeline-fill amortization study.
type BatchPoint struct {
	Batch          int
	CyclesPerBlock float64
}

// BatchSweep measures cycles per block for a configuration across batch
// sizes. For full-length pipelines this exposes the §4.1 observation that
// "the cycles required to output the blocks in the pipeline" dominate small
// batches: a 32-stage Serpent pipeline costs ~34 cycles for a single block
// but ~1 cycle per block once the batch amortizes the fill and drain.
// Iterative configurations are batch-insensitive (the per-block protocol
// repeats), which the sweep also demonstrates.
func BatchSweep(c Config, key []byte, batches []int) ([]BatchPoint, error) {
	var out []BatchPoint
	for _, n := range batches {
		p, err := Build(c, key)
		if err != nil {
			return nil, err
		}
		m, err := program.NewMachine(p)
		if err != nil {
			return nil, err
		}
		if err := program.Load(m, p); err != nil {
			return nil, err
		}
		batch := testBatch(n)
		dst := make([]bits.Block128, len(batch))
		stats, err := program.Run(m, p, dst, batch, program.Opts{})
		if err != nil {
			return nil, err
		}
		out = append(out, BatchPoint{Batch: n, CyclesPerBlock: float64(stats.Cycles) / float64(n)})
	}
	return out, nil
}

// BatchSweepText renders the amortization study for the three full-length
// pipelines and one iterative control.
func BatchSweepText(key []byte) (string, error) {
	batches := []int{1, 2, 4, 8, 16, 32, 64, 128}
	configs := []Config{
		{"rc6", 20}, {"rijndael", 10}, {"serpent", 32}, // streaming
		{"serpent", 16}, // iterative control: batch-insensitive
	}
	var b bytes.Buffer
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Pipeline-fill amortization (cycles per block vs batch size)")
	fmt.Fprint(w, "config")
	for _, n := range batches {
		fmt.Fprintf(w, "\tN=%d", n)
	}
	fmt.Fprintln(w)
	for _, c := range configs {
		pts, err := BatchSweep(c, key, batches)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(w, "%s-%d", c.Alg, c.Rounds)
		for _, pt := range pts {
			fmt.Fprintf(w, "\t%.1f", pt.CyclesPerBlock)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String(), nil
}

// WindowPoint is one point of the §3.4 instruction-window study.
type WindowPoint struct {
	Window         int
	CyclesPerBlock float64
	EffectiveMHz   float64 // F_DP = F_iRAM/(2w) = F_DPmax/w
	Mbps           float64
	NopSlots       int // underfull padding (§3.4)
	StallCycles    int // overfull cycles (§3.4)
}

// WindowSweep performs the §3.4 optimal-window analysis on the Serpent
// single-round configuration: for each window size it measures datapath
// cycles per block (overfull stalls shrink as w grows), derives the
// derated clock F_DP = F_iRAM/(2w), and reports the resulting throughput.
// The optimum balances reconfiguration bandwidth against clock rate.
func WindowSweep(key []byte, windows []int, batch int) ([]WindowPoint, error) {
	var out []WindowPoint
	for _, w := range windows {
		p, err := program.BuildSerpentWindowed(key, w)
		if err != nil {
			return nil, err
		}
		m, err := program.NewMachine(p)
		if err != nil {
			return nil, err
		}
		if err := program.Load(m, p); err != nil {
			return nil, err
		}
		tm := model.Analyze(m.Array, model.DefaultDelays())
		blocks := testBatch(batch)
		outBlocks := make([]bits.Block128, len(blocks))
		stats, err := program.Run(m, p, outBlocks, blocks, program.Opts{})
		if err != nil {
			return nil, err
		}
		// Verify against the reference before accepting the point.
		ref, err := cipher.NewSerpentCOBRA(key)
		if err != nil {
			return nil, err
		}
		var pt, ct [16]byte
		for i, blk := range blocks {
			blk.StoreBlock128(pt[:])
			ref.Encrypt(ct[:], pt[:])
			if outBlocks[i] != bits.LoadBlock128(ct[:]) {
				return nil, fmt.Errorf("window %d: verification failed at block %d", w, i)
			}
		}
		cpb := float64(stats.Cycles) / float64(batch)
		mhz := tm.DatapathMHz / float64(w)
		out = append(out, WindowPoint{
			Window:         w,
			CyclesPerBlock: cpb,
			EffectiveMHz:   mhz,
			Mbps:           mhz * 128 / cpb,
			NopSlots:       stats.Nops,
			StallCycles:    stats.Stalled,
		})
	}
	return out, nil
}

// WindowSweepText renders the §3.4 study.
func WindowSweepText(key []byte) (string, error) {
	pts, err := WindowSweep(key, []int{1, 2, 3, 4, 8}, 16)
	if err != nil {
		return "", err
	}
	var b bytes.Buffer
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Instruction-window study, serpent-1 (§3.4: F_DP = F_iRAM/(2w))")
	fmt.Fprintln(w, "window\tcycles/blk\tF_DP (MHz)\tMbps\toverfull stalls\tunderfull NOPs")
	best := 0
	for i, p := range pts {
		if p.Mbps > pts[best].Mbps {
			best = i
		}
	}
	for i, p := range pts {
		mark := ""
		if i == best {
			mark = "  <- optimal"
		}
		fmt.Fprintf(w, "%d\t%.1f\t%.3f\t%.2f\t%d\t%d%s\n",
			p.Window, p.CyclesPerBlock, p.EffectiveMHz, p.Mbps, p.StallCycles, p.NopSlots, mark)
	}
	w.Flush()
	return b.String(), nil
}

// FeedbackPoint contrasts non-feedback (ECB, pipelined) and feedback
// (CBC-like, serialized) operation of one configuration — the paper's
// Table 1 distinguishes FPGA implementations exactly this way, and the
// same physics applies to COBRA's pipelines.
type FeedbackPoint struct {
	Config
	NFBCyclesPerBlock float64
	FBCyclesPerBlock  float64
	NFBMbps           float64
	FBMbps            float64
}

// FeedbackSweep measures the NFB/FB contrast for the three full-length
// pipelines: NFB streams a batch; FB submits one block at a time (the
// chaining dependency of a feedback mode admits no overlap).
func FeedbackSweep(key []byte, batch int) ([]FeedbackPoint, error) {
	var out []FeedbackPoint
	for _, c := range []Config{{"rc6", 20}, {"rijndael", 10}, {"serpent", 32}} {
		p, err := Build(c, key)
		if err != nil {
			return nil, err
		}
		m, err := program.NewMachine(p)
		if err != nil {
			return nil, err
		}
		if err := program.Load(m, p); err != nil {
			return nil, err
		}
		tm := model.Analyze(m.Array, model.DefaultDelays())
		blocks := testBatch(batch)
		// Non-feedback: the whole batch in flight.
		warm := make([]bits.Block128, len(blocks))
		if _, err := program.Run(m, p, warm, blocks, program.Opts{}); err != nil {
			return nil, err
		}
		nfb := float64(m.Stats().Cycles) / float64(batch)
		// Feedback: one block at a time — the chaining dependency means
		// each submission pays the full pipeline fill and drain.
		total := 0
		for i := range blocks {
			st, err := program.Run(m, p, warm[:1], blocks[i:i+1], program.Opts{})
			if err != nil {
				return nil, err
			}
			total += st.Cycles
		}
		fb := float64(total) / float64(batch)
		out = append(out, FeedbackPoint{
			Config:            c,
			NFBCyclesPerBlock: nfb,
			FBCyclesPerBlock:  fb,
			NFBMbps:           tm.ThroughputMbps(nfb),
			FBMbps:            tm.ThroughputMbps(fb),
		})
	}
	return out, nil
}

// FeedbackSweepText renders the NFB/FB contrast.
func FeedbackSweepText(key []byte) (string, error) {
	pts, err := FeedbackSweep(key, 32)
	if err != nil {
		return "", err
	}
	var b bytes.Buffer
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Non-feedback vs feedback operation (full-length pipelines, cf. Table 1's NFB/FB split)")
	fmt.Fprintln(w, "config\tNFB cyc/blk\tFB cyc/blk\tNFB Mbps\tFB Mbps\tNFB/FB")
	for _, p := range pts {
		fmt.Fprintf(w, "%s-%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1fx\n",
			p.Alg, p.Rounds, p.NFBCyclesPerBlock, p.FBCyclesPerBlock,
			p.NFBMbps, p.FBMbps, p.NFBMbps/p.FBMbps)
	}
	w.Flush()
	return b.String(), nil
}
