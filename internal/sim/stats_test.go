package sim

import (
	"testing"

	"cobra/internal/bits"
)

func TestStatsDelta(t *testing.T) {
	since := Stats{Cycles: 10, Advanced: 7, Stalled: 3, Instructions: 40, Nops: 5, BlocksIn: 6, BlocksOut: 6}
	now := Stats{Cycles: 25, Advanced: 20, Stalled: 5, Instructions: 100, Nops: 11, BlocksIn: 16, BlocksOut: 15}
	want := Stats{Cycles: 15, Advanced: 13, Stalled: 2, Instructions: 60, Nops: 6, BlocksIn: 10, BlocksOut: 9}
	if got := now.Delta(since); got != want {
		t.Errorf("Delta = %+v, want %+v", got, want)
	}
}

func TestStatsDeltaZeroAndAddInverse(t *testing.T) {
	s := Stats{Cycles: 3, Advanced: 2, Stalled: 1, Instructions: 9, Nops: 4, BlocksIn: 2, BlocksOut: 2}
	if got := s.Delta(s); got != (Stats{}) {
		t.Errorf("s.Delta(s) = %+v, want zero", got)
	}
	// Add then Delta round-trips: (since + d).Delta(since) == d.
	d := Stats{Cycles: 7, Advanced: 5, Stalled: 2, Instructions: 30, Nops: 1, BlocksIn: 4, BlocksOut: 3}
	sum := s
	sum.Add(d)
	if got := sum.Delta(s); got != d {
		t.Errorf("(s+d).Delta(s) = %+v, want %+v", got, d)
	}
}

// TestStatsDeltaOnMachine checks Delta against live counters: the movement
// between two snapshots equals an isolated measurement of the same work.
func TestStatsDeltaOnMachine(t *testing.T) {
	m := newMachine(t, 1)
	if err := m.LoadProgram(buildWords(streamProgram(0xa5a5a5a5))); err != nil {
		t.Fatal(err)
	}
	if reason, err := m.Run(Limits{}); err != nil || reason != StopWaitGo {
		t.Fatalf("setup Run = %v, %v", reason, err)
	}
	runBlocks := func(n int) {
		t.Helper()
		blocks := make([]bits.Block128, n)
		for i := range blocks {
			blocks[i] = bits.Block128{uint32(i) + 1}
		}
		m.PushInput(blocks...)
		m.Go = true
		have := m.Stats().BlocksOut
		if reason, err := m.Run(Limits{StopAfterOutputs: have + n}); err != nil || reason != StopOutputs {
			t.Fatalf("Run = %v, %v", reason, err)
		}
	}

	before := m.Stats()
	runBlocks(4)
	mid := m.Stats()
	runBlocks(4)
	after := m.Stats()

	d1 := mid.Delta(before)
	d2 := after.Delta(mid)
	if d1.BlocksOut != 4 || d2.BlocksOut != 4 {
		t.Fatalf("deltas cover %d and %d blocks, want 4 and 4", d1.BlocksOut, d2.BlocksOut)
	}
	// The steady state is periodic: equal work costs equal cycles.
	if d1.Cycles != d2.Cycles || d1.Instructions != d2.Instructions {
		t.Errorf("equal work, unequal deltas: %+v vs %+v", d1, d2)
	}
}
