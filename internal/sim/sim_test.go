package sim

import (
	"testing"

	"cobra/internal/bits"
	"cobra/internal/datapath"
	"cobra/internal/isa"
)

// buildWords packs a decoded program.
func buildWords(prog []isa.Instr) []isa.Word {
	words := make([]isa.Word, len(prog))
	for i, in := range prog {
		words[i] = in.Pack()
	}
	return words
}

func newMachine(t *testing.T, window int) *Machine {
	t.Helper()
	m, err := New(datapath.BaseGeometry(), window)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsBadWindow(t *testing.T) {
	if _, err := New(datapath.BaseGeometry(), 0); err == nil {
		t.Error("expected error for window 0")
	}
}

func TestHaltStops(t *testing.T) {
	m := newMachine(t, 1)
	if err := m.LoadProgram(buildWords([]isa.Instr{{Op: isa.OpHalt}})); err != nil {
		t.Fatal(err)
	}
	reason, err := m.Run(Limits{})
	if err != nil || reason != StopHalted {
		t.Errorf("Run = %v, %v; want halted", reason, err)
	}
}

func TestRunawayProgramHitsCycleLimit(t *testing.T) {
	m := newMachine(t, 1)
	prog := []isa.Instr{
		{Op: isa.OpNop},
		{Op: isa.OpJmp, Data: 0},
	}
	if err := m.LoadProgram(buildWords(prog)); err != nil {
		t.Fatal(err)
	}
	reason, err := m.Run(Limits{MaxCycles: 100})
	if err != nil || reason != StopCycleLimit {
		t.Errorf("Run = %v, %v; want cycle limit", reason, err)
	}
	if m.Stats().Cycles != 100 {
		t.Errorf("cycles = %d, want 100", m.Stats().Cycles)
	}
}

func TestReadyWaitsForGo(t *testing.T) {
	m := newMachine(t, 1)
	prog := []isa.Instr{
		{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagReady}.Encode()},
		{Op: isa.OpHalt},
	}
	if err := m.LoadProgram(buildWords(prog)); err != nil {
		t.Fatal(err)
	}
	reason, err := m.Run(Limits{})
	if err != nil || reason != StopWaitGo {
		t.Fatalf("Run = %v, %v; want wait-go", reason, err)
	}
	// With go raised, execution resumes past the idle point.
	m.Go = true
	reason, err = m.Run(Limits{})
	if err != nil || reason != StopHalted {
		t.Errorf("resumed Run = %v, %v; want halted", reason, err)
	}
}

func TestReadyWithGoActiveContinues(t *testing.T) {
	// §3.4: if go is still active, a new operation commences immediately.
	m := newMachine(t, 1)
	m.Go = true
	prog := []isa.Instr{
		{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagReady}.Encode()},
		{Op: isa.OpHalt},
	}
	if err := m.LoadProgram(buildWords(prog)); err != nil {
		t.Fatal(err)
	}
	reason, err := m.Run(Limits{})
	if err != nil || reason != StopHalted {
		t.Errorf("Run = %v, %v; want halted without waiting", reason, err)
	}
}

// streamProgram configures column 0 to XOR an immediate key, raises
// ready/busy/data-valid, and streams blocks through the identity datapath.
func streamProgram(key uint32) []isa.Instr {
	return []isa.Instr{
		{Op: isa.OpCfgElem, Slice: isa.SliceAt(0, 0), Elem: isa.ElemA1,
			Data: isa.ACfg{Op: isa.AXor, Operand: isa.SrcImm, Imm: key}.Encode()},
		{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagReady}.Encode()},
		{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagBusy | isa.FlagDValid, Clear: isa.FlagReady}.Encode()},
		{Op: isa.OpNop},
		{Op: isa.OpJmp, Data: 3},
	}
}

func TestStreamingEncryptsQueuedBlocks(t *testing.T) {
	m := newMachine(t, 1)
	if err := m.LoadProgram(buildWords(streamProgram(0xa5a5a5a5))); err != nil {
		t.Fatal(err)
	}
	reason, err := m.Run(Limits{})
	if err != nil || reason != StopWaitGo {
		t.Fatalf("setup Run = %v, %v", reason, err)
	}
	inputs := []bits.Block128{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	}
	m.PushInput(inputs...)
	m.Go = true
	reason, err = m.Run(Limits{StopAfterOutputs: len(inputs)})
	if err != nil || reason != StopOutputs {
		t.Fatalf("stream Run = %v, %v", reason, err)
	}
	outs := m.Outputs()
	if len(outs) != len(inputs) {
		t.Fatalf("got %d outputs", len(outs))
	}
	for i, in := range inputs {
		want := in
		want[0] ^= 0xa5a5a5a5
		if outs[i] != want {
			t.Errorf("block %d: got %v, want %v", i, outs[i], want)
		}
	}
	st := m.Stats()
	if st.BlocksIn != 3 || st.BlocksOut != 3 {
		t.Errorf("stats blocks in/out = %d/%d", st.BlocksIn, st.BlocksOut)
	}
}

func TestInputStarvationStalls(t *testing.T) {
	m := newMachine(t, 1)
	m.Go = true
	if err := m.LoadProgram(buildWords(streamProgram(0))); err != nil {
		t.Fatal(err)
	}
	// No inputs queued: every cycle in external mode stalls.
	reason, err := m.Run(Limits{MaxCycles: 50})
	if err != nil || reason != StopCycleLimit {
		t.Fatalf("Run = %v, %v", reason, err)
	}
	st := m.Stats()
	if st.Advanced != 0 {
		t.Errorf("advanced %d cycles with no input", st.Advanced)
	}
	if st.Stalled != st.Cycles {
		t.Errorf("stalled=%d cycles=%d", st.Stalled, st.Cycles)
	}
}

func TestWindowGroupsInstructionsPerCycle(t *testing.T) {
	// With window=4, four instructions execute per datapath cycle.
	m := newMachine(t, 4)
	prog := []isa.Instr{
		{Op: isa.OpNop}, {Op: isa.OpNop}, {Op: isa.OpNop}, {Op: isa.OpNop},
		{Op: isa.OpNop}, {Op: isa.OpNop}, {Op: isa.OpNop}, {Op: isa.OpNop},
		{Op: isa.OpHalt},
	}
	if err := m.LoadProgram(buildWords(prog)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(Limits{}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Cycles != 2 {
		t.Errorf("cycles = %d, want 2 (8 NOPs / window 4)", st.Cycles)
	}
	if st.Nops != 8 || st.Instructions != 9 {
		t.Errorf("nops=%d instructions=%d", st.Nops, st.Instructions)
	}
}

func TestOverfullReconfigurationUnderDisabledOutputs(t *testing.T) {
	// Iterative feedback operation: seed a block, loop it through the
	// array three passes with a per-pass reconfiguration executed under
	// disabled outputs (§3.4 overfull handling), then collect.
	m := newMachine(t, 1)
	add1 := isa.BCfg{Mode: isa.BAdd, Width: 2, Operand: isa.SrcImm, Imm: 1}.Encode()
	prog := []isa.Instr{
		// Setup: column 0 row 0 adds 1 per pass; consume external block.
		{Op: isa.OpCfgElem, Slice: isa.SliceAt(0, 0), Elem: isa.ElemB, Data: add1},
		{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagReady}.Encode()},
		{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagBusy, Clear: isa.FlagReady}.Encode()},
		{Op: isa.OpNop}, // pass 1: consumes the external block
		// Switch to feedback; reconfigure under disabled outputs.
		{Op: isa.OpDisOut, Slice: isa.SliceAll()},
		{Op: isa.OpCfgInMux, Data: isa.InMuxCfg{Mode: isa.InFeedback}.Encode()},
		{Op: isa.OpCfgElem, Slice: isa.SliceAt(0, 0), Elem: isa.ElemB, Data: isa.BCfg{
			Mode: isa.BAdd, Width: 2, Operand: isa.SrcImm, Imm: 10}.Encode()},
		{Op: isa.OpEnOut, Slice: isa.SliceAll()}, // pass 2 happens this cycle
		// Pass 3 with data-valid raised so its result is collected.
		{Op: isa.OpDisOut, Slice: isa.SliceAll()},
		{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagDValid}.Encode()},
		{Op: isa.OpEnOut, Slice: isa.SliceAll()}, // pass 3
		{Op: isa.OpHalt},
	}
	if err := m.LoadProgram(buildWords(prog)); err != nil {
		t.Fatal(err)
	}
	if reason, err := m.Run(Limits{}); err != nil || reason != StopWaitGo {
		t.Fatalf("setup Run = %v, %v", reason, err)
	}
	m.Go = true
	m.PushInput(bits.Block128{100, 0, 0, 0})
	if reason, err := m.Run(Limits{}); err != nil || reason != StopHalted {
		t.Fatalf("Run = %v, %v", reason, err)
	}
	outs := m.Outputs()
	if len(outs) != 1 {
		t.Fatalf("got %d outputs, want 1", len(outs))
	}
	// Pass 1: +1 = 101; pass 2: +10 = 111; pass 3: +10 = 121.
	if outs[0][0] != 121 {
		t.Errorf("output = %d, want 121", outs[0][0])
	}
	st := m.Stats()
	if st.Stalled == 0 {
		t.Error("expected stall cycles from the disabled-output reconfiguration")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Cycles: 1, Advanced: 2, Stalled: 3, Instructions: 4, Nops: 5, BlocksIn: 6, BlocksOut: 7}
	b := a
	a.Add(b)
	want := Stats{Cycles: 2, Advanced: 4, Stalled: 6, Instructions: 8, Nops: 10, BlocksIn: 12, BlocksOut: 14}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

func TestResetStatsAndClearOutputs(t *testing.T) {
	m := newMachine(t, 1)
	m.Go = true
	if err := m.LoadProgram(buildWords(streamProgram(0))); err != nil {
		t.Fatal(err)
	}
	m.PushInput(bits.Block128{1})
	if _, err := m.Run(Limits{StopAfterOutputs: 1}); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	m.ClearOutputs()
	if m.Stats() != (Stats{}) || len(m.Outputs()) != 0 {
		t.Error("reset/clear did not empty state")
	}
}

func TestTraceCallback(t *testing.T) {
	m := newMachine(t, 1)
	var seen []isa.Opcode
	m.Trace = func(addr int, in isa.Instr) { seen = append(seen, in.Op) }
	if err := m.LoadProgram(buildWords([]isa.Instr{{Op: isa.OpNop}, {Op: isa.OpHalt}})); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(Limits{}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != isa.OpNop || seen[1] != isa.OpHalt {
		t.Errorf("trace = %v", seen)
	}
}

func TestExecuteErrorsCarryAddress(t *testing.T) {
	m := newMachine(t, 1)
	// Configure D on a plain RCE: must fail with context.
	bad := isa.Instr{Op: isa.OpCfgElem, Slice: isa.SliceAt(0, 0), Elem: isa.ElemD,
		Data: isa.DCfg{Mode: isa.DSquare}.Encode()}
	if err := m.LoadProgram(buildWords([]isa.Instr{bad})); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(Limits{}); err == nil {
		t.Error("expected execution error for bad microcode")
	}
}

func TestDatapathMHz(t *testing.T) {
	if got := DatapathMHz(200, 1); got != 100 {
		t.Errorf("DatapathMHz(200,1) = %v", got)
	}
	if got := DatapathMHz(200, 4); got != 25 {
		t.Errorf("DatapathMHz(200,4) = %v", got)
	}
}

func TestStopReasonStrings(t *testing.T) {
	for r := StopHalted; r <= StopCycleLimit; r++ {
		if r.String() == "?" {
			t.Errorf("missing name for reason %d", r)
		}
	}
	if StopReason(99).String() != "?" {
		t.Error("unknown reason should stringify to ?")
	}
}

// TestCaptureAndPlaybackProgram exercises the eRAM intermediate-value path
// end to end in microcode: capture three streamed blocks into bank 3, then
// play them back through the array with a different configuration.
func TestCaptureAndPlaybackProgram(t *testing.T) {
	m := newMachine(t, 1)
	m.Go = true
	prog := []isa.Instr{
		// Configure all four capture ports under disabled outputs so no
		// block is consumed before every column is armed.
		{Op: isa.OpDisOut, Slice: isa.SliceAll()},
		{Op: isa.OpCfgCapture, Slice: isa.SliceCol(0),
			Data: isa.CaptureCfg{Enabled: true, Bank: 3}.Encode()},
		{Op: isa.OpCfgCapture, Slice: isa.SliceCol(1),
			Data: isa.CaptureCfg{Enabled: true, Bank: 3}.Encode()},
		{Op: isa.OpCfgCapture, Slice: isa.SliceCol(2),
			Data: isa.CaptureCfg{Enabled: true, Bank: 3}.Encode()},
		{Op: isa.OpCfgCapture, Slice: isa.SliceCol(3),
			Data: isa.CaptureCfg{Enabled: true, Bank: 3}.Encode()},
		// Stream three external blocks through the identity array.
		{Op: isa.OpEnOut, Slice: isa.SliceAll()},
		{Op: isa.OpNop}, {Op: isa.OpNop},
		// Stop capturing; reconfigure col0 to add 100; play back.
		{Op: isa.OpDisOut, Slice: isa.SliceAll()},
		{Op: isa.OpCfgCapture, Slice: isa.SliceCol(0), Data: isa.CaptureCfg{}.Encode()},
		{Op: isa.OpCfgCapture, Slice: isa.SliceCol(1), Data: isa.CaptureCfg{}.Encode()},
		{Op: isa.OpCfgCapture, Slice: isa.SliceCol(2), Data: isa.CaptureCfg{}.Encode()},
		{Op: isa.OpCfgCapture, Slice: isa.SliceCol(3), Data: isa.CaptureCfg{}.Encode()},
		{Op: isa.OpCfgElem, Slice: isa.SliceAt(0, 0), Elem: isa.ElemB, Data: isa.BCfg{
			Mode: isa.BAdd, Width: 2, Operand: isa.SrcImm, Imm: 100}.Encode()},
		{Op: isa.OpCfgInMux, Data: isa.InMuxCfg{Mode: isa.InERAM, Bank: 3}.Encode()},
		{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagDValid}.Encode()},
		{Op: isa.OpEnOut, Slice: isa.SliceAll()},
		{Op: isa.OpNop}, {Op: isa.OpNop},
		{Op: isa.OpHalt},
	}
	if err := m.LoadProgram(buildWords(prog)); err != nil {
		t.Fatal(err)
	}
	m.PushInput(
		bits.Block128{1, 2, 3, 4},
		bits.Block128{5, 6, 7, 8},
		bits.Block128{9, 10, 11, 12},
	)
	if reason, err := m.Run(Limits{}); err != nil || reason != StopHalted {
		t.Fatalf("Run = %v, %v", reason, err)
	}
	outs := m.Outputs()
	if len(outs) != 3 {
		t.Fatalf("outputs = %d, want 3 played-back blocks", len(outs))
	}
	for i, want := range []bits.Block128{{101, 2, 3, 4}, {105, 6, 7, 8}, {109, 10, 11, 12}} {
		if outs[i] != want {
			t.Errorf("playback %d = %v, want %v", i, outs[i], want)
		}
	}
}

func TestDirtyAndPendingInputs(t *testing.T) {
	m := newMachine(t, 1)
	if err := m.LoadProgram(buildWords([]isa.Instr{{Op: isa.OpNop}, {Op: isa.OpHalt}})); err != nil {
		t.Fatal(err)
	}
	if m.Dirty() {
		t.Error("fresh machine must not be dirty")
	}
	m.PushInput(bits.Block128{1}, bits.Block128{2})
	if m.PendingInputs() != 2 {
		t.Errorf("pending = %d", m.PendingInputs())
	}
	if _, err := m.Run(Limits{}); err != nil {
		t.Fatal(err)
	}
	if !m.Dirty() {
		t.Error("machine must be dirty after Run")
	}
	if m.PendingInputs() != 1 {
		t.Errorf("pending after one tick = %d", m.PendingInputs())
	}
}

func TestStopAfterInputs(t *testing.T) {
	m := newMachine(t, 1)
	m.Go = true
	prog := []isa.Instr{
		{Op: isa.OpNop},
		{Op: isa.OpJmp, Data: 0},
	}
	if err := m.LoadProgram(buildWords(prog)); err != nil {
		t.Fatal(err)
	}
	m.PushInput(bits.Block128{1}, bits.Block128{2}, bits.Block128{3})
	reason, err := m.Run(Limits{StopAfterInputs: 2})
	if err != nil || reason != StopInputs {
		t.Fatalf("Run = %v, %v; want inputs consumed", reason, err)
	}
	if m.Stats().BlocksIn != 2 || m.PendingInputs() != 1 {
		t.Errorf("blocks in = %d, pending = %d", m.Stats().BlocksIn, m.PendingInputs())
	}
	// The count is per call.
	reason, err = m.Run(Limits{StopAfterInputs: 1})
	if err != nil || reason != StopInputs {
		t.Fatalf("second Run = %v, %v", reason, err)
	}
	if m.Stats().BlocksIn != 3 {
		t.Errorf("cumulative blocks in = %d", m.Stats().BlocksIn)
	}
}

func TestExecuteShufAndERAMOps(t *testing.T) {
	// Exercise the remaining opcode dispatch arms through the machine.
	m := newMachine(t, 1)
	prog := []isa.Instr{
		{Op: isa.OpCfgShuf, Slice: isa.SliceRow(0),
			Data: isa.ShufCfg{Perm: [8]uint8{4, 1, 2, 3, 0, 5, 6, 7}}.Encode()},
		{Op: isa.OpERAMWrite, Slice: isa.SliceCol(2),
			Data: isa.ERAMWriteCfg{Bank: 1, Addr: 9, Value: 0x1234}.Encode()},
		{Op: isa.OpLoadLUT, Slice: isa.SliceAt(0, 0), LUT: isa.LUTAddr(false, 0, 0), Data: 0xAB},
		{Op: isa.OpHalt},
	}
	if err := m.LoadProgram(buildWords(prog)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(Limits{}); err != nil {
		t.Fatal(err)
	}
	if m.Array.ReadERAM(2, 1, 9) != 0x1234 {
		t.Error("ERAMW did not land")
	}
	if m.Array.RCE(0, 0).LUT.S8[0][0] != 0xAB {
		t.Error("LUTLD did not land")
	}
	if m.Array.Shuffler(0)[0] != 4 {
		t.Error("SHUF did not land")
	}
	// Bad shuffler index surfaces as an execution error.
	bad := []isa.Instr{{Op: isa.OpCfgShuf, Slice: isa.SliceRow(99), Data: 0}}
	if err := m.LoadProgram(buildWords(bad)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(Limits{}); err == nil {
		t.Error("expected shuffler range error")
	}
}
