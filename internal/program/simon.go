package program

import (
	"fmt"

	"cobra/internal/cipher"
	"cobra/internal/isa"
)

// SIMON 64/128 on COBRA — a 2013 lightweight cipher the 2003 architecture
// was never designed for, mapped as a stress test of the paper's
// algorithm-agility claim. The round function needs only rotates, one AND
// and XORs, so a full round fits the A elements' pre-shift rotate path
// with the B adder, C LUT and D multiplier all idle:
//
//	row T:  t = (x <<< 1) & (x <<< 8) ^ (x <<< 2)     (even columns:
//	        E1 ROTL 1, A1 AND with pre-rotate 8, A2 XOR with pre-rotate 2)
//	row U:  x' = y ^ t ^ k_i  (even columns; y arrives as INB/IND, the raw
//	        t as the A operand); y' = x recovered from the bypass bus.
//
// Like GOST and RC5, two 64-bit blocks ride one superblock: block A
// (words x,y little-endian) in columns 0-1, block B in columns 2-3.

// aRotl builds an A-element config whose operand is pre-rotated left.
func aRotl(op isa.AOp, src isa.Src, rot uint8) uint64 {
	return isa.ACfg{Op: op, Operand: src, PreShift: rot, PreShiftRot: true}.Encode()
}

// simonRoundRows emits one SIMON round for both parallel blocks at rows
// (rt, rt+1).
func (b *builder) simonRoundRows(rt int) {
	ru := rt + 1
	for _, base := range []int{0, 2} {
		// Row T: t = f(x) in the even column; y passes in the odd one.
		s := isa.SliceAt(rt, base)
		b.cfge(s, isa.ElemE1, eImm(isa.ERotl, 1))
		b.cfge(s, isa.ElemA1, aRotl(isa.AAnd, isa.SrcINA, 8))
		b.cfge(s, isa.ElemA2, aRotl(isa.AXor, isa.SrcINA, 2))
		// Row U: x' = y ^ t ^ k in the even column. The odd word y is INB
		// for column 0 and IND for column 2; t is the column's own raw block.
		odd := uint8(1) // col0's INB = block 1
		if base == 2 {
			odd = 3 // col2's IND = block 3
		}
		b.insel(ru, base, odd)
		s = isa.SliceAt(ru, base)
		b.cfge(s, isa.ElemA1, aCfg(isa.AXor, isa.SrcINA))
		b.cfge(s, isa.ElemA2, aCfg(isa.AXor, isa.SrcINER))
		// y' = x, recovered from the one-row bypass.
		b.insel(ru, base+1, uint8(4+base)) // PA / PC
	}
}

// simonDecRoundRows emits one inverse SIMON round at rows (rt, rt+1): the
// Feistel mirror with x and y roles exchanged.
func (b *builder) simonDecRoundRows(rt int) {
	ru := rt + 1
	for _, base := range []int{0, 2} {
		// Row T: t = f(y) in the odd column; x passes in the even one.
		s := isa.SliceAt(rt, base+1)
		b.cfge(s, isa.ElemE1, eImm(isa.ERotl, 1))
		b.cfge(s, isa.ElemA1, aRotl(isa.AAnd, isa.SrcINA, 8))
		b.cfge(s, isa.ElemA2, aRotl(isa.AXor, isa.SrcINA, 2))
		// Row U: y' = x ^ t ^ k in the odd column.
		even := uint8(1) // col1's INB = block 0
		if base == 2 {
			even = 3 // col3's IND = block 2
		}
		b.insel(ru, base+1, even)
		s = isa.SliceAt(ru, base+1)
		b.cfge(s, isa.ElemA1, aCfg(isa.AXor, isa.SrcINA))
		b.cfge(s, isa.ElemA2, aCfg(isa.AXor, isa.SrcINER))
		// x' = y, recovered from the one-row bypass.
		b.insel(ru, base, uint8(4+base+1)) // PB / PD
	}
}

// buildSIMON shares the skeleton of the two directions: 2 rows per round,
// key schedule in bank 0, no whitening.
func buildSIMON(key []byte, hw int, decrypt bool) (*Program, error) {
	ck, err := cipher.NewSIMON64(key)
	if err != nil {
		return nil, err
	}
	k := ck.RoundKeys()
	rounds := cipher.SIMON64Rounds

	full := hw == rounds
	geo, passes, err := validateUnroll("simon64", hw, rounds, 2, 0)
	if err != nil {
		return nil, err
	}
	if geo.Rows < 4 {
		geo.Rows = 4 // the paper's base architecture is the minimum build
	}

	name := fmt.Sprintf("simon64-%d", hw)
	if decrypt {
		name = fmt.Sprintf("simon64-dec-%d", hw)
	}
	p := &Program{
		Name:        name,
		Cipher:      "simon64",
		HWRounds:    hw,
		TotalRounds: rounds,
		Geometry:    geo,
		Window:      1,
		Streaming:   full,
	}
	b := &builder{}
	b.disout()

	// The key-consuming columns: even for encryption, odd for decryption.
	kcols := []int{0, 2}
	if decrypt {
		kcols = []int{1, 3}
	}
	for st := 0; st < hw; st++ {
		if decrypt {
			b.simonDecRoundRows(2 * st)
		} else {
			b.simonRoundRows(2 * st)
		}
	}
	for i := 0; i < rounds; i++ {
		for _, c := range kcols {
			b.eramw(c, 0, i, k[i])
		}
	}

	var regs []int
	for st := 0; st < hw; st++ {
		if full || st < hw-1 {
			regs = append(regs, 2*st+1)
		}
	}
	for _, row := range regs {
		b.regRow(row, true)
	}

	// round returns the schedule index stage st serves on pass `pass`.
	round := func(pass, st int) int {
		if decrypt {
			return rounds - 1 - (pass*hw + st)
		}
		return pass*hw + st
	}

	if full {
		p.PipelineDepth = len(regs)
		for st := 0; st < hw; st++ {
			b.erRow(2*st+1, 0, round(0, st))
		}
		b.streamingFlow(len(regs))
		p.Instrs = b.ins
		return p, nil
	}

	b.iterativeFlow(len(regs)+1, passes, iterHooks{
		EveryPass: func(b *builder, pass int) {
			for st := 0; st < hw; st++ {
				b.erRow(2*st+1, 0, round(pass, st))
			}
		},
	})
	p.Instrs = b.ins
	return p, nil
}

// BuildSIMON compiles SIMON 64/128 encryption at unroll depth hw (any
// divisor of the 44 rounds; 44 streams one superblock per cycle).
func BuildSIMON(key []byte, hw int) (*Program, error) {
	return buildSIMON(key, hw, false)
}

// BuildSIMONDecrypt compiles SIMON 64/128 decryption at unroll depth hw.
func BuildSIMONDecrypt(key []byte, hw int) (*Program, error) {
	return buildSIMON(key, hw, true)
}
