// Package bench regenerates every table and figure of the paper's
// evaluation: the prior-work FPGA comparison (Table 1), the block-cipher
// operation census (Table 2), the measured COBRA performance sweep
// (Table 3), the element and architecture gate counts (Tables 4 and 5),
// the cycle-gates product (Table 6), and textual renderings of the
// architecture figures. The cobra-bench command and the top-level
// benchmark suite are thin wrappers over this package.
package bench

// This file holds literature data quoted by the paper: the AES-finalist
// FPGA implementation studies of Table 1 and the "Equivalent FPGA
// Throughput" column of Table 3 (reference [11], Elbirt et al., IEEE TVLSI
// 2001, Xilinx Virtex XCV1000). These are citations, not measurements, in
// the paper as well; a zero value renders as "•" exactly as the paper
// prints missing entries.

// Table1Row is one AES finalist's throughput across the five studies.
type Table1Row struct {
	Alg   string
	NFB14 float64 // non-feedback mode, Gaj & Chodowiec [14]
	NFB11 float64 // non-feedback mode, Elbirt et al. [11]
	FB11  float64 // feedback mode, Elbirt et al. [11]
	FB8   float64 // feedback mode, Dandalis et al. [8]
	FB14  float64 // feedback mode, Gaj & Chodowiec [14]
	FB13  float64 // feedback mode, Altera study [13]
}

// Table1 returns the published AES-finalist FPGA study results (Mbps).
func Table1() []Table1Row {
	return []Table1Row{
		{Alg: "MARS", FB8: 101.88, FB14: 61.0},
		{Alg: "RC6", NFB14: 13100, NFB11: 2400, FB11: 126.5, FB8: 112.87, FB14: 142.7},
		{Alg: "Rijndael", NFB14: 12200, NFB11: 1940, FB11: 300.1, FB8: 353.00, FB14: 414.2, FB13: 232.7},
		{Alg: "Serpent", NFB14: 16800, NFB11: 5040, FB11: 444.2, FB8: 148.95, FB14: 431.4, FB13: 125.5},
		{Alg: "Twofish", NFB14: 15200, NFB11: 2400, FB11: 127.7, FB8: 173.06, FB14: 177.3, FB13: 81.5},
	}
}

// fpgaEquivalent is Table 3's "Equivalent FPGA Throughput (Mbps) [11]"
// column, keyed by algorithm and unroll depth; 0 renders as "•".
var fpgaEquivalent = map[string]map[int]float64{
	"rc6":      {1: 250.0, 2: 497.4, 4: 891.3, 5: 1067.0, 10: 2397.9},
	"rijndael": {1: 294.2, 2: 575.3, 5: 1165.8},
	"serpent":  {1: 77.0, 8: 1241.6, 32: 5035.0},
}

// FPGAEquivalentMbps returns the published Virtex XCV1000 throughput for a
// configuration, or 0 when the paper prints none.
func FPGAEquivalentMbps(alg string, rounds int) float64 {
	return fpgaEquivalent[alg][rounds]
}

// PaperTable3 is the paper's own Table 3 measurement set, kept for the
// paper-vs-measured comparison in EXPERIMENTS.md and the -compare output.
type PaperTable3Row struct {
	Alg     string
	Rounds  int
	Cycles  int
	FreqMHz float64
	Mbps    float64
}

// PaperTable3 returns the published COBRA performance numbers.
func PaperTable3() []PaperTable3Row {
	return []PaperTable3Row{
		{"rc6", 1, 145, 60.975, 53.83},
		{"rc6", 2, 73, 60.975, 106.92},
		{"rc6", 4, 38, 60.975, 205.39},
		{"rc6", 5, 30, 60.975, 260.16},
		{"rc6", 10, 15, 60.975, 520.32},
		{"rc6", 20, 2, 60.975, 3902.40},
		{"rijndael", 1, 57, 102.041, 229.14},
		{"rijndael", 2, 22, 102.041, 593.69},
		{"rijndael", 5, 22, 102.041, 593.69},
		{"rijndael", 10, 9, 102.041, 1451.25},
		{"serpent", 1, 273, 54.054, 25.34},
		{"serpent", 8, 35, 54.054, 197.68},
		{"serpent", 16, 56, 54.054, 123.55},
		{"serpent", 32, 3, 54.054, 2306.30},
	}
}

// PaperTable6 is the paper's published cycle-gates data for comparison.
type PaperTable6Row struct {
	Alg    string
	Rounds int
	Cycles int
	Gates  int
	NormCG float64
}

// PaperTable6 returns the published CG-product rows.
func PaperTable6() []PaperTable6Row {
	return []PaperTable6Row{
		{"rc6", 1, 145, 6691514, 13.477},
		{"rc6", 2, 73, 6691514, 6.785},
		{"rc6", 4, 38, 9544240, 5.038},
		{"rc6", 5, 30, 11197598, 4.666},
		{"rc6", 10, 15, 19464388, 4.055},
		{"rc6", 20, 2, 35997968, 1.000},
		{"rijndael", 1, 57, 6691514, 2.591},
		{"rijndael", 2, 22, 6691514, 1.000},
		{"rijndael", 5, 22, 13970782, 2.088},
		{"rijndael", 10, 9, 27783940, 1.699},
		{"serpent", 1, 273, 6691514, 5.140},
		{"serpent", 8, 35, 29736440, 2.928},
		{"serpent", 16, 56, 59315256, 9.346},
		{"serpent", 32, 3, 118472888, 1.000},
	}
}

// ATMRequirementMbps is the headline requirement the paper evaluates
// against: 622 Mbps ATM network encryption (§1).
const ATMRequirementMbps = 622
