package program

import (
	"bytes"
	"testing"
	"testing/quick"

	"cobra/internal/cipher"
)

// rc5Depths are every unroll depth that divides the 12 rounds.
var rc5Depths = []int{1, 2, 3, 4, 6, 12}

func TestRC5OnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewRC5(testKey)
	if err != nil {
		t.Fatal(err)
	}
	want := refEncryptECB(t, ref, testPlain) // 8 RC5 blocks in 4 superblocks
	for _, hw := range rc5Depths {
		p, err := BuildRC5(testKey, hw, cipher.RC5Rounds)
		if err != nil {
			t.Fatalf("rc5-%d: %v", hw, err)
		}
		got, stats := cobraEncryptECB(t, p, testPlain)
		if !bytes.Equal(got, want) {
			t.Errorf("rc5-%d: ciphertext mismatch\n got %x\nwant %x", hw, got, want)
		}
		perBlock := float64(stats.Cycles) / float64(len(testPlain)/8)
		t.Logf("rc5-%d: %.1f cycles per 64-bit block (%d cycles)", hw, perBlock, stats.Cycles)
	}
}

func TestRC5DecryptOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewRC5(testKey)
	if err != nil {
		t.Fatal(err)
	}
	ct := refEncryptECB(t, ref, testPlain)
	for _, hw := range rc5Depths {
		p, err := BuildRC5Decrypt(testKey, hw, cipher.RC5Rounds)
		if err != nil {
			t.Fatalf("rc5-dec-%d: %v", hw, err)
		}
		got, _ := cobraEncryptECB(t, p, ct)
		if !bytes.Equal(got, testPlain) {
			t.Errorf("rc5-dec-%d: plaintext mismatch\n got %x\nwant %x", hw, got, testPlain)
		}
	}
}

func TestRC5OnCOBRARandomized(t *testing.T) {
	f := func(key [16]byte, sb [16]byte) bool {
		ref, err := cipher.NewRC5(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 16)
		ref.Encrypt(want[0:], sb[0:])
		ref.Encrypt(want[8:], sb[8:])
		p, err := BuildRC5(key[:], 2, cipher.RC5Rounds)
		if err != nil {
			return false
		}
		m, err := NewMachine(p)
		if err != nil {
			return false
		}
		if err := Load(m, p); err != nil {
			return false
		}
		got, _, err := EncryptBytes(m, p, sb[:])
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestRC5UnrollRejectsBadDepth(t *testing.T) {
	if _, err := BuildRC5(testKey, 5, cipher.RC5Rounds); err == nil {
		t.Error("expected error: 5 does not divide 12")
	}
	if _, err := BuildRC5Decrypt(testKey, 0, cipher.RC5Rounds); err == nil {
		t.Error("expected error for depth 0")
	}
	if _, err := BuildRC5(nil, 2, cipher.RC5Rounds); err == nil {
		t.Error("expected key size error")
	}
}
