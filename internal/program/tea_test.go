package program

import (
	"bytes"
	"testing"
	"testing/quick"

	"cobra/internal/cipher"
)

// teaDepths are every unroll depth that divides the 32 rounds.
var teaDepths = []int{1, 2, 4, 8, 16, 32}

// be64Pack packs 8-byte big-endian-word cipher blocks into superblocks,
// one block per superblock in words 0,1 (scratch lanes zeroed).
func be64Pack(blocks []byte) []byte {
	n := len(blocks) / 8
	out := make([]byte, 16*n)
	for i := 0; i < n; i++ {
		copy(out[16*i:], blocks[8*i:8*i+8])
		SwapWords32(out[16*i : 16*i+8])
	}
	return out
}

// be64Unpack extracts the 8-byte payloads back out of superblocks.
func be64Unpack(sbs []byte) []byte {
	n := len(sbs) / 16
	out := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		copy(out[8*i:], sbs[16*i:16*i+8])
		SwapWords32(out[8*i : 8*i+8])
	}
	return out
}

func TestTEAOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewTEA(testKey)
	if err != nil {
		t.Fatal(err)
	}
	want := refEncryptECB(t, ref, testPlain) // 8 TEA blocks, one per superblock
	for _, hw := range teaDepths {
		p, err := BuildTEA(testKey, hw)
		if err != nil {
			t.Fatalf("tea-%d: %v", hw, err)
		}
		got, stats := cobraEncryptECB(t, p, be64Pack(testPlain))
		if !bytes.Equal(be64Unpack(got), want) {
			t.Errorf("tea-%d: ciphertext mismatch\n got %x\nwant %x", hw, be64Unpack(got), want)
		}
		perBlock := float64(stats.Cycles) / float64(len(testPlain)/8)
		t.Logf("tea-%d: %.1f cycles per 64-bit block (%d cycles)", hw, perBlock, stats.Cycles)
	}
}

func TestTEADecryptOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewTEA(testKey)
	if err != nil {
		t.Fatal(err)
	}
	ct := refEncryptECB(t, ref, testPlain)
	for _, hw := range teaDepths {
		p, err := BuildTEADecrypt(testKey, hw)
		if err != nil {
			t.Fatalf("tea-dec-%d: %v", hw, err)
		}
		got, _ := cobraEncryptECB(t, p, be64Pack(ct))
		if !bytes.Equal(be64Unpack(got), testPlain) {
			t.Errorf("tea-dec-%d: plaintext mismatch\n got %x\nwant %x", hw, be64Unpack(got), testPlain)
		}
	}
}

func TestTEAOnCOBRARandomized(t *testing.T) {
	f := func(key [16]byte, blk [8]byte) bool {
		ref, err := cipher.NewTEA(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 8)
		ref.Encrypt(want, blk[:])
		p, err := BuildTEA(key[:], 2)
		if err != nil {
			return false
		}
		m, err := NewMachine(p)
		if err != nil {
			return false
		}
		if err := Load(m, p); err != nil {
			return false
		}
		got, _, err := EncryptBytes(m, p, be64Pack(blk[:]))
		return err == nil && bytes.Equal(be64Unpack(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestTEAUnrollRejectsBadDepth(t *testing.T) {
	if _, err := BuildTEA(testKey, 3); err == nil {
		t.Error("expected error: 3 does not divide 32")
	}
	if _, err := BuildTEADecrypt(testKey, 0); err == nil {
		t.Error("expected error for depth 0")
	}
	if _, err := BuildTEA(make([]byte, 8), 2); err == nil {
		t.Error("expected key size error")
	}
}
