package program

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// deprecatedFuncs are the pre-Run entry points kept only as wrappers.
var deprecatedFuncs = map[string]bool{
	"Encrypt":          true,
	"EncryptInto":      true,
	"EncryptBytes":     true,
	"EncryptBytesInto": true,
	"EncryptFastInto":  true,
}

// TestNoDeprecatedProgramCallers walks the whole module and fails on any
// call to a deprecated program.* entry point outside this package (whose
// own files define and test the wrappers). This is the repo's guarantee
// that the Run consolidation actually migrated every caller — staticcheck
// flags such calls too, but only when it runs; this keeps the gate inside
// `go test ./...`.
func TestNoDeprecatedProgramCallers(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	self, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || path == self {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		// Resolve the local name the program package is imported under.
		pkgName := ""
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p != "cobra/internal/program" {
				continue
			}
			pkgName = "program"
			if imp.Name != nil {
				pkgName = imp.Name.Name
			}
		}
		if pkgName == "" || pkgName == "_" {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != pkgName || !deprecatedFuncs[sel.Sel.Name] {
				return true
			}
			rel, _ := filepath.Rel(root, path)
			t.Errorf("%s:%d: call to deprecated program.%s — use program.Run/RunBytes",
				rel, fset.Position(call.Pos()).Line, sel.Sel.Name)
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
