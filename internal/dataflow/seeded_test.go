package dataflow_test

import (
	"testing"

	"cobra/internal/dataflow"
	"cobra/internal/isa"
	"cobra/internal/vet"
)

// Instruction construction helpers for seeded-defect programs (window 1,
// base geometry: every instruction is followed by one datapath cycle).

func flag(set, clear uint16) isa.Instr {
	return isa.Instr{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: set, Clear: clear}.Encode()}
}

func halt() isa.Instr { return isa.Instr{Op: isa.OpHalt} }

func cfge(s isa.Slice, e isa.Elem, data uint64) isa.Instr {
	return isa.Instr{Op: isa.OpCfgElem, Slice: s, Elem: e, Data: data}
}

func eramw(col, bank, addr int, v uint32) isa.Instr {
	return isa.Instr{Op: isa.OpERAMWrite, Slice: isa.SliceCol(col),
		Data: isa.ERAMWriteCfg{Bank: uint8(bank), Addr: uint8(addr), Value: v}.Encode()}
}

func white(col int, mode isa.WhiteMode, key uint32) isa.Instr {
	return isa.Instr{Op: isa.OpCfgWhite,
		Data: isa.WhiteCfg{Col: uint8(col), Mode: mode, Key: key}.Encode()}
}

func inmux(mode isa.InMuxMode, bank, addr int) isa.Instr {
	return isa.Instr{Op: isa.OpCfgInMux,
		Data: isa.InMuxCfg{Mode: mode, Bank: uint8(bank), Addr: uint8(addr)}.Encode()}
}

// whitenAll XORs a key word onto every column's output so taint-no-key
// stays out of tests that target other analyzers.
func whitenAll() []isa.Instr {
	var out []isa.Instr
	for c := 0; c < 4; c++ {
		out = append(out, white(c, isa.WhiteXor, 0xdeadbeef))
	}
	return out
}

func analyze(t *testing.T, prog []isa.Instr) *dataflow.Result {
	t.Helper()
	res := dataflow.Analyze(prog, dataflow.Config{})
	if !res.Complete {
		t.Fatalf("abstract walk did not close; findings: %v", res.Findings)
	}
	return res
}

// requireFinding asserts a finding with the code and severity exists at the
// address.
func requireFinding(t *testing.T, res *dataflow.Result, code string, sev vet.Severity, addr int) {
	t.Helper()
	for _, f := range res.Findings {
		if f.Code == code && f.Addr == addr {
			if f.Sev != sev {
				t.Errorf("%s at %04x has severity %v, want %v", code, addr, f.Sev, sev)
			}
			return
		}
	}
	t.Errorf("missing finding %s at %04x; got %v", code, addr, res.Findings)
}

// requireNoCode asserts no finding carries the code.
func requireNoCode(t *testing.T, res *dataflow.Result, code string) {
	t.Helper()
	for _, f := range res.Findings {
		if f.Code == code {
			t.Errorf("unexpected %s finding: %s", code, f)
		}
	}
}

// TestSeededUninitRead reads a never-written eRAM cell into the ciphertext:
// r0.c0's A1 element XORs INER with ER pointed at bank 1, address 7, which
// nothing ever writes. The finding lands on the consuming element's
// configuration word.
func TestSeededUninitRead(t *testing.T) {
	prog := []isa.Instr{
		0: flag(isa.FlagReady, 0),
		1: cfge(isa.SliceAt(0, 0), isa.ElemER, isa.ERCfg{Bank: 1, Addr: 7}.Encode()),
		2: cfge(isa.SliceAt(0, 0), isa.ElemA1,
			isa.ACfg{Op: isa.AXor, Operand: isa.SrcINER}.Encode()),
	}
	prog = append(prog, whitenAll()...)
	prog = append(prog,
		flag(isa.FlagDValid, 0),
		isa.Instr{Op: isa.OpNop},
		halt(),
	)
	res := analyze(t, prog)
	requireFinding(t, res, "uninit-read", vet.Error, 2)
	if len(res.UninitReads) != 1 || res.UninitReads[0].Col != 0 ||
		res.UninitReads[0].Bank != 1 || res.UninitReads[0].Addr != 7 {
		t.Errorf("UninitReads = %v, want exactly c0.b1[7]", res.UninitReads)
	}
}

// TestSeededUninitRegister collects output while a registered row still
// holds its power-up contents: r0 is registered and DVALID is raised on the
// very first cycle, so the first collected block carries the register's
// power-up value.
func TestSeededUninitRegister(t *testing.T) {
	prog := []isa.Instr{flag(isa.FlagReady, 0)}
	prog = append(prog, whitenAll()...)
	prog = append(prog, flag(isa.FlagDValid, 0))
	regCfg := len(prog)
	prog = append(prog,
		// The cycle following this configuration presents row 0's power-up
		// register contents with data-valid already raised.
		cfge(isa.SliceRow(0), isa.ElemReg, isa.RegCfg{Enabled: true}.Encode()),
		halt(),
	)
	res := analyze(t, prog)
	requireFinding(t, res, "uninit-read", vet.Error, regCfg)
	requireNoCode(t, res, "taint-no-key")
}

// TestSeededDeadStore stores a word into an eRAM cell nothing reads.
func TestSeededDeadStore(t *testing.T) {
	prog := []isa.Instr{
		0: flag(isa.FlagReady, 0),
		1: eramw(2, 3, 200, 0x12345678), // orphan write
	}
	prog = append(prog, whitenAll()...)
	prog = append(prog,
		flag(isa.FlagDValid, 0),
		isa.Instr{Op: isa.OpNop},
		halt(),
	)
	res := analyze(t, prog)
	requireFinding(t, res, "dead-store", vet.Warn, 1)
	if len(res.DeadStores) != 1 || res.DeadStores[0] != 1 {
		t.Errorf("DeadStores = %v, want [1]", res.DeadStores)
	}
}

// TestSeededTaintNoKey drops the key load entirely: plaintext flows to the
// output with no whitening, no eRAM key material and no KEYREQ input, so
// every output word raises taint-no-key at the data-valid raise.
func TestSeededTaintNoKey(t *testing.T) {
	prog := []isa.Instr{
		0: flag(isa.FlagReady, 0),
		1: flag(isa.FlagDValid, 0),
		2: isa.Instr{Op: isa.OpNop},
		3: halt(),
	}
	res := analyze(t, prog)
	requireFinding(t, res, "taint-no-key", vet.Error, 1)
	requireNoCode(t, res, "taint-no-plain")
	if res.HasErrors() != true {
		t.Error("HasErrors() = false with taint errors present")
	}
}

// TestSeededTaintNoPlain plays key material from the eRAMs straight to the
// output: the ciphertext never depends on the plaintext.
func TestSeededTaintNoPlain(t *testing.T) {
	prog := []isa.Instr{flag(isa.FlagReady, 0)}
	for c := 0; c < 4; c++ {
		prog = append(prog, eramw(c, 0, 0, 0x1111), eramw(c, 0, 1, 0x2222))
	}
	// Playback reads address 0 on the cycle after the INMUX configuration
	// and address 1 on the data-valid cycle; the program halts before the
	// auto-incrementing counter walks into unwritten cells.
	prog = append(prog, inmux(isa.InERAM, 0, 0))
	dvalid := len(prog)
	prog = append(prog,
		flag(isa.FlagDValid, 0),
		halt(),
	)
	res := analyze(t, prog)
	requireFinding(t, res, "taint-no-plain", vet.Error, dvalid)
	requireNoCode(t, res, "taint-no-key")
	requireNoCode(t, res, "uninit-read")
}

// TestSeededDeadElement wires an active element's value into a dropped
// path: r0.c3's A1 XORs an immediate into the column, but row 1's column 3
// selects the previous row's input block via the bypass bus (INSEL = PD)
// and no other row-1 cell consumes block 3, so the element's output
// provably never reaches the ciphertext.
func TestSeededDeadElement(t *testing.T) {
	prog := []isa.Instr{
		0: flag(isa.FlagReady, 0),
		1: cfge(isa.SliceAt(0, 3), isa.ElemA1,
			isa.ACfg{Op: isa.AXor, Operand: isa.SrcImm, Imm: 0x55aa55aa}.Encode()),
		2: cfge(isa.SliceAt(1, 3), isa.ElemInsel, isa.InselCfg{Source: 7}.Encode()), // PD
	}
	prog = append(prog, whitenAll()...)
	prog = append(prog,
		flag(isa.FlagDValid, 0),
		isa.Instr{Op: isa.OpNop},
		halt(),
	)
	res := analyze(t, prog)
	requireFinding(t, res, "dead-element", vet.Warn, 1)
	if len(res.Dead) != 1 || res.Dead[0] != (dataflow.DeadElem{Row: 0, Col: 3, Elem: isa.ElemA1}) {
		t.Errorf("Dead = %v, want exactly r0.c3 A1", res.Dead)
	}
	if res.Gates.LiveElems != res.Gates.ConfiguredElems-1 {
		t.Errorf("gate report %+v: want exactly one dead element", res.Gates)
	}
	mask := res.DeadMask(4)
	if mask == nil || mask[0*4+3] != 1<<uint(isa.ElemA1) {
		t.Errorf("DeadMask = %v, want bit for r0.c3 A1", mask)
	}
}

// TestSeededExecFault: configuring the multiplier on a column without an
// RCE MUL is an execution fault, mirrored from the datapath's own check.
func TestSeededExecFault(t *testing.T) {
	prog := []isa.Instr{
		0: cfge(isa.SliceAt(0, 0), isa.ElemD, isa.DCfg{Mode: isa.DMul32, Operand: isa.SrcINB}.Encode()),
		1: halt(),
	}
	res := dataflow.Analyze(prog, dataflow.Config{})
	if res.Complete {
		t.Error("walk completed through an execution fault")
	}
	requireFinding(t, res, "exec-fault", vet.Error, 0)
}
