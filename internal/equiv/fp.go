package equiv

import (
	"fmt"

	"cobra/internal/bits"
	"cobra/internal/datapath"
	"cobra/internal/fastpath"
	"cobra/internal/isa"
)

// fpMaxSteps bounds the fastpath walk's tick count per validation, the
// counterpart of refMaxSteps.
const fpMaxSteps = 1 << 22

// gfRec is the recovered meaning of one compiled F-element table pair:
// either the (mode, consts) configuration whose defining GF(2^8) expression
// reproduces every entry, or — when no configuration does, i.e. the table
// is corrupted — the verbatim table interned for faithful witness
// evaluation.
type gfRec struct {
	ok     bool
	mode   uint32
	consts [4]uint8
	rawID  uint32
}

// fpWalker symbolically executes a compiled fastpath trace: the translated
// side of the validation. Control is fully static — the trace is a head
// segment followed by a repeating period — so the walker's control state is
// just (segment, position).
type fpWalker struct {
	a  *Arena
	tr *fastpath.Trace

	seg   int // 0: head, 1: period
	pos   int
	steps int

	inCount int
	reg     [][datapath.Cols]xid
	fb      [datapath.Cols]xid

	s8ids map[*[4][256]uint8]uint32
	s4ids map[*[4][128]uint8]uint32
	gfs   map[*[4][256]uint32]gfRec
}

func newFPWalker(a *Arena, tr *fastpath.Trace) (*fpWalker, error) {
	if len(tr.Period) == 0 {
		return nil, fmt.Errorf("equiv: trace has no periodic segment")
	}
	if len(tr.InitReg) != tr.Rows {
		return nil, fmt.Errorf("equiv: trace has %d register rows, want %d", len(tr.InitReg), tr.Rows)
	}
	w := &fpWalker{
		a:     a,
		tr:    tr,
		reg:   make([][datapath.Cols]xid, tr.Rows),
		s8ids: make(map[*[4][256]uint8]uint32),
		s4ids: make(map[*[4][128]uint8]uint32),
		gfs:   make(map[*[4][256]uint32]gfRec),
	}
	for r := range w.reg {
		for c := 0; c < datapath.Cols; c++ {
			w.reg[r][c] = a.Const(tr.InitReg[r][c])
		}
	}
	for c := 0; c < datapath.Cols; c++ {
		w.fb[c] = a.Const(tr.InitFB[c])
	}
	return w, nil
}

// nextOutput advances to the next emitted block: the head runs once, then
// the period repeats forever — the continuous-stream function the executor
// computes from its post-load state.
func (w *fpWalker) nextOutput() ([datapath.Cols]xid, error) {
	var zero [datapath.Cols]xid
	for {
		if w.steps >= fpMaxSteps {
			return zero, fmt.Errorf("equiv: fastpath walk exceeded %d cycles", fpMaxSteps)
		}
		w.steps++
		ticks := w.tr.Period
		if w.seg == 0 {
			ticks = w.tr.Head
		}
		if w.pos >= len(ticks) {
			w.seg, w.pos = 1, 0
			continue
		}
		ct := &ticks[w.pos]
		w.pos++
		out, emitted := w.tick(ct)
		if emitted {
			return out, nil
		}
	}
}

// tick mirrors Exec.runSeg for one compiled cycle.
func (w *fpWalker) tick(ct *fastpath.TraceTick) (out [datapath.Cols]xid, emitted bool) {
	if !ct.Enabled {
		return out, false
	}
	a := w.a
	var vec [datapath.Cols]xid
	switch ct.InMode {
	case isa.InExternal:
		for c := 0; c < datapath.Cols; c++ {
			vec[c] = a.Input(w.inCount, c)
		}
		w.inCount++
	case isa.InFeedback:
		vec = w.fb
	default:
		for c := 0; c < datapath.Cols; c++ {
			vec[c] = a.Const(ct.ERAMVec[c])
		}
	}
	for c := 0; c < datapath.Cols; c++ {
		vec[c] = traceWhiteExpr(a, vec[c], ct.WhiteIn[c])
	}

	prev := vec
	for r := range ct.Rows {
		row := &ct.Rows[r]
		if row.Shuffle != nil {
			vec = symShuffle(a, vec, row.Shuffle)
		}
		rowIn := vec
		var next [datapath.Cols]xid
		for c := 0; c < datapath.Cols; c++ {
			cell := &row.Cells[c]
			if cell.Passthrough {
				next[c] = vec[c]
				continue
			}
			if cell.RegOnly {
				next[c] = w.reg[r][c]
				continue
			}
			var x xid
			if cell.Insel < 4 {
				x = vec[cell.Insel]
			} else {
				x = prev[cell.Insel-4]
			}
			x = w.stepsExpr(cell.Steps, x, &vec)
			if cell.Reg {
				// Mirrors the executor's in-place swap: reg[r][c] is read
				// only by this cell within the cycle.
				next[c] = w.reg[r][c]
				w.reg[r][c] = x
			} else {
				next[c] = x
			}
		}
		vec = next
		prev = rowIn
	}

	for c := 0; c < datapath.Cols; c++ {
		vec[c] = traceWhiteExpr(a, vec[c], ct.WhiteOut[c])
	}
	w.fb = vec
	return vec, ct.Emit
}

// stepsExpr mirrors evalSteps: one compiled element chain over expressions.
func (w *fpWalker) stepsExpr(steps []fastpath.TraceStep, x xid, vec *[datapath.Cols]xid) xid {
	a := w.a
	for i := range steps {
		st := &steps[i]
		switch st.Kind {
		case fastpath.StepXorImm:
			x = a.Xor(x, a.Const(st.Imm))
		case fastpath.StepXorBlk:
			x = a.Xor(x, preShiftExpr(a, vec[st.Src], st.Aux, st.Flag))
		case fastpath.StepAddImm:
			x = a.Add(x, a.Const(st.Imm), bits.Width(st.Aux))
		case fastpath.StepAddBlk:
			x = a.Add(x, vec[st.Src], bits.Width(st.Aux))
		case fastpath.StepRotlImm:
			x = a.Rotl(x, uint(st.Aux))
		case fastpath.StepRotlVar:
			x = a.RotlVar(x, vec[st.Src], st.Flag)
		case fastpath.StepShlImm:
			x = a.Shl(x, uint(st.Aux))
		case fastpath.StepShrImm:
			x = a.Shr(x, uint(st.Aux))
		case fastpath.StepShlVar:
			x = a.ShlVar(x, vec[st.Src], st.Flag)
		case fastpath.StepShrVar:
			x = a.ShrVar(x, vec[st.Src], st.Flag)
		case fastpath.StepAndImm:
			x = a.And(x, a.Const(st.Imm))
		case fastpath.StepAndBlk:
			x = a.And(x, preShiftExpr(a, vec[st.Src], st.Aux, st.Flag))
		case fastpath.StepOrImm:
			x = a.Or(x, a.Const(st.Imm))
		case fastpath.StepOrBlk:
			x = a.Or(x, preShiftExpr(a, vec[st.Src], st.Aux, st.Flag))
		case fastpath.StepSubImm:
			x = a.Sub(x, a.Const(st.Imm), bits.Width(st.Aux))
		case fastpath.StepSubBlk:
			x = a.Sub(x, vec[st.Src], bits.Width(st.Aux))
		case fastpath.StepS8:
			x = a.S8(x, w.s8id(st.S8))
		case fastpath.StepS4:
			x = a.S4(x, w.s4id(st.S4), uint32(st.Aux))
		case fastpath.StepS8to32:
			x = a.S8to32(x, w.s8id(st.S8), uint32(st.Aux))
		case fastpath.StepMulImm:
			x = a.Mul(x, a.Const(st.Imm), bits.Width(st.Aux))
		case fastpath.StepMulBlk:
			x = a.Mul(x, vec[st.Src], bits.Width(st.Aux))
		case fastpath.StepSquare:
			x = a.Square(x)
		case fastpath.StepGFTab:
			x = w.gfExpr(x, st.GF)
		}
	}
	return x
}

// preShiftExpr mirrors the executor's preShift on an A-element operand.
func preShiftExpr(a *Arena, v xid, amt uint8, rot bool) xid {
	if amt == 0 {
		return v
	}
	if rot {
		return a.Rotl(v, uint(amt))
	}
	return a.Shl(v, uint(amt))
}

// gfExpr re-expands a compiled F-element contribution-table pair to its
// defining GF(2^8) expression so it can meet the reference side's GF node.
// A table no configuration explains — a corrupted table — falls back to a
// verbatim-table node, which is structurally distinct from every GF node
// and therefore reported as a mismatch, with witnesses evaluated through
// the corrupted entries exactly as the executor would compute them.
func (w *fpWalker) gfExpr(x xid, t *[4][256]uint32) xid {
	rec, ok := w.gfs[t]
	if !ok {
		rec = recoverGF(t)
		if !rec.ok {
			rec.rawID = w.a.InternGFRaw(t)
		}
		w.gfs[t] = rec
	}
	if rec.ok {
		return w.a.GF(x, rec.mode, rec.consts)
	}
	return w.a.GFRaw(x, rec.rawID)
}

// recoverGF tries the two generating expressions gfTables compiles from.
// Lane mode is tried first so a degenerate MDS circulant (c,0,0,0) — whose
// tables are identical to lane mode's — lands on the same canonical form
// the reference side's degenerate-MDS rewrite produces.
func recoverGF(t *[4][256]uint32) gfRec {
	var c [4]uint8
	for pos := range c {
		c[pos] = uint8(t[pos][1] >> (8 * uint(pos)))
	}
	lanes := true
	for pos := 0; pos < 4 && lanes; pos++ {
		for v := 0; v < 256; v++ {
			if t[pos][v] != uint32(bits.GFMul(uint8(v), c[pos]))<<(8*uint(pos)) {
				lanes = false
				break
			}
		}
	}
	if lanes {
		return gfRec{ok: true, mode: gfLanes, consts: c}
	}
	first := t[0][1]
	c = [4]uint8{uint8(first), uint8(first >> 24), uint8(first >> 16), uint8(first >> 8)}
	for pos := 0; pos < 4; pos++ {
		for v := 0; v < 256; v++ {
			var word uint32
			for row := 0; row < 4; row++ {
				word |= uint32(bits.GFMul(uint8(v), c[(pos-row+4)%4])) << (8 * uint(row))
			}
			if t[pos][v] != word {
				return gfRec{}
			}
		}
	}
	return gfRec{ok: true, mode: gfMDS, consts: c}
}

func (w *fpWalker) s8id(t *[4][256]uint8) uint32 {
	if id, ok := w.s8ids[t]; ok {
		return id
	}
	id := w.a.InternS8(t)
	w.s8ids[t] = id
	return id
}

func (w *fpWalker) s4id(t *[4][128]uint8) uint32 {
	if id, ok := w.s4ids[t]; ok {
		return id
	}
	id := w.a.InternS4(t)
	w.s4ids[t] = id
	return id
}

// ctlKey renders the walker's control state: (segment, position) pins all
// future compiled cycles, which are immutable.
func (w *fpWalker) ctlKey() string {
	return fmt.Sprintf("seg=%d pos=%d", w.seg, w.pos)
}

// carried returns the carried-data expressions, laid out as the reference
// walker's carried().
func (w *fpWalker) carried() []xid {
	ids := make([]xid, 0, len(w.reg)*datapath.Cols+datapath.Cols)
	for r := range w.reg {
		ids = append(ids, w.reg[r][:]...)
	}
	return append(ids, w.fb[:]...)
}

// setCarried overwrites the carried data (inductive generalization).
func (w *fpWalker) setCarried(ids []xid) {
	for r := range w.reg {
		copy(w.reg[r][:], ids[r*datapath.Cols:])
	}
	copy(w.fb[:], ids[len(w.reg)*datapath.Cols:])
}

// traceWhiteExpr applies one compiled whitening operation (cWhite.apply).
func traceWhiteExpr(a *Arena, x xid, wh fastpath.TraceWhite) xid {
	switch wh.Mode {
	case isa.WhiteXor:
		return a.Xor(x, a.Const(wh.Key))
	case isa.WhiteAdd:
		return a.Add(x, a.Const(wh.Key), bits.W32)
	default:
		return x
	}
}
