package isa

import "testing"

// FuzzUnpackPack checks that Unpack and Pack are exact inverses over the
// packed 80-bit space: every word that decodes repacks to the identical
// bits (the layout is a clean 5+12+4+9+50 decomposition with no hidden
// state), and decode failures never panic.
func FuzzUnpackPack(f *testing.F) {
	f.Add(uint16(0), uint64(0))
	f.Add(Instr{Op: OpHalt}.Pack().Hi, Instr{Op: OpHalt}.Pack().Lo)
	f.Add(Instr{Op: OpJmp, Data: 0xfff}.Pack().Hi, Instr{Op: OpJmp, Data: 0xfff}.Pack().Lo)
	f.Add(Instr{Op: OpCfgElem, Slice: Slice{Scope: ScopeOne, Row: 3, Col: 2},
		Elem: ElemB, Data: 1<<50 - 1}.Pack().Hi, uint64(1<<50-1))
	f.Fuzz(func(t *testing.T, hi uint16, lo uint64) {
		w := Word{Hi: hi, Lo: lo}
		in, err := Unpack(w)
		if err != nil {
			return // invalid opcode or element; rejection is the contract
		}
		if got := in.Pack(); got != w {
			t.Fatalf("Pack(Unpack(%04x_%016x)) = %04x_%016x", w.Hi, w.Lo, got.Hi, got.Lo)
		}
	})
}

// FuzzInstrPackUnpack drives the inverse direction: any Instr whose fields
// are masked to their hardware widths survives Pack → Unpack unchanged.
func FuzzInstrPackUnpack(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint16(0), uint64(0))
	f.Add(uint8(OpCfgElem), uint8(ScopeOne), uint8(7), uint8(2), uint8(ElemC), uint16(0x1ff), uint64(12345))
	f.Fuzz(func(t *testing.T, op, scope, row, col, elem uint8, lut uint16, data uint64) {
		in := Instr{
			Op:    Opcode(op & 0x1f),
			Slice: Slice{Scope: Scope(scope & 3), Row: row, Col: col & 3},
			Elem:  Elem(elem & 15),
			LUT:   lut & 0x1ff,
			Data:  data & (1<<50 - 1),
		}
		out, err := Unpack(in.Pack())
		if err != nil {
			// Undefined opcodes, and undefined elements under OpCfgElem,
			// are rejected by contract; anything else must decode.
			if !in.Op.Valid() || (in.Op == OpCfgElem && !in.Elem.Valid()) {
				return
			}
			t.Fatalf("Unpack(Pack(%+v)): %v", in, err)
		}
		if out != in {
			t.Fatalf("Unpack(Pack(%+v)) = %+v", in, out)
		}
	})
}
