package model

// CGRow is one row of the Table 6 cycle-gates product: the paper's
// time-area style metric, CG = clock cycles per block × total gate count,
// with a per-cipher normalization against the best configuration.
type CGRow struct {
	Cipher     string
	Rounds     int
	Cycles     float64
	Gates      int
	CGProduct  float64
	Normalized float64
}

// CGProducts computes cycle-gates products and normalizes each cipher's
// rows against its minimum (the paper normalizes each algorithm to its best
// configuration, which gets 1.000).
func CGProducts(rows []CGRow) []CGRow {
	best := map[string]float64{}
	out := make([]CGRow, len(rows))
	for i, r := range rows {
		r.CGProduct = r.Cycles * float64(r.Gates)
		out[i] = r
		if b, ok := best[r.Cipher]; !ok || r.CGProduct < b {
			best[r.Cipher] = r.CGProduct
		}
	}
	for i := range out {
		if b := best[out[i].Cipher]; b > 0 {
			out[i].Normalized = out[i].CGProduct / b
		}
	}
	return out
}
