package dataflow_test

import (
	"testing"

	"cobra/internal/bench"
	"cobra/internal/program"
	"cobra/internal/vet"
)

// corpus builds every built-in program the repository ships (the cobra-vet
// -builtin set): the Table 3 sweep with decryptors, windowed Serpent, GOST,
// keyed Rijndael, and the extended 64-bit corpus with its decryptors.
func corpus(t *testing.T) []*program.Program {
	t.Helper()
	key := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	var progs []*program.Program
	add := func(p *program.Program, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	serpentDec := false
	for _, c := range bench.Configurations() {
		add(bench.Build(c, key))
		if c.Alg == "serpent" {
			if serpentDec {
				continue
			}
			serpentDec = true
		}
		add(bench.BuildDecrypt(c, key))
	}
	for w := 2; w <= 16; w++ {
		add(program.BuildSerpentWindowed(key, w))
	}
	gostKey := make([]byte, 32)
	for i := range gostKey {
		gostKey[i] = key[i%len(key)]
	}
	add(program.BuildGOST(gostKey))
	add(program.BuildRijndaelKeyed())
	for _, c := range bench.ExtendedConfigurations() {
		add(bench.BuildExtended(c, key))
		add(bench.BuildExtendedDecrypt(c, key))
	}
	return progs
}

// TestBuiltinsAnalyzeClean pins the dataflow analysis over the whole
// built-in corpus: every program's abstract walk closes, produces outputs,
// and reports no findings — no uninitialized reads, no dead elements or
// stores, full key and plaintext taint on every output word.
func TestBuiltinsAnalyzeClean(t *testing.T) {
	for _, p := range corpus(t) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res := p.Analyze()
			if !res.Complete {
				t.Errorf("abstract walk did not close (outputs=%d)", res.Outputs)
			}
			if res.Outputs == 0 {
				t.Errorf("no output cycles observed")
			}
			for _, f := range res.Findings {
				t.Errorf("unexpected finding: %s", f)
			}
			if res.Gates.ConfiguredElems == 0 || res.Gates.LiveElems != res.Gates.ConfiguredElems {
				t.Errorf("gate report not fully live: %+v", res.Gates)
			}
			if res.Timing.Configs == 0 || res.Timing.DatapathMHz <= 0 {
				t.Errorf("no timing result: %+v", res.Timing)
			}
			t.Logf("outputs=%d gates=%d/%d timing: %d cfgs, %.3f ns, %.3f MHz",
				res.Outputs, res.Gates.LiveGates, res.Gates.ConfiguredGates,
				res.Timing.Configs, res.Timing.CriticalPathNs, res.Timing.DatapathMHz)
		})
	}
}

// severityCount tallies findings by severity.
func severityCount(fs []vet.Finding) (warns, errs int) {
	for _, f := range fs {
		if f.Sev == vet.Error {
			errs++
		} else {
			warns++
		}
	}
	return
}
