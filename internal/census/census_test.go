package census

import "testing"

func TestFortyOneCiphers(t *testing.T) {
	if n := len(Studied()); n != 41 {
		t.Fatalf("studied ciphers = %d, want 41", n)
	}
}

func TestNoDuplicateNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Studied() {
		if seen[c.Name] {
			t.Errorf("duplicate cipher %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestBlockSizeRestriction(t *testing.T) {
	// §3: only 64- and 128-bit block ciphers were studied.
	sizes := BlockSizes()
	if len(sizes) != 2 || sizes[64] == 0 || sizes[128] == 0 {
		t.Errorf("block sizes = %v, want only 64 and 128", sizes)
	}
	if sizes[64]+sizes[128] != 41 {
		t.Errorf("sizes sum to %d", sizes[64]+sizes[128])
	}
}

// TestTable2MatchesPaper pins the aggregate occurrence counts to the
// published Table 2.
func TestTable2MatchesPaper(t *testing.T) {
	want := map[string]int{
		"Boolean":                          40,
		"Modular Addition and Subtraction": 20,
		"Fixed Shift":                      25,
		"Variable Rotation":                10,
		"Modular Multiplication":           7,
		"Galois Field Multiplication":      7,
		"Modular Inversion":                1,
		"Look-Up Table Substitution":       30,
	}
	rows := Table2()
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		if r.Total != 41 {
			t.Errorf("%s: total = %d, want 41", r.Name, r.Total)
		}
		if w, ok := want[r.Name]; !ok || r.Occurrences != w {
			t.Errorf("%s: occurrences = %d, want %d", r.Name, r.Occurrences, w)
		}
	}
}

func TestImplementationCiphersPresent(t *testing.T) {
	// The ciphers this repository implements in full must be in the study.
	for _, name := range []string{"RC6", "Rijndael", "Serpent", "DES", "IDEA",
		"TEA", "RC5", "Blowfish", "GOST"} {
		found := false
		for _, c := range Studied() {
			if c.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s missing from the census", name)
		}
	}
}

func TestRC6Profile(t *testing.T) {
	// RC6's profile drove the RCE MUL: Boolean, add, fixed shift, variable
	// rotation and modular multiplication, no LUT.
	for _, c := range Studied() {
		if c.Name != "RC6" {
			continue
		}
		for _, o := range []Op{OpBoolean, OpModAddSub, OpFixedShift, OpVarRotate, OpModMult} {
			if !c.Uses(o) {
				t.Errorf("RC6 must use %s", o.Name())
			}
		}
		if c.Uses(OpLUT) || c.Uses(OpGFMult) {
			t.Error("RC6 uses neither LUTs nor GF multiplication")
		}
	}
}

func TestModularInversionIsIDEAAdjacentOnly(t *testing.T) {
	// §4 discusses the single unsupported-by-design operation.
	names := Supporting(OpModInv)
	if len(names) != 1 {
		t.Fatalf("modular inversion supporters = %v, want exactly 1", names)
	}
}

func TestRequirementsCoverAllOps(t *testing.T) {
	reqs := Requirements()
	if len(reqs) != len(Ops()) {
		t.Fatalf("requirements = %d, want %d", len(reqs), len(Ops()))
	}
	for _, r := range reqs {
		if r.Op == OpModInv {
			if r.Element != "" {
				t.Error("modular inversion must be unsupported")
			}
			continue
		}
		if r.Element == "" {
			t.Errorf("%s has no element", r.Op.Name())
		}
	}
}

func TestSupportingSorted(t *testing.T) {
	names := Supporting(OpModMult)
	if len(names) != 7 {
		t.Fatalf("mod-mult supporters = %d, want 7", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("not sorted: %v", names)
		}
	}
}

func TestOpNames(t *testing.T) {
	for _, o := range Ops() {
		if o.Name() == "?" {
			t.Errorf("op %d has no name", o)
		}
	}
	if Op(1<<30).Name() != "?" {
		t.Error("unknown op should name as ?")
	}
}
