// Package program compiles block ciphers onto the COBRA architecture: it
// emits the microcode (§3.3 instruction words) that configures the
// datapath, loads round keys into the eRAMs, drives the §3.4
// ready/go/busy/data-valid protocol, and performs on-the-fly
// reconfiguration between passes.
//
// Each builder corresponds to one row of the paper's Table 3: a cipher at
// an unroll depth ("Rnds" in the table — the number of rounds mapped into
// hardware). Configurations whose hardware covers every round operate as
// round-atomic pipelines streaming one block per cycle (non-feedback mode,
// §4.1); partial configurations iterate blocks through the array via the
// feedback multiplexor, walking the eRAM key addresses between passes and
// bracketing larger reconfigurations with DISOUT/ENOUT overfull cycles.
//
// Programs embed the round keys as ERAMW immediates: like the JBits
// approach the paper cites, the microcode image is key-specific and
// regenerated per key by the external system.
package program

import (
	"fmt"

	"cobra/internal/datapath"
	"cobra/internal/isa"
)

// Program is a compiled cipher mapping plus the execution metadata the
// measurement harness needs.
type Program struct {
	// Name identifies the configuration, e.g. "rc6-2".
	Name string
	// Cipher is the algorithm family ("rc6", "rijndael", "serpent").
	Cipher string
	// HWRounds is the unroll depth: rounds mapped into hardware (Table 3's
	// "Rnds" column).
	HWRounds int
	// TotalRounds is the cipher's full round count.
	TotalRounds int
	// Geometry is the array instance the program targets.
	Geometry datapath.Geometry
	// Window is the instruction window size (§3.4).
	Window int
	// Streaming reports non-feedback pipelined operation (full unroll):
	// the program consumes one block per cycle and the host must append
	// PipelineDepth flush blocks to drain the final outputs.
	Streaming bool
	// PipelineDepth is the number of in-flight blocks in streaming mode.
	PipelineDepth int
	// NeedsKey marks a key-independent program that expects the raw key
	// as its first input block over the KEYREQ handshake (see LoadKeyed).
	NeedsKey bool
	// Instrs is the decoded program; Words() packs it.
	Instrs []isa.Instr
}

// Words packs the program into 80-bit microcode words.
func (p *Program) Words() []isa.Word {
	w := make([]isa.Word, len(p.Instrs))
	for i, in := range p.Instrs {
		w[i] = in.Pack()
	}
	return w
}

// builder accumulates instructions with small helpers for each statement
// form. It deliberately mirrors the assembly language so emitted programs
// disassemble into idiomatic COBRA assembly.
type builder struct {
	ins []isa.Instr
}

func (b *builder) raw(in isa.Instr) { b.ins = append(b.ins, in) }

func (b *builder) nop() { b.raw(isa.Instr{Op: isa.OpNop}) }

func (b *builder) halt() { b.raw(isa.Instr{Op: isa.OpHalt}) }

// mark returns the address of the next instruction (label support).
func (b *builder) mark() int { return len(b.ins) }

func (b *builder) jmp(addr int) {
	b.raw(isa.Instr{Op: isa.OpJmp, Data: uint64(addr)})
}

func (b *builder) flag(set, clear uint16) {
	b.raw(isa.Instr{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: set, Clear: clear}.Encode()})
}

func (b *builder) cfge(s isa.Slice, e isa.Elem, data uint64) {
	b.raw(isa.Instr{Op: isa.OpCfgElem, Slice: s, Elem: e, Data: data})
}

func (b *builder) insel(row, col int, src uint8) {
	b.cfge(isa.SliceAt(row, col), isa.ElemInsel, isa.InselCfg{Source: src}.Encode())
}

func (b *builder) erRow(row, bank, addr int) {
	b.cfge(isa.SliceRow(row), isa.ElemER, isa.ERCfg{Bank: uint8(bank), Addr: uint8(addr)}.Encode())
}

func (b *builder) er(row, col, bank, addr int) {
	b.cfge(isa.SliceAt(row, col), isa.ElemER, isa.ERCfg{Bank: uint8(bank), Addr: uint8(addr)}.Encode())
}

func (b *builder) regRow(row int, on bool) {
	b.cfge(isa.SliceRow(row), isa.ElemReg, isa.RegCfg{Enabled: on}.Encode())
}

// regAt enables the output register of a single RCE — for round
// boundaries where only some lanes stay live into the next round (a dead
// scratch lane's register would burn gates feeding nothing).
func (b *builder) regAt(row, col int, on bool) {
	b.cfge(isa.SliceAt(row, col), isa.ElemReg, isa.RegCfg{Enabled: on}.Encode())
}

func (b *builder) enout()  { b.raw(isa.Instr{Op: isa.OpEnOut, Slice: isa.SliceAll()}) }
func (b *builder) disout() { b.raw(isa.Instr{Op: isa.OpDisOut, Slice: isa.SliceAll()}) }

func (b *builder) inmux(mode isa.InMuxMode) {
	b.raw(isa.Instr{Op: isa.OpCfgInMux, Data: isa.InMuxCfg{Mode: mode}.Encode()})
}

func (b *builder) white(col int, mode isa.WhiteMode, atInput bool, key uint32) {
	b.raw(isa.Instr{Op: isa.OpCfgWhite,
		Data: isa.WhiteCfg{Col: uint8(col), Mode: mode, In: atInput, Key: key}.Encode()})
}

func (b *builder) whiteOff(col int) { b.white(col, isa.WhiteOff, false, 0) }

func (b *builder) eramw(col, bank, addr int, value uint32) {
	b.raw(isa.Instr{Op: isa.OpERAMWrite, Slice: isa.SliceCol(col),
		Data: isa.ERAMWriteCfg{Bank: uint8(bank), Addr: uint8(addr), Value: value}.Encode()})
}

func (b *builder) shuf(idx int, perm [16]uint8) {
	var lo, hi isa.ShufCfg
	copy(lo.Perm[:], perm[:8])
	hi.High = true
	copy(hi.Perm[:], perm[8:])
	b.raw(isa.Instr{Op: isa.OpCfgShuf, Slice: isa.SliceRow(idx), Data: lo.Encode()})
	b.raw(isa.Instr{Op: isa.OpCfgShuf, Slice: isa.SliceRow(idx), Data: hi.Encode()})
}

// loadS8 emits the LUTLD stream installing an 8→8 table into one bank of
// every RCE addressed by the slice (64 group loads).
func (b *builder) loadS8(s isa.Slice, bank int, tbl *[256]uint8) {
	for g := 0; g < 64; g++ {
		var d uint64
		for i := 0; i < 4; i++ {
			d |= uint64(tbl[g*4+i]) << (8 * i)
		}
		b.raw(isa.Instr{Op: isa.OpLoadLUT, Slice: s, LUT: isa.LUTAddr(false, bank, g), Data: d})
	}
}

// loadS4Pages installs eight 16-entry pages into one 4→4 table bank of
// every RCE addressed by the slice (16 group loads).
func (b *builder) loadS4Pages(s isa.Slice, bank int, pages *[8][16]uint8) {
	for g := 0; g < 16; g++ {
		page, half := g/2, g%2
		var d uint64
		for i := 0; i < 8; i++ {
			d |= uint64(pages[page][half*8+i]&0xf) << (4 * i)
		}
		b.raw(isa.Instr{Op: isa.OpLoadLUT, Slice: s, LUT: isa.LUTAddr(true, bank, g), Data: d})
	}
}

// Element configuration shorthands used by the cipher builders.

func eCfg(mode isa.EMode, amtSrc isa.Src, amt uint8) uint64 {
	return isa.ECfg{Mode: mode, AmtSrc: amtSrc, Amt: amt}.Encode()
}

func eImm(mode isa.EMode, amt uint8) uint64 { return eCfg(mode, isa.SrcImm, amt) }

func aCfg(op isa.AOp, src isa.Src) uint64 {
	return isa.ACfg{Op: op, Operand: src}.Encode()
}

func aImm(op isa.AOp, imm uint32) uint64 {
	return isa.ACfg{Op: op, Operand: isa.SrcImm, Imm: imm}.Encode()
}

func aShl(op isa.AOp, src isa.Src, preShift uint8) uint64 {
	return isa.ACfg{Op: op, Operand: src, PreShift: preShift}.Encode()
}

func bCfg(mode isa.BMode, width uint8, src isa.Src) uint64 {
	return isa.BCfg{Mode: mode, Width: width, Operand: src}.Encode()
}

func dCfg(mode isa.DMode, src isa.Src) uint64 {
	return isa.DCfg{Mode: mode, Operand: src}.Encode()
}

const bypass = 0 // the zero control word bypasses every element type

// validateUnroll checks the depth divides the round count and the geometry
// fits the slice address space.
func validateUnroll(cipher string, hw, total, rowsPerRound, extraRows int) (datapath.Geometry, int, error) {
	if hw < 1 || hw > total {
		return datapath.Geometry{}, 0, fmt.Errorf("program/%s: unroll depth %d out of range", cipher, hw)
	}
	if total%hw != 0 {
		return datapath.Geometry{}, 0, fmt.Errorf("program/%s: unroll depth %d does not divide %d rounds", cipher, hw, total)
	}
	rows := hw*rowsPerRound + extraRows
	geo := datapath.Geometry{Rows: rows}
	if err := geo.Validate(); err != nil {
		return datapath.Geometry{}, 0, err
	}
	return geo, total / hw, nil
}
