package program

import (
	"fmt"

	"cobra/internal/cipher"
	"cobra/internal/isa"
)

// Serpent mapping (§4: "one round of Serpent"). One round occupies four
// rows:
//
//	row 0: A1 XOR INER (round key), C element in paged 4→4 mode (S-box
//	       r mod 8 — the page select exists for exactly this schedule).
//	row 1: LT step 1: X0 <<<= 13 (col0 E1), X2 <<<= 3 (col2 E1).
//	row 2: LT step 2: X1 = (X1 ^ X0 ^ X2) <<< 1 (col1: A1, A2, E3);
//	       X3 = (X3 ^ X2 ^ (X0 << 3)) <<< 7 (col3: A1, A2 with operand
//	       pre-shift, E3).
//	row 3: LT step 3: X0 = (X0 ^ X1 ^ X3) <<< 5 (col0);
//	       X2 = (X2 ^ X3 ^ (X1 << 7)) <<< 22 (col2).
//
// The final round (31) replaces the LT with the K32 XOR, realized by the
// output-side whitening registers in XOR mode.
//
// The S-box is applied to the eight contiguous nibbles of each word — the
// operation the C element provides. Real Serpent's bitsliced S-box spans
// the four words and is not realizable by per-column LUTs; the functional
// oracle for this mapping is therefore cipher.SerpentCOBRA (identical round
// structure, schedule and operation counts; see that type's documentation
// and DESIGN.md).

// serpentRoundRows emits the static configuration of one round at rows
// r0..r0+3 using S-box page `page`; withLT selects whether the linear
// transformation rows are active.
func (b *builder) serpentRoundRows(r0 int, page uint8, withLT bool) {
	b.cfge(isa.SliceRow(r0), isa.ElemA1, aCfg(isa.AXor, isa.SrcINER))
	b.cfge(isa.SliceRow(r0), isa.ElemC, isa.CCfg{Mode: isa.CS4x4, Page: page}.Encode())
	if !withLT {
		return
	}
	b.serpentLTRows(r0 + 1)
}

// serpentLTRows emits the three linear-transformation rows starting at r1.
func (b *builder) serpentLTRows(r1 int) {
	b.cfge(isa.SliceAt(r1, 0), isa.ElemE1, eImm(isa.ERotl, 13))
	b.cfge(isa.SliceAt(r1, 2), isa.ElemE1, eImm(isa.ERotl, 3))
	r2 := r1 + 1
	c1 := isa.SliceAt(r2, 1)
	b.cfge(c1, isa.ElemA1, aCfg(isa.AXor, isa.SrcINB)) // ^ X0
	b.cfge(c1, isa.ElemA2, aCfg(isa.AXor, isa.SrcINC)) // ^ X2
	b.cfge(c1, isa.ElemE3, eImm(isa.ERotl, 1))
	c3 := isa.SliceAt(r2, 3)
	b.cfge(c3, isa.ElemA1, aCfg(isa.AXor, isa.SrcIND))    // ^ X2; X2 is col3's IND
	b.cfge(c3, isa.ElemA2, aShl(isa.AXor, isa.SrcINB, 3)) // ^ (X0 << 3)
	b.cfge(c3, isa.ElemE3, eImm(isa.ERotl, 7))
	r3 := r2 + 1
	c0 := isa.SliceAt(r3, 0)
	b.cfge(c0, isa.ElemA1, aCfg(isa.AXor, isa.SrcINB)) // ^ X1
	b.cfge(c0, isa.ElemA2, aCfg(isa.AXor, isa.SrcIND)) // ^ X3
	b.cfge(c0, isa.ElemE3, eImm(isa.ERotl, 5))
	c2 := isa.SliceAt(r3, 2)
	b.cfge(c2, isa.ElemA1, aCfg(isa.AXor, isa.SrcIND))    // ^ X3
	b.cfge(c2, isa.ElemA2, aShl(isa.AXor, isa.SrcINC, 7)) // ^ (X1 << 7); X1 is col2's INC
	b.cfge(c2, isa.ElemE3, eImm(isa.ERotl, 22))
}

// serpentClearLTRows emits the bypass toggles for the three LT rows
// starting at r1 (used when the final round shares rows with earlier
// rounds in iterative operation).
func (b *builder) serpentClearLTRows(r1 int) {
	b.cfge(isa.SliceAt(r1, 0), isa.ElemE1, bypass)
	b.cfge(isa.SliceAt(r1, 2), isa.ElemE1, bypass)
	for _, sl := range []isa.Slice{isa.SliceAt(r1+1, 1), isa.SliceAt(r1+1, 3),
		isa.SliceAt(r1+2, 0), isa.SliceAt(r1+2, 2)} {
		b.cfge(sl, isa.ElemA1, bypass)
		b.cfge(sl, isa.ElemA2, bypass)
		b.cfge(sl, isa.ElemE3, bypass)
	}
}

// BuildSerpent compiles the Serpent workload at unroll depth hw onto COBRA.
func BuildSerpent(key []byte, hw int) (*Program, error) {
	ck, err := cipher.NewSerpentCOBRA(key)
	if err != nil {
		return nil, err
	}
	const rounds = cipher.SerpentRounds
	full := hw == rounds
	geo, passes, err := validateUnroll("serpent", hw, rounds, 4, 0)
	if err != nil {
		return nil, err
	}

	p := &Program{
		Name:        fmt.Sprintf("serpent-%d", hw),
		Cipher:      "serpent",
		HWRounds:    hw,
		TotalRounds: rounds,
		Geometry:    geo,
		Window:      1,
		Streaming:   full,
	}
	b := &builder{}

	// --- Setup ------------------------------------------------------------
	b.disout()

	// All eight S-box pages into every 4→4 bank of every RCE (only the
	// S-box rows select C, so the broadcast is harmless elsewhere).
	var pages [8][16]uint8
	for pg := range pages {
		pages[pg] = cipher.SerpentSBoxes[pg]
	}
	for bank := 0; bank < 4; bank++ {
		b.loadS4Pages(isa.SliceAll(), bank, &pages)
	}

	// Round rows: stage st occupies rows 4st..4st+3 with page (st mod 8);
	// the page schedule is static because every pass advances the round
	// index by hw, a multiple of 8 or a divisor pattern handled below.
	pageStatic := hw%8 == 0
	for st := 0; st < hw; st++ {
		withLT := !(full && st == hw-1)
		b.serpentRoundRows(4*st, uint8(st%8), withLT)
	}

	// Round keys: bank 0, address r holds rk[r][c] in column c. K32 is not
	// stored: the output whitening configuration consumes it directly, so an
	// eRAM copy would be a dead store (the dataflow analysis flags one).
	for r := 0; r < rounds; r++ {
		w := ck.RoundKeyWords(r)
		for c := 0; c < 4; c++ {
			b.eramw(c, 0, r, w[c])
		}
	}

	var regs []int
	for st := 0; st < hw; st++ {
		if full || st < hw-1 {
			regs = append(regs, 4*st+3)
		}
	}
	for _, row := range regs {
		b.regRow(row, true)
	}

	k32 := ck.RoundKeyWords(32)
	if full {
		p.PipelineDepth = len(regs)
		for c := 0; c < 4; c++ {
			b.white(c, isa.WhiteXor, false, k32[c])
		}
		for st := 0; st < hw; st++ {
			b.erRow(4*st, 0, st)
		}
		b.streamingFlow(len(regs))
		p.Instrs = b.ins
		return p, nil
	}

	// --- Iterative control flow -------------------------------------------
	ticks := len(regs) + 1
	lastStageRow := 4 * (hw - 1)
	b.iterativeFlow(ticks, passes, iterHooks{
		LastPass: func(b *builder) {
			// Final round: LT off on the last stage's rows; K32 via
			// output whitening.
			b.serpentClearLTRows(lastStageRow + 1)
			for c := 0; c < 4; c++ {
				b.white(c, isa.WhiteXor, false, k32[c])
			}
		},
		EveryPass: func(b *builder, pass int) {
			for st := 0; st < hw; st++ {
				r := pass*hw + st
				b.erRow(4*st, 0, r)
				if !pageStatic {
					b.cfge(isa.SliceRow(4*st), isa.ElemC,
						isa.CCfg{Mode: isa.CS4x4, Page: uint8(r % 8)}.Encode())
				}
			}
		},
		Epilogue: func(b *builder) {
			b.serpentLTRows(lastStageRow + 1)
			for c := 0; c < 4; c++ {
				b.whiteOff(c)
			}
		},
	})
	p.Instrs = b.ins
	return p, nil
}
