// Package dataflow performs word-level def-use, liveness and taint
// analysis plus static per-window timing over COBRA microcode.
//
// cobravet (package vet) checks the control conventions of §3.4; this
// package checks what the datapath actually computes. COBRA control flow is
// deterministic — OpJmp is unconditional and the ready idle point only
// pauses the sequencer — so a program's configuration schedule is a single
// trace. The engine unrolls that trace with an abstract machine that
// mirrors sim.Machine.Run instruction for instruction and datapath.Array.Tick
// phase for phase, but replaces every 32-bit word with an abstract value:
// an interned set of definition facts (which element instances, eRAM
// stores, key and plaintext inputs the word structurally depends on). A
// shadow datapath.Array carries the configuration state, so decode,
// broadcast and slice semantics are the simulator's own code paths.
//
// The walk terminates when the complete abstract state repeats at a cycle
// boundary (the transition function is deterministic over interned state,
// so a repeat proves the fact flow periodic and every reachable dependency
// discovered); a step budget turns pathological programs into a finding
// instead of a stall. On top of the chains, four analyzers report:
//
//   - uninit-read (Error): a storage location — eRAM cell via INER or
//     playback, an RCE output register, the feedback register — is read
//     before its first write on the path to collected ciphertext;
//   - dead-element / dead-store (Warn): a configured, active element
//     instance (or an OpERAMWrite) whose value provably never reaches a
//     collected output word, with the element inventory priced against
//     internal/model's Table 4 gate counts as an effective-gate-count
//     report;
//   - taint-no-key / taint-no-plain (Error): a collected ciphertext word
//     not reachable from key material (eRAM stores, whitening keys, KEYREQ
//     input) or from plaintext — broken key injection or missing diffusion
//     caught before any known-answer test;
//   - static timing: every distinct element configuration observed at an
//     advancing cycle is folded through model.Analyze, reporting the
//     worst-case critical path and datapath clock across the whole
//     schedule, without running the simulator.
//
// Package program wires this up as Program.Analyze, cmd/cobra-vet exposes
// it as -dataflow, and internal/fastpath consumes the dead-element masks to
// elide provably dead ops from compiled traces (guarded by the fastpath
// differential suite).
//
// The finding codes above are this package's complete set. The
// side-channel codes — "secret-branch", "secret-eram-addr",
// "secret-lut-index", "ct-unproven", "ct-profile-mismatch" — live in
// package sca, which attaches a Tap (see tap.go) to this engine's walk and
// classifies the taint reaching address and control lanes instead of only
// collected outputs.
package dataflow

import (
	"fmt"

	"cobra/internal/asm"
	"cobra/internal/datapath"
	"cobra/internal/isa"
	"cobra/internal/model"
	"cobra/internal/vet"
)

// Config describes the machine the program targets (mirrors vet.Config).
type Config struct {
	// Rows is the datapath row count (0: the base 4×4 geometry).
	Rows int
	// Window is the instruction window size w (0: 1).
	Window int
}

func (c Config) normalized() Config {
	if c.Rows == 0 {
		c.Rows = datapath.BaseRows
	}
	if c.Window == 0 {
		c.Window = 1
	}
	return c
}

// DeadElem names one provably dead element instance: active at some
// advancing cycle, yet its value never reaches a collected output word.
type DeadElem struct {
	Row, Col int
	Elem     isa.Elem
}

// GateReport prices the element inventory against the Table 4 gate counts:
// Configured covers every element instance active at any advancing cycle,
// Live only those whose values reach collected ciphertext. The difference
// is the effective-gate-count delta the dead-element findings represent.
type GateReport struct {
	ConfiguredElems int
	LiveElems       int
	ConfiguredGates int
	LiveGates       int
}

// TimingReport summarizes static timing across every distinct element
// configuration observed at an advancing cycle: the worst (slowest) result
// bounds the datapath clock for the whole schedule.
type TimingReport struct {
	// Configs is the number of distinct timing-relevant configurations.
	Configs int
	// CriticalPathNs is the worst critical path across configurations.
	CriticalPathNs float64
	// DatapathMHz is the corresponding maximum datapath clock.
	DatapathMHz float64
	// IRAMMHz is twice the datapath clock (§3.4 dual clocking).
	IRAMMHz float64
}

// Result is the full analysis output.
type Result struct {
	// Findings are the analyzer diagnostics, sorted by address; the codes
	// are "uninit-read", "dead-element", "dead-store", "taint-no-key",
	// "taint-no-plain", "exec-fault" and "walk-budget".
	Findings []vet.Finding
	// Complete reports that the abstract walk reached a repeated state (the
	// whole schedule was observed). Liveness claims — dead elements, dead
	// stores, the gate report — are only made on complete walks.
	Complete bool
	// Outputs is the number of collected output cycles observed.
	Outputs int
	// Gates is the effective-gate-count report (complete walks only).
	Gates GateReport
	// Timing is the static timing summary.
	Timing TimingReport
	// Dead lists the provably dead element instances behind the
	// dead-element findings (complete walks only).
	Dead []DeadElem
	// DeadStores lists the iRAM addresses of OpERAMWrite instructions whose
	// values never reach an output (complete walks only).
	DeadStores []int
	// UninitReads lists every never-written eRAM cell the trace consumes
	// (via INER or playback), whether or not the value reaches an output.
	// This is exactly the set datapath's uninit sentinel records
	// dynamically; the fuzz harness holds the two equal in both directions.
	UninitReads []datapath.ERAMRef
}

// HasErrors reports whether any finding is Error severity.
func (r *Result) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Sev == vet.Error {
			return true
		}
	}
	return false
}

// DeadMask renders the dead-element set as a per-cell bitmask (indexed
// row*datapath.Cols+col, bit 1<<elem) in the form fastpath.Source consumes
// for dead-op elision. It returns nil unless the walk completed, outputs
// were observed, and at least one element is dead — the only situation in
// which elision is both sound and useful.
func (r *Result) DeadMask(rows int) []uint16 {
	if !r.Complete || r.Outputs == 0 || len(r.Dead) == 0 {
		return nil
	}
	mask := make([]uint16, rows*datapath.Cols)
	for _, d := range r.Dead {
		if d.Row < 0 || d.Row >= rows {
			continue
		}
		mask[d.Row*datapath.Cols+d.Col] |= 1 << uint(d.Elem)
	}
	return mask
}

// Analyze runs the abstract walk and every analyzer over a decoded program.
func Analyze(prog []isa.Instr, cfg Config) *Result {
	return AnalyzeTap(prog, cfg, nil)
}

// addFinding appends a diagnostic with its disassembled source line.
func addFinding(res *Result, prog []isa.Instr, addr int, sev vet.Severity, code, msg string) {
	res.Findings = appendFinding(res.Findings, prog, addr, sev, code, msg)
}

func appendFinding(fs []vet.Finding, prog []isa.Instr, addr int, sev vet.Severity, code, msg string) []vet.Finding {
	var line string
	if addr >= 0 && addr < len(prog) {
		line = asm.Line(prog[addr])
	}
	return append(fs, vet.Finding{Addr: addr, Sev: sev, Code: code, Msg: msg, Line: line})
}

// elemGates prices one element instance against the Table 4 constants.
// INSEL contributes no gates (it is selection, not computation, and the
// model folds its multiplexing into the row overhead).
func elemGates(g model.ElementGates, e isa.Elem) int {
	switch e {
	case isa.ElemE1, isa.ElemE2, isa.ElemE3:
		return g.E
	case isa.ElemA1, isa.ElemA2:
		return g.A
	case isa.ElemB:
		return g.B
	case isa.ElemC:
		return g.C
	case isa.ElemD:
		return g.D
	case isa.ElemF:
		return g.F
	case isa.ElemReg:
		return g.Reg32
	}
	return 0
}

// describeCell renders an element-instance location for messages.
func describeCell(r, c int, e isa.Elem) string {
	return fmt.Sprintf("r%d.c%d %s", r, c, e)
}
