package fastpath

import (
	"fmt"

	"cobra/internal/bits"
	"cobra/internal/datapath"
	"cobra/internal/isa"
	"cobra/internal/rce"
	"cobra/internal/sim"
)

// Compile records one steady-state bulk-encryption run of the program,
// proves the recorded cycle stream periodic, compiles it into a flat
// per-cycle op-list, and self-checks the result against the recording
// before returning it. A program whose bulk phase is not a fixed-period
// configuration schedule returns an error wrapping ErrNotSteady; callers
// fall back to the interpreter.
func Compile(src Source) (*Exec, error) {
	rec, err := record(src)
	if err != nil {
		return nil, err
	}

	outs := rec.outputTicks()
	if len(outs) != recBlocks {
		return nil, fmt.Errorf("%w: %s: recorded %d output cycles, want %d",
			ErrNotSteady, src.Name, len(outs), recBlocks)
	}
	first, last := outs[0], len(rec.ticks)-1

	// Find the steady period: the smallest P such that every cycle after
	// the first output repeats — full control snapshot and attributed
	// counters — P cycles later, across the whole recorded suffix. One such
	// equality already proves the schedule periodic forever (the snapshot
	// is the machine's entire control state and control is data-independent
	// — see the package doc); the recorded suffix gives several periods of
	// redundancy. Iterative programs have one output per period; streaming
	// loops emit every cycle while the sequencer alternates through the
	// nop/jmp idle loop, giving several outputs per period.
	plen := 0
	for p := 1; p <= (last-first)/2; p++ {
		ok := true
		for t := first + 1; t+p <= last; t++ {
			if !equalSnap(rec.ticks[t], rec.ticks[t+p]) || rec.attrib(t) != rec.attrib(t+p) {
				ok = false
				break
			}
		}
		if ok {
			plen = p
			break
		}
	}
	if plen == 0 {
		return nil, fmt.Errorf("%w: %s: no repeating cycle period within %d recorded cycles after the first output",
			ErrNotSteady, src.Name, last-first)
	}

	e := &Exec{
		src:     src,
		rows:    src.Geometry.Rows,
		initReg: rec.initReg,
		initFB:  rec.initFB,
	}
	e.reg = make([][datapath.Cols]uint32, e.rows)
	copy(e.reg, e.initReg)
	e.fb = e.initFB

	luts := snapshotLUTs(rec)
	gfCache := make(map[[5]uint8]*gfTab)
	if e.head, err = e.compileTicks(rec, 0, first+1, luts, gfCache); err != nil {
		return nil, err
	}
	if e.period, err = e.compileTicks(rec, first+1, first+1+plen, luts, gfCache); err != nil {
		return nil, err
	}
	if !e.head[len(e.head)-1].emit || countEmits(e.head) != 1 {
		return nil, fmt.Errorf("%w: %s: head segment does not end at its single output", ErrNotSteady, src.Name)
	}
	if countEmits(e.period) == 0 {
		// Unreachable given the suffix held outputs, but it is the
		// executor's termination guarantee, so assert it.
		return nil, fmt.Errorf("%w: %s: steady period emits no output", ErrNotSteady, src.Name)
	}

	if err := selfCheck(e, rec, src); err != nil {
		return nil, err
	}
	e.Reset()
	return e, nil
}

func countEmits(ticks []cTick) int {
	n := 0
	for i := range ticks {
		if ticks[i].emit {
			n++
		}
	}
	return n
}

// attrib returns the counter movement attributed to tick t under the
// interpreter's stop-after-output semantics: the instructions executed
// since the previous cycle plus the cycle's own counters. Attribution
// telescopes, so any run of consecutive ticks sums to exactly the
// sim.Stats delta the interpreter reports when it stops right after the
// run's last tick.
func (rec *recording) attrib(t int) sim.Stats {
	pre := rec.ticks[t].preStats
	post := rec.final
	if t+1 < len(rec.ticks) {
		post = rec.ticks[t+1].preStats
	}
	var prevInstr, prevNops int
	if t > 0 {
		prevInstr = rec.ticks[t-1].preStats.Instructions
		prevNops = rec.ticks[t-1].preStats.Nops
	}
	return sim.Stats{
		Cycles:       1,
		Advanced:     post.Advanced - pre.Advanced,
		Stalled:      post.Stalled - pre.Stalled,
		Instructions: pre.Instructions - prevInstr,
		Nops:         pre.Nops - prevNops,
		BlocksIn:     post.BlocksIn - pre.BlocksIn,
		BlocksOut:    post.BlocksOut - pre.BlocksOut,
	}
}

// snapshotLUTs copies every RCE's LUT storage once; the hazard watcher
// guarantees no LUT load executed during the recorded run, so the copies
// are valid for every compiled cycle.
func snapshotLUTs(rec *recording) []*rce.LUTStore {
	rows := rec.m.Array.Geometry().Rows
	luts := make([]*rce.LUTStore, rows*datapath.Cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < datapath.Cols; c++ {
			lut := rec.m.Array.RCE(r, c).LUT // value copy
			luts[r*datapath.Cols+c] = &lut
		}
	}
	return luts
}

// selfCheck replays the recorded inputs through the freshly compiled trace
// and requires bit-identical outputs and counters before the executor is
// released — the last line of the equivalence proof, and a guard against
// compiler bugs on programs outside the test matrix.
func selfCheck(e *Exec, rec *recording, src Source) error {
	in := recordInputs(recBlocks, src)
	dst := make([]bits.Block128, recBlocks)
	st, err := e.EncryptInto(dst, in[:recBlocks])
	if err != nil {
		return fmt.Errorf("%w: %s: self-check: %v", ErrNotSteady, src.Name, err)
	}
	if st != rec.final {
		return fmt.Errorf("%w: %s: self-check counters %+v != recorded %+v",
			ErrNotSteady, src.Name, st, rec.final)
	}
	got := rec.m.Outputs()
	for i := range dst {
		if dst[i] != got[i] {
			return fmt.Errorf("%w: %s: self-check output %d mismatch", ErrNotSteady, src.Name, i)
		}
	}
	return nil
}

// --- compiled representation ---------------------------------------------------

// step kinds: one per executable element operation, with constant operands
// (immediates, resolved eRAM reads, amount negation, operand pre-shifts)
// folded at compile time.
const (
	stShlImm uint8 = iota
	stShrImm
	stRotlImm
	stShlVar // amount from low 5 bits of a block, Neg folded via flag
	stShrVar
	stRotlVar
	stXorImm
	stAndImm
	stOrImm
	stXorBlk
	stAndBlk
	stOrBlk
	stAddImm
	stSubImm
	stAddBlk
	stSubBlk
	stS8
	stS4
	stS8to32
	stMulImm
	stMulBlk
	stSquare
	stGFTab
)

// gfTab is a compiled F element: per input-byte-position tables carrying
// that byte's contribution to the whole output word, XOR-combined at run
// time. Both F modes fold to this form — lane-wise constant multiplication
// contributes only to its own byte, the circulant MDS multiply to all four
// — turning the bit-serial, data-dependent GFMul into four table reads.
type gfTab [4][256]uint32

// step is one compiled element operation of an RCE's chain.
type step struct {
	kind  uint8
	src   uint8  // block index for *Blk/*Var kinds
	aux   uint8  // shift amount / B-D width / C page or byte select
	flag  bool   // E: negate amount; A: operand pre-shift is a rotate
	immER bool   // imm was folded from an eRAM read (key provenance)
	imm   uint32 // folded immediate operand
	lut   *rce.LUTStore
	gf    *gfTab // F element tables
}

// cCell is one RCE at one cycle.
type cCell struct {
	// passthrough: identity configuration, out = vec[col] with no register;
	// the executor skips the cell entirely.
	passthrough bool
	// regOnly: registered and held — out = reg, nothing evaluated.
	regOnly bool
	insel   uint8 // 0..3: current row vector block; 4..7: prev-row block−4
	reg     bool
	elided  int // active element operations dropped by the dead mask
	steps   []step
}

// cRow is one array row at one cycle.
type cRow struct {
	shuffle *[16]uint8 // byte shuffler before this row (nil: none/identity)
	cells   [datapath.Cols]cCell
}

// cWhite is one column's whitening operation at one stage.
type cWhite struct {
	mode isa.WhiteMode
	key  uint32
}

func (w cWhite) apply(x uint32) uint32 {
	switch w.mode {
	case isa.WhiteXor:
		return x ^ w.key
	case isa.WhiteAdd:
		return x + w.key
	default:
		return x
	}
}

// cTick is one compiled datapath cycle: the resolved array configuration
// plus the interpreter counters attributed to the cycle.
type cTick struct {
	enabled  bool
	inMode   isa.InMuxMode
	eramVec  bits.Block128
	emit     bool
	stats    sim.Stats
	whiteIn  [datapath.Cols]cWhite
	whiteOut [datapath.Cols]cWhite
	anyWhite bool
	rows     []cRow
}

// compElems are the chain elements dead-op elision may drop: the nine
// computational stages. INSEL routes and the register carries state, so a
// mask bit on either is ignored.
const compElems = 1<<isa.ElemE1 | 1<<isa.ElemA1 | 1<<isa.ElemB | 1<<isa.ElemC |
	1<<isa.ElemE2 | 1<<isa.ElemD | 1<<isa.ElemF | 1<<isa.ElemA2 | 1<<isa.ElemE3

// compileTicks translates recorded cycles [from, to) into executable form.
func (e *Exec) compileTicks(rec *recording, from, to int, luts []*rce.LUTStore, gfCache map[[5]uint8]*gfTab) ([]cTick, error) {
	name := e.src.Name
	out := make([]cTick, 0, to-from)
	for t := from; t < to; t++ {
		s := rec.ticks[t]
		at := rec.attrib(t)
		ct := cTick{
			enabled: s.enabled,
			inMode:  s.inMode,
			eramVec: s.eramVec,
			emit:    at.BlocksOut > 0,
			stats:   at,
		}
		if !s.enabled {
			// Stall cycle: nothing moves; only the counters advance.
			if at.Advanced != 0 || ct.emit {
				return nil, fmt.Errorf("%w: %s: disabled cycle %d advanced", ErrNotSteady, name, t)
			}
			out = append(out, ct)
			continue
		}
		if at.Advanced != 1 {
			return nil, fmt.Errorf("%w: %s: enabled cycle %d stalled (input starvation in recording)",
				ErrNotSteady, name, t)
		}
		if (at.BlocksIn > 0) != (s.inMode == isa.InExternal) {
			return nil, fmt.Errorf("%w: %s: cycle %d consumption disagrees with input mode",
				ErrNotSteady, name, t)
		}
		if ct.emit != (s.flags&isa.FlagDValid != 0) {
			return nil, fmt.Errorf("%w: %s: cycle %d emission disagrees with data-valid flag",
				ErrNotSteady, name, t)
		}
		for c := 0; c < datapath.Cols; c++ {
			if s.capture[c] {
				return nil, fmt.Errorf("%w: %s: capture port active at cycle %d", ErrNotSteady, name, t)
			}
			w := cWhite{mode: s.white[c].Mode, key: s.white[c].Key}
			if s.white[c].In {
				ct.whiteIn[c] = w
			} else {
				ct.whiteOut[c] = w
			}
			if w.mode != isa.WhiteOff {
				ct.anyWhite = true
			}
		}
		rows := rec.m.Array.Geometry().Rows
		ct.rows = make([]cRow, rows)
		for r := 0; r < rows; r++ {
			if r%2 == 1 {
				perm := s.shuf[r/2]
				if !identityPerm(&perm) {
					p := perm
					ct.rows[r].shuffle = &p
				}
			}
			for c := 0; c < datapath.Cols; c++ {
				var dead uint16
				if idx := r*datapath.Cols + c; idx < len(e.src.DeadElems) {
					dead = e.src.DeadElems[idx] & compElems
				}
				rs := s.rces[r*datapath.Cols+c]
				cell := compileCell(rs, c, luts[r*datapath.Cols+c], gfCache, dead)
				e.elided += cell.elided
				ct.rows[r].cells[c] = cell
			}
		}
		out = append(out, ct)
	}
	return out, nil
}

func identityPerm(p *[16]uint8) bool {
	for i, v := range p {
		if int(v) != i {
			return false
		}
	}
	return true
}

// operandOf resolves an element operand source to either a folded
// immediate (imm=true) or a block index of the current row vector. fromER
// marks immediates folded from an eRAM read: the value is key-schedule
// material, a provenance the side-channel analyzer (package sca) needs
// after the fold erases the SrcINER encoding.
func operandOf(src isa.Src, imm uint32, col int, iner uint32) (isImm bool, val uint32, blk uint8, fromER bool) {
	switch src {
	case isa.SrcINA:
		return false, 0, uint8(col), false
	case isa.SrcINB:
		return false, 0, uint8(secondaryBlock(col, 0)), false
	case isa.SrcINC:
		return false, 0, uint8(secondaryBlock(col, 1)), false
	case isa.SrcIND:
		return false, 0, uint8(secondaryBlock(col, 2)), false
	case isa.SrcINER:
		return true, iner, 0, true
	case isa.SrcImm:
		return true, imm, 0, false
	default:
		// Undefined 3-bit encodings select 0, matching rce.Inputs.Select.
		return true, 0, 0, false
	}
}

// gfTables builds (or reuses) the table pair for one F configuration:
// tab[pos][v] is input byte v at byte position pos contributing to the
// output word. XORing the four lookups reproduces bits.GFMulWord (lane
// mode: each byte contributes only to its own lane) and bits.GFMDSColumn
// (MDS mode: byte col contributes GFMul(v, c[(col-row+4)%4]) to each output
// row) exactly.
func gfTables(mode isa.FMode, c [4]uint8, cache map[[5]uint8]*gfTab) *gfTab {
	key := [5]uint8{uint8(mode), c[0], c[1], c[2], c[3]}
	if t, ok := cache[key]; ok {
		return t
	}
	t := new(gfTab)
	for pos := 0; pos < 4; pos++ {
		for v := 0; v < 256; v++ {
			var word uint32
			if mode == isa.FLanes {
				word = uint32(bits.GFMul(uint8(v), c[pos])) << (8 * uint(pos))
			} else {
				for row := 0; row < 4; row++ {
					word |= uint32(bits.GFMul(uint8(v), c[(pos-row+4)%4])) << (8 * uint(row))
				}
			}
			t[pos][v] = word
		}
	}
	cache[key] = t
	return t
}

// compileCell translates one RCE's per-cycle configuration into its step
// list, folding everything constant. Elements whose dead-mask bit is set
// compile as bypass: their value is unobservable, so dropping the step
// preserves every output (see Source.DeadElems).
func compileCell(rs rceSnap, col int, lut *rce.LUTStore, gfCache map[[5]uint8]*gfTab, dead uint16) cCell {
	cfg := rs.cfg
	cell := cCell{reg: cfg.Reg.Enabled}
	// drop reports whether the dead mask elides an otherwise-active element,
	// counting each one it drops.
	drop := func(el isa.Elem, active bool) bool {
		if !active || dead&(1<<el) == 0 {
			return false
		}
		cell.elided++
		return true
	}
	// INSEL taps INA/INB/INC/IND — column-relative, like every operand mux —
	// or the previous row's vector by absolute block index (rce.Eval).
	switch src := cfg.Insel.Source & 7; src {
	case 1:
		cell.insel = uint8(secondaryBlock(col, 0))
	case 2:
		cell.insel = uint8(secondaryBlock(col, 1))
	case 3:
		cell.insel = uint8(secondaryBlock(col, 2))
	case 4, 5, 6, 7:
		cell.insel = src // executor reads prev[src-4]
	default:
		cell.insel = uint8(col)
	}
	if cell.reg && rs.hold {
		// Frozen registered RCE: presents its stored value, latches nothing.
		cell.regOnly = true
		return cell
	}

	addE := func(e isa.ECfg) {
		if e.Mode == isa.EBypass {
			return
		}
		var kindImm uint8
		switch e.Mode {
		case isa.EShl:
			kindImm = stShlImm
		case isa.EShr:
			kindImm = stShrImm
		default:
			kindImm = stRotlImm
		}
		amtOf := func(raw uint32) uint8 {
			amt := raw & 31
			if e.Neg {
				amt = (32 - amt) & 31
			}
			return uint8(amt)
		}
		if e.AmtSrc == isa.SrcImm {
			if amt := amtOf(uint32(e.Amt)); amt != 0 || e.Mode != isa.ERotl {
				cell.steps = append(cell.steps, step{kind: kindImm, aux: amt})
			}
			return
		}
		isImm, val, blk, fromER := operandOf(e.AmtSrc, 0, col, rs.iner)
		if isImm {
			// A key-sourced amount keeps its step even when it folds to a
			// zero rotate: the identity operation costs nothing and the
			// immER provenance must survive for the side-channel profile.
			if amt := amtOf(val); amt != 0 || e.Mode != isa.ERotl || fromER {
				cell.steps = append(cell.steps, step{kind: kindImm, aux: amt, immER: fromER})
			}
			return
		}
		cell.steps = append(cell.steps, step{kind: kindImm - stShlImm + stShlVar, src: blk, flag: e.Neg})
	}
	addA := func(a isa.ACfg) {
		if a.Op == isa.ABypass {
			return
		}
		var kImm uint8
		switch a.Op {
		case isa.AXor:
			kImm = stXorImm
		case isa.AAnd:
			kImm = stAndImm
		default:
			kImm = stOrImm
		}
		isImm, val, blk, fromER := operandOf(a.Operand, a.Imm, col, rs.iner)
		if isImm {
			if a.PreShift != 0 {
				if a.PreShiftRot {
					val = bits.RotL(val, uint(a.PreShift))
				} else {
					val = bits.Shl(val, uint(a.PreShift))
				}
			}
			cell.steps = append(cell.steps, step{kind: kImm, imm: val, immER: fromER})
			return
		}
		cell.steps = append(cell.steps, step{
			kind: kImm - stXorImm + stXorBlk, src: blk, aux: a.PreShift & 31, flag: a.PreShiftRot,
		})
	}

	if !drop(isa.ElemE1, cfg.E1.Mode != isa.EBypass) {
		addE(cfg.E1)
	}
	if !drop(isa.ElemA1, cfg.A1.Op != isa.ABypass) {
		addA(cfg.A1)
	}
	if !drop(isa.ElemC, cfg.C.Mode != isa.CBypass) {
		switch cfg.C.Mode {
		case isa.CS8x8:
			cell.steps = append(cell.steps, step{kind: stS8, lut: lut})
		case isa.CS4x4:
			cell.steps = append(cell.steps, step{kind: stS4, lut: lut, aux: cfg.C.Page & 7})
		case isa.CS8to32:
			cell.steps = append(cell.steps, step{kind: stS8to32, lut: lut, aux: cfg.C.ByteSel & 3})
		}
	}
	if !drop(isa.ElemE2, cfg.E2.Mode != isa.EBypass) {
		addE(cfg.E2)
	}
	if !drop(isa.ElemD, cfg.D.Mode != isa.DBypass) {
		switch cfg.D.Mode {
		case isa.DMul16, isa.DMul32:
			w := uint8(bits.W16)
			if cfg.D.Mode == isa.DMul32 {
				w = uint8(bits.W32)
			}
			isImm, val, blk, fromER := operandOf(cfg.D.Operand, cfg.D.Imm, col, rs.iner)
			if isImm {
				cell.steps = append(cell.steps, step{kind: stMulImm, imm: val, aux: w, immER: fromER})
			} else {
				cell.steps = append(cell.steps, step{kind: stMulBlk, src: blk, aux: w})
			}
		case isa.DSquare:
			cell.steps = append(cell.steps, step{kind: stSquare})
		}
	}
	if cfg.B.Mode != isa.BBypass && !drop(isa.ElemB, true) {
		kImm, kBlk := stAddImm, stAddBlk
		if cfg.B.Mode == isa.BSub {
			kImm, kBlk = stSubImm, stSubBlk
		}
		isImm, val, blk, fromER := operandOf(cfg.B.Operand, cfg.B.Imm, col, rs.iner)
		if isImm {
			cell.steps = append(cell.steps, step{kind: kImm, imm: val, aux: cfg.B.Width & 3, immER: fromER})
		} else {
			cell.steps = append(cell.steps, step{kind: kBlk, src: blk, aux: cfg.B.Width & 3})
		}
	}
	if (cfg.F.Mode == isa.FLanes || cfg.F.Mode == isa.FMDS) && !drop(isa.ElemF, true) {
		cell.steps = append(cell.steps, step{kind: stGFTab, gf: gfTables(cfg.F.Mode, cfg.F.Consts, gfCache)})
	}
	if !drop(isa.ElemA2, cfg.A2.Op != isa.ABypass) {
		addA(cfg.A2)
	}
	if !drop(isa.ElemE3, cfg.E3.Mode != isa.EBypass) {
		addE(cfg.E3)
	}

	if len(cell.steps) == 0 && cell.insel == uint8(col) && !cell.reg {
		cell.passthrough = true
	}
	return cell
}
