package equiv

import (
	"fmt"
	"strings"

	"cobra/internal/bits"
	"cobra/internal/datapath"
	"cobra/internal/isa"
	"cobra/internal/rce"
	"cobra/internal/sim"
)

// refMaxSteps bounds the reference walk's instruction fetches, mirroring
// package dataflow's budget: a bulk phase that has not produced its next
// output within this many fetches is refused rather than hung on.
const refMaxSteps = 1 << 22

// refWalker symbolically executes the microcode's bulk-encryption phase:
// the reference side of the translation validation. The setup phase (load
// to the ready idle point) runs concretely on a real cycle-accurate machine
// — every value is a compile-time constant there, exactly as the fastpath
// recorder sees it — and the walker takes over at the idle point, mirroring
// sim.Machine.Run instruction by instruction with the machine's own array
// as the configuration shadow (applied, never Ticked) and expression IDs in
// place of the 32-bit data words.
type refWalker struct {
	a *Arena
	m *sim.Machine

	window int
	pc     int
	slot   int
	flags  uint16
	steps  int

	inCount int
	reg     [][datapath.Cols]xid
	fb      [datapath.Cols]xid

	// Interned LUT table ids per cell, resolved lazily; LUT loads during
	// bulk are refused, so one interning per cell is valid for the walk.
	s8ids map[int]uint32
	s4ids map[int]uint32
}

// newRefWalker loads the program on a scratch machine, runs setup
// concretely to the ready idle point, and initializes the symbolic state
// from the machine's concrete registers and feedback.
func newRefWalker(a *Arena, words []isa.Word, geo datapath.Geometry, window int) (*refWalker, error) {
	m, err := sim.New(geo, window)
	if err != nil {
		return nil, err
	}
	m.Go = false
	if err := m.LoadProgram(words); err != nil {
		return nil, err
	}
	reason, err := m.Run(sim.Limits{})
	if err != nil {
		return nil, err
	}
	if reason != sim.StopWaitGo {
		return nil, fmt.Errorf("equiv: setup stopped with %v, want idle at ready", reason)
	}
	w := &refWalker{
		a:      a,
		m:      m,
		window: window,
		pc:     m.Seq.PC(),
		flags:  m.Seq.Flags(),
		reg:    make([][datapath.Cols]xid, geo.Rows),
		s8ids:  make(map[int]uint32),
		s4ids:  make(map[int]uint32),
	}
	for r := 0; r < geo.Rows; r++ {
		for c := 0; c < datapath.Cols; c++ {
			w.reg[r][c] = a.Const(m.Array.RegValue(r, c))
		}
	}
	for c := 0; c < datapath.Cols; c++ {
		w.fb[c] = a.Const(m.Array.Feedback()[c])
	}
	return w, nil
}

// idleReg returns the concrete idle-point register value (the cross-check
// against the trace's recorded initial state).
func (w *refWalker) idleReg(r, c int) uint32 { return w.m.Array.RegValue(r, c) }
func (w *refWalker) idleFB() bits.Block128   { return w.m.Array.Feedback() }

// nextOutput advances the symbolic walk to the next collected output block
// and returns its four column expressions. It mirrors sim.Machine.Run's
// fetch/slot/tick loop; instructions the compiled trace cannot replay
// (eRAM writes, LUT loads, capture enables, halts) are refused — exactly
// the set the fastpath recorder's hazard watcher refuses, so a refusal here
// means Compile would have failed too.
func (w *refWalker) nextOutput() ([datapath.Cols]xid, error) {
	var zero [datapath.Cols]xid
	for {
		if w.steps >= refMaxSteps {
			return zero, fmt.Errorf("equiv: reference walk exceeded %d instruction fetches", refMaxSteps)
		}
		w.steps++
		if w.pc < 0 || w.pc >= w.m.Seq.Len() {
			return zero, fmt.Errorf("equiv: control falls off the program (pc=%#x)", w.pc)
		}
		addr := w.pc
		in, err := w.m.Seq.Instr(addr)
		if err != nil {
			return zero, err
		}
		w.pc++
		ready, err := w.execute(addr, in)
		if err != nil {
			return zero, err
		}
		if ready {
			// Idle point: the window resynchronizes (sim.Machine resyncs its
			// slot counter; input availability is the executor's to grant and
			// is always granted during bulk).
			w.slot = 0
			continue
		}
		w.slot++
		if w.slot < w.window {
			continue
		}
		w.slot = 0
		out, emitted, err := w.tick()
		if err != nil {
			return zero, err
		}
		if emitted {
			return out, nil
		}
	}
}

// execute mirrors sim.Machine.execute over the shadow array. Opcodes that
// mutate state the trace resolved to constants are refused.
func (w *refWalker) execute(addr int, in isa.Instr) (ready bool, err error) {
	arr := w.m.Array
	switch in.Op {
	case isa.OpNop:
	case isa.OpCfgElem:
		if err := arr.ApplyElem(in.Slice, in.Elem, in.Data); err != nil {
			return false, fmt.Errorf("equiv: %#x: %v", addr, err)
		}
	case isa.OpEnOut, isa.OpDisOut:
		if err := arr.SetOutEnable(in.Slice, in.Op == isa.OpEnOut); err != nil {
			return false, fmt.Errorf("equiv: %#x: %v", addr, err)
		}
	case isa.OpLoadLUT:
		return false, fmt.Errorf("equiv: LUT load at %#x during bulk encryption", addr)
	case isa.OpCfgShuf:
		idx := int(in.Slice.Row)
		if idx < 0 || idx >= arr.Geometry().Shufflers() {
			return false, fmt.Errorf("equiv: %#x: shuffler %d out of range", addr, idx)
		}
		if err := arr.SetShuffler(idx, isa.DecodeShuf(in.Data)); err != nil {
			return false, fmt.Errorf("equiv: %#x: %v", addr, err)
		}
	case isa.OpCfgInMux:
		arr.SetInMux(isa.DecodeInMux(in.Data))
	case isa.OpCfgWhite:
		arr.SetWhitening(isa.DecodeWhite(in.Data))
	case isa.OpERAMWrite:
		return false, fmt.Errorf("equiv: eRAM write at %#x during bulk encryption", addr)
	case isa.OpCfgCapture:
		cfg := isa.DecodeCapture(in.Data)
		if cfg.Enabled {
			return false, fmt.Errorf("equiv: capture port enabled at %#x during bulk encryption", addr)
		}
		arr.SetCapture(int(in.Slice.Col&3), cfg)
	case isa.OpCtlFlag:
		cfg := isa.DecodeFlag(in.Data)
		w.flags = (w.flags &^ cfg.Clear) | cfg.Set
		if cfg.Set&isa.FlagReady != 0 {
			return true, nil
		}
	case isa.OpJmp:
		target := int(in.Data & 0xfff)
		if target >= w.m.Seq.Len() {
			return false, fmt.Errorf("equiv: %#x: jump target %#x outside the program", addr, target)
		}
		w.pc = target
	case isa.OpHalt:
		return false, fmt.Errorf("equiv: program halts at %#x before the walk closed", addr)
	default:
		return false, fmt.Errorf("equiv: %#x: unimplemented opcode %v", addr, in.Op)
	}
	return false, nil
}

// tick mirrors datapath.Array.Tick symbolically: the same phase order,
// shuffler and bypass-bus semantics, register present/latch split, with
// every 32-bit word replaced by an arena expression.
func (w *refWalker) tick() (out [datapath.Cols]xid, emitted bool, err error) {
	a, arr := w.a, w.m.Array
	if !arr.Enabled() {
		return out, false, nil // stall: no state moves
	}
	im := arr.InMux()
	var vec [datapath.Cols]xid
	switch im.Mode {
	case isa.InExternal:
		for c := 0; c < datapath.Cols; c++ {
			vec[c] = a.Input(w.inCount, c)
		}
		w.inCount++
	case isa.InFeedback:
		vec = w.fb
	case isa.InERAM:
		// eRAM contents are frozen during bulk (writes and captures are
		// refused), so playback reads are the setup-time constants.
		for c := 0; c < datapath.Cols; c++ {
			vec[c] = a.Const(arr.ReadERAM(c, int(im.Bank), int(arr.PlaybackAddr())))
		}
	}
	for c := 0; c < datapath.Cols; c++ {
		vec[c] = whiteExpr(a, vec[c], arr.Whitening(c), true)
	}

	type pend struct {
		r, c int
		v    xid
	}
	var latches []pend
	prev := vec
	rows := arr.Geometry().Rows
	for r := 0; r < rows; r++ {
		if r%2 == 1 {
			perm := arr.Shuffler(r / 2)
			vec = symShuffle(a, vec, &perm)
		}
		rowIn := vec
		var next [datapath.Cols]xid
		for c := 0; c < datapath.Cols; c++ {
			el := arr.RCE(r, c)
			if el.Cfg.Reg.Enabled && arr.Held(r, c) {
				// Frozen register: presents its stored value, latches nothing.
				next[c] = w.reg[r][c]
				continue
			}
			v := w.evalCell(r, c, el, vec, prev)
			if el.Cfg.Reg.Enabled {
				next[c] = w.reg[r][c]
				latches = append(latches, pend{r, c, v})
			} else {
				next[c] = v
			}
		}
		vec = next
		prev = rowIn
	}

	for c := 0; c < datapath.Cols; c++ {
		vec[c] = whiteExpr(a, vec[c], arr.Whitening(c), false)
	}

	// Commit.
	for _, p := range latches {
		w.reg[p.r][p.c] = p.v
	}
	for c := 0; c < datapath.Cols; c++ {
		if arr.Capture(c).Enabled {
			// Unreachable given the execute() refusal, but a capture armed
			// before bulk began would silently corrupt the frozen-eRAM model.
			return out, false, fmt.Errorf("equiv: capture port active at an advancing cycle")
		}
	}
	if im.Mode == isa.InERAM {
		arr.SetInMux(isa.InMuxCfg{Mode: isa.InERAM, Bank: im.Bank, Addr: arr.PlaybackAddr() + 1})
	}
	w.fb = vec

	if w.flags&isa.FlagDValid != 0 {
		return vec, true, nil
	}
	return out, false, nil
}

// evalCell mirrors rce.Eval symbolically: INSEL selection, then every
// element of the fixed chain in order, each building its arena expression.
func (w *refWalker) evalCell(r, c int, el *rce.RCE, vec, prev [datapath.Cols]xid) xid {
	a := w.a
	cfg := &el.Cfg

	// sel resolves an operand source, mirroring rce.Inputs.Select: the eRAM
	// read port is a frozen setup-time constant, undefined sources are zero.
	sel := func(src isa.Src, imm uint32) xid {
		switch src {
		case isa.SrcINB:
			return vec[secondaryBlock(c, 0)]
		case isa.SrcINC:
			return vec[secondaryBlock(c, 1)]
		case isa.SrcIND:
			return vec[secondaryBlock(c, 2)]
		case isa.SrcINER:
			return a.Const(w.m.Array.ReadERAM(c, int(cfg.ER.Bank), int(cfg.ER.Addr)))
		case isa.SrcImm:
			return a.Const(imm)
		case isa.SrcINA:
			return vec[c]
		}
		return a.Const(0)
	}
	evalE := func(e isa.ECfg, x xid) xid {
		if e.Mode == isa.EBypass {
			return x
		}
		if e.AmtSrc == isa.SrcImm {
			amt := uint(e.Amt)
			if e.Neg {
				amt = (32 - amt) & 31
			}
			switch e.Mode {
			case isa.EShl:
				return a.Shl(x, amt)
			case isa.EShr:
				return a.Shr(x, amt)
			default:
				return a.Rotl(x, amt)
			}
		}
		amtX := sel(e.AmtSrc, 0)
		switch e.Mode {
		case isa.EShl:
			return a.ShlVar(x, amtX, e.Neg)
		case isa.EShr:
			return a.ShrVar(x, amtX, e.Neg)
		default:
			return a.RotlVar(x, amtX, e.Neg)
		}
	}
	evalA := func(ac isa.ACfg, x xid) xid {
		if ac.Op == isa.ABypass {
			return x
		}
		op := sel(ac.Operand, ac.Imm)
		if ac.PreShift != 0 {
			if ac.PreShiftRot {
				op = a.Rotl(op, uint(ac.PreShift))
			} else {
				op = a.Shl(op, uint(ac.PreShift))
			}
		}
		switch ac.Op {
		case isa.AXor:
			return a.Xor(x, op)
		case isa.AAnd:
			return a.And(x, op)
		default:
			return a.Or(x, op)
		}
	}

	var x xid
	switch src := cfg.Insel.Source & 7; src {
	case 1:
		x = vec[secondaryBlock(c, 0)]
	case 2:
		x = vec[secondaryBlock(c, 1)]
	case 3:
		x = vec[secondaryBlock(c, 2)]
	case 4, 5, 6, 7:
		x = prev[src-4]
	default:
		x = vec[c]
	}
	x = evalE(cfg.E1, x)
	x = evalA(cfg.A1, x)
	switch cfg.C.Mode {
	case isa.CS8x8:
		x = a.S8(x, w.s8id(r, c, el))
	case isa.CS4x4:
		x = a.S4(x, w.s4id(r, c, el), uint32(cfg.C.Page))
	case isa.CS8to32:
		x = a.S8to32(x, w.s8id(r, c, el), uint32(cfg.C.ByteSel))
	}
	x = evalE(cfg.E2, x)
	if el.HasMul {
		switch cfg.D.Mode {
		case isa.DMul16:
			x = a.Mul(x, sel(cfg.D.Operand, cfg.D.Imm), bits.W16)
		case isa.DMul32:
			x = a.Mul(x, sel(cfg.D.Operand, cfg.D.Imm), bits.W32)
		case isa.DSquare:
			x = a.Square(x)
		}
	}
	if cfg.B.Mode != isa.BBypass {
		op := sel(cfg.B.Operand, cfg.B.Imm)
		if cfg.B.Mode == isa.BAdd {
			x = a.Add(x, op, bits.Width(cfg.B.Width))
		} else {
			x = a.Sub(x, op, bits.Width(cfg.B.Width))
		}
	}
	switch cfg.F.Mode {
	case isa.FLanes:
		x = a.GF(x, gfLanes, cfg.F.Consts)
	case isa.FMDS:
		x = a.GF(x, gfMDS, cfg.F.Consts)
	}
	x = evalA(cfg.A2, x)
	x = evalE(cfg.E3, x)
	return x
}

func (w *refWalker) s8id(r, c int, el *rce.RCE) uint32 {
	key := r*datapath.Cols + c
	if id, ok := w.s8ids[key]; ok {
		return id
	}
	id := w.a.InternS8(&el.LUT.S8)
	w.s8ids[key] = id
	return id
}

func (w *refWalker) s4id(r, c int, el *rce.RCE) uint32 {
	key := r*datapath.Cols + c
	if id, ok := w.s4ids[key]; ok {
		return id
	}
	id := w.a.InternS4(&el.LUT.S4)
	w.s4ids[key] = id
	return id
}

// ctlKey renders the walker's complete control and configuration state —
// pc, flags, output enables, input mux, playback address, every cell's
// decoded configuration and hold bit, shufflers, and whitening. Together
// with the frozen eRAM/LUT contents and the immutable instruction stream
// (neither of which can change during bulk — the walk refuses the writes),
// this determines every future control decision and every future operation
// applied to the carried data. Data expressions are deliberately absent:
// control in this machine is data-independent, and the inductive step
// quantifies over the carried data separately.
func (w *refWalker) ctlKey() string {
	arr := w.m.Array
	var sb strings.Builder
	im := arr.InMux()
	fmt.Fprintf(&sb, "pc=%d f=%04x en=%t im=%d.%d.%d pa=%d|",
		w.pc, w.flags, arr.Enabled(), im.Mode, im.Bank, im.Addr, arr.PlaybackAddr())
	rows := arr.Geometry().Rows
	for r := 0; r < rows; r++ {
		for c := 0; c < datapath.Cols; c++ {
			// rce.Config is a plain comparable struct of decoded fields; its
			// %v rendering is an exact representation.
			fmt.Fprintf(&sb, "%v/%t;", arr.RCE(r, c).Cfg, arr.Held(r, c))
		}
	}
	for i := 0; i < arr.Geometry().Shufflers(); i++ {
		fmt.Fprintf(&sb, "s%v;", arr.Shuffler(i))
	}
	for c := 0; c < datapath.Cols; c++ {
		fmt.Fprintf(&sb, "w%v;", arr.Whitening(c))
	}
	return sb.String()
}

// carried returns the walker's carried-data expressions: register cells in
// row-major order, then the feedback words.
func (w *refWalker) carried() []xid {
	ids := make([]xid, 0, len(w.reg)*datapath.Cols+datapath.Cols)
	for r := range w.reg {
		ids = append(ids, w.reg[r][:]...)
	}
	return append(ids, w.fb[:]...)
}

// setCarried overwrites the carried data (the inductive step's
// generalization point). Layout matches carried().
func (w *refWalker) setCarried(ids []xid) {
	for r := range w.reg {
		copy(w.reg[r][:], ids[r*datapath.Cols:])
	}
	copy(w.fb[:], ids[len(w.reg)*datapath.Cols:])
}

// whiteExpr applies one column's whitening register symbolically when the
// stage matches (datapath.whiteState.apply; WhiteAdd is a full 32-bit add).
func whiteExpr(a *Arena, x xid, cfg isa.WhiteCfg, atInput bool) xid {
	if cfg.In != atInput {
		return x
	}
	switch cfg.Mode {
	case isa.WhiteXor:
		return a.Xor(x, a.Const(cfg.Key))
	case isa.WhiteAdd:
		return a.Add(x, a.Const(cfg.Key), bits.W32)
	default:
		return x
	}
}

// symShuffle permutes the sixteen stream bytes symbolically: destination
// word c packs the four extracted source bytes (perm[dst] = src index).
// An identity permutation normalizes back to the unshuffled words, which is
// how the fastpath's compiled-out identity shufflers stay equivalent.
func symShuffle(a *Arena, v [datapath.Cols]xid, perm *[16]uint8) [datapath.Cols]xid {
	var out [datapath.Cols]xid
	for c := 0; c < datapath.Cols; c++ {
		var b [4]xid
		for i := 0; i < 4; i++ {
			src := perm[c*4+i]
			b[i] = a.Byte(v[src>>2], int(src&3))
		}
		out[c] = a.Pack4(b)
	}
	return out
}

// secondaryBlock mirrors datapath's fixed interconnect: the block index of
// column c's k-th secondary input (k = 0 → INB, 1 → INC, 2 → IND).
func secondaryBlock(c, k int) int {
	b := k
	if b >= c {
		b++
	}
	return b
}
