package sca

import (
	"fmt"

	"cobra/internal/datapath"
	"cobra/internal/vet"
)

// Compare runs the microcode/fastpath differential: the two profiles must
// name the same table-read sites with the same index taints, and agree on
// the taint of every collected output word. Counts and tick numbers are
// walk-length artifacts and deliberately not compared; eRAM address and
// control lanes are microcode-only (the fastpath fold resolves every eRAM
// read to an immediate, so those lanes have no fastpath counterpart).
//
// A microcode site missing from the fastpath is tolerated only when the
// compiled trace elided ops (the dead-op elision the fastpath differential
// suite already guards); a fastpath site missing from the microcode is
// always an error — the compiled ops read a table the microcode analysis
// never saw.
func Compare(mc, fp *Profile) []vet.Finding {
	var out []vet.Finding
	mismatch := func(msg string) {
		out = append(out, vet.Finding{Addr: 0, Sev: vet.Error, Code: "ct-profile-mismatch", Msg: msg})
	}

	if !fp.Complete {
		mismatch("fastpath taint walk did not close: differential check impossible")
		return out
	}

	fpSites := make(map[[3]int]Access, len(fp.Accesses))
	for _, a := range fp.Accesses {
		fpSites[accessKey(a.Row, a.Col, a.Elem)] = a
	}
	mcSites := make(map[[3]int]bool, len(mc.Accesses))

	for _, m := range mc.Accesses {
		k := accessKey(m.Row, m.Col, m.Elem)
		mcSites[k] = true
		f, ok := fpSites[k]
		if !ok {
			if fp.Elided > 0 {
				continue // dropped under the dead mask, with the mask's own guarantees
			}
			mismatch(fmt.Sprintf("table site %s: microcode reads it (index taint %s, first at cycle %d) but the compiled fastpath has no such read and elided nothing", m, m.Taint, m.FirstTick))
			continue
		}
		if f.Taint != m.Taint {
			mismatch(fmt.Sprintf("table site %s: index taint differs — microcode %s (first at cycle %d) vs fastpath %s (first at tick %d)", m, m.Taint, m.FirstTick, f.Taint, f.FirstTick))
		}
	}
	for _, f := range fp.Accesses {
		if !mcSites[accessKey(f.Row, f.Col, f.Elem)] {
			mismatch(fmt.Sprintf("table site %s: compiled fastpath reads it (index taint %s, first at tick %d) but the microcode profile has no such site", f, f.Taint, f.FirstTick))
		}
	}

	for c := 0; c < datapath.Cols; c++ {
		if mc.OutTaint[c] != fp.OutTaint[c] {
			mismatch(fmt.Sprintf("output column %d: taint differs — microcode %s vs fastpath %s", c, mc.OutTaint[c], fp.OutTaint[c]))
		}
	}
	return out
}
