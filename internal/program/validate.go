package program

import (
	"cobra/internal/equiv"
	"cobra/internal/fastpath"
)

// Validate trace-compiles the program and runs the translation validator
// over the result: a symbolic proof that the compiled fastpath computes the
// same block stream as the microcode (see package equiv). The returned
// Result is never nil when err is nil; a compile refusal (fastpath.ErrNotSteady
// and friends) is returned as err, since there is no trace to validate.
func (p *Program) Validate() (*equiv.Result, error) {
	ex, err := p.Compile()
	if err != nil {
		return nil, err
	}
	return p.ValidateExec(ex), nil
}

// ValidateExec validates an already-compiled executor against this
// program's microcode.
func (p *Program) ValidateExec(ex *fastpath.Exec) *equiv.Result {
	return equiv.Validate(p.Words(), equiv.Config{
		Name:     p.Name,
		Geometry: p.Geometry,
		Window:   p.Window,
	}, ex.Trace())
}
