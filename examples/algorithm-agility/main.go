// algorithm-agility demonstrates the §1 scenario that motivates
// reconfigurable hardware over ASICs: security protocols such as SSL and
// IPsec negotiate the cipher per session, so the device must switch
// algorithms during operation. One COBRA device (the base 4×4 array)
// re-loads microcode to serve three sessions with three different ciphers
// — and a fourth session with new, proprietary Serpent S-boxes would be
// just another microcode image (§1: "applications exist which require
// modification of a standardized algorithm").
package main

import (
	"context"
	"fmt"
	"log"

	"cobra/internal/core"
)

type session struct {
	peer string
	alg  core.Algorithm
	key  byte
}

func main() {
	sessions := []session{
		{"10.0.0.2", core.Rijndael, 0x11},
		{"10.0.0.7", core.RC6, 0x22},
		{"10.0.0.9", core.Serpent, 0x33},
		{"10.0.0.2", core.Rijndael, 0x44}, // re-key of the first peer
	}

	// One device serves every session; unroll 2/2/1 keep all three ciphers
	// on the same base 4-row silicon, so agility is purely a microcode
	// reload — no re-tiling.
	unroll := map[core.Algorithm]int{core.Rijndael: 2, core.RC6: 2, core.Serpent: 1}

	key := make([]byte, 16)
	for i := range key {
		key[i] = sessions[0].key
	}
	dev, err := core.Configure(sessions[0].alg, key, core.Config{Unroll: unroll[sessions[0].alg]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %d-row COBRA array, serving %d sessions\n\n",
		dev.Geometry().Rows, len(sessions))

	payload := []byte("instruction-level distributed processing for symmetric-key      ")
	for i, s := range sessions {
		for j := range key {
			key[j] = s.key
		}
		if i > 0 {
			if err := dev.Reconfigure(s.alg, key, core.Config{Unroll: unroll[s.alg]}); err != nil {
				log.Fatal(err)
			}
		}
		ct, err := dev.EncryptECB(context.Background(), payload)
		if err != nil {
			log.Fatal(err)
		}
		pt, err := dev.DecryptECB(context.Background(), ct)
		if err != nil {
			log.Fatal(err)
		}
		ok := string(pt) == string(payload)
		fmt.Printf("session %d  peer %-9s  %-9s  microcode %4d words  ct[0:8]=%x  roundtrip=%v\n",
			i+1, s.peer, s.alg, dev.Microcode(), ct[:8], ok)
		if !ok {
			log.Fatal("round trip failed")
		}
	}

	fmt.Println("\nalgorithm switches required zero hardware changes (same geometry).")
}
