// Package cobra's top-level benchmark suite regenerates every table and
// figure of the paper's evaluation section; run with
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN drives the corresponding harness in internal/bench
// and reports the headline quantity as a custom metric, so a single bench
// run prints the whole reproduction next to Go's timing output. The
// BenchmarkSoftwareBaseline* group measures the pure-Go reference ciphers
// — the general-purpose-processor baseline the paper's introduction argues
// cannot reach the 622 Mbps requirement — and BenchmarkSimulator* measure
// the simulator's own speed (host cycles per simulated datapath cycle).
package cobra_test

import (
	"context"
	"fmt"
	"testing"

	"cobra/internal/bench"
	"cobra/internal/census"
	"cobra/internal/cipher"
	"cobra/internal/core"
	"cobra/internal/datapath"
	"cobra/internal/farm"
	"cobra/internal/model"
	"cobra/internal/program"
)

var benchKey = []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

// BenchmarkTable1 regenerates the AES-finalist FPGA study table
// (literature data; the benchmark measures the renderer).
func BenchmarkTable1(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Table1Text()
	}
	if testing.Verbose() {
		b.Log("\n" + out)
	}
	_ = out
}

// BenchmarkTable2 regenerates the 41-cipher operation census.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := census.Table2()
		if rows[0].Occurrences != 40 {
			b.Fatal("census drifted")
		}
	}
	if testing.Verbose() {
		b.Log("\n" + bench.Table2Text())
	}
}

// benchmarkConfig measures one Table 3 row, reporting the paper's metrics
// as custom benchmark outputs.
func benchmarkConfig(b *testing.B, alg string, rounds int) {
	c := bench.Config{Alg: alg, Rounds: rounds}
	var m bench.Measurement
	var err error
	for i := 0; i < b.N; i++ {
		m, err = bench.Measure(c, benchKey, 32)
		if err != nil {
			b.Fatal(err)
		}
		if !m.Verified {
			b.Fatalf("%s-%d failed verification", alg, rounds)
		}
	}
	b.ReportMetric(m.CyclesPerBlock, "cycles/block")
	b.ReportMetric(m.FreqMHz, "MHz")
	b.ReportMetric(m.Mbps, "Mbps(model)")
}

// BenchmarkTable3 covers every configuration of the performance sweep.
func BenchmarkTable3(b *testing.B) {
	for _, c := range bench.Configurations() {
		b.Run(fmt.Sprintf("%s-%d", c.Alg, c.Rounds), func(b *testing.B) {
			benchmarkConfig(b, c.Alg, c.Rounds)
		})
	}
}

// BenchmarkTable4 regenerates the element gate counts.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := model.Table4()
		if g.C != 98624 {
			b.Fatal("Table 4 drifted")
		}
	}
	if testing.Verbose() {
		b.Log("\n" + bench.Table4Text())
	}
}

// BenchmarkTable5 regenerates the architecture gate counts and reports the
// base total as a metric.
func BenchmarkTable5(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		total = model.Table5(model.Table4(), datapath.BaseGeometry()).Total()
	}
	b.ReportMetric(float64(total), "gates(base)")
	if testing.Verbose() {
		b.Log("\n" + bench.Table5Text(datapath.BaseGeometry()))
	}
}

// BenchmarkTable6 regenerates the cycle-gates product sweep and reports
// each cipher's best-configuration CG as metrics.
func BenchmarkTable6(b *testing.B) {
	var rows []model.CGRow
	for i := 0; i < b.N; i++ {
		ms, err := bench.MeasureAll(benchKey, 16)
		if err != nil {
			b.Fatal(err)
		}
		rows = bench.Table6Rows(ms)
	}
	for _, r := range rows {
		if r.Normalized == 1.0 {
			b.ReportMetric(r.CGProduct, "bestCG/"+r.Cipher)
		}
	}
}

// BenchmarkFigure1 renders the architecture topology.
func BenchmarkFigure1(b *testing.B) {
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = bench.Figure1Text(bench.Config{Alg: "rijndael", Rounds: 2}, benchKey)
		if err != nil {
			b.Fatal(err)
		}
	}
	if testing.Verbose() {
		b.Log("\n" + out)
	}
}

// BenchmarkFigure23 renders the configured RCE/RCE MUL chains.
func BenchmarkFigure23(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure23Text(bench.Config{Alg: "rc6", Rounds: 2}, benchKey); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkATMRequirement checks the §1 headline claim across the three
// full-length pipelines.
func BenchmarkATMRequirement(b *testing.B) {
	for _, c := range []bench.Config{{Alg: "rc6", Rounds: 20},
		{Alg: "rijndael", Rounds: 10}, {Alg: "serpent", Rounds: 32}} {
		b.Run(fmt.Sprintf("%s-%d", c.Alg, c.Rounds), func(b *testing.B) {
			var m bench.Measurement
			var err error
			for i := 0; i < b.N; i++ {
				m, err = bench.Measure(c, benchKey, 64)
				if err != nil {
					b.Fatal(err)
				}
			}
			if m.Mbps < bench.ATMRequirementMbps {
				b.Fatalf("%s-%d: %.1f Mbps misses 622 Mbps", c.Alg, c.Rounds, m.Mbps)
			}
			b.ReportMetric(m.Mbps, "Mbps(model)")
		})
	}
}

// --- Software baseline (§1: GPP implementations vs. the requirement) ---------

func benchmarkSoftware(b *testing.B, blk cipher.Block) {
	buf := make([]byte, blk.BlockSize())
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.Encrypt(buf, buf)
	}
}

// BenchmarkSoftwareBaseline measures the pure-Go reference ciphers.
func BenchmarkSoftwareBaseline(b *testing.B) {
	mk := func(blk cipher.Block, err error) cipher.Block {
		if err != nil {
			b.Fatal(err)
		}
		return blk
	}
	key32 := make([]byte, 32)
	ciphers := []struct {
		name string
		blk  cipher.Block
	}{
		{"rc6", mk(cipher.NewRC6(benchKey))},
		{"rijndael", mk(cipher.NewRijndael(benchKey))},
		{"serpent", mk(cipher.NewSerpent(benchKey))},
		{"serpent-cobra", mk(cipher.NewSerpentCOBRA(benchKey))},
		{"des", mk(cipher.NewDES(benchKey[:8]))},
		{"idea", mk(cipher.NewIDEA(benchKey))},
		{"tea", mk(cipher.NewTEA(benchKey))},
		{"xtea", mk(cipher.NewXTEA(benchKey))},
		{"rc5", mk(cipher.NewRC5(benchKey))},
		{"blowfish", mk(cipher.NewBlowfish(benchKey))},
		{"gost", mk(cipher.NewGOST(key32))},
	}
	for _, c := range ciphers {
		b.Run(c.name, func(b *testing.B) { benchmarkSoftware(b, c.blk) })
	}
}

// --- Simulator engineering benchmarks ------------------------------------------

// BenchmarkSimulatorDatapathCycle measures the cost of one simulated
// datapath cycle on a fully configured array.
func BenchmarkSimulatorDatapathCycle(b *testing.B) {
	p, err := program.BuildRijndael(benchKey, 2)
	if err != nil {
		b.Fatal(err)
	}
	m, err := program.NewMachine(p)
	if err != nil {
		b.Fatal(err)
	}
	if err := program.Load(m, p); err != nil {
		b.Fatal(err)
	}
	blocks := make([]byte, 16*64)
	b.SetBytes(16)
	b.ResetTimer()
	n := 0
	for n < b.N {
		out := make([]byte, len(blocks))
		stats, err := program.RunBytes(m, p, out, blocks, program.Opts{})
		if err != nil {
			b.Fatal(err)
		}
		_ = out
		n += stats.Cycles
	}
	b.ReportMetric(float64(n), "sim-cycles")
}

// BenchmarkSimulatorThroughput measures end-to-end simulated encryption
// speed (host side) for the full AES pipeline.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p, err := program.BuildRijndael(benchKey, 10)
	if err != nil {
		b.Fatal(err)
	}
	m, err := program.NewMachine(p)
	if err != nil {
		b.Fatal(err)
	}
	if err := program.Load(m, p); err != nil {
		b.Fatal(err)
	}
	src := make([]byte, 16*128)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := program.RunBytes(m, p, make([]byte, len(src)), src, program.Opts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssembler measures assembly of a realistic program.
func BenchmarkAssembler(b *testing.B) {
	p, err := program.BuildSerpent(benchKey, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := program.BuildSerpent(benchKey, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = p.Words()
		}
	})
}

// BenchmarkTimingAnalysis measures the static timing analyzer.
func BenchmarkTimingAnalysis(b *testing.B) {
	p, err := program.BuildSerpent(benchKey, 32)
	if err != nil {
		b.Fatal(err)
	}
	m, err := program.NewMachine(p)
	if err != nil {
		b.Fatal(err)
	}
	if err := program.Load(m, p); err != nil {
		b.Fatal(err)
	}
	d := model.DefaultDelays()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := model.Analyze(m.Array, d)
		if tm.DatapathMHz <= 0 {
			b.Fatal("bad analysis")
		}
	}
}

// BenchmarkBatchAblation reports the pipeline-fill amortization of the
// full-length Serpent pipeline (the §4.1 drain discussion).
func BenchmarkBatchAblation(b *testing.B) {
	var single, amortized float64
	for i := 0; i < b.N; i++ {
		pts, err := bench.BatchSweep(bench.Config{Alg: "serpent", Rounds: 32}, benchKey, []int{1, 64})
		if err != nil {
			b.Fatal(err)
		}
		single, amortized = pts[0].CyclesPerBlock, pts[1].CyclesPerBlock
	}
	b.ReportMetric(single, "cycles/blk(N=1)")
	b.ReportMetric(amortized, "cycles/blk(N=64)")
}

// BenchmarkFarmCTR measures the multi-device farm on the counter-mode
// sharding workload across pool sizes. The headline metric is Mbps(sim) —
// aggregate simulated throughput derived from the busiest worker's cycle
// count — which must rise monotonically from 1 to 4 workers (the
// replication payoff of Table 1's non-feedback column). Host ns/op
// additionally improves with real cores (GOMAXPROCS permitting).
func BenchmarkFarmCTR(b *testing.B) {
	src := make([]byte, 16*2048)
	for i := range src {
		src[i] = byte(i * 31)
	}
	iv := make([]byte, 16)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			f, err := farm.Open(core.Rijndael, benchKey, farm.Options{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.SetBytes(int64(len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.EncryptCTR(context.Background(), iv, src); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			r := f.Report()
			b.ReportMetric(r.EffectiveMbps, "Mbps(sim)")
			b.ReportMetric(float64(r.WallCycles)/float64(b.N), "wall-cyc/op")
		})
	}
}

// BenchmarkDecryption measures the decryption datapath across the three
// ciphers at the base-architecture granularity.
func BenchmarkDecryption(b *testing.B) {
	for _, c := range []bench.Config{{Alg: "rc6", Rounds: 2},
		{Alg: "rijndael", Rounds: 2}, {Alg: "serpent", Rounds: 1}} {
		b.Run(fmt.Sprintf("%s-%d", c.Alg, c.Rounds), func(b *testing.B) {
			p, err := bench.BuildDecrypt(c, benchKey)
			if err != nil {
				b.Fatal(err)
			}
			m, err := program.NewMachine(p)
			if err != nil {
				b.Fatal(err)
			}
			if err := program.Load(m, p); err != nil {
				b.Fatal(err)
			}
			src := make([]byte, 16*16)
			b.SetBytes(int64(len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := program.RunBytes(m, p, make([]byte, len(src)), src, program.Opts{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
