package program

import (
	"bytes"
	"testing"

	"cobra/internal/cipher"
)

func TestSerpentWindowedCorrectAllWindows(t *testing.T) {
	ref, err := cipher.NewSerpentCOBRA(testKey)
	if err != nil {
		t.Fatal(err)
	}
	want := refEncryptECB(t, ref, testPlain)
	for _, w := range []int{1, 2, 3, 4, 8} {
		p, err := BuildSerpentWindowed(testKey, w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if p.Window != w {
			t.Fatalf("w=%d: program window = %d", w, p.Window)
		}
		got, stats := cobraEncryptECB(t, p, testPlain)
		if !bytes.Equal(got, want) {
			t.Errorf("w=%d: ciphertext mismatch", w)
		}
		t.Logf("serpent-1 w=%d: %.1f cycles/block, %d NOP slots",
			w, float64(stats.Cycles)/float64(stats.BlocksOut), stats.Nops)
	}
}

func TestSerpentWindowedCyclesDropWithWindow(t *testing.T) {
	// The §3.4 tradeoff: a larger window removes overfull stall cycles
	// (fewer datapath cycles) at the cost of a slower datapath clock.
	cpb := func(w int) float64 {
		p, err := BuildSerpentWindowed(testKey, w)
		if err != nil {
			t.Fatal(err)
		}
		_, stats := cobraEncryptECB(t, p, testPlain)
		return float64(stats.Cycles) / float64(stats.BlocksOut)
	}
	c1, c2 := cpb(1), cpb(2)
	if c2 >= c1 {
		t.Errorf("window 2 (%.1f cyc/blk) should beat window 1 (%.1f)", c2, c1)
	}
	// And the throughput at the derated clock must still win for w=2.
	if 128.0/2/c2 <= 128.0/c1 {
		t.Errorf("w=2 should win in throughput: %.3f vs %.3f bits/ns-ish",
			128.0/2/c2, 128.0/c1)
	}
}

func TestSerpentWindowedRejectsBadWindow(t *testing.T) {
	if _, err := BuildSerpentWindowed(testKey, 0); err == nil {
		t.Error("expected error for window 0")
	}
	if _, err := BuildSerpentWindowed(testKey, 99); err == nil {
		t.Error("expected error for window 99")
	}
	if _, err := BuildSerpentWindowed(make([]byte, 3), 2); err == nil {
		t.Error("expected key error")
	}
}
