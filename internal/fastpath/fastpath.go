// Package fastpath is a trace-compiled bulk-encryption executor for COBRA
// programs: it runs one steady-state encryption window through the
// cycle-accurate machine (package sim) in a recording mode, proves the
// recorded cycle stream periodic, and "compiles" it into a flat per-cycle
// op-list executed as a tight Go loop over 128-bit blocks — no iRAM fetch,
// no control-word unpacking, no per-cycle dispatch through datapath.Array.
//
// # Why this is sound
//
// The paper's execution model has no data-dependent control flow: OpJmp is
// unconditional, flags are raised by the instruction stream alone, and the
// only external influence on sequencing is input availability, which the
// executor controls. The datapath configuration at cycle t is therefore a
// pure function of the instruction stream, independent of the data blocks
// flowing through the array. The recorder snapshots the complete control
// state at every cycle — program counter, flag register, every RCE control
// register with its eRAM read resolved, shuffler permutations, whitening,
// input multiplexor, playback address, output-enable and hold state — and
// Compile verifies that the snapshots between consecutive output cycles
// repeat exactly. Because that snapshot together with the (frozen) eRAM and
// LUT contents is the machine's entire control state, two equal snapshots
// at the same point of the output cadence prove the configuration schedule
// periodic for every future block, not just the recorded ones. Data state
// (pipeline registers, feedback) is carried by the executor itself.
//
// Programs that break the preconditions — eRAM writes, LUT loads or capture
// ports active during bulk encryption, key-request handshakes, aperiodic
// output cadence — are refused by Compile; callers fall back to the
// interpreter (program.Run with Opts.Fast automates this). As a final guard,
// Compile replays the recorded inputs through the freshly compiled trace
// and requires bit-identical outputs and counters before returning it.
//
// # Cycle accounting
//
// The executor reports exactly the sim.Stats the interpreter would have
// accumulated. Every compiled cycle carries the counters attributed to it —
// the instructions executed since the previous cycle plus the cycle's own
// advance/stall and block movement — so any run of consecutive cycles sums
// to precisely the delta the interpreter reports when it stops right after
// the run's last cycle. A fresh (just-loaded) program costs the recorded
// head segment (load-to-first-output) plus steady periods; a dirty
// iterative program resumes mid-epilogue exactly like the machine does;
// streaming programs reload per call, as program.Run does. A
// steady period may span several outputs (a window-1 streaming loop emits
// every cycle while the sequencer alternates through its two-instruction
// idle loop), so the executor can stop and resume mid-period, again
// exactly where the interpreter would. The differential tests in this
// package cross-check ciphertext and counters against the interpreter for
// every builder at every depth and window.
package fastpath

import (
	"errors"
	"fmt"

	"cobra/internal/bits"
	"cobra/internal/datapath"
	"cobra/internal/isa"
	"cobra/internal/sim"
)

// ErrNotSteady reports that a program cannot be trace-compiled: its bulk
// encryption phase is not a fixed-period configuration schedule (or it
// performs state writes the compiled trace cannot replay). Callers fall
// back to the cycle-accurate interpreter.
var ErrNotSteady = errors.New("fastpath: program is not steady-state compilable")

// Source is the program handoff from package program (fastpath cannot
// import program without a cycle; program.Compile fills this in).
type Source struct {
	// Name identifies the program in error messages.
	Name string
	// Words is the packed microcode image.
	Words []isa.Word
	// Geometry is the array geometry the program targets.
	Geometry datapath.Geometry
	// Window is the instruction window size w.
	Window int
	// Streaming marks full-unroll non-feedback programs (reload per call,
	// pipeline-flush blocks appended, mirroring program.Run).
	Streaming bool
	// PipelineDepth is the number of register stages (streaming programs).
	PipelineDepth int
	// DeadElems, when non-nil, is package dataflow's dead-element bitmask
	// (indexed row*datapath.Cols+col, bit 1<<elem): element instances whose
	// values provably never reach a collected output word. The compiler
	// elides their steps from the op-lists. Eliding a dead element changes
	// only values the dataflow analysis proved unobservable, and only the
	// nine computational chain elements are honored — never INSEL or the
	// register, which carry state — so the compiled trace stays equivalent;
	// the compile-time self-check replay verifies it bit-for-bit regardless.
	DeadElems []uint16
}

// Exec is a compiled steady-state trace plus the mutable data state of one
// device (pipeline registers, feedback, resume point). Like the machine it
// replaces, an Exec is not safe for concurrent use; replicate executors to
// parallelize (internal/farm gets one per device).
type Exec struct {
	src Source

	head   []cTick // load-to-first-output cycle stream (ends at its output)
	period []cTick // steady repeating cycle stream (≥1 output per period)

	rows   int
	elided int // element operations dropped under Source.DeadElems

	initReg [][datapath.Cols]uint32
	initFB  bits.Block128

	reg   [][datapath.Cols]uint32
	fb    bits.Block128
	dirty bool

	// periodPos is the resume point inside the steady period: the index of
	// the next cycle to run when the executor is dirty. The interpreter
	// stops immediately after an output cycle; when a period holds several
	// outputs that stop lands mid-period, and the next call picks up here.
	periodPos int

	// inBuf is the reusable input staging buffer: inputs are copied here
	// before any output is written, so dst may alias blocks exactly as in
	// program.Run.
	inBuf []bits.Block128
}

// Name returns the compiled program's name.
func (e *Exec) Name() string { return e.src.Name }

// Dirty reports whether the executor holds in-flight state from a previous
// call (mirrors sim.Machine.Dirty).
func (e *Exec) Dirty() bool { return e.dirty }

// Elided returns the number of element operations the compiler dropped
// across all compiled cycles under Source.DeadElems (0 without a mask).
func (e *Exec) Elided() int { return e.elided }

// Reset restores the post-load state: the executor behaves as if the
// program had just been reloaded on a fresh machine (counters restart at
// the head segment). core.Device calls this when microcode is reloaded.
func (e *Exec) Reset() {
	copy(e.reg, e.initReg)
	e.fb = e.initFB
	e.dirty = false
	e.periodPos = 0
}

// EncryptInto encrypts blocks into dst (len(dst) >= len(blocks); dst may
// alias blocks) and returns the sim.Stats the interpreter would have
// reported for exactly this call.
func (e *Exec) EncryptInto(dst, blocks []bits.Block128) (sim.Stats, error) {
	n := len(blocks)
	if n == 0 {
		return sim.Stats{}, nil
	}
	if len(dst) < n {
		return sim.Stats{}, fmt.Errorf("fastpath: dst holds %d blocks, need %d", len(dst), n)
	}

	// Stage the inputs (plus pipeline flush for streaming programs) before
	// writing any output, preserving the interpreter's aliasing contract.
	need := n
	if e.src.Streaming {
		need += e.src.PipelineDepth + 1
	}
	if cap(e.inBuf) < need {
		e.inBuf = make([]bits.Block128, need)
	}
	in := e.inBuf[:need]
	copy(in, blocks)
	for i := n; i < need; i++ {
		in[i] = bits.Block128{}
	}

	if e.dirty && e.src.Streaming {
		// Streaming reload: the interpreter reloads for a clean pipeline;
		// the executor equivalently restarts from the post-load state.
		e.Reset()
	}
	var stats sim.Stats
	inPos, outPos := 0, 0
	if !e.dirty {
		// The head segment ends exactly at its single output (checked at
		// compile time), so it never overruns n ≥ 1.
		e.runSeg(e.head, 0, in, &inPos, dst, n, &outPos, &stats)
	}
	for outPos < n {
		stop := e.runSeg(e.period, e.periodPos, in, &inPos, dst, n, &outPos, &stats)
		e.periodPos = stop % len(e.period)
	}
	e.dirty = true
	return stats, nil
}

// EncryptBytesInto is EncryptInto for byte-oriented callers: src must be a
// multiple of 16 bytes, dst at least as long as src, and dst may alias src.
func (e *Exec) EncryptBytesInto(dst, src []byte) (sim.Stats, error) {
	if len(src)%16 != 0 {
		return sim.Stats{}, fmt.Errorf("fastpath: input length %d is not a multiple of the block size", len(src))
	}
	if len(dst) < len(src) {
		return sim.Stats{}, fmt.Errorf("fastpath: dst is %d bytes, need %d", len(dst), len(src))
	}
	blocks := make([]bits.Block128, len(src)/16)
	for i := range blocks {
		blocks[i] = bits.LoadBlock128(src[16*i:])
	}
	stats, err := e.EncryptInto(blocks, blocks)
	if err != nil {
		return stats, err
	}
	for i, blk := range blocks {
		blk.StoreBlock128(dst[16*i:])
	}
	return stats, nil
}

// secondaryBlock mirrors datapath's fixed interconnect: the block index of
// column c's k-th secondary input (k = 0 → INB, 1 → INC, 2 → IND).
func secondaryBlock(c, k int) int {
	b := k
	if b >= c {
		b++
	}
	return b
}
