package cipher

import "cobra/internal/bits"

// GOST 28147-89: a 32-round Feistel cipher over 64-bit blocks whose round
// function is addition mod 2^32, eight 4→4 S-boxes applied to contiguous
// nibbles, and an 11-bit rotation — precisely the paged 4-bit LUT + adder +
// fixed-rotate profile of a single COBRA RCE row. The S-boxes are a cipher
// parameter; GOSTTestSBox is the set used throughout this repository.

// GOSTTestSBox is the S-box parameter set used by this implementation (the
// id-Gost28147-89-TestParamSet layout: eight rows of sixteen nibbles, row i
// substituting nibble i).
var GOSTTestSBox = [8][16]uint8{
	{4, 10, 9, 2, 13, 8, 0, 14, 6, 11, 1, 12, 7, 15, 5, 3},
	{14, 11, 4, 12, 6, 13, 15, 10, 2, 3, 8, 1, 0, 7, 5, 9},
	{5, 8, 1, 13, 10, 3, 4, 2, 14, 15, 12, 7, 6, 0, 9, 11},
	{7, 13, 10, 1, 0, 8, 9, 15, 14, 4, 6, 12, 11, 2, 5, 3},
	{6, 12, 7, 1, 5, 15, 13, 8, 4, 10, 9, 14, 0, 3, 11, 2},
	{4, 11, 10, 0, 7, 2, 1, 13, 3, 6, 8, 5, 9, 12, 15, 14},
	{13, 11, 4, 1, 3, 15, 5, 9, 0, 10, 14, 7, 6, 8, 2, 12},
	{1, 15, 13, 0, 5, 7, 10, 4, 9, 2, 3, 14, 6, 11, 8, 12},
}

// GOST implements GOST 28147-89 in ECB (simple substitution) mode.
type GOST struct {
	k    [8]uint32
	sbox [8][16]uint8
}

// NewGOST derives the cipher from a 32-byte key using GOSTTestSBox.
func NewGOST(key []byte) (*GOST, error) {
	if len(key) != 32 {
		return nil, KeySizeError{"gost", len(key)}
	}
	c := &GOST{sbox: GOSTTestSBox}
	for i := range c.k {
		c.k[i] = bits.Load32LE(key[4*i:])
	}
	return c, nil
}

// f is the GOST round function.
func (c *GOST) f(x uint32) uint32 {
	var s uint32
	for i := 0; i < 8; i++ {
		n := x >> (4 * uint(i)) & 0xf
		s |= uint32(c.sbox[i][n]) << (4 * uint(i))
	}
	return bits.RotL(s, 11)
}

// BlockSize returns 8.
func (c *GOST) BlockSize() int { return 8 }

// keyIndex returns the subkey index for round r of encryption: keys run
// forward three times, then backward once.
func keyIndex(r int) int {
	if r < 24 {
		return r % 8
	}
	return 7 - r%8
}

// Encrypt encrypts one 8-byte block.
func (c *GOST) Encrypt(dst, src []byte) {
	n1 := bits.Load32LE(src[0:])
	n2 := bits.Load32LE(src[4:])
	for r := 0; r < 32; r++ {
		n1, n2 = n2^c.f(n1+c.k[keyIndex(r)]), n1
	}
	// The final round omits the swap: undo it.
	bits.Store32LE(dst[0:], n2)
	bits.Store32LE(dst[4:], n1)
}

// Decrypt decrypts one 8-byte block (key order reversed).
func (c *GOST) Decrypt(dst, src []byte) {
	n1 := bits.Load32LE(src[0:])
	n2 := bits.Load32LE(src[4:])
	for r := 0; r < 32; r++ {
		n1, n2 = n2^c.f(n1+c.k[keyIndex(31-r)]), n1
	}
	bits.Store32LE(dst[0:], n2)
	bits.Store32LE(dst[4:], n1)
}
