package core

import (
	"encoding/json"
	"testing"

	"cobra/internal/sim"
)

// TestReportJSONGolden pins the report wire format: the Summary embed and
// the device-only fields marshal under stable snake_case keys, so
// cobra-bench/cobra-farm JSON output and any downstream tooling never
// silently re-key. Changing this golden string is an API break — do it
// deliberately.
func TestReportJSONGolden(t *testing.T) {
	r := Report{
		Summary: Summary{
			Algorithm:      RC6,
			Backend:        "device",
			Workers:        1,
			Unroll:         2,
			Rows:           4,
			Stats:          sim.Stats{Cycles: 100, Advanced: 90, Stalled: 10, Instructions: 80, Nops: 5, BlocksIn: 8, BlocksOut: 8},
			CyclesPerBlock: 12.5,
			DatapathMHz:    33.3,
			ThroughputMbps: 341.2,
		},
		Streaming: true,
		IRAMMHz:   66.6,
		Gates:     51000,
	}
	got, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"algorithm":"rc6","backend":"device","workers":1,"unroll":2,"rows":4,` +
		`"stats":{"cycles":100,"advanced":90,"stalled":10,"instructions":80,"nops":5,` +
		`"blocks_in":8,"blocks_out":8},"cycles_per_block":12.5,"datapath_mhz":33.3,` +
		`"throughput_mbps":341.2,"streaming":true,"iram_mhz":66.6,"gates":51000}`
	if string(got) != want {
		t.Errorf("report JSON drifted:\n got %s\nwant %s", got, want)
	}
}

// TestLiveReportMarshals checks a real device's report round-trips
// through JSON with the Stats visible (embedding pitfalls like a
// shadowed MarshalJSON would flatten or drop fields).
func TestLiveReportMarshals(t *testing.T) {
	d, err := Configure(Rijndael, key, Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(d.Report())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"algorithm", "backend", "stats", "gates", "datapath_mhz"} {
		if _, ok := back[k]; !ok {
			t.Errorf("live report JSON missing key %q", k)
		}
	}
}
