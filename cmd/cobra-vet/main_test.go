package main

import (
	"bytes"
	"strings"
	"testing"
)

const (
	cleanFile = "testdata/rc6_1_clean.casm"
	dirtyFile = "testdata/falloff_dirty.casm"
)

// TestExitCodeMatrix pins the exit-status contract across the analyzer
// flags: 0 only when every requested analysis of every program is clean,
// 1 on any finding, 2 on usage errors.
func TestExitCodeMatrix(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"bad key", []string{"-builtin", "-key", "zz"}, 2},
		{"empty key", []string{"-builtin", "-key", ""}, 2},
		{"unknown flag", []string{"-nope", cleanFile}, 2},
		{"missing file", []string{"testdata/no_such.casm"}, 1},

		{"clean", []string{cleanFile}, 0},
		{"clean dataflow", []string{"-dataflow", cleanFile}, 0},
		{"clean equiv", []string{"-equiv", cleanFile}, 0},
		{"clean dataflow equiv", []string{"-dataflow", "-equiv", cleanFile}, 0},

		{"dirty", []string{dirtyFile}, 1},
		{"dirty dataflow", []string{"-dataflow", dirtyFile}, 1},
		{"dirty equiv", []string{"-equiv", dirtyFile}, 1},
		{"dirty dataflow equiv", []string{"-dataflow", "-equiv", dirtyFile}, 1},

		{"dirty then clean", []string{dirtyFile, cleanFile}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(tc.args, &out, &errb); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, out.String(), errb.String())
			}
		})
	}
}

// TestFullReport pins the full-report contract: a dirty file first in the
// argument list must not stop the clean file after it from being checked
// and reported.
func TestFullReport(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-equiv", dirtyFile, cleanFile}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1", got)
	}
	s := out.String()
	if !strings.Contains(s, "fall-off-end") {
		t.Errorf("dirty file's finding missing from output:\n%s", s)
	}
	if !strings.Contains(s, cleanFile+" clean") && !strings.Contains(s, "clean") {
		t.Errorf("clean file not reported after the dirty one:\n%s", s)
	}
	if !strings.Contains(s, "proven equivalent") {
		t.Errorf("clean file's equiv verdict missing:\n%s", s)
	}
	// The dirty file has an Error-severity finding, so its fastpath compile
	// is refused — reported as a skip, not silently dropped.
	if !strings.Contains(s, "equiv skipped") {
		t.Errorf("dirty file's equiv skip missing:\n%s", s)
	}
}

// TestBuiltinEquivGate runs the CI gate end-to-end: every built-in program
// is vetted and its compiled fastpath proven equivalent to the microcode
// (the key-request handshake program is skipped — it has no trace).
func TestBuiltinEquivGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builtin corpus sweep in -short mode")
	}
	var out, errb bytes.Buffer
	if got := run([]string{"-builtin", "-equiv"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", got, out.String(), errb.String())
	}
	s := out.String()
	if n := strings.Count(s, "proven equivalent"); n < 80 {
		t.Errorf("proved %d programs, want the full corpus (>= 80)\n%s", n, s)
	}
	if !strings.Contains(s, "rijndael-keyed-2         equiv skipped") {
		t.Errorf("key-handshake program not reported as skipped:\n%s", s)
	}
	if strings.Contains(s, "NOT proven") {
		t.Errorf("corpus contains unproven programs:\n%s", s)
	}
}
