package farm

import (
	"bytes"
	"context"
	"testing"

	"cobra/internal/core"
)

// TestCipherBackendSwap is the unified-API acceptance test: the same
// workload driven purely through core.Cipher produces byte-identical
// ciphertext on a single device and on a farm, for every mode the
// interface carries — including the feedback mode CBC, which the farm
// serializes onto one worker.
func TestCipherBackendSwap(t *testing.T) {
	msg := testMessage(16 * 37)
	iv := bytes.Repeat([]byte{0x3C}, 16)

	type result struct{ ecb, cbc, ctr, ptr, pecb, pcbc []byte }
	run := func(t *testing.T, c core.Cipher) result {
		ctx := context.Background()
		if c.BlockSize() != 16 {
			t.Fatalf("BlockSize = %d, want 16", c.BlockSize())
		}
		if c.Algorithm() != core.Rijndael {
			t.Fatalf("Algorithm = %s, want rijndael", c.Algorithm())
		}
		ecb, err := c.EncryptECB(ctx, msg)
		if err != nil {
			t.Fatal(err)
		}
		cbc, err := c.EncryptCBC(ctx, iv, msg)
		if err != nil {
			t.Fatal(err)
		}
		ctr, err := c.EncryptCTR(ctx, iv, msg)
		if err != nil {
			t.Fatal(err)
		}
		ptr, err := c.DecryptCTR(ctx, iv, ctr)
		if err != nil {
			t.Fatal(err)
		}
		pecb, err := c.DecryptECB(ctx, ecb)
		if err != nil {
			t.Fatal(err)
		}
		pcbc, err := c.DecryptCBC(ctx, iv, cbc)
		if err != nil {
			t.Fatal(err)
		}
		if s := c.Summary(); s.Stats.BlocksOut == 0 {
			t.Errorf("summary counted no blocks: %+v", s)
		}
		c.ResetStats()
		if s := c.Summary(); s.Stats.BlocksOut != 0 {
			t.Errorf("ResetStats through the interface left %d blocks", s.Stats.BlocksOut)
		}
		return result{ecb, cbc, ctr, ptr, pecb, pcbc}
	}

	dev, err := core.Configure(core.Rijndael, key, core.Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(core.Rijndael, key, core.Config{Unroll: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	want := run(t, dev)
	got := run(t, f)

	if !bytes.Equal(got.ecb, want.ecb) {
		t.Error("ECB diverges between backends")
	}
	if !bytes.Equal(got.cbc, want.cbc) {
		t.Error("CBC diverges between backends")
	}
	if !bytes.Equal(got.ctr, want.ctr) {
		t.Error("CTR diverges between backends")
	}
	if !bytes.Equal(got.ptr, msg) || !bytes.Equal(want.ptr, msg) {
		t.Error("CTR round trip failed")
	}
	if !bytes.Equal(got.pecb, msg) || !bytes.Equal(want.pecb, msg) {
		t.Error("ECB round trip failed")
	}
	if !bytes.Equal(got.pcbc, msg) || !bytes.Equal(want.pcbc, msg) {
		t.Error("CBC round trip failed")
	}
	if db, fb := dev.Summary().Backend, f.Summary().Backend; db != "device" || fb != "farm" {
		t.Errorf("backends identify as %q/%q, want device/farm", db, fb)
	}
}

// TestFarmCBCMatchesDevice covers the farm's feedback-mode path directly:
// one serialized job, correct chaining across the whole (multi-shard-
// sized) message, and the mode series counted.
func TestFarmCBCMatchesDevice(t *testing.T) {
	msg := testMessage(16 * 64)
	iv := bytes.Repeat([]byte{7}, 16)
	d, err := core.Configure(core.Rijndael, key, core.Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.EncryptCBC(context.Background(), iv, msg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(core.Rijndael, key, core.Config{Unroll: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.EncryptCBC(context.Background(), iv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("farm CBC diverges from single-device CBC")
	}
	if _, err := f.EncryptCBC(context.Background(), iv[:4], msg); err == nil {
		t.Error("short IV accepted")
	}
	if _, err := f.EncryptCBC(context.Background(), iv, msg[:17]); err == nil {
		t.Error("partial block accepted")
	}
}
