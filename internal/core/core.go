// Package core is the public face of the COBRA reproduction: it wraps the
// cipher-to-microcode compilers, the cycle-accurate machine, and the
// timing/area models behind a small API sized for applications — configure
// a device for an algorithm and key, stream blocks through it, read the
// performance counters the paper's evaluation is built from, and
// reconfigure on the fly for algorithm agility (§1).
//
// A Device models one COBRA chip plus its external system: Configure
// compiles and loads key-specific microcode (the key schedule is computed
// host-side and shipped as eRAM writes, matching the paper's
// external-system protocol), EncryptECB drives the ready/go/busy/data-valid
// handshake, and Report exposes measured cycles alongside the modeled clock
// frequency, throughput, and gate count.
package core

import (
	"fmt"

	"cobra/internal/bits"
	"cobra/internal/cipher"
	"cobra/internal/datapath"
	"cobra/internal/fastpath"
	"cobra/internal/model"
	"cobra/internal/program"
	"cobra/internal/sim"
)

// Algorithm selects one of the block ciphers mapped onto COBRA in §4.
type Algorithm string

// The supported algorithms. Serpent denotes the COBRA-realizable Serpent
// workload (see cipher.SerpentCOBRA and DESIGN.md for the documented
// S-box-domain substitution).
const (
	RC6      Algorithm = "rc6"
	Rijndael Algorithm = "rijndael"
	Serpent  Algorithm = "serpent"
)

// TotalRounds returns the cipher's full round count.
func (a Algorithm) TotalRounds() (int, error) {
	switch a {
	case RC6:
		return cipher.RC6Rounds, nil
	case Rijndael:
		return cipher.AESRounds, nil
	case Serpent:
		return cipher.SerpentRounds, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", a)
}

// Config selects the architecture configuration for a session.
type Config struct {
	// Unroll is the number of rounds mapped into hardware (Table 3's
	// "Rnds"); 0 selects the full unroll (maximum throughput).
	Unroll int
	// Interpreter forces every encryption through the cycle-accurate
	// interpreter even when the program trace-compiles (the comparison and
	// debugging path; cobra-bench -fastpath measures against it). The
	// default uses the fastpath executor for bulk modes when the program
	// proves steady-state compilable.
	Interpreter bool
}

// Device is one COBRA chip with loaded microcode.
//
// A Device is not safe for concurrent use: it owns a single sim.Machine
// (itself single-threaded silicon) and every Encrypt/Decrypt call mutates
// the machine's queues and counters. To serve a non-feedback workload in
// parallel, replicate devices — one per goroutine — and shard the data
// between them; internal/farm packages exactly that pattern.
type Device struct {
	alg     Algorithm
	prog    *program.Program
	machine *sim.Machine
	timing  model.Timing
	ref     cipher.Block
	key     []byte

	// oneBlk is the one-block scratch reused by the chaining modes'
	// block-at-a-time path (EncryptCBC), avoiding a fresh input and output
	// slice per block.
	oneBlk [1]bits.Block128

	// fast is the trace-compiled executor (package fastpath) serving the
	// bulk encryption paths; nil when compilation was refused (fastErr
	// records why) or forced off (interpOnly). stats accumulates the
	// per-call counter deltas of every bulk encryption regardless of the
	// engine that ran it — the machine's own counters are zeroed whenever a
	// streaming program reloads, so Report sums deltas instead of reading
	// machine totals.
	fast       *fastpath.Exec
	fastErr    error
	stats      sim.Stats
	interpOnly bool

	// Decryption datapath, built lazily on first DecryptECB call (in
	// hardware terms: a second device, or this one re-loaded between
	// directions).
	decProg    *program.Program
	decMachine *sim.Machine
}

// Configure compiles the algorithm/key pair into microcode, instantiates
// the matching array geometry, loads the iRAM and runs the configuration
// phase to the idle point.
func Configure(alg Algorithm, key []byte, cfg Config) (*Device, error) {
	total, err := alg.TotalRounds()
	if err != nil {
		return nil, err
	}
	unroll := cfg.Unroll
	if unroll == 0 {
		unroll = total
	}
	var p *program.Program
	var ref cipher.Block
	switch alg {
	case RC6:
		if p, err = program.BuildRC6(key, unroll, total); err == nil {
			ref, err = cipher.NewRC6(key)
		}
	case Rijndael:
		if p, err = program.BuildRijndael(key, unroll); err == nil {
			ref, err = cipher.NewRijndael(key)
		}
	case Serpent:
		if p, err = program.BuildSerpent(key, unroll); err == nil {
			ref, err = cipher.NewSerpentCOBRA(key)
		}
	}
	if err != nil {
		return nil, err
	}
	m, err := program.NewMachine(p)
	if err != nil {
		return nil, err
	}
	d := &Device{alg: alg, prog: p, machine: m, ref: ref,
		key: append([]byte(nil), key...), interpOnly: cfg.Interpreter}
	if err := d.load(); err != nil {
		return nil, err
	}
	return d, nil
}

// load (re)loads the program, refreshes the timing analysis, and
// (re)compiles the fastpath trace — any previously compiled trace is
// invalidated, since it encodes the old program's configuration schedule.
func (d *Device) load() error {
	if err := program.Load(d.machine, d.prog); err != nil {
		return err
	}
	d.timing = model.Analyze(d.machine.Array, model.DefaultDelays())
	d.fast, d.fastErr = nil, nil
	d.stats = sim.Stats{}
	if !d.interpOnly {
		d.fast, d.fastErr = d.prog.Compile()
	}
	return nil
}

// UsesFastpath reports whether bulk encryption runs on the trace-compiled
// executor rather than the cycle-accurate interpreter.
func (d *Device) UsesFastpath() bool { return d.fast != nil }

// FastpathErr returns why trace compilation was refused (nil when the
// fastpath is active or was forced off by Config.Interpreter).
func (d *Device) FastpathErr() error { return d.fastErr }

// encryptInto routes a bulk block batch through the fastpath executor when
// one is compiled, falling back to the interpreter otherwise. A machine
// that has interpreted since its last load owns the in-flight stats chain,
// so such a device stays on the interpreter.
func (d *Device) encryptInto(dst, blocks []bits.Block128) (sim.Stats, error) {
	var st sim.Stats
	var err error
	if d.fast != nil && !d.machine.Dirty() {
		st, err = d.fast.EncryptInto(dst, blocks)
	} else {
		st, err = program.EncryptInto(d.machine, d.prog, dst, blocks)
	}
	if err != nil {
		return st, err
	}
	d.stats.Add(st)
	return st, nil
}

// Reconfigure switches the device to a new algorithm/key — the §1
// algorithm-agility scenario. When the new configuration needs a different
// array geometry the device is rebuilt (in hardware terms: a differently
// tiled part); with matching geometry only the microcode reloads.
func (d *Device) Reconfigure(alg Algorithm, key []byte, cfg Config) error {
	nd, err := Configure(alg, key, cfg)
	if err != nil {
		return err
	}
	if nd.prog.Geometry == d.prog.Geometry {
		// Same silicon: reload microcode on the existing machine. The
		// decryption datapath is dropped and rebuilt lazily for the new
		// algorithm/key, and the compiled trace is replaced by the new
		// configuration's (nd already compiled it — no second recording).
		d.alg, d.prog, d.ref, d.key = nd.alg, nd.prog, nd.ref, nd.key
		d.decProg, d.decMachine = nil, nil
		d.interpOnly = nd.interpOnly
		if err := program.Load(d.machine, d.prog); err != nil {
			return err
		}
		d.timing = nd.timing
		d.fast, d.fastErr = nd.fast, nd.fastErr
		d.stats = sim.Stats{}
		return nil
	}
	*d = *nd
	return nil
}

// Algorithm returns the configured algorithm.
func (d *Device) Algorithm() Algorithm { return d.alg }

// Unroll returns the configured unroll depth.
func (d *Device) Unroll() int { return d.prog.HWRounds }

// Geometry returns the array geometry in rows.
func (d *Device) Geometry() datapath.Geometry { return d.prog.Geometry }

// BlockSize returns the cipher block size in bytes (16 for every §4
// algorithm).
func (d *Device) BlockSize() int { return 16 }

// EncryptECB encrypts src (a multiple of 16 bytes) into a fresh slice by
// streaming the blocks through the datapath in electronic-codebook mode,
// the paper's measurement mode.
func (d *Device) EncryptECB(src []byte) ([]byte, error) {
	dst := make([]byte, len(src))
	if _, err := d.EncryptECBInto(dst, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// EncryptBlocks encrypts 128-bit blocks in place of the byte API.
func (d *Device) EncryptBlocks(blocks []bits.Block128) ([]bits.Block128, error) {
	if len(blocks) == 0 {
		return nil, nil
	}
	out := make([]bits.Block128, len(blocks))
	if _, err := d.encryptInto(out, blocks); err != nil {
		return nil, err
	}
	return out, nil
}

// EncryptECBInto is EncryptECB writing into a caller-supplied buffer
// (len(dst) >= len(src)) and returning the simulator counters for exactly
// this call — the farm's worker path, where per-shard stats are aggregated
// into a pool-wide report.
func (d *Device) EncryptECBInto(dst, src []byte) (sim.Stats, error) {
	if len(src)%16 != 0 {
		return sim.Stats{}, fmt.Errorf("core: input length %d is not a multiple of the block size", len(src))
	}
	if len(dst) < len(src) {
		return sim.Stats{}, fmt.Errorf("core: dst is %d bytes, need %d", len(dst), len(src))
	}
	if len(src) == 0 {
		return sim.Stats{}, nil
	}
	blocks := make([]bits.Block128, len(src)/16)
	for i := range blocks {
		blocks[i] = bits.LoadBlock128(src[16*i:])
	}
	stats, err := d.encryptInto(blocks, blocks)
	if err != nil {
		return stats, err
	}
	for i, blk := range blocks {
		blk.StoreBlock128(dst[16*i:])
	}
	return stats, nil
}

// encryptBlockInPlace runs a single block through the datapath, reusing
// the device's one-block scratch so the chaining loop performs no per-block
// slice allocations.
func (d *Device) encryptBlockInPlace(b *[16]byte) error {
	d.oneBlk[0] = bits.LoadBlock128(b[:])
	if _, err := d.encryptInto(d.oneBlk[:], d.oneBlk[:]); err != nil {
		return err
	}
	d.oneBlk[0].StoreBlock128(b[:])
	return nil
}

// EncryptCBC encrypts src in cipher-block-chaining mode: each block is
// XORed with the previous ciphertext before entering the datapath. The
// chaining dependency serializes the device — one block in flight — which
// is exactly the feedback-mode penalty of the paper's Table 1 (FB vs NFB
// columns): a full-length pipeline degrades to its fill+drain latency per
// block. iv must be one block (16 bytes).
func (d *Device) EncryptCBC(iv, src []byte) ([]byte, error) {
	if len(iv) != 16 {
		return nil, fmt.Errorf("core: iv must be 16 bytes")
	}
	if len(src)%16 != 0 {
		return nil, fmt.Errorf("core: input length %d is not a multiple of the block size", len(src))
	}
	dst := make([]byte, len(src))
	prev := iv
	var blk [16]byte
	for i := 0; i < len(src); i += 16 {
		for j := 0; j < 16; j++ {
			blk[j] = src[i+j] ^ prev[j]
		}
		if err := d.encryptBlockInPlace(&blk); err != nil {
			return nil, err
		}
		copy(dst[i:], blk[:])
		prev = dst[i : i+16]
	}
	return dst, nil
}

// incCounter increments a CTR counter block interpreted as a 128-bit
// big-endian integer — the standard incrementing function of NIST
// SP 800-38A — wrapping at 2^128.
func incCounter(c *[16]byte) {
	for i := 15; i >= 0; i-- {
		c[i]++
		if c[i] != 0 {
			return
		}
	}
}

// AddCounter returns iv + n with the counter block interpreted as a
// 128-bit big-endian integer, wrapping modulo 2^128. iv must be 16 bytes.
// The farm uses it to derive the starting counter of each shard from the
// shard's block offset.
func AddCounter(iv []byte, n uint64) ([16]byte, error) {
	var c [16]byte
	if len(iv) != 16 {
		return c, fmt.Errorf("core: iv must be 16 bytes")
	}
	copy(c[:], iv)
	carry := n
	for i := 15; i >= 0 && carry != 0; i-- {
		sum := uint64(c[i]) + carry&0xff
		c[i] = byte(sum)
		carry = carry>>8 + sum>>8
	}
	return c, nil
}

// EncryptCTR encrypts src in counter mode: keystream block i is the
// datapath encryption of iv+i and ciphertext is plaintext XOR keystream
// (the XOR is host-side, as block assembly is in the paper's external
// system). Counter mode is the non-feedback workload of Table 1's NFB
// column — every keystream block is independent, so the counters stream
// through the pipeline back to back, and a message shards across devices
// by counter range (internal/farm). src may end in a partial block: CTR
// turns the block cipher into a stream cipher. Decryption is the same
// operation (DecryptCTR).
func (d *Device) EncryptCTR(iv, src []byte) ([]byte, error) {
	dst := make([]byte, len(src))
	if _, err := d.EncryptCTRInto(dst, iv, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// DecryptCTR inverts EncryptCTR; counter mode is an involution.
func (d *Device) DecryptCTR(iv, src []byte) ([]byte, error) { return d.EncryptCTR(iv, src) }

// EncryptCTRInto is EncryptCTR writing into a caller-supplied buffer
// (len(dst) >= len(src)) and returning the simulator counters for exactly
// this call.
func (d *Device) EncryptCTRInto(dst, iv, src []byte) (sim.Stats, error) {
	if len(iv) != 16 {
		return sim.Stats{}, fmt.Errorf("core: iv must be 16 bytes")
	}
	if len(dst) < len(src) {
		return sim.Stats{}, fmt.Errorf("core: dst is %d bytes, need %d", len(dst), len(src))
	}
	if len(src) == 0 {
		return sim.Stats{}, nil
	}
	n := (len(src) + 15) / 16
	ctrs := make([]bits.Block128, n)
	var c [16]byte
	copy(c[:], iv)
	for i := range ctrs {
		ctrs[i] = bits.LoadBlock128(c[:])
		incCounter(&c)
	}
	stats, err := d.encryptInto(ctrs, ctrs)
	if err != nil {
		return sim.Stats{}, err
	}
	var ks [16]byte
	for i := 0; i < n; i++ {
		ctrs[i].StoreBlock128(ks[:])
		off := 16 * i
		m := len(src) - off
		if m > 16 {
			m = 16
		}
		for j := 0; j < m; j++ {
			dst[off+j] = src[off+j] ^ ks[j]
		}
	}
	return stats, nil
}

// DecryptCBC inverts EncryptCBC on the decryption datapath.
func (d *Device) DecryptCBC(iv, src []byte) ([]byte, error) {
	if len(iv) != 16 {
		return nil, fmt.Errorf("core: iv must be 16 bytes")
	}
	pt, err := d.DecryptECB(src)
	if err != nil {
		return nil, err
	}
	prev := iv
	for i := 0; i < len(src); i += 16 {
		for j := 0; j < 16; j++ {
			pt[i+j] ^= prev[j]
		}
		prev = src[i : i+16]
	}
	return pt, nil
}

// DecryptECB decrypts src on the datapath. The paper's evaluation maps
// only encryption; the decryption microcode here (internal/program's
// decrypt builders) shows the architecture carries the inverse ciphers
// with the same structures — RC6 via SUB + negated-amount rotates,
// Rijndael via the FIPS-197 equivalent inverse cipher, Serpent via the
// inverse LT rows. The decryption program is compiled and loaded lazily on
// first use.
func (d *Device) DecryptECB(src []byte) ([]byte, error) {
	if len(src)%16 != 0 {
		return nil, fmt.Errorf("core: input length %d is not a multiple of the block size", len(src))
	}
	if d.decMachine == nil {
		if err := d.buildDecryptor(); err != nil {
			return nil, err
		}
	}
	dst, _, err := program.EncryptBytes(d.decMachine, d.decProg, src)
	return dst, err
}

// buildDecryptor compiles and loads the decryption datapath.
func (d *Device) buildDecryptor() error {
	var p *program.Program
	var err error
	key := d.key
	switch d.alg {
	case RC6:
		p, err = program.BuildRC6Decrypt(key, d.prog.HWRounds, d.prog.TotalRounds)
	case Rijndael:
		p, err = program.BuildRijndaelDecrypt(key, d.prog.HWRounds)
	case Serpent:
		// The decryption mapping is evaluated at the paper's base
		// granularity (one round per pass).
		p, err = program.BuildSerpentDecrypt(key)
	default:
		err = fmt.Errorf("core: no decryption mapping for %q", d.alg)
	}
	if err != nil {
		return err
	}
	m, err := program.NewMachine(p)
	if err != nil {
		return err
	}
	if err := program.Load(m, p); err != nil {
		return err
	}
	d.decProg, d.decMachine = p, m
	return nil
}

// DecryptECBHost decrypts with the host-side reference implementation
// (the external system of the paper's protocol), useful for cross-checking
// the datapath.
func (d *Device) DecryptECBHost(src []byte) ([]byte, error) {
	if len(src)%16 != 0 {
		return nil, fmt.Errorf("core: input length %d is not a multiple of the block size", len(src))
	}
	dst := make([]byte, len(src))
	for i := 0; i < len(src); i += 16 {
		d.ref.Decrypt(dst[i:], src[i:])
	}
	return dst, nil
}

// Report summarizes a device's measured and modeled performance.
type Report struct {
	Algorithm      Algorithm
	Unroll         int
	Rows           int
	Streaming      bool
	Stats          sim.Stats
	CyclesPerBlock float64
	DatapathMHz    float64
	IRAMMHz        float64
	ThroughputMbps float64
	Gates          int
}

// Report returns the accumulated performance counters combined with the
// timing and area models — the quantities Tables 3, 5 and 6 report. The
// counters sum every bulk encryption since configuration (or ResetStats)
// across both engines: interpreter runs and fastpath runs (which report
// the cycles the interpreter would have spent) accumulate identically.
func (d *Device) Report() Report {
	st := d.stats
	cpb := 0.0
	if st.BlocksOut > 0 {
		cpb = float64(st.Cycles) / float64(st.BlocksOut)
	}
	return Report{
		Algorithm:      d.alg,
		Unroll:         d.prog.HWRounds,
		Rows:           d.prog.Geometry.Rows,
		Streaming:      d.prog.Streaming,
		Stats:          st,
		CyclesPerBlock: cpb,
		DatapathMHz:    d.timing.DatapathMHz,
		IRAMMHz:        d.timing.IRAMMHz,
		ThroughputMbps: d.timing.ThroughputMbps(cpb),
		Gates:          model.Table5(model.Table4(), d.prog.Geometry).Total(),
	}
}

// ResetStats zeroes the performance counters between measurement phases.
func (d *Device) ResetStats() {
	d.machine.ResetStats()
	d.stats = sim.Stats{}
}

// Describe renders the configured architecture topology (figure 1 style).
func (d *Device) Describe() string { return d.machine.Array.Describe() }

// Microcode returns the loaded program size in 80-bit instruction words.
func (d *Device) Microcode() int { return len(d.prog.Instrs) }
