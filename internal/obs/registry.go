package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the metric families an entry can export as.
type Kind int

// The metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus TYPE vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// entry is one registered metric.
type entry struct {
	name   string
	help   string
	kind   Kind
	labels []Label

	c  *Counter
	g  *Gauge
	fn func() int64 // gauge-func; evaluated at gather time
	h  *Histogram
}

// child is an attached sub-registry with the labels stamped at Attach.
type child struct {
	r      *Registry
	labels []Label
}

// Registry is a named collection of metrics plus attached child
// registries. Metric accessors are get-or-create keyed by (name, labels),
// so independently instrumented components that register the same family
// share one time series. A registry created by NewRegistry is detached —
// invisible to exporters — until attached to a parent; Device and Farm
// registries stay detached by default so tests are hermetic, and
// long-running commands attach them to Default for the /metrics endpoint.
type Registry struct {
	mu       sync.Mutex
	labels   []Label
	entries  []*entry
	index    map[string]*entry
	children []child
	ring     atomic.Pointer[Ring]
}

// Default is the package-level root registry: the one the HTTP exporters
// of long-running commands serve.
var Default = NewRegistry()

// NewRegistry builds a detached registry whose labels are stamped on
// every metric it exports.
func NewRegistry(labels ...Label) *Registry {
	return &Registry{labels: labels, index: make(map[string]*entry)}
}

// key builds the index key for a metric instance.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup returns the entry for (name, labels), creating it with the given
// kind on first use. Re-registering an existing name with a different
// kind is a programming error and panics.
func (r *Registry) lookup(name, help string, kind Kind, labels []Label) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	if e, ok := r.index[k]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, e.kind))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind, labels: append([]Label(nil), labels...)}
	r.index[k] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter returns the counter named name with the given labels, creating
// it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	e := r.lookup(name, help, KindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.c == nil {
		e.c = new(Counter)
	}
	return e.c
}

// Gauge returns the gauge named name with the given labels, creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	e := r.lookup(name, help, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.g == nil {
		e.g = new(Gauge)
	}
	return e.g
}

// GaugeFunc registers (or rebinds) a gauge whose value is computed by fn
// at gather time — e.g. a queue depth read with len(ch) — so sampling
// costs nothing between scrapes.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	e := r.lookup(name, help, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e.fn = fn
}

// Histogram returns the histogram named name with the given bucket upper
// bounds and labels, creating it on first use (the bounds of an existing
// histogram are kept).
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	e := r.lookup(name, help, KindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.h == nil {
		e.h = newHistogram(bounds)
	}
	return e.h
}

// Attach makes c's metrics visible through r, stamped with the given
// extra labels (e.g. obs.L("worker", "3")). Attach is how a Device or
// Farm registry joins a served registry tree.
func (r *Registry) Attach(c *Registry, labels ...Label) {
	if c == nil || c == r {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.children = append(r.children, child{r: c, labels: append([]Label(nil), labels...)})
}

// Detach removes a previously attached child registry.
func (r *Registry) Detach(c *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.children {
		if r.children[i].r == c {
			r.children = append(r.children[:i], r.children[i+1:]...)
			return
		}
	}
}

// Sample is one exported time series at gather time.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	// Value carries counter/gauge samples; Hist carries histograms.
	Value int64
	Hist  *HistogramSnapshot
}

// maxDepth bounds the child walk against accidental attach cycles.
const maxDepth = 8

// Gather flattens the registry tree into samples, sorted by metric name
// then label signature, so exports are deterministic.
func (r *Registry) Gather() []Sample {
	var out []Sample
	r.gather(nil, &out, 0)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelString(out[i].Labels) < labelString(out[j].Labels)
	})
	return out
}

// gather appends r's own and its children's samples, prefixing labels.
func (r *Registry) gather(prefix []Label, out *[]Sample, depth int) {
	if depth > maxDepth {
		return
	}
	r.mu.Lock()
	base := make([]Label, 0, len(prefix)+len(r.labels))
	base = append(base, prefix...)
	base = append(base, r.labels...)
	entries := append([]*entry(nil), r.entries...)
	children := append([]child(nil), r.children...)
	r.mu.Unlock()

	for _, e := range entries {
		s := Sample{Name: e.name, Help: e.help, Kind: e.kind}
		s.Labels = append(append([]Label(nil), base...), e.labels...)
		switch {
		case e.fn != nil:
			s.Value = e.fn()
		case e.c != nil:
			s.Value = e.c.Value()
		case e.g != nil:
			s.Value = e.g.Value()
		case e.h != nil:
			snap := e.h.Snapshot()
			s.Hist = &snap
		}
		*out = append(*out, s)
	}
	for _, c := range children {
		cp := append(append([]Label(nil), base...), c.labels...)
		c.r.gather(cp, out, depth+1)
	}
}

// labelString renders labels in Prometheus exposition syntax (without
// braces): k1="v1",k2="v2".
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
