package fastpath_test

import (
	"context"
	"fmt"
	"testing"

	"cobra/internal/core"
)

// benchConfigs are the architecture points the fastpath-vs-interpreter
// benchmarks measure: the paper's base configuration (one hardware round)
// and the full unroll (maximum throughput, the streaming pipeline).
var benchConfigs = []struct {
	alg    core.Algorithm
	unroll int
}{
	{core.RC6, 1},
	{core.RC6, 0},
	{core.Rijndael, 0},
	{core.Serpent, 0},
}

const benchBlocks = 256

func benchKey() []byte {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i * 17)
	}
	return key
}

func benchDevice(b *testing.B, alg core.Algorithm, unroll int, interp bool) *core.Device {
	b.Helper()
	d, err := core.Configure(alg, benchKey(), core.Config{Unroll: unroll, Interpreter: interp})
	if err != nil {
		b.Fatal(err)
	}
	if !interp && !d.UsesFastpath() {
		b.Fatalf("%s unroll=%d: fastpath refused: %v", alg, unroll, d.FastpathErr())
	}
	return d
}

func benchECB(b *testing.B, interp bool) {
	for _, c := range benchConfigs {
		b.Run(fmt.Sprintf("%s-unroll%d", c.alg, c.unroll), func(b *testing.B) {
			d := benchDevice(b, c.alg, c.unroll, interp)
			src := make([]byte, 16*benchBlocks)
			dst := make([]byte, len(src))
			b.SetBytes(int64(len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.EncryptECBInto(context.Background(), dst, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchCTR(b *testing.B, interp bool) {
	iv := make([]byte, 16)
	for _, c := range benchConfigs {
		b.Run(fmt.Sprintf("%s-unroll%d", c.alg, c.unroll), func(b *testing.B) {
			d := benchDevice(b, c.alg, c.unroll, interp)
			src := make([]byte, 16*benchBlocks)
			dst := make([]byte, len(src))
			b.SetBytes(int64(len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.EncryptCTRInto(context.Background(), dst, iv, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFastpathECB(b *testing.B)    { benchECB(b, false) }
func BenchmarkInterpreterECB(b *testing.B) { benchECB(b, true) }
func BenchmarkFastpathCTR(b *testing.B)    { benchCTR(b, false) }
func BenchmarkInterpreterCTR(b *testing.B) { benchCTR(b, true) }
