package iram

import (
	"strings"
	"testing"

	"cobra/internal/isa"
)

func TestLoadRejectsEmptyProgram(t *testing.T) {
	var s Sequencer
	if err := s.Load(nil); err == nil {
		t.Error("expected error for empty program")
	}
}

func TestLoadRejectsOversizedProgram(t *testing.T) {
	var s Sequencer
	words := make([]isa.Word, isa.IRAMWords+1)
	for i := range words {
		words[i] = isa.Instr{Op: isa.OpNop}.Pack()
	}
	if err := s.Load(words); err == nil {
		t.Error("expected error for oversized program")
	}
}

func TestLoadRejectsCorruptWord(t *testing.T) {
	var s Sequencer
	bad := isa.Instr{Op: isa.Opcode(31)}.Pack()
	if err := s.Load([]isa.Word{bad}); err == nil {
		t.Error("expected error for corrupt word")
	}
}

func TestLoadRejectsOutOfRangeJump(t *testing.T) {
	var s Sequencer
	words := []isa.Word{
		isa.Instr{Op: isa.OpNop}.Pack(),
		isa.Instr{Op: isa.OpJmp, Data: 2}.Pack(), // target == len: out of range
	}
	err := s.Load(words)
	if err == nil {
		t.Fatal("expected error for out-of-range jump target")
	}
	if want := "address 0x1"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the offending %s", err, want)
	}
	if s.Len() != 0 {
		t.Error("rejected image must not be installed")
	}
}

func TestLoadAcceptsInRangeJump(t *testing.T) {
	var s Sequencer
	words := []isa.Word{
		isa.Instr{Op: isa.OpJmp, Data: 1}.Pack(),
		isa.Instr{Op: isa.OpHalt}.Pack(),
	}
	if err := s.Load(words); err != nil {
		t.Fatalf("in-range jump rejected: %v", err)
	}
}

func TestFetchSequence(t *testing.T) {
	var s Sequencer
	prog := []isa.Instr{
		{Op: isa.OpNop},
		{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagBusy}.Encode()},
		{Op: isa.OpHalt},
	}
	if err := s.LoadInstrs(prog); err != nil {
		t.Fatal(err)
	}
	for i, want := range prog {
		if s.PC() != i {
			t.Errorf("PC = %d, want %d", s.PC(), i)
		}
		got, err := s.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		if got.Op != want.Op {
			t.Errorf("instr %d: op %v, want %v", i, got.Op, want.Op)
		}
	}
	if _, err := s.Fetch(); err == nil {
		t.Error("expected error fetching past end of program")
	}
}

func TestJump(t *testing.T) {
	var s Sequencer
	if err := s.LoadInstrs(make([]isa.Instr, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Jump(7); err != nil {
		t.Fatal(err)
	}
	if s.PC() != 7 {
		t.Errorf("PC = %d after Jump(7)", s.PC())
	}
	if err := s.Jump(10); err == nil {
		t.Error("expected error for jump past end")
	}
	if err := s.Jump(-1); err == nil {
		t.Error("expected error for negative jump")
	}
}

func TestFlags(t *testing.T) {
	var s Sequencer
	s.SetFlags(isa.FlagCfg{Set: isa.FlagReady | isa.FlagGen0})
	if !s.Flag(isa.FlagReady) || !s.Flag(isa.FlagGen0) {
		t.Error("flags not set")
	}
	s.SetFlags(isa.FlagCfg{Clear: isa.FlagReady, Set: isa.FlagBusy})
	if s.Flag(isa.FlagReady) {
		t.Error("ready flag not cleared")
	}
	if !s.Flag(isa.FlagBusy) || !s.Flag(isa.FlagGen0) {
		t.Error("unrelated flags disturbed")
	}
	// Set dominates clear for the same bit.
	s.SetFlags(isa.FlagCfg{Set: isa.FlagDValid, Clear: isa.FlagDValid})
	if !s.Flag(isa.FlagDValid) {
		t.Error("set must dominate clear")
	}
}

func TestResetClearsPCAndFlags(t *testing.T) {
	var s Sequencer
	if err := s.LoadInstrs(make([]isa.Instr, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch(); err != nil {
		t.Fatal(err)
	}
	s.SetFlags(isa.FlagCfg{Set: isa.FlagBusy})
	s.Reset()
	if s.PC() != 0 || s.Flags() != 0 {
		t.Errorf("Reset left pc=%d flags=%#x", s.PC(), s.Flags())
	}
	if s.Len() != 4 {
		t.Error("Reset must preserve the program")
	}
}

func TestInstrAccessor(t *testing.T) {
	var s Sequencer
	prog := []isa.Instr{{Op: isa.OpNop}, {Op: isa.OpHalt}}
	if err := s.LoadInstrs(prog); err != nil {
		t.Fatal(err)
	}
	in, err := s.Instr(1)
	if err != nil || in.Op != isa.OpHalt {
		t.Errorf("Instr(1) = %v, %v", in, err)
	}
	if _, err := s.Instr(2); err == nil {
		t.Error("expected error for out-of-range address")
	}
}
