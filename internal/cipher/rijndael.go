package cipher

import "cobra/internal/bits"

// AESRounds is the round count of Rijndael with 128-bit key and block.
const AESRounds = 10

// aesSBox is computed at init from the GF(2^8) inverse plus the affine
// transform of FIPS-197 §5.1.1, rather than transcribed, so the table is
// self-checking against the field arithmetic in package bits.
var aesSBox, aesInvSBox [256]uint8

func init() {
	for x := 0; x < 256; x++ {
		inv := bits.GFInv(uint8(x))
		// Affine transform: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^
		// b_{i+7} ^ c_i with c = 0x63.
		var s uint8
		for i := 0; i < 8; i++ {
			b := inv>>uint(i)&1 ^ inv>>uint((i+4)%8)&1 ^ inv>>uint((i+5)%8)&1 ^
				inv>>uint((i+6)%8)&1 ^ inv>>uint((i+7)%8)&1 ^ 0x63>>uint(i)&1
			s |= b << uint(i)
		}
		aesSBox[x] = s
		aesInvSBox[s] = uint8(x)
	}
}

// AESSBox returns the Rijndael S-box (the COBRA program builder loads it
// into the C elements' 8→8 look-up tables).
func AESSBox() [256]uint8 { return aesSBox }

// AESInvSBox returns the inverse S-box, used by the COBRA decryption
// mapping (equivalent inverse cipher).
func AESInvSBox() [256]uint8 { return aesInvSBox }

// Rijndael implements AES-128 (FIPS-197). The state is kept as four 32-bit
// column words, matching the four 32-bit datapaths of COBRA: word i holds
// column i of the state, with the row-0 byte in the least significant
// position. This is also the byte order of the paper's 128-bit data stream.
type Rijndael struct {
	rk [AESRounds + 1][4]uint32 // round keys as column words
}

// NewRijndael derives the AES-128 key schedule from a 16-byte key.
func NewRijndael(key []byte) (*Rijndael, error) {
	if len(key) != 16 {
		return nil, KeySizeError{"rijndael", len(key)}
	}
	c := new(Rijndael)
	var w [4 * (AESRounds + 1)]uint32
	for i := 0; i < 4; i++ {
		w[i] = bits.Load32LE(key[4*i:])
	}
	rcon := uint8(1)
	for i := 4; i < len(w); i++ {
		t := w[i-1]
		if i%4 == 0 {
			// RotWord then SubWord then Rcon. In little-endian column words
			// RotWord (move byte 1 to byte 0 etc.) is a right rotate by 8.
			t = bits.RotR(t, 8)
			t = subWord(t)
			t ^= uint32(rcon)
			rcon = bits.GFMul(rcon, 2)
		}
		w[i] = w[i-4] ^ t
	}
	for r := 0; r <= AESRounds; r++ {
		for col := 0; col < 4; col++ {
			c.rk[r][col] = w[4*r+col]
		}
	}
	return c, nil
}

// subWord applies the S-box to each byte of a word.
func subWord(x uint32) uint32 {
	return uint32(aesSBox[uint8(x)]) |
		uint32(aesSBox[uint8(x>>8)])<<8 |
		uint32(aesSBox[uint8(x>>16)])<<16 |
		uint32(aesSBox[uint8(x>>24)])<<24
}

func invSubWord(x uint32) uint32 {
	return uint32(aesInvSBox[uint8(x)]) |
		uint32(aesInvSBox[uint8(x>>8)])<<8 |
		uint32(aesInvSBox[uint8(x>>16)])<<16 |
		uint32(aesInvSBox[uint8(x>>24)])<<24
}

// BlockSize returns 16.
func (c *Rijndael) BlockSize() int { return 16 }

// RoundKeyWords returns round key r as four column words (for eRAM
// loading on COBRA).
func (c *Rijndael) RoundKeyWords(r int) [4]uint32 { return c.rk[r] }

// EquivInvRoundKeyWords returns round key j of the FIPS-197 §5.3.5
// equivalent inverse cipher: dw[j] = InvMixColumns(w[Nr-j]) for the middle
// rounds, w[Nr] for j = 0 and w[0] for j = Nr. The COBRA decryption
// mapping consumes these so decryption keeps the encryption round
// structure (InvSubBytes → InvShiftRows → InvMixColumns → AddRoundKey).
func (c *Rijndael) EquivInvRoundKeyWords(j int) [4]uint32 {
	w := c.rk[AESRounds-j]
	if j == 0 || j == AESRounds {
		return w
	}
	for col := 0; col < 4; col++ {
		w[col] = bits.GFMDSColumn(w[col], [4]uint8{0x0e, 0x0b, 0x0d, 0x09})
	}
	return w
}

// shiftRows rotates row r of the state left by r positions. With
// column-major words, row r is byte lane r of each word.
func shiftRows(s *[4]uint32, inv bool) {
	var out [4]uint32
	for col := 0; col < 4; col++ {
		var w uint32
		for row := 0; row < 4; row++ {
			src := (col + row) % 4
			if inv {
				src = (col - row + 4) % 4
			}
			w |= s[src] >> (8 * uint(row)) & 0xff << (8 * uint(row))
		}
		out[col] = w
	}
	*s = out
}

// Encrypt encrypts one 16-byte block.
func (c *Rijndael) Encrypt(dst, src []byte) {
	var s [4]uint32
	for i := range s {
		s[i] = bits.Load32LE(src[4*i:]) ^ c.rk[0][i]
	}
	for r := 1; r < AESRounds; r++ {
		for i := range s {
			s[i] = subWord(s[i])
		}
		shiftRows(&s, false)
		for i := range s {
			s[i] = bits.GFMDSColumn(s[i], [4]uint8{2, 3, 1, 1}) ^ c.rk[r][i]
		}
	}
	for i := range s {
		s[i] = subWord(s[i])
	}
	shiftRows(&s, false)
	for i := range s {
		s[i] ^= c.rk[AESRounds][i]
		bits.Store32LE(dst[4*i:], s[i])
	}
}

// Decrypt decrypts one 16-byte block using the straightforward inverse
// cipher (InvShiftRows/InvSubBytes/InvMixColumns order of FIPS-197 §5.3).
func (c *Rijndael) Decrypt(dst, src []byte) {
	var s [4]uint32
	for i := range s {
		s[i] = bits.Load32LE(src[4*i:]) ^ c.rk[AESRounds][i]
	}
	for r := AESRounds - 1; r >= 1; r-- {
		shiftRows(&s, true)
		for i := range s {
			s[i] = invSubWord(s[i]) ^ c.rk[r][i]
			s[i] = bits.GFMDSColumn(s[i], [4]uint8{0x0e, 0x0b, 0x0d, 0x09})
		}
	}
	shiftRows(&s, true)
	for i := range s {
		s[i] = invSubWord(s[i]) ^ c.rk[0][i]
		bits.Store32LE(dst[4*i:], s[i])
	}
}
