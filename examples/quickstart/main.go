// Quickstart: configure a COBRA device for AES-128, encrypt a message in
// ECB mode, and read back the performance report — the minimal end-to-end
// use of the public API.
package main

import (
	"context"
	"encoding/hex"
	"fmt"
	"log"

	"cobra/internal/core"
)

func main() {
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f")

	// Configure compiles key-specific microcode (like the paper's JBits
	// comparison point), instantiates the base 4×4 array for a two-round
	// Rijndael mapping, loads the iRAM and runs the setup phase.
	dev, err := core.Configure(core.Rijndael, key, core.Config{Unroll: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configured %s, %d rounds in hardware, %d rows, %d microcode words\n",
		dev.Algorithm(), dev.Unroll(), dev.Geometry().Rows, dev.Microcode())

	// The FIPS-197 example block, four times over.
	plaintext, _ := hex.DecodeString(
		"00112233445566778899aabbccddeeff" +
			"00112233445566778899aabbccddeeff" +
			"00112233445566778899aabbccddeeff" +
			"00112233445566778899aabbccddeeff")

	ciphertext, err := dev.EncryptECB(context.Background(), plaintext)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ciphertext block 0: %x\n", ciphertext[:16])
	fmt.Println("expected (FIPS-197): 69c4e0d86a7b0430d8cdb78070b4c55a")

	back, err := dev.DecryptECB(context.Background(), ciphertext)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip ok: %v\n", string(back[:16]) == string(plaintext[:16]))

	r := dev.Report()
	fmt.Printf("\nperformance report\n")
	fmt.Printf("  cycles/block:   %.1f\n", r.CyclesPerBlock)
	fmt.Printf("  datapath clock: %.3f MHz (iRAM %.3f MHz)\n", r.DatapathMHz, r.IRAMMHz)
	fmt.Printf("  throughput:     %.1f Mbps\n", r.ThroughputMbps)
	fmt.Printf("  gate count:     %d\n", r.Gates)
}
