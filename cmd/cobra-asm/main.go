// Command cobra-asm assembles COBRA assembly into 80-bit microcode words
// and disassembles microcode images back into canonical assembly.
//
// Usage:
//
//	cobra-asm [-d] [-o out] [in]
//
// Without -d the input is assembly text and the output is one 20-hex-digit
// word per line; with -d the direction reverses. Reading from stdin when no
// input file is given. -gen emits the microcode of a built-in cipher
// configuration (e.g. -gen rijndael-2 -key 000102...) instead of reading
// input, which is the quickest way to obtain a realistic program to study.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"cobra/internal/asm"
	"cobra/internal/bench"
	"cobra/internal/isa"
)

func main() {
	disasm := flag.Bool("d", false, "disassemble microcode words into assembly")
	out := flag.String("o", "", "output file (default stdout)")
	gen := flag.String("gen", "", "emit a built-in cipher program, e.g. rijndael-2, rc6-20, serpent-8")
	keyHex := flag.String("key", strings.Repeat("00", 16), "key for -gen (hex)")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *gen != "" {
		if err := generate(w, *gen, *keyHex, *disasm); err != nil {
			fatal(err)
		}
		return
	}

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *disasm {
		words, err := parseWords(string(src))
		if err != nil {
			fatal(err)
		}
		text, err := asm.Disassemble(words)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(w, text)
		return
	}
	words, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	writeWords(w, words)
}

func readInput(path string) ([]byte, error) {
	if path == "" || path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// writeWords emits one 80-bit word per line as 20 hex digits.
func writeWords(w io.Writer, words []isa.Word) {
	for _, word := range words {
		fmt.Fprintf(w, "%04x%016x\n", word.Hi, word.Lo)
	}
}

// parseWords reads the 20-hex-digit-per-line format back.
func parseWords(src string) ([]isa.Word, error) {
	var words []isa.Word
	for i, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "#") {
			continue
		}
		if len(line) != 20 {
			return nil, fmt.Errorf("line %d: expected 20 hex digits, got %q", i+1, line)
		}
		hi, err := strconv.ParseUint(line[:4], 16, 16)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", i+1, err)
		}
		lo, err := strconv.ParseUint(line[4:], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", i+1, err)
		}
		words = append(words, isa.Word{Hi: uint16(hi), Lo: lo})
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("no microcode words in input")
	}
	return words, nil
}

// generate emits a built-in cipher program as words or assembly.
func generate(w io.Writer, name, keyHex string, asText bool) error {
	key, err := hex.DecodeString(keyHex)
	if err != nil {
		return fmt.Errorf("bad -key: %v", err)
	}
	dash := strings.LastIndex(name, "-")
	if dash < 0 {
		return fmt.Errorf("-gen expects alg-rounds or alg-dec-rounds, e.g. rijndael-2")
	}
	rounds, err := strconv.Atoi(name[dash+1:])
	if err != nil {
		return fmt.Errorf("bad round count in %q", name)
	}
	alg := name[:dash]
	build := bench.Build
	if strings.HasSuffix(alg, "-dec") {
		alg = strings.TrimSuffix(alg, "-dec")
		build = bench.BuildDecrypt
	}
	p, err := build(bench.Config{Alg: alg, Rounds: rounds}, key)
	if err != nil {
		return err
	}
	if asText {
		text, err := asm.DisassembleInstrs(p.Instrs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "; %s: %d instructions, %d rows, window %d\n",
			p.Name, len(p.Instrs), p.Geometry.Rows, p.Window)
		fmt.Fprint(w, text)
		return nil
	}
	writeWords(w, p.Words())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobra-asm:", err)
	os.Exit(1)
}
