package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
)

// WritePrometheus renders the registry tree in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per family,
// histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Gather()
	lastName := ""
	for i := range samples {
		s := &samples[i]
		if s.Name != lastName {
			lastName = s.Name
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

// writeSample renders one time series.
func writeSample(w io.Writer, s *Sample) error {
	if s.Hist == nil {
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, braced(labelString(s.Labels)), s.Value)
		return err
	}
	ls := labelString(s.Labels)
	sep := ""
	if ls != "" {
		sep = ","
	}
	cum := int64(0)
	for i, b := range s.Hist.Bounds {
		cum += s.Hist.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", s.Name, ls, sep, b, cum); err != nil {
			return err
		}
	}
	cum += s.Hist.Counts[len(s.Hist.Counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", s.Name, ls, sep, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", s.Name, braced(ls), s.Hist.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, braced(ls), s.Hist.Count)
	return err
}

// braced wraps a non-empty label string in braces.
func braced(ls string) string {
	if ls == "" {
		return ""
	}
	return "{" + ls + "}"
}

// ExpvarMap flattens the registry tree into an expvar-friendly map:
// series keyed by name{labels}, histograms as snapshot objects. This is
// the JSON twin of the Prometheus text format, served on /debug/vars.
func (r *Registry) ExpvarMap() map[string]any {
	m := make(map[string]any)
	for _, s := range r.Gather() {
		k := s.Name + braced(labelString(s.Labels))
		if s.Hist != nil {
			m[k] = *s.Hist
		} else {
			m[k] = s.Value
		}
	}
	return m
}

// Handler serves the registry as Prometheus text.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// expvarTarget is the registry the published expvar Func snapshots; the
// expvar namespace is process-global, so the last served registry wins.
var (
	expvarTarget atomic.Pointer[Registry]
	expvarOnce   sync.Once
)

// publishExpvar exposes the registry under the process-global expvar name
// "cobra_metrics" (published once; later calls rebind the target).
func publishExpvar(r *Registry) {
	expvarTarget.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("cobra_metrics", expvar.Func(func() any {
			if t := expvarTarget.Load(); t != nil {
				return t.ExpvarMap()
			}
			return nil
		}))
	})
}

// NewMux builds the observability endpoint set for a registry:
//
//	/metrics     Prometheus text exposition
//	/debug/vars  expvar JSON (standard library vars + cobra_metrics)
//	/debug/trace recent spans from the registry tree's trace rings
func NewMux(r *Registry) *http.ServeMux {
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		recs := r.TraceRecords()
		if recs == nil {
			recs = []SpanRecord{} // always a JSON array, even with tracing off
		}
		_ = json.NewEncoder(w).Encode(recs)
	})
	return mux
}

// Server is a running observability HTTP listener. Stop it with
// Shutdown (graceful: in-flight scrapes finish) or Close (abrupt); Done
// reports when the serving goroutine has fully exited, so a daemon's
// drain path can wait for the metrics endpoint the way it waits for its
// own sessions.
type Server struct {
	// URL is the base address, e.g. "http://127.0.0.1:9090".
	URL  string
	srv  *http.Server
	done chan struct{}
}

// Serve starts the observability endpoints on addr (":9090",
// "127.0.0.1:0", …) in a background goroutine and returns the bound
// server; callers print s.URL so operators and scrape jobs can find a
// randomly assigned port.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		URL:  "http://" + ln.Addr().String(),
		srv:  &http.Server{Handler: NewMux(r)},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Shutdown gracefully stops the server: the listener closes, in-flight
// scrapes run to completion, and the serving goroutine exits — bounded
// by ctx like net/http's Shutdown. This is the drain path cobrad and
// cobra-farm take on SIGTERM, so a scrape racing the shutdown gets its
// complete response instead of a reset connection.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// Done is closed when the serving goroutine has exited.
func (s *Server) Done() <-chan struct{} { return s.done }

// Close stops the listener abruptly, dropping in-flight scrapes; prefer
// Shutdown on orderly exits.
func (s *Server) Close() error { return s.srv.Close() }
