package asm

import (
	"strings"
	"testing"

	"cobra/internal/isa"
)

// mustAssemble fails the test on assembly errors.
func mustAssemble(t *testing.T, src string) []isa.Word {
	t.Helper()
	words, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble(%q): %v", src, err)
	}
	return words
}

// one assembles a single statement and returns the decoded instruction.
func one(t *testing.T, src string) isa.Instr {
	t.Helper()
	prog, err := AssembleInstrs(src)
	if err != nil {
		t.Fatalf("AssembleInstrs(%q): %v", src, err)
	}
	if len(prog) != 1 {
		t.Fatalf("expected 1 instruction, got %d", len(prog))
	}
	return prog[0]
}

func TestAssembleBasics(t *testing.T) {
	if in := one(t, "NOP"); in.Op != isa.OpNop {
		t.Errorf("NOP -> %v", in.Op)
	}
	if in := one(t, "HALT"); in.Op != isa.OpHalt {
		t.Errorf("HALT -> %v", in.Op)
	}
	if in := one(t, "JMP 42"); in.Op != isa.OpJmp || in.Data != 42 {
		t.Errorf("JMP 42 -> %v", in)
	}
}

func TestLabelsResolveForwardAndBackward(t *testing.T) {
	src := `
start:  NOP
        JMP end
        JMP start
end:    HALT
`
	prog, err := AssembleInstrs(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog[1].Data != 3 {
		t.Errorf("forward label resolved to %d, want 3", prog[1].Data)
	}
	if prog[2].Data != 0 {
		t.Errorf("backward label resolved to %d, want 0", prog[2].Data)
	}
}

func TestDuplicateLabelRejected(t *testing.T) {
	if _, err := Assemble("x: NOP\nx: NOP"); err == nil {
		t.Error("expected duplicate-label error")
	}
}

func TestUnknownLabelRejected(t *testing.T) {
	if _, err := Assemble("JMP nowhere"); err == nil {
		t.Error("expected unknown-label error")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
; full line comment
# hash comment
NOP   ; trailing
HALT  # trailing hash
`
	words := mustAssemble(t, src)
	if len(words) != 2 {
		t.Errorf("got %d instructions, want 2", len(words))
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("NOP\nBOGUS\n")
	if err == nil {
		t.Fatal("expected error")
	}
	ae, ok := err.(*Error)
	if !ok || ae.Line != 2 {
		t.Errorf("error = %v, want line 2", err)
	}
}

func TestSliceForms(t *testing.T) {
	cases := map[string]isa.Slice{
		"ENOUT all":    isa.SliceAll(),
		"ENOUT r3":     isa.SliceRow(3),
		"ENOUT c2":     isa.SliceCol(2),
		"ENOUT r10.c1": isa.SliceAt(10, 1),
	}
	for src, want := range cases {
		if in := one(t, src); in.Slice != want {
			t.Errorf("%q slice = %+v, want %+v", src, in.Slice, want)
		}
	}
}

func TestCfgEVariants(t *testing.T) {
	cases := []struct {
		src  string
		elem isa.Elem
		data uint64
	}{
		{"CFGE r0.c0 INSEL INC", isa.ElemInsel, isa.InselCfg{Source: 2}.Encode()},
		{"CFGE r0.c0 E1 ROTL IMM 5", isa.ElemE1,
			isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcImm, Amt: 5}.Encode()},
		{"CFGE r0.c0 E2 SHL INB", isa.ElemE2,
			isa.ECfg{Mode: isa.EShl, AmtSrc: isa.SrcINB}.Encode()},
		{"CFGE r0.c0 E2 ROTR INC", isa.ElemE2,
			isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcINC, Neg: true}.Encode()},
		{"CFGE r0.c0 E2 ROTR IMM 5", isa.ElemE2,
			isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcImm, Amt: 5, Neg: true}.Encode()},
		{"CFGE r0.c0 E3 BYP", isa.ElemE3, 0},
		{"CFGE r0.c0 A1 XOR INER", isa.ElemA1,
			isa.ACfg{Op: isa.AXor, Operand: isa.SrcINER}.Encode()},
		{"CFGE r0.c0 A1 OR IMM 0xff", isa.ElemA1,
			isa.ACfg{Op: isa.AOr, Operand: isa.SrcImm, Imm: 0xff}.Encode()},
		{"CFGE r0.c0 A2 XOR INB SHL 3", isa.ElemA2,
			isa.ACfg{Op: isa.AXor, Operand: isa.SrcINB, PreShift: 3}.Encode()},
		{"CFGE r0.c0 A2 XOR INB ROTLBY 7", isa.ElemA2,
			isa.ACfg{Op: isa.AXor, Operand: isa.SrcINB, PreShift: 7, PreShiftRot: true}.Encode()},
		{"CFGE r0.c0 B ADD W32 INER", isa.ElemB,
			isa.BCfg{Mode: isa.BAdd, Width: 2, Operand: isa.SrcINER}.Encode()},
		{"CFGE r0.c0 B SUB W8 IMM 1", isa.ElemB,
			isa.BCfg{Mode: isa.BSub, Width: 0, Operand: isa.SrcImm, Imm: 1}.Encode()},
		{"CFGE r0.c0 C S8", isa.ElemC, isa.CCfg{Mode: isa.CS8x8}.Encode()},
		{"CFGE r0.c0 C S4 PAGE 6", isa.ElemC,
			isa.CCfg{Mode: isa.CS4x4, Page: 6}.Encode()},
		{"CFGE r0.c0 C S8TO32 BYTE 2", isa.ElemC,
			isa.CCfg{Mode: isa.CS8to32, ByteSel: 2}.Encode()},
		{"CFGE r0.c1 D SQR", isa.ElemD, isa.DCfg{Mode: isa.DSquare}.Encode()},
		{"CFGE r0.c1 D MUL32 INA", isa.ElemD,
			isa.DCfg{Mode: isa.DMul32, Operand: isa.SrcINA}.Encode()},
		{"CFGE r0.c0 F MDS 2 3 1 1", isa.ElemF,
			isa.FCfg{Mode: isa.FMDS, Consts: [4]uint8{2, 3, 1, 1}}.Encode()},
		{"CFGE r0.c0 F LANES 0x0e 0x0b 0x0d 0x09", isa.ElemF,
			isa.FCfg{Mode: isa.FLanes, Consts: [4]uint8{0xe, 0xb, 0xd, 9}}.Encode()},
		{"CFGE r0.c0 REG ON", isa.ElemReg, 1},
		{"CFGE r0.c0 REG OFF", isa.ElemReg, 0},
		{"CFGE r0.c0 ER BANK 2 ADDR 200", isa.ElemER,
			isa.ERCfg{Bank: 2, Addr: 200}.Encode()},
		{"CFGE r0.c0 A1 RAW 0x123", isa.ElemA1, 0x123},
	}
	for _, c := range cases {
		in := one(t, c.src)
		if in.Op != isa.OpCfgElem || in.Elem != c.elem || in.Data != c.data {
			t.Errorf("%q -> %+v (data %#x), want elem %v data %#x",
				c.src, in, in.Data, c.elem, c.data)
		}
	}
}

func TestNonCfgEStatements(t *testing.T) {
	in := one(t, "LUTLD all S8 BANK 1 GROUP 10 0xA1B2C3D4")
	if in.Op != isa.OpLoadLUT || in.LUT != isa.LUTAddr(false, 1, 10) || in.Data != 0xA1B2C3D4 {
		t.Errorf("LUTLD -> %+v", in)
	}
	in = one(t, "SHUF 1 HI 8 9 10 11 12 13 14 15")
	if in.Op != isa.OpCfgShuf || in.Slice.Row != 1 {
		t.Errorf("SHUF -> %+v", in)
	}
	cfg := isa.DecodeShuf(in.Data)
	if !cfg.High || cfg.Perm != [8]uint8{8, 9, 10, 11, 12, 13, 14, 15} {
		t.Errorf("SHUF payload = %+v", cfg)
	}
	in = one(t, "INMUX ERAM BANK 3 ADDR 17")
	mux := isa.DecodeInMux(in.Data)
	if mux.Mode != isa.InERAM || mux.Bank != 3 || mux.Addr != 17 {
		t.Errorf("INMUX -> %+v", mux)
	}
	in = one(t, "WHITE c2 ADD 0x01020304")
	wh := isa.DecodeWhite(in.Data)
	if wh.Col != 2 || wh.Mode != isa.WhiteAdd || wh.Key != 0x01020304 {
		t.Errorf("WHITE -> %+v", wh)
	}
	in = one(t, "ERAMW c1 BANK 0 ADDR 5 0xCAFEBABE")
	ew := isa.DecodeERAMWrite(in.Data)
	if in.Slice.Col != 1 || ew.Addr != 5 || ew.Value != 0xCAFEBABE {
		t.Errorf("ERAMW -> %+v", ew)
	}
	in = one(t, "CAPCFG c3 ON BANK 2 ADDR 9")
	cc := isa.DecodeCapture(in.Data)
	if in.Slice.Col != 3 || !cc.Enabled || cc.Bank != 2 || cc.Addr != 9 {
		t.Errorf("CAPCFG -> %+v", cc)
	}
	in = one(t, "FLAG SET READY,BUSY CLR DVALID")
	fl := isa.DecodeFlag(in.Data)
	if fl.Set != isa.FlagReady|isa.FlagBusy || fl.Clear != isa.FlagDValid {
		t.Errorf("FLAG -> %+v", fl)
	}
}

func TestRejectsMalformedStatements(t *testing.T) {
	bad := []string{
		"CFGE",
		"CFGE r0.c0",
		"CFGE r0.c0 Q1 BYP",
		"CFGE r9.c7 A1 BYP",
		"CFGE r0.c0 E1 SPIN IMM 1",
		"CFGE r0.c0 E1 SHL IMM 32",
		"CFGE r0.c0 A1 XOR",
		"CFGE r0.c0 A1 XOR IMM",
		"CFGE r0.c0 B ADD W13 INB",
		"CFGE r0.c0 C S4 PAGE 8",
		"CFGE r0.c0 C S8TO32 BYTE 4",
		"CFGE r0.c0 F MDS 1 2 3",
		"CFGE r0.c0 F MDS 1 2 3 999",
		"CFGE r0.c0 REG MAYBE",
		"CFGE r0.c0 ER BANK 4 ADDR 0",
		"CFGE r0.c0 A1 RAW 0xFFFFFFFFFFFFFF",
		"LUTLD all S9 BANK 0 GROUP 0 0",
		"LUTLD all S4 BANK 0 GROUP 16 0",
		"LUTLD all S8 BANK 0 GROUP 64 0",
		"SHUF 0 LO 1 2 3",
		"SHUF 0 XX 0 1 2 3 4 5 6 7",
		"SHUF 0 LO 0 1 2 3 4 5 6 16",
		"INMUX SIDEWAYS",
		"INMUX ERAM BANK 9 ADDR 0",
		"WHITE r0 XOR 1",
		"WHITE c0 XOR",
		"WHITE c0 OFF 3",
		"ERAMW c0 BANK 0 ADDR 256 0",
		"CAPCFG c0 MAYBE",
		"CAPCFG c0 ON BANK 0",
		"FLAG SET NOSUCH",
		"FLAG WIBBLE",
		"JMP",
		"JMP 5000",
		"ENOUT",
		"ENOUT r999",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestEmptySourceRejected(t *testing.T) {
	if _, err := Assemble("; nothing here\n"); err == nil {
		t.Error("expected error for empty program")
	}
}

const kitchenSink = `
; exercise every statement form
setup:
    CFGE all E1 BYP
    CFGE r0.c0 INSEL IND
    CFGE r1.c0 INSEL PB
    CFGE r1.c3 INSEL PA
    CFGE r2.c2 E2 ROTL INA
    CFGE r1.c0 E1 ROTR IND
    CFGE r1.c2 E3 ROTR IMM 22
    CFGE r1.c2 E2 ROTL IMM 13
    CFGE r2.c3 E3 SHR INER
    CFGE c0 A1 XOR INB
    CFGE r0.c0 A2 AND IMM 0xdeadbeef SHL 3
    CFGE r3.c1 A2 OR INC ROTLBY 31
    CFGE r0.c0 B ADD W16 IND
    CFGE r0.c0 B SUB W32 IMM 0x01000193
    CFGE all C S8
    CFGE r1.c1 C S4 PAGE 7
    CFGE r1.c2 C S8TO32 BYTE 3
    CFGE c1 D MUL16 INB
    CFGE r0.c3 D SQR
    CFGE r2.c0 F LANES 0x02 0x03 0x01 0x01
    CFGE r2.c2 F MDS 0x0e 0x0b 0x0d 0x09
    CFGE all REG ON
    CFGE r0.c0 REG OFF
    CFGE r0.c0 OUT ON
    CFGE r3.c3 ER BANK 3 ADDR 255
    LUTLD all S8 BANK 2 GROUP 63 0xffffffff
    LUTLD r0.c0 S4 BANK 1 GROUP 15 0x12345678
    SHUF 0 LO 4 5 6 7 0 1 2 3
    SHUF 1 HI 15 14 13 12 11 10 9 8
    INMUX EXT
    INMUX FB
    INMUX ERAM BANK 1 ADDR 32
    WHITE c0 XOR 0xaabbccdd
    WHITE c1 ADD 0x00000001
    WHITE c2 OFF
    WHITE c3 XORIN 0x11223344
    WHITE c0 ADDIN 0x55667788
    ERAMW c3 BANK 2 ADDR 100 0x87654321
    CAPCFG c0 ON BANK 3 ADDR 16
    CAPCFG c1 OFF
    DISOUT all
    ENOUT r0.c0
    FLAG SET READY
loop:
    FLAG SET BUSY,DVALID CLR READY
    NOP
    JMP loop
    HALT
`

func TestDisassembleRoundTrip(t *testing.T) {
	words := mustAssemble(t, kitchenSink)
	text, err := Disassemble(words)
	if err != nil {
		t.Fatal(err)
	}
	words2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	if len(words) != len(words2) {
		t.Fatalf("length mismatch %d vs %d", len(words), len(words2))
	}
	for i := range words {
		if words[i] != words2[i] {
			in1, _ := isa.Unpack(words[i])
			in2, _ := isa.Unpack(words2[i])
			t.Errorf("word %d differs:\n  orig %v\n  redo %v", i, in1, in2)
		}
	}
}

func TestDisassembleSecondPassIsFixedPoint(t *testing.T) {
	words := mustAssemble(t, kitchenSink)
	text1, err := Disassemble(words)
	if err != nil {
		t.Fatal(err)
	}
	words2 := mustAssemble(t, text1)
	text2, err := Disassemble(words2)
	if err != nil {
		t.Fatal(err)
	}
	if text1 != text2 {
		t.Error("disassembly is not a fixed point")
	}
}

func TestDisassembleRejectsCorruptWord(t *testing.T) {
	bad := isa.Instr{Op: isa.Opcode(29)}.Pack()
	if _, err := Disassemble([]isa.Word{bad}); err == nil {
		t.Error("expected error for corrupt word")
	}
}

func TestCaseInsensitiveMnemonics(t *testing.T) {
	a := mustAssemble(t, "cfge r0.c0 a1 xor inb")
	b := mustAssemble(t, "CFGE r0.c0 A1 XOR INB")
	if a[0] != b[0] {
		t.Error("mnemonics should be case-insensitive")
	}
}

func TestDisassembleIncludesAddressComments(t *testing.T) {
	words := mustAssemble(t, "NOP\nHALT")
	text, err := Disassemble(words)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "; 0000") || !strings.Contains(text, "; 0001") {
		t.Errorf("missing address comments:\n%s", text)
	}
}

func TestErrorType(t *testing.T) {
	e := &Error{Line: 7, Msg: "boom"}
	if e.Error() != "asm: line 7: boom" {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestDisassembleInstrs(t *testing.T) {
	prog, err := AssembleInstrs("NOP\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	text, err := DisassembleInstrs(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "NOP") || !strings.Contains(text, "HALT") {
		t.Errorf("DisassembleInstrs = %q", text)
	}
}

func TestMoreMalformedStatements(t *testing.T) {
	bad := []string{
		"CFGE r0.c0 B ADD",
		"CFGE r0.c0 B BONK W32 INB",
		"CFGE r0.c0 B ADD W32 INB extra",
		"CFGE r0.c0 C",
		"CFGE r0.c0 C S8 extra",
		"CFGE r0.c0 C S4 PAGES 1",
		"CFGE r0.c0 C WAT",
		"CFGE r0.c0 D",
		"CFGE r0.c0 D SQR extra",
		"CFGE r0.c0 D MUL32",
		"CFGE r0.c0 D SPIN",
		"CFGE r0.c0 D MUL16 INB extra",
		"CFGE r0.c0 E1",
		"CFGE r0.c0 E1 SHL IMM",
		"CFGE r0.c0 E1 SHL INB extra",
		"CFGE r0.c0 A1 XOR INB WAT 3",
		"CFGE r0.c0 A1 XOR INB SHL 99",
		"CFGE r0.c0 F BYP extra extra extra extra",
		"CFGE r0.c0 INSEL",
		"CFGE r0.c0 INSEL WAT",
		"CFGE r0.c0 ER BANK 1",
		"CFGE rx.c0 A1 BYP",
		"CFGE r0.cx A1 BYP",
		"LUTLD all S8 BANK 9 GROUP 0 0",
		"LUTLD all S8 BANK 0 GROUP 0 0x1ffffffff",
		"SHUF 999 LO 0 1 2 3 4 5 6 7",
		"WHITE",
		"WHITE c0",
		"ERAMW c0 BANK 0 ADDR 0",
		"CAPCFG c0",
		"CAPCFG c9 ON BANK 0 ADDR 0",
		"FLAG SET",
		"FLAG CLR",
		"DISOUT",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}
