package serve

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzFrameRoundTrip drives the wire layer with arbitrary bytes and pins
// three properties:
//
//  1. encode→decode is a fixed point: any stream ReadFrame accepts
//     re-encodes to the identical bytes it consumed, and typed payloads
//     that decode re-encode to the identical payload.
//  2. Malformed headers are rejected: nonzero flags/reserved bytes and
//     unknown types never decode.
//  3. The payload-size limit is enforced before the payload is read.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Type: FrameHello, Payload: Hello{1, 1}.Encode()}))
	f.Add(AppendFrame(nil, Frame{Type: FrameHello,
		Payload: HelloAck{Version: 1, MaxFrame: DefaultMaxFrame, Backend: "farm", Workers: 4}.Encode()}))
	f.Add(AppendFrame(nil, Frame{Type: FrameConfigure,
		Payload: ConfigureReq{Tenant: "t0", Alg: "rc6", Key: make([]byte, 16), Unroll: 2}.Encode()}))
	f.Add(AppendFrame(nil, Frame{Type: FrameConfigure,
		Payload: ConfigureAck{Backend: "device", Workers: 1, Rows: 20, Unroll: 20, Fastpath: true}.Encode()}))
	f.Add(AppendFrame(nil, Frame{Type: FrameEncrypt,
		Payload: CipherReq{Mode: ModeCTR, IV: make([]byte, 16), Data: []byte("hello world, 16b")}.Encode()}))
	f.Add(AppendFrame(nil, Frame{Type: FrameStats}))
	f.Add(AppendFrame(nil, Frame{Type: FrameError, Payload: EncodeError(CodeBusy, "q")}))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0})

	const limit = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		fr, err := ReadFrame(r, limit)
		if err != nil {
			// Rejections must not be silent successes elsewhere: a header
			// with bad static bytes must fail regardless of what follows.
			if len(data) >= headerSize && (data[1] != 0 || data[2] != 0 || data[3] != 0) &&
				!errors.Is(err, ErrMalformed) && !errors.Is(err, ErrTooLarge) {
				// Type byte is checked first; zero/unknown types also map
				// to ErrMalformed, so any other error here is a bug...
				// unless the header was truncated.
				if len(data) >= headerSize && !errors.Is(err, io.ErrUnexpectedEOF) && err != io.EOF {
					t.Fatalf("malformed header got unexpected error class: %v", err)
				}
			}
			return
		}
		if data[1] != 0 || data[2] != 0 || data[3] != 0 {
			t.Fatalf("frame with nonzero flags/reserved decoded: % x", data[:headerSize])
		}
		if len(fr.Payload) > limit {
			t.Fatalf("payload %d exceeds limit %d", len(fr.Payload), limit)
		}
		consumed := len(data) - r.Len()
		re := AppendFrame(nil, fr)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode differs from consumed bytes:\n  in:  % x\n  out: % x", data[:consumed], re)
		}
		fr2, err := ReadFrame(bytes.NewReader(re), limit)
		if err != nil {
			t.Fatalf("re-read of re-encoded frame: %v", err)
		}
		if fr2.Type != fr.Type || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("second decode differs")
		}

		// Typed payload fixed points, by frame type. Client and server
		// payloads share frame types, so try both decoders.
		switch fr.Type {
		case FrameHello:
			if h, err := DecodeHello(fr.Payload); err == nil {
				if got, err := DecodeHello(h.Encode()); err != nil || got != h {
					t.Fatalf("hello fixed point: %+v vs %+v (%v)", h, got, err)
				}
			}
			if h, err := DecodeHelloAck(fr.Payload); err == nil {
				if got, err := DecodeHelloAck(h.Encode()); err != nil || got != h {
					t.Fatalf("hello ack fixed point: %+v vs %+v (%v)", h, got, err)
				}
			}
		case FrameConfigure:
			if c, err := DecodeConfigureReq(fr.Payload); err == nil {
				b := c.Encode()
				if !bytes.Equal(b, fr.Payload) {
					t.Fatalf("configure req re-encode differs")
				}
			}
			if c, err := DecodeConfigureAck(fr.Payload); err == nil {
				if !bytes.Equal(c.Encode(), fr.Payload) {
					t.Fatalf("configure ack re-encode differs")
				}
			}
		case FrameEncrypt, FrameDecrypt:
			if c, err := DecodeCipherReq(fr.Payload); err == nil {
				if !bytes.Equal(c.Encode(), fr.Payload) {
					t.Fatalf("cipher req re-encode differs")
				}
			}
		case FrameError:
			if e, err := DecodeError(fr.Payload); err == nil {
				if !bytes.Equal(EncodeError(e.Code, e.Msg), fr.Payload) {
					t.Fatalf("error re-encode differs")
				}
			}
		}
	})
}
