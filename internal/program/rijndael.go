package program

import (
	"fmt"

	"cobra/internal/cipher"
	"cobra/internal/isa"
)

// Rijndael mapping (§4: "up to two rounds of Rijndael"). The AES state is
// held column-major: block c is state column c with the row-0 byte in the
// least significant lane. One round occupies two rows:
//
//	row S:  C element in 8→8 mode performs SubBytes on all four columns.
//	[byte shuffler]: ShiftRows is a pure byte permutation of the 128-bit
//	        stream, exactly what the embedded shufflers provide.
//	row M:  F element in MDS mode computes MixColumns; A2 XORs the round
//	        key word from the eRAM (AddRoundKey).
//
// The initial AddRoundKey is the input-side whitening XOR; the final round
// omits MixColumns (F bypassed on its row).

// aesShiftRowsPerm returns the ShiftRows byte permutation: destination byte
// 4c+r takes source byte 4((c+r) mod 4)+r.
func aesShiftRowsPerm() [16]uint8 {
	var p [16]uint8
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			p[4*c+r] = uint8(4*((c+r)%4) + r)
		}
	}
	return p
}

// rijndaelRoundRows emits the static configuration of one round at rows
// (rs, rs+1). mixColumns selects whether the F element is active (false
// for the final round).
func (b *builder) rijndaelRoundRows(rs int, mixColumns bool) {
	b.cfge(isa.SliceRow(rs), isa.ElemC, isa.CCfg{Mode: isa.CS8x8}.Encode())
	rm := rs + 1
	if mixColumns {
		b.cfge(isa.SliceRow(rm), isa.ElemF,
			isa.FCfg{Mode: isa.FMDS, Consts: [4]uint8{2, 3, 1, 1}}.Encode())
	}
	b.cfge(isa.SliceRow(rm), isa.ElemA2, aCfg(isa.AXor, isa.SrcINER))
}

// BuildRijndael compiles AES-128 at unroll depth hw onto COBRA.
func BuildRijndael(key []byte, hw int) (*Program, error) {
	ck, err := cipher.NewRijndael(key)
	if err != nil {
		return nil, err
	}
	const rounds = cipher.AESRounds
	full := hw == rounds
	geo, passes, err := validateUnroll("rijndael", hw, rounds, 2, 0)
	if err != nil {
		return nil, err
	}
	if geo.Rows < 4 {
		geo.Rows = 4
	}

	p := &Program{
		Name:        fmt.Sprintf("rijndael-%d", hw),
		Cipher:      "rijndael",
		HWRounds:    hw,
		TotalRounds: rounds,
		Geometry:    geo,
		Window:      1,
		Streaming:   full,
	}
	b := &builder{}

	// --- Setup ------------------------------------------------------------
	b.disout()

	// S-box into every C element (the M rows bypass C, so the broadcast is
	// harmless there).
	sbox := cipher.AESSBox()
	for bank := 0; bank < 4; bank++ {
		b.loadS8(isa.SliceAll(), bank, &sbox)
	}
	// ShiftRows on the shuffler of every round stage (shuffler st sits
	// before row 2st+1); shufflers over identity tail rows stay identity.
	perm := aesShiftRowsPerm()
	for st := 0; st < hw; st++ {
		b.shuf(st, perm)
	}
	// Round rows. In full unroll the final round's MixColumns is statically
	// absent; in iterative operation the last pass toggles it off.
	for st := 0; st < hw; st++ {
		mc := !(full && st == hw-1)
		b.rijndaelRoundRows(2*st, mc)
	}
	// Round keys: bank 0, address r holds rk[r][c] in column c.
	for r := 1; r <= rounds; r++ {
		w := ck.RoundKeyWords(r)
		for c := 0; c < 4; c++ {
			b.eramw(c, 0, r, w[c])
		}
	}

	// Registered rows: all round boundaries for streaming; all but the
	// final stage (or all stages when identity tail rows exist) otherwise.
	tail := geo.Rows > 2*hw
	var regs []int
	for st := 0; st < hw; st++ {
		if full || st < hw-1 || tail {
			regs = append(regs, 2*st+1)
		}
	}
	for _, row := range regs {
		b.regRow(row, true)
	}

	rk0 := ck.RoundKeyWords(0)
	if full {
		p.PipelineDepth = len(regs)
		for c := 0; c < 4; c++ {
			b.white(c, isa.WhiteXor, true, rk0[c])
		}
		for st := 0; st < hw; st++ {
			b.erRow(2*st+1, 0, st+1)
		}
		b.streamingFlow(len(regs))
		p.Instrs = b.ins
		return p, nil
	}

	// --- Iterative control flow -------------------------------------------
	ticks := len(regs) + 1
	lastStageRowM := 2*(hw-1) + 1
	b.iterativeFlow(ticks, passes, iterHooks{
		FirstPass: func(b *builder) {
			for c := 0; c < 4; c++ {
				b.white(c, isa.WhiteXor, true, rk0[c])
			}
		},
		SecondPass: func(b *builder) {
			for c := 0; c < 4; c++ {
				b.whiteOff(c)
			}
		},
		LastPass: func(b *builder) {
			// The final round has no MixColumns: bypass F on its row.
			b.cfge(isa.SliceRow(lastStageRowM), isa.ElemF, bypass)
		},
		EveryPass: func(b *builder, pass int) {
			for st := 0; st < hw; st++ {
				b.erRow(2*st+1, 0, pass*hw+st+1)
			}
		},
		Epilogue: func(b *builder) {
			b.cfge(isa.SliceRow(lastStageRowM), isa.ElemF,
				isa.FCfg{Mode: isa.FMDS, Consts: [4]uint8{2, 3, 1, 1}}.Encode())
		},
	})
	p.Instrs = b.ins
	return p, nil
}
