package asm

import (
	"fmt"
	"strings"

	"cobra/internal/isa"
)

// Disassemble renders packed microcode as canonical assembly text. The
// output re-assembles to an identical program (assemble ∘ disassemble is
// the identity; property-tested), so microcode images are fully
// inspectable and editable.
func Disassemble(words []isa.Word) (string, error) {
	var b strings.Builder
	for i, w := range words {
		in, err := isa.Unpack(w)
		if err != nil {
			return "", fmt.Errorf("asm: word %d: %w", i, err)
		}
		line, err := disasmInstr(in)
		if err != nil {
			return "", fmt.Errorf("asm: word %d: %w", i, err)
		}
		fmt.Fprintf(&b, "%-60s ; %04x\n", line, i)
	}
	return b.String(), nil
}

// DisassembleInstrs renders decoded instructions as canonical assembly.
func DisassembleInstrs(prog []isa.Instr) (string, error) {
	words := make([]isa.Word, len(prog))
	for i, in := range prog {
		words[i] = in.Pack()
	}
	return Disassemble(words)
}

// Line renders one decoded instruction as a single line of canonical
// assembly, falling back to the instruction's raw String form for words
// the surface syntax cannot express (diagnostic use: cobra-vet attaches
// the offending source line to every finding).
func Line(in isa.Instr) string {
	s, err := disasmInstr(in)
	if err != nil {
		return in.String()
	}
	return s
}

func disasmInstr(in isa.Instr) (string, error) {
	switch in.Op {
	case isa.OpNop:
		return "NOP", nil
	case isa.OpHalt:
		return "HALT", nil
	case isa.OpJmp:
		return fmt.Sprintf("JMP %d", in.Data&0xfff), nil
	case isa.OpEnOut:
		return fmt.Sprintf("ENOUT %s", in.Slice), nil
	case isa.OpDisOut:
		return fmt.Sprintf("DISOUT %s", in.Slice), nil
	case isa.OpCtlFlag:
		cfg := isa.DecodeFlag(in.Data)
		parts := []string{"FLAG"}
		if cfg.Set != 0 {
			parts = append(parts, "SET", flagList(cfg.Set))
		}
		if cfg.Clear != 0 {
			parts = append(parts, "CLR", flagList(cfg.Clear))
		}
		return strings.Join(parts, " "), nil
	case isa.OpCfgElem:
		return disasmCfgE(in)
	case isa.OpLoadLUT:
		space4, bank, group := isa.SplitLUTAddr(in.LUT)
		space := "S8"
		if space4 {
			space = "S4"
		}
		return fmt.Sprintf("LUTLD %s %s BANK %d GROUP %d 0x%08x",
			in.Slice, space, bank, group, uint32(in.Data)), nil
	case isa.OpCfgShuf:
		cfg := isa.DecodeShuf(in.Data)
		half := "LO"
		if cfg.High {
			half = "HI"
		}
		ent := make([]string, 8)
		for i, p := range cfg.Perm {
			ent[i] = fmt.Sprintf("%d", p)
		}
		return fmt.Sprintf("SHUF %d %s %s", in.Slice.Row, half, strings.Join(ent, " ")), nil
	case isa.OpCfgInMux:
		cfg := isa.DecodeInMux(in.Data)
		switch cfg.Mode {
		case isa.InExternal:
			return "INMUX EXT", nil
		case isa.InFeedback:
			return "INMUX FB", nil
		default:
			return fmt.Sprintf("INMUX ERAM BANK %d ADDR %d", cfg.Bank, cfg.Addr), nil
		}
	case isa.OpCfgWhite:
		cfg := isa.DecodeWhite(in.Data)
		suffix := ""
		if cfg.In {
			suffix = "IN"
		}
		switch cfg.Mode {
		case isa.WhiteXor:
			return fmt.Sprintf("WHITE c%d XOR%s 0x%08x", cfg.Col, suffix, cfg.Key), nil
		case isa.WhiteAdd:
			return fmt.Sprintf("WHITE c%d ADD%s 0x%08x", cfg.Col, suffix, cfg.Key), nil
		default:
			return fmt.Sprintf("WHITE c%d OFF", cfg.Col), nil
		}
	case isa.OpERAMWrite:
		cfg := isa.DecodeERAMWrite(in.Data)
		return fmt.Sprintf("ERAMW c%d BANK %d ADDR %d 0x%08x",
			in.Slice.Col, cfg.Bank, cfg.Addr, cfg.Value), nil
	case isa.OpCfgCapture:
		cfg := isa.DecodeCapture(in.Data)
		if !cfg.Enabled {
			return fmt.Sprintf("CAPCFG c%d OFF", in.Slice.Col), nil
		}
		return fmt.Sprintf("CAPCFG c%d ON BANK %d ADDR %d", in.Slice.Col, cfg.Bank, cfg.Addr), nil
	}
	return "", fmt.Errorf("undisassemblable opcode %v", in.Op)
}

func flagList(mask uint16) string {
	var names []string
	for bit := uint16(1); bit != 0; bit <<= 1 {
		if mask&bit != 0 {
			names = append(names, flagName(bit))
		}
	}
	return strings.Join(names, ",")
}

func disasmCfgE(in isa.Instr) (string, error) {
	head := fmt.Sprintf("CFGE %s %s", in.Slice, in.Elem)
	switch in.Elem {
	case isa.ElemInsel:
		cfg := isa.DecodeInsel(in.Data)
		return head + " " + isa.InselNames[cfg.Source&7], nil
	case isa.ElemE1, isa.ElemE2, isa.ElemE3:
		cfg := isa.DecodeE(in.Data)
		if cfg.Mode == isa.EBypass {
			return head + " BYP", nil
		}
		mode := cfg.Mode.String()
		if cfg.Neg && cfg.Mode == isa.ERotl {
			mode = "ROTR"
		} else if cfg.Neg {
			// Negated shifts are not expressible in the surface syntax;
			// fall back to the raw escape so the round trip stays exact.
			return fmt.Sprintf("%s RAW %#x", head, in.Data), nil
		}
		if cfg.AmtSrc == isa.SrcImm {
			return fmt.Sprintf("%s %s IMM %d", head, mode, cfg.Amt), nil
		}
		if !cfg.AmtSrc.Valid() {
			return fmt.Sprintf("%s RAW %#x", head, in.Data), nil
		}
		return fmt.Sprintf("%s %s %s", head, mode, cfg.AmtSrc), nil
	case isa.ElemA1, isa.ElemA2:
		cfg := isa.DecodeA(in.Data)
		if cfg.Op == isa.ABypass {
			return head + " BYP", nil
		}
		if !cfg.Operand.Valid() {
			return fmt.Sprintf("%s RAW %#x", head, in.Data), nil
		}
		s := fmt.Sprintf("%s %s %s", head, cfg.Op, srcString(cfg.Operand, cfg.Imm))
		if cfg.PreShift != 0 {
			if cfg.PreShiftRot {
				s += fmt.Sprintf(" ROTLBY %d", cfg.PreShift)
			} else {
				s += fmt.Sprintf(" SHL %d", cfg.PreShift)
			}
		}
		return s, nil
	case isa.ElemB:
		cfg := isa.DecodeB(in.Data)
		if cfg.Mode == isa.BBypass {
			return head + " BYP", nil
		}
		if !cfg.Mode.Valid() {
			return fmt.Sprintf("%s RAW %#x", head, in.Data), nil
		}
		if !cfg.Operand.Valid() {
			return fmt.Sprintf("%s RAW %#x", head, in.Data), nil
		}
		return fmt.Sprintf("%s %s W%d %s", head, cfg.Mode,
			[3]int{8, 16, 32}[cfg.Width%3], srcString(cfg.Operand, cfg.Imm)), nil
	case isa.ElemC:
		cfg := isa.DecodeC(in.Data)
		switch cfg.Mode {
		case isa.CS8x8:
			return head + " S8", nil
		case isa.CS4x4:
			return fmt.Sprintf("%s S4 PAGE %d", head, cfg.Page), nil
		case isa.CS8to32:
			return fmt.Sprintf("%s S8TO32 BYTE %d", head, cfg.ByteSel), nil
		default:
			return head + " BYP", nil
		}
	case isa.ElemD:
		cfg := isa.DecodeD(in.Data)
		switch cfg.Mode {
		case isa.DMul16, isa.DMul32:
			if !cfg.Operand.Valid() {
				return fmt.Sprintf("%s RAW %#x", head, in.Data), nil
			}
			return fmt.Sprintf("%s %s %s", head, cfg.Mode, srcString(cfg.Operand, cfg.Imm)), nil
		case isa.DSquare:
			return head + " SQR", nil
		default:
			return head + " BYP", nil
		}
	case isa.ElemF:
		cfg := isa.DecodeF(in.Data)
		if cfg.Mode == isa.FBypass {
			return head + " BYP", nil
		}
		return fmt.Sprintf("%s %s 0x%02x 0x%02x 0x%02x 0x%02x", head, cfg.Mode,
			cfg.Consts[0], cfg.Consts[1], cfg.Consts[2], cfg.Consts[3]), nil
	case isa.ElemReg, isa.ElemOut:
		if in.Data&1 == 1 {
			return head + " ON", nil
		}
		return head + " OFF", nil
	case isa.ElemER:
		cfg := isa.DecodeER(in.Data)
		return fmt.Sprintf("%s BANK %d ADDR %d", head, cfg.Bank, cfg.Addr), nil
	}
	return "", fmt.Errorf("undisassemblable element %v", in.Elem)
}

func srcString(src isa.Src, imm uint32) string {
	if src == isa.SrcImm {
		return fmt.Sprintf("IMM 0x%08x", imm)
	}
	return src.String()
}
