// Package equiv is a word-level symbolic translation validator for compiled
// fastpath traces. It executes the microcode's bulk-encryption phase and the
// compiled trace side by side over a shared hash-consed expression arena —
// the reference side walking the program on a cycle-accurate shadow array,
// the fastpath side replaying the compiled op list with its folded T-tables
// re-expanded to their defining GF(2^8) expressions — and proves every
// emitted block's four output expressions identical. The proof closes over
// the infinite stream in two phases: a base phase walks from the true
// initial state until the joint control state (which is data-independent in
// both machines) repeats with period p, then an inductive phase replaces
// the carried register/feedback data with fresh variables — shared between
// the sides where their expressions agree, distinct where dead-op elision
// has legitimately diverged them — and re-proves one full period under that
// generalization, refining the agreeing set until it is inductive. Because
// expressions mention input atoms only positionally, the generalized period
// transfers to every later period by uniform renaming.
//
// What a Proven result certifies: for every block of the continuous input
// stream, the compiled trace emits exactly the words the microcode would
// emit, under the canonicalization laws of the arena (which are themselves
// validated by concrete evaluation in this package's tests). What it does
// not certify: timing, cycle counts, or any property of the setup phase,
// which both sides execute concretely and identically by construction.
package equiv

import (
	"fmt"
	"time"

	"cobra/internal/datapath"
	"cobra/internal/fastpath"
	"cobra/internal/isa"
)

// Config parameterizes one validation run.
type Config struct {
	Name     string
	Geometry datapath.Geometry
	Window   int

	// MaxOutputs bounds how many output boundaries are explored before the
	// proof is abandoned as non-closing (default 4096). Real programs close
	// within a handful of outputs; a failure to close is reported, never
	// silently passed.
	MaxOutputs int

	// MaxNodes bounds arena growth (default 1<<21 nodes). Symbolic blowup —
	// e.g. data-dependent rotate chains feeding themselves — is refused,
	// not approximated.
	MaxNodes int
}

// Mismatch describes the first diverging output word, with both sides'
// canonical expressions and a concrete minimized witness.
type Mismatch struct {
	Output  int // output block index (0-based within the validated stream)
	Col     int
	Ref, FP string
	Witness *Witness
}

// Result is one validation verdict. Proven is true only when the output
// expressions matched at every explored boundary AND the joint state closed
// on itself; everything else carries a Reason (and, for a certified
// functional divergence, a Mismatch with its witness).
type Result struct {
	Name    string
	Proven  bool
	Outputs int // boundaries compared before closure
	Inputs  int // input blocks consumed before closure
	Nodes   int // arena size at the end of the run
	Elided  int // fastpath ops dropped under the dead mask (informational)
	Reason  string
	Mism    *Mismatch
	Wall    time.Duration
}

// Err returns the result as an error (nil when proven).
func (r *Result) Err() error {
	if r.Proven {
		return nil
	}
	return fmt.Errorf("equiv: %s: %s", r.Name, r.Reason)
}

// String renders a one-line verdict; mismatch details are appended on their
// own lines.
func (r *Result) String() string {
	if r.Proven {
		return fmt.Sprintf("%s: proven equivalent (%d outputs, %d inputs, %d nodes, %d elided, %v)",
			r.Name, r.Outputs, r.Inputs, r.Nodes, r.Elided, r.Wall.Round(time.Microsecond))
	}
	s := fmt.Sprintf("%s: NOT proven: %s", r.Name, r.Reason)
	if m := r.Mism; m != nil {
		s += fmt.Sprintf("\n  output %d col %d\n  microcode: %s\n  fastpath:  %s", m.Output, m.Col, m.Ref, m.FP)
		if w := m.Witness; w != nil {
			s += fmt.Sprintf("\n  witness: inputs %v -> microcode %#08x, fastpath %#08x", w.Inputs, w.RefVal, w.FPVal)
		}
	}
	return s
}

// Validate proves (or refutes) that the compiled trace tr computes the same
// block stream as the microcode words it was compiled from.
func Validate(words []isa.Word, cfg Config, tr *fastpath.Trace) *Result {
	start := time.Now()
	res := &Result{Name: cfg.Name, Elided: tr.Elided}
	defer func() { res.Wall = time.Since(start) }()
	maxOut := cfg.MaxOutputs
	if maxOut <= 0 {
		maxOut = 4096
	}
	maxNodes := cfg.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 1 << 21
	}

	a := NewArena()
	ref, err := newRefWalker(a, words, cfg.Geometry, cfg.Window)
	if err != nil {
		res.Reason = err.Error()
		return res
	}

	// The trace's recorded initial state must be the concrete idle state the
	// setup phase actually reaches — otherwise the recorder itself drifted
	// and the walks would be comparing different machines.
	if len(tr.InitReg) != cfg.Geometry.Rows {
		res.Reason = fmt.Sprintf("trace has %d register rows, geometry has %d", len(tr.InitReg), cfg.Geometry.Rows)
		return res
	}
	for r := 0; r < cfg.Geometry.Rows; r++ {
		for c := 0; c < datapath.Cols; c++ {
			if got, want := tr.InitReg[r][c], ref.idleReg(r, c); got != want {
				res.Reason = fmt.Sprintf("trace initial reg[%d][%d]=%#08x, idle microcode state has %#08x", r, c, got, want)
				return res
			}
		}
	}
	if got, want := tr.InitFB, ref.idleFB(); got != want {
		res.Reason = fmt.Sprintf("trace initial feedback %v, idle microcode state has %v", got, want)
		return res
	}

	fp, err := newFPWalker(a, tr)
	if err != nil {
		res.Reason = err.Error()
		return res
	}

	// step advances both walks one output boundary, verifying input cadence
	// and per-column expression equality. vars maps generalized variables
	// back to the boundary state they stand for (nil during the base phase).
	step := func(out int, vars map[uint32]xid) (failed bool) {
		refOut, err := ref.nextOutput()
		if err != nil {
			res.Reason = err.Error()
			return true
		}
		fpOut, err := fp.nextOutput()
		if err != nil {
			res.Reason = err.Error()
			return true
		}
		res.Outputs = out + 1
		res.Inputs = ref.inCount
		res.Nodes = a.Size()
		if ref.inCount != fp.inCount {
			res.Reason = fmt.Sprintf("input cadence diverges at output %d: microcode consumed %d blocks, fastpath %d",
				out, ref.inCount, fp.inCount)
			return true
		}
		for c := 0; c < datapath.Cols; c++ {
			if refOut[c] == fpOut[c] {
				continue
			}
			rx, fx := refOut[c], fpOut[c]
			if vars != nil {
				// A generalized-step divergence: substitute the actual
				// boundary state back in. If the sides still differ, it is a
				// real symbolic divergence at this stream position; if they
				// converge, the invariant was too weak to carry the proof —
				// refuse rather than report a divergence for an unreachable
				// carried state.
				memo := make(map[xid]xid)
				rx, fx = a.subst(rx, vars, memo), a.subst(fx, vars, memo)
				if rx == fx {
					res.Reason = fmt.Sprintf("inductive step fails at output %d col %d under generalized carried state; cannot certify\n  microcode: %s\n  fastpath:  %s",
						out, c, a.String(refOut[c]), a.String(fpOut[c]))
					return true
				}
			}
			w := findWitness(a, rx, fx, ref.inCount)
			if w == nil {
				// Symbolically distinct but no diverging input found: refuse
				// to certify either way. Sound (never claims equivalence),
				// honest (never reports a divergence it cannot demonstrate).
				res.Reason = fmt.Sprintf("output %d col %d: expressions differ but no diverging witness found (normalization gap?)\n  microcode: %s\n  fastpath:  %s",
					out, c, a.String(rx), a.String(fx))
				return true
			}
			res.Reason = fmt.Sprintf("output %d col %d diverges", out, c)
			res.Mism = &Mismatch{Output: out, Col: c, Ref: a.String(rx), FP: a.String(fx), Witness: w}
			return true
		}
		if a.Size() > maxNodes {
			res.Reason = fmt.Sprintf("expression arena exceeded %d nodes at output %d", maxNodes, out)
			return true
		}
		return false
	}

	// Base phase: walk both sides from the true initial state, verifying
	// every output, until the joint control state repeats. Control in both
	// machines is data-independent (the walks refuse everything else), so a
	// control repeat at distance p means control is periodic with period p
	// from there on.
	seen := make(map[string]int)
	period, out := 0, 0
	for ; out < maxOut; out++ {
		if step(out, nil) {
			return res
		}
		key := ref.ctlKey() + "\x00" + fp.ctlKey()
		if prev, ok := seen[key]; ok {
			period = out - prev
			break
		}
		seen[key] = out
	}
	if period == 0 {
		res.Reason = fmt.Sprintf("no joint control-state closure within %d outputs", maxOut)
		return res
	}

	// Inductive phase: the base phase proved outputs 0..out equal. For every
	// later output, generalize: replace the carried data of both sides with
	// fresh variables — one shared variable where the sides' expressions
	// agree at this boundary (the candidate invariant), separate variables
	// where they differ (e.g. registers legitimately diverged by dead-op
	// elision) — and run one full period. If every output pair matches and
	// the agreeing locations agree again at the end, the invariant is
	// inductive and covers all remaining outputs: expressions are built from
	// input atoms only positionally, so the proven period transfers to every
	// later period by uniform renaming. Locations that fail to re-agree drop
	// out of the candidate invariant and the period reruns (control is back
	// at the loop point), until the set is stable or provably not inductive.
	refAct, fpAct := ref.carried(), fp.carried()
	nloc := len(refAct)
	inv := make([]bool, nloc)
	for i := range inv {
		inv[i] = refAct[i] == fpAct[i]
	}
	startKey := ref.ctlKey() + "\x00" + fp.ctlKey()
	varIdx := uint32(0)
	for round := 0; ; round++ {
		if round > nloc {
			res.Reason = "inductive invariant refinement did not converge"
			return res
		}
		refG := make([]xid, nloc)
		fpG := make([]xid, nloc)
		vars := make(map[uint32]xid, 2*nloc)
		for i := 0; i < nloc; i++ {
			v := a.Var(varIdx)
			vars[varIdx] = refAct[i]
			varIdx++
			refG[i] = v
			if inv[i] {
				fpG[i] = v
			} else {
				fpG[i] = a.Var(varIdx)
				vars[varIdx] = fpAct[i]
				varIdx++
			}
		}
		ref.setCarried(refG)
		fp.setCarried(fpG)
		for i := 0; i < period; i++ {
			if step(out+1+i, vars) {
				return res
			}
		}
		if key := ref.ctlKey() + "\x00" + fp.ctlKey(); key != startKey {
			res.Reason = "control state failed to return to the loop point after one period"
			return res
		}
		refEnd, fpEnd := ref.carried(), fp.carried()
		stable := true
		for i := 0; i < nloc; i++ {
			if inv[i] && refEnd[i] != fpEnd[i] {
				inv[i] = false
				stable = false
			}
		}
		if stable {
			res.Proven = true
			return res
		}
	}
}
