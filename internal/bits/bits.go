// Package bits provides the word-level arithmetic substrate used throughout
// the COBRA simulator: rotations, modular addition/subtraction and
// multiplication at the widths the RCE elements support (2^8, 2^16, 2^32),
// GF(2^8) arithmetic for the F element, and byte packing helpers for the
// 128-bit data stream.
//
// Everything here is branch-free where practical; these functions sit on the
// innermost simulation loop (one call per enabled element per datapath
// cycle) and on the reference-cipher hot paths used as the software
// baseline.
package bits

import "math/bits"

// Width selects the modulus for the B and D elements. The COBRA B element
// supports addition/subtraction mod 2^8, 2^16 and 2^32 (applied lane-wise
// for the narrow widths); the D element supports multiplication mod 2^16
// and 2^32 and squaring mod 2^32.
type Width uint8

const (
	// W8 operates on four independent 8-bit lanes of the 32-bit word.
	W8 Width = iota
	// W16 operates on two independent 16-bit lanes of the 32-bit word.
	W16
	// W32 operates on the full 32-bit word.
	W32
)

// String returns the conventional name of the width ("mod 2^8", ...).
func (w Width) String() string {
	switch w {
	case W8:
		return "mod 2^8"
	case W16:
		return "mod 2^16"
	case W32:
		return "mod 2^32"
	}
	return "mod ?"
}

// RotL rotates x left by n (mod 32).
func RotL(x uint32, n uint) uint32 { return bits.RotateLeft32(x, int(n&31)) }

// RotR rotates x right by n (mod 32).
func RotR(x uint32, n uint) uint32 { return bits.RotateLeft32(x, -int(n&31)) }

// Shl shifts x left by n; n ≥ 32 yields 0 (matching a hardware barrel
// shifter with a saturating count decoder).
func Shl(x uint32, n uint) uint32 {
	if n >= 32 {
		return 0
	}
	return x << n
}

// Shr shifts x logically right by n; n ≥ 32 yields 0.
func Shr(x uint32, n uint) uint32 {
	if n >= 32 {
		return 0
	}
	return x >> n
}

// AddMod adds a and b lane-wise at width w. For W8 the four byte lanes wrap
// independently; for W16 the two half-word lanes wrap independently; for W32
// the full word wraps.
func AddMod(a, b uint32, w Width) uint32 {
	switch w {
	case W8:
		// SWAR addition: suppress carries across lane boundaries.
		const high = 0x80808080
		return ((a &^ high) + (b &^ high)) ^ ((a ^ b) & high)
	case W16:
		const high = 0x80008000
		return ((a &^ high) + (b &^ high)) ^ ((a ^ b) & high)
	default:
		return a + b
	}
}

// SubMod subtracts b from a lane-wise at width w.
func SubMod(a, b uint32, w Width) uint32 {
	switch w {
	case W8:
		var r uint32
		for i := 0; i < 4; i++ {
			sh := uint(8 * i)
			la := (a >> sh) & 0xff
			lb := (b >> sh) & 0xff
			r |= ((la - lb) & 0xff) << sh
		}
		return r
	case W16:
		lo := (a - b) & 0xffff
		hi := ((a >> 16) - (b >> 16)) & 0xffff
		return hi<<16 | lo
	default:
		return a - b
	}
}

// MulMod multiplies a and b at width w. W8 is not a supported multiplier
// width on the D element; it behaves as W16 here only to keep the function
// total — the ISA decoder never produces it.
func MulMod(a, b uint32, w Width) uint32 {
	switch w {
	case W16, W8:
		lo := (a & 0xffff) * (b & 0xffff) & 0xffff
		hi := ((a >> 16) * (b >> 16)) & 0xffff
		return hi<<16 | lo
	default:
		return a * b
	}
}

// SquareMod32 squares a mod 2^32 (the D element's dedicated squaring mode).
func SquareMod32(a uint32) uint32 { return a * a }

// GFMul multiplies a and b in GF(2^8) with the Rijndael reduction
// polynomial x^8 + x^4 + x^3 + x + 1 (0x11b). This is the primitive the F
// element's fixed-constant multipliers are built from.
func GFMul(a, b uint8) uint8 {
	var p uint8
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// GFMulWord applies GFMul lane-wise: each byte of x is multiplied by the
// corresponding byte of the constant vector c (c[0] multiplies the least
// significant byte).
func GFMulWord(x uint32, c [4]uint8) uint32 {
	var r uint32
	for i := 0; i < 4; i++ {
		sh := uint(8 * i)
		r |= uint32(GFMul(uint8(x>>sh), c[i])) << sh
	}
	return r
}

// GFMDSColumn multiplies the 4-byte column x (least significant byte =
// row 0) by the circulant MDS matrix whose first row is c. With
// c = {2,3,1,1} this is exactly the Rijndael MixColumns transform of one
// column. This is the F element's MDS mode.
func GFMDSColumn(x uint32, c [4]uint8) uint32 {
	var b [4]uint8
	for i := range b {
		b[i] = uint8(x >> (8 * uint(i)))
	}
	var r uint32
	for row := 0; row < 4; row++ {
		var acc uint8
		for col := 0; col < 4; col++ {
			acc ^= GFMul(b[col], c[(col-row+4)%4])
		}
		r |= uint32(acc) << (8 * uint(row))
	}
	return r
}

// GFInv returns the multiplicative inverse of a in GF(2^8) (0 maps to 0).
// Used to construct the Rijndael S-box from first principles in tests.
func GFInv(a uint8) uint8 {
	if a == 0 {
		return 0
	}
	// a^(2^8-2) by square-and-multiply.
	r := uint8(1)
	x := a
	for e := 254; e > 0; e >>= 1 {
		if e&1 == 1 {
			r = GFMul(r, x)
		}
		x = GFMul(x, x)
	}
	return r
}

// Load32LE assembles a little-endian 32-bit word from b[0:4].
func Load32LE(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Store32LE writes x into b[0:4] little-endian.
func Store32LE(b []byte, x uint32) {
	_ = b[3]
	b[0] = byte(x)
	b[1] = byte(x >> 8)
	b[2] = byte(x >> 16)
	b[3] = byte(x >> 24)
}

// Load32BE assembles a big-endian 32-bit word from b[0:4].
func Load32BE(b []byte) uint32 {
	_ = b[3]
	return uint32(b[3]) | uint32(b[2])<<8 | uint32(b[1])<<16 | uint32(b[0])<<24
}

// Store32BE writes x into b[0:4] big-endian.
func Store32BE(b []byte, x uint32) {
	_ = b[3]
	b[3] = byte(x)
	b[2] = byte(x >> 8)
	b[1] = byte(x >> 16)
	b[0] = byte(x >> 24)
}

// Block128 is the 128-bit COBRA data stream, partitioned into four 32-bit
// blocks. Block 0 holds bits 31..0 (the primary input of column 0), block 1
// bits 63..32, and so on, exactly as §3.1 of the paper defines.
type Block128 [4]uint32

// LoadBlock128 packs 16 bytes (little-endian within each 32-bit block,
// block 0 first) into a Block128.
func LoadBlock128(b []byte) Block128 {
	_ = b[15]
	return Block128{
		Load32LE(b[0:4]),
		Load32LE(b[4:8]),
		Load32LE(b[8:12]),
		Load32LE(b[12:16]),
	}
}

// StoreBlock128 unpacks the block into 16 bytes.
func (x Block128) StoreBlock128(b []byte) {
	_ = b[15]
	Store32LE(b[0:4], x[0])
	Store32LE(b[4:8], x[1])
	Store32LE(b[8:12], x[2])
	Store32LE(b[12:16], x[3])
}

// Byte returns byte i (0..15) of the 128-bit stream, byte 0 being the least
// significant byte of block 0. The byte shufflers permute at this
// granularity.
func (x Block128) Byte(i int) uint8 {
	return uint8(x[i>>2] >> (8 * uint(i&3)))
}

// SetByte returns a copy of x with byte i replaced by v.
func (x Block128) SetByte(i int, v uint8) Block128 {
	sh := 8 * uint(i&3)
	x[i>>2] = x[i>>2]&^(0xff<<sh) | uint32(v)<<sh
	return x
}

// XOR returns the bit-wise XOR of two 128-bit blocks (whitening support).
func (x Block128) XOR(y Block128) Block128 {
	return Block128{x[0] ^ y[0], x[1] ^ y[1], x[2] ^ y[2], x[3] ^ y[3]}
}

// Add32 returns the block-wise mod-2^32 sum of two 128-bit blocks
// (whitening in additive mode).
func (x Block128) Add32(y Block128) Block128 {
	return Block128{x[0] + y[0], x[1] + y[1], x[2] + y[2], x[3] + y[3]}
}
