package program

import (
	"cobra/internal/vet"
)

// Vet statically verifies the program's microcode against the geometry and
// instruction window it was built for, returning cobravet findings. Every
// builder in this package is lint-clean (regression-tested at every unroll
// depth and window size); a non-empty result on a hand-written or edited
// program points at the §3.4 conventions the change broke.
func (p *Program) Vet() []vet.Finding {
	return vet.Check(p.Instrs, vet.Config{Rows: p.Geometry.Rows, Window: p.Window})
}
