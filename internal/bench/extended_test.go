package bench

import "testing"

// TestMeasureAllExtendedVerifies runs the 64-bit-cipher sweep: every
// configuration must build, run, and reproduce its host cipher exactly,
// and within a cipher deeper unrolls must not lose throughput.
func TestMeasureAllExtendedVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("extended sweep is not short")
	}
	ms, err := MeasureAllExtended(benchKey, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(ExtendedConfigurations()) {
		t.Fatalf("measurements = %d", len(ms))
	}
	perAlg := map[string][]Measurement{}
	for _, m := range ms {
		if !m.Verified {
			t.Errorf("%s-%d: outputs failed verification", m.Alg, m.Rounds)
		}
		if m.CyclesPerBlock <= 0 || m.Mbps <= 0 {
			t.Errorf("%s-%d: implausible measurement %+v", m.Alg, m.Rounds, m)
		}
		perAlg[m.Alg] = append(perAlg[m.Alg], m)
		t.Logf("%s-%d: %.1f cycles/64-bit block, %.3f MHz, %.2f Mbps (%d rows)",
			m.Alg, m.Rounds, m.CyclesPerBlock, m.FreqMHz, m.Mbps, m.Rows)
	}
	for alg, rows := range perAlg {
		first, last := rows[0], rows[len(rows)-1]
		if len(rows) > 1 && last.Mbps <= first.Mbps {
			t.Errorf("%s: deepest unroll %.1f Mbps not above minimal %.1f",
				alg, last.Mbps, first.Mbps)
		}
	}
}

// TestExtendedDecryptConfigsBuild compiles every extended decryptor.
func TestExtendedDecryptConfigsBuild(t *testing.T) {
	for _, c := range ExtendedConfigurations() {
		if _, err := BuildExtendedDecrypt(c, benchKey); err != nil {
			t.Errorf("%s-dec-%d: %v", c.Alg, c.Rounds, err)
		}
	}
}

// TestExtendedRejectsUnknownAlg pins the error paths.
func TestExtendedRejectsUnknownAlg(t *testing.T) {
	bad := Config{"idea", 8}
	if _, err := BuildExtended(bad, benchKey); err == nil {
		t.Error("BuildExtended should reject an unknown algorithm")
	}
	if _, err := BuildExtendedDecrypt(bad, benchKey); err == nil {
		t.Error("BuildExtendedDecrypt should reject an unknown algorithm")
	}
	if _, err := extendedReference(bad, benchKey); err == nil {
		t.Error("extendedReference should reject an unknown algorithm")
	}
	if _, err := extendedPack("idea", nil); err == nil {
		t.Error("extendedPack should reject an unknown algorithm")
	}
	if _, err := extendedUnpack("idea", nil); err == nil {
		t.Error("extendedUnpack should reject an unknown algorithm")
	}
}
