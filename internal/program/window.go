package program

import (
	"fmt"

	"cobra/internal/cipher"
	"cobra/internal/datapath"
	"cobra/internal/isa"
)

// Instruction-window support (§3.4). With window size w, the datapath
// clock is F_DP = F_iRAM/(2w): w instructions execute per datapath cycle,
// so a pass that needs several reconfiguration instructions can complete
// them inside one (slower) cycle instead of burning overfull stall cycles
// at w = 1. "The programmer must determine the optimal number of
// instructions that must be executed within a datapath clock cycle by
// examining the number of overfull and underfull instruction cycles" — the
// window sweep in package bench performs exactly that analysis for the
// Serpent single-round configuration, whose two reconfigurations per pass
// (S-box page and key address) make it the paper's textbook overfull case.
//
// The ready flag resynchronizes the window (see sim), so alignment is
// relative to the idle point and identical for every block.

// winBuilder tracks the slot position within the instruction-window grid.
type winBuilder struct {
	*builder
	w   int
	pos int // slots since the idle-point resync
}

// emit appends instructions, advancing the slot position.
func (wb *winBuilder) emit(f func(*builder)) {
	n := len(wb.ins)
	f(wb.builder)
	wb.pos += len(wb.ins) - n
}

// padToBoundary fills with NOPs (underfull padding, §3.4) until the next
// instruction starts a fresh window.
func (wb *winBuilder) padToBoundary() {
	for wb.pos%wb.w != 0 {
		wb.nop()
		wb.pos++
	}
}

// tickAt emits padding so that the next instruction is the last slot of
// the current window, then emits it; the window's datapath cycle fires
// right after it executes.
func (wb *winBuilder) tickAt(f func(*builder)) {
	for wb.pos%wb.w != wb.w-1 {
		wb.nop()
		wb.pos++
	}
	wb.emit(f)
}

// BuildSerpentWindowed compiles the single-round Serpent configuration
// with instruction window w ≥ 2: the per-pass S-box page and key-address
// reconfigurations share one datapath cycle with the round computation
// instead of costing overfull stalls. w = 1 returns the standard build.
func BuildSerpentWindowed(key []byte, w int) (*Program, error) {
	if w == 1 {
		return BuildSerpent(key, 1)
	}
	if w < 1 || w > 16 {
		return nil, fmt.Errorf("program/serpent: window %d out of range", w)
	}
	ck, err := cipher.NewSerpentCOBRA(key)
	if err != nil {
		return nil, err
	}
	const rounds = cipher.SerpentRounds
	p := &Program{
		Name:        fmt.Sprintf("serpent-1-w%d", w),
		Cipher:      "serpent",
		HWRounds:    1,
		TotalRounds: rounds,
		Geometry:    datapath.BaseGeometry(),
		Window:      w,
	}
	b := &builder{}

	// Static setup (identical to the w=1 build): S-box pages, the round
	// rows with the linear transformation, the round keys.
	b.disout()
	var pages [8][16]uint8
	for pg := range pages {
		pages[pg] = cipher.SerpentSBoxes[pg]
	}
	for bank := 0; bank < 4; bank++ {
		b.loadS4Pages(isa.SliceAll(), bank, &pages)
	}
	b.serpentRoundRows(0, 0, true)
	// K32 is not stored: output whitening consumes it directly, and an eRAM
	// copy would be a dead store (the dataflow analysis flags one).
	for r := 0; r < rounds; r++ {
		kw := ck.RoundKeyWords(r)
		for c := 0; c < 4; c++ {
			b.eramw(c, 0, r, kw[c])
		}
	}
	k32 := ck.RoundKeyWords(32)
	b.inmux(isa.InFeedback)

	idle := b.mark()
	b.flag(isa.FlagReady, 0) // resynchronizes the window

	wb := &winBuilder{builder: b, w: w}
	pageER := func(r int) func(*builder) {
		return func(b *builder) {
			b.cfge(isa.SliceRow(0), isa.ElemC,
				isa.CCfg{Mode: isa.CS4x4, Page: uint8(r % 8)}.Encode())
			b.erRow(0, 0, r)
		}
	}

	// Prologue windows (array still frozen from the epilogue): protocol
	// flags, round-0 configuration, external input; the consume tick fires
	// at the end of the ENOUT window and computes round 0.
	wb.emit(func(b *builder) {
		b.flag(isa.FlagBusy, isa.FlagReady)
	})
	wb.emit(pageER(0))
	wb.emit(func(b *builder) { b.inmux(isa.InExternal) })
	wb.tickAt(func(b *builder) { b.enout() })

	// Pass 1 needs three reconfigurations (input mux back to feedback plus
	// page/key); freeze while they land, then tick round 1.
	wb.emit(func(b *builder) {
		b.disout()
		b.inmux(isa.InFeedback)
	})
	wb.emit(pageER(1))
	wb.tickAt(func(b *builder) { b.enout() })

	// Steady passes: the page and key reconfigurations fit the window
	// alongside the round's datapath cycle — no overfull stalls.
	for r := 2; r < rounds-1; r++ {
		wb.emit(pageER(r))
		wb.padToBoundary()
	}

	// Final round: the linear transformation comes off, K32 goes onto the
	// output whitening, data-valid marks the collecting cycle.
	wb.emit(func(b *builder) {
		b.disout()
		b.serpentClearLTRows(1)
		for c := 0; c < 4; c++ {
			b.white(c, isa.WhiteXor, false, k32[c])
		}
		b.flag(isa.FlagDValid, 0)
	})
	wb.emit(pageER(31))
	wb.tickAt(func(b *builder) { b.enout() })

	// Epilogue: freeze before the next window's tick, restore, loop.
	wb.emit(func(b *builder) {
		b.disout()
		b.flag(0, isa.FlagDValid|isa.FlagBusy)
		b.serpentLTRows(1)
		for c := 0; c < 4; c++ {
			b.whiteOff(c)
		}
		b.jmp(idle)
	})

	p.Instrs = b.ins
	return p, nil
}
