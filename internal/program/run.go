package program

import (
	"fmt"

	"cobra/internal/bits"
	"cobra/internal/sim"
)

// NewMachine builds a machine matching the program's geometry and window.
func NewMachine(p *Program) (*sim.Machine, error) {
	return sim.New(p.Geometry, p.Window)
}

// Load installs the program and runs the setup phase up to the idle point
// (ready flag raised, §3.4), then clears the performance counters so
// subsequent measurement covers bulk encryption only.
func Load(m *sim.Machine, p *Program) error {
	m.Go = false
	if err := m.LoadProgram(p.Words()); err != nil {
		return err
	}
	reason, err := m.Run(sim.Limits{})
	if err != nil {
		return err
	}
	if reason != sim.StopWaitGo {
		return fmt.Errorf("program: setup stopped with %v, want idle at ready", reason)
	}
	m.ResetStats()
	m.MarkClean()
	return nil
}

// Encrypt runs blocks through a loaded machine and returns the ciphertext
// blocks together with the performance counters for the run. For streaming
// (full-unroll, non-feedback) programs it appends pipeline-flush blocks so
// the final outputs drain, mirroring §4.1's accounting of "cycles required
// to output the blocks in the pipeline".
func Encrypt(m *sim.Machine, p *Program, blocks []bits.Block128) ([]bits.Block128, sim.Stats, error) {
	if len(blocks) == 0 {
		return nil, sim.Stats{}, nil
	}
	out := make([]bits.Block128, len(blocks))
	stats, err := EncryptInto(m, p, out, blocks)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	return out, stats, nil
}

// EncryptInto is Encrypt writing the ciphertext into dst, which must hold
// at least len(blocks) elements; dst may alias blocks (inputs are copied to
// the machine's queue before any output is written back). It exists so
// block-at-a-time callers — the CBC chaining loop, the farm's CTR keystream
// path — can reuse buffers across calls instead of allocating per block.
//
// The returned stats cover exactly this call: a snapshot delta for
// iterative programs, and the full post-reload counters for streaming
// programs (the reload zeroes them), so repeated calls on one machine
// measure independently in both cases.
func EncryptInto(m *sim.Machine, p *Program, dst, blocks []bits.Block128) (sim.Stats, error) {
	if len(blocks) == 0 {
		return sim.Stats{}, nil
	}
	if len(dst) < len(blocks) {
		return sim.Stats{}, fmt.Errorf("program: dst holds %d blocks, need %d", len(dst), len(blocks))
	}
	if p.Streaming && m.Dirty() {
		// A streaming program never returns to the idle point, so a used
		// machine still holds in-flight flush blocks whose outputs would be
		// misattributed to this call. Reload for a clean pipeline (the
		// setup phase re-runs; counters restart at zero).
		if err := Load(m, p); err != nil {
			return sim.Stats{}, err
		}
	}
	start := m.Stats()
	m.ClearOutputs()
	m.PushInput(blocks...)
	if p.Streaming {
		var flush bits.Block128
		for i := 0; i < p.PipelineDepth+1; i++ {
			m.PushInput(flush)
		}
	}
	m.Go = true
	reason, err := m.Run(sim.Limits{StopAfterOutputs: len(blocks)})
	if err != nil {
		return sim.Stats{}, err
	}
	if reason != sim.StopOutputs {
		return sim.Stats{}, fmt.Errorf("program: run stopped with %v before %d outputs (got %d)",
			reason, len(blocks), len(m.Outputs()))
	}
	copy(dst, m.Outputs()[:len(blocks)])
	return m.Stats().Delta(start), nil
}

// EncryptBytes is Encrypt for byte-oriented callers: src must be a multiple
// of 16 bytes (ECB over 128-bit blocks).
func EncryptBytes(m *sim.Machine, p *Program, src []byte) ([]byte, sim.Stats, error) {
	dst := make([]byte, len(src))
	stats, err := EncryptBytesInto(m, p, dst, src)
	if err != nil {
		return nil, stats, err
	}
	return dst, stats, nil
}

// EncryptBytesInto is EncryptBytes writing into dst, which must hold at
// least len(src) bytes; dst may alias src.
func EncryptBytesInto(m *sim.Machine, p *Program, dst, src []byte) (sim.Stats, error) {
	if len(src)%16 != 0 {
		return sim.Stats{}, fmt.Errorf("program: input length %d is not a multiple of the block size", len(src))
	}
	if len(dst) < len(src) {
		return sim.Stats{}, fmt.Errorf("program: dst is %d bytes, need %d", len(dst), len(src))
	}
	blocks := make([]bits.Block128, len(src)/16)
	for i := range blocks {
		blocks[i] = bits.LoadBlock128(src[16*i:])
	}
	stats, err := EncryptInto(m, p, blocks, blocks)
	if err != nil {
		return stats, err
	}
	for i, blk := range blocks {
		blk.StoreBlock128(dst[16*i:])
	}
	return stats, nil
}
