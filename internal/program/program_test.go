package program

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"cobra/internal/cipher"
	"cobra/internal/sim"
)

// refEncryptECB encrypts src with a reference cipher block-by-block.
func refEncryptECB(t *testing.T, c cipher.Block, src []byte) []byte {
	t.Helper()
	dst := make([]byte, len(src))
	for i := 0; i < len(src); i += c.BlockSize() {
		c.Encrypt(dst[i:], src[i:])
	}
	return dst
}

// cobraEncryptECB builds, loads and runs a program over src.
func cobraEncryptECB(t *testing.T, p *Program, src []byte) ([]byte, sim.Stats) {
	t.Helper()
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(m, p); err != nil {
		t.Fatalf("%s: load: %v", p.Name, err)
	}
	out, stats, err := EncryptBytes(m, p, src)
	if err != nil {
		t.Fatalf("%s: encrypt: %v", p.Name, err)
	}
	return out, stats
}

var testKey = func() []byte {
	k, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f")
	return k
}()

var testPlain = func() []byte {
	p, _ := hex.DecodeString("00112233445566778899aabbccddeeff" +
		"0f0e0d0c0b0a09080706050403020100" +
		"deadbeefcafebabe0123456789abcdef" +
		"00000000000000000000000000000000")
	return p
}()

// --- RC6 ----------------------------------------------------------------------

func TestRC6OnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewRC6(testKey)
	if err != nil {
		t.Fatal(err)
	}
	want := refEncryptECB(t, ref, testPlain)
	for _, hw := range []int{1, 2, 4, 5, 10, 20} {
		p, err := BuildRC6(testKey, hw, cipher.RC6Rounds)
		if err != nil {
			t.Fatalf("rc6-%d: %v", hw, err)
		}
		got, stats := cobraEncryptECB(t, p, testPlain)
		if !bytes.Equal(got, want) {
			t.Errorf("rc6-%d: ciphertext mismatch\n got %x\nwant %x", hw, got, want)
		}
		if stats.Cycles == 0 || stats.BlocksOut != len(testPlain)/16 {
			t.Errorf("rc6-%d: implausible stats %+v", hw, stats)
		}
		t.Logf("rc6-%d: %d cycles for %d blocks (%.1f/blk)",
			hw, stats.Cycles, stats.BlocksOut, float64(stats.Cycles)/float64(stats.BlocksOut))
	}
}

func TestRC6OnCOBRARandomized(t *testing.T) {
	f := func(key [16]byte, pt [16]byte) bool {
		ref, err := cipher.NewRC6(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 16)
		ref.Encrypt(want, pt[:])
		p, err := BuildRC6(key[:], 2, cipher.RC6Rounds)
		if err != nil {
			return false
		}
		m, err := NewMachine(p)
		if err != nil {
			return false
		}
		if err := Load(m, p); err != nil {
			return false
		}
		got, _, err := EncryptBytes(m, p, pt[:])
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRC6UnrollRejectsBadDepth(t *testing.T) {
	if _, err := BuildRC6(testKey, 3, cipher.RC6Rounds); err == nil {
		t.Error("expected error: 3 does not divide 20")
	}
	if _, err := BuildRC6(testKey, 0, cipher.RC6Rounds); err == nil {
		t.Error("expected error for depth 0")
	}
	if _, err := BuildRC6(make([]byte, 5), 2, cipher.RC6Rounds); err == nil {
		t.Error("expected key size error")
	}
}

// --- Rijndael -------------------------------------------------------------------

func TestRijndaelOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewRijndael(testKey)
	if err != nil {
		t.Fatal(err)
	}
	want := refEncryptECB(t, ref, testPlain)
	for _, hw := range []int{1, 2, 5, 10} {
		p, err := BuildRijndael(testKey, hw)
		if err != nil {
			t.Fatalf("rijndael-%d: %v", hw, err)
		}
		got, stats := cobraEncryptECB(t, p, testPlain)
		if !bytes.Equal(got, want) {
			t.Errorf("rijndael-%d: ciphertext mismatch\n got %x\nwant %x", hw, got, want)
		}
		t.Logf("rijndael-%d: %d cycles for %d blocks (%.1f/blk)",
			hw, stats.Cycles, stats.BlocksOut, float64(stats.Cycles)/float64(stats.BlocksOut))
	}
}

func TestRijndaelOnCOBRAMatchesFIPSVector(t *testing.T) {
	// The COBRA datapath must reproduce the FIPS-197 example end to end.
	pt, _ := hex.DecodeString("00112233445566778899aabbccddeeff")
	want, _ := hex.DecodeString("69c4e0d86a7b0430d8cdb78070b4c55a")
	p, err := BuildRijndael(testKey, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := cobraEncryptECB(t, p, pt)
	if !bytes.Equal(got, want) {
		t.Errorf("got %x, want %x", got, want)
	}
}

// --- Serpent --------------------------------------------------------------------

func TestSerpentOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewSerpentCOBRA(testKey)
	if err != nil {
		t.Fatal(err)
	}
	want := refEncryptECB(t, ref, testPlain)
	for _, hw := range []int{1, 2, 4, 8, 16, 32} {
		p, err := BuildSerpent(testKey, hw)
		if err != nil {
			t.Fatalf("serpent-%d: %v", hw, err)
		}
		got, stats := cobraEncryptECB(t, p, testPlain)
		if !bytes.Equal(got, want) {
			t.Errorf("serpent-%d: ciphertext mismatch\n got %x\nwant %x", hw, got, want)
		}
		t.Logf("serpent-%d: %d cycles for %d blocks (%.1f/blk)",
			hw, stats.Cycles, stats.BlocksOut, float64(stats.Cycles)/float64(stats.BlocksOut))
	}
}

func TestSerpentOnCOBRARandomized(t *testing.T) {
	f := func(key [16]byte, pt [16]byte) bool {
		ref, err := cipher.NewSerpentCOBRA(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 16)
		ref.Encrypt(want, pt[:])
		p, err := BuildSerpent(key[:], 1)
		if err != nil {
			return false
		}
		m, err := NewMachine(p)
		if err != nil {
			return false
		}
		if err := Load(m, p); err != nil {
			return false
		}
		got, _, err := EncryptBytes(m, p, pt[:])
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// --- Cross-cutting ----------------------------------------------------------------

func TestCyclesDecreaseWithUnrolling(t *testing.T) {
	// Table 3's central trend: deeper unrolling costs fewer cycles/block.
	perBlock := func(p *Program) float64 {
		t.Helper()
		_, stats := cobraEncryptECB(t, p, testPlain)
		return float64(stats.Cycles) / float64(stats.BlocksOut)
	}
	var last float64 = 1 << 30
	for _, hw := range []int{1, 2, 4, 10, 20} {
		p, err := BuildRC6(testKey, hw, cipher.RC6Rounds)
		if err != nil {
			t.Fatal(err)
		}
		cpb := perBlock(p)
		if cpb >= last {
			t.Errorf("rc6-%d: %.1f cycles/block not below previous %.1f", hw, cpb, last)
		}
		last = cpb
	}
}

func TestProgramsFitIRAM(t *testing.T) {
	builds := []func() (*Program, error){
		func() (*Program, error) { return BuildRC6(testKey, 20, cipher.RC6Rounds) },
		func() (*Program, error) { return BuildRijndael(testKey, 10) },
		func() (*Program, error) { return BuildSerpent(testKey, 32) },
		func() (*Program, error) { return BuildSerpent(testKey, 1) },
	}
	for _, mk := range builds {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Instrs) > 4096 {
			t.Errorf("%s: %d instructions exceed the iRAM", p.Name, len(p.Instrs))
		}
		t.Logf("%s: %d instructions, %d rows", p.Name, len(p.Instrs), p.Geometry.Rows)
	}
}

func TestEncryptBytesRejectsPartialBlocks(t *testing.T) {
	p, err := BuildRijndael(testKey, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(m, p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := EncryptBytes(m, p, make([]byte, 15)); err == nil {
		t.Error("expected error for partial block")
	}
}

func TestEncryptEmptyInput(t *testing.T) {
	p, err := BuildRijndael(testKey, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(m, p); err != nil {
		t.Fatal(err)
	}
	out, _, err := Encrypt(m, p, nil)
	if err != nil || out != nil {
		t.Errorf("empty input: out=%v err=%v", out, err)
	}
}

func TestReloadBetweenKeys(t *testing.T) {
	// Algorithm agility: the same machine geometry reprograms for a new
	// key (and a different cipher with matching geometry).
	key2 := bytes.Repeat([]byte{0x42}, 16)
	p1, err := BuildRC6(testKey, 2, cipher.RC6Rounds)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildRijndael(key2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(p1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(m, p1); err != nil {
		t.Fatal(err)
	}
	pt := testPlain[:16]
	got1, _, err := EncryptBytes(m, p1, pt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(m, p2); err != nil {
		t.Fatal(err)
	}
	got2, _, err := EncryptBytes(m, p2, pt)
	if err != nil {
		t.Fatal(err)
	}
	ref1, _ := cipher.NewRC6(testKey)
	ref2, _ := cipher.NewRijndael(key2)
	want1 := refEncryptECB(t, ref1, pt)
	want2 := refEncryptECB(t, ref2, pt)
	if !bytes.Equal(got1, want1) || !bytes.Equal(got2, want2) {
		t.Error("reprogrammed machine produced wrong ciphertext")
	}
}

// TestStreamingMachineReuse is the regression test for the in-flight-flush
// bug: repeated Encrypt calls on a streaming machine must each produce the
// correct ciphertext (the machine reloads to a clean pipeline).
func TestStreamingMachineReuse(t *testing.T) {
	ref, err := cipher.NewRijndael(testKey)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildRijndael(testKey, 10)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(m, p); err != nil {
		t.Fatal(err)
	}
	for call := 0; call < 3; call++ {
		pt := bytes.Repeat([]byte{byte(call + 1)}, 32)
		got, _, err := EncryptBytes(m, p, pt)
		if err != nil {
			t.Fatal(err)
		}
		want := refEncryptECB(t, ref, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("call %d: streaming reuse produced wrong ciphertext", call)
		}
	}
}

// TestIterativeMachineReuseNoReload checks the cheap path: iterative
// programs return to the idle point, so repeated calls need no reload and
// counters accumulate.
func TestIterativeMachineReuseNoReload(t *testing.T) {
	p, err := BuildRijndael(testKey, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(m, p); err != nil {
		t.Fatal(err)
	}
	pt := bytes.Repeat([]byte{7}, 16)
	if _, _, err := EncryptBytes(m, p, pt); err != nil {
		t.Fatal(err)
	}
	c1 := m.Stats().Cycles
	if _, _, err := EncryptBytes(m, p, pt); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Cycles <= c1 {
		t.Error("iterative counters should accumulate across calls")
	}
}
