package program

import "cobra/internal/isa"

// This file factors the two §3.4 control-flow skeletons shared by every
// cipher mapping:
//
//   - streamingFlow: non-feedback pipelined operation for full-length
//     unrolls — consume one block per cycle, raise data-valid after the
//     pipeline fill, loop.
//   - iterativeFlow: feedback-mode operation for partial unrolls — per
//     block, `passes` passes of `ticks` datapath cycles each, with
//     per-pass reconfiguration executed in overfull (DISOUT) windows and
//     the ready/busy/data-valid protocol around it.
//
// Cipher builders supply hooks with the pass-specific configuration: key
// address walks, whitening toggles, first/last-round special handling.

// iterHooks are the per-pass configuration callbacks; nil hooks are
// skipped.
type iterHooks struct {
	// FirstPass runs in pass 0's overfull window (pre-whitening on, etc.);
	// the skeleton switches the input multiplexor to external right after,
	// so pass 0's first tick consumes the block.
	FirstPass func(*builder)
	// SecondPass runs in pass 1's overfull window (pre-whitening off).
	SecondPass func(*builder)
	// LastPass runs in the final pass's overfull window (post-whitening,
	// final-round element toggles).
	LastPass func(*builder)
	// EveryPass runs in every pass's overfull window (key address walks).
	EveryPass func(*builder, int)
	// Epilogue runs in the post-block overfull window (restore toggled
	// configuration, whitening off).
	Epilogue func(*builder)
}

// iterativeFlow emits the feedback-mode per-block control flow. ticks is
// the number of datapath cycles one pass takes (pipeline stages + final
// combinational segment); passes × hooks must cover every cipher round.
func (b *builder) iterativeFlow(ticks, passes int, h iterHooks) {
	b.inmux(isa.InFeedback)

	idle := b.mark()
	b.flag(isa.FlagReady, 0)
	b.flag(isa.FlagBusy, isa.FlagReady)

	for pass := 0; pass < passes; pass++ {
		b.disout()
		if pass == 0 {
			if h.FirstPass != nil {
				h.FirstPass(b)
			}
			b.inmux(isa.InExternal)
		}
		if pass == 1 {
			if h.SecondPass != nil {
				h.SecondPass(b)
			}
			if ticks == 1 {
				// No intra-pass slot carried the switch back to feedback.
				b.inmux(isa.InFeedback)
			}
		}
		last := pass == passes-1
		if last {
			if h.LastPass != nil {
				h.LastPass(b)
			}
			if ticks == 1 {
				b.flag(isa.FlagDValid, 0)
			}
		}
		if h.EveryPass != nil {
			h.EveryPass(b, pass)
		}
		b.enout() // tick: stage 0 (consumes the block on pass 0)
		intra := ticks - 1
		for i := 0; i < intra; i++ {
			switch {
			case pass == 0 && i == 0:
				b.inmux(isa.InFeedback)
			case last && i == intra-1:
				b.flag(isa.FlagDValid, 0)
			default:
				b.nop()
			}
		}
	}

	b.disout()
	b.flag(0, isa.FlagDValid|isa.FlagBusy)
	if h.Epilogue != nil {
		h.Epilogue(b)
	}
	b.jmp(idle)
}

// streamingFlow emits the non-feedback pipelined control flow for a
// pipeline of the given depth. All static configuration (whitening, key
// addresses, registers) must already be emitted.
func (b *builder) streamingFlow(depth int) {
	b.inmux(isa.InExternal)
	b.flag(isa.FlagReady, 0)
	b.flag(isa.FlagBusy, isa.FlagReady)
	b.enout() // first consume
	for i := 0; i < depth-1; i++ {
		b.nop() // pipeline fill
	}
	b.flag(isa.FlagDValid, 0)
	loop := b.mark()
	b.nop()
	b.jmp(loop)
}
