package farm

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cobra/internal/cipher"
	"cobra/internal/core"
	"cobra/internal/sim"
)

var key = []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

// refCTR is the host-reference counter-mode oracle.
func refCTR(t *testing.T, blk cipher.Block, iv, src []byte) []byte {
	t.Helper()
	dst := make([]byte, len(src))
	var c, ks [16]byte
	copy(c[:], iv)
	for off := 0; off < len(src); off += 16 {
		blk.Encrypt(ks[:], c[:])
		for i := 15; i >= 0; i-- {
			c[i]++
			if c[i] != 0 {
				break
			}
		}
		n := len(src) - off
		if n > 16 {
			n = 16
		}
		for j := 0; j < n; j++ {
			dst[off+j] = src[off+j] ^ ks[j]
		}
	}
	return dst
}

func reference(t *testing.T, alg core.Algorithm) cipher.Block {
	t.Helper()
	var blk cipher.Block
	var err error
	switch alg {
	case core.RC6:
		blk, err = cipher.NewRC6(key)
	case core.Rijndael:
		blk, err = cipher.NewRijndael(key)
	case core.Serpent:
		blk, err = cipher.NewSerpentCOBRA(key)
	}
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

func testMessage(n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i*31 + i>>8)
	}
	return msg
}

// TestFarmCTRMatchesSingleDevice pins the sharding: the farm's CTR output
// must be byte-identical to one device's, for messages that span several
// shards and end on a partial block.
func TestFarmCTRMatchesSingleDevice(t *testing.T) {
	for _, alg := range []core.Algorithm{core.RC6, core.Rijndael, core.Serpent} {
		f, err := New(alg, key, core.Config{}, 4)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		d, err := core.Configure(alg, key, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		iv := bytes.Repeat([]byte{0xf0}, 16)
		for _, n := range []int{16, 16 * 7, 16*20 + 5} {
			msg := testMessage(n)
			got, err := f.EncryptCTR(context.Background(), iv, msg)
			if err != nil {
				t.Fatalf("%s n=%d: %v", alg, n, err)
			}
			want, err := d.EncryptCTR(context.Background(), iv, msg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s n=%d: farm CTR differs from single device", alg, n)
			}
			if ref := refCTR(t, reference(t, alg), iv, msg); !bytes.Equal(got, ref) {
				t.Errorf("%s n=%d: farm CTR differs from host reference", alg, n)
			}
		}
		f.Close()
	}
}

// TestFarmCTRCrossesShardBoundaryCounters uses an iv close to a byte
// carry so shard-start counters derived via AddCounter exercise the carry
// chain.
func TestFarmCTRCrossesShardBoundaryCounters(t *testing.T) {
	f, err := New(core.Rijndael, key, core.Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	iv := bytes.Repeat([]byte{0xff}, 16) // wraps to zero after one block
	msg := testMessage(16 * 12)
	got, err := f.EncryptCTR(context.Background(), iv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if want := refCTR(t, reference(t, core.Rijndael), iv, msg); !bytes.Equal(got, want) {
		t.Error("farm CTR differs from host reference across counter wraparound")
	}
	back, err := f.DecryptCTR(context.Background(), iv, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Error("DecryptCTR(EncryptCTR(x)) != x")
	}
}

func TestFarmECBMatchesSingleDevice(t *testing.T) {
	f, err := New(core.Rijndael, key, core.Config{Unroll: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := core.Configure(core.Rijndael, key, core.Config{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	msg := testMessage(16 * 13)
	got, err := f.EncryptECB(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.EncryptECB(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("farm ECB differs from single device")
	}
	if _, err := f.EncryptECB(context.Background(), msg[:17]); err == nil {
		t.Error("ragged ECB input accepted")
	}
}

func TestFarmValidation(t *testing.T) {
	if _, err := New(core.Rijndael, key, core.Config{}, 0); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := New(core.Rijndael, key[:3], core.Config{}, 1); err == nil {
		t.Error("bad key accepted")
	}
	f, err := New(core.Rijndael, key, core.Config{Unroll: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.EncryptCTR(context.Background(), []byte{1}, make([]byte, 16)); err == nil {
		t.Error("short iv accepted")
	}
	if out, err := f.EncryptCTR(context.Background(), make([]byte, 16), nil); err != nil || len(out) != 0 {
		t.Errorf("empty src: out=%v err=%v", out, err)
	}
}

func TestFarmContextCancellation(t *testing.T) {
	f, err := New(core.Rijndael, key, core.Config{Unroll: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.EncryptCTR(ctx, make([]byte, 16), testMessage(16*64)); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled context: err = %v, want context.Canceled", err)
	}
	// An expired deadline behaves the same way.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	if _, err := f.EncryptCTR(dctx, make([]byte, 16), testMessage(16*64)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
	// The farm stays usable after cancellations.
	if _, err := f.EncryptCTR(context.Background(), make([]byte, 16), testMessage(32)); err != nil {
		t.Errorf("farm unusable after cancellation: %v", err)
	}
}

func TestFarmClose(t *testing.T) {
	f, err := New(core.Rijndael, key, core.Config{Unroll: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal("Close is not idempotent:", err)
	}
	if _, err := f.EncryptCTR(context.Background(), make([]byte, 16), make([]byte, 16)); !errors.Is(err, ErrClosed) {
		t.Errorf("encrypt after close: err = %v, want ErrClosed", err)
	}
}

func TestFarmReportAggregation(t *testing.T) {
	const workers = 2
	f, err := New(core.Rijndael, key, core.Config{}, workers)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const blocks = 64
	if _, err := f.EncryptCTR(context.Background(), make([]byte, 16), testMessage(16*blocks)); err != nil {
		t.Fatal(err)
	}
	r := f.Report()
	if r.Workers != workers || len(r.PerWorker) != workers {
		t.Fatalf("report covers %d/%d workers, want %d", r.Workers, len(r.PerWorker), workers)
	}
	if r.Stats.BlocksOut != blocks {
		t.Errorf("Total.BlocksOut = %d, want %d", r.Stats.BlocksOut, blocks)
	}
	jobs := 0
	for _, w := range r.PerWorker {
		jobs += w.Jobs
		if w.Stats.Cycles > r.WallCycles {
			t.Errorf("WallCycles %d below worker cycles %d", r.WallCycles, w.Stats.Cycles)
		}
	}
	if jobs != workers { // 64 blocks over 2 workers -> 2 shards
		t.Errorf("total jobs = %d, want %d", jobs, workers)
	}
	if r.DatapathMHz <= 0 || r.EffectiveMbps <= 0 || r.CyclesPerBlock <= 0 {
		t.Errorf("degenerate report: %+v", r)
	}
	f.ResetStats()
	r = f.Report()
	if r.Stats != (Report{}.Stats) || r.WallCycles != 0 {
		t.Errorf("ResetStats left counters: %+v", r.Stats)
	}
}

// TestFarmZeroLengthMessage pins the zero-block edge: an empty message is
// a no-op that dispatches no jobs, and the report's derived rates stay
// zero instead of dividing by zero.
func TestFarmZeroLengthMessage(t *testing.T) {
	f, err := New(core.Rijndael, key, core.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out, err := f.EncryptCTR(context.Background(), make([]byte, 16), nil)
	if err != nil {
		t.Fatalf("empty message: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty message produced %d bytes", len(out))
	}
	r := f.Report()
	if r.Stats != (Report{}.Stats) || r.WallCycles != 0 {
		t.Errorf("zero-block job moved counters: %+v", r.Stats)
	}
	if r.CyclesPerBlock != 0 || r.EffectiveMbps != 0 {
		t.Errorf("zero-block rates not zero: cpb=%v mbps=%v", r.CyclesPerBlock, r.EffectiveMbps)
	}
	for _, w := range r.PerWorker {
		if w.Jobs != 0 {
			t.Errorf("zero-length message dispatched a job: %+v", r.PerWorker)
		}
	}
}

// TestFarmPartialFinalBlockReport pins the partial-block edge: a message
// ending mid-block still counts the final keystream block, the ciphertext
// matches the host oracle, and the per-worker counters sum to the total.
func TestFarmPartialFinalBlockReport(t *testing.T) {
	f, err := New(core.Rijndael, key, core.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	iv := make([]byte, 16)
	msg := testMessage(16*2 + 8) // two full blocks and half a final one
	out, err := f.EncryptCTR(context.Background(), iv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if want := refCTR(t, reference(t, core.Rijndael), iv, msg); !bytes.Equal(out, want) {
		t.Fatal("partial-final-block ciphertext mismatch")
	}
	r := f.Report()
	if r.Stats.BlocksOut != 3 {
		t.Errorf("Total.BlocksOut = %d, want 3 (partial block costs a full keystream block)", r.Stats.BlocksOut)
	}
	var sum sim.Stats
	for _, w := range r.PerWorker {
		sum.Add(w.Stats)
	}
	if sum != r.Stats {
		t.Errorf("per-worker sum %+v != total %+v", sum, r.Stats)
	}
	if r.CyclesPerBlock <= 0 || r.EffectiveMbps <= 0 {
		t.Errorf("degenerate rates: %+v", r)
	}
}

// TestFarmScalingMonotonic checks the acceptance criterion directly: the
// simulated aggregate throughput must rise monotonically from 1 to 4
// workers (sharding shrinks the busiest worker's cycle count).
func TestFarmScalingMonotonic(t *testing.T) {
	msg := testMessage(16 * 256)
	iv := make([]byte, 16)
	prev := 0.0
	for _, workers := range []int{1, 2, 4} {
		f, err := New(core.Rijndael, key, core.Config{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.EncryptCTR(context.Background(), iv, msg); err != nil {
			t.Fatal(err)
		}
		mbps := f.Report().EffectiveMbps
		f.Close()
		if mbps <= prev {
			t.Errorf("workers=%d: EffectiveMbps %.1f did not improve on %.1f", workers, mbps, prev)
		}
		prev = mbps
	}
}

func TestFarmQueueSignals(t *testing.T) {
	const workers = 3
	f, err := New(core.Rijndael, key, core.Config{Unroll: 1}, workers)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f.QueueCapacity(), workers*workerQueueDepth; got != want {
		t.Fatalf("QueueCapacity = %d, want %d", got, want)
	}
	if d := f.QueueDepth(); d != 0 {
		t.Fatalf("idle QueueDepth = %d, want 0", d)
	}
	// Stall every worker in a fault hook, then dispatch enough shards
	// (more than workers*(1+queue depth)) that some must sit in queues.
	release := make(chan struct{})
	var once sync.Once
	unstall := func() { once.Do(func() { close(release) }) }
	defer func() {
		unstall()
		f.Close()
	}()
	for _, w := range f.pool.workers {
		w.fault = func(j *job) error { <-release; return nil }
	}
	done := make(chan error, 1)
	go func() {
		const shards = workers*(workerQueueDepth+1) + 2
		_, err := f.EncryptCTR(context.Background(), make([]byte, 16),
			testMessage(16*shards*DefaultShardBlocks))
		done <- err
	}()
	deadline := time.After(10 * time.Second)
	for f.QueueDepth() == 0 {
		select {
		case <-deadline:
			t.Fatal("QueueDepth never rose while workers were stalled")
		case <-time.After(time.Millisecond):
		}
	}
	unstall()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if d := f.QueueDepth(); d != 0 {
		t.Fatalf("drained QueueDepth = %d, want 0", d)
	}
	if !f.UsesFastpath() {
		t.Fatal("UsesFastpath = false for a compilable configuration")
	}
}
