// Command cobra-lint runs the repository's Go-source analyzer suite
// (package lint): stdlib-only syntactic analyzers in the go/analysis
// multichecker shape.
//
// Usage:
//
//	cobra-lint ./...          # lint the whole tree below the current dir
//	cobra-lint internal/farm  # lint one directory
//	cobra-lint file.go        # lint one file
//
// Analyzers: deprecated (no new callers of the deprecated program.Encrypt*
// wrappers), hotpath (no fmt or allocation-prone calls inside
// //cobra:hotpath functions). Like cobra-vet, cobra-lint is full-report:
// every requested file is checked and every finding printed before the
// exit status (1 on findings, 2 on usage) is decided.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cobra/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool behind an exit code, testable without a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cobra-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: cobra-lint <package-dir|./...|file.go>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	dirty := false
	report := func(findings []lint.Finding, err error) {
		if err != nil {
			dirty = true
			fmt.Fprintln(stderr, "cobra-lint:", err)
			return
		}
		for _, f := range findings {
			dirty = true
			fmt.Fprintln(stdout, f)
		}
	}

	for _, arg := range fs.Args() {
		switch {
		case strings.HasSuffix(arg, "/..."):
			report(lint.CheckDir(strings.TrimSuffix(arg, "/..."), os.ReadFile))
		case strings.HasSuffix(arg, ".go"):
			src, err := os.ReadFile(arg)
			if err != nil {
				report(nil, err)
				continue
			}
			report(lint.CheckSource(arg, src))
		default:
			report(lint.CheckDir(arg, os.ReadFile))
		}
	}

	if dirty {
		return 1
	}
	return 0
}
