package farm

// The -race regression for the farm's concurrency contract: sim.Machine
// and core.Device are not safe for concurrent use, so the farm must never
// let two goroutines touch one device. These tests hammer a small pool
// from many caller goroutines — with interleaved Report snapshots and a
// racing Close — and every ciphertext is still checked against the host
// reference. Run with `go test -race ./internal/farm/...`: if a device
// (and hence its machine's queues and counters) were ever shared, the race
// detector fires on the unsynchronized state.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"cobra/internal/core"
)

func TestFarmNeverSharesDevicesBetweenGoroutines(t *testing.T) {
	f, err := New(core.Rijndael, key, core.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ref := reference(t, core.Rijndael)
	const callers = 8
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			iv := bytes.Repeat([]byte{byte(g)}, 16)
			for i := 0; i < 4; i++ {
				msg := testMessage(16*32 + g) // partial tails too
				got, err := f.EncryptCTR(context.Background(), iv, msg)
				if err != nil {
					errc <- err
					return
				}
				if want := refCTR(t, ref, iv, msg); !bytes.Equal(got, want) {
					errc <- errors.New("concurrent caller got corrupted ciphertext")
					return
				}
			}
		}(g)
	}
	// Snapshot the counters while the pool is under load: Report must not
	// race with the workers' accumulation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = f.Report()
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	r := f.Report()
	if r.Stats.BlocksOut == 0 {
		t.Error("no blocks recorded across concurrent callers")
	}
}

// TestFarmCloseRacesWithCallers drives Encrypt calls concurrently with
// Close: every call must either succeed with a verified ciphertext or
// fail with ErrClosed — never corrupt, never deadlock, never race.
func TestFarmCloseRacesWithCallers(t *testing.T) {
	f, err := New(core.Rijndael, key, core.Config{Unroll: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := reference(t, core.Rijndael)
	iv := make([]byte, 16)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			msg := testMessage(16 * 8)
			got, err := f.EncryptCTR(context.Background(), iv, msg)
			if errors.Is(err, ErrClosed) {
				return
			}
			if err != nil {
				errc <- err
				return
			}
			if want := refCTR(t, ref, iv, msg); !bytes.Equal(got, want) {
				errc <- errors.New("ciphertext corrupted during close race")
			}
		}()
	}
	f.Close()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
