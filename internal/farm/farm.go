// Package farm scales the COBRA reproduction beyond a single device: it
// owns a pool of independently configured core.Device replicas — each
// device drives its own sim.Machine, which is not safe for concurrent use
// — and shards non-feedback workloads across them. The paper's Table 1
// splits modes of operation into feedback and non-feedback precisely
// because the latter admit this replication: in counter mode every
// keystream block E(iv+i) is independent, so a message splits into
// contiguous counter ranges that N devices encrypt concurrently. This is
// the software analogue of tiling several COBRA parts on a board, and the
// same data-parallel mapping the related work applies to replicated SIMON
// cores and programmable-hardware crypto kernels (PAPERS.md).
//
// Jobs are dispatched round-robin over per-worker buffered channels:
// dispatch blocks when a worker's queue is full (backpressure), each job
// carries its caller's context so cancellation and timeouts short-circuit
// queued work, and workers write ciphertext directly into disjoint regions
// of the caller's destination buffer, so reassembly is ordered by
// construction. Round-robin rather than a single shared queue is
// deliberate: the shards of one message are uniform in cost, and a shared
// queue lets whichever goroutine the scheduler wakes first drain several
// shards while its siblings sleep — serializing the simulated wall-clock
// and defeating the scaling measurement this subsystem exists to make.
// Per-worker simulator counters are aggregated into a farm-wide Report
// whose EffectiveMbps is the simulated aggregate throughput the
// cmd/cobra-farm scaling table sweeps.
package farm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cobra/internal/core"
	"cobra/internal/sim"
)

// ErrClosed is returned by Encrypt calls made after Close.
var ErrClosed = errors.New("farm: closed")

// DefaultShardBlocks caps a shard at this many 128-bit blocks. Large
// messages therefore split into several jobs per worker, which keeps the
// queue busy (pipelining across shards) at the cost of one pipeline
// fill-and-drain per shard on streaming configurations.
const DefaultShardBlocks = 1024

type mode int

const (
	modeCTR mode = iota
	modeECB
)

// A job is one contiguous shard of an Encrypt call: a counter range plus
// the matching source and destination windows.
type job struct {
	ctx  context.Context
	mode mode
	ctr  [16]byte // starting counter block (CTR only)
	src  []byte
	dst  []byte
	errc chan<- error
}

// workerQueueDepth is each worker's buffered queue capacity; dispatch
// blocks (backpressure) once a worker is this many shards behind.
const workerQueueDepth = 2

// A worker owns one device exclusively; only its goroutine touches dev.
// The mutex guards the accumulated counters, which Report reads while
// jobs are in flight.
type worker struct {
	dev   *core.Device
	queue chan job
	mu    sync.Mutex
	jobs  int
	stats sim.Stats
}

// Farm is a pool of replicated COBRA devices behind a job queue. Unlike a
// single Device, a Farm is safe for concurrent use: any number of
// goroutines may call EncryptCTR/EncryptECB simultaneously and their
// shards interleave across the pool.
type Farm struct {
	alg     core.Algorithm
	mhz     float64
	workers []*worker
	wg      sync.WaitGroup
	next    atomic.Uint64 // round-robin cursor, advanced once per call

	mu     sync.RWMutex // serializes Close against job submission
	closed bool
}

// New configures workers identical devices for the algorithm/key pair and
// starts one goroutine per device. The caller must Close the farm to stop
// them.
func New(alg core.Algorithm, key []byte, cfg core.Config, workers int) (*Farm, error) {
	if workers < 1 {
		return nil, fmt.Errorf("farm: need at least 1 worker, got %d", workers)
	}
	f := &Farm{alg: alg}
	for i := 0; i < workers; i++ {
		dev, err := core.Configure(alg, key, cfg)
		if err != nil {
			return nil, fmt.Errorf("farm: configuring worker %d: %w", i, err)
		}
		f.workers = append(f.workers, &worker{dev: dev, queue: make(chan job, workerQueueDepth)})
	}
	// All devices share a geometry and unroll, hence a modeled clock.
	f.mhz = f.workers[0].dev.Report().DatapathMHz
	for _, w := range f.workers {
		f.wg.Add(1)
		go f.run(w)
	}
	return f, nil
}

// Algorithm returns the configured algorithm.
func (f *Farm) Algorithm() core.Algorithm { return f.alg }

// Workers returns the pool size.
func (f *Farm) Workers() int { return len(f.workers) }

// run is one worker goroutine. The device is used only here — never
// shared between goroutines (the -race regression in race_test.go pins
// this).
func (f *Farm) run(w *worker) {
	defer f.wg.Done()
	for j := range w.queue {
		if err := j.ctx.Err(); err != nil {
			// The caller gave up; skip the simulation, not the reply.
			j.errc <- err
			continue
		}
		var (
			st  sim.Stats
			err error
		)
		switch j.mode {
		case modeCTR:
			st, err = w.dev.EncryptCTRInto(j.dst, j.ctr[:], j.src)
		case modeECB:
			st, err = w.dev.EncryptECBInto(j.dst, j.src)
		}
		w.mu.Lock()
		w.jobs++
		w.stats.Add(st)
		w.mu.Unlock()
		j.errc <- err
	}
}

// span is a half-open byte range of one shard.
type span struct{ off, end int }

// shards splits n bytes into contiguous block-aligned spans: one per
// worker when the message is small, capped at DefaultShardBlocks so large
// messages pipeline through the queue.
func (f *Farm) shards(n int) []span {
	nb := (n + 15) / 16
	per := (nb + len(f.workers) - 1) / len(f.workers)
	if per > DefaultShardBlocks {
		per = DefaultShardBlocks
	}
	var out []span
	for off := 0; off < n; off += per * 16 {
		end := off + per*16
		if end > n {
			end = n
		}
		out = append(out, span{off, end})
	}
	return out
}

// dispatch fans the shards of one call out round-robin over the worker
// queues and waits for every dispatched shard to report back. mk fills in
// the mode-specific job fields for a shard. The round-robin cursor
// advances once per call so concurrent callers start on different workers
// instead of all queueing behind worker 0.
func (f *Farm) dispatch(ctx context.Context, src, dst []byte, mk func(span) (job, error)) error {
	if len(src) == 0 {
		return ctx.Err()
	}
	f.mu.RLock()
	if f.closed {
		f.mu.RUnlock()
		return ErrClosed
	}
	shards := f.shards(len(src))
	errc := make(chan error, len(shards))
	start := int(f.next.Add(1) - 1)
	sent := 0
	var firstErr error
	for i, s := range shards {
		j, err := mk(s)
		if err != nil {
			firstErr = err
			break
		}
		j.ctx, j.src, j.dst, j.errc = ctx, src[s.off:s.end], dst[s.off:s.end], errc
		w := f.workers[(start+i)%len(f.workers)]
		select {
		case w.queue <- j:
			sent++
		case <-ctx.Done():
			firstErr = ctx.Err()
		}
		if firstErr != nil {
			break
		}
	}
	f.mu.RUnlock()
	// Drain every dispatched shard, even after an error: workers always
	// reply, so this cannot deadlock, and it keeps dst ownership clean.
	for i := 0; i < sent; i++ {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// EncryptCTR encrypts src in counter mode with initial counter block iv
// (16 bytes), sharding the counter range across the pool: shard k starting
// at block offset b is keyed by counter iv+b, so the farm's output is
// byte-identical to a single device's EncryptCTR. src may end in a partial
// block. ctx cancels or times out the call; queued shards short-circuit,
// and the in-flight ones finish their simulation before the call returns.
func (f *Farm) EncryptCTR(ctx context.Context, iv, src []byte) ([]byte, error) {
	if len(iv) != 16 {
		return nil, fmt.Errorf("farm: iv must be 16 bytes")
	}
	dst := make([]byte, len(src))
	err := f.dispatch(ctx, src, dst, func(s span) (job, error) {
		ctr, err := core.AddCounter(iv, uint64(s.off/16))
		if err != nil {
			return job{}, err
		}
		return job{mode: modeCTR, ctr: ctr}, nil
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// DecryptCTR inverts EncryptCTR; counter mode is an involution.
func (f *Farm) DecryptCTR(ctx context.Context, iv, src []byte) ([]byte, error) {
	return f.EncryptCTR(ctx, iv, src)
}

// EncryptECB encrypts src (a multiple of 16 bytes) in electronic-codebook
// mode, sharding by block range — ECB is the paper's measurement mode and
// the other non-feedback workload of Table 1.
func (f *Farm) EncryptECB(ctx context.Context, src []byte) ([]byte, error) {
	if len(src)%16 != 0 {
		return nil, fmt.Errorf("farm: input length %d is not a multiple of the block size", len(src))
	}
	dst := make([]byte, len(src))
	err := f.dispatch(ctx, src, dst, func(span) (job, error) {
		return job{mode: modeECB}, nil
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// Close shuts the worker queues and waits for the workers to drain.
// Encrypt calls already dispatching finish normally; calls made after
// Close return ErrClosed. Close is idempotent.
func (f *Farm) Close() error {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		for _, w := range f.workers {
			close(w.queue)
		}
	}
	f.mu.Unlock()
	f.wg.Wait()
	return nil
}

// WorkerReport is one worker's accumulated counters.
type WorkerReport struct {
	Jobs  int
	Stats sim.Stats
}

// Report aggregates the pool's counters. With every device clocked alike,
// WallCycles — the busiest worker's datapath cycles — is the simulated
// wall-clock of the farm, so EffectiveMbps = output bits / (WallCycles /
// DatapathMHz) is the aggregate simulated throughput: N ideally-scaling
// workers multiply a single device's Table 3 rate by N.
type Report struct {
	Algorithm      core.Algorithm
	Workers        int
	DatapathMHz    float64
	PerWorker      []WorkerReport
	Total          sim.Stats
	WallCycles     int
	CyclesPerBlock float64
	EffectiveMbps  float64
}

// Report snapshots the farm-wide counters; safe to call while jobs are in
// flight.
func (f *Farm) Report() Report {
	r := Report{Algorithm: f.alg, Workers: len(f.workers), DatapathMHz: f.mhz}
	for _, w := range f.workers {
		w.mu.Lock()
		wr := WorkerReport{Jobs: w.jobs, Stats: w.stats}
		w.mu.Unlock()
		r.PerWorker = append(r.PerWorker, wr)
		r.Total.Add(wr.Stats)
		if wr.Stats.Cycles > r.WallCycles {
			r.WallCycles = wr.Stats.Cycles
		}
	}
	if r.Total.BlocksOut > 0 {
		r.CyclesPerBlock = float64(r.Total.Cycles) / float64(r.Total.BlocksOut)
	}
	if r.WallCycles > 0 {
		r.EffectiveMbps = float64(r.Total.BlocksOut) * 128 * f.mhz / float64(r.WallCycles)
	}
	return r
}

// ResetStats zeroes every worker's counters between measurement phases.
func (f *Farm) ResetStats() {
	for _, w := range f.workers {
		w.mu.Lock()
		w.jobs, w.stats = 0, sim.Stats{}
		w.mu.Unlock()
	}
}
