package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"cobra/internal/core"
	"cobra/internal/obs"
)

// backendKey identifies one configured backend: the (program, key)
// pair a tenant session pins. Two tenants with the same algorithm, key
// and unroll share a backend — and therefore its compiled fastpath
// trace — which is the whole point of the LRU: reconfiguration (micro-
// code compile + trace recording) is the expensive operation the paper's
// algorithm-agility story amortizes, so the server pays it once per
// distinct configuration, not once per connection.
type backendKey struct {
	alg    core.Algorithm
	unroll int
	key    string // raw key bytes (map key); never exported or logged
}

// fingerprint is the key's log/metrics-safe identity: an FNV-64 of the
// raw key, truncated — enough to tell configurations apart in /metrics
// without disclosing key material.
func (k backendKey) fingerprint() string {
	h := fnv.New64a()
	h.Write([]byte(k.key))
	return fmt.Sprintf("%s-u%d-%08x", k.alg, k.unroll, h.Sum64()&0xffffffff)
}

// errCacheBusy is returned when every cached backend is pinned by a live
// session and the LRU has no slot to evict — an admission-control
// condition reported to clients as CodeBusy, like a full queue.
var errCacheBusy = fmt.Errorf("backend cache full: all configured backends are in use")

// backend is one configured core.Cipher plus the bookkeeping the server
// needs around it: an admission gate, a refcount of sessions pinning it,
// and its position in the LRU order.
type backend struct {
	key backendKey
	// ready is closed once configuration finished (cfg or cfgErr set);
	// concurrent sessions configuring the same key wait on it instead of
	// paying a second reconfiguration.
	ready  chan struct{}
	cipher core.Cipher
	cfgErr error
	// closer shuts the backend down at eviction (farm.Close); nil for a
	// single device.
	closer func() error
	// queueDepth/queueCap expose the farm's backpressure signal (nil for
	// a device): admission sheds BUSY when depth >= cap.
	queueDepth func() int
	queueCap   int
	// reg is the backend's obs registry, attached to the server registry
	// under a config label while the backend is cached.
	reg *obs.Registry
	// shape for CONFIGURE acks.
	workers  int
	rows     int
	unroll   int
	fastpath bool

	// gate bounds concurrent requests: sem holds the executing requests
	// (capacity 1 for a device, which is single-goroutine by contract),
	// waiters bounds the queued ones; beyond that, BUSY.
	sem        chan struct{}
	waiters    atomic.Int64
	maxWaiters int64

	// refs counts sessions pinning this backend; lastUse orders eviction.
	// Both are guarded by the owning cache's mu.
	refs    int
	lastUse uint64
}

// acquireSlot admits one request: immediately if an execution slot is
// free, by bounded waiting otherwise. Returns errCacheBusy-compatible
// admission failure (errBusySlot) when the wait queue is full, or the
// context error if the caller disconnects while queued.
func (b *backend) acquireSlot(ctx context.Context) error {
	select {
	case b.sem <- struct{}{}:
		return nil
	default:
	}
	if b.waiters.Add(1) > b.maxWaiters {
		b.waiters.Add(-1)
		return errBusySlot
	}
	defer b.waiters.Add(-1)
	select {
	case b.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// releaseSlot returns an execution slot.
func (b *backend) releaseSlot() { <-b.sem }

// errBusySlot reports a full per-backend admission queue.
var errBusySlot = fmt.Errorf("backend saturated: execution slots and wait queue are full")

// cache is the capacity-bounded LRU of configured backends. Sessions
// acquire a backend at CONFIGURE (pinning it against eviction) and
// release it at disconnect; eviction closes the least-recently-used
// unpinned backend to make room.
type cache struct {
	mu      sync.Mutex
	max     int
	seq     uint64
	entries map[backendKey]*backend

	// build configures a new backend for a key (slow: compiles microcode
	// and records the fastpath trace), filling e's cipher and shape
	// fields in place — every waiter already holds the placeholder
	// pointer. Called WITHOUT mu held, before e.ready is closed.
	build func(k backendKey, e *backend) error

	// attach/detach wire a backend's registry into the served tree.
	attach func(b *backend)
	detach func(b *backend)

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	size      *obs.Gauge
}

func newCache(max int, build func(backendKey, *backend) error) *cache {
	return &cache{
		max:     max,
		entries: make(map[backendKey]*backend),
		build:   build,
		attach:  func(*backend) {},
		detach:  func(*backend) {},
	}
}

// acquire returns the configured backend for k, building it on a miss.
// The returned backend is pinned (refs+1) until release. hit reports
// whether an already-configured backend was reused. When the cache is
// full of pinned backends, acquire fails with errCacheBusy.
func (c *cache) acquire(ctx context.Context, k backendKey) (b *backend, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		e.refs++
		c.seq++
		e.lastUse = c.seq
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			c.release(e)
			return nil, false, ctx.Err()
		}
		if e.cfgErr != nil {
			// Creation failed after we queued on it; the creator already
			// removed the entry from the map.
			c.release(e)
			return nil, false, e.cfgErr
		}
		if c.hits != nil {
			c.hits.Inc()
		}
		return e, true, nil
	}
	// Miss: make room, insert a placeholder, configure outside the lock.
	var evicted *backend
	if len(c.entries) >= c.max {
		evicted = c.evictLocked()
		if evicted == nil {
			c.mu.Unlock()
			return nil, false, errCacheBusy
		}
	}
	e := &backend{key: k, ready: make(chan struct{}), refs: 1}
	c.seq++
	e.lastUse = c.seq
	c.entries[k] = e
	if c.size != nil {
		c.size.Set(int64(len(c.entries)))
	}
	c.mu.Unlock()

	if evicted != nil {
		c.closeBackend(evicted)
	}
	if c.misses != nil {
		c.misses.Inc()
	}

	err = c.build(k, e)
	c.mu.Lock()
	if err != nil {
		e.cfgErr = err
		delete(c.entries, k)
		if c.size != nil {
			c.size.Set(int64(len(c.entries)))
		}
		close(e.ready)
		c.mu.Unlock()
		return nil, false, err
	}
	c.attach(e)
	close(e.ready)
	c.mu.Unlock()
	return e, false, nil
}

// release unpins a backend; at refs 0 it stays cached (warm for the
// next session) until evicted.
func (c *cache) release(b *backend) {
	if b == nil {
		return
	}
	c.mu.Lock()
	b.refs--
	c.mu.Unlock()
}

// evictLocked removes and returns the least-recently-used backend with
// no live sessions, or nil if every entry is pinned. Caller holds mu
// and must closeBackend the result after unlocking.
func (c *cache) evictLocked() *backend {
	var victim *backend
	for _, e := range c.entries {
		if e.refs > 0 {
			continue
		}
		select {
		case <-e.ready:
		default:
			continue // still configuring (shouldn't happen with refs 0)
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	if victim == nil {
		return nil
	}
	delete(c.entries, victim.key)
	if c.size != nil {
		c.size.Set(int64(len(c.entries)))
	}
	if c.evictions != nil {
		c.evictions.Inc()
	}
	return victim
}

// closeBackend detaches and closes an evicted backend. refs==0 means no
// session (and therefore no request) is using it, so Close cannot strand
// in-flight work.
func (c *cache) closeBackend(b *backend) {
	c.detach(b)
	if b.closer != nil {
		_ = b.closer()
	}
}

// closeAll evicts everything — the server's shutdown path, called after
// every session has exited.
func (c *cache) closeAll() {
	c.mu.Lock()
	all := make([]*backend, 0, len(c.entries))
	for _, e := range c.entries {
		all = append(all, e)
	}
	c.entries = make(map[backendKey]*backend)
	if c.size != nil {
		c.size.Set(0)
	}
	c.mu.Unlock()
	for _, e := range all {
		c.closeBackend(e)
	}
}

// len returns the number of cached backends.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
