package obs

import "testing"

// TestHotPathAllocFree pins the package's core constraint: every update
// primitive that may sit on an encryption hot path performs zero heap
// allocations. The device- and farm-level gates in internal/core and
// internal/farm build on this.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DurationBuckets())
	tm := r.Timer("t_ns", "")

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(9) }},
		{"Histogram.Observe", func() { h.Observe(123456) }},
		{"Timer span", func() { tm.Start().End() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestTraceCaptureAllocs documents that enabling the trace ring keeps
// span End amortized allocation-free (records are written into the
// preallocated ring).
func TestTraceCaptureAllocs(t *testing.T) {
	r := NewRegistry()
	r.EnableTrace(64)
	tm := r.Timer("t_ns", "")
	if allocs := testing.AllocsPerRun(1000, func() { tm.Start().End() }); allocs != 0 {
		t.Errorf("traced span: %.1f allocs/op, want 0", allocs)
	}
}
