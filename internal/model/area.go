package model

import "cobra/internal/datapath"

// ElementGates reproduces Table 4: gate counts for each configurable
// element within a COBRA RCE or RCE MUL, as synthesized by the paper
// against the ADK TSMC 0.35 µm library. These are adopted as calibrated
// constants (we cannot rerun LeonardoSpectrum); everything built from them
// — the Table 5 architecture totals and the Table 6 scaling — is computed
// structurally from our element inventory.
type ElementGates struct {
	A       int // Boolean unit
	B       int // adder/subtractor
	C       int // LUT complex (4×256×8 + 4×128×4 = 10,240 bits)
	D       int // multiplier
	E       int // shifter/rotator
	F       int // GF(2^8) fixed-constant multiplier
	Mux4x32 int // 4-to-1 multiplexor, grouping of 32
	Mux4x5  int // 4-to-1 multiplexor, grouping of 5
	Mux2x32 int // 2-to-1 multiplexor, grouping of 32
	Reg32   int // 32-bit register
}

// Table4 returns the published per-element gate counts.
func Table4() ElementGates {
	return ElementGates{
		A:       172,
		B:       1012,
		C:       98624,
		D:       5243,
		E:       887,
		F:       10606,
		Mux4x32: 160,
		Mux4x5:  26,
		Mux2x32: 83,
		Reg32:   267,
	}
}

// Architecture-level unit gate counts derived from Table 5 (per-unit
// values obtained by dividing the published totals by the base instance
// counts: 2 byte shufflers, 16 eRAMs, one iRAM).
const (
	gatesPerShuffler  = 8556 / 2
	gatesPerERAM      = 1210640 / 16
	gatesIRAM         = 2773184
	gatesInputMux     = 332
	gatesWhitening    = 3128
	gatesDatapathOvhd = 2464
	gatesChipOvhd     = 370
)

// rceStructural computes the structural gate count of one RCE from the
// Table 4 element constants: the element instances of the documented chain
// (INSEL → E1 → A1 → C → E2 → [D] → B → F → A2 → E3 → REG) plus its
// multiplexing (operand muxes on A1/A2/B/[D], 5-bit amount muxes on the
// three E instances, the INSEL input mux, and per-element bypass muxes).
func rceStructural(g ElementGates, hasMul bool) int {
	elems := 2*g.A + g.B + g.C + 3*g.E + g.F
	// Operand muxes: 6-source (four blocks + eRAM + immediate) modeled as a
	// 4-to-1 stage plus a 2-to-1 stage.
	opMux := g.Mux4x32 + g.Mux2x32
	muxes := 3 * opMux // A1, A2, B
	// INSEL: 8 sources.
	muxes += 2*g.Mux4x32 + g.Mux2x32
	// E amount muxes (5-bit).
	muxes += 3 * (g.Mux4x5 + g.Mux4x5/2)
	// Bypass muxes: one per bypassable element.
	nBypass := 9
	if hasMul {
		elems += g.D
		muxes += opMux
		nBypass++
	}
	muxes += nBypass * g.Mux2x32
	return elems + muxes + g.Reg32
}

// rceControlOverhead is the per-RCE control/configuration-register and
// intra-RCE routing budget. It is calibrated once so that the base 4×4
// array reproduces the paper's Table 5 "RCE/RCE MUL Array" total of
// 2,692,840 gates exactly; the calibration is a single shared constant, so
// geometry scaling (Table 6) remains fully structural.
func rceControlOverhead(g ElementGates) int {
	structural := 8*rceStructural(g, false) + 8*rceStructural(g, true)
	return (2692840 - structural) / 16
}

// RCEGates returns the modeled gate count of one RCE or RCE MUL.
func RCEGates(g ElementGates, hasMul bool) int {
	return rceStructural(g, hasMul) + rceControlOverhead(g)
}

// ArchGates is the Table 5 decomposition for a given geometry.
type ArchGates struct {
	RCEArray    int
	Shufflers   int
	InputMuxes  int
	Whitening   int
	ERAMs       int
	IRAM        int
	DatapathOvh int
	ChipOvh     int
}

// Total sums the decomposition.
func (a ArchGates) Total() int {
	return a.RCEArray + a.Shufflers + a.InputMuxes + a.Whitening +
		a.ERAMs + a.IRAM + a.DatapathOvh + a.ChipOvh
}

// Table5 computes the architecture gate counts for a geometry. The base
// geometry reproduces the published Table 5; expanded geometries scale the
// RCE array, byte shufflers and eRAMs with the row count ("increasing both
// the iRAM address space and the number of rows, byte shufflers, and
// eRAMs", §4.1 — the iRAM and fixed overheads are kept constant, which is
// conservative relative to the paper's expansion accounting; see
// EXPERIMENTS.md).
func Table5(g ElementGates, geo datapath.Geometry) ArchGates {
	rows := geo.Rows
	array := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < datapath.Cols; c++ {
			array += RCEGates(g, datapath.MulColumn(c))
		}
	}
	return ArchGates{
		RCEArray:    array,
		Shufflers:   geo.Shufflers() * gatesPerShuffler,
		InputMuxes:  gatesInputMux,
		Whitening:   gatesWhitening,
		ERAMs:       rows * 4 * gatesPerERAM, // 16 eRAMs per 4-row tile
		IRAM:        gatesIRAM,
		DatapathOvh: gatesDatapathOvhd,
		ChipOvh:     gatesChipOvhd,
	}
}

// SRAMFactor is the paper's estimate that memory gate counts shrink by a
// factor of three when SRAM blocks replace the D-flip-flop implementation
// the synthesis tool produced (§4.2).
const SRAMFactor = 3

// TotalWithSRAM applies the §4.2 SRAM estimate to the memory elements.
func (a ArchGates) TotalWithSRAM() int {
	mem := a.ERAMs + a.IRAM + memShareOfRCEs(a.RCEArray)
	return a.Total() - mem + mem/SRAMFactor
}

// memShareOfRCEs estimates the LUT-storage share of the RCE array (the C
// element dominates each RCE).
func memShareOfRCEs(array int) int {
	g := Table4()
	pair := RCEGates(g, false) + RCEGates(g, true)
	return int(int64(array) * int64(2*g.C) / int64(pair))
}
