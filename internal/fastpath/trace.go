package fastpath

import (
	"cobra/internal/bits"
	"cobra/internal/datapath"
	"cobra/internal/isa"
)

// Trace is the exported view of a compiled executor: the complete per-cycle
// op-list IR, the initial data state, and the resume/reload policy. It
// exists so that independent checkers (package equiv's translation
// validator) can reason about exactly what EncryptInto executes without
// reaching into this package's internals. Table pointers are shared with
// the live executor — treat them as read-only.
type Trace struct {
	Name          string
	Rows          int
	Streaming     bool
	PipelineDepth int
	Elided        int // element operations dropped under the dead mask

	InitReg [][datapath.Cols]uint32
	InitFB  bits.Block128

	Head   []TraceTick // load-to-first-output segment
	Period []TraceTick // steady repeating segment
}

// TraceTick is one compiled datapath cycle.
type TraceTick struct {
	Enabled  bool
	InMode   isa.InMuxMode
	ERAMVec  bits.Block128 // resolved playback words (InERAM mode)
	Emit     bool
	WhiteIn  [datapath.Cols]TraceWhite
	WhiteOut [datapath.Cols]TraceWhite
	Rows     []TraceRow
}

// TraceWhite is one column's whitening operation at one stage.
type TraceWhite struct {
	Mode isa.WhiteMode
	Key  uint32
}

// TraceRow is one array row at one cycle.
type TraceRow struct {
	Shuffle *[16]uint8 // byte shuffler before this row (nil: identity)
	Cells   [datapath.Cols]TraceCell
}

// TraceCell is one RCE at one cycle.
type TraceCell struct {
	Passthrough bool  // out = vec[col], nothing evaluated
	RegOnly     bool  // registered and held: out = reg, nothing latched
	Insel       uint8 // 0..3: current row block; 4..7: prev-row block−4
	Reg         bool
	Steps       []TraceStep
}

// StepKind enumerates the compiled element operations. The values alias the
// internal step kinds, so the executor and the exported IR can never drift.
type StepKind uint8

const (
	StepShlImm  = StepKind(stShlImm)
	StepShrImm  = StepKind(stShrImm)
	StepRotlImm = StepKind(stRotlImm)
	StepShlVar  = StepKind(stShlVar)
	StepShrVar  = StepKind(stShrVar)
	StepRotlVar = StepKind(stRotlVar)
	StepXorImm  = StepKind(stXorImm)
	StepAndImm  = StepKind(stAndImm)
	StepOrImm   = StepKind(stOrImm)
	StepXorBlk  = StepKind(stXorBlk)
	StepAndBlk  = StepKind(stAndBlk)
	StepOrBlk   = StepKind(stOrBlk)
	StepAddImm  = StepKind(stAddImm)
	StepSubImm  = StepKind(stSubImm)
	StepAddBlk  = StepKind(stAddBlk)
	StepSubBlk  = StepKind(stSubBlk)
	StepS8      = StepKind(stS8)
	StepS4      = StepKind(stS4)
	StepS8to32  = StepKind(stS8to32)
	StepMulImm  = StepKind(stMulImm)
	StepMulBlk  = StepKind(stMulBlk)
	StepSquare  = StepKind(stSquare)
	StepGFTab   = StepKind(stGFTab)
)

// TraceStep is one compiled element operation, with the same constant
// folding the executor sees: immediates resolved, shift negation folded
// into Flag, A-element pre-shifts in Aux/Flag, F elements as their folded
// contribution tables.
type TraceStep struct {
	Kind  StepKind
	Src   uint8 // block index for *Blk/*Var kinds
	Aux   uint8 // shift amount / B-D width / C page or byte select
	Flag  bool  // E: negate amount; A: operand pre-shift is a rotate
	ImmER bool  // Imm was folded from an eRAM read: key-schedule material
	Imm   uint32

	S8 *[4][256]uint8  // StepS8/StepS8to32 lanes
	S4 *[4][128]uint8  // StepS4 nibble tables (low 4 bits significant)
	GF *[4][256]uint32 // StepGFTab folded contribution tables
}

// Trace exports the compiled IR. The per-call data state (registers,
// feedback, resume position) is deliberately absent: a Trace describes the
// function the executor computes from its post-load state, which is the
// object translation validation reasons about.
func (e *Exec) Trace() *Trace {
	tr := &Trace{
		Name:          e.src.Name,
		Rows:          e.rows,
		Streaming:     e.src.Streaming,
		PipelineDepth: e.src.PipelineDepth,
		Elided:        e.elided,
		InitReg:       append([][datapath.Cols]uint32(nil), e.initReg...),
		InitFB:        e.initFB,
		Head:          exportTicks(e.head),
		Period:        exportTicks(e.period),
	}
	return tr
}

func exportTicks(ticks []cTick) []TraceTick {
	out := make([]TraceTick, len(ticks))
	for i := range ticks {
		ct := &ticks[i]
		tt := TraceTick{
			Enabled: ct.enabled,
			InMode:  ct.inMode,
			ERAMVec: ct.eramVec,
			Emit:    ct.emit,
			Rows:    make([]TraceRow, len(ct.rows)),
		}
		for c := 0; c < datapath.Cols; c++ {
			tt.WhiteIn[c] = TraceWhite{Mode: ct.whiteIn[c].mode, Key: ct.whiteIn[c].key}
			tt.WhiteOut[c] = TraceWhite{Mode: ct.whiteOut[c].mode, Key: ct.whiteOut[c].key}
		}
		for r := range ct.rows {
			row := &ct.rows[r]
			tr := TraceRow{Shuffle: row.Shuffle()}
			for c := 0; c < datapath.Cols; c++ {
				tr.Cells[c] = exportCell(&row.cells[c])
			}
			tt.Rows[r] = tr
		}
		out[i] = tt
	}
	return out
}

// Shuffle returns the row's compiled shuffler permutation (nil: identity).
func (row *cRow) Shuffle() *[16]uint8 { return row.shuffle }

func exportCell(cell *cCell) TraceCell {
	tc := TraceCell{
		Passthrough: cell.passthrough,
		RegOnly:     cell.regOnly,
		Insel:       cell.insel,
		Reg:         cell.reg,
	}
	if len(cell.steps) > 0 {
		tc.Steps = make([]TraceStep, len(cell.steps))
		for i := range cell.steps {
			st := &cell.steps[i]
			ts := TraceStep{
				Kind:  StepKind(st.kind),
				Src:   st.src,
				Aux:   st.aux,
				Flag:  st.flag,
				ImmER: st.immER,
				Imm:   st.imm,
			}
			if st.lut != nil {
				ts.S8 = &st.lut.S8
				ts.S4 = &st.lut.S4
			}
			if st.gf != nil {
				ts.GF = (*[4][256]uint32)(st.gf)
			}
			tc.Steps[i] = ts
		}
	}
	return tc
}
