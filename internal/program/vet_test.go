package program

import (
	"fmt"
	"testing"

	"cobra/internal/cipher"
	"cobra/internal/isa"
	"cobra/internal/sim"
	"cobra/internal/vet"
)

// allBuilders enumerates every builder at every supported unroll depth and
// window size — the full lint-clean regression matrix.
func allBuilders(t *testing.T) []*Program {
	t.Helper()
	var progs []*Program
	add := func(p *Program, err error) {
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	for _, hw := range []int{1, 2, 4, 5, 10, 20} {
		add(BuildRC6(testKey, hw, cipher.RC6Rounds))
	}
	for _, hw := range []int{1, 2, 5, 10} {
		add(BuildRijndael(testKey, hw))
	}
	for _, hw := range []int{1, 2, 4, 8, 16, 32} {
		add(BuildSerpent(testKey, hw))
	}
	for w := 1; w <= 16; w++ {
		add(BuildSerpentWindowed(testKey, w))
	}
	add(BuildGOST(gostKey))
	for _, hw := range []int{1, 2, 4, 5, 10, 20} {
		add(BuildRC6Decrypt(testKey, hw, cipher.RC6Rounds))
	}
	for _, hw := range []int{1, 2, 5, 10} {
		add(BuildRijndaelDecrypt(testKey, hw))
	}
	add(BuildSerpentDecrypt(testKey))
	add(BuildRijndaelKeyed())
	return progs
}

// TestBuildersLintClean is the tentpole regression: every builder at every
// depth and window produces microcode with zero cobravet findings of any
// severity.
func TestBuildersLintClean(t *testing.T) {
	for _, p := range allBuilders(t) {
		name := p.Name
		if p.Window > 1 {
			name = fmt.Sprintf("%s/w=%d", name, p.Window)
		}
		t.Run(name, func(t *testing.T) {
			if fs := p.Vet(); len(fs) != 0 {
				for _, f := range fs {
					t.Errorf("%s", f)
				}
			}
		})
	}
}

// TestVetPathMatchesSimulator cross-checks the verifier's abstract walk
// against the real machine: the tick positions and instruction counts
// vet computes for the setup path must equal the simulator's counters
// when the same program runs to its idle point.
func TestVetPathMatchesSimulator(t *testing.T) {
	for _, p := range allBuilders(t) {
		name := fmt.Sprintf("%s/w=%d", p.Name, p.Window)
		t.Run(name, func(t *testing.T) {
			ps, err := vet.WalkToIdle(p.Instrs, p.Window)
			if err != nil {
				t.Fatal(err)
			}
			if ps.Stop != vet.StopIdle {
				t.Fatalf("setup path stops with %v, want idle at ready", ps.Stop)
			}
			m, err := NewMachine(p)
			if err != nil {
				t.Fatal(err)
			}
			m.Go = false
			if err := m.LoadProgram(p.Words()); err != nil {
				t.Fatal(err)
			}
			reason, err := m.Run(sim.Limits{})
			if err != nil {
				t.Fatal(err)
			}
			if reason != sim.StopWaitGo {
				t.Fatalf("machine stopped with %v, want StopWaitGo", reason)
			}
			st := m.Stats()
			if st.Cycles != ps.Ticks || st.Instructions != ps.Instructions || st.Nops != ps.Nops {
				t.Errorf("sim (cycles=%d instrs=%d nops=%d) != vet (ticks=%d instrs=%d nops=%d)",
					st.Cycles, st.Instructions, st.Nops, ps.Ticks, ps.Instructions, ps.Nops)
			}
			// The sequencer idles one past the ready-raise it just fetched.
			if pc := m.Seq.PC(); pc != ps.StopAddr+1 {
				t.Errorf("machine idles at pc %#x, vet stops at %#x", pc, ps.StopAddr)
			}
		})
	}
}

// TestVetCatchesCorruptedBuilds seeds defects into a real windowed build
// and checks the verifier reports them — with the right address for the
// retargeted jump.
func TestVetCatchesCorruptedBuilds(t *testing.T) {
	p, err := BuildSerpentWindowed(testKey, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fs := p.Vet(); len(fs) != 0 {
		t.Fatalf("pristine build has findings: %v", fs)
	}

	t.Run("jmp-out-of-range", func(t *testing.T) {
		broken := *p
		broken.Instrs = append([]isa.Instr(nil), p.Instrs...)
		jmpAt := -1
		for i, in := range broken.Instrs {
			if in.Op == isa.OpJmp {
				jmpAt = i
			}
		}
		if jmpAt < 0 {
			t.Fatal("build has no JMP")
		}
		broken.Instrs[jmpAt].Data = uint64(len(broken.Instrs))
		found := false
		for _, f := range broken.Vet() {
			if f.Code == "jmp-range" && f.Addr == jmpAt && f.Sev == vet.Error {
				found = true
			}
		}
		if !found {
			t.Fatalf("retargeted JMP at %#x not reported", jmpAt)
		}
	})

	t.Run("dropped-nop-pad", func(t *testing.T) {
		// Deleting one NOP slot shifts every later window by one phase;
		// the steady loop re-enters its body misaligned.
		nopAt := -1
		for i, in := range p.Instrs {
			if in.Op == isa.OpNop {
				nopAt = i
			}
		}
		if nopAt < 0 {
			t.Skip("no NOP padding in this build")
		}
		broken := *p
		broken.Instrs = append([]isa.Instr(nil), p.Instrs[:nopAt]...)
		broken.Instrs = append(broken.Instrs, p.Instrs[nopAt+1:]...)
		// Deleting an instruction also shifts jump targets; retarget any
		// jump that pointed past the cut so only the alignment defect
		// remains.
		for i, in := range broken.Instrs {
			if in.Op == isa.OpJmp && int(in.Data&0xfff) > nopAt {
				broken.Instrs[i].Data = in.Data - 1
			}
		}
		var errs int
		for _, f := range broken.Vet() {
			if f.Sev == vet.Error {
				errs++
			}
		}
		if errs == 0 {
			t.Fatal("dropped NOP pad produced no errors")
		}
	})
}
