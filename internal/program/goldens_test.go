package program_test

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"testing"

	"cobra/internal/bits"
	"cobra/internal/program"
)

// goldenVector is one known-answer line from testdata/vectors.txt. The
// 128-bit-block ciphers carry 16-byte plaintext/ciphertext; the 64-bit
// corpus carries 8-byte fields that the test marshals into superblocks.
type goldenVector struct {
	cipher string
	key    []byte
	pt     []byte
	ct     []byte
}

func loadGoldenVectors(t *testing.T) []goldenVector {
	t.Helper()
	f, err := os.Open("testdata/vectors.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var vecs []goldenVector
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			t.Fatalf("vectors.txt:%d: want 4 fields, got %d", line, len(fields))
		}
		unhex := func(s string) []byte {
			b, err := hex.DecodeString(s)
			if err != nil {
				t.Fatalf("vectors.txt:%d: bad hex %q: %v", line, s, err)
			}
			return b
		}
		pt, ct := unhex(fields[2]), unhex(fields[3])
		if len(pt) != len(ct) || (len(pt) != 16 && len(pt) != 8) {
			t.Fatalf("vectors.txt:%d: plaintext/ciphertext must be one 8- or 16-byte block", line)
		}
		vecs = append(vecs, goldenVector{
			cipher: fields[0],
			key:    unhex(fields[1]),
			pt:     pt,
			ct:     ct,
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(vecs) == 0 {
		t.Fatal("vectors.txt: no vectors")
	}
	return vecs
}

// goldenBuilders maps each vector's cipher name to the mappings that must
// reproduce it, at a mix of iterative and streaming unroll depths.
func goldenBuilders(t *testing.T, cipher string, key []byte) map[string]*program.Program {
	t.Helper()
	out := make(map[string]*program.Program)
	add := func(label string, p *program.Program, err error) {
		if err != nil {
			t.Fatalf("%s: build: %v", label, err)
		}
		out[label] = p
	}
	switch cipher {
	case "rc6":
		for _, hw := range []int{1, 4, 20} {
			p, err := program.BuildRC6(key, hw, 20)
			add(fmt.Sprintf("rc6-%d", hw), p, err)
		}
	case "rijndael":
		for _, hw := range []int{1, 2, 10} {
			p, err := program.BuildRijndael(key, hw)
			add(fmt.Sprintf("rijndael-%d", hw), p, err)
		}
	case "serpentcobra":
		for _, hw := range []int{1, 8, 32} {
			p, err := program.BuildSerpent(key, hw)
			add(fmt.Sprintf("serpent-%d", hw), p, err)
		}
		p, err := program.BuildSerpentWindowed(key, 4)
		add("serpent-w4", p, err)
	case "rc5":
		for _, hw := range []int{1, 4, 12} {
			p, err := program.BuildRC5(key, hw, 12)
			add(fmt.Sprintf("rc5-%d", hw), p, err)
		}
	case "tea":
		for _, hw := range []int{1, 4, 32} {
			p, err := program.BuildTEA(key, hw)
			add(fmt.Sprintf("tea-%d", hw), p, err)
		}
	case "simon64":
		for _, hw := range []int{1, 11, 44} {
			p, err := program.BuildSIMON(key, hw)
			add(fmt.Sprintf("simon64-%d", hw), p, err)
		}
	case "blowfish":
		for _, hw := range []int{1, 2} {
			p, err := program.BuildBlowfish(key, hw)
			add(fmt.Sprintf("blowfish-%d", hw), p, err)
		}
	case "des":
		p, err := program.BuildDES(key)
		add("des-1", p, err)
	default:
		t.Fatalf("unknown cipher %q in vectors.txt", cipher)
	}
	return out
}

// goldenPack marshals an 8-byte block into the superblock the mapping
// expects, and goldenUnpack recovers the 8 payload bytes of the result.
// The paired LE mappings (rc5, simon64) carry two blocks per superblock,
// so the vector is driven through both lanes at once; the byte-swapped BE
// mappings (tea, blowfish) use one block plus scratch; des applies the
// host-side IP/FP transform.
func goldenPack(t *testing.T, cipher string, pt []byte) bits.Block128 {
	t.Helper()
	sb := make([]byte, 16)
	switch cipher {
	case "rc5", "simon64":
		copy(sb[0:8], pt)
		copy(sb[8:16], pt)
	case "tea", "blowfish":
		copy(sb[0:8], pt)
		program.SwapWords32(sb[0:8])
	case "des":
		packed, err := program.DESPack(pt)
		if err != nil {
			t.Fatal(err)
		}
		copy(sb, packed)
	default:
		t.Fatalf("goldenPack: unknown 64-bit cipher %q", cipher)
	}
	return bits.LoadBlock128(sb)
}

func goldenUnpack(t *testing.T, cipher string, out bits.Block128) (lanes [][]byte) {
	t.Helper()
	sb := make([]byte, 16)
	out.StoreBlock128(sb)
	switch cipher {
	case "rc5", "simon64":
		return [][]byte{sb[0:8], sb[8:16]}
	case "tea", "blowfish":
		program.SwapWords32(sb[0:8])
		return [][]byte{sb[0:8]}
	case "des":
		ct, err := program.DESUnpack(sb)
		if err != nil {
			t.Fatal(err)
		}
		return [][]byte{ct}
	default:
		t.Fatalf("goldenUnpack: unknown 64-bit cipher %q", cipher)
		return nil
	}
}

// TestGoldenVectors runs every published (or pinned) known-answer vector
// through both execution engines — the cycle-accurate interpreter and the
// trace-compiled fastpath executor — across representative unroll depths.
// A divergence in either engine, at any depth, fails against an external
// reference rather than merely against the other engine.
func TestGoldenVectors(t *testing.T) {
	for i, v := range loadGoldenVectors(t) {
		v := v
		t.Run(fmt.Sprintf("%s-%d", v.cipher, i), func(t *testing.T) {
			var in bits.Block128
			if len(v.pt) == 16 {
				in = bits.LoadBlock128(v.pt)
			} else {
				in = goldenPack(t, v.cipher, v.pt)
			}
			check := func(label, engine string, got bits.Block128) {
				t.Helper()
				if len(v.ct) == 16 {
					if want := bits.LoadBlock128(v.ct); got != want {
						t.Errorf("%s: %s ciphertext %08x, want %08x", label, engine, got, want)
					}
					return
				}
				for li, lane := range goldenUnpack(t, v.cipher, got) {
					if !bytes.Equal(lane, v.ct) {
						t.Errorf("%s: %s lane %d ciphertext %x, want %x", label, engine, li, lane, v.ct)
					}
				}
			}
			for label, p := range goldenBuilders(t, v.cipher, v.key) {
				m, err := program.NewMachine(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := program.Load(m, p); err != nil {
					t.Fatal(err)
				}
				blocks := []bits.Block128{in}
				got := make([]bits.Block128, 1)
				if _, err := program.EncryptInto(m, p, got, blocks); err != nil {
					t.Fatalf("%s: interpreter: %v", label, err)
				}
				check(label, "interpreter", got[0])
				ex, err := p.Compile()
				if err != nil {
					t.Fatalf("%s: compile: %v", label, err)
				}
				got[0] = bits.Block128{}
				if _, err := ex.EncryptInto(got, blocks); err != nil {
					t.Fatalf("%s: fastpath: %v", label, err)
				}
				check(label, "fastpath", got[0])
			}
		})
	}
}
