package program

import (
	"testing"

	"cobra/internal/equiv"
	"cobra/internal/fastpath"
)

// validationKey is the fixed key the validation tests build programs with.
func validationKey() []byte {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i)
	}
	return key
}

// TestValidateProvesBuiltins proves a representative slice of the built-in
// corpus equivalent (the full sweep is cobra-vet -equiv -builtin, run as
// the CI equiv-gate and in the cobra-vet tests).
func TestValidateProvesBuiltins(t *testing.T) {
	key := validationKey()
	gostKey := make([]byte, 32)
	for i := range gostKey {
		gostKey[i] = key[i%len(key)]
	}
	builds := []struct {
		name  string
		build func() (*Program, error)
	}{
		{"rc6-1", func() (*Program, error) { return BuildRC6(key, 1, 20) }},
		{"rc6-20", func() (*Program, error) { return BuildRC6(key, 20, 20) }},
		{"rijndael-1", func() (*Program, error) { return BuildRijndael(key, 1) }},
		{"serpent-1", func() (*Program, error) { return BuildSerpent(key, 1) }},
		{"gost-2", func() (*Program, error) { return BuildGOST(gostKey) }},
		{"rc5-1", func() (*Program, error) { return BuildRC5(key, 1, 12) }},
		{"rc5-dec-12", func() (*Program, error) { return BuildRC5Decrypt(key, 12, 12) }},
		{"tea-2", func() (*Program, error) { return BuildTEA(key, 2) }},
		{"simon64-44", func() (*Program, error) { return BuildSIMON(key, 44) }},
		{"blowfish-1", func() (*Program, error) { return BuildBlowfish(key, 1) }},
		{"des-1", func() (*Program, error) { return BuildDES(key[:8]) }},
	}
	for _, b := range builds {
		t.Run(b.name, func(t *testing.T) {
			p, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Validate()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Proven {
				t.Fatalf("not proven:\n%s", res)
			}
			if res.Outputs == 0 || res.Inputs == 0 {
				t.Errorf("degenerate proof: %s", res)
			}
		})
	}
}

// TestValidateRefusesKeyHandshake pins the compile-refusal path: a program
// with the key-request handshake has no trace, so Validate returns the
// refusal as an error rather than a verdict.
func TestValidateRefusesKeyHandshake(t *testing.T) {
	p, err := BuildRijndaelKeyed()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Validate(); err == nil {
		t.Fatal("Validate() on a key-handshake program should refuse")
	}
}

// validateMutated compiles p, exports a fresh trace (Trace() deep-copies
// everything except the lookup tables, which mutators must copy before
// corrupting — they are shared with the live executor), applies the
// mutation, and validates the corrupted trace against the true microcode.
func validateMutated(t *testing.T, p *Program, mutate func(tr *fastpath.Trace) bool) *equiv.Result {
	t.Helper()
	ex, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tr := ex.Trace()
	if !mutate(tr) {
		t.Fatal("mutation found nothing to corrupt in the trace")
	}
	return equiv.Validate(p.Words(), equiv.Config{
		Name:     p.Name + "-mutated",
		Geometry: p.Geometry,
		Window:   p.Window,
	}, tr)
}

// requireRejected asserts the three properties every seeded defect must
// produce: an unproven verdict, a concrete mismatch, and a diverging-input
// witness whose two sides actually differ.
func requireRejected(t *testing.T, res *equiv.Result) {
	t.Helper()
	if res.Proven {
		t.Fatalf("corrupted trace was proven equivalent:\n%s", res)
	}
	if res.Mism == nil {
		t.Fatalf("rejection carries no mismatch:\n%s", res)
	}
	w := res.Mism.Witness
	if w == nil {
		t.Fatalf("mismatch carries no witness:\n%s", res)
	}
	if w.RefVal == w.FPVal {
		t.Fatalf("witness does not diverge: both sides %#08x\n%s", w.RefVal, res)
	}
}

// TestSeededDefectMutatedOp flips one compiled element operation (an
// immediate add becomes an immediate xor) and requires the validator to
// reject with a diverging witness.
func TestSeededDefectMutatedOp(t *testing.T) {
	p, err := BuildRC6(validationKey(), 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	res := validateMutated(t, p, func(tr *fastpath.Trace) bool {
		for ti := range tr.Period {
			for r := range tr.Period[ti].Rows {
				for c := range tr.Period[ti].Rows[r].Cells {
					steps := tr.Period[ti].Rows[r].Cells[c].Steps
					for si := range steps {
						if steps[si].Kind == fastpath.StepAddImm && steps[si].Imm != 0 {
							steps[si].Kind = fastpath.StepXorImm
							return true
						}
					}
				}
			}
		}
		return false
	})
	requireRejected(t, res)
}

// TestSeededDefectWrongElision marks one live compiled cell as elided
// (passthrough) and requires rejection: the elision machinery must never
// be able to drop a contributing operation silently.
func TestSeededDefectWrongElision(t *testing.T) {
	p, err := BuildRC6(validationKey(), 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	res := validateMutated(t, p, func(tr *fastpath.Trace) bool {
		for ti := range tr.Period {
			for r := range tr.Period[ti].Rows {
				for c := range tr.Period[ti].Rows[r].Cells {
					cell := &tr.Period[ti].Rows[r].Cells[c]
					if !cell.Passthrough && !cell.RegOnly && len(cell.Steps) > 0 {
						cell.Passthrough = true
						return true
					}
				}
			}
		}
		return false
	})
	requireRejected(t, res)
}

// TestSeededDefectCorruptedTTable corrupts one lane of a compiled GF(2^8)
// contribution table (on a copy — the original is shared with the live
// executor) and requires rejection with a witness computed through the
// corrupted entries, exactly as the executor would compute them.
func TestSeededDefectCorruptedTTable(t *testing.T) {
	p, err := BuildRijndael(validationKey(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res := validateMutated(t, p, func(tr *fastpath.Trace) bool {
		for ti := range tr.Period {
			for r := range tr.Period[ti].Rows {
				for c := range tr.Period[ti].Rows[r].Cells {
					steps := tr.Period[ti].Rows[r].Cells[c].Steps
					for si := range steps {
						if steps[si].GF == nil {
							continue
						}
						corrupted := *steps[si].GF
						for v := range corrupted[1] {
							corrupted[1][v] ^= 0x00010000
						}
						steps[si].GF = &corrupted
						return true
					}
				}
			}
		}
		return false
	})
	requireRejected(t, res)
	if res.Mism.Ref == res.Mism.FP {
		t.Errorf("corrupted-table mismatch renders both sides identically:\n  %s", res.Mism.Ref)
	}
}
