// Command cobra-vet statically verifies COBRA microcode (cobravet): the
// §3.4 conventions — instruction-window alignment, DISOUT/ENOUT bracketing
// of overfull reconfigurations, the ready/busy/data-valid protocol — plus
// control flow, dead code, and static range checks, without running the
// simulator.
//
// Usage:
//
//	cobra-vet -builtin              # lint every built-in Table 3 program
//	cobra-vet prog.casm             # lint an assembled source file
//	cobra-vet -window 4 prog.casm   # ...against an instruction window
//	cobra-vet -rows 8 prog.casm     # ...against a taller geometry
//	cobra-vet -dataflow -builtin    # ...plus the dataflow analyzers
//
// With -dataflow each program additionally runs package dataflow's abstract
// walk: uninitialized-read, dead-element/dead-store, key/plaintext taint,
// and static per-window timing, reported with the effective-gate-count
// summary.
//
// Exit status is 1 if any program produced a finding.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"cobra/internal/asm"
	"cobra/internal/bench"
	"cobra/internal/dataflow"
	"cobra/internal/isa"
	"cobra/internal/program"
	"cobra/internal/vet"
)

func main() {
	builtin := flag.Bool("builtin", false, "lint every built-in program (Table 3 sweep, decrypt, GOST, windowed Serpent, keyed Rijndael)")
	rows := flag.Int("rows", 4, "geometry rows for .casm files")
	window := flag.Int("window", 1, "instruction window size for .casm files")
	keyHex := flag.String("key", "000102030405060708090a0b0c0d0e0f", "key for the built-in builds (hex)")
	dflow := flag.Bool("dataflow", false, "also run the word-level dataflow analyzers (def-use, liveness, taint, static timing)")
	flag.Parse()

	if !*builtin && flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	dirty := false
	report := func(name string, fs []vet.Finding) {
		if len(fs) == 0 {
			fmt.Printf("%-24s clean\n", name)
			return
		}
		dirty = true
		for _, f := range fs {
			fmt.Printf("%s: %s\n", name, f)
		}
	}
	// reportFlow prints a program's dataflow result: findings (or "flow
	// clean"), then the gate and timing summary for closed walks.
	reportFlow := func(name string, res *dataflow.Result) {
		if len(res.Findings) == 0 {
			fmt.Printf("%-24s flow clean", name)
		} else {
			dirty = true
			fmt.Println()
			for _, f := range res.Findings {
				fmt.Printf("%s: %s\n", name, f)
			}
			fmt.Printf("%-24s", name)
		}
		if res.Complete && res.Outputs > 0 {
			fmt.Printf("  %d/%d elems live (%d/%d gates)",
				res.Gates.LiveElems, res.Gates.ConfiguredElems,
				res.Gates.LiveGates, res.Gates.ConfiguredGates)
			if res.Timing.Configs > 0 {
				fmt.Printf("  %.3f MHz over %d cfgs", res.Timing.DatapathMHz, res.Timing.Configs)
			}
		}
		fmt.Println()
	}

	if *builtin {
		key, err := hex.DecodeString(*keyHex)
		if err != nil {
			fatal(fmt.Errorf("bad -key: %v", err))
		}
		if len(key) == 0 {
			fatal(fmt.Errorf("bad -key: empty"))
		}
		for _, p := range builtins(key) {
			report(p.Name, p.Vet())
			if *dflow {
				reportFlow(p.Name, p.Analyze())
			}
		}
	}

	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		words, err := asm.Assemble(string(src))
		if err != nil {
			fatal(fmt.Errorf("%s: %v", path, err))
		}
		report(path, vet.CheckWords(words, vet.Config{Rows: *rows, Window: *window}))
		if *dflow {
			ins := make([]isa.Instr, len(words))
			for i, w := range words {
				in, err := isa.Unpack(w)
				if err != nil {
					fatal(fmt.Errorf("%s: word %d: %v", path, i, err))
				}
				ins[i] = in
			}
			reportFlow(path, dataflow.Analyze(ins, dataflow.Config{Rows: *rows, Window: *window}))
		}
	}

	if dirty {
		os.Exit(1)
	}
}

// builtins compiles every built-in program the repository ships.
func builtins(key []byte) []*program.Program {
	var progs []*program.Program
	add := func(p *program.Program, err error) {
		if err != nil {
			fatal(err)
		}
		progs = append(progs, p)
	}
	serpentDec := false
	for _, c := range bench.Configurations() {
		add(bench.Build(c, key))
		if c.Alg == "serpent" {
			// The Serpent decryptor is depth-independent; build it once.
			if serpentDec {
				continue
			}
			serpentDec = true
		}
		add(bench.BuildDecrypt(c, key))
	}
	for w := 2; w <= 16; w++ {
		add(program.BuildSerpentWindowed(key, w))
	}
	gostKey := make([]byte, 32) // GOST wants 256 bits; cycle the key bytes
	for i := range gostKey {
		gostKey[i] = key[i%len(key)]
	}
	add(program.BuildGOST(gostKey))
	add(program.BuildRijndaelKeyed())
	return progs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobra-vet:", err)
	os.Exit(1)
}
