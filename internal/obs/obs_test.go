package obs

import (
	"reflect"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "requests"); again != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	ctr := r.Counter("blocks_total", "blocks", L("mode", "ctr"))
	ecb := r.Counter("blocks_total", "blocks", L("mode", "ecb"))
	if ctr == ecb {
		t.Fatal("different label sets share a counter")
	}
	ctr.Add(3)
	ecb.Add(9)
	samples := r.Gather()
	if len(samples) != 2 {
		t.Fatalf("gathered %d samples, want 2", len(samples))
	}
	// Sorted by label signature: ctr before ecb.
	if samples[0].Value != 3 || samples[1].Value != 9 {
		t.Fatalf("sample values = %d, %d; want 3, 9", samples[0].Value, samples[1].Value)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 0, 1} // le=10: {1,10}; le=100: {11,100}; le=1000: {}; +Inf: {5000}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 5 || s.Sum != 1+10+11+100+5000 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	if !reflect.DeepEqual(got, []int64{1, 2, 4, 8, 16}) {
		t.Fatalf("ExpBuckets = %v", got)
	}
	// A stalling factor still yields strictly ascending bounds.
	got = ExpBuckets(1, 1.1, 4)
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("bounds not ascending: %v", got)
		}
	}
}

func TestAttachLabelsAndDetach(t *testing.T) {
	root := NewRegistry(L("app", "cobra"))
	dev := NewRegistry(L("alg", "rc6"))
	dev.Counter("cycles_total", "cycles").Add(42)
	root.Attach(dev, L("worker", "3"))

	samples := root.Gather()
	if len(samples) != 1 {
		t.Fatalf("gathered %d samples, want 1", len(samples))
	}
	wantLabels := []Label{{"app", "cobra"}, {"worker", "3"}, {"alg", "rc6"}}
	if !reflect.DeepEqual(samples[0].Labels, wantLabels) {
		t.Fatalf("labels = %v, want %v", samples[0].Labels, wantLabels)
	}
	root.Detach(dev)
	if n := len(root.Gather()); n != 0 {
		t.Fatalf("after detach: %d samples, want 0", n)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	depth := 3
	r.GaugeFunc("queue_depth", "", func() int64 { return int64(depth) })
	if got := r.Gather()[0].Value; got != 3 {
		t.Fatalf("gauge func value = %d, want 3", got)
	}
	depth = 9
	if got := r.Gather()[0].Value; got != 9 {
		t.Fatalf("gauge func value = %d, want 9", got)
	}
}

func TestRingWraps(t *testing.T) {
	ring := NewRing(3)
	for i := 1; i <= 5; i++ {
		ring.Add(SpanRecord{Name: "s", StartUnixNs: int64(i)})
	}
	recs := ring.Records()
	if len(recs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recs))
	}
	if recs[0].StartUnixNs != 3 || recs[2].StartUnixNs != 5 {
		t.Fatalf("ring order = %v", recs)
	}
}

func TestTimerAndTrace(t *testing.T) {
	r := NewRegistry()
	r.EnableTrace(8)
	tm := r.Timer("phase_ns", "phase duration")
	sp := tm.Start()
	sp.End()
	if got := tm.h.Count(); got != 1 {
		t.Fatalf("timer observations = %d, want 1", got)
	}
	if recs := r.TraceRecords(); len(recs) != 1 || recs[0].Name != "phase_ns" {
		t.Fatalf("trace records = %v", recs)
	}
	// A nil timer must be inert, so optional instrumentation needs no guards.
	var nilTimer *Timer
	nilTimer.Start().End()

	r.EnableTrace(0)
	tm.Start().End()
	if recs := r.TraceRecords(); len(recs) != 0 {
		t.Fatalf("trace disabled but recorded %v", recs)
	}
}

func TestConcurrentUpdatesAndGather(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n_total", "")
			h := r.Histogram("v", "", BlockBuckets())
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
				if j%100 == 0 {
					r.Gather()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}
