package program

import (
	"cobra/internal/cipher"
	"cobra/internal/datapath"
	"cobra/internal/isa"
)

// GOST 28147-89 on COBRA — a mapping beyond the paper's three evaluated
// ciphers, demonstrating the §3 claim that the architecture serves the
// wider studied set. GOST's round function is exactly one RCE row pair:
//
//	row T: B ADD INER          (n1 + k_i)
//	row U: C S8 + E2 ROTL 11 + A2 XOR  (S-boxes, <<<11, ^ n2);
//	       the Feistel swap comes free via INSEL role selection, with the
//	       untouched n1 recovered from the one-row bypass.
//
// GOST's eight distinct 4-bit S-boxes pair into four 8→8 tables (low and
// high nibble of each byte lane), which is precisely the C element's 8→8
// mode with per-lane banks — no paging needed.
//
// Because a GOST block is 64 bits, the 128-bit datapath processes TWO
// blocks per pass: block A in columns 0-1, block B in columns 2-3 — a
// throughput doubling unavailable to the 128-bit ciphers. The program
// therefore consumes 16-byte superblocks holding two consecutive 8-byte
// GOST blocks (little-endian words, matching cipher.GOST).
//
// The final round runs unswapped (the standard Feistel identity replacing
// the paper-protocol output swap), toggled as last-pass overhead.

// gostRoundRows emits one (swapped) GOST round for both parallel blocks at
// rows (rt, rt+1).
func (b *builder) gostRoundRows(rt int) {
	ru := rt + 1
	for _, base := range []int{0, 2} { // block A in cols 0-1, block B in 2-3
		// Row T: n1 + k in the even column; n2 passes in the odd one.
		b.cfge(isa.SliceAt(rt, base), isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcINER))
		// Row U: f() and the swap.
		cf := isa.SliceAt(ru, base)
		b.cfge(cf, isa.ElemC, isa.CCfg{Mode: isa.CS8x8}.Encode())
		b.cfge(cf, isa.ElemE2, eImm(isa.ERotl, 11))
		// n2 is the odd block: INB for column 0, IND for column 2.
		if base == 0 {
			b.cfge(cf, isa.ElemA2, aCfg(isa.AXor, isa.SrcINB))
		} else {
			b.cfge(cf, isa.ElemA2, aCfg(isa.AXor, isa.SrcIND))
		}
		// New n2 = old n1, recovered from the bypass bus.
		b.insel(ru, base+1, uint8(4+base)) // PA / PC
	}
}

// gostLastRoundToggle reconfigures the round at rows (rt, rt+1) to run
// unswapped: (n1, n2) → (n1, n2 ^ f(n1+k)). restore re-emits the swapped
// form.
func (b *builder) gostLastRoundToggle(rt int, restore bool) {
	ru := rt + 1
	if restore {
		b.gostRoundRows(rt)
		for _, base := range []int{0, 2} {
			// Clear the unswapped-round configuration of the odd columns.
			co := isa.SliceAt(ru, base+1)
			b.cfge(co, isa.ElemC, bypass)
			b.cfge(co, isa.ElemE2, bypass)
			b.cfge(co, isa.ElemA2, bypass)
			b.insel(ru, base, 0) // even column back to INA
		}
		return
	}
	for _, base := range []int{0, 2} {
		// Even column: pass the untouched n1 from the bypass.
		ce := isa.SliceAt(ru, base)
		b.cfge(ce, isa.ElemC, bypass)
		b.cfge(ce, isa.ElemE2, bypass)
		b.cfge(ce, isa.ElemA2, bypass)
		b.insel(ru, base, uint8(4+base)) // PA / PC
		// Odd column: n2 ^ f(n1+k); the sum arrives in the even block of
		// the row input, n2 is the column's own primary block.
		co := isa.SliceAt(ru, base+1)
		if base == 0 {
			b.insel(ru, base+1, 1) // col1's INB = block 0
		} else {
			b.insel(ru, base+1, 3) // col3's IND = block 2
		}
		b.cfge(co, isa.ElemC, isa.CCfg{Mode: isa.CS8x8}.Encode())
		b.cfge(co, isa.ElemE2, eImm(isa.ERotl, 11))
		b.cfge(co, isa.ElemA2, aCfg(isa.AXor, isa.SrcINA))
	}
}

// gostComposedTables pairs GOST's eight 4-bit S-boxes into the four 8→8
// byte-lane tables: lane L substitutes nibbles 2L (low) and 2L+1 (high).
func gostComposedTables(sbox [8][16]uint8) [4][256]uint8 {
	var out [4][256]uint8
	for lane := 0; lane < 4; lane++ {
		for v := 0; v < 256; v++ {
			lo := sbox[2*lane][v&0xf]
			hi := sbox[2*lane+1][v>>4]
			out[lane][v] = hi<<4 | lo
		}
	}
	return out
}

// BuildGOST compiles GOST 28147-89 encryption onto the base architecture:
// two rounds (for two parallel blocks) per pass, 16 passes per superblock.
func BuildGOST(key []byte) (*Program, error) {
	if _, err := cipher.NewGOST(key); err != nil {
		return nil, err
	}
	geo := datapath.BaseGeometry()
	p := &Program{
		Name:        "gost-2",
		Cipher:      "gost",
		HWRounds:    2,
		TotalRounds: 32,
		Geometry:    geo,
		Window:      1,
	}
	b := &builder{}
	b.disout()

	tables := gostComposedTables(cipher.GOSTTestSBox)
	for bank := 0; bank < 4; bank++ {
		b.loadS8(isa.SliceAll(), bank, &tables[bank])
	}
	b.gostRoundRows(0)
	b.gostRoundRows(2)

	// Keys: address i holds the round-i subkey in the even columns (the two
	// parallel blocks share the schedule). Only the even columns compute
	// n1 + k, so only their eRAMs need the schedule — the dataflow analysis
	// flags stores into columns 1 and 3 as dead.
	var kw [8]uint32
	for i := 0; i < 8; i++ {
		kw[i] = uint32(key[4*i]) | uint32(key[4*i+1])<<8 |
			uint32(key[4*i+2])<<16 | uint32(key[4*i+3])<<24
	}
	for i := 0; i < 32; i++ {
		k := kw[gostKeyIndex(i)]
		for c := 0; c < 4; c += 2 {
			b.eramw(c, 0, i, k)
		}
	}
	b.regRow(1, true) // two stages per pass

	const passes = 16
	b.iterativeFlow(2, passes, iterHooks{
		LastPass: func(b *builder) {
			b.gostLastRoundToggle(2, false)
		},
		EveryPass: func(b *builder, pass int) {
			b.erRow(0, 0, 2*pass)
			b.erRow(2, 0, 2*pass+1)
		},
		Epilogue: func(b *builder) {
			b.gostLastRoundToggle(2, true)
		},
	})
	p.Instrs = b.ins
	return p, nil
}

// gostKeyIndex mirrors the encryption key order: three forward walks, one
// backward.
func gostKeyIndex(r int) int {
	if r < 24 {
		return r % 8
	}
	return 7 - r%8
}
