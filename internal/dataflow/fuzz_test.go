package dataflow_test

import (
	"testing"

	"cobra/internal/bits"
	"cobra/internal/dataflow"
	"cobra/internal/datapath"
	"cobra/internal/isa"
	"cobra/internal/sim"
)

// genProgram derives a sanitized straight-line COBRA program from fuzz
// bytes: a ready-raise prefix, then a body of configuration, store, flag
// and capture instructions (no jumps, so both engines terminate at the
// trailing HALT). Sanitizing keeps the program fault-free — rows in range,
// the multiplier only on RCE MUL columns, LUT groups within their space —
// so any divergence between the engines is a modelling bug, not a
// differently-handled fault.
func genProgram(data []byte) ([]isa.Instr, int) {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	window := 1 + int(next())%4

	prog := []isa.Instr{{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagReady}.Encode()}}
	for len(data) >= 2 && len(prog) < 200 {
		op := next()
		sl := isa.Slice{Scope: isa.Scope(next() & 3), Row: next() & 3, Col: next() & 3}
		d := uint64(next()) | uint64(next())<<8 | uint64(next())<<16 |
			uint64(next())<<24 | uint64(next())<<32 | uint64(next())<<40
		d &= 1<<50 - 1
		var in isa.Instr
		switch op % 10 {
		case 0:
			in = isa.Instr{Op: isa.OpNop}
		case 1:
			elem := isa.Elem(next() % 13)
			if elem == isa.ElemD && sl.Scope == isa.ScopeOne {
				sl.Col |= 1 // the multiplier exists only on columns 1 and 3
			}
			in = isa.Instr{Op: isa.OpCfgElem, Slice: sl, Elem: elem, Data: d}
		case 2:
			space4 := next()&1 == 1
			group := int(next())
			if space4 {
				group &= 0xf
			} else {
				group &= 0x3f
			}
			in = isa.Instr{Op: isa.OpLoadLUT, Slice: sl,
				LUT: isa.LUTAddr(space4, int(next()&3), group), Data: d}
		case 3:
			sl.Row &= 1 // base geometry has two shufflers
			in = isa.Instr{Op: isa.OpCfgShuf, Slice: sl, Data: d}
		case 4:
			in = isa.Instr{Op: isa.OpCfgInMux, Slice: sl, Data: d}
		case 5:
			in = isa.Instr{Op: isa.OpCfgWhite, Slice: sl, Data: d}
		case 6:
			in = isa.Instr{Op: isa.OpERAMWrite, Slice: sl, Data: d}
		case 7:
			in = isa.Instr{Op: isa.OpCfgCapture, Slice: sl, Data: d}
		case 8:
			// Flags without a ready-raise: a mid-body idle point would stop
			// the simulator's bulk run where the abstract walk continues.
			cfg := isa.DecodeFlag(d)
			cfg.Set &^= isa.FlagReady
			in = isa.Instr{Op: isa.OpCtlFlag, Data: cfg.Encode()}
		default:
			if next()&1 == 0 {
				in = isa.Instr{Op: isa.OpEnOut, Slice: sl}
			} else {
				in = isa.Instr{Op: isa.OpDisOut, Slice: sl}
			}
		}
		prog = append(prog, in)
	}
	prog = append(prog, isa.Instr{Op: isa.OpHalt})
	return prog, window
}

// FuzzDataflowVsSim cross-checks the static uninitialized-read analysis
// against the datapath's dynamic read-before-write sentinel: for random
// sanitized programs, the set of never-written eRAM cells the abstract walk
// claims are consumed must equal the set the simulator's armed sentinel
// records — in both directions. Run via `go test -fuzz=FuzzDataflowVsSim`;
// CI runs a short smoke.
func FuzzDataflowVsSim(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0, 12, 0, 0, 0, 0, 0})
	// An INER-consuming A1 with an unwritten ER target, then a store.
	f.Add([]byte{2,
		1, 0, 0, 0, 0x41, 0, 0, 0, 0, 0, 2,
		1, 0, 0, 0, 0x05, 0, 0, 0, 0, 0, 12,
		6, 0, 0, 1, 0x04, 0, 0x10, 0, 0, 0,
		4, 0, 0, 0, 0x02, 0, 0, 0, 0, 0,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, window := genProgram(data)

		res := dataflow.Analyze(prog, dataflow.Config{Window: window})
		if !res.Complete {
			t.Fatalf("straight-line program did not complete: %v", res.Findings)
		}
		for _, fd := range res.Findings {
			if fd.Code == "exec-fault" {
				t.Fatalf("sanitized program faulted statically: %s", fd)
			}
		}

		m, err := sim.New(datapath.BaseGeometry(), window)
		if err != nil {
			t.Fatal(err)
		}
		m.Array.TrackUninit()
		words := make([]isa.Word, len(prog))
		for i, in := range prog {
			words[i] = in.Pack()
		}
		if err := m.LoadProgram(words); err != nil {
			t.Fatal(err)
		}
		m.Go = false
		if r, err := m.Run(sim.Limits{}); err != nil {
			t.Fatalf("setup run: %v", err)
		} else if r != sim.StopWaitGo {
			t.Fatalf("setup run stopped with %v, want idle", r)
		}
		// More blocks than the body can consume: the abstract walk assumes
		// external input is always available after the first idle point.
		blocks := make([]bits.Block128, 256)
		for i := range blocks {
			blocks[i] = bits.Block128{uint32(i), ^uint32(i), uint32(i) * 7, 0xabad1dea}
		}
		m.PushInput(blocks...)
		m.Go = true
		if r, err := m.Run(sim.Limits{}); err != nil {
			t.Fatalf("bulk run: %v", err)
		} else if r != sim.StopHalted {
			t.Fatalf("bulk run stopped with %v, want halt", r)
		}

		dyn := m.Array.UninitReads()
		if len(dyn) != len(res.UninitReads) {
			t.Fatalf("uninit sets differ: static %v, dynamic %v", res.UninitReads, dyn)
		}
		for i := range dyn {
			if dyn[i] != res.UninitReads[i] {
				t.Fatalf("uninit sets differ at %d: static %v, dynamic %v",
					i, res.UninitReads, dyn)
			}
		}
	})
}
