package program

import (
	"testing"

	"cobra/internal/asm"
	"cobra/internal/cipher"
	"cobra/internal/isa"
)

// allPrograms builds every encryption and decryption configuration of the
// evaluation sweep.
func allPrograms(t *testing.T) []*Program {
	t.Helper()
	var out []*Program
	add := func(p *Program, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	for _, hw := range []int{1, 2, 4, 5, 10, 20} {
		add(BuildRC6(testKey, hw, cipher.RC6Rounds))
		add(BuildRC6Decrypt(testKey, hw, cipher.RC6Rounds))
	}
	for _, hw := range []int{1, 2, 5, 10} {
		add(BuildRijndael(testKey, hw))
		add(BuildRijndaelDecrypt(testKey, hw))
	}
	for _, hw := range []int{1, 2, 4, 8, 16, 32} {
		add(BuildSerpent(testKey, hw))
	}
	add(BuildSerpentDecrypt(testKey))
	for _, hw := range []int{1, 2, 3, 4, 6, 12} {
		add(BuildRC5(testKey, hw, cipher.RC5Rounds))
		add(BuildRC5Decrypt(testKey, hw, cipher.RC5Rounds))
	}
	for _, hw := range []int{1, 2, 4, 8, 16, 32} {
		add(BuildTEA(testKey, hw))
		add(BuildTEADecrypt(testKey, hw))
	}
	for _, hw := range []int{1, 2, 4, 11, 22, 44} {
		add(BuildSIMON(testKey, hw))
		add(BuildSIMONDecrypt(testKey, hw))
	}
	for _, hw := range []int{1, 2} {
		add(BuildBlowfish(testKey, hw))
		add(BuildBlowfishDecrypt(testKey, hw))
	}
	add(BuildDES(testKey[:8]))
	add(BuildDESDecrypt(testKey[:8]))
	return out
}

// TestAllProgramsDisassembleRoundTrip disassembles every real cipher
// program and reassembles it: the result must be word-for-word identical
// microcode. This exercises the full assembler surface against production
// programs, not just synthetic statements.
func TestAllProgramsDisassembleRoundTrip(t *testing.T) {
	for _, p := range allPrograms(t) {
		words := p.Words()
		text, err := asm.Disassemble(words)
		if err != nil {
			t.Fatalf("%s: disassemble: %v", p.Name, err)
		}
		back, err := asm.Assemble(text)
		if err != nil {
			t.Fatalf("%s: reassemble: %v", p.Name, err)
		}
		if len(back) != len(words) {
			t.Fatalf("%s: length %d != %d", p.Name, len(back), len(words))
		}
		for i := range words {
			if words[i] != back[i] {
				in1, _ := isa.Unpack(words[i])
				in2, _ := isa.Unpack(back[i])
				t.Fatalf("%s: word %d differs:\n  %v\n  %v", p.Name, i, in1, in2)
			}
		}
	}
}

// TestAllProgramsFitIRAMAndValidate checks every configuration loads into
// the 4096-word iRAM and that every instruction decodes.
func TestAllProgramsFitIRAMAndValidate(t *testing.T) {
	for _, p := range allPrograms(t) {
		if len(p.Instrs) > isa.IRAMWords {
			t.Errorf("%s: %d instructions exceed the iRAM", p.Name, len(p.Instrs))
		}
		for i, in := range p.Instrs {
			if _, err := isa.Unpack(in.Pack()); err != nil {
				t.Errorf("%s: instruction %d invalid: %v", p.Name, i, err)
			}
		}
		if err := p.Geometry.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// TestProgramsLoadOnMatchingMachines loads every configuration to the idle
// point — a smoke test that every setup phase executes cleanly.
func TestProgramsLoadOnMatchingMachines(t *testing.T) {
	for _, p := range allPrograms(t) {
		m, err := NewMachine(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := Load(m, p); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}
