package farm

import (
	"encoding/json"
	"testing"

	"cobra/internal/core"
	"cobra/internal/sim"
)

// TestFarmReportJSONGolden pins the farm report wire format (the shared
// core.Summary embed plus the farm-only breakdown). Changing this golden
// string is an API break — do it deliberately.
func TestFarmReportJSONGolden(t *testing.T) {
	r := Report{
		Summary: core.Summary{
			Algorithm:      core.Rijndael,
			Backend:        "farm",
			Workers:        2,
			Unroll:         10,
			Rows:           8,
			Stats:          sim.Stats{Cycles: 40, Advanced: 40, Instructions: 30, BlocksIn: 6, BlocksOut: 6},
			CyclesPerBlock: 6.5,
			DatapathMHz:    25,
			ThroughputMbps: 960,
		},
		PerWorker: []WorkerReport{
			{Jobs: 2, BusyNs: 1500, Stats: sim.Stats{Cycles: 20, Advanced: 20, Instructions: 15, BlocksIn: 3, BlocksOut: 3}},
			{Jobs: 1, BusyNs: 900, Stats: sim.Stats{Cycles: 20, Advanced: 20, Instructions: 15, BlocksIn: 3, BlocksOut: 3}},
		},
		WallCycles:    20,
		EffectiveMbps: 960,
	}
	got, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"algorithm":"rijndael","backend":"farm","workers":2,"unroll":10,"rows":8,` +
		`"stats":{"cycles":40,"advanced":40,"stalled":0,"instructions":30,"nops":0,` +
		`"blocks_in":6,"blocks_out":6},"cycles_per_block":6.5,"datapath_mhz":25,` +
		`"throughput_mbps":960,"per_worker":[` +
		`{"jobs":2,"busy_ns":1500,"stats":{"cycles":20,"advanced":20,"stalled":0,` +
		`"instructions":15,"nops":0,"blocks_in":3,"blocks_out":3}},` +
		`{"jobs":1,"busy_ns":900,"stats":{"cycles":20,"advanced":20,"stalled":0,` +
		`"instructions":15,"nops":0,"blocks_in":3,"blocks_out":3}}],` +
		`"wall_cycles":20,"effective_mbps":960}`
	if string(got) != want {
		t.Errorf("farm report JSON drifted:\n got %s\nwant %s", got, want)
	}
}
