// Package model provides the timing and area models of the COBRA
// evaluation (§4.1–4.2): a static timing analyzer that derives the maximum
// datapath clock frequency from the configured element chains (standing in
// for the paper's Synopsys timing analysis of the 0.35 µm netlist), a gate
// count model reproducing Tables 4 and 5, and the cycle-gates product of
// Table 6.
package model

import (
	"cobra/internal/datapath"
	"cobra/internal/isa"
	"cobra/internal/rce"
)

// Delays are per-element combinational delays in nanoseconds. The defaults
// are calibrated so that the three §4.1 cipher configurations reproduce the
// paper's reported datapath frequencies (60.975, 102.041 and 54.054 MHz)
// to within a few percent — see EXPERIMENTS.md for paper-vs-model values —
// while keeping physically sensible ratios (the 32×32 multiplier dominates,
// LUT reads cost roughly an adder plus decode, Boolean gates are cheap).
type Delays struct {
	E         float64 // barrel shifter / rotator
	A         float64 // Boolean unit
	APreShift float64 // extra for the A2 operand pre-shifter
	B         float64 // adder/subtractor
	C8        float64 // 256×8 LUT read (8→8 and 8→32 modes)
	C4        float64 // 128×4 LUT read with page decode
	D         float64 // 32×32 multiplier (mod 2^16/2^32, square)
	FLanes    float64 // GF(2^8) per-lane constant multiplier
	FMDS      float64 // GF(2^8) circulant matrix mode
	RowMux    float64 // per-row operand/bypass multiplexing overhead
	Shuffler  float64 // byte shuffler crossing
	Reg       float64 // register setup + clock-to-Q
	InputPath float64 // feedback/input multiplexor + input whitening
	Whiten    float64 // output whitening stage
}

// DefaultDelays is the calibrated 0.35 µm delay set.
func DefaultDelays() Delays {
	return Delays{
		E:         1.20,
		A:         1.00,
		APreShift: 0.60,
		B:         2.00,
		C8:        2.90,
		C4:        2.90,
		D:         5.50,
		FLanes:    2.20,
		FMDS:      2.60,
		RowMux:    0.70,
		Shuffler:  0.60,
		Reg:       0.40,
		InputPath: 0.50,
		Whiten:    0.90,
	}
}

// rceDelay sums the enabled elements of one RCE plus the row overhead.
func (d Delays) rceDelay(r *rce.RCE) float64 {
	t := d.RowMux
	for _, e := range r.ActiveElements() {
		switch e {
		case isa.ElemInsel:
			// INSEL shares the row multiplexing overhead.
		case isa.ElemE1, isa.ElemE2, isa.ElemE3:
			t += d.E
		case isa.ElemA1:
			t += d.A
		case isa.ElemA2:
			t += d.A
			if r.Cfg.A2.PreShift != 0 {
				t += d.APreShift
			}
		case isa.ElemB:
			t += d.B
		case isa.ElemC:
			if r.Cfg.C.Mode == isa.CS4x4 {
				t += d.C4
			} else {
				t += d.C8
			}
		case isa.ElemD:
			t += d.D
		case isa.ElemF:
			if r.Cfg.F.Mode == isa.FMDS {
				t += d.FMDS
			} else {
				t += d.FLanes
			}
		case isa.ElemReg:
			// Register setup is added once per segment cut.
		}
	}
	return t
}

// Timing is the result of static timing analysis of a configured array.
type Timing struct {
	// CriticalPathNs is the longest register-to-register path.
	CriticalPathNs float64
	// DatapathMHz is the maximum datapath clock frequency.
	DatapathMHz float64
	// IRAMMHz is the iRAM clock: twice the datapath frequency (§3.4),
	// since loading and executing one instruction takes two iRAM cycles.
	IRAMMHz float64
	// Segments lists each pipeline segment's path in row order.
	Segments []float64
}

// Analyze performs static timing analysis on a configured array: rows are
// walked top to bottom accumulating combinational delay, with the arrival
// time at each row taken as the worst arrival across columns — every RCE
// receives the full 128-bit stream, so any column's output can feed any
// column of the next row. Rows whose RCEs have their output registers
// enabled cut the path (the round-atomic pipelining of §4.1). The first
// segment carries the input-path delay and the last the whitening stage,
// matching the paper's worst-case analysis across operating functions.
func Analyze(a *datapath.Array, d Delays) Timing {
	rows := a.Geometry().Rows
	var segments []float64
	arrival := d.InputPath
	for r := 0; r < rows; r++ {
		if r%2 == 1 {
			arrival += d.Shuffler
		}
		regRow := false
		worst := 0.0
		for c := 0; c < datapath.Cols; c++ {
			el := a.RCE(r, c)
			if dl := d.rceDelay(el); dl > worst {
				worst = dl
			}
			if el.Cfg.Reg.Enabled {
				regRow = true
			}
		}
		arrival += worst
		if regRow {
			segments = append(segments, arrival+d.Reg)
			arrival = 0
		}
	}
	// Final combinational segment through whitening back to the feedback
	// multiplexor / output bus.
	segments = append(segments, arrival+d.Whiten+d.Reg)

	crit := 0.0
	for _, s := range segments {
		if s > crit {
			crit = s
		}
	}
	mhz := 1000.0 / crit
	return Timing{
		CriticalPathNs: crit,
		DatapathMHz:    mhz,
		IRAMMHz:        2 * mhz,
		Segments:       segments,
	}
}

// ThroughputMbps converts a cycles-per-block measurement at the analyzed
// frequency into the Table 3 throughput metric (128-bit blocks).
func (t Timing) ThroughputMbps(cyclesPerBlock float64) float64 {
	if cyclesPerBlock <= 0 {
		return 0
	}
	return t.DatapathMHz * 128 / cyclesPerBlock
}
