// Package vet statically verifies COBRA microcode (cobravet).
//
// §3.4 of the paper leaves the hardest parts of COBRA programming to
// convention: "the programmer must determine the optimal number of
// instructions that must be executed within a datapath clock cycle by
// examining the number of overfull and underfull instruction cycles",
// must bracket overfull reconfigurations with DISOUT/ENOUT, and must
// drive the ready/busy/data-valid protocol by hand. A mistake in any of
// these surfaces as silently wrong ciphertext at simulation time.
//
// This package analyses a decoded program without executing the datapath.
// COBRA control flow is deterministic — OpJmp is unconditional and the
// ready-flag idle point only pauses the sequencer without branching — so
// a program's instruction trace is a single path: a straight line from
// address 0 into a terminating HALT or a steady-state loop. Check walks
// that path with a small abstract machine state (window phase, global
// output enable, flag register, pending data-valid, reconfiguration-run
// tracking) and verifies:
//
//   - control flow: in-bounds JMP targets, no fall off the end of the
//     iRAM image, unreachable (dead) code, and that every steady-state
//     loop makes datapath progress (a loop that re-raises ready without
//     ever completing an instruction window would spin the sequencer
//     forever once go is asserted — the simulator's cycle budget counts
//     datapath cycles, so it cannot interrupt such a loop);
//   - instruction-window alignment: every revisited address executes at
//     a consistent slot phase. The ready flag resynchronizes the window
//     (§3.4), so alignment is checked relative to the idle points;
//     underfull NOP padding that drifts the phase between joins is the
//     defect this catches;
//   - reconfiguration discipline: a multi-instruction structural
//     reconfiguration must not be split by a datapath clock cycle while
//     outputs are enabled — the cycle would latch a half-applied
//     configuration. Splitting is legal inside a DISOUT/ENOUT bracket
//     (the §3.4 overfull idiom) and single configuration words that fit
//     their window are legal anywhere (the §3.4 instruction-window
//     idiom);
//   - flag protocol: data-valid must not be raised and then cleared (or
//     abandoned at an idle point) before an output-enabled datapath
//     cycle has presented the output; data-valid should not be left set
//     when ready is raised; no datapath cycle should fire with ready
//     still set;
//   - static ranges and conflicts: slice rows against the geometry,
//     shuffler indices, 4→4 LUT groups, multiplier configuration on
//     columns without an RCE MUL, conflicting same-element writes inside
//     one instruction window, and INER reads with no ER configuration
//     anywhere in the program.
//
// Findings carry a severity, the iRAM address, and the disassembled
// source line; package program wires this up as Program.Vet and the
// cobra-vet command lints the built-in Table 3 configurations and
// assembled .casm files.
package vet

import (
	"fmt"
	"sort"

	"cobra/internal/asm"
	"cobra/internal/datapath"
	"cobra/internal/isa"
)

// Severity classifies a finding.
type Severity uint8

const (
	// Warn marks protocol smells and dead code: the program simulates,
	// but not the way its author probably intended.
	Warn Severity = iota
	// Error marks defects that make the simulator fail, hang, or produce
	// wrong or lost output.
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one diagnostic: what, how bad, and where.
type Finding struct {
	// Addr is the iRAM address of the offending instruction.
	Addr int
	// Sev is the severity.
	Sev Severity
	// Code is a stable machine-readable identifier, e.g. "window-misalign".
	Code string
	// Msg is the human-readable explanation.
	Msg string
	// Line is the instruction's canonical disassembly.
	Line string
}

// String renders the finding in the cobra-vet output format.
func (f Finding) String() string {
	return fmt.Sprintf("%04x: %s: %s: %s [%s]", f.Addr, f.Sev, f.Code, f.Msg, f.Line)
}

// Config describes the machine the program targets.
type Config struct {
	// Rows is the datapath row count (0: the base 4×4 geometry).
	Rows int
	// Window is the instruction window size w (0: 1).
	Window int
}

func (c Config) normalized() Config {
	if c.Rows == 0 {
		c.Rows = datapath.BaseRows
	}
	if c.Window == 0 {
		c.Window = 1
	}
	return c
}

// maxWalkSteps bounds the abstract walk. The walk terminates on its own
// when the machine state repeats (the state space is finite), but a
// pathological program could thread many distinct flag states through a
// long loop; the cap turns that into a diagnostic instead of a stall.
const maxWalkSteps = 1 << 21

// CheckWords unpacks a packed image and checks it. Words that fail to
// decode become findings (code "decode") rather than errors, so corrupted
// images still produce a per-address report.
func CheckWords(words []isa.Word, cfg Config) []Finding {
	prog := make([]isa.Instr, 0, len(words))
	var fs []Finding
	for i, w := range words {
		in, err := isa.Unpack(w)
		if err != nil {
			fs = append(fs, Finding{Addr: i, Sev: Error, Code: "decode",
				Msg: err.Error(), Line: in.String()})
			in = isa.Instr{Op: isa.OpNop} // keep addresses aligned
		}
		prog = append(prog, in)
	}
	if len(fs) > 0 {
		// The image is corrupt; path-sensitive analysis of the patched
		// program would mislead more than help.
		return fs
	}
	return Check(prog, cfg)
}

// Check runs every analysis over a decoded program and returns the
// findings sorted by address. A clean program returns nil.
func Check(prog []isa.Instr, cfg Config) []Finding {
	cfg = cfg.normalized()
	c := &checker{prog: prog, cfg: cfg, seen: make(map[string]bool)}
	if len(prog) == 0 {
		c.add(0, Error, "empty", "program has no instructions")
		return c.findings
	}
	if len(prog) > isa.IRAMWords {
		c.add(0, Error, "iram-capacity",
			fmt.Sprintf("program of %d instructions exceeds iRAM capacity %d",
				len(prog), isa.IRAMWords))
	}
	c.staticChecks()
	c.checkINER()
	reached := c.walk()
	c.deadCode(reached)
	sort.Slice(c.findings, func(i, j int) bool {
		a, b := c.findings[i], c.findings[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Code < b.Code
	})
	return c.findings
}

type checker struct {
	prog     []isa.Instr
	cfg      Config
	findings []Finding
	seen     map[string]bool // dedup key: code@addr
}

// add records a finding once per (code, address).
func (c *checker) add(addr int, sev Severity, code, msg string) {
	key := fmt.Sprintf("%s@%d", code, addr)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	var line string
	if addr >= 0 && addr < len(c.prog) {
		line = asm.Line(c.prog[addr])
	}
	c.findings = append(c.findings, Finding{Addr: addr, Sev: sev, Code: code, Msg: msg, Line: line})
}

// readySet reports whether the instruction raises the ready flag — the
// §3.4 idle point, which resynchronizes the instruction window.
func readySet(in isa.Instr) bool {
	return in.Op == isa.OpCtlFlag && isa.DecodeFlag(in.Data).Set&isa.FlagReady != 0
}

// structural reports whether the instruction changes the shape of the
// computation the next datapath cycle performs. Data-plane updates that
// the cipher mappings legitimately perform between enabled cycles —
// eRAM read-address walks (CFGE ER), eRAM writes, the input multiplexor,
// and flag traffic — are excluded: §3.4's per-pass key address walk and
// the feedback switch are single-word, window-fitting updates by design.
func structural(in isa.Instr) bool {
	switch in.Op {
	case isa.OpLoadLUT, isa.OpCfgShuf, isa.OpCfgWhite, isa.OpCfgCapture:
		return true
	case isa.OpCfgElem:
		return in.Elem != isa.ElemER
	}
	return false
}

// rowScoped reports whether the slice's row field addresses a row (and is
// therefore subject to the geometry bound). ScopeCol broadcasts down a
// column and ScopeAll over the array; both ignore the row field.
func rowScoped(s isa.Slice) bool {
	return s.Scope == isa.ScopeOne || s.Scope == isa.ScopeRow
}

// slicesOverlap reports whether two slice addresses share at least one RCE.
func slicesOverlap(a, b isa.Slice) bool {
	rowsAgree := !rowScoped(a) || !rowScoped(b) || a.Row == b.Row
	colScoped := func(s isa.Slice) bool {
		return s.Scope == isa.ScopeOne || s.Scope == isa.ScopeCol
	}
	colsAgree := !colScoped(a) || !colScoped(b) || a.Col == b.Col
	return rowsAgree && colsAgree
}

// staticChecks validates every instruction in isolation: field ranges the
// simulator rejects at execution time, plus JMP targets, which the
// hardened iRAM loader rejects at load time.
func (c *checker) staticChecks() {
	rows := c.cfg.Rows
	for addr, in := range c.prog {
		switch in.Op {
		case isa.OpJmp:
			if in.Data&^uint64(0xfff) != 0 {
				c.add(addr, Warn, "jmp-wide",
					fmt.Sprintf("JMP data %#x exceeds the 12-bit address field; the sequencer jumps to %#x",
						in.Data, in.Data&0xfff))
			}
			if t := int(in.Data & 0xfff); t >= len(c.prog) {
				c.add(addr, Error, "jmp-range",
					fmt.Sprintf("jump target %#x outside program of %d instructions", t, len(c.prog)))
			}
		case isa.OpCfgElem:
			if rowScoped(in.Slice) && int(in.Slice.Row) >= rows {
				c.add(addr, Error, "slice-range",
					fmt.Sprintf("slice row %d out of range (rows=%d)", in.Slice.Row, rows))
			}
			if in.Elem == isa.ElemD && in.Slice.Scope == isa.ScopeOne &&
				!datapath.MulColumn(int(in.Slice.Col)) {
				c.add(addr, Error, "mul-column",
					fmt.Sprintf("D element configured on r%d.c%d, but column %d has no RCE MUL",
						in.Slice.Row, in.Slice.Col, in.Slice.Col))
			}
		case isa.OpEnOut, isa.OpDisOut:
			if rowScoped(in.Slice) && int(in.Slice.Row) >= rows {
				c.add(addr, Error, "slice-range",
					fmt.Sprintf("slice row %d out of range (rows=%d)", in.Slice.Row, rows))
			}
		case isa.OpLoadLUT:
			if rowScoped(in.Slice) && int(in.Slice.Row) >= rows {
				c.add(addr, Error, "slice-range",
					fmt.Sprintf("slice row %d out of range (rows=%d)", in.Slice.Row, rows))
			}
			if space4, _, group := isa.SplitLUTAddr(in.LUT); space4 && group > 15 {
				c.add(addr, Error, "lut-range",
					fmt.Sprintf("4→4 LUT group %d out of range (16 nibble groups per bank)", group))
			}
		case isa.OpCfgShuf:
			if n := rows / 2; int(in.Slice.Row) >= n {
				c.add(addr, Error, "slice-range",
					fmt.Sprintf("shuffler %d out of range (rows=%d have %d shufflers)",
						in.Slice.Row, rows, n))
			}
		}
	}
}

// operandSrc extracts the secondary-operand source an element
// configuration actually consumes, if any.
func operandSrc(in isa.Instr) (isa.Src, bool) {
	if in.Op != isa.OpCfgElem {
		return 0, false
	}
	return isa.ElemOperand(in.Elem, in.Data)
}

// checkINER flags RCEs that are configured to read the embedded-RAM port
// (a SrcINER operand) without any CFGE ER anywhere in the program
// presenting a word on that port. The analysis is whole-program and
// flow-insensitive: the cipher mappings configure the read port in
// per-pass hooks far from the element configuration, so "configured
// anywhere" is the faithful contract. Cells are enumerated concretely —
// broadcast D configurations skip non-MUL columns exactly as the
// datapath does.
func (c *checker) checkINER() {
	rows := c.cfg.Rows
	type cell struct{ r, col int }
	erConfigured := make(map[cell]bool)
	forEach := func(s isa.Slice, skipPlainD bool, f func(cell)) {
		visit := func(r, col int) {
			if skipPlainD && !datapath.MulColumn(col) && s.Scope != isa.ScopeOne {
				return
			}
			f(cell{r, col})
		}
		switch s.Scope {
		case isa.ScopeOne:
			visit(int(s.Row), int(s.Col))
		case isa.ScopeCol:
			for r := 0; r < rows; r++ {
				visit(r, int(s.Col))
			}
		case isa.ScopeRow:
			for col := 0; col < datapath.Cols; col++ {
				visit(int(s.Row), col)
			}
		default:
			for r := 0; r < rows; r++ {
				for col := 0; col < datapath.Cols; col++ {
					visit(r, col)
				}
			}
		}
	}
	for _, in := range c.prog {
		if in.Op == isa.OpCfgElem && in.Elem == isa.ElemER {
			forEach(in.Slice, false, func(cl cell) { erConfigured[cl] = true })
		}
	}
	for addr, in := range c.prog {
		src, active := operandSrc(in)
		if !active || src != isa.SrcINER {
			continue
		}
		if rowScoped(in.Slice) && int(in.Slice.Row) >= rows {
			continue // already a slice-range error
		}
		forEach(in.Slice, in.Elem == isa.ElemD, func(cl cell) {
			if !erConfigured[cl] {
				c.add(addr, Warn, "iner-unconfigured",
					fmt.Sprintf("r%d.c%d %s reads INER, but no CFGE ER in the program targets that RCE",
						cl.r, cl.col, in.Elem))
			}
		})
	}
}

// walkState is the abstract machine state at one point of the trace. It
// is comparable: the walk terminates when an exact state repeats.
type walkState struct {
	pc      int
	phase   int    // instruction slots into the current window
	enabled bool   // global datapath output enable (DISOUT/ENOUT all)
	flags   uint16 // the sequencer flag register

	// pending data-valid: the address that raised DVALID, or -1. It is
	// served by the first output-enabled datapath cycle; losing it first
	// (clearing DVALID, or idling at ready) means the block the flag
	// announced is never collected.
	pendAddr int

	// structural reconfiguration run: address of the immediately
	// preceding structural configuration word (-1 if the previous
	// instruction was anything else) and whether a datapath cycle fired
	// since it executed.
	armAddr   int
	armTicked bool
}

// cfgWrite records one CFGE inside the current instruction window for the
// conflicting-write check.
type cfgWrite struct {
	addr  int
	slice isa.Slice
	elem  isa.Elem
	data  uint64
}

// walk traces the program's (deterministic) execution path from address 0,
// mirroring the sim.Machine.Run semantics exactly: one slot per fetched
// instruction, a datapath cycle when the slot count reaches the window
// size, and a slot reset without a cycle at every ready-raise. It returns
// the set of reached addresses.
func (c *checker) walk() []bool {
	w := c.cfg.Window
	reached := make([]bool, len(c.prog))
	// firstPhase records the window phase each address was first executed
	// at; a later visit at a different phase is a misaligned join.
	firstPhase := make(map[int]int)
	type visit struct{ ticks int }
	memo := make(map[walkState]visit)
	var window []cfgWrite

	endWindow := func() { window = window[:0] }

	st := walkState{pendAddr: -1, armAddr: -1}
	ticks := 0
	for steps := 0; ; steps++ {
		if steps >= maxWalkSteps {
			c.add(st.pc, Warn, "walk-budget",
				"analysis budget exhausted before the execution path repeated; later path-sensitive findings may be incomplete")
			break
		}
		if st.pc >= len(c.prog) {
			c.add(len(c.prog)-1, Error, "fall-off-end",
				"execution runs past the end of the program; the paper's programs end in a jump back to the idle point or a halt")
			break
		}
		addr := st.pc
		in := c.prog[addr]
		reached[addr] = true

		if p, ok := firstPhase[st.pc]; ok {
			if p != st.phase && !readySet(in) {
				c.add(st.pc, Error, "window-misalign",
					fmt.Sprintf("address executes at window slot %d here but slot %d on another path; underfull windows need NOP padding to keep every join phase-consistent (§3.4)",
						st.phase, p))
			}
		} else {
			firstPhase[st.pc] = st.phase
		}

		if v, ok := memo[st]; ok {
			if v.ticks == ticks {
				c.add(st.pc, Error, "no-progress-loop",
					"steady-state loop completes no instruction window: with go asserted the sequencer spins forever without a datapath cycle")
			}
			break // exact state repeat: the trace is periodic from here on
		}
		memo[st] = visit{ticks: ticks}

		// --- execute -----------------------------------------------------
		halt := false
		jumped := false
		isReady := false
		switch in.Op {
		case isa.OpHalt:
			halt = true
		case isa.OpJmp:
			t := int(in.Data & 0xfff)
			if t >= len(c.prog) {
				halt = true // jmp-range already reported; the sim would fault here
			} else {
				st.pc = t
				jumped = true
			}
		case isa.OpEnOut:
			if in.Slice.Scope == isa.ScopeAll {
				st.enabled = true
			}
		case isa.OpDisOut:
			if in.Slice.Scope == isa.ScopeAll {
				st.enabled = false
			}
		case isa.OpCtlFlag:
			cfg := isa.DecodeFlag(in.Data)
			isReady = cfg.Set&isa.FlagReady != 0
			if st.pendAddr >= 0 && cfg.Clear&isa.FlagDValid != 0 && cfg.Set&isa.FlagDValid == 0 {
				c.add(st.pendAddr, Error, "dvalid-lost",
					"data-valid raised here but cleared again before any output-enabled datapath cycle; the external system never sees the block")
				st.pendAddr = -1
			}
			st.flags = (st.flags &^ cfg.Clear) | cfg.Set // set-dominant, as in iram
			if cfg.Set&isa.FlagDValid != 0 && st.pendAddr < 0 {
				st.pendAddr = addr
			}
			if isReady {
				if st.pendAddr >= 0 {
					c.add(st.pendAddr, Error, "dvalid-lost",
						"data-valid raised here but the program reaches the ready idle point before any output-enabled datapath cycle; the external system never sees the block")
					st.pendAddr = -1
				}
				if st.flags&isa.FlagDValid != 0 {
					c.add(addr, Warn, "dvalid-at-idle",
						"ready raised with data-valid still set; a stale data-valid makes the next block's first advancing cycle look like output")
				}
			}
		case isa.OpCfgElem:
			for _, prev := range window {
				if prev.elem == in.Elem && prev.data != in.Data &&
					slicesOverlap(prev.slice, in.Slice) {
					c.add(addr, Warn, "conflict-write",
						fmt.Sprintf("%s configuration conflicts with the write at %04x in the same instruction window; only the later word takes effect at the cycle boundary",
							in.Elem, prev.addr))
				}
			}
			window = append(window, cfgWrite{addr: addr, slice: in.Slice, elem: in.Elem, data: in.Data})
		}

		if structural(in) {
			if st.enabled && st.armAddr >= 0 && st.armTicked {
				c.add(addr, Error, "unbracketed-reconfig",
					fmt.Sprintf("reconfiguration run starting at %04x is split by a datapath cycle while outputs are enabled; bracket it with DISOUT/ENOUT (§3.4 overfull cycles) or widen the instruction window",
						st.armAddr))
			}
			st.armAddr, st.armTicked = addr, false
		} else {
			st.armAddr, st.armTicked = -1, false
		}

		if halt {
			break
		}

		// --- advance, mirroring sim.Machine.Run --------------------------
		if !jumped {
			st.pc++
		}
		if isReady {
			// The idle point resynchronizes the dual clocks: the window
			// restarts with no datapath cycle, whether or not the machine
			// waits for go.
			st.phase = 0
			st.armAddr, st.armTicked = -1, false
			endWindow()
			continue
		}
		st.phase++
		if st.phase < w {
			continue
		}
		// End of instruction window: one datapath clock cycle.
		st.phase = 0
		ticks++
		endWindow()
		if st.armAddr >= 0 {
			st.armTicked = true
		}
		if st.flags&isa.FlagReady != 0 {
			c.add(addr, Warn, "ready-tick",
				"datapath cycle fires with ready still set; clear ready before resuming work so the external system sees a well-ordered busy/ready handshake")
		}
		if st.enabled && st.pendAddr >= 0 {
			st.pendAddr = -1 // the enabled cycle presents the data-valid output
		}
	}
	return reached
}

// deadCode reports unreachable address ranges, one finding per contiguous
// run.
func (c *checker) deadCode(reached []bool) {
	for i := 0; i < len(reached); i++ {
		if reached[i] {
			continue
		}
		j := i
		for j+1 < len(reached) && !reached[j+1] {
			j++
		}
		msg := "instruction is unreachable"
		if j > i {
			msg = fmt.Sprintf("instructions %04x..%04x are unreachable", i, j)
		}
		c.add(i, Warn, "dead-code", msg)
		i = j
	}
}

// StopKind says how a WalkToIdle trace ended.
type StopKind uint8

const (
	// StopIdle: the trace reached a ready-raise (the §3.4 idle point).
	StopIdle StopKind = iota
	// StopHalt: the trace executed HALT.
	StopHalt
)

// PathStats are the execution counters of the deterministic instruction
// trace from address 0 to the first idle point, computed without running
// the datapath. They match the simulator's counters instruction for
// instruction (cross-checked in package program's tests): Ticks
// corresponds to sim.Stats.Cycles, Instructions and Nops to their
// namesakes, and StopAddr to the address of the ready-raise or HALT.
type PathStats struct {
	Instructions int
	Ticks        int
	Nops         int
	StopAddr     int
	Stop         StopKind
}

// WalkToIdle traces the setup path: from address 0 to the first
// instruction that raises the ready flag (where a machine with go
// deasserted idles) or to a HALT. It returns an error for traces that
// leave the program or never reach an idle point.
func WalkToIdle(prog []isa.Instr, window int) (PathStats, error) {
	if window < 1 {
		window = 1
	}
	var ps PathStats
	pc, phase := 0, 0
	for steps := 0; steps < maxWalkSteps; steps++ {
		if pc < 0 || pc >= len(prog) {
			return ps, fmt.Errorf("vet: trace leaves the program at address %#x", pc)
		}
		in := prog[pc]
		ps.Instructions++
		switch {
		case in.Op == isa.OpHalt:
			ps.StopAddr, ps.Stop = pc, StopHalt
			return ps, nil
		case readySet(in):
			ps.StopAddr, ps.Stop = pc, StopIdle
			return ps, nil
		}
		if in.Op == isa.OpNop {
			ps.Nops++
		}
		if in.Op == isa.OpJmp {
			pc = int(in.Data & 0xfff)
		} else {
			pc++
		}
		phase++
		if phase == window {
			phase = 0
			ps.Ticks++
		}
	}
	return ps, fmt.Errorf("vet: no idle point within %d instructions", maxWalkSteps)
}
