package equiv

import "cobra/internal/bits"

// Witness is a concrete input assignment on which the two sides compute
// different values for one output word: the ground-truth certificate that a
// symbolic mismatch is a real functional divergence, not a normalization
// gap. Inputs[k] is the k-th block consumed from the input stream.
type Witness struct {
	Inputs []bits.Block128
	RefVal uint32
	FPVal  uint32
}

// findWitness searches for a diverging input assignment for two expressions
// over nInputs stream blocks, then greedily minimizes it (zeroing whole
// blocks, then single words, while divergence persists). Returns nil if no
// candidate diverges — in which case the caller must refuse to certify the
// mismatch rather than report it, since the divergence may be a
// normalization gap rather than a real one.
func findWitness(a *Arena, ref, fp xid, nInputs int) *Witness {
	if nInputs <= 0 {
		nInputs = 1
	}
	ev := newEvaluator(a)
	diverges := func(env []bits.Block128) (uint32, uint32, bool) {
		ev.reset(env)
		rv := ev.eval(ref)
		fv := ev.eval(fp)
		return rv, fv, rv != fv
	}

	var found []bits.Block128
	for _, env := range witnessCandidates(nInputs) {
		if _, _, ok := diverges(env); ok {
			found = env
			break
		}
	}
	if found == nil {
		return nil
	}

	// Greedy minimization: most mismatches depend on a handful of words.
	zero := bits.Block128{}
	for b := range found {
		if found[b] == zero {
			continue
		}
		save := found[b]
		found[b] = zero
		if _, _, ok := diverges(found); !ok {
			found[b] = save
		}
	}
	for b := range found {
		for c := 0; c < 4; c++ {
			if found[b][c] == 0 {
				continue
			}
			save := found[b][c]
			found[b][c] = 0
			if _, _, ok := diverges(found); !ok {
				found[b][c] = save
			}
		}
	}
	rv, fv, _ := diverges(found)
	return &Witness{Inputs: found, RefVal: rv, FPVal: fv}
}

// witnessCandidates enumerates the deterministic trial battery: the all-zero
// stream, the recorder's own pseudorandom stream, every constant byte fill,
// and a spread of further pseudorandom streams.
func witnessCandidates(nInputs int) [][]bits.Block128 {
	out := make([][]bits.Block128, 0, 1+1+256+512)
	out = append(out, make([]bits.Block128, nInputs))
	out = append(out, xorshiftStream(0x9e3779b9, nInputs))
	for v := 0; v < 256; v++ {
		w := uint32(v) * 0x01010101
		env := make([]bits.Block128, nInputs)
		for b := range env {
			env[b] = bits.Block128{w, w, w, w}
		}
		out = append(out, env)
	}
	for i := 0; i < 512; i++ {
		out = append(out, xorshiftStream(0x2545f491+uint32(i)*0x9e3779b9, nInputs))
	}
	return out
}

// xorshiftStream generates nInputs blocks with the same xorshift32 the
// fastpath recorder uses for its probe stream.
func xorshiftStream(seed uint32, nInputs int) []bits.Block128 {
	env := make([]bits.Block128, nInputs)
	for b := range env {
		for c := 0; c < 4; c++ {
			seed ^= seed << 13
			seed ^= seed >> 17
			seed ^= seed << 5
			env[b][c] = seed
		}
	}
	return env
}
