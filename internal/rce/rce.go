// Package rce models the Reconfigurable Cryptographic Element, the primary
// processing element of the COBRA architecture (§3.2 of the paper).
//
// Each RCE operates on one 32-bit block of the 128-bit data stream. The
// data flow through the elements is fixed; every element may be selectively
// disabled (bypassed) via microcode. The chain is:
//
//	INSEL → E1 → A1 → C → E2 → D → B → F → A2 → E3 → REG → OUT
//
// where E is a shift/rotate unit, A a Boolean unit, B an adder/subtractor
// mod 2^8/2^16/2^32 (placed after the mid-chain rotator so a key addition
// can follow a data-dependent rotation, as RC6 requires), C the
// look-up-table unit, D the multiplier (present only in RCE MULs, columns 1
// and 3), F the GF(2^8) fixed-field-constant multiplier, and REG an
// optional output register enabling pipelined operation. INSEL selects the
// pipeline's starting block from the current row input or, via the one-row
// bypass bus, the previous row's input (see DESIGN.md).
//
// Evaluation is purely combinational here; registering and output-enable
// freezing are sequenced by the datapath (package datapath), which owns the
// register state.
package rce

import (
	"fmt"
	"strings"

	"cobra/internal/bits"
	"cobra/internal/isa"
)

// Inputs carries everything an RCE can observe in one datapath cycle: the
// full 128-bit row input partitioned into the primary block INA and the
// three secondary blocks INB/INC/IND (§3.1), plus the eRAM read port INER.
type Inputs struct {
	INA, INB, INC, IND uint32
	INER               uint32
	// Prev is the previous row's input vector (the one-row bypass bus),
	// indexed by block number; only INSEL can tap it.
	Prev [4]uint32
}

// Select returns the operand designated by src, with imm substituted for
// the immediate source.
func (in Inputs) Select(src isa.Src, imm uint32) uint32 {
	switch src {
	case isa.SrcINB:
		return in.INB
	case isa.SrcINC:
		return in.INC
	case isa.SrcIND:
		return in.IND
	case isa.SrcINER:
		return in.INER
	case isa.SrcImm:
		return imm
	case isa.SrcINA:
		return in.INA
	}
	return 0
}

// LUTStore is the C element storage: four 256×8 tables and four 128×4
// tables, 10,240 bits in total, matching the §4.2 accounting. The 4→4
// tables hold eight 16-entry pages; nibble lane i uses table i/2 (lanes
// share tables pair-wise).
type LUTStore struct {
	S8 [4][256]uint8
	S4 [4][128]uint8 // eight pages × sixteen 4-bit entries, low nibble used
}

// Config is the complete control state of one RCE, the union of all element
// control registers. The zero value is the identity configuration: every
// element bypassed, register disabled, output enabled at the datapath
// level.
type Config struct {
	Insel isa.InselCfg
	E1    isa.ECfg
	A1    isa.ACfg
	B     isa.BCfg
	C     isa.CCfg
	E2    isa.ECfg
	D     isa.DCfg
	F     isa.FCfg
	A2    isa.ACfg
	E3    isa.ECfg
	Reg   isa.RegCfg
	ER    isa.ERCfg
}

// RCE is one reconfigurable cryptographic element: its configuration
// registers and LUT storage. HasMul distinguishes RCE MULs (columns 1 and
// 3) from plain RCEs; configuring D on a plain RCE is rejected.
type RCE struct {
	HasMul bool
	Cfg    Config
	LUT    LUTStore
}

// New returns an RCE in the identity configuration.
func New(hasMul bool) *RCE { return &RCE{HasMul: hasMul} }

// Reset restores the identity configuration and clears the LUTs.
func (r *RCE) Reset() {
	r.Cfg = Config{}
	r.LUT = LUTStore{}
}

// ApplyElem decodes and installs the control word for one element. It
// returns an error when the element does not exist in this RCE type (D on a
// plain RCE) so that bad microcode is surfaced rather than silently
// ignored.
func (r *RCE) ApplyElem(e isa.Elem, data uint64) error {
	switch e {
	case isa.ElemInsel:
		r.Cfg.Insel = isa.DecodeInsel(data)
	case isa.ElemE1:
		r.Cfg.E1 = isa.DecodeE(data)
	case isa.ElemA1:
		r.Cfg.A1 = isa.DecodeA(data)
	case isa.ElemB:
		r.Cfg.B = isa.DecodeB(data)
	case isa.ElemC:
		r.Cfg.C = isa.DecodeC(data)
	case isa.ElemE2:
		r.Cfg.E2 = isa.DecodeE(data)
	case isa.ElemD:
		if !r.HasMul {
			return fmt.Errorf("rce: D element configured on an RCE without a multiplier")
		}
		r.Cfg.D = isa.DecodeD(data)
	case isa.ElemF:
		r.Cfg.F = isa.DecodeF(data)
	case isa.ElemA2:
		r.Cfg.A2 = isa.DecodeA(data)
	case isa.ElemE3:
		r.Cfg.E3 = isa.DecodeE(data)
	case isa.ElemReg:
		r.Cfg.Reg = isa.DecodeReg(data)
	case isa.ElemER:
		r.Cfg.ER = isa.DecodeER(data)
	case isa.ElemOut:
		// Output enable is sequenced by the datapath via OpEnOut/OpDisOut;
		// ElemOut via OpCfgElem is accepted as a no-op for forward
		// compatibility with whole-RCE configuration streams.
	default:
		return fmt.Errorf("rce: unknown element address %v", e)
	}
	return nil
}

// LoadLUT installs one OpLoadLUT group: four bytes (8→8 space) or eight
// nibbles (4→4 space) from the low 32 bits of data.
func (r *RCE) LoadLUT(addr uint16, data uint64) error {
	space4, bank, group := isa.SplitLUTAddr(addr)
	if space4 {
		if group > 15 {
			return fmt.Errorf("rce: 4x4 LUT group %d out of range", group)
		}
		for i := 0; i < 8; i++ {
			r.LUT.S4[bank][group*8+i] = uint8(data>>(4*i)) & 0xf
		}
		return nil
	}
	if group > 63 {
		return fmt.Errorf("rce: 8x8 LUT group %d out of range", group)
	}
	for i := 0; i < 4; i++ {
		r.LUT.S8[bank][group*4+i] = uint8(data >> (8 * i))
	}
	return nil
}

// evalE applies a shift/rotate element.
func evalE(cfg isa.ECfg, x uint32, in Inputs) uint32 {
	var amt uint
	if cfg.AmtSrc == isa.SrcImm {
		amt = uint(cfg.Amt)
	} else {
		// The 5-bit M mux taps the low five bits of the selected block.
		amt = uint(in.Select(cfg.AmtSrc, 0) & 31)
	}
	if cfg.Neg {
		amt = (32 - amt) & 31
	}
	switch cfg.Mode {
	case isa.EShl:
		return bits.Shl(x, amt)
	case isa.EShr:
		return bits.Shr(x, amt)
	case isa.ERotl:
		return bits.RotL(x, amt)
	default:
		return x
	}
}

// evalA applies a Boolean element, including the operand pre-shift used by
// the A2 instance.
func evalA(cfg isa.ACfg, x uint32, in Inputs) uint32 {
	if cfg.Op == isa.ABypass {
		return x
	}
	op := in.Select(cfg.Operand, cfg.Imm)
	if cfg.PreShift != 0 {
		if cfg.PreShiftRot {
			op = bits.RotL(op, uint(cfg.PreShift))
		} else {
			op = bits.Shl(op, uint(cfg.PreShift))
		}
	}
	switch cfg.Op {
	case isa.AXor:
		return x ^ op
	case isa.AAnd:
		return x & op
	default:
		return x | op
	}
}

// evalB applies the adder/subtractor element.
func evalB(cfg isa.BCfg, x uint32, in Inputs) uint32 {
	if cfg.Mode == isa.BBypass {
		return x
	}
	op := in.Select(cfg.Operand, cfg.Imm)
	w := bits.Width(cfg.Width)
	if cfg.Mode == isa.BAdd {
		return bits.AddMod(x, op, w)
	}
	return bits.SubMod(x, op, w)
}

// evalC applies the look-up-table element.
func (r *RCE) evalC(x uint32) uint32 {
	switch r.Cfg.C.Mode {
	case isa.CS8x8:
		var out uint32
		for lane := 0; lane < 4; lane++ {
			b := uint8(x >> (8 * uint(lane)))
			out |= uint32(r.LUT.S8[lane][b]) << (8 * uint(lane))
		}
		return out
	case isa.CS4x4:
		page := uint32(r.Cfg.C.Page) & 7
		var out uint32
		for lane := 0; lane < 8; lane++ {
			n := x >> (4 * uint(lane)) & 0xf
			tbl := lane / 2 // nibble lanes share tables pair-wise
			out |= uint32(r.LUT.S4[tbl][page*16+n]&0xf) << (4 * uint(lane))
		}
		return out
	case isa.CS8to32:
		b := uint8(x >> (8 * uint(r.Cfg.C.ByteSel)))
		return uint32(r.LUT.S8[0][b]) | uint32(r.LUT.S8[1][b])<<8 |
			uint32(r.LUT.S8[2][b])<<16 | uint32(r.LUT.S8[3][b])<<24
	default:
		return x
	}
}

// evalD applies the multiplier element (RCE MUL only).
func evalD(cfg isa.DCfg, x uint32, in Inputs) uint32 {
	switch cfg.Mode {
	case isa.DMul16:
		return bits.MulMod(x, in.Select(cfg.Operand, cfg.Imm), bits.W16)
	case isa.DMul32:
		return bits.MulMod(x, in.Select(cfg.Operand, cfg.Imm), bits.W32)
	case isa.DSquare:
		return bits.SquareMod32(x)
	default:
		return x
	}
}

// evalF applies the GF(2^8) fixed-field-constant multiplier.
func evalF(cfg isa.FCfg, x uint32) uint32 {
	switch cfg.Mode {
	case isa.FLanes:
		return bits.GFMulWord(x, cfg.Consts)
	case isa.FMDS:
		return bits.GFMDSColumn(x, cfg.Consts)
	default:
		return x
	}
}

// Eval computes the RCE's combinational output for the given inputs. The
// pipeline value starts from the INSEL-selected block and passes through
// every enabled element in the fixed order.
func (r *RCE) Eval(in Inputs) uint32 {
	var x uint32
	switch src := r.Cfg.Insel.Source & 7; src {
	case 1:
		x = in.INB
	case 2:
		x = in.INC
	case 3:
		x = in.IND
	case 4, 5, 6, 7:
		x = in.Prev[src-4]
	default:
		x = in.INA
	}
	x = evalE(r.Cfg.E1, x, in)
	x = evalA(r.Cfg.A1, x, in)
	x = r.evalC(x)
	x = evalE(r.Cfg.E2, x, in)
	if r.HasMul {
		x = evalD(r.Cfg.D, x, in)
	}
	x = evalB(r.Cfg.B, x, in)
	x = evalF(r.Cfg.F, x)
	x = evalA(r.Cfg.A2, x, in)
	x = evalE(r.Cfg.E3, x, in)
	return x
}

// ReadsINER reports whether the configuration actively consumes the eRAM
// read port: some non-bypassed element selects SrcINER through its operand
// multiplexor. Bypassed elements and D's square mode never read the port;
// D is consulted only on RCE MULs, mirroring Eval. The datapath's uninit
// sentinel and package dataflow's def-use chains both rely on this
// definition of "consumes", so it must stay in lock-step with Eval.
func (r *RCE) ReadsINER() bool {
	for _, p := range [...]struct {
		e    isa.Elem
		data uint64
	}{
		{isa.ElemE1, r.Cfg.E1.Encode()},
		{isa.ElemA1, r.Cfg.A1.Encode()},
		{isa.ElemE2, r.Cfg.E2.Encode()},
		{isa.ElemD, r.Cfg.D.Encode()},
		{isa.ElemB, r.Cfg.B.Encode()},
		{isa.ElemA2, r.Cfg.A2.Encode()},
		{isa.ElemE3, r.Cfg.E3.Encode()},
	} {
		if p.e == isa.ElemD && !r.HasMul {
			continue
		}
		if src, active := isa.ElemOperand(p.e, p.data); active && src == isa.SrcINER {
			return true
		}
	}
	return false
}

// ActiveElements lists the enabled (non-bypassed) elements in data-flow
// order; the timing model uses this to form the critical path and Describe
// uses it for the figure-2/3 rendering.
func (r *RCE) ActiveElements() []isa.Elem {
	var out []isa.Elem
	if r.Cfg.Insel.Source != 0 {
		out = append(out, isa.ElemInsel)
	}
	if r.Cfg.E1.Mode != isa.EBypass {
		out = append(out, isa.ElemE1)
	}
	if r.Cfg.A1.Op != isa.ABypass {
		out = append(out, isa.ElemA1)
	}
	if r.Cfg.C.Mode != isa.CBypass {
		out = append(out, isa.ElemC)
	}
	if r.Cfg.E2.Mode != isa.EBypass {
		out = append(out, isa.ElemE2)
	}
	if r.HasMul && r.Cfg.D.Mode != isa.DBypass {
		out = append(out, isa.ElemD)
	}
	if r.Cfg.B.Mode != isa.BBypass {
		out = append(out, isa.ElemB)
	}
	if r.Cfg.F.Mode != isa.FBypass {
		out = append(out, isa.ElemF)
	}
	if r.Cfg.A2.Op != isa.ABypass {
		out = append(out, isa.ElemA2)
	}
	if r.Cfg.E3.Mode != isa.EBypass {
		out = append(out, isa.ElemE3)
	}
	if r.Cfg.Reg.Enabled {
		out = append(out, isa.ElemReg)
	}
	return out
}

// Describe renders the element chain with the current configuration, the
// textual equivalent of the paper's figures 2 and 3.
func (r *RCE) Describe() string {
	var b strings.Builder
	kind := "RCE"
	if r.HasMul {
		kind = "RCE MUL"
	}
	fmt.Fprintf(&b, "%s: IN[%s]", kind, isa.InselNames[r.Cfg.Insel.Source&7])
	step := func(name, mode string, enabled bool) {
		if enabled {
			fmt.Fprintf(&b, " -> %s(%s)", name, mode)
		} else {
			fmt.Fprintf(&b, " -> %s", name)
		}
	}
	step("E1", r.Cfg.E1.Mode.String(), r.Cfg.E1.Mode != isa.EBypass)
	step("A1", fmt.Sprintf("%s %s", r.Cfg.A1.Op, r.Cfg.A1.Operand), r.Cfg.A1.Op != isa.ABypass)
	step("C", r.Cfg.C.Mode.String(), r.Cfg.C.Mode != isa.CBypass)
	step("E2", r.Cfg.E2.Mode.String(), r.Cfg.E2.Mode != isa.EBypass)
	if r.HasMul {
		step("D", r.Cfg.D.Mode.String(), r.Cfg.D.Mode != isa.DBypass)
	}
	step("B", fmt.Sprintf("%s %s", r.Cfg.B.Mode, r.Cfg.B.Operand), r.Cfg.B.Mode != isa.BBypass)
	step("F", r.Cfg.F.Mode.String(), r.Cfg.F.Mode != isa.FBypass)
	step("A2", fmt.Sprintf("%s %s", r.Cfg.A2.Op, r.Cfg.A2.Operand), r.Cfg.A2.Op != isa.ABypass)
	step("E3", r.Cfg.E3.Mode.String(), r.Cfg.E3.Mode != isa.EBypass)
	if r.Cfg.Reg.Enabled {
		b.WriteString(" -> REG")
	}
	b.WriteString(" -> OUT")
	return b.String()
}
