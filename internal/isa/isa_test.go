package isa

import (
	"testing"
	"testing/quick"
)

func TestInstrPackUnpackRoundTrip(t *testing.T) {
	f := func(op uint8, scope uint8, row uint8, col uint8, elem uint8, lut uint16, data uint64) bool {
		in := Instr{
			Op:    Opcode(op % uint8(opcodeCount)),
			Slice: Slice{Scope: Scope(scope % 4), Row: row, Col: col % 4},
			Elem:  Elem(elem % uint8(elemCount)),
			LUT:   lut & 0x1ff,
			Data:  data & (1<<50 - 1),
		}
		got, err := Unpack(in.Pack())
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnpackRejectsUndefinedOpcode(t *testing.T) {
	in := Instr{Op: Opcode(31), Data: 0}
	if _, err := Unpack(in.Pack()); err == nil {
		t.Error("expected error for undefined opcode 31")
	}
}

func TestUnpackRejectsUndefinedElement(t *testing.T) {
	in := Instr{Op: OpCfgElem, Elem: Elem(15)}
	if _, err := Unpack(in.Pack()); err == nil {
		t.Error("expected error for undefined element address")
	}
}

func TestPackFieldIsolation(t *testing.T) {
	// Changing only the data field must not disturb the top fields.
	a := Instr{Op: OpCfgElem, Slice: SliceAt(3, 2), Elem: ElemC, LUT: 0x1ff, Data: 0}
	b := a
	b.Data = 1<<50 - 1
	wa, wb := a.Pack(), b.Pack()
	if wa.Hi != wb.Hi {
		t.Errorf("data field leaked into Hi: %#x vs %#x", wa.Hi, wb.Hi)
	}
	if wa.Lo>>50 != wb.Lo>>50 {
		t.Errorf("data field leaked into top of Lo")
	}
}

func TestSliceConstructors(t *testing.T) {
	if s := SliceAt(5, 3); s.Scope != ScopeOne || s.Row != 5 || s.Col != 3 {
		t.Errorf("SliceAt = %+v", s)
	}
	if s := SliceCol(2); s.Scope != ScopeCol || s.Col != 2 {
		t.Errorf("SliceCol = %+v", s)
	}
	if s := SliceRow(7); s.Scope != ScopeRow || s.Row != 7 {
		t.Errorf("SliceRow = %+v", s)
	}
	if s := SliceAll(); s.Scope != ScopeAll {
		t.Errorf("SliceAll = %+v", s)
	}
}

func TestSliceString(t *testing.T) {
	cases := map[string]Slice{
		"r5.c3": SliceAt(5, 3),
		"c2":    SliceCol(2),
		"r7":    SliceRow(7),
		"all":   SliceAll(),
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", s, got, want)
		}
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op := Opcode(0); op < opcodeCount; op++ {
		if op.String() == "" {
			t.Errorf("opcode %d has empty name", op)
		}
	}
	if Opcode(30).String() != "OP(30)" {
		t.Error("out-of-range opcode name")
	}
}

func TestElemByName(t *testing.T) {
	for e := Elem(0); e < elemCount; e++ {
		got, ok := ElemByName(e.String())
		if !ok || got != e {
			t.Errorf("ElemByName(%q) = %v, %v", e.String(), got, ok)
		}
	}
	if _, ok := ElemByName("NOPE"); ok {
		t.Error("ElemByName accepted garbage")
	}
}

func TestSrcByName(t *testing.T) {
	for s := Src(0); s < srcCount; s++ {
		got, ok := SrcByName(s.String())
		if !ok || got != s {
			t.Errorf("SrcByName(%q) = %v, %v", s.String(), got, ok)
		}
	}
	if _, ok := SrcByName("XYZ"); ok {
		t.Error("SrcByName accepted garbage")
	}
}

func TestECfgRoundTrip(t *testing.T) {
	f := func(mode, src, amt uint8, neg bool) bool {
		c := ECfg{Mode: EMode(mode % 4), AmtSrc: Src(src % uint8(srcCount)), Amt: amt & 31, Neg: neg}
		return DecodeE(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestACfgRoundTrip(t *testing.T) {
	f := func(op, src, ps uint8, rot bool, imm uint32) bool {
		c := ACfg{
			Op: AOp(op % 4), Operand: Src(src % uint8(srcCount)),
			PreShift: ps & 31, PreShiftRot: rot, Imm: imm,
		}
		return DecodeA(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBCfgRoundTrip(t *testing.T) {
	f := func(mode, w, src uint8, imm uint32) bool {
		c := BCfg{Mode: BMode(mode % 3), Width: w % 3, Operand: Src(src % uint8(srcCount)), Imm: imm}
		return DecodeB(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCCfgRoundTrip(t *testing.T) {
	f := func(mode, page, bs uint8) bool {
		c := CCfg{Mode: CMode(mode % 4), Page: page & 7, ByteSel: bs & 3}
		return DecodeC(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDCfgRoundTrip(t *testing.T) {
	f := func(mode, src uint8, imm uint32) bool {
		c := DCfg{Mode: DMode(mode % 4), Operand: Src(src % uint8(srcCount)), Imm: imm}
		return DecodeD(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFCfgRoundTrip(t *testing.T) {
	f := func(mode uint8, k [4]uint8) bool {
		c := FCfg{Mode: FMode(mode % 3), Consts: k}
		return DecodeF(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegCfgRoundTrip(t *testing.T) {
	for _, en := range []bool{false, true} {
		c := RegCfg{Enabled: en}
		if DecodeReg(c.Encode()) != c {
			t.Errorf("RegCfg round trip failed for %v", en)
		}
	}
}

func TestERCfgRoundTrip(t *testing.T) {
	f := func(bank, addr uint8) bool {
		c := ERCfg{Bank: bank & 3, Addr: addr}
		return DecodeER(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInselCfgRoundTrip(t *testing.T) {
	for s := uint8(0); s < 4; s++ {
		c := InselCfg{Source: s}
		if DecodeInsel(c.Encode()) != c {
			t.Errorf("InselCfg round trip failed for %d", s)
		}
	}
}

func TestInMuxCfgRoundTrip(t *testing.T) {
	f := func(mode, bank, addr uint8) bool {
		c := InMuxCfg{Mode: InMuxMode(mode % 3), Bank: bank & 3, Addr: addr}
		return DecodeInMux(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWhiteCfgRoundTrip(t *testing.T) {
	f := func(col, mode uint8, in bool, key uint32) bool {
		c := WhiteCfg{Col: col & 3, Mode: WhiteMode(mode % 3), In: in, Key: key}
		return DecodeWhite(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestERAMWriteCfgRoundTrip(t *testing.T) {
	f := func(bank, addr uint8, v uint32) bool {
		c := ERAMWriteCfg{Bank: bank & 3, Addr: addr, Value: v}
		return DecodeERAMWrite(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCaptureCfgRoundTrip(t *testing.T) {
	f := func(en bool, bank, addr uint8) bool {
		c := CaptureCfg{Enabled: en, Bank: bank & 3, Addr: addr}
		return DecodeCapture(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShufCfgRoundTrip(t *testing.T) {
	f := func(high bool, perm [8]uint8) bool {
		c := ShufCfg{High: high}
		for i, p := range perm {
			c.Perm[i] = p & 15
		}
		return DecodeShuf(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlagCfgRoundTrip(t *testing.T) {
	f := func(set, clr uint16) bool {
		c := FlagCfg{Set: set, Clear: clr}
		return DecodeFlag(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLUTAddrRoundTrip(t *testing.T) {
	f := func(space4 bool, bank, group uint8) bool {
		b, g := int(bank&3), int(group&0x3f)
		s2, b2, g2 := SplitLUTAddr(LUTAddr(space4, b, g))
		return s2 == space4 && b2 == b && g2 == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrStringCoversOpcodes(t *testing.T) {
	ins := []Instr{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpCfgElem, Slice: SliceAt(0, 1), Elem: ElemB, Data: 5},
		{Op: OpLoadLUT, Slice: SliceCol(0), LUT: 0x42, Data: 9},
		{Op: OpJmp, Data: 0x123},
		{Op: OpEnOut, Slice: SliceAll()},
		{Op: OpDisOut, Slice: SliceAll()},
		{Op: OpCtlFlag, Data: 3},
	}
	for _, in := range ins {
		if in.String() == "" {
			t.Errorf("empty String() for %v", in.Op)
		}
	}
}

func TestModeStringers(t *testing.T) {
	// Every mode enum names its values and falls back gracefully.
	cases := []struct{ got, want string }{
		{EBypass.String(), "BYP"}, {EShl.String(), "SHL"}, {ERotl.String(), "ROTL"},
		{EMode(9).String(), "EMODE(9)"},
		{AXor.String(), "XOR"}, {AOr.String(), "OR"}, {AOp(9).String(), "AOP(9)"},
		{BAdd.String(), "ADD"}, {BSub.String(), "SUB"}, {BMode(9).String(), "BMODE(9)"},
		{CS8x8.String(), "S8"}, {CS4x4.String(), "S4"}, {CS8to32.String(), "S8TO32"},
		{CMode(9).String(), "CMODE(9)"},
		{DMul16.String(), "MUL16"}, {DSquare.String(), "SQR"}, {DMode(9).String(), "DMODE(9)"},
		{FLanes.String(), "LANES"}, {FMDS.String(), "MDS"}, {FMode(9).String(), "FMODE(9)"},
		{InExternal.String(), "EXT"}, {InFeedback.String(), "FB"}, {InERAM.String(), "ERAM"},
		{InMuxMode(9).String(), "INMUX(9)"},
		{WhiteOff.String(), "OFF"}, {WhiteXor.String(), "XOR"}, {WhiteAdd.String(), "ADD"},
		{WhiteMode(9).String(), "WHITE(9)"},
		{Src(9).String(), "SRC(9)"},
		{ScopeOne.String(), "one"}, {ScopeCol.String(), "col"},
		{ScopeRow.String(), "row"}, {Scope(9).String(), "?"},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: got %q, want %q", i, c.got, c.want)
		}
	}
}

func TestSrcValid(t *testing.T) {
	for s := Src(0); s < srcCount; s++ {
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	if Src(7).Valid() {
		t.Error("Src(7) should be invalid")
	}
}

func TestElemString(t *testing.T) {
	if ElemD.String() != "D" || Elem(15).String() != "ELEM(15)" {
		t.Error("element naming broken")
	}
}
