package program

import (
	"bytes"
	"testing"
	"testing/quick"

	"cobra/internal/cipher"
)

// refDecryptECB decrypts with a reference cipher block-by-block.
func refDecryptECB(t *testing.T, c cipher.Block, src []byte) []byte {
	t.Helper()
	dst := make([]byte, len(src))
	for i := 0; i < len(src); i += c.BlockSize() {
		c.Decrypt(dst[i:], src[i:])
	}
	return dst
}

func TestRC6DecryptOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewRC6(testKey)
	if err != nil {
		t.Fatal(err)
	}
	ct := refEncryptECB(t, ref, testPlain)
	for _, hw := range []int{1, 2, 4, 5, 10, 20} {
		p, err := BuildRC6Decrypt(testKey, hw, cipher.RC6Rounds)
		if err != nil {
			t.Fatalf("rc6-dec-%d: %v", hw, err)
		}
		got, stats := cobraEncryptECB(t, p, ct)
		if !bytes.Equal(got, testPlain) {
			t.Errorf("rc6-dec-%d: decryption mismatch\n got %x\nwant %x", hw, got, testPlain)
		}
		t.Logf("rc6-dec-%d: %.1f cycles/block", hw,
			float64(stats.Cycles)/float64(stats.BlocksOut))
	}
}

func TestRijndaelDecryptOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewRijndael(testKey)
	if err != nil {
		t.Fatal(err)
	}
	ct := refEncryptECB(t, ref, testPlain)
	for _, hw := range []int{1, 2, 5, 10} {
		p, err := BuildRijndaelDecrypt(testKey, hw)
		if err != nil {
			t.Fatalf("rijndael-dec-%d: %v", hw, err)
		}
		got, _ := cobraEncryptECB(t, p, ct)
		if !bytes.Equal(got, testPlain) {
			t.Errorf("rijndael-dec-%d: decryption mismatch\n got %x\nwant %x", hw, got, testPlain)
		}
	}
}

func TestSerpentDecryptOnCOBRA(t *testing.T) {
	ref, err := cipher.NewSerpentCOBRA(testKey)
	if err != nil {
		t.Fatal(err)
	}
	ct := refEncryptECB(t, ref, testPlain)
	p, err := BuildSerpentDecrypt(testKey)
	if err != nil {
		t.Fatal(err)
	}
	got, stats := cobraEncryptECB(t, p, ct)
	if !bytes.Equal(got, testPlain) {
		t.Errorf("serpent-dec: decryption mismatch\n got %x\nwant %x", got, testPlain)
	}
	t.Logf("serpent-dec-1: %.1f cycles/block", float64(stats.Cycles)/float64(stats.BlocksOut))
}

// TestDatapathRoundTrip pushes blocks through the encryption datapath and
// back through the decryption datapath — both directions entirely in
// microcode.
func TestDatapathRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		enc, dec func() (*Program, error)
	}{
		{"rc6", func() (*Program, error) { return BuildRC6(testKey, 2, cipher.RC6Rounds) },
			func() (*Program, error) { return BuildRC6Decrypt(testKey, 2, cipher.RC6Rounds) }},
		{"rijndael", func() (*Program, error) { return BuildRijndael(testKey, 2) },
			func() (*Program, error) { return BuildRijndaelDecrypt(testKey, 2) }},
		{"serpent", func() (*Program, error) { return BuildSerpent(testKey, 1) },
			func() (*Program, error) { return BuildSerpentDecrypt(testKey) }},
	}
	for _, c := range cases {
		pe, err := c.enc()
		if err != nil {
			t.Fatal(err)
		}
		pd, err := c.dec()
		if err != nil {
			t.Fatal(err)
		}
		ct, _ := cobraEncryptECB(t, pe, testPlain)
		pt, _ := cobraEncryptECB(t, pd, ct)
		if !bytes.Equal(pt, testPlain) {
			t.Errorf("%s: datapath round trip failed", c.name)
		}
	}
}

// TestDatapathRoundTrip64 drives the 64-bit-cipher corpus through its
// encryption and decryption datapaths at every supported unroll depth,
// pairing each encryptor depth with each decryptor depth so iterative and
// streaming forms cross-check each other. Only the payload words are
// compared: the scratch lanes of the one-block-per-superblock mappings
// legitimately carry round intermediates.
func TestDatapathRoundTrip64(t *testing.T) {
	ciphers := []struct {
		name   string
		depths []int
		enc    func(hw int) (*Program, error)
		dec    func(hw int) (*Program, error)
		paired bool // two blocks per superblock: all 16 bytes are payload
	}{
		{"rc5", []int{1, 2, 3, 4, 6, 12},
			func(hw int) (*Program, error) { return BuildRC5(testKey, hw, cipher.RC5Rounds) },
			func(hw int) (*Program, error) { return BuildRC5Decrypt(testKey, hw, cipher.RC5Rounds) },
			true},
		{"tea", []int{1, 2, 4, 8, 16, 32},
			func(hw int) (*Program, error) { return BuildTEA(testKey, hw) },
			func(hw int) (*Program, error) { return BuildTEADecrypt(testKey, hw) },
			false},
		{"simon64", []int{1, 2, 4, 11, 22, 44},
			func(hw int) (*Program, error) { return BuildSIMON(testKey, hw) },
			func(hw int) (*Program, error) { return BuildSIMONDecrypt(testKey, hw) },
			true},
		{"blowfish", []int{1, 2},
			func(hw int) (*Program, error) { return BuildBlowfish(testKey, hw) },
			func(hw int) (*Program, error) { return BuildBlowfishDecrypt(testKey, hw) },
			false},
		{"des", []int{1},
			func(hw int) (*Program, error) { return BuildDES(testKey[:8]) },
			func(hw int) (*Program, error) { return BuildDESDecrypt(testKey[:8]) },
			false},
	}
	// DES's host boundary swaps the halves between the datapaths (the
	// Feistel swap-undo folded into FP∘IP); mirror it here.
	desSwap := func(name string, sbs []byte) []byte {
		if name != "des" {
			return sbs
		}
		out := make([]byte, len(sbs))
		copy(out, sbs)
		for i := 0; i < len(out); i += 16 {
			for j := 0; j < 4; j++ {
				out[i+j], out[i+4+j] = out[i+4+j], out[i+j]
			}
		}
		return out
	}
	payload := func(paired bool, sbs []byte) []byte {
		if paired {
			return sbs
		}
		out := make([]byte, 0, len(sbs)/2)
		for i := 0; i < len(sbs); i += 16 {
			out = append(out, sbs[i:i+8]...)
		}
		return out
	}
	for _, c := range ciphers {
		for _, eh := range c.depths {
			pe, err := c.enc(eh)
			if err != nil {
				t.Fatalf("%s-%d: %v", c.name, eh, err)
			}
			ct, _ := cobraEncryptECB(t, pe, testPlain)
			ct = desSwap(c.name, ct)
			for _, dh := range c.depths {
				pd, err := c.dec(dh)
				if err != nil {
					t.Fatalf("%s-dec-%d: %v", c.name, dh, err)
				}
				pt, _ := cobraEncryptECB(t, pd, ct)
				pt = desSwap(c.name, pt)
				if !bytes.Equal(payload(c.paired, pt), payload(c.paired, testPlain)) {
					t.Errorf("%s: enc depth %d / dec depth %d round trip failed",
						c.name, eh, dh)
				}
			}
		}
	}
}

func TestRC6DecryptRandomized(t *testing.T) {
	f := func(key [16]byte, ctRaw [16]byte) bool {
		ref, err := cipher.NewRC6(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 16)
		ref.Decrypt(want, ctRaw[:])
		p, err := BuildRC6Decrypt(key[:], 4, cipher.RC6Rounds)
		if err != nil {
			return false
		}
		m, err := NewMachine(p)
		if err != nil {
			return false
		}
		if err := Load(m, p); err != nil {
			return false
		}
		got, _, err := EncryptBytes(m, p, ctRaw[:])
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDecryptUnrollValidation(t *testing.T) {
	if _, err := BuildRC6Decrypt(testKey, 3, cipher.RC6Rounds); err == nil {
		t.Error("expected unroll error")
	}
	if _, err := BuildRijndaelDecrypt(testKey, 4); err == nil {
		t.Error("expected unroll error")
	}
	if _, err := BuildSerpentDecrypt(make([]byte, 5)); err == nil {
		t.Error("expected key error")
	}
}
