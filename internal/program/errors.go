package program

import "fmt"

// ErrIRAMBudget reports a configuration whose microcode image cannot fit
// the iRAM: the builder knows before emitting a single word that the
// required load stream exceeds the instruction store, so it refuses with
// the arithmetic instead of overflowing at load time. Callers that sweep
// unroll depths (bench, cobra-vet -builtin) can errors.As on it to
// distinguish "this depth doesn't exist on this hardware" from a broken
// build.
type ErrIRAMBudget struct {
	// Name is the refused configuration, e.g. "blowfish-4".
	Name string
	// What names the dominant word cost, e.g. "per-stage S-box LUTLD copies".
	What string
	// Needed is the iRAM word count the configuration would require.
	Needed int
	// Available is the iRAM capacity in words.
	Available int
}

func (e *ErrIRAMBudget) Error() string {
	return fmt.Sprintf("%s: %d iRAM words for %s exceed the %d-word iRAM",
		e.Name, e.Needed, e.What, e.Available)
}
