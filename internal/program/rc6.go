package program

import (
	"fmt"

	"cobra/internal/cipher"
	"cobra/internal/isa"
)

// RC6 mapping (§4: "up to two rounds of RC6 ... may be mapped").
//
// State words (A,B,C,D) live in blocks 0..3. One round occupies two rows:
//
//	row T:  col1/col3 (RCE MULs) compute t = (B(2B+1)) <<< 5 and
//	        u = (D(2D+1)) <<< 5 via E1 SHL 1, A1 OR 1, D MUL32, E3 ROTL 5;
//	        the other columns pass A and C.
//	row U:  two columns compute A' = ((A^t) <<< u) + S[2i] and
//	        C' = ((C^u) <<< t) + S[2i+1] (A1 XOR, E2 ROTL data-dependent,
//	        B ADD INER); the other two recover the untouched B and D from
//	        the one-row bypass bus (INSEL PB/PD).
//
// The per-round rotation (A,B,C,D) → (B,C',D,A') is absorbed by INSEL role
// relabeling: rounds alternate between "form A" (canonical layout in) and
// "form B" (rotated layout in), and after a form-B round the layout is
// canonical again. Odd unroll depths append a rotate-fix row pair so every
// pass starts canonical.
//
// Pre-whitening (B += S[0], D += S[1]) uses the input-side whitening
// registers; post-whitening (A += S[2r+2], C += S[2r+3]) uses the
// output-side ones, exactly the "post encryption key whitening" role §3.1
// assigns them.

// rc6FormARows emits the static configuration of one form-A round at rows
// (rt, rt+1).
func (b *builder) rc6FormARows(rt int) {
	ru := rt + 1
	// Row T: t in col1 (from B = its own primary), u in col3 (from D).
	for _, col := range []int{1, 3} {
		s := isa.SliceAt(rt, col)
		b.cfge(s, isa.ElemE1, eImm(isa.EShl, 1))
		b.cfge(s, isa.ElemA1, aImm(isa.AOr, 1))
		b.cfge(s, isa.ElemD, dCfg(isa.DMul32, isa.SrcINA))
		b.cfge(s, isa.ElemE3, eImm(isa.ERotl, 5))
	}
	// Row U: A' in col0, C' in col2; B, D recovered via the bypass bus.
	c0 := isa.SliceAt(ru, 0)
	b.cfge(c0, isa.ElemA1, aCfg(isa.AXor, isa.SrcINB))     // A ^ t
	b.cfge(c0, isa.ElemE2, eCfg(isa.ERotl, isa.SrcIND, 0)) // <<< u
	b.cfge(c0, isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcINER))  // + S[2i]
	b.insel(ru, 1, 5)                                      // PB: pass B
	c2 := isa.SliceAt(ru, 2)
	b.cfge(c2, isa.ElemA1, aCfg(isa.AXor, isa.SrcIND))     // C ^ u
	b.cfge(c2, isa.ElemE2, eCfg(isa.ERotl, isa.SrcINC, 0)) // <<< t
	b.cfge(c2, isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcINER))  // + S[2i+1]
	b.insel(ru, 3, 7)                                      // PD: pass D
}

// rc6FormBRows emits one form-B round at rows (rt, rt+1): input layout
// (A1', B, C1', D) whose roles are (D2, A2, B2, C2).
func (b *builder) rc6FormBRows(rt int) {
	ru := rt + 1
	// Row T: pass A2 (block 1) in col0, t2 = g(B2 = block 2) in col1,
	// pass C2 (block 3) in col2, u2 = g(D2 = block 0) in col3.
	b.insel(rt, 0, 1) // INB = block 1
	c1 := isa.SliceAt(rt, 1)
	b.insel(rt, 1, 2) // INC = block 2
	b.cfge(c1, isa.ElemE1, eImm(isa.EShl, 1))
	b.cfge(c1, isa.ElemA1, aImm(isa.AOr, 1))
	b.cfge(c1, isa.ElemD, dCfg(isa.DMul32, isa.SrcINC))
	b.cfge(c1, isa.ElemE3, eImm(isa.ERotl, 5))
	b.insel(rt, 2, 3) // IND = block 3
	c3 := isa.SliceAt(rt, 3)
	b.insel(rt, 3, 1) // col3's INB = block 0
	b.cfge(c3, isa.ElemE1, eImm(isa.EShl, 1))
	b.cfge(c3, isa.ElemA1, aImm(isa.AOr, 1))
	b.cfge(c3, isa.ElemD, dCfg(isa.DMul32, isa.SrcINB))
	b.cfge(c3, isa.ElemE3, eImm(isa.ERotl, 5))
	// Row U input: (A2, t2, C2, u2); bypass carries (D2, A2, B2, C2).
	// Outputs restore the canonical layout (A3, B3, C3, D3) =
	// (B2, C2', D2, A2').
	b.insel(ru, 0, 6) // PC: B2
	u1 := isa.SliceAt(ru, 1)
	b.insel(ru, 1, 2)                                      // INC = C2
	b.cfge(u1, isa.ElemA1, aCfg(isa.AXor, isa.SrcIND))     // C2 ^ u2
	b.cfge(u1, isa.ElemE2, eCfg(isa.ERotl, isa.SrcINA, 0)) // <<< t2 (own block)
	b.cfge(u1, isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcINER))  // + S[2i+1]
	b.insel(ru, 2, 4)                                      // PA: D2
	u3 := isa.SliceAt(ru, 3)
	b.insel(ru, 3, 1)                                      // INB = A2
	b.cfge(u3, isa.ElemA1, aCfg(isa.AXor, isa.SrcINC))     // A2 ^ t2
	b.cfge(u3, isa.ElemE2, eCfg(isa.ERotl, isa.SrcINA, 0)) // <<< u2 (own block)
	b.cfge(u3, isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcINER))  // + S[2i]
}

// rc6RotateFixRows emits the word-rotation pass (A',B,C',D) → (B,C',D,A')
// at rows (r, r+1); the second row is identity.
func (b *builder) rc6RotateFixRows(r int) {
	b.insel(r, 0, 1) // block 1 = B
	b.insel(r, 1, 2) // block 2 = C'
	b.insel(r, 2, 3) // block 3 = D
	b.insel(r, 3, 1) // col3's INB = block 0 = A'
}

// BuildRC6 compiles RC6-32/rounds/16 at unroll depth hw onto COBRA. rounds
// is normally cipher.RC6Rounds (20); reduced-round variants are supported
// for testing. The key must be 16, 24 or 32 bytes.
func BuildRC6(key []byte, hw, rounds int) (*Program, error) {
	ck, err := cipher.NewRC6Rounds(key, rounds)
	if err != nil {
		return nil, err
	}
	s := ck.RoundKeys()

	full := hw == rounds
	fix := hw%2 == 1 && !full
	extra := 0
	if fix {
		extra = 2
	}
	geo, passes, err := validateUnroll("rc6", hw, rounds, 2, extra)
	if err != nil {
		return nil, err
	}
	if geo.Rows < 4 {
		geo.Rows = 4 // the paper's base architecture is the minimum build
	}

	p := &Program{
		Name:        fmt.Sprintf("rc6-%d", hw),
		Cipher:      "rc6",
		HWRounds:    hw,
		TotalRounds: rounds,
		Geometry:    geo,
		Window:      1,
		Streaming:   full,
	}
	b := &builder{}

	// --- Setup phase (key-specific configuration; runs once) -------------
	b.disout()

	// Static round rows: stage s occupies rows 2s, 2s+1; even stages are
	// form A, odd stages form B.
	for st := 0; st < hw; st++ {
		if st%2 == 0 {
			b.rc6FormARows(2 * st)
		} else {
			b.rc6FormBRows(2 * st)
		}
	}
	if fix {
		b.rc6RotateFixRows(2 * hw)
	}

	// Key layout: eRAM bank 0, address r holds the two round keys of round
	// r (1-based) in the columns that consume them: form-A rounds read
	// S[2r] in col0 and S[2r+1] in col2; form-B rounds read S[2r] in col3
	// and S[2r+1] in col1.
	for r := 1; r <= rounds; r++ {
		formA := (r-1)%hw%2 == 0
		if formA {
			b.eramw(0, 0, r, s[2*r])
			b.eramw(2, 0, r, s[2*r+1])
		} else {
			b.eramw(3, 0, r, s[2*r])
			b.eramw(1, 0, r, s[2*r+1])
		}
	}

	regRows := b.rc6Regs(hw, full, fix)
	for _, row := range regRows {
		b.regRow(row, true)
	}

	if full {
		b.buildRC6Streaming(p, s, hw, len(regRows))
	} else {
		b.buildRC6Iterative(p, s, hw, passes, len(regRows)+1)
	}
	p.Instrs = b.ins
	return p, nil
}

// rc6Regs returns the registered rows: every round boundary for streaming;
// all but the final stage for iterative operation, unless a combinational
// rotate-fix tail follows the final stage.
func (b *builder) rc6Regs(hw int, full, fix bool) []int {
	var rows []int
	for st := 0; st < hw; st++ {
		last := st == hw-1
		if full || !last || fix {
			rows = append(rows, 2*st+1)
		}
	}
	return rows
}

// buildRC6Streaming emits the non-feedback pipelined control flow.
func (b *builder) buildRC6Streaming(p *Program, s []uint32, hw, depth int) {
	p.PipelineDepth = depth
	// Whitening is static: input-side pre-whitening applies to every
	// consumed block, output-side post-whitening to every emitted one.
	b.white(1, isa.WhiteAdd, true, s[0])
	b.white(3, isa.WhiteAdd, true, s[1])
	b.white(0, isa.WhiteAdd, false, s[2*hw+2])
	b.white(2, isa.WhiteAdd, false, s[2*hw+3])
	// Static key addresses: stage s serves round s+1 on every block.
	for st := 0; st < hw; st++ {
		b.erRow(2*st+1, 0, st+1)
	}
	b.streamingFlow(depth)
}

// buildRC6Iterative emits the feedback-mode control flow: `passes` passes
// of `ticks` datapath cycles per block, reconfiguring key addresses in
// overfull (DISOUT) windows between passes.
func (b *builder) buildRC6Iterative(p *Program, s []uint32, hw, passes, ticks int) {
	rounds := p.TotalRounds
	b.iterativeFlow(ticks, passes, iterHooks{
		FirstPass: func(b *builder) {
			b.white(1, isa.WhiteAdd, true, s[0])
			b.white(3, isa.WhiteAdd, true, s[1])
		},
		SecondPass: func(b *builder) {
			b.whiteOff(1)
			b.whiteOff(3)
		},
		LastPass: func(b *builder) {
			b.white(0, isa.WhiteAdd, false, s[2*rounds+2])
			b.white(2, isa.WhiteAdd, false, s[2*rounds+3])
		},
		EveryPass: func(b *builder, pass int) {
			for st := 0; st < hw; st++ {
				b.erRow(2*st+1, 0, pass*hw+st+1)
			}
		},
		Epilogue: func(b *builder) {
			b.whiteOff(0)
			b.whiteOff(2)
		},
	})
}
