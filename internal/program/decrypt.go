package program

import (
	"fmt"

	"cobra/internal/cipher"
	"cobra/internal/datapath"
	"cobra/internal/isa"
)

// Decryption mappings. The paper's control protocol covers decryption
// (§3.4) but its evaluation maps only encryption; these builders show the
// architecture carries decryption with the same structures:
//
//   - RC6: the inverse round needs subtract-then-rotate-right-then-XOR,
//     which the chain provides as B(SUB) in the T row followed by
//     E1(ROTR, data-dependent via the negated 5-bit amount) and A1(XOR) in
//     the U row. The inverse pre-rotation folds into INSEL selection, so —
//     unlike encryption — every decryption round has identical form.
//   - Rijndael: the FIPS-197 equivalent inverse cipher has exactly the
//     encryption round structure (InvSubBytes → InvShiftRows →
//     InvMixColumns → AddRoundKey), so the encryption mapping is reused
//     with the inverse S-box, the inverse ShiftRows permutation, the
//     {0e,0b,0d,09} MDS constants and the transformed round keys.
//   - Serpent: the inverse linear transformation is three rows of fixed
//     rotates and XORs (mirroring the forward LT), followed by the paged
//     inverse S-box and the key XOR (A2, which sits after C in the chain).

// --- RC6 ------------------------------------------------------------------

// rc6DecRoundRows emits one RC6 decryption round at rows (rt, rt+1). With
// the state (A,B,C,D) as cipher.RC6.Decrypt's loop variables before its
// pre-rotation, the round computes
//
//	out = (ror(D−S[2i], u) ^ t,  A,  ror(B−S[2i+1], t) ^ u,  C)
//
// with t = g(A), u = g(C), g(x) = rotl(x(2x+1), 5) — canonical layout in
// and out, so every round is configured identically.
func (b *builder) rc6DecRoundRows(rt int) {
	ru := rt + 1
	// Row T: key subtractions in cols 0/2, the quadratics in the MUL cols.
	c0 := isa.SliceAt(rt, 0)
	b.insel(rt, 0, 3)                                     // IND = block 3 = D
	b.cfge(c0, isa.ElemB, bCfg(isa.BSub, 2, isa.SrcINER)) // D − S[2i]
	c1 := isa.SliceAt(rt, 1)
	b.insel(rt, 1, 1) // col1's INB = block 0 = A
	b.cfge(c1, isa.ElemE1, eImm(isa.EShl, 1))
	b.cfge(c1, isa.ElemA1, aImm(isa.AOr, 1))
	b.cfge(c1, isa.ElemD, dCfg(isa.DMul32, isa.SrcINB))
	b.cfge(c1, isa.ElemE3, eImm(isa.ERotl, 5)) // t = g(A)
	c2 := isa.SliceAt(rt, 2)
	b.insel(rt, 2, 2)                                     // col2's INC = block 1 = B
	b.cfge(c2, isa.ElemB, bCfg(isa.BSub, 2, isa.SrcINER)) // B − S[2i+1]
	c3 := isa.SliceAt(rt, 3)
	b.insel(rt, 3, 3) // col3's IND = block 2 = C
	b.cfge(c3, isa.ElemE1, eImm(isa.EShl, 1))
	b.cfge(c3, isa.ElemA1, aImm(isa.AOr, 1))
	b.cfge(c3, isa.ElemD, dCfg(isa.DMul32, isa.SrcIND))
	b.cfge(c3, isa.ElemE3, eImm(isa.ERotl, 5)) // u = g(C)

	// Row U input: (D−S, t, B−S', u); bypass carries (A,B,C,D).
	u0 := isa.SliceAt(ru, 0)
	b.cfge(u0, isa.ElemE1, isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcIND, Neg: true}.Encode())
	b.cfge(u0, isa.ElemA1, aCfg(isa.AXor, isa.SrcINB)) // ror(·,u) ^ t
	b.insel(ru, 1, 4)                                  // PA: pass A
	u2 := isa.SliceAt(ru, 2)
	b.cfge(u2, isa.ElemE1, isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcINC, Neg: true}.Encode())
	b.cfge(u2, isa.ElemA1, aCfg(isa.AXor, isa.SrcIND)) // ror(·,t) ^ u
	b.insel(ru, 3, 6)                                  // PC: pass C
}

// BuildRC6Decrypt compiles RC6 decryption at unroll depth hw.
func BuildRC6Decrypt(key []byte, hw, rounds int) (*Program, error) {
	ck, err := cipher.NewRC6Rounds(key, rounds)
	if err != nil {
		return nil, err
	}
	s := ck.RoundKeys()
	full := hw == rounds
	geo, passes, err := validateUnroll("rc6-dec", hw, rounds, 2, 0)
	if err != nil {
		return nil, err
	}
	if geo.Rows < 4 {
		geo.Rows = 4
	}

	p := &Program{
		Name:        fmt.Sprintf("rc6-dec-%d", hw),
		Cipher:      "rc6",
		HWRounds:    hw,
		TotalRounds: rounds,
		Geometry:    geo,
		Window:      1,
		Streaming:   full,
	}
	b := &builder{}
	b.disout()
	for st := 0; st < hw; st++ {
		b.rc6DecRoundRows(2 * st)
	}
	// Keys: S[2i] in col0, S[2i+1] in col2 at address i (uniform rounds).
	for i := 1; i <= rounds; i++ {
		b.eramw(0, 0, i, s[2*i])
		b.eramw(2, 0, i, s[2*i+1])
	}
	tail := geo.Rows > 2*hw
	var regs []int
	for st := 0; st < hw; st++ {
		if full || st < hw-1 || tail {
			regs = append(regs, 2*st+1)
		}
	}
	for _, row := range regs {
		b.regRow(row, true)
	}

	// Whitening: undo the encryption post-whitening at the input (ADD of
	// the negated keys) and the pre-whitening at the output.
	inW := func(b *builder) {
		b.white(0, isa.WhiteAdd, true, -s[2*rounds+2])
		b.white(2, isa.WhiteAdd, true, -s[2*rounds+3])
	}
	outW := func(b *builder) {
		b.white(1, isa.WhiteAdd, false, -s[0])
		b.white(3, isa.WhiteAdd, false, -s[1])
	}

	if full {
		p.PipelineDepth = len(regs)
		inW(b)
		outW(b)
		for st := 0; st < hw; st++ {
			b.erRow(2*st, 0, rounds-st)
		}
		b.streamingFlow(len(regs))
		p.Instrs = b.ins
		return p, nil
	}

	ticks := len(regs) + 1
	b.iterativeFlow(ticks, passes, iterHooks{
		FirstPass: inW,
		SecondPass: func(b *builder) {
			b.whiteOff(0)
			b.whiteOff(2)
		},
		LastPass: outW,
		EveryPass: func(b *builder, pass int) {
			for st := 0; st < hw; st++ {
				b.erRow(2*st, 0, rounds-(pass*hw+st))
			}
		},
		Epilogue: func(b *builder) {
			b.whiteOff(1)
			b.whiteOff(3)
		},
	})
	p.Instrs = b.ins
	return p, nil
}

// --- Rijndael ----------------------------------------------------------------

// aesInvShiftRowsPerm returns the InvShiftRows byte permutation:
// destination byte 4c+r takes source byte 4((c−r) mod 4)+r.
func aesInvShiftRowsPerm() [16]uint8 {
	var p [16]uint8
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			p[4*c+r] = uint8(4*((c-r+4)%4) + r)
		}
	}
	return p
}

// BuildRijndaelDecrypt compiles AES-128 decryption at unroll depth hw using
// the equivalent inverse cipher.
func BuildRijndaelDecrypt(key []byte, hw int) (*Program, error) {
	ck, err := cipher.NewRijndael(key)
	if err != nil {
		return nil, err
	}
	const rounds = cipher.AESRounds
	full := hw == rounds
	geo, passes, err := validateUnroll("rijndael-dec", hw, rounds, 2, 0)
	if err != nil {
		return nil, err
	}
	if geo.Rows < 4 {
		geo.Rows = 4
	}

	p := &Program{
		Name:        fmt.Sprintf("rijndael-dec-%d", hw),
		Cipher:      "rijndael",
		HWRounds:    hw,
		TotalRounds: rounds,
		Geometry:    geo,
		Window:      1,
		Streaming:   full,
	}
	b := &builder{}
	b.disout()

	invMDS := isa.FCfg{Mode: isa.FMDS, Consts: [4]uint8{0x0e, 0x0b, 0x0d, 0x09}}.Encode()
	sbox := cipher.AESInvSBox()
	for bank := 0; bank < 4; bank++ {
		b.loadS8(isa.SliceAll(), bank, &sbox)
	}
	perm := aesInvShiftRowsPerm()
	for st := 0; st < hw; st++ {
		b.shuf(st, perm)
	}
	for st := 0; st < hw; st++ {
		rs := 2 * st
		b.cfge(isa.SliceRow(rs), isa.ElemC, isa.CCfg{Mode: isa.CS8x8}.Encode())
		if !(full && st == hw-1) {
			b.cfge(isa.SliceRow(rs+1), isa.ElemF, invMDS)
		}
		b.cfge(isa.SliceRow(rs+1), isa.ElemA2, aCfg(isa.AXor, isa.SrcINER))
	}
	// Equivalent-inverse round keys: address j holds dw[j].
	for j := 1; j <= rounds; j++ {
		w := ck.EquivInvRoundKeyWords(j)
		for c := 0; c < 4; c++ {
			b.eramw(c, 0, j, w[c])
		}
	}
	tail := geo.Rows > 2*hw
	var regs []int
	for st := 0; st < hw; st++ {
		if full || st < hw-1 || tail {
			regs = append(regs, 2*st+1)
		}
	}
	for _, row := range regs {
		b.regRow(row, true)
	}

	dk0 := ck.EquivInvRoundKeyWords(0)
	if full {
		p.PipelineDepth = len(regs)
		for c := 0; c < 4; c++ {
			b.white(c, isa.WhiteXor, true, dk0[c])
		}
		for st := 0; st < hw; st++ {
			b.erRow(2*st+1, 0, st+1)
		}
		b.streamingFlow(len(regs))
		p.Instrs = b.ins
		return p, nil
	}

	ticks := len(regs) + 1
	lastStageRowM := 2*(hw-1) + 1
	b.iterativeFlow(ticks, passes, iterHooks{
		FirstPass: func(b *builder) {
			for c := 0; c < 4; c++ {
				b.white(c, isa.WhiteXor, true, dk0[c])
			}
		},
		SecondPass: func(b *builder) {
			for c := 0; c < 4; c++ {
				b.whiteOff(c)
			}
		},
		LastPass: func(b *builder) {
			b.cfge(isa.SliceRow(lastStageRowM), isa.ElemF, bypass)
		},
		EveryPass: func(b *builder, pass int) {
			for st := 0; st < hw; st++ {
				b.erRow(2*st+1, 0, pass*hw+st+1)
			}
		},
		Epilogue: func(b *builder) {
			b.cfge(isa.SliceRow(lastStageRowM), isa.ElemF, invMDS)
		},
	})
	p.Instrs = b.ins
	return p, nil
}

// --- Serpent -----------------------------------------------------------------

// serpentInvLTRows emits the inverse linear transformation at rows
// r0..r0+2.
func (b *builder) serpentInvLTRows(r0 int) {
	// Step A: x2 = ror(x2,22) ^ x3 ^ (x1<<7); x0 = ror(x0,5) ^ x1 ^ x3.
	c2 := isa.SliceAt(r0, 2)
	b.cfge(c2, isa.ElemE1, eImm(isa.ERotl, 10))           // ror 22
	b.cfge(c2, isa.ElemA1, aCfg(isa.AXor, isa.SrcIND))    // ^ x3
	b.cfge(c2, isa.ElemA2, aShl(isa.AXor, isa.SrcINC, 7)) // ^ (x1 << 7)
	c0 := isa.SliceAt(r0, 0)
	b.cfge(c0, isa.ElemE1, eImm(isa.ERotl, 27))        // ror 5
	b.cfge(c0, isa.ElemA1, aCfg(isa.AXor, isa.SrcINB)) // ^ x1
	b.cfge(c0, isa.ElemA2, aCfg(isa.AXor, isa.SrcIND)) // ^ x3
	// Step B: x3 = ror(x3,7) ^ x2' ^ (x0'<<3); x1 = ror(x1,1) ^ x0' ^ x2'.
	r1 := r0 + 1
	c3 := isa.SliceAt(r1, 3)
	b.cfge(c3, isa.ElemE1, eImm(isa.ERotl, 25))           // ror 7
	b.cfge(c3, isa.ElemA1, aCfg(isa.AXor, isa.SrcIND))    // ^ x2'
	b.cfge(c3, isa.ElemA2, aShl(isa.AXor, isa.SrcINB, 3)) // ^ (x0' << 3)
	c1 := isa.SliceAt(r1, 1)
	b.cfge(c1, isa.ElemE1, eImm(isa.ERotl, 31))        // ror 1
	b.cfge(c1, isa.ElemA1, aCfg(isa.AXor, isa.SrcINB)) // ^ x0'
	b.cfge(c1, isa.ElemA2, aCfg(isa.AXor, isa.SrcINC)) // ^ x2'
	// Step C: x2 = ror(x2,3); x0 = ror(x0,13).
	r2 := r0 + 2
	b.cfge(isa.SliceAt(r2, 2), isa.ElemE1, eImm(isa.ERotl, 29))
	b.cfge(isa.SliceAt(r2, 0), isa.ElemE1, eImm(isa.ERotl, 19))
}

// serpentClearInvLTRows emits the bypass toggles for the inverse-LT rows.
func (b *builder) serpentClearInvLTRows(r0 int) {
	for _, sl := range []isa.Slice{isa.SliceAt(r0, 0), isa.SliceAt(r0, 2),
		isa.SliceAt(r0+1, 1), isa.SliceAt(r0+1, 3)} {
		b.cfge(sl, isa.ElemE1, bypass)
		b.cfge(sl, isa.ElemA1, bypass)
		b.cfge(sl, isa.ElemA2, bypass)
	}
	b.cfge(isa.SliceAt(r0+2, 0), isa.ElemE1, bypass)
	b.cfge(isa.SliceAt(r0+2, 2), isa.ElemE1, bypass)
}

// BuildSerpentDecrypt compiles the Serpent-workload decryption on the base
// architecture (one round per pass; deeper decryption unrolls follow the
// same pattern and are left at the paper's evaluated granularity).
func BuildSerpentDecrypt(key []byte) (*Program, error) {
	ck, err := cipher.NewSerpentCOBRA(key)
	if err != nil {
		return nil, err
	}
	const rounds = cipher.SerpentRounds
	geo := datapath.BaseGeometry()

	p := &Program{
		Name:        "serpent-dec-1",
		Cipher:      "serpent",
		HWRounds:    1,
		TotalRounds: rounds,
		Geometry:    geo,
		Window:      1,
	}
	b := &builder{}
	b.disout()

	// Inverse S-box pages into every 4→4 bank.
	pages := cipher.SerpentInvSBoxes()
	for bank := 0; bank < 4; bank++ {
		b.loadS4Pages(isa.SliceAll(), bank, &pages)
	}
	// Row 3 hosts the paged inverse S-box followed by the key XOR on A2
	// (C precedes A2 in the chain); rows 0-2 host the inverse LT from
	// pass 1 onward.
	b.cfge(isa.SliceRow(3), isa.ElemA2, aCfg(isa.AXor, isa.SrcINER))
	for r := 0; r <= 31; r++ {
		w := ck.RoundKeyWords(r)
		for c := 0; c < 4; c++ {
			b.eramw(c, 0, r, w[c])
		}
	}
	k32 := ck.RoundKeyWords(32)

	// 32 passes: pass 0 is the K32/invS7/K31 prefix (inverse LT rows
	// idle); pass p ≥ 1 handles round 31−p.
	b.iterativeFlow(1, rounds, iterHooks{
		FirstPass: func(b *builder) {
			for c := 0; c < 4; c++ {
				b.white(c, isa.WhiteXor, true, k32[c])
			}
		},
		SecondPass: func(b *builder) {
			for c := 0; c < 4; c++ {
				b.whiteOff(c)
			}
			b.serpentInvLTRows(0)
		},
		EveryPass: func(b *builder, pass int) {
			r := 31
			if pass > 0 {
				r = 31 - pass
			}
			b.cfge(isa.SliceRow(3), isa.ElemC,
				isa.CCfg{Mode: isa.CS4x4, Page: uint8(r % 8)}.Encode())
			b.erRow(3, 0, r)
		},
		Epilogue: func(b *builder) {
			b.serpentClearInvLTRows(0)
		},
	})
	p.Instrs = b.ins
	return p, nil
}
