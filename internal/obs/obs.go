// Package obs is the reproduction's zero-dependency observability core:
// atomic counters, gauges, fixed-bucket int64 histograms, and span-style
// timers with an optional ring-buffer trace, organized into registries
// that export themselves as Prometheus text and expvar JSON (see
// export.go). The paper's whole evaluation (§4, Tables 3–6) is a
// measurement story — cycles, throughput, gate counts — and the ROADMAP's
// production north star needs those quantities continuously and at
// runtime, not only at the end of a benchmark run; obs is the layer that
// carries them from the simulator, the trace-compiled executor, devices
// and farms to a live /metrics endpoint.
//
// Design constraints, in order:
//
//   - Hot-path updates are allocation-free and lock-free: Counter.Add,
//     Gauge.Set and Histogram.Observe are single atomic operations (plus a
//     short bounds scan for histograms), and Timer spans are value types.
//     The fastpath per-block loop stays untouched; instrumentation rides
//     at call granularity (internal/core) and Run granularity
//     (internal/sim), gated by alloc tests in this package and a
//     BenchmarkFastpathCTR delta gate in internal/core.
//   - Registries are hermetic by default: a Device or Farm owns a private
//     child registry that is only visible process-wide when explicitly
//     attached to a parent (ultimately obs.Default), so tests never share
//     counters.
//   - No third-party dependencies: the Prometheus text format is simple
//     enough to emit directly, and /debug/vars rides the standard
//     library's expvar.
package obs

import "sync/atomic"

// Label is one metric dimension (e.g. {mode="ctr"} or {worker="3"}).
// Labels attach to individual metrics, to a registry (stamped on all its
// metrics), or to a child registry at Attach time.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exported value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value. The zero value is ready to use; all
// methods are safe for concurrent use and allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram over int64 values
// (cycles, block counts, nanoseconds — the reproduction's quantities are
// all integers). Observe is lock-free, allocation-free, and costs one
// short linear scan over the bucket bounds plus three atomic adds.
type Histogram struct {
	bounds []int64 // ascending inclusive upper bounds; implicit +Inf last
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// newHistogram builds a histogram with the given bucket upper bounds
// (must be ascending; an implicit +Inf bucket is appended).
func newHistogram(bounds []int64) *Histogram {
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramSnapshot is a consistent-enough point-in-time copy of a
// histogram (buckets are read individually; under concurrent writes the
// snapshot may straddle an observation, as in any lock-free exporter).
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// element for the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start, each factor times the previous (factors < 2 degrade to +1 steps
// when rounding stalls).
func ExpBuckets(start int64, factor float64, n int) []int64 {
	out := make([]int64, n)
	v := float64(start)
	prev := int64(0)
	for i := 0; i < n; i++ {
		b := int64(v)
		if b <= prev {
			b = prev + 1
		}
		out[i] = b
		prev = b
		v *= factor
	}
	return out
}

// DurationBuckets are the default latency bounds in nanoseconds: 1µs to
// ~4.2s in ×4 steps, sized for per-call encryption latencies from a
// single fastpath block batch up to long interpreter runs.
func DurationBuckets() []int64 { return ExpBuckets(1000, 4, 12) }

// BlockBuckets are the default bounds for block-count distributions
// (shard sizes, batch sizes): 1 to 4096 blocks in ×2 steps.
func BlockBuckets() []int64 { return ExpBuckets(1, 2, 13) }
