package program

import (
	"cobra/internal/dataflow"
)

// Analyze runs the word-level def-use/liveness/taint analysis and static
// timing of package dataflow over the program's microcode. Every builder in
// this package analyzes clean (regression-tested at every unroll depth and
// window size); an Error finding on a hand-written or edited program points
// at broken key injection, missing diffusion, or a read of storage nothing
// wrote. Compile consumes the dead-element mask for trace elision.
func (p *Program) Analyze() *dataflow.Result {
	return dataflow.Analyze(p.Instrs, dataflow.Config{Rows: p.Geometry.Rows, Window: p.Window})
}
