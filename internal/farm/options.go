package farm

import (
	"fmt"
	"time"

	"cobra/internal/core"
	"cobra/internal/obs"
)

// Policy selects the pool's dispatch discipline.
type Policy string

const (
	// PolicyAffinity is the program-aware elastic scheduler: shards are
	// placed on workers whose device already holds the tenant's compiled
	// program (so consecutive jobs skip reconfiguration — the
	// batch-to-amortize-setup story of the RC4 bytes-per-clock paper,
	// applied to array reconfiguration), idle workers steal from deep
	// queues, and the active worker set grows under sustained depth and
	// quiesces when idle.
	PolicyAffinity Policy = "affinity"
	// PolicyRoundRobin is the legacy fixed-rotation dispatcher: every
	// worker stays active and shards rotate over the pool regardless of
	// which program each device holds. It remains selectable as the
	// control arm of the scheduler benchmark.
	PolicyRoundRobin Policy = "roundrobin"
)

// Options configures a worker pool. The zero value is usable: every
// field has a default, applied by the constructors.
type Options struct {
	// Workers is the pool size — the number of replicated devices and
	// the upper bound of the active set. Default 4.
	Workers int
	// MinWorkers is the autoscaler's floor: quiescing never parks below
	// this many active workers. Default 1; clamped to [1, Workers].
	MinWorkers int
	// QueueDepth is each worker's queue capacity; dispatch blocks
	// (backpressure) once a worker is this many shards behind. Default
	// workerQueueDepth (2).
	QueueDepth int
	// ShardBlocks caps a shard at this many 128-bit blocks. Default
	// DefaultShardBlocks (1024).
	ShardBlocks int
	// Policy selects the dispatch discipline. Default PolicyAffinity.
	Policy Policy
	// IdleQuiesce is how long a worker idles before the autoscaler parks
	// it (it reactivates on demand at placement time). Default 250ms;
	// negative disables quiescing.
	IdleQuiesce time.Duration
	// StealBacklog is the minimum queue depth of a victim worker before
	// an idle worker performs a cross-program steal — a steal that costs
	// the thief a reconfiguration, so it only pays off against a real
	// backlog. Same-program steals have no threshold. Default 2.
	StealBacklog int
	// Metrics, when non-nil, is the parent registry the pool's registry
	// attaches to (and detaches from on Close).
	Metrics *obs.Registry
	// Trace enables the pool registry's span-trace ring with the given
	// capacity.
	Trace int
	// Config is the tenant device configuration used by the
	// single-tenant constructors Open and New (unroll, interpreter,
	// validate; its Metrics/Trace fields are hoisted into the pool
	// options when the pool-level fields are unset). Ignored by NewPool,
	// where each Pool.Open call carries its own core.Config.
	Config core.Config
}

// withDefaults validates o and fills in unset fields.
func (o Options) withDefaults() (Options, error) {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("farm: need at least 1 worker, got %d", o.Workers)
	}
	if o.MinWorkers <= 0 {
		o.MinWorkers = 1
	}
	if o.MinWorkers > o.Workers {
		o.MinWorkers = o.Workers
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = workerQueueDepth
	}
	if o.QueueDepth < 0 {
		return o, fmt.Errorf("farm: queue depth must be positive, got %d", o.QueueDepth)
	}
	if o.ShardBlocks == 0 {
		o.ShardBlocks = DefaultShardBlocks
	}
	if o.ShardBlocks < 0 {
		return o, fmt.Errorf("farm: shard blocks must be positive, got %d", o.ShardBlocks)
	}
	switch o.Policy {
	case "":
		o.Policy = PolicyAffinity
	case PolicyAffinity, PolicyRoundRobin:
	default:
		return o, fmt.Errorf("farm: unknown scheduler policy %q", o.Policy)
	}
	if o.IdleQuiesce == 0 {
		o.IdleQuiesce = 250 * time.Millisecond
	}
	if o.StealBacklog <= 0 {
		o.StealBacklog = 2
	}
	if o.Metrics == nil {
		o.Metrics = o.Config.Metrics
	}
	if o.Trace == 0 {
		o.Trace = o.Config.Trace
	}
	return o, nil
}
