package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"cobra/internal/obs"
)

// counterValue digs one sample out of a registry gather; missing series
// fail the test.
func counterValue(t *testing.T, r *obs.Registry, name string, labels ...obs.Label) int64 {
	t.Helper()
	for _, s := range r.Gather() {
		if s.Name != name {
			continue
		}
		if len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for i := range labels {
			if s.Labels[i] != labels[i] {
				match = false
			}
		}
		if match {
			return s.Value
		}
	}
	t.Fatalf("series %s%v not found", name, labels)
	return 0
}

// TestDeviceMetricsWiring checks the single-bookkeeping claim: the
// registry's counters, the Report view, and the engine split all agree
// after real traffic.
func TestDeviceMetricsWiring(t *testing.T) {
	d, err := Configure(Rijndael, key, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.UsesFastpath() {
		t.Fatal("full-unroll Rijndael should trace-compile")
	}
	msg := bytes.Repeat([]byte{0x5A}, 64) // 4 blocks
	iv := make([]byte, 16)
	if _, err := d.EncryptCTR(context.Background(), iv, msg); err != nil {
		t.Fatal(err)
	}
	reg := d.Obs()
	if got := counterValue(t, reg, "cobra_device_requests_total", obs.L("mode", "ctr")); got != 1 {
		t.Errorf("ctr requests = %d, want 1", got)
	}
	if got := counterValue(t, reg, "cobra_device_mode_bytes_total", obs.L("mode", "ctr")); got != 64 {
		t.Errorf("ctr bytes = %d, want 64", got)
	}
	if got := counterValue(t, reg, "cobra_device_engine_blocks_total", obs.L("engine", "fastpath")); got != 4 {
		t.Errorf("fastpath engine blocks = %d, want 4", got)
	}
	if got := counterValue(t, reg, "cobra_device_fastpath_compiles_total"); got != 1 {
		t.Errorf("compiles = %d, want 1", got)
	}
	r := d.Report()
	if r.Backend != "device" || r.Workers != 1 {
		t.Errorf("summary backend/workers = %q/%d, want device/1", r.Backend, r.Workers)
	}
	if r.Stats.BlocksOut != 4 {
		t.Errorf("report BlocksOut = %d, want 4", r.Stats.BlocksOut)
	}
	if got := counterValue(t, reg, "cobra_device_blocks_out_total"); got != int64(r.Stats.BlocksOut) {
		t.Errorf("registry blocks_out %d != report %d: the views diverged", got, r.Stats.BlocksOut)
	}

	// ResetStats rewinds the report, not the exported series.
	before := counterValue(t, reg, "cobra_device_blocks_out_total")
	d.ResetStats()
	if got := d.Report().Stats; got.BlocksOut != 0 || got.Cycles != 0 {
		t.Errorf("ResetStats left report counters: %+v", got)
	}
	if after := counterValue(t, reg, "cobra_device_blocks_out_total"); after != before {
		t.Errorf("ResetStats moved the exported counter %d -> %d; must stay monotonic", before, after)
	}
}

// TestDeviceFallbackAndErrorCounters pins the fallback-reason and error
// series.
func TestDeviceFallbackAndErrorCounters(t *testing.T) {
	d, err := Configure(Rijndael, key, Config{Interpreter: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.EncryptECB(context.Background(), make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	reg := d.Obs()
	if got := counterValue(t, reg, "cobra_device_fastpath_fallbacks_total", obs.L("reason", "forced_interpreter")); got != 1 {
		t.Errorf("forced_interpreter fallbacks = %d, want 1", got)
	}
	if got := counterValue(t, reg, "cobra_device_engine_blocks_total", obs.L("engine", "interpreter")); got != 2 {
		t.Errorf("interpreter engine blocks = %d, want 2", got)
	}
	if _, err := d.EncryptECB(context.Background(), make([]byte, 17)); err == nil {
		t.Fatal("partial block accepted")
	}
	if got := counterValue(t, reg, "cobra_device_errors_total", obs.L("mode", "ecb")); got != 1 {
		t.Errorf("ecb errors = %d, want 1", got)
	}
}

// TestDeviceContextCancelled checks the unified API's cancellation
// contract on the single-device backend.
func TestDeviceContextCancelled(t *testing.T) {
	d, err := Configure(Rijndael, key, Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.EncryptECB(ctx, make([]byte, 32)); err != context.Canceled {
		t.Errorf("cancelled EncryptECB err = %v, want context.Canceled", err)
	}
	if _, err := d.EncryptCBC(ctx, make([]byte, 16), make([]byte, 32)); err != context.Canceled {
		t.Errorf("cancelled EncryptCBC err = %v, want context.Canceled", err)
	}
	if _, err := d.DecryptECB(ctx, make([]byte, 32)); err != context.Canceled {
		t.Errorf("cancelled DecryptECB err = %v, want context.Canceled", err)
	}
}

// TestDeviceMetricsAttach checks parent attachment and the Prometheus
// rendering of a device's families (the sim observer rides the same
// registry).
func TestDeviceMetricsAttach(t *testing.T) {
	parent := obs.NewRegistry(obs.L("app", "test"))
	d, err := Configure(RC6, key, Config{Unroll: 2, Metrics: parent})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.EncryptECB(context.Background(), make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := parent.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"cobra_device_requests_total", "cobra_sim_ticks_total",
		`app="test"`, `alg="rc6"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("parent exposition missing %q", want)
		}
	}
}

// TestReconfigureKeepsRegistry checks that algorithm agility preserves
// the metrics identity: same registry, monotonic counters, info series
// flipped to the new algorithm, report view reset.
func TestReconfigureKeepsRegistry(t *testing.T) {
	d, err := Configure(RC6, key, Config{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := d.Obs()
	if _, err := d.EncryptECB(context.Background(), make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	before := counterValue(t, reg, "cobra_device_blocks_out_total")
	if before == 0 {
		t.Fatal("no blocks counted before reconfigure")
	}
	if err := d.Reconfigure(Serpent, key, Config{Unroll: 1}); err != nil {
		t.Fatal(err)
	}
	if d.Obs() != reg {
		t.Fatal("reconfigure replaced the device registry")
	}
	if got := d.Report().Stats.BlocksOut; got != 0 {
		t.Errorf("report BlocksOut after reconfigure = %d, want 0", got)
	}
	if _, err := d.EncryptECB(context.Background(), make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if after := counterValue(t, reg, "cobra_device_blocks_out_total"); after < before {
		t.Errorf("exported counter went backwards across reconfigure: %d -> %d", before, after)
	}
	if got := counterValue(t, reg, "cobra_device_info", obs.L("alg", "serpent")); got != 1 {
		t.Errorf("info{alg=serpent} = %d, want 1", got)
	}
	if got := counterValue(t, reg, "cobra_device_info", obs.L("alg", "rc6")); got != 0 {
		t.Errorf("info{alg=rc6} = %d, want 0", got)
	}
}

// TestEncryptCTRIntoAllocFree is the device-level zero-allocation gate:
// on a warmed device with an active fastpath, the CTR hot path — counter
// staging, encryption, keystream XOR, and all instrumentation — performs
// no heap allocations (testing.AllocsPerRun runs one warm-up call, which
// grows the device scratch).
func TestEncryptCTRIntoAllocFree(t *testing.T) {
	d, err := Configure(Rijndael, key, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.UsesFastpath() {
		t.Fatal("device did not compile a fastpath")
	}
	ctx := context.Background()
	iv := make([]byte, 16)
	src := make([]byte, 16*64)
	dst := make([]byte, len(src))
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := d.EncryptCTRInto(ctx, dst, iv, src); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("EncryptCTRInto: %.1f allocs/op, want 0", allocs)
	}
}
