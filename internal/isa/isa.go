// Package isa defines the COBRA very long instruction word format.
//
// COBRA operates via an 80-bit VLIW microcode word (§3.3 of the paper). The
// instruction word comprises the operation code, slice address, element
// address, LUT address and configuration data fields. This package defines
// the bit-level layout, the opcode set, and the per-element control-word
// encodings used in the configuration data field, together with pack/unpack
// routines that are exact inverses of each other.
//
// Bit layout (bit 79 is the most significant bit):
//
//	[79:75] opcode          (5 bits)
//	[74:63] slice address  (12 bits: scope(2) | row(8) | col(2))
//	[62:59] element address (4 bits)
//	[58:50] LUT address     (9 bits)
//	[49: 0] configuration data (50 bits)
package isa

import "fmt"

// Word is one packed 80-bit COBRA instruction. Hi holds bits 79..64, Lo
// holds bits 63..0.
type Word struct {
	Hi uint16
	Lo uint64
}

// Opcode identifies the instruction class (§3.3).
type Opcode uint8

const (
	// OpNop performs no operation. Underfull instruction cycles are padded
	// with NOPs (§3.4).
	OpNop Opcode = iota
	// OpCfgElem writes one element's control word within the addressed
	// RCE(s). The element address selects the component; the configuration
	// data field carries its control word.
	OpCfgElem
	// OpEnOut enables RCE outputs. With scope ScopeAll it re-enables the
	// global datapath after a reconfiguration sequence.
	OpEnOut
	// OpDisOut disables RCE outputs. With scope ScopeAll it freezes the
	// datapath so an overfull reconfiguration can complete (§3.4).
	OpDisOut
	// OpLoadLUT loads a group of entries into one of the addressed RCE's C
	// element look-up tables (or the F element constants when the LUT
	// address selects the F bank).
	OpLoadLUT
	// OpCfgShuf configures one half of a byte shuffler's 16-byte
	// permutation. The slice row field selects the shuffler.
	OpCfgShuf
	// OpCfgInMux configures the feedback/input multiplexor at the top of
	// the array (external input, feedback, or eRAM playback).
	OpCfgInMux
	// OpCfgWhite configures one column's whitening register: mode
	// (off/XOR/add mod 2^32) and key word.
	OpCfgWhite
	// OpERAMWrite writes one 32-bit word into an embedded RAM. This is the
	// path the key-scheduling phase uses to install round keys.
	OpERAMWrite
	// OpCfgCapture configures a column's eRAM capture port: when enabled,
	// each advancing datapath cycle stores the column's output word to the
	// selected bank at an auto-incrementing address (intermediate-value
	// storage, §3.1).
	OpCfgCapture
	// OpCtlFlag sets and clears bits of the flag register. Setting
	// FlagReady while the go signal is inactive halts the machine at the
	// idle point until the external system raises go (§3.4).
	OpCtlFlag
	// OpJmp jumps to the iRAM address in the configuration data field.
	OpJmp
	// OpHalt stops the sequencer (end of a terminating program, e.g. a
	// key-schedule-only run).
	OpHalt
	opcodeCount
)

var opcodeNames = [...]string{
	OpNop:        "NOP",
	OpCfgElem:    "CFGE",
	OpEnOut:      "ENOUT",
	OpDisOut:     "DISOUT",
	OpLoadLUT:    "LUTLD",
	OpCfgShuf:    "SHUF",
	OpCfgInMux:   "INMUX",
	OpCfgWhite:   "WHITE",
	OpERAMWrite:  "ERAMW",
	OpCfgCapture: "CAPCFG",
	OpCtlFlag:    "FLAG",
	OpJmp:        "JMP",
	OpHalt:       "HALT",
}

// String returns the assembler mnemonic for the opcode.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Opcode) Valid() bool { return o < opcodeCount }

// Scope selects how many RCEs a slice address targets.
type Scope uint8

const (
	// ScopeOne targets the single RCE at (row, col).
	ScopeOne Scope = iota
	// ScopeCol targets every RCE in the column; the row field is ignored.
	ScopeCol
	// ScopeRow targets every RCE in the row; the col field is ignored.
	ScopeRow
	// ScopeAll targets every RCE in the array.
	ScopeAll
)

// String names the scope for diagnostics and disassembly.
func (s Scope) String() string {
	switch s {
	case ScopeOne:
		return "one"
	case ScopeCol:
		return "col"
	case ScopeRow:
		return "row"
	case ScopeAll:
		return "all"
	}
	return "?"
}

// Slice is a decoded slice address: which RCE(s) an instruction configures.
type Slice struct {
	Scope Scope
	Row   uint8 // 0..255
	Col   uint8 // 0..3
}

// SliceAt addresses the single RCE at (row, col).
func SliceAt(row, col int) Slice {
	return Slice{Scope: ScopeOne, Row: uint8(row), Col: uint8(col)}
}

// SliceCol addresses every RCE in col.
func SliceCol(col int) Slice { return Slice{Scope: ScopeCol, Col: uint8(col)} }

// SliceRow addresses every RCE in row.
func SliceRow(row int) Slice { return Slice{Scope: ScopeRow, Row: uint8(row)} }

// SliceAll addresses the whole array.
func SliceAll() Slice { return Slice{Scope: ScopeAll} }

// String renders the slice in assembler syntax.
func (s Slice) String() string {
	switch s.Scope {
	case ScopeOne:
		return fmt.Sprintf("r%d.c%d", s.Row, s.Col)
	case ScopeCol:
		return fmt.Sprintf("c%d", s.Col)
	case ScopeRow:
		return fmt.Sprintf("r%d", s.Row)
	default:
		return "all"
	}
}

// pack returns the 12-bit slice address field.
func (s Slice) pack() uint16 {
	return uint16(s.Scope&3)<<10 | uint16(s.Row)<<2 | uint16(s.Col&3)
}

func unpackSlice(v uint16) Slice {
	return Slice{
		Scope: Scope(v >> 10 & 3),
		Row:   uint8(v >> 2),
		Col:   uint8(v & 3),
	}
}

// Elem addresses one component within an RCE (the "element address" field).
// The data path order within an RCE is:
//
//	INSEL → E1 → A1 → B → C → E2 → D → F → A2 → E3 → REG → OUT
//
// D exists only in RCE MULs (columns 1 and 3). ER is the embedded-RAM read
// port configuration (bank and address presented on INER).
type Elem uint8

const (
	ElemInsel Elem = iota
	ElemE1
	ElemA1
	ElemB
	ElemC
	ElemE2
	ElemD
	ElemF
	ElemA2
	ElemE3
	ElemReg
	ElemOut
	ElemER
	elemCount
)

var elemNames = [...]string{
	ElemInsel: "INSEL",
	ElemE1:    "E1",
	ElemA1:    "A1",
	ElemB:     "B",
	ElemC:     "C",
	ElemE2:    "E2",
	ElemD:     "D",
	ElemF:     "F",
	ElemA2:    "A2",
	ElemE3:    "E3",
	ElemReg:   "REG",
	ElemOut:   "OUT",
	ElemER:    "ER",
}

// String returns the assembler name of the element.
func (e Elem) String() string {
	if int(e) < len(elemNames) {
		return elemNames[e]
	}
	return fmt.Sprintf("ELEM(%d)", uint8(e))
}

// Valid reports whether e is a defined element address.
func (e Elem) Valid() bool { return e < elemCount }

// ElemByName resolves an assembler element name.
func ElemByName(name string) (Elem, bool) {
	for i, n := range elemNames {
		if n == name {
			return Elem(i), true
		}
	}
	return 0, false
}

// Instr is a decoded instruction. Pack and Unpack convert to and from the
// 80-bit wire format; they are exact inverses for all field values within
// range (property-tested).
type Instr struct {
	Op    Opcode
	Slice Slice
	Elem  Elem
	LUT   uint16 // 9 bits
	Data  uint64 // 50 bits
}

// Pack encodes the instruction into the 80-bit word.
func (in Instr) Pack() Word {
	// Assemble the top 30 bits (opcode, slice, element, LUT high bit...) in
	// a single 64-bit accumulator for bits 79..50, then place data below.
	top := uint64(in.Op&0x1f)<<25 | uint64(in.Slice.pack())<<13 |
		uint64(in.Elem&0xf)<<9 | uint64(in.LUT&0x1ff)
	// top now holds bits 79..50 in its low 30 bits.
	// Word bits: Hi = bits 79..64 = top >> 14.
	// Lo bits 63..50 = low 14 bits of top; bits 49..0 = data.
	return Word{
		Hi: uint16(top >> 14),
		Lo: (top&0x3fff)<<50 | in.Data&(1<<50-1),
	}
}

// Unpack decodes an 80-bit word. It returns an error for undefined opcodes
// or element addresses so that corrupted microcode is caught at load time.
func Unpack(w Word) (Instr, error) {
	top := uint64(w.Hi)<<14 | w.Lo>>50
	in := Instr{
		Op:    Opcode(top >> 25 & 0x1f),
		Slice: unpackSlice(uint16(top >> 13 & 0xfff)),
		Elem:  Elem(top >> 9 & 0xf),
		LUT:   uint16(top & 0x1ff),
		Data:  w.Lo & (1<<50 - 1),
	}
	if !in.Op.Valid() {
		return in, fmt.Errorf("isa: undefined opcode %d", uint8(in.Op))
	}
	if in.Op == OpCfgElem && !in.Elem.Valid() {
		return in, fmt.Errorf("isa: undefined element address %d", uint8(in.Elem))
	}
	return in, nil
}

// String renders the instruction as one line of disassembly.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpHalt:
		return in.Op.String()
	case OpCfgElem:
		return fmt.Sprintf("%s %s %s %#x", in.Op, in.Slice, in.Elem, in.Data)
	case OpLoadLUT:
		return fmt.Sprintf("%s %s lut=%#x %#x", in.Op, in.Slice, in.LUT, in.Data)
	case OpJmp:
		return fmt.Sprintf("%s %#x", in.Op, in.Data&0xfff)
	case OpEnOut, OpDisOut:
		return fmt.Sprintf("%s %s", in.Op, in.Slice)
	default:
		return fmt.Sprintf("%s %s %#x", in.Op, in.Slice, in.Data)
	}
}

// IRAMWords is the iRAM capacity: a 12-bit × 80-bit memory supporting
// programs of up to 4096 total instructions (§3.3).
const IRAMWords = 4096
