package cipher

import "cobra/internal/bits"

// RC5Rounds is the nominal round count of RC5-32/12/16.
const RC5Rounds = 12

// RC5 implements RC5-32/r/b: a 64-bit-block Feistel-like cipher built from
// addition mod 2^32, XOR and data-dependent rotation — the operations whose
// Table 2 occurrence counts motivated COBRA's B and E elements.
type RC5 struct {
	rounds int
	s      []uint32
}

// NewRC5 derives the key schedule for RC5-32/12/b.
func NewRC5(key []byte) (*RC5, error) { return NewRC5Rounds(key, RC5Rounds) }

// NewRC5Rounds derives the key schedule for r rounds.
func NewRC5Rounds(key []byte, rounds int) (*RC5, error) {
	if len(key) == 0 || len(key) > 255 {
		return nil, KeySizeError{"rc5", len(key)}
	}
	if rounds < 1 || rounds > 255 {
		return nil, KeySizeError{"rc5", rounds}
	}
	c := (len(key) + 3) / 4
	l := make([]uint32, c)
	for i := len(key) - 1; i >= 0; i-- {
		l[i/4] = l[i/4]<<8 + uint32(key[i])
	}
	n := 2 * (rounds + 1)
	s := make([]uint32, n)
	s[0] = rc6P // RC5 shares P32/Q32 with RC6
	for i := 1; i < n; i++ {
		s[i] = s[i-1] + rc6Q
	}
	var a, b uint32
	i, j := 0, 0
	for k := 0; k < 3*max(n, c); k++ {
		a = bits.RotL(s[i]+a+b, 3)
		s[i] = a
		b = bits.RotL(l[j]+a+b, uint(a+b))
		l[j] = b
		i = (i + 1) % n
		j = (j + 1) % c
	}
	return &RC5{rounds: rounds, s: s}, nil
}

// BlockSize returns 8.
func (c *RC5) BlockSize() int { return 8 }

// Rounds returns the configured round count.
func (c *RC5) Rounds() int { return c.rounds }

// RoundKeys exposes the expanded schedule S[0..2r+1]; the COBRA program
// builder loads these words into the eRAMs and whitening units.
func (c *RC5) RoundKeys() []uint32 {
	out := make([]uint32, len(c.s))
	copy(out, c.s)
	return out
}

// Encrypt encrypts one 8-byte block.
func (c *RC5) Encrypt(dst, src []byte) {
	a := bits.Load32LE(src[0:]) + c.s[0]
	b := bits.Load32LE(src[4:]) + c.s[1]
	for i := 1; i <= c.rounds; i++ {
		a = bits.RotL(a^b, uint(b)) + c.s[2*i]
		b = bits.RotL(b^a, uint(a)) + c.s[2*i+1]
	}
	bits.Store32LE(dst[0:], a)
	bits.Store32LE(dst[4:], b)
}

// Decrypt decrypts one 8-byte block.
func (c *RC5) Decrypt(dst, src []byte) {
	a := bits.Load32LE(src[0:])
	b := bits.Load32LE(src[4:])
	for i := c.rounds; i >= 1; i-- {
		b = bits.RotR(b-c.s[2*i+1], uint(a)) ^ a
		a = bits.RotR(a-c.s[2*i], uint(b)) ^ b
	}
	bits.Store32LE(dst[0:], a-c.s[0])
	bits.Store32LE(dst[4:], b-c.s[1])
}
