package fastpath_test

import (
	"math/rand"
	"testing"

	"cobra/internal/bits"
	"cobra/internal/datapath"
	"cobra/internal/isa"
	"cobra/internal/program"
)

// deadElemProgram hand-builds an iterative pass-through with one provably
// dead element: r0.c3's A1 XORs an immediate into column 3, but r1.c3
// selects the previous row's input block over the bypass bus (INSEL = PD)
// and nothing else consumes row 0's column-3 output, so the XOR never
// reaches the ciphertext. Output whitening keeps the taint analysis happy.
// Window 3 lets the data-valid raise, the input-mux switch and the array
// enable share the consuming datapath cycle.
func deadElemProgram() *program.Program {
	const whiteKey = 0x9e3779b9
	ins := []isa.Instr{
		0: {Op: isa.OpDisOut, Slice: isa.SliceAll()},
		1: {Op: isa.OpCfgElem, Slice: isa.SliceAt(0, 3), Elem: isa.ElemA1,
			Data: isa.ACfg{Op: isa.AXor, Operand: isa.SrcImm, Imm: 0x55aa55aa}.Encode()},
		2: {Op: isa.OpCfgElem, Slice: isa.SliceAt(1, 3), Elem: isa.ElemInsel,
			Data: isa.InselCfg{Source: 7}.Encode()}, // PD: previous row's block 3
		3: {Op: isa.OpCfgWhite, Data: isa.WhiteCfg{Col: 0, Mode: isa.WhiteXor, Key: whiteKey}.Encode()},
		4: {Op: isa.OpCfgWhite, Data: isa.WhiteCfg{Col: 1, Mode: isa.WhiteXor, Key: whiteKey}.Encode()},
		5: {Op: isa.OpCfgWhite, Data: isa.WhiteCfg{Col: 2, Mode: isa.WhiteXor, Key: whiteKey}.Encode()},
		6: {Op: isa.OpCfgWhite, Data: isa.WhiteCfg{Col: 3, Mode: isa.WhiteXor, Key: whiteKey}.Encode()},
		7: {Op: isa.OpCfgInMux, Data: isa.InMuxCfg{Mode: isa.InFeedback}.Encode()},
		// Idle point: the ready raise resynchronizes the window.
		8: {Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagReady}.Encode()},
		// Consuming window: raise data-valid, select external input, enable.
		9:  {Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagBusy | isa.FlagDValid, Clear: isa.FlagReady}.Encode()},
		10: {Op: isa.OpCfgInMux, Data: isa.InMuxCfg{Mode: isa.InExternal}.Encode()},
		11: {Op: isa.OpEnOut, Slice: isa.SliceAll()},
		// Quiet window: freeze and loop back to the idle point.
		12: {Op: isa.OpDisOut, Slice: isa.SliceAll()},
		13: {Op: isa.OpCtlFlag, Data: isa.FlagCfg{Clear: isa.FlagDValid | isa.FlagBusy}.Encode()},
		14: {Op: isa.OpJmp, Data: 8},
	}
	return &program.Program{
		Name:     "elide-test",
		Geometry: datapath.BaseGeometry(),
		Window:   3,
		Instrs:   ins,
	}
}

// TestElisionDifferential proves dead-op elision sound end to end: the
// dataflow analysis marks the seeded element dead, program.Compile hands
// the mask to the trace compiler, the compiler drops at least one
// operation, and the compiled executor still matches the cycle-accurate
// interpreter block for block and counter for counter.
func TestElisionDifferential(t *testing.T) {
	p := deadElemProgram()

	res := p.Analyze()
	if !res.Complete || res.HasErrors() {
		t.Fatalf("analysis incomplete or erroring: complete=%v findings=%v", res.Complete, res.Findings)
	}
	mask := res.DeadMask(p.Geometry.Rows)
	if mask == nil || mask[0*datapath.Cols+3]&(1<<isa.ElemA1) == 0 {
		t.Fatalf("DeadMask = %v, want r0.c3 A1 marked dead (Dead=%v)", mask, res.Dead)
	}

	ex, err := p.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if ex.Elided() == 0 {
		t.Fatal("compiler elided nothing despite a dead-element mask")
	}

	m, err := program.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := program.Load(m, p); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(0xe11de))
	for call, n := range []int{1, 4, 2, 7, 1} {
		in := randomBlocks(rng, n)
		want := make([]bits.Block128, n)
		wantStats, err := program.Run(m, p, want, in, program.Opts{})
		if err != nil {
			t.Fatalf("call %d: interpreter: %v", call, err)
		}
		got := make([]bits.Block128, n)
		gotStats, err := ex.EncryptInto(got, in)
		if err != nil {
			t.Fatalf("call %d: fastpath: %v", call, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("call %d block %d: elided fastpath %08x != interpreter %08x",
					call, i, got[i], want[i])
			}
		}
		if gotStats != wantStats {
			t.Fatalf("call %d: stats %+v != %+v", call, gotStats, wantStats)
		}
	}
}

// TestElisionBuiltinsUnchanged pins the built-in corpus at zero dead
// elements: every builder compiles with an empty mask, so elision never
// fires on shipped programs (the analysis-clean regression in package
// dataflow asserts the same from the other side).
func TestElisionBuiltinsUnchanged(t *testing.T) {
	for _, c := range allBuilders() {
		p, err := c.build()
		if err != nil {
			t.Fatalf("%s: build: %v", c.name, err)
		}
		ex, err := p.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", c.name, err)
		}
		if ex.Elided() != 0 {
			t.Errorf("%s: compiled with %d elided operations, want 0", c.name, ex.Elided())
		}
	}
}
