package dataflow_test

import (
	"math"
	"testing"

	"cobra/internal/cipher"
	"cobra/internal/model"
	"cobra/internal/program"
)

// TestStaticTimingMatchesPaper checks the dataflow engine's static
// per-window timing against the paper's §4.1 clock frequencies for the
// three Table 3 configurations, with the same 12% calibration tolerance the
// dynamic model uses, and cross-checks it against model.Analyze over the
// dynamically loaded array (the two fold the same Delays through the same
// model, so they must agree to within 2% — the static sweep may find a
// transient configuration the post-load snapshot does not).
func TestStaticTimingMatchesPaper(t *testing.T) {
	key := make([]byte, 16)
	cases := []struct {
		name  string
		build func() (*program.Program, error)
		want  float64 // MHz from Table 3
	}{
		{"rc6", func() (*program.Program, error) { return program.BuildRC6(key, 2, cipher.RC6Rounds) }, 60.975},
		{"rijndael", func() (*program.Program, error) { return program.BuildRijndael(key, 2) }, 102.041},
		{"serpent", func() (*program.Program, error) { return program.BuildSerpent(key, 1) }, 54.054},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			res := p.Analyze()
			if !res.Complete || res.Timing.Configs == 0 {
				t.Fatalf("walk incomplete or no timing configs: %+v", res.Timing)
			}
			st := res.Timing

			// Paper cross-check.
			dev := math.Abs(st.DatapathMHz-c.want) / c.want
			t.Logf("static: %d cfgs, %.2f ns, %.3f MHz (paper %.3f, deviation %.1f%%)",
				st.Configs, st.CriticalPathNs, st.DatapathMHz, c.want, dev*100)
			if dev > 0.12 {
				t.Errorf("static frequency %.3f MHz deviates %.0f%% from paper %.3f MHz",
					st.DatapathMHz, dev*100, c.want)
			}

			// Dynamic cross-check: load the program on a machine and analyze
			// the settled configuration.
			m, err := program.NewMachine(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := program.Load(m, p); err != nil {
				t.Fatal(err)
			}
			dyn := model.Analyze(m.Array, model.DefaultDelays())
			if rel := math.Abs(st.DatapathMHz-dyn.DatapathMHz) / dyn.DatapathMHz; rel > 0.02 {
				t.Errorf("static %.3f MHz vs dynamic %.3f MHz: %.1f%% apart",
					st.DatapathMHz, dyn.DatapathMHz, rel*100)
			}
			// The static sweep covers every configuration, so it can never
			// report a faster clock than any dynamically observed one.
			if st.DatapathMHz > dyn.DatapathMHz+1e-9 {
				t.Errorf("static worst clock %.3f MHz faster than dynamic %.3f MHz",
					st.DatapathMHz, dyn.DatapathMHz)
			}
			if math.Abs(st.IRAMMHz-2*st.DatapathMHz) > 1e-9 {
				t.Errorf("iRAM clock %.3f not twice the datapath clock %.3f", st.IRAMMHz, st.DatapathMHz)
			}
		})
	}
}
