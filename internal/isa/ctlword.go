package isa

import "fmt"

// Src selects the secondary operand presented to an element by its M
// multiplexor. The paper's M elements accept the B, C, D and ER input
// blocks (§3.1/§3.2); we additionally expose the element's own primary
// block (INA) and a configuration-word immediate, both of which the
// published cipher mappings require (see DESIGN.md, "RCE micro-structure
// assumptions").
type Src uint8

const (
	SrcINB Src = iota
	SrcINC
	SrcIND
	SrcINER
	SrcImm
	SrcINA
	srcCount
)

var srcNames = [...]string{"INB", "INC", "IND", "INER", "IMM", "INA"}

// String returns the assembler name of the source.
func (s Src) String() string {
	if int(s) < len(srcNames) {
		return srcNames[s]
	}
	return fmt.Sprintf("SRC(%d)", uint8(s))
}

// Valid reports whether s is a defined operand source.
func (s Src) Valid() bool { return s < srcCount }

// SrcByName resolves an assembler source name.
func SrcByName(name string) (Src, bool) {
	for i, n := range srcNames {
		if n == name {
			return Src(i), true
		}
	}
	return 0, false
}

// immShift is the bit position of the 32-bit immediate inside the 50-bit
// configuration data field, common to every control word that carries one.
const immShift = 16

// --- INSEL -----------------------------------------------------------------

// InselCfg selects which 32-bit block feeds the RCE's internal pipeline:
// one of the four current row-input blocks (INA..IND) or one of the four
// previous-row-input blocks (PA..PD) carried on the one-row bypass bus (see
// DESIGN.md: the bypass is required to hold RC6's six live values across a
// row boundary). The reset value is the column's own primary block.
type InselCfg struct {
	Source uint8 // 0=INA, 1=INB, 2=INC, 3=IND, 4=PA, 5=PB, 6=PC, 7=PD
}

// InselNames are the assembler names of the INSEL sources.
var InselNames = [8]string{"INA", "INB", "INC", "IND", "PA", "PB", "PC", "PD"}

// Encode packs the control word into a configuration data field.
func (c InselCfg) Encode() uint64 { return uint64(c.Source & 7) }

// DecodeInsel unpacks an INSEL control word.
func DecodeInsel(d uint64) InselCfg { return InselCfg{Source: uint8(d & 7)} }

// --- E (shift/rotate) --------------------------------------------------------

// EMode is the E element operating mode.
type EMode uint8

const (
	EBypass EMode = iota
	EShl
	EShr
	ERotl
)

var eModeNames = [...]string{"BYP", "SHL", "SHR", "ROTL"}

// String returns the assembler name of the mode.
func (m EMode) String() string {
	if int(m) < len(eModeNames) {
		return eModeNames[m]
	}
	return fmt.Sprintf("EMODE(%d)", uint8(m))
}

// ECfg configures a shift/rotate element. Shift and rotate values may be
// data dependent (§3.2): AmtSrc selects either the 5-bit immediate or the
// low five bits of a secondary input block via the element's 5-bit M mux.
// Neg negates the amount modulo 32 before use, turning a left rotate by a
// data-dependent amount into a right rotate — the operation RC6
// decryption needs (a 5-bit two's-complement stage on the amount path).
type ECfg struct {
	Mode   EMode
	AmtSrc Src   // SrcImm uses Amt; others take low 5 bits of that block
	Amt    uint8 // 5-bit immediate amount
	Neg    bool  // use (32 - amount) mod 32
}

// Encode packs the control word.
func (c ECfg) Encode() uint64 {
	d := uint64(c.Mode&3) | uint64(c.AmtSrc&7)<<2 | uint64(c.Amt&31)<<5
	if c.Neg {
		d |= 1 << 10
	}
	return d
}

// DecodeE unpacks an E control word.
func DecodeE(d uint64) ECfg {
	return ECfg{
		Mode:   EMode(d & 3),
		AmtSrc: Src(d >> 2 & 7),
		Amt:    uint8(d >> 5 & 31),
		Neg:    d>>10&1 == 1,
	}
}

// --- A (Boolean) -------------------------------------------------------------

// AOp is the A element Boolean operation.
type AOp uint8

const (
	ABypass AOp = iota
	AXor
	AAnd
	AOr
)

var aOpNames = [...]string{"BYP", "XOR", "AND", "OR"}

// String returns the assembler name of the operation.
func (o AOp) String() string {
	if int(o) < len(aOpNames) {
		return aOpNames[o]
	}
	return fmt.Sprintf("AOP(%d)", uint8(o))
}

// ACfg configures a Boolean element. PreShift applies a fixed left
// shift/rotate to the secondary operand before the Boolean operation (used
// by the A2 instance for Serpent's linear transformation; see DESIGN.md).
type ACfg struct {
	Op          AOp
	Operand     Src
	PreShift    uint8 // 5-bit fixed amount applied to the operand
	PreShiftRot bool  // false: logical left shift, true: left rotate
	Imm         uint32
}

// Encode packs the control word.
func (c ACfg) Encode() uint64 {
	d := uint64(c.Op&3) | uint64(c.Operand&7)<<2 | uint64(c.PreShift&31)<<5
	if c.PreShiftRot {
		d |= 1 << 10
	}
	return d | uint64(c.Imm)<<immShift
}

// DecodeA unpacks an A control word.
func DecodeA(d uint64) ACfg {
	return ACfg{
		Op:          AOp(d & 3),
		Operand:     Src(d >> 2 & 7),
		PreShift:    uint8(d >> 5 & 31),
		PreShiftRot: d>>10&1 == 1,
		Imm:         uint32(d >> immShift),
	}
}

// --- B (add/sub) -------------------------------------------------------------

// BMode is the B element operating mode.
type BMode uint8

const (
	BBypass BMode = iota
	BAdd
	BSub
)

var bModeNames = [...]string{"BYP", "ADD", "SUB"}

// Valid reports whether the mode is a defined encoding (the 2-bit field
// has one undefined value).
func (m BMode) Valid() bool { return int(m) < len(bModeNames) }

// String returns the assembler name of the mode.
func (m BMode) String() string {
	if int(m) < len(bModeNames) {
		return bModeNames[m]
	}
	return fmt.Sprintf("BMODE(%d)", uint8(m))
}

// BCfg configures an adder/subtractor element: add or subtract mod 2^8,
// 2^16 or 2^32 (lane-wise for the narrow widths).
type BCfg struct {
	Mode    BMode
	Width   uint8 // 0: mod 2^8 lanes, 1: mod 2^16 lanes, 2: mod 2^32
	Operand Src
	Imm     uint32
}

// Encode packs the control word.
func (c BCfg) Encode() uint64 {
	return uint64(c.Mode&3) | uint64(c.Width&3)<<2 | uint64(c.Operand&7)<<4 |
		uint64(c.Imm)<<immShift
}

// DecodeB unpacks a B control word.
func DecodeB(d uint64) BCfg {
	return BCfg{
		Mode:    BMode(d & 3),
		Width:   uint8(d >> 2 & 3),
		Operand: Src(d >> 4 & 7),
		Imm:     uint32(d >> immShift),
	}
}

// --- C (look-up tables) -------------------------------------------------------

// CMode is the C element operating mode (§3.2: four 8-bit to 8-bit mappings,
// eight pages of eight 4-bit to 4-bit mappings, or an 8-bit to 32-bit
// substitution built from the four 8→8 banks in parallel).
type CMode uint8

const (
	CBypass CMode = iota
	CS8x8         // four parallel 8→8 LUTs, one per byte lane
	CS4x4         // eight parallel 4→4 LUTs with page select
	CS8to32       // 8→32: one selected input byte indexes all four banks
)

var cModeNames = [...]string{"BYP", "S8", "S4", "S8TO32"}

// String returns the assembler name of the mode.
func (m CMode) String() string {
	if int(m) < len(cModeNames) {
		return cModeNames[m]
	}
	return fmt.Sprintf("CMODE(%d)", uint8(m))
}

// CCfg configures the LUT element. Page selects one of the eight 4→4 pages
// (paging mode); ByteSel selects the input byte in 8→32 mode.
type CCfg struct {
	Mode    CMode
	Page    uint8 // 0..7
	ByteSel uint8 // 0..3
}

// Encode packs the control word.
func (c CCfg) Encode() uint64 {
	return uint64(c.Mode&3) | uint64(c.Page&7)<<2 | uint64(c.ByteSel&3)<<5
}

// DecodeC unpacks a C control word.
func DecodeC(d uint64) CCfg {
	return CCfg{
		Mode:    CMode(d & 3),
		Page:    uint8(d >> 2 & 7),
		ByteSel: uint8(d >> 5 & 3),
	}
}

// --- D (multiplier, RCE MUL only) ---------------------------------------------

// DMode is the D element operating mode.
type DMode uint8

const (
	DBypass DMode = iota
	DMul16        // multiply mod 2^16 (lane-wise on two 16-bit lanes)
	DMul32        // multiply mod 2^32
	DSquare       // square mod 2^32
)

var dModeNames = [...]string{"BYP", "MUL16", "MUL32", "SQR"}

// String returns the assembler name of the mode.
func (m DMode) String() string {
	if int(m) < len(dModeNames) {
		return dModeNames[m]
	}
	return fmt.Sprintf("DMODE(%d)", uint8(m))
}

// DCfg configures the multiplier element.
type DCfg struct {
	Mode    DMode
	Operand Src
	Imm     uint32
}

// Encode packs the control word.
func (c DCfg) Encode() uint64 {
	return uint64(c.Mode&3) | uint64(c.Operand&7)<<2 | uint64(c.Imm)<<immShift
}

// DecodeD unpacks a D control word.
func DecodeD(d uint64) DCfg {
	return DCfg{
		Mode:    DMode(d & 3),
		Operand: Src(d >> 2 & 7),
		Imm:     uint32(d >> immShift),
	}
}

// --- F (GF(2^8) fixed-constant multiplier) --------------------------------------

// FMode is the F element operating mode.
type FMode uint8

const (
	FBypass FMode = iota
	FLanes        // each byte lane multiplied by its fixed constant
	FMDS          // circulant-matrix column product (e.g. MixColumns)
)

var fModeNames = [...]string{"BYP", "LANES", "MDS"}

// String returns the assembler name of the mode.
func (m FMode) String() string {
	if int(m) < len(fModeNames) {
		return fModeNames[m]
	}
	return fmt.Sprintf("FMODE(%d)", uint8(m))
}

// FCfg configures the Galois-field element. Consts[0] applies to the least
// significant byte lane (LANES mode) or is the first row entry of the
// circulant matrix (MDS mode).
type FCfg struct {
	Mode   FMode
	Consts [4]uint8
}

// Encode packs the control word.
func (c FCfg) Encode() uint64 {
	d := uint64(c.Mode & 3)
	for i, k := range c.Consts {
		d |= uint64(k) << (immShift + 8*i)
	}
	return d
}

// DecodeF unpacks an F control word.
func DecodeF(d uint64) FCfg {
	c := FCfg{Mode: FMode(d & 3)}
	for i := range c.Consts {
		c.Consts[i] = uint8(d >> (immShift + 8*i))
	}
	return c
}

// --- REG / OUT ------------------------------------------------------------------

// RegCfg enables the RCE output register (pipelining support, §3.2).
type RegCfg struct{ Enabled bool }

// Encode packs the control word.
func (c RegCfg) Encode() uint64 {
	if c.Enabled {
		return 1
	}
	return 0
}

// DecodeReg unpacks a REG control word.
func DecodeReg(d uint64) RegCfg { return RegCfg{Enabled: d&1 == 1} }

// --- ER (embedded RAM read port) ---------------------------------------------

// ERCfg selects the eRAM word presented on the RCE's INER input: one of the
// column's four banks and an 8-bit address.
type ERCfg struct {
	Bank uint8 // 0..3
	Addr uint8
}

// Encode packs the control word.
func (c ERCfg) Encode() uint64 { return uint64(c.Bank&3) | uint64(c.Addr)<<2 }

// DecodeER unpacks an ER control word.
func DecodeER(d uint64) ERCfg {
	return ERCfg{Bank: uint8(d & 3), Addr: uint8(d >> 2)}
}

// --- Non-RCE configuration payloads --------------------------------------------

// InMuxMode selects the source feeding row 0 of the array.
type InMuxMode uint8

const (
	InExternal InMuxMode = iota // consume one block from the input bus per cycle
	InFeedback                  // loop the whitened output back (iterative mode)
	InERAM                      // play back blocks captured in the eRAMs
)

var inMuxNames = [...]string{"EXT", "FB", "ERAM"}

// String returns the assembler name of the mode.
func (m InMuxMode) String() string {
	if int(m) < len(inMuxNames) {
		return inMuxNames[m]
	}
	return fmt.Sprintf("INMUX(%d)", uint8(m))
}

// InMuxCfg is the payload of OpCfgInMux. Bank/Addr give the playback start
// for InERAM mode (each column reads from its own bank at a shared,
// auto-incrementing address).
type InMuxCfg struct {
	Mode InMuxMode
	Bank uint8
	Addr uint8
}

// Encode packs the payload.
func (c InMuxCfg) Encode() uint64 {
	return uint64(c.Mode&3) | uint64(c.Bank&3)<<2 | uint64(c.Addr)<<4
}

// DecodeInMux unpacks an OpCfgInMux payload.
func DecodeInMux(d uint64) InMuxCfg {
	return InMuxCfg{Mode: InMuxMode(d & 3), Bank: uint8(d >> 2 & 3), Addr: uint8(d >> 4)}
}

// WhiteMode selects the whitening register operation (§3.1: bit-wise XOR or
// mod 2^32 addition).
type WhiteMode uint8

const (
	WhiteOff WhiteMode = iota
	WhiteXor
	WhiteAdd
)

var whiteNames = [...]string{"OFF", "XOR", "ADD"}

// String returns the assembler name of the mode.
func (m WhiteMode) String() string {
	if int(m) < len(whiteNames) {
		return whiteNames[m]
	}
	return fmt.Sprintf("WHITE(%d)", uint8(m))
}

// WhiteCfg is the payload of OpCfgWhite for one column. In switches the
// column's whitening register onto the input path (pre-whitening, as RC6's
// B += S[0] and Rijndael's initial AddRoundKey require) instead of the
// output path; see DESIGN.md assumption 6.
type WhiteCfg struct {
	Col  uint8
	Mode WhiteMode
	In   bool
	Key  uint32
}

// Encode packs the payload.
func (c WhiteCfg) Encode() uint64 {
	d := uint64(c.Col&3) | uint64(c.Mode&3)<<2 | uint64(c.Key)<<immShift
	if c.In {
		d |= 1 << 4
	}
	return d
}

// DecodeWhite unpacks an OpCfgWhite payload.
func DecodeWhite(d uint64) WhiteCfg {
	return WhiteCfg{Col: uint8(d & 3), Mode: WhiteMode(d >> 2 & 3),
		In: d>>4&1 == 1, Key: uint32(d >> immShift)}
}

// ERAMWriteCfg is the payload of OpERAMWrite: store Value at (Bank, Addr) of
// the column addressed by the slice field.
type ERAMWriteCfg struct {
	Bank  uint8
	Addr  uint8
	Value uint32
}

// Encode packs the payload.
func (c ERAMWriteCfg) Encode() uint64 {
	return uint64(c.Bank&3) | uint64(c.Addr)<<2 | uint64(c.Value)<<immShift
}

// DecodeERAMWrite unpacks an OpERAMWrite payload.
func DecodeERAMWrite(d uint64) ERAMWriteCfg {
	return ERAMWriteCfg{Bank: uint8(d & 3), Addr: uint8(d >> 2), Value: uint32(d >> immShift)}
}

// CaptureCfg is the payload of OpCfgCapture for the column addressed by the
// slice field.
type CaptureCfg struct {
	Enabled bool
	Bank    uint8
	Addr    uint8 // starting address; auto-increments per advancing cycle
}

// Encode packs the payload.
func (c CaptureCfg) Encode() uint64 {
	d := uint64(c.Bank&3)<<1 | uint64(c.Addr)<<3
	if c.Enabled {
		d |= 1
	}
	return d
}

// DecodeCapture unpacks an OpCfgCapture payload.
func DecodeCapture(d uint64) CaptureCfg {
	return CaptureCfg{Enabled: d&1 == 1, Bank: uint8(d >> 1 & 3), Addr: uint8(d >> 3)}
}

// ShufCfg is the payload of OpCfgShuf: one half of a byte shuffler's
// permutation. Entry i of Perm gives the source byte index (0..15) for
// destination byte High*8+i of the 128-bit stream.
type ShufCfg struct {
	High bool // false: destination bytes 0..7, true: bytes 8..15
	Perm [8]uint8
}

// Encode packs the payload.
func (c ShufCfg) Encode() uint64 {
	var d uint64
	if c.High {
		d = 1
	}
	for i, p := range c.Perm {
		d |= uint64(p&15) << (1 + 4*i)
	}
	return d
}

// DecodeShuf unpacks an OpCfgShuf payload.
func DecodeShuf(d uint64) ShufCfg {
	c := ShufCfg{High: d&1 == 1}
	for i := range c.Perm {
		c.Perm[i] = uint8(d >> (1 + 4*i) & 15)
	}
	return c
}

// Flag-register bits (OpCtlFlag payload: set mask in bits 15..0, clear mask
// in bits 31..16). §3.4 defines the ready/busy/data-valid protocol; KEYREQ
// is one of the paper's "generic flags" used to request key material from
// the external system.
const (
	FlagReady  = 1 << 0
	FlagBusy   = 1 << 1
	FlagDValid = 1 << 2
	FlagKeyReq = 1 << 3
	FlagGen0   = 1 << 4
	FlagGen1   = 1 << 5
	FlagGen2   = 1 << 6
	FlagGen3   = 1 << 7
)

// FlagCfg is the payload of OpCtlFlag.
type FlagCfg struct {
	Set   uint16
	Clear uint16
}

// Encode packs the payload.
func (c FlagCfg) Encode() uint64 { return uint64(c.Set) | uint64(c.Clear)<<16 }

// DecodeFlag unpacks an OpCtlFlag payload.
func DecodeFlag(d uint64) FlagCfg {
	return FlagCfg{Set: uint16(d), Clear: uint16(d >> 16)}
}

// ElemOperand returns the secondary-operand source an element control word
// consumes through its M multiplexor, and whether the configured mode
// consumes one at all. Elements without an operand mux (INSEL, C, F, REG,
// ER) report false, as do bypassed modes and D's square mode (which reads
// only the primary input). Package vet uses this for the INER-configuration
// check and package dataflow for def-use chain construction; both must
// agree exactly with the evaluation semantics in package rce.
func ElemOperand(e Elem, data uint64) (Src, bool) {
	switch e {
	case ElemA1, ElemA2:
		cfg := DecodeA(data)
		return cfg.Operand, cfg.Op != ABypass
	case ElemB:
		cfg := DecodeB(data)
		return cfg.Operand, cfg.Mode != BBypass
	case ElemD:
		cfg := DecodeD(data)
		return cfg.Operand, cfg.Mode == DMul16 || cfg.Mode == DMul32
	case ElemE1, ElemE2, ElemE3:
		cfg := DecodeE(data)
		return cfg.AmtSrc, cfg.Mode != EBypass
	}
	return 0, false
}

// LUT address field layout for OpLoadLUT. Bit 8 selects the 4→4 bank space;
// otherwise the 8→8 banks are addressed. For 8→8 banks the group field
// addresses 4 consecutive bytes; for 4→4 banks it addresses 8 consecutive
// nibbles. The low 32 bits of the configuration data carry the entries,
// least significant byte/nibble first.
const (
	LUTSpace4x4 = 1 << 8 // set: 4→4 nibble tables; clear: 8→8 byte tables
)

// LUTAddr composes an OpLoadLUT address field.
func LUTAddr(space4 bool, bank, group int) uint16 {
	a := uint16(bank&3)<<6 | uint16(group&0x3f)
	if space4 {
		a |= LUTSpace4x4
	}
	return a
}

// SplitLUTAddr decomposes an OpLoadLUT address field.
func SplitLUTAddr(a uint16) (space4 bool, bank, group int) {
	return a&LUTSpace4x4 != 0, int(a >> 6 & 3), int(a & 0x3f)
}
