package sca

import (
	"fmt"

	"cobra/internal/dataflow"
	"cobra/internal/isa"
	"cobra/internal/vet"
)

// AnalyzeMicrocode builds the microcode side-channel profile for one
// program: it attaches a dataflow.Tap to the abstract taint walk and
// classifies what reaches every table index, eRAM address lane, and
// control decision.
func AnalyzeMicrocode(name string, prog []isa.Instr, cfg dataflow.Config) *Profile {
	return analyzeMicrocode(name, prog, cfg, nil)
}

// analyzeMicrocode is the injectable core: source, when non-nil, rewires
// lanes to be fed from RCE output registers (the seeded-defect model the
// in-package tests use to exercise secret-branch and secret-eram-addr).
func analyzeMicrocode(name string, prog []isa.Instr, cfg dataflow.Config, source func(dataflow.LaneSite) (dataflow.RegSource, bool)) *Profile {
	p := &Profile{Name: name, Source: "microcode"}
	acc := make(map[[3]int]*Access)

	// Lane findings are deduplicated per site: a loop re-executes the same
	// OpJmp or re-reads the same INER port every pass, and one finding per
	// lane with its first-observation cycle is the actionable report.
	type laneState struct {
		reported bool
		taint    Taint
	}
	lanes := make(map[dataflow.LaneSite]*laneState)

	tap := &dataflow.Tap{
		Table: func(tick, row, col int, elem isa.Elem, cfgAddr int, taint Taint) {
			k := accessKey(row, col, elem)
			a := acc[k]
			if a == nil {
				a = &Access{Row: row, Col: col, Elem: elem, FirstTick: tick, CfgAddr: cfgAddr}
				acc[k] = a
			}
			a.Taint = a.Taint.Or(taint)
			a.Count++
		},
		Addr: func(tick int, site dataflow.LaneSite, elem isa.Elem, cfgAddr int, taint Taint) {
			if !taint.Tainted() {
				return
			}
			ls := lanes[site]
			if ls == nil {
				ls = &laneState{}
				lanes[site] = ls
			}
			if ls.reported && ls.taint == ls.taint.Or(taint) {
				return
			}
			ls.reported = true
			ls.taint = ls.taint.Or(taint)
			var where string
			switch site.Kind {
			case dataflow.LaneERAddr:
				where = fmt.Sprintf("the %s read-port address of r%d.c%d %s", site.Kind, site.Row, site.Col, elem)
			default:
				where = fmt.Sprintf("the %s of column %d", site.Kind, site.Col)
			}
			p.Findings = append(p.Findings, finding(prog, cfgAddr, vet.Error,
				"secret-eram-addr",
				fmt.Sprintf("%s-derived value reaches %s (first at datapath cycle %d): memory addressing must be data-independent", taint, where, tick)))
		},
		Control: func(tick int, site dataflow.LaneSite, op isa.Opcode, taint Taint) {
			if !taint.Tainted() {
				return
			}
			ls := lanes[site]
			if ls == nil {
				ls = &laneState{}
				lanes[site] = ls
			}
			if ls.reported && ls.taint == ls.taint.Or(taint) {
				return
			}
			ls.reported = true
			ls.taint = ls.taint.Or(taint)
			p.Findings = append(p.Findings, finding(prog, site.Addr, vet.Error,
				"secret-branch",
				fmt.Sprintf("%s-derived value reaches the %s decision at %04x (after %d datapath cycles): control flow must be data-independent", taint, site.Kind, site.Addr, tick)))
		},
		Output: func(tick, col int, taint Taint) {
			p.OutTaint[col] = p.OutTaint[col].Or(taint)
		},
		Source: source,
	}

	res := dataflow.AnalyzeTap(prog, cfg, tap)
	p.Complete = res.Complete
	p.Outputs = res.Outputs
	p.Accesses = sortedAccesses(acc)

	// T-table-class warnings: one per secret-indexed table site, at the
	// element's configuration word.
	for _, a := range p.Accesses {
		if !a.Taint.Tainted() {
			continue
		}
		var msg string
		if a.Elem == isa.ElemF {
			msg = fmt.Sprintf("GF element %s is driven by %s-derived data (first at cycle %d, %d evaluations): constant-depth in hardware, but a compiled fastpath realizes it as table reads indexed by that data", a, a.Taint, a.FirstTick, a.Count)
		} else {
			msg = fmt.Sprintf("LUT element %s is indexed by %s-derived data (first at cycle %d, %d evaluations): T-table class, observable to a cache-timing adversary on a software realization", a, a.Taint, a.FirstTick, a.Count)
		}
		p.Findings = append(p.Findings, finding(prog, a.CfgAddr, vet.Warn, "secret-lut-index", msg))
	}

	if !p.Complete || p.Outputs == 0 {
		msg := "abstract walk did not close over the schedule: no constant-time claim can be made"
		if p.Complete {
			msg = "no collected output observed: no constant-time claim can be made"
		}
		for _, f := range res.Findings {
			if f.Code == "exec-fault" || f.Code == "walk-budget" {
				msg = fmt.Sprintf("%s (%s: %s)", msg, f.Code, f.Msg)
				break
			}
		}
		p.Findings = append(p.Findings, finding(prog, 0, vet.Error, "ct-unproven", msg))
	}
	return p
}
