package core

import (
	"bytes"
	"context"
	"testing"

	"cobra/internal/cipher"
)

var key = []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

func TestConfigureAndEncryptAllAlgorithms(t *testing.T) {
	pt := bytes.Repeat([]byte{0xA5}, 64)
	for _, alg := range []Algorithm{RC6, Rijndael, Serpent} {
		d, err := Configure(alg, key, Config{Unroll: 0})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		ct, err := d.EncryptECB(context.Background(), pt)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		back, err := d.DecryptECB(context.Background(), ct)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !bytes.Equal(back, pt) {
			t.Errorf("%s: decrypt(encrypt(x)) != x", alg)
		}
	}
}

func TestEncryptMatchesReferenceCiphers(t *testing.T) {
	pt := bytes.Repeat([]byte{0x3c}, 32)
	refs := map[Algorithm]func() (cipher.Block, error){
		RC6:      func() (cipher.Block, error) { return cipher.NewRC6(key) },
		Rijndael: func() (cipher.Block, error) { return cipher.NewRijndael(key) },
		Serpent:  func() (cipher.Block, error) { return cipher.NewSerpentCOBRA(key) },
	}
	for alg, mk := range refs {
		d, err := Configure(alg, key, Config{Unroll: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.EncryptECB(context.Background(), pt)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, len(pt))
		for i := 0; i < len(pt); i += 16 {
			ref.Encrypt(want[i:], pt[i:])
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: device output differs from reference", alg)
		}
	}
}

func TestUnrollDefaultsToFull(t *testing.T) {
	d, err := Configure(Rijndael, key, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Unroll() != cipher.AESRounds {
		t.Errorf("default unroll = %d, want %d", d.Unroll(), cipher.AESRounds)
	}
	r := d.Report()
	if !r.Streaming {
		t.Error("full unroll should stream")
	}
}

func TestReportAfterEncryption(t *testing.T) {
	d, err := Configure(RC6, key, Config{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.EncryptECB(context.Background(), bytes.Repeat([]byte{1}, 160)); err != nil {
		t.Fatal(err)
	}
	r := d.Report()
	if r.CyclesPerBlock <= 0 || r.ThroughputMbps <= 0 {
		t.Errorf("report not populated: %+v", r)
	}
	if r.Stats.BlocksOut != 10 {
		t.Errorf("blocks out = %d, want 10", r.Stats.BlocksOut)
	}
	if r.Gates < 6_000_000 {
		t.Errorf("base geometry gates = %d, implausible", r.Gates)
	}
	if r.DatapathMHz <= 0 || r.IRAMMHz != 2*r.DatapathMHz {
		t.Errorf("clock model wrong: %+v", r)
	}
	d.ResetStats()
	if d.Report().Stats.Cycles != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestReconfigureSameGeometryKeepsMachine(t *testing.T) {
	// RC6-2 and Rijndael-2 both target the base 4-row array: algorithm
	// agility without re-tiling.
	d, err := Configure(RC6, key, Config{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := d.Geometry().Rows
	if err := d.Reconfigure(Rijndael, key, Config{Unroll: 2}); err != nil {
		t.Fatal(err)
	}
	if d.Geometry().Rows != rows {
		t.Error("geometry changed unexpectedly")
	}
	if d.Algorithm() != Rijndael {
		t.Errorf("algorithm = %s", d.Algorithm())
	}
	pt := bytes.Repeat([]byte{9}, 16)
	got, err := d.EncryptECB(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := cipher.NewRijndael(key)
	want := make([]byte, 16)
	ref.Encrypt(want, pt)
	if !bytes.Equal(got, want) {
		t.Error("post-reconfigure ciphertext wrong")
	}
}

func TestReconfigureDifferentGeometryRebuilds(t *testing.T) {
	d, err := Configure(RC6, key, Config{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Reconfigure(Serpent, key, Config{Unroll: 8}); err != nil {
		t.Fatal(err)
	}
	if d.Geometry().Rows != 32 {
		t.Errorf("rows = %d, want 32", d.Geometry().Rows)
	}
}

func TestConfigureErrors(t *testing.T) {
	if _, err := Configure(Algorithm("des"), key, Config{}); err == nil {
		t.Error("expected error for unmapped algorithm")
	}
	if _, err := Configure(RC6, make([]byte, 5), Config{}); err == nil {
		t.Error("expected key size error")
	}
	if _, err := Configure(RC6, key, Config{Unroll: 3}); err == nil {
		t.Error("expected unroll error")
	}
	if _, err := (Algorithm("des")).TotalRounds(); err == nil {
		t.Error("expected TotalRounds error")
	}
}

func TestDecryptRejectsPartialBlock(t *testing.T) {
	d, err := Configure(Rijndael, key, Config{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DecryptECB(context.Background(), make([]byte, 17)); err == nil {
		t.Error("expected partial-block error")
	}
}

func TestDescribeAndMicrocode(t *testing.T) {
	d, err := Configure(Serpent, key, Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Describe() == "" {
		t.Error("empty description")
	}
	if d.Microcode() == 0 {
		t.Error("no microcode")
	}
	if d.BlockSize() != 16 {
		t.Error("block size")
	}
}

func TestDatapathDecryptionAllAlgorithms(t *testing.T) {
	// DecryptECB runs on the datapath (not the host reference); it must
	// agree with the host path and invert the datapath encryption.
	pt := bytes.Repeat([]byte{0x77, 0x31}, 24)
	for _, alg := range []Algorithm{RC6, Rijndael, Serpent} {
		d, err := Configure(alg, key, Config{Unroll: 2})
		if err != nil {
			t.Fatal(err)
		}
		ct, err := d.EncryptECB(context.Background(), pt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.DecryptECB(context.Background(), ct)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		host, err := d.DecryptECBHost(ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pt) || !bytes.Equal(host, pt) {
			t.Errorf("%s: datapath/host decryption mismatch", alg)
		}
	}
}

func TestReconfigureInvalidatesDecryptor(t *testing.T) {
	pt := bytes.Repeat([]byte{0x5a}, 16)
	d, err := Configure(RC6, key, Config{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	ct1, err := d.EncryptECB(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DecryptECB(context.Background(), ct1); err != nil {
		t.Fatal(err)
	}
	key2 := bytes.Repeat([]byte{9}, 16)
	if err := d.Reconfigure(Rijndael, key2, Config{Unroll: 2}); err != nil {
		t.Fatal(err)
	}
	ct2, err := d.EncryptECB(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.DecryptECB(context.Background(), ct2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Error("decryptor not rebuilt after reconfiguration")
	}
}

func TestCBCModeRoundTripAndChaining(t *testing.T) {
	d, err := Configure(Rijndael, key, Config{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	iv := bytes.Repeat([]byte{0xAB}, 16)
	pt := bytes.Repeat([]byte{0x00}, 48) // identical plaintext blocks
	ct, err := d.EncryptCBC(context.Background(), iv, pt)
	if err != nil {
		t.Fatal(err)
	}
	// Chaining must make identical plaintext blocks encrypt differently.
	if bytes.Equal(ct[0:16], ct[16:32]) {
		t.Error("CBC produced identical ciphertext blocks")
	}
	// Reference CBC over the reference cipher.
	ref, _ := cipher.NewRijndael(key)
	want := make([]byte, len(pt))
	prev := iv
	var x [16]byte
	for i := 0; i < len(pt); i += 16 {
		for j := 0; j < 16; j++ {
			x[j] = pt[i+j] ^ prev[j]
		}
		ref.Encrypt(want[i:], x[:])
		prev = want[i : i+16]
	}
	if !bytes.Equal(ct, want) {
		t.Error("CBC ciphertext differs from reference chaining")
	}
	back, err := d.DecryptCBC(context.Background(), iv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Error("CBC round trip failed")
	}
}

func TestCBCArgumentValidation(t *testing.T) {
	d, err := Configure(Rijndael, key, Config{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.EncryptCBC(context.Background(), make([]byte, 8), make([]byte, 16)); err == nil {
		t.Error("expected iv error")
	}
	if _, err := d.EncryptCBC(context.Background(), make([]byte, 16), make([]byte, 17)); err == nil {
		t.Error("expected length error")
	}
	if _, err := d.DecryptCBC(context.Background(), make([]byte, 8), make([]byte, 16)); err == nil {
		t.Error("expected iv error")
	}
}
