package bench

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"cobra/internal/bits"
	"cobra/internal/census"
	"cobra/internal/cipher"
	"cobra/internal/datapath"
	"cobra/internal/model"
	"cobra/internal/program"
)

// Config names one Table 3 / Table 6 configuration.
type Config struct {
	Alg    string
	Rounds int
}

// Configurations returns the paper's evaluation sweep in Table 3 order.
func Configurations() []Config {
	return []Config{
		{"rc6", 1}, {"rc6", 2}, {"rc6", 4}, {"rc6", 5}, {"rc6", 10}, {"rc6", 20},
		{"rijndael", 1}, {"rijndael", 2}, {"rijndael", 5}, {"rijndael", 10},
		{"serpent", 1}, {"serpent", 8}, {"serpent", 16}, {"serpent", 32},
	}
}

// Build compiles one configuration with the given key. Algorithms beyond
// the paper's three fall through to the extended 64-bit corpus.
func Build(c Config, key []byte) (*program.Program, error) {
	switch c.Alg {
	case "rc6":
		return program.BuildRC6(key, c.Rounds, cipher.RC6Rounds)
	case "rijndael":
		return program.BuildRijndael(key, c.Rounds)
	case "serpent":
		return program.BuildSerpent(key, c.Rounds)
	}
	return BuildExtended(c, key)
}

// BuildDecrypt compiles one decryption configuration.
func BuildDecrypt(c Config, key []byte) (*program.Program, error) {
	switch c.Alg {
	case "rc6":
		return program.BuildRC6Decrypt(key, c.Rounds, cipher.RC6Rounds)
	case "rijndael":
		return program.BuildRijndaelDecrypt(key, c.Rounds)
	case "serpent":
		return program.BuildSerpentDecrypt(key)
	}
	return BuildExtendedDecrypt(c, key)
}

// reference constructs the functional oracle for a configuration.
func reference(c Config, key []byte) (cipher.Block, error) {
	switch c.Alg {
	case "rc6":
		return cipher.NewRC6(key)
	case "rijndael":
		return cipher.NewRijndael(key)
	case "serpent":
		return cipher.NewSerpentCOBRA(key)
	}
	return nil, fmt.Errorf("bench: unknown algorithm %q", c.Alg)
}

// Measurement is one measured Table 3 row.
type Measurement struct {
	Config
	CyclesPerBlock float64
	FreqMHz        float64
	Mbps           float64
	FPGAMbps       float64
	Rows           int
	Instructions   int
	Stalled        int
	Nops           int
	Verified       bool
}

// testBatch produces a deterministic pseudo-random workload of n blocks.
func testBatch(n int) []bits.Block128 {
	out := make([]bits.Block128, n)
	state := uint32(0x12345678)
	next := func() uint32 {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return state
	}
	for i := range out {
		for w := 0; w < 4; w++ {
			out[i][w] = next()
		}
	}
	return out
}

// Measure runs one configuration over a batch of blocks, verifies every
// output against the reference cipher, and returns the Table 3 metrics.
// The extended 64-bit corpus routes to MeasureExtended, whose batch is
// counted in 64-bit cipher blocks.
func Measure(c Config, key []byte, batch int) (Measurement, error) {
	switch c.Alg {
	case "rc5", "tea", "simon64", "blowfish", "des":
		return MeasureExtended(c, key, batch)
	}
	p, err := Build(c, key)
	if err != nil {
		return Measurement{}, err
	}
	m, err := program.NewMachine(p)
	if err != nil {
		return Measurement{}, err
	}
	observe(m)
	if err := program.Load(m, p); err != nil {
		return Measurement{}, err
	}
	// Analyze timing on the steady (post-setup) configuration, before the
	// run leaves the machine frozen in a first/last-round special state.
	tm := model.Analyze(m.Array, model.DefaultDelays())
	blocks := testBatch(batch)
	out := make([]bits.Block128, len(blocks))
	stats, err := program.Run(m, p, out, blocks, program.Opts{})
	if err != nil {
		return Measurement{}, err
	}
	ref, err := reference(c, key)
	if err != nil {
		return Measurement{}, err
	}
	verified := true
	var pt, ct [16]byte
	for i, blk := range blocks {
		blk.StoreBlock128(pt[:])
		ref.Encrypt(ct[:], pt[:])
		if out[i] != bits.LoadBlock128(ct[:]) {
			verified = false
			break
		}
	}
	cpb := float64(stats.Cycles) / float64(len(blocks))
	return Measurement{
		Config:         c,
		CyclesPerBlock: cpb,
		FreqMHz:        tm.DatapathMHz,
		Mbps:           tm.ThroughputMbps(cpb),
		FPGAMbps:       FPGAEquivalentMbps(c.Alg, c.Rounds),
		Rows:           p.Geometry.Rows,
		Instructions:   stats.Instructions,
		Stalled:        stats.Stalled,
		Nops:           stats.Nops,
		Verified:       verified,
	}, nil
}

// MeasureAll runs the whole Table 3 sweep.
func MeasureAll(key []byte, batch int) ([]Measurement, error) {
	var out []Measurement
	for _, c := range Configurations() {
		m, err := Measure(c, key, batch)
		if err != nil {
			return nil, fmt.Errorf("%s-%d: %w", c.Alg, c.Rounds, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// dot renders a float or the paper's "•" placeholder for zero.
func dot(v float64, format string) string {
	if v == 0 {
		return "•"
	}
	return fmt.Sprintf(format, v)
}

// Table1Text renders the Table 1 literature comparison.
func Table1Text() string {
	var b bytes.Buffer
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Table 1: AES finalists FPGA implementation studies (Mbps)")
	fmt.Fprintln(w, "Alg\tNFB [14]\tNFB [11]\tFB [11]\tFB [8]\tFB [14]\tFB [13]")
	for _, r := range Table1() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", r.Alg,
			dot(r.NFB14, "%.0f"), dot(r.NFB11, "%.0f"), dot(r.FB11, "%.1f"),
			dot(r.FB8, "%.2f"), dot(r.FB14, "%.1f"), dot(r.FB13, "%.1f"))
	}
	w.Flush()
	return b.String()
}

// Table2Text renders the operation census.
func Table2Text() string {
	var b bytes.Buffer
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Table 2: Occurrence of block cipher atomic operations")
	fmt.Fprintln(w, "Operation\tOccurrences")
	for _, r := range census.Table2() {
		fmt.Fprintf(w, "%s\t%d of %d\n", r.Name, r.Occurrences, r.Total)
	}
	w.Flush()
	return b.String()
}

// Table3Text renders the measured performance sweep next to the paper's
// FPGA comparison column.
func Table3Text(ms []Measurement) string {
	var b bytes.Buffer
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Table 3: COBRA encryption performance comparison (measured)")
	fmt.Fprintln(w, "Alg\tRnds\tClock Cycles\tClock Freq (MHz)\tThroughput (Mbps)\tEquiv FPGA (Mbps) [11]\tVerified")
	for _, m := range ms {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.3f\t%.2f\t%s\t%v\n",
			m.Alg, m.Rounds, m.CyclesPerBlock, m.FreqMHz, m.Mbps,
			dot(m.FPGAMbps, "%.1f"), m.Verified)
	}
	w.Flush()
	return b.String()
}

// Table3CompareText renders measured values against the paper's.
func Table3CompareText(ms []Measurement) string {
	paper := map[Config]PaperTable3Row{}
	for _, r := range PaperTable3() {
		paper[Config{r.Alg, r.Rounds}] = r
	}
	var b bytes.Buffer
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Table 3 paper-vs-measured")
	fmt.Fprintln(w, "Alg\tRnds\tCycles paper\tCycles meas\tMHz paper\tMHz meas\tMbps paper\tMbps meas")
	for _, m := range ms {
		p := paper[m.Config]
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.3f\t%.3f\t%.2f\t%.2f\n",
			m.Alg, m.Rounds, p.Cycles, m.CyclesPerBlock, p.FreqMHz, m.FreqMHz, p.Mbps, m.Mbps)
	}
	w.Flush()
	return b.String()
}

// Table4Text renders the per-element gate counts.
func Table4Text() string {
	g := model.Table4()
	var b bytes.Buffer
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Table 4: Reconfigurable element gate counts")
	fmt.Fprintln(w, "Configurable Element\tGates")
	rows := []struct {
		name  string
		gates int
	}{
		{"A", g.A}, {"B", g.B}, {"C", g.C}, {"D", g.D}, {"E", g.E}, {"F", g.F},
		{"4-to-1 Multiplexor, Grouping of 32", g.Mux4x32},
		{"4-to-1 Multiplexor, Grouping of 5", g.Mux4x5},
		{"2-to-1 Multiplexor, Grouping of 32", g.Mux2x32},
		{"32-Bit Register", g.Reg32},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\n", r.name, comma(r.gates))
	}
	w.Flush()
	return b.String()
}

// Table5Text renders the architecture gate counts for a geometry.
func Table5Text(geo datapath.Geometry) string {
	a := model.Table5(model.Table4(), geo)
	var b bytes.Buffer
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "Table 5: COBRA architecture gate counts (%d rows)\n", geo.Rows)
	fmt.Fprintln(w, "Element\tGates")
	fmt.Fprintf(w, "RCE/RCE MUL Array\t%s\n", comma(a.RCEArray))
	fmt.Fprintf(w, "Byte Shufflers\t%s\n", comma(a.Shufflers))
	fmt.Fprintf(w, "Input Multiplexors\t%s\n", comma(a.InputMuxes))
	fmt.Fprintf(w, "Whitening Blocks\t%s\n", comma(a.Whitening))
	fmt.Fprintf(w, "Embedded RAMs\t%s\n", comma(a.ERAMs))
	fmt.Fprintf(w, "Instruction RAM\t%s\n", comma(a.IRAM))
	fmt.Fprintf(w, "Datapath Overhead\t%s\n", comma(a.DatapathOvh))
	fmt.Fprintf(w, "Chip Overhead\t%s\n", comma(a.ChipOvh))
	fmt.Fprintf(w, "Total\t%s\n", comma(a.Total()))
	fmt.Fprintf(w, "Total (SRAM estimate, §4.2)\t%s\n", comma(a.TotalWithSRAM()))
	w.Flush()
	return b.String()
}

// Table6Rows derives the cycle-gates product rows from measurements.
func Table6Rows(ms []Measurement) []model.CGRow {
	rows := make([]model.CGRow, 0, len(ms))
	for _, m := range ms {
		gates := model.Table5(model.Table4(), datapath.Geometry{Rows: m.Rows}).Total()
		rows = append(rows, model.CGRow{
			Cipher: m.Alg,
			Rounds: m.Rounds,
			Cycles: m.CyclesPerBlock,
			Gates:  gates,
		})
	}
	return model.CGProducts(rows)
}

// Table6Text renders the CG products with the paper's normalized column.
func Table6Text(ms []Measurement) string {
	rows := Table6Rows(ms)
	paper := map[Config]PaperTable6Row{}
	for _, r := range PaperTable6() {
		paper[Config{r.Alg, r.Rounds}] = r
	}
	var b bytes.Buffer
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Table 6: COBRA encryption CG product (measured)")
	fmt.Fprintln(w, "Alg\tRnds\tCycles\tGates\tCG Prod\tNorm CG\tNorm CG (paper)")
	for _, r := range rows {
		p := paper[Config{r.Cipher, r.Rounds}]
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%s\t%.3e\t%.3f\t%.3f\n",
			r.Cipher, r.Rounds, r.Cycles, comma(r.Gates), r.CGProduct, r.Normalized, p.NormCG)
	}
	w.Flush()
	return b.String()
}

// ATMText reports the §1/§4.2 headline claim: full-length pipeline
// implementations of all three algorithms meet the 622 Mbps ATM
// requirement.
func ATMText(ms []Measurement) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ATM requirement: %d Mbps (§1)\n", ATMRequirementMbps)
	for _, m := range ms {
		full := (m.Alg == "rc6" && m.Rounds == 20) ||
			(m.Alg == "rijndael" && m.Rounds == 10) ||
			(m.Alg == "serpent" && m.Rounds == 32)
		if !full {
			continue
		}
		verdict := "MEETS"
		if m.Mbps < ATMRequirementMbps {
			verdict = "MISSES"
		}
		fmt.Fprintf(&b, "%s-%d: %.0f Mbps -> %s the requirement\n", m.Alg, m.Rounds, m.Mbps, verdict)
	}
	return b.String()
}

// Figure1Text renders the architecture/interconnect topology for a loaded
// configuration (the textual stand-in for the paper's figure 1).
func Figure1Text(c Config, key []byte) (string, error) {
	p, err := Build(c, key)
	if err != nil {
		return "", err
	}
	m, err := program.NewMachine(p)
	if err != nil {
		return "", err
	}
	if err := program.Load(m, p); err != nil {
		return "", err
	}
	return m.Array.Describe(), nil
}

// Figure23Text renders the configured RCE and RCE MUL chains of row 0/1
// (the textual stand-in for figures 2 and 3).
func Figure23Text(c Config, key []byte) (string, error) {
	p, err := Build(c, key)
	if err != nil {
		return "", err
	}
	m, err := program.NewMachine(p)
	if err != nil {
		return "", err
	}
	if err := program.Load(m, p); err != nil {
		return "", err
	}
	var b strings.Builder
	for row := 0; row < min(2, p.Geometry.Rows); row++ {
		for col := 0; col < datapath.Cols; col++ {
			fmt.Fprintf(&b, "r%d.c%d  %s\n", row, col, m.Array.RCE(row, col).Describe())
		}
	}
	return b.String(), nil
}

// comma formats an integer with thousands separators, as the paper prints
// gate counts.
func comma(v int) string {
	s := fmt.Sprintf("%d", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// SortMeasurements orders rows in Table 3 publication order (already built
// that way by MeasureAll; exported for callers that collect out of order).
func SortMeasurements(ms []Measurement) {
	order := map[string]int{"rc6": 0, "rijndael": 1, "serpent": 2}
	sort.Slice(ms, func(i, j int) bool {
		if order[ms[i].Alg] != order[ms[j].Alg] {
			return order[ms[i].Alg] < order[ms[j].Alg]
		}
		return ms[i].Rounds < ms[j].Rounds
	})
}
