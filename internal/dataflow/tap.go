package dataflow

import (
	"sort"

	"cobra/internal/isa"
	"cobra/internal/vet"
)

// This file is the engine's export surface for side-channel analysis
// (package sca): the abstract walk already computes, for every word in
// flight, the interned fact set it depends on. A Tap receives the
// key/plaintext projection of those sets at exactly the places cache and
// timing side channels live — table-read index lanes, eRAM address lanes,
// and the iRAM control path — without changing what the walk computes.

// Taint is the key/plaintext projection of an interned fact set: whether
// the word structurally depends on key material and/or plaintext. The
// richer fact structure (element instances, stores, power-up state) stays
// inside the engine; side-channel classification only needs these two bits.
type Taint struct {
	Key   bool
	Plain bool
}

// Tainted reports whether the value depends on any secret input at all
// (key material or plaintext — both are secret to a cache observer).
func (t Taint) Tainted() bool { return t.Key || t.Plain }

// Or joins two taints.
func (t Taint) Or(o Taint) Taint { return Taint{t.Key || o.Key, t.Plain || o.Plain} }

func (t Taint) String() string {
	switch {
	case t.Key && t.Plain:
		return "{key,plain}"
	case t.Key:
		return "{key}"
	case t.Plain:
		return "{plain}"
	}
	return "{}"
}

// LaneKind names one non-data lane of the machine: a place where an
// address or control decision is formed rather than a datapath word
// computed. In the base ISA every one of these lanes is fed by an
// instruction immediate or a hardware counter — never by the datapath —
// which is exactly the property the sca analyzer verifies (and the
// property a Tap.Source override deliberately breaks for seeded-defect
// tests).
type LaneKind uint8

const (
	// LaneJmp is an OpJmp target: the sequencer's only redirection.
	LaneJmp LaneKind = iota
	// LaneFlag is an OpCtlFlag set/clear word: the ready/busy/data-valid
	// handshake gates.
	LaneFlag
	// LaneERAddr is an RCE's ER read-port address (bank/addr of an INER
	// operand).
	LaneERAddr
	// LanePlayback is the playback counter feeding the per-column input
	// address in InERAM mode.
	LanePlayback
	// LaneCapture is a capture port's write address.
	LaneCapture
)

func (k LaneKind) String() string {
	switch k {
	case LaneJmp:
		return "jmp-target"
	case LaneFlag:
		return "handshake-flag"
	case LaneERAddr:
		return "eRAM-read-address"
	case LanePlayback:
		return "playback-address"
	case LaneCapture:
		return "capture-address"
	}
	return "lane?"
}

// LaneSite identifies one lane instance. Control lanes (LaneJmp, LaneFlag)
// are identified by the instruction's iRAM address; address lanes by the
// consuming RCE (LaneERAddr) or column (LanePlayback, LaneCapture).
type LaneSite struct {
	Kind     LaneKind
	Addr     int // iRAM address (control lanes; 0 otherwise)
	Row, Col int
}

// RegSource names an RCE output register as a lane's feeding source — the
// seeded-defect model for Tap.Source.
type RegSource struct {
	Row, Col int
}

// Tap receives lane observations during the abstract walk. Every callback
// is optional. Ticks count advancing datapath cycles from power-up;
// control events carry the count of cycles completed when the instruction
// executed. Callbacks observe; they must not retain the engine or assume
// any call order beyond the walk's own.
type Tap struct {
	// Table fires once per active C or F element evaluation at an advancing
	// cycle: taint is the chain value entering the element — the table-read
	// index for C's LUT banks, the byte values indexing the F element's
	// folded GF contribution tables in a compiled fastpath. cfgAddr is the
	// iRAM address of the element's most recent configuration word.
	Table func(tick, row, col int, elem isa.Elem, cfgAddr int, taint Taint)
	// Addr fires once per eRAM address-lane resolution: an INER operand
	// read (LaneERAddr, elem = the consuming element), a playback-mode
	// input word (LanePlayback), or a capture-port store (LaneCapture).
	// In the base ISA these addresses are immediates or counters, so taint
	// is empty unless a Source override rewires the lane.
	Addr func(tick int, site LaneSite, elem isa.Elem, cfgAddr int, taint Taint)
	// Control fires once per control-lane instruction execution: an OpJmp
	// target or an OpCtlFlag handshake word.
	Control func(tick int, site LaneSite, op isa.Opcode, taint Taint)
	// Output fires per column at every collected output cycle with the
	// output word's taint.
	Output func(tick, col int, taint Taint)
	// Source optionally rewires a lane to be fed by an RCE output register
	// instead of its instruction immediate or hardware counter: the lane's
	// reported taint becomes the register's current taint. This is the
	// seeded-defect model — a fault or hostile toolchain routing datapath
	// state into an address or control lane, inexpressible in the base ISA
	// (which is exactly the property sca verifies). The override affects
	// only the reported taint, not the walked data flow.
	Source func(site LaneSite) (RegSource, bool)
}

// AnalyzeTap runs the abstract walk with a Tap attached; the Result is
// identical to Analyze's. A nil tap is Analyze exactly.
func AnalyzeTap(prog []isa.Instr, cfg Config, tap *Tap) *Result {
	cfg = cfg.normalized()
	res := &Result{}
	if len(prog) == 0 {
		addFinding(res, prog, 0, vet.Error, "exec-fault", "program has no instructions")
		return res
	}
	e, err := newEngine(prog, cfg)
	if err != nil {
		addFinding(res, prog, 0, vet.Error, "exec-fault", err.Error())
		return res
	}
	e.tap = tap
	e.run()
	e.report(res)
	sort.SliceStable(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
	return res
}
