package bits

import (
	"testing"
	"testing/quick"
)

func TestWidthString(t *testing.T) {
	cases := map[Width]string{W8: "mod 2^8", W16: "mod 2^16", W32: "mod 2^32", Width(9): "mod ?"}
	for w, want := range cases {
		if got := w.String(); got != want {
			t.Errorf("Width(%d).String() = %q, want %q", w, got, want)
		}
	}
}

func TestRotL(t *testing.T) {
	cases := []struct {
		x    uint32
		n    uint
		want uint32
	}{
		{0x00000001, 1, 0x00000002},
		{0x80000000, 1, 0x00000001},
		{0x12345678, 0, 0x12345678},
		{0x12345678, 32, 0x12345678},
		{0x12345678, 4, 0x23456781},
		{0xdeadbeef, 16, 0xbeefdead},
	}
	for _, c := range cases {
		if got := RotL(c.x, c.n); got != c.want {
			t.Errorf("RotL(%#x, %d) = %#x, want %#x", c.x, c.n, got, c.want)
		}
	}
}

func TestRotRInverseOfRotL(t *testing.T) {
	f := func(x uint32, n uint8) bool {
		k := uint(n) % 64
		return RotR(RotL(x, k), k) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotLComposition(t *testing.T) {
	f := func(x uint32, a, b uint8) bool {
		return RotL(RotL(x, uint(a)), uint(b)) == RotL(x, uint(a)+uint(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShifts(t *testing.T) {
	if got := Shl(0xffffffff, 4); got != 0xfffffff0 {
		t.Errorf("Shl = %#x", got)
	}
	if got := Shr(0xffffffff, 4); got != 0x0fffffff {
		t.Errorf("Shr = %#x", got)
	}
	if Shl(1, 32) != 0 || Shl(1, 40) != 0 {
		t.Error("Shl should saturate to 0 for n >= 32")
	}
	if Shr(0x80000000, 32) != 0 || Shr(1, 100) != 0 {
		t.Error("Shr should saturate to 0 for n >= 32")
	}
}

func TestAddModW32(t *testing.T) {
	if got := AddMod(0xffffffff, 1, W32); got != 0 {
		t.Errorf("AddMod W32 wrap = %#x, want 0", got)
	}
	if got := AddMod(3, 4, W32); got != 7 {
		t.Errorf("AddMod = %d", got)
	}
}

func TestAddModW8LaneIsolation(t *testing.T) {
	// 0xff + 0x01 must wrap within the lane and not carry into the next.
	if got := AddMod(0x00ff00ff, 0x00010001, W8); got != 0x00000000 {
		t.Errorf("AddMod W8 = %#x, want 0", got)
	}
	if got := AddMod(0x01020304, 0x01010101, W8); got != 0x02030405 {
		t.Errorf("AddMod W8 = %#x", got)
	}
}

func TestAddModW16LaneIsolation(t *testing.T) {
	if got := AddMod(0xffff0001, 0x00010001, W16); got != 0x00000002 {
		t.Errorf("AddMod W16 = %#x", got)
	}
}

// addModRef is an independent lane-by-lane reference for AddMod/SubMod.
func addModRef(a, b uint32, w Width, sub bool) uint32 {
	lane := map[Width]uint{W8: 8, W16: 16, W32: 32}[w]
	mask := uint64(1)<<lane - 1
	var r uint32
	for sh := uint(0); sh < 32; sh += lane {
		la := uint64(a>>sh) & mask
		lb := uint64(b>>sh) & mask
		var lr uint64
		if sub {
			lr = (la - lb) & mask
		} else {
			lr = (la + lb) & mask
		}
		r |= uint32(lr) << sh
	}
	return r
}

func TestAddModMatchesReference(t *testing.T) {
	for _, w := range []Width{W8, W16, W32} {
		w := w
		f := func(a, b uint32) bool { return AddMod(a, b, w) == addModRef(a, b, w, false) }
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("width %v: %v", w, err)
		}
	}
}

func TestSubModMatchesReference(t *testing.T) {
	for _, w := range []Width{W8, W16, W32} {
		w := w
		f := func(a, b uint32) bool { return SubMod(a, b, w) == addModRef(a, b, w, true) }
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("width %v: %v", w, err)
		}
	}
}

func TestSubModInverseOfAddMod(t *testing.T) {
	for _, w := range []Width{W8, W16, W32} {
		w := w
		f := func(a, b uint32) bool { return SubMod(AddMod(a, b, w), b, w) == a }
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("width %v: %v", w, err)
		}
	}
}

func TestMulMod(t *testing.T) {
	if got := MulMod(0x10001, 0x10001, W16); got != 0x00010001 {
		t.Errorf("MulMod W16 = %#x", got)
	}
	if got := MulMod(0xffff, 0xffff, W16); got != 0x0001 {
		t.Errorf("MulMod W16 wrap = %#x, want 0x0001", got)
	}
	if got := MulMod(0x10000, 3, W32); got != 0x30000 {
		t.Errorf("MulMod W32 = %#x", got)
	}
}

func TestSquareMod32MatchesMulMod(t *testing.T) {
	f := func(a uint32) bool { return SquareMod32(a) == MulMod(a, a, W32) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGFMulKnownValues(t *testing.T) {
	// Classic FIPS-197 examples.
	cases := []struct{ a, b, want uint8 }{
		{0x57, 0x83, 0xc1},
		{0x57, 0x13, 0xfe},
		{0x02, 0x80, 0x1b},
		{0x01, 0xab, 0xab},
		{0x00, 0xff, 0x00},
	}
	for _, c := range cases {
		if got := GFMul(c.a, c.b); got != c.want {
			t.Errorf("GFMul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestGFMulCommutative(t *testing.T) {
	f := func(a, b uint8) bool { return GFMul(a, b) == GFMul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGFMulDistributesOverXOR(t *testing.T) {
	f := func(a, b, c uint8) bool { return GFMul(a, b^c) == GFMul(a, b)^GFMul(a, c) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGFMulAssociative(t *testing.T) {
	f := func(a, b, c uint8) bool { return GFMul(GFMul(a, b), c) == GFMul(a, GFMul(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGFInv(t *testing.T) {
	if GFInv(0) != 0 {
		t.Error("GFInv(0) must be 0")
	}
	for a := 1; a < 256; a++ {
		inv := GFInv(uint8(a))
		if got := GFMul(uint8(a), inv); got != 1 {
			t.Fatalf("GFMul(%#x, GFInv) = %#x, want 1", a, got)
		}
	}
}

func TestGFMulWord(t *testing.T) {
	// GFMulWord's c[0] multiplies the least significant byte (0x04 here).
	got := GFMulWord(0x01020304, [4]uint8{2, 2, 2, 2})
	want := uint32(GFMul(0x04, 2)) | uint32(GFMul(0x03, 2))<<8 |
		uint32(GFMul(0x02, 2))<<16 | uint32(GFMul(0x01, 2))<<24
	if got != want {
		t.Errorf("GFMulWord = %#x, want %#x", got, want)
	}
}

func TestGFMDSColumnMatchesMixColumnsExample(t *testing.T) {
	// FIPS-197 §5.1.3 example: column db 13 53 45 -> 8e 4d a1 bc
	// (bytes listed top-to-bottom; our byte 0 is the top/first byte).
	in := uint32(0xdb) | uint32(0x13)<<8 | uint32(0x53)<<16 | uint32(0x45)<<24
	want := uint32(0x8e) | uint32(0x4d)<<8 | uint32(0xa1)<<16 | uint32(0xbc)<<24
	if got := GFMDSColumn(in, [4]uint8{2, 3, 1, 1}); got != want {
		t.Errorf("GFMDSColumn = %#x, want %#x", got, want)
	}
}

func TestGFMDSColumnIdentity(t *testing.T) {
	f := func(x uint32) bool { return GFMDSColumn(x, [4]uint8{1, 0, 0, 0}) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGFMDSColumnLinear(t *testing.T) {
	c := [4]uint8{2, 3, 1, 1}
	f := func(x, y uint32) bool {
		return GFMDSColumn(x^y, c) == GFMDSColumn(x, c)^GFMDSColumn(y, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadStore32(t *testing.T) {
	b := []byte{0x78, 0x56, 0x34, 0x12}
	if got := Load32LE(b); got != 0x12345678 {
		t.Errorf("Load32LE = %#x", got)
	}
	if got := Load32BE(b); got != 0x78563412 {
		t.Errorf("Load32BE = %#x", got)
	}
	var out [4]byte
	Store32LE(out[:], 0x12345678)
	if out != [4]byte{0x78, 0x56, 0x34, 0x12} {
		t.Errorf("Store32LE = %v", out)
	}
	Store32BE(out[:], 0x12345678)
	if out != [4]byte{0x12, 0x34, 0x56, 0x78} {
		t.Errorf("Store32BE = %v", out)
	}
}

func TestBlock128RoundTrip(t *testing.T) {
	f := func(raw [16]byte) bool {
		blk := LoadBlock128(raw[:])
		var out [16]byte
		blk.StoreBlock128(out[:])
		return out == raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlock128ByteAccess(t *testing.T) {
	var raw [16]byte
	for i := range raw {
		raw[i] = byte(i * 7)
	}
	blk := LoadBlock128(raw[:])
	for i := 0; i < 16; i++ {
		if got := blk.Byte(i); got != raw[i] {
			t.Errorf("Byte(%d) = %#x, want %#x", i, got, raw[i])
		}
	}
}

func TestBlock128SetByte(t *testing.T) {
	f := func(raw [16]byte, idx uint8, v uint8) bool {
		i := int(idx) % 16
		blk := LoadBlock128(raw[:]).SetByte(i, v)
		for j := 0; j < 16; j++ {
			want := raw[j]
			if j == i {
				want = v
			}
			if blk.Byte(j) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlock128XORSelfInverse(t *testing.T) {
	f := func(a, b [4]uint32) bool {
		x, y := Block128(a), Block128(b)
		return x.XOR(y).XOR(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlock128Add32(t *testing.T) {
	x := Block128{0xffffffff, 1, 2, 3}
	y := Block128{1, 1, 1, 1}
	if got := x.Add32(y); got != (Block128{0, 2, 3, 4}) {
		t.Errorf("Add32 = %v", got)
	}
}
