package cipher

import (
	"bytes"
	"crypto/des"
	"encoding/hex"
	"testing"
	"testing/quick"

	"cobra/internal/bits"
)

// unhex decodes a hex string or fails the test.
func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// kat runs one known-answer test: encrypt(pt) == ct and decrypt(ct) == pt.
func kat(t *testing.T, c Block, pt, ct []byte) {
	t.Helper()
	got := make([]byte, len(pt))
	c.Encrypt(got, pt)
	if !bytes.Equal(got, ct) {
		t.Errorf("encrypt = %x, want %x", got, ct)
	}
	c.Decrypt(got, ct)
	if !bytes.Equal(got, pt) {
		t.Errorf("decrypt = %x, want %x", got, pt)
	}
}

// roundTrip property: Decrypt∘Encrypt is the identity for random blocks.
func roundTrip(t *testing.T, mk func(key []byte) (Block, error), keyLen int) {
	t.Helper()
	f := func(key [64]byte, block [16]byte) bool {
		c, err := mk(key[:keyLen])
		if err != nil {
			return false
		}
		n := c.BlockSize()
		enc := make([]byte, n)
		dec := make([]byte, n)
		c.Encrypt(enc, block[:n])
		c.Decrypt(dec, enc)
		return bytes.Equal(dec, block[:n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// --- RC6 (AES submission test vectors) ---------------------------------------

func TestRC6KnownVectors(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		{
			"00000000000000000000000000000000",
			"00000000000000000000000000000000",
			"8fc3a53656b1f778c129df4e9848a41e",
		},
		{
			"0123456789abcdef0112233445566778",
			"02132435465768798a9bacbdcedfe0f1",
			"524e192f4715c6231f51f6367ea43f18",
		},
	}
	for i, c := range cases {
		blk, err := NewRC6(unhex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("vector %d", i)
		kat(t, blk, unhex(t, c.pt), unhex(t, c.ct))
	}
}

func TestRC6RoundTrip(t *testing.T) {
	roundTrip(t, func(k []byte) (Block, error) { return NewRC6(k) }, 16)
	roundTrip(t, func(k []byte) (Block, error) { return NewRC6(k) }, 24)
	roundTrip(t, func(k []byte) (Block, error) { return NewRC6(k) }, 32)
}

func TestRC6ReducedRoundsRoundTrip(t *testing.T) {
	for _, r := range []int{1, 2, 4, 5, 10} {
		r := r
		roundTrip(t, func(k []byte) (Block, error) { return NewRC6Rounds(k, r) }, 16)
	}
}

func TestRC6KeySizes(t *testing.T) {
	if _, err := NewRC6(make([]byte, 15)); err == nil {
		t.Error("expected key-size error")
	}
	if _, err := NewRC6Rounds(make([]byte, 16), 0); err == nil {
		t.Error("expected round-count error")
	}
}

func TestRC6RoundKeyCount(t *testing.T) {
	c, err := NewRC6(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(c.RoundKeys()); n != 2*RC6Rounds+4 {
		t.Errorf("round keys = %d, want %d", n, 2*RC6Rounds+4)
	}
	if c.Rounds() != RC6Rounds {
		t.Errorf("Rounds() = %d", c.Rounds())
	}
}

// --- Rijndael / AES-128 (FIPS-197) --------------------------------------------

func TestRijndaelFIPS197Vector(t *testing.T) {
	blk, err := NewRijndael(unhex(t, "000102030405060708090a0b0c0d0e0f"))
	if err != nil {
		t.Fatal(err)
	}
	kat(t, blk,
		unhex(t, "00112233445566778899aabbccddeeff"),
		unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a"))
}

func TestRijndaelAESAVSVector(t *testing.T) {
	// AESAVS GFSbox-style: all-zero key.
	blk, err := NewRijndael(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	kat(t, blk,
		unhex(t, "f34481ec3cc627bacd5dc3fb08f273e6"),
		unhex(t, "0336763e966d92595a567cc9ce537f5e"))
}

func TestRijndaelRoundTrip(t *testing.T) {
	roundTrip(t, func(k []byte) (Block, error) { return NewRijndael(k) }, 16)
}

func TestRijndaelKeySize(t *testing.T) {
	if _, err := NewRijndael(make([]byte, 24)); err == nil {
		t.Error("only AES-128 is supported; expected error")
	}
}

func TestAESSBoxKnownEntries(t *testing.T) {
	s := AESSBox()
	if s[0x00] != 0x63 || s[0x01] != 0x7c || s[0x53] != 0xed || s[0xff] != 0x16 {
		t.Errorf("S-box entries wrong: %#x %#x %#x %#x", s[0], s[1], s[0x53], s[0xff])
	}
}

func TestAESSBoxIsPermutation(t *testing.T) {
	var seen [256]bool
	for _, v := range AESSBox() {
		if seen[v] {
			t.Fatalf("duplicate S-box value %#x", v)
		}
		seen[v] = true
	}
}

// --- Serpent -------------------------------------------------------------------

func TestSerpentKnownVector(t *testing.T) {
	// Widely used interoperability vector (e.g. VeraCrypt test suite).
	blk, err := NewSerpent(unhex(t, "000102030405060708090a0b0c0d0e0f"))
	if err != nil {
		t.Fatal(err)
	}
	kat(t, blk,
		unhex(t, "00112233445566778899aabbccddeeff"),
		unhex(t, "563e2cf8740a27c164804560391e9b27"))
}

func TestSerpent256GoldenVector(t *testing.T) {
	// Golden regression vector for the 256-bit-key path (the independent
	// interoperability anchor is the 128-bit vector above; the 256-bit key
	// path differs only in skipping the key padding).
	blk, err := NewSerpent(unhex(t,
		"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"))
	if err != nil {
		t.Fatal(err)
	}
	kat(t, blk,
		unhex(t, "00112233445566778899aabbccddeeff"),
		unhex(t, "2868b7a2d28ecd5e4fdefac3c4330074"))
}

func TestSerpentRoundTrip(t *testing.T) {
	roundTrip(t, func(k []byte) (Block, error) { return NewSerpent(k) }, 16)
	roundTrip(t, func(k []byte) (Block, error) { return NewSerpent(k) }, 32)
}

func TestSerpentSBoxesArePermutations(t *testing.T) {
	for b, box := range SerpentSBoxes {
		var seen [16]bool
		for _, v := range box {
			if v > 15 || seen[v] {
				t.Fatalf("S-box %d is not a permutation", b)
			}
			seen[v] = true
		}
	}
}

func TestSerpentInvSBoxes(t *testing.T) {
	for b := range SerpentSBoxes {
		for x := uint8(0); x < 16; x++ {
			if serpentInvSBoxes[b][SerpentSBoxes[b][x]] != x {
				t.Fatalf("inverse S-box %d wrong at %d", b, x)
			}
		}
	}
}

func TestSerpentKeySize(t *testing.T) {
	if _, err := NewSerpent(make([]byte, 17)); err == nil {
		t.Error("expected key-size error")
	}
}

func TestSerpentCOBRARoundTrip(t *testing.T) {
	roundTrip(t, func(k []byte) (Block, error) { return NewSerpentCOBRA(k) }, 16)
}

func TestSerpentCOBRASharesKeySchedule(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	a, err := NewSerpent(key)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSerpentCOBRA(key)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r <= 32; r++ {
		if a.RoundKeyWords(r) != b.RoundKeyWords(r) {
			t.Fatalf("round key %d differs", r)
		}
	}
}

func TestSerpentCOBRADiffersFromSerpent(t *testing.T) {
	// The nibble-domain S-box variant is a different function from real
	// Serpent (see the SerpentCOBRA doc comment); make that explicit.
	key := make([]byte, 16)
	a, _ := NewSerpent(key)
	b, _ := NewSerpentCOBRA(key)
	pt := make([]byte, 16)
	ca := make([]byte, 16)
	cb := make([]byte, 16)
	a.Encrypt(ca, pt)
	b.Encrypt(cb, pt)
	if bytes.Equal(ca, cb) {
		t.Error("SerpentCOBRA unexpectedly equals Serpent; the documented substitution no longer holds")
	}
}

// --- DES ------------------------------------------------------------------------

func TestDESKnownVectors(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		{"133457799bbcdff1", "0123456789abcdef", "85e813540f0ab405"},
		{"0000000000000000", "0000000000000000", "8ca64de9c1b123a7"},
		{"ffffffffffffffff", "ffffffffffffffff", "7359b2163e4edc58"},
		{"3000000000000000", "1000000000000001", "958e6e627a05557b"},
	}
	for i, c := range cases {
		blk, err := NewDES(unhex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("vector %d", i)
		kat(t, blk, unhex(t, c.pt), unhex(t, c.ct))
	}
}

func TestDESRoundTrip(t *testing.T) {
	roundTrip(t, func(k []byte) (Block, error) { return NewDES(k) }, 8)
}

func TestDESKeySize(t *testing.T) {
	if _, err := NewDES(make([]byte, 7)); err == nil {
		t.Error("expected key-size error")
	}
}

// TestDESMatchesStdlib anchors our DES against the independent stdlib
// implementation, the same way NIST vectors anchor AES: the published KATs
// above plus randomized keys and blocks.
func TestDESMatchesStdlib(t *testing.T) {
	f := func(key [8]byte, block [8]byte) bool {
		ours, err := NewDES(key[:])
		if err != nil {
			return false
		}
		ref, err := des.NewCipher(key[:])
		if err != nil {
			return false
		}
		a := make([]byte, 8)
		b := make([]byte, 8)
		ours.Encrypt(a, block[:])
		ref.Encrypt(b, block[:])
		if !bytes.Equal(a, b) {
			return false
		}
		ours.Decrypt(a, block[:])
		ref.Decrypt(b, block[:])
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDESSPDecomposition pins the identity the COBRA mapping is built on:
// the Feistel function decomposes into eight unmasked-byte SP-table
// lookups of rotated R windows XORed together, with IP/FP as exact
// inverses at the block boundary.
func TestDESSPDecomposition(t *testing.T) {
	sp := DESSPTables()
	f := func(r uint32, kRaw uint64) bool {
		k := kRaw & 0xffffffffffff // 48-bit round key
		var want = desF(r, k)
		var got uint32
		for i := 0; i < 8; i++ {
			idx := (bits.RotL(r, uint(4*i+5)) ^ DESKeyChunk(k, i)) & 0xff
			got ^= sp[i][idx]
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	g := func(x uint64) bool {
		return DESFinalPermutation(DESInitialPermutation(x)) == x &&
			DESInitialPermutation(DESFinalPermutation(x)) == x
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	var buf [8]byte
	DESStore64(buf[:], 0x0123456789abcdef)
	if DESLoad64(buf[:]) != 0x0123456789abcdef || buf[0] != 0x01 {
		t.Error("DESLoad64/DESStore64 are not big-endian inverses")
	}
}

// --- IDEA ------------------------------------------------------------------------

func TestIDEAKnownVector(t *testing.T) {
	// Classic vector from the IDEA specification.
	blk, err := NewIDEA(unhex(t, "00010002000300040005000600070008"))
	if err != nil {
		t.Fatal(err)
	}
	kat(t, blk, unhex(t, "0000000100020003"), unhex(t, "11fbed2b01986de5"))
}

func TestIDEARoundTrip(t *testing.T) {
	roundTrip(t, func(k []byte) (Block, error) { return NewIDEA(k) }, 16)
}

func TestIDEAMulProperties(t *testing.T) {
	if ideaMul(0, 0) != 1 {
		// 0 represents 2^16; 2^16 * 2^16 mod (2^16+1) = 1.
		t.Errorf("ideaMul(0,0) = %d, want 1", ideaMul(0, 0))
	}
	f := func(a uint16) bool {
		if a == 0 {
			return ideaMul(a, ideaInv(a)) == 1
		}
		return ideaMul(a, ideaInv(a)) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIDEAKeySize(t *testing.T) {
	if _, err := NewIDEA(make([]byte, 8)); err == nil {
		t.Error("expected key-size error")
	}
}

// --- TEA / XTEA -------------------------------------------------------------------

func TestTEAKnownVector(t *testing.T) {
	blk, err := NewTEA(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	kat(t, blk, unhex(t, "0000000000000000"), unhex(t, "41ea3a0a94baa940"))
}

func TestTEARoundTrip(t *testing.T) {
	roundTrip(t, func(k []byte) (Block, error) { return NewTEA(k) }, 16)
}

func TestXTEAKnownVector(t *testing.T) {
	blk, err := NewXTEA(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	kat(t, blk, unhex(t, "0000000000000000"), unhex(t, "dee9d4d8f7131ed9"))
}

func TestXTEARoundTrip(t *testing.T) {
	roundTrip(t, func(k []byte) (Block, error) { return NewXTEA(k) }, 16)
}

func TestTEAKeySizes(t *testing.T) {
	if _, err := NewTEA(make([]byte, 8)); err == nil {
		t.Error("expected TEA key-size error")
	}
	if _, err := NewXTEA(make([]byte, 8)); err == nil {
		t.Error("expected XTEA key-size error")
	}
}

// --- RC5 -------------------------------------------------------------------------

func TestRC5KnownVectors(t *testing.T) {
	// Vectors from Rivest's RC5 paper (RC5-32/12/16).
	cases := []struct{ key, pt, ct string }{
		{"00000000000000000000000000000000", "0000000000000000", "21a5dbee154b8f6d"},
		{"915f4619be41b2516355a50110a9ce91", "21a5dbee154b8f6d", "f7c013ac5b2b8952"},
	}
	for i, c := range cases {
		blk, err := NewRC5(unhex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("vector %d", i)
		kat(t, blk, unhex(t, c.pt), unhex(t, c.ct))
	}
}

func TestRC5RoundTrip(t *testing.T) {
	roundTrip(t, func(k []byte) (Block, error) { return NewRC5(k) }, 16)
	roundTrip(t, func(k []byte) (Block, error) { return NewRC5(k) }, 8)
}

func TestRC5KeySize(t *testing.T) {
	if _, err := NewRC5(nil); err == nil {
		t.Error("expected key-size error")
	}
}

// --- Blowfish ----------------------------------------------------------------------

func TestBlowfishKnownVectors(t *testing.T) {
	// Eric Young's reference vectors: they validate the π-derived tables.
	cases := []struct{ key, pt, ct string }{
		{"0000000000000000", "0000000000000000", "4ef997456198dd78"},
		{"ffffffffffffffff", "ffffffffffffffff", "51866fd5b85ecb8a"},
		{"3000000000000000", "1000000000000001", "7d856f9a613063f2"},
		{"0123456789abcdef", "1111111111111111", "61f9c3802281b096"},
	}
	for i, c := range cases {
		blk, err := NewBlowfish(unhex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("vector %d", i)
		kat(t, blk, unhex(t, c.pt), unhex(t, c.ct))
	}
}

func TestBlowfishPiDerivedP0(t *testing.T) {
	blowfishOnce.Do(blowfishInit)
	// First P-array word is the first 8 hex digits of π's fraction.
	if blowfishInitP[0] != 0x243f6a88 {
		t.Errorf("P[0] = %#x, want 0x243f6a88", blowfishInitP[0])
	}
	if blowfishInitP[1] != 0x85a308d3 {
		t.Errorf("P[1] = %#x, want 0x85a308d3", blowfishInitP[1])
	}
	if blowfishInitS[0][0] != 0xd1310ba6 {
		t.Errorf("S[0][0] = %#x, want 0xd1310ba6", blowfishInitS[0][0])
	}
}

func TestBlowfishRoundTrip(t *testing.T) {
	roundTrip(t, func(k []byte) (Block, error) { return NewBlowfish(k) }, 16)
	roundTrip(t, func(k []byte) (Block, error) { return NewBlowfish(k) }, 56)
}

func TestBlowfishKeySize(t *testing.T) {
	if _, err := NewBlowfish(nil); err == nil {
		t.Error("expected key-size error")
	}
	if _, err := NewBlowfish(make([]byte, 57)); err == nil {
		t.Error("expected key-size error")
	}
}

// --- GOST -----------------------------------------------------------------------

func TestGOSTRoundTrip(t *testing.T) {
	roundTrip(t, func(k []byte) (Block, error) { return NewGOST(k) }, 32)
}

func TestGOSTKeyOrder(t *testing.T) {
	// Encryption uses keys 0..7 three times forward then once backward.
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3, 4, 5, 6, 7,
		0, 1, 2, 3, 4, 5, 6, 7, 7, 6, 5, 4, 3, 2, 1, 0}
	for r, w := range want {
		if got := keyIndex(r); got != w {
			t.Errorf("keyIndex(%d) = %d, want %d", r, got, w)
		}
	}
}

func TestGOSTKeySize(t *testing.T) {
	if _, err := NewGOST(make([]byte, 16)); err == nil {
		t.Error("expected key-size error")
	}
}

func TestGOSTSBoxesArePermutations(t *testing.T) {
	for i, row := range GOSTTestSBox {
		var seen [16]bool
		for _, v := range row {
			if v > 15 || seen[v] {
				t.Fatalf("GOST S-box row %d is not a permutation", i)
			}
			seen[v] = true
		}
	}
}

// --- SIMON 64/128 ----------------------------------------------------------------

func TestSIMON64KnownVector(t *testing.T) {
	// The SIMON 64/128 vector from the specification (eprint 2013/404):
	// key (k3..k0) = 1b1a1918 13121110 0b0a0908 03020100,
	// pt (x, y) = 656b696c 20646e75, ct = 44c8fc20 b9dfa07a,
	// serialized under the documented little-endian word convention.
	blk, err := NewSIMON64(unhex(t, "0001020308090a0b1011121318191a1b"))
	if err != nil {
		t.Fatal(err)
	}
	kat(t, blk, unhex(t, "6c696b65756e6420"), unhex(t, "20fcc8447aa0dfb9"))
}

func TestSIMON64RoundTrip(t *testing.T) {
	roundTrip(t, func(k []byte) (Block, error) { return NewSIMON64(k) }, 16)
}

func TestSIMON64KeySize(t *testing.T) {
	if _, err := NewSIMON64(make([]byte, 8)); err == nil {
		t.Error("expected key-size error")
	}
}

func TestSIMON64RoundKeyCount(t *testing.T) {
	c, err := NewSIMON64(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(c.RoundKeys()); n != SIMON64Rounds {
		t.Errorf("round keys = %d, want %d", n, SIMON64Rounds)
	}
}

// --- Cross-cutting ------------------------------------------------------------------

func TestBlockSizes(t *testing.T) {
	mk := func(b Block, err error) Block {
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	sizes := map[string]struct {
		b    Block
		want int
	}{
		"rc6":      {mk(NewRC6(make([]byte, 16))), 16},
		"rijndael": {mk(NewRijndael(make([]byte, 16))), 16},
		"serpent":  {mk(NewSerpent(make([]byte, 16))), 16},
		"des":      {mk(NewDES(make([]byte, 8))), 8},
		"idea":     {mk(NewIDEA(make([]byte, 16))), 8},
		"tea":      {mk(NewTEA(make([]byte, 16))), 8},
		"xtea":     {mk(NewXTEA(make([]byte, 16))), 8},
		"rc5":      {mk(NewRC5(make([]byte, 16))), 8},
		"blowfish": {mk(NewBlowfish(make([]byte, 16))), 8},
		"gost":     {mk(NewGOST(make([]byte, 32))), 8},
		"simon64":  {mk(NewSIMON64(make([]byte, 16))), 8},
	}
	for name, c := range sizes {
		if got := c.b.BlockSize(); got != c.want {
			t.Errorf("%s: BlockSize = %d, want %d", name, got, c.want)
		}
	}
}

func TestKeySizeErrorMessage(t *testing.T) {
	err := KeySizeError{"rc6", 5}
	if err.Error() != "cipher/rc6: invalid key size 5" {
		t.Errorf("message = %q", err.Error())
	}
}

func TestEncryptInPlace(t *testing.T) {
	// The Block contract allows dst == src.
	key := make([]byte, 16)
	c, err := NewRijndael(key)
	if err != nil {
		t.Fatal(err)
	}
	buf := unhex(t, "00112233445566778899aabbccddeeff")
	want := make([]byte, 16)
	c.Encrypt(want, buf)
	c.Encrypt(buf, buf)
	if !bytes.Equal(buf, want) {
		t.Error("in-place encryption differs")
	}
}
