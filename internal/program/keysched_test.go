package program

import (
	"bytes"
	"testing"
	"testing/quick"

	"cobra/internal/cipher"
)

func TestRijndaelKeyedSchedulesOnDatapath(t *testing.T) {
	p, err := BuildRijndaelKeyed()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	ksCycles, err := LoadKeyed(m, p, testKey)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("key schedule: %d datapath cycles", ksCycles)

	// The captured eRAM contents must equal the reference key schedule.
	ref, err := cipher.NewRijndael(testKey)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r <= cipher.AESRounds; r++ {
		want := ref.RoundKeyWords(r)
		for c := 0; c < 4; c++ {
			if got := m.Array.ReadERAM(c, 0, r); got != want[c] {
				t.Fatalf("rk[%d][%d] = %#x, want %#x", r, c, got, want[c])
			}
		}
	}

	// And the encryption phase must produce correct AES ciphertext —
	// including the FIPS-197 block, end to end from just the raw key.
	got, _, err := EncryptBytes(m, p, testPlain)
	if err != nil {
		t.Fatal(err)
	}
	want := refEncryptECB(t, ref, testPlain)
	if !bytes.Equal(got, want) {
		t.Errorf("keyed program ciphertext mismatch\n got %x\nwant %x", got, want)
	}
}

func TestRijndaelKeyedIsKeyIndependent(t *testing.T) {
	// One program image serves any key: re-run the handshake with new key
	// material on the same machine.
	p, err := BuildRijndaelKeyed()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	f := func(key [16]byte, pt [16]byte) bool {
		if _, err := LoadKeyed(m, p, key[:]); err != nil {
			return false
		}
		got, _, err := EncryptBytes(m, p, pt[:])
		if err != nil {
			return false
		}
		ref, err := cipher.NewRijndael(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 16)
		ref.Encrypt(want, pt[:])
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestLoadKeyedValidation(t *testing.T) {
	p, err := BuildRijndaelKeyed()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKeyed(m, p, make([]byte, 8)); err == nil {
		t.Error("expected key-size error")
	}
	plain, err := BuildRijndael(testKey, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKeyed(m, plain, testKey); err == nil {
		t.Error("expected needs-key error")
	}
}
