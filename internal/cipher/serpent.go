package cipher

import "cobra/internal/bits"

// SerpentRounds is Serpent's round count.
const SerpentRounds = 32

// serpentPhi is the key-schedule constant (golden ratio fraction).
const serpentPhi = 0x9e3779b9

// SerpentSBoxes are the eight Serpent S-boxes (round r uses box r mod 8).
var SerpentSBoxes = [8][16]uint8{
	{3, 8, 15, 1, 10, 6, 5, 11, 14, 13, 4, 2, 7, 0, 9, 12},
	{15, 12, 2, 7, 9, 0, 5, 10, 1, 11, 14, 8, 6, 13, 3, 4},
	{8, 6, 7, 9, 3, 12, 10, 15, 13, 1, 14, 4, 0, 11, 5, 2},
	{0, 15, 11, 8, 12, 9, 6, 3, 13, 1, 2, 4, 10, 7, 5, 14},
	{1, 15, 8, 3, 12, 0, 11, 6, 2, 5, 4, 10, 9, 14, 7, 13},
	{15, 5, 2, 11, 4, 10, 9, 12, 0, 3, 14, 8, 13, 6, 7, 1},
	{7, 2, 12, 5, 8, 4, 6, 11, 14, 9, 1, 15, 13, 3, 10, 0},
	{1, 13, 15, 0, 14, 8, 2, 11, 7, 4, 12, 10, 9, 3, 5, 6},
}

// serpentInvSBoxes are derived inverses.
var serpentInvSBoxes [8][16]uint8

// SerpentInvSBoxes returns the eight inverse S-boxes (for the COBRA
// decryption mapping's paged 4→4 LUTs).
func SerpentInvSBoxes() [8][16]uint8 { return serpentInvSBoxes }

func init() {
	for b := range SerpentSBoxes {
		for x, y := range SerpentSBoxes[b] {
			serpentInvSBoxes[b][y] = uint8(x)
		}
	}
}

// serpentKeySchedule expands a 16/24/32-byte key into the 33 round keys of
// four words each, in the standard (bitsliced-domain) formulation.
func serpentKeySchedule(key []byte) (*[33][4]uint32, error) {
	if len(key) != 16 && len(key) != 24 && len(key) != 32 {
		return nil, KeySizeError{"serpent", len(key)}
	}
	// Pad short keys with a single 1 bit followed by zeros.
	var w [140]uint32 // w[-8..131] stored at offset 8
	for i := 0; i < len(key)/4; i++ {
		w[i] = bits.Load32LE(key[4*i:])
	}
	if len(key) < 32 {
		w[len(key)/4] = 1
	}
	for i := 8; i < 140; i++ {
		x := w[i-8] ^ w[i-5] ^ w[i-3] ^ w[i-1] ^ serpentPhi ^ uint32(i-8)
		w[i] = bits.RotL(x, 11)
	}
	pre := w[8:]

	var rk [33][4]uint32
	for i := 0; i < 33; i++ {
		box := SerpentSBoxes[(32+3-i)%8]
		// Bitsliced S-box application across the four prekey words.
		var k [4]uint32
		for bit := 0; bit < 32; bit++ {
			n := pre[4*i]>>uint(bit)&1 |
				pre[4*i+1]>>uint(bit)&1<<1 |
				pre[4*i+2]>>uint(bit)&1<<2 |
				pre[4*i+3]>>uint(bit)&1<<3
			m := uint32(box[n])
			for j := 0; j < 4; j++ {
				k[j] |= m >> uint(j) & 1 << uint(bit)
			}
		}
		rk[i] = k
	}
	return &rk, nil
}

// serpentLT is the linear transformation of the standard formulation.
func serpentLT(x *[4]uint32) {
	x[0] = bits.RotL(x[0], 13)
	x[2] = bits.RotL(x[2], 3)
	x[1] ^= x[0] ^ x[2]
	x[3] ^= x[2] ^ x[0]<<3
	x[1] = bits.RotL(x[1], 1)
	x[3] = bits.RotL(x[3], 7)
	x[0] ^= x[1] ^ x[3]
	x[2] ^= x[3] ^ x[1]<<7
	x[0] = bits.RotL(x[0], 5)
	x[2] = bits.RotL(x[2], 22)
}

// serpentInvLT inverts serpentLT.
func serpentInvLT(x *[4]uint32) {
	x[2] = bits.RotR(x[2], 22)
	x[0] = bits.RotR(x[0], 5)
	x[2] ^= x[3] ^ x[1]<<7
	x[0] ^= x[1] ^ x[3]
	x[3] = bits.RotR(x[3], 7)
	x[1] = bits.RotR(x[1], 1)
	x[3] ^= x[2] ^ x[0]<<3
	x[1] ^= x[0] ^ x[2]
	x[2] = bits.RotR(x[2], 3)
	x[0] = bits.RotR(x[0], 13)
}

// Serpent implements the Serpent block cipher in the standard
// (bitsliced-domain) formulation used by the reference "sboxes applied over
// bit slices" code and by the common interoperability test vectors.
type Serpent struct {
	rk [33][4]uint32
}

// NewSerpent derives the key schedule from a 16-, 24- or 32-byte key.
func NewSerpent(key []byte) (*Serpent, error) {
	rk, err := serpentKeySchedule(key)
	if err != nil {
		return nil, err
	}
	return &Serpent{rk: *rk}, nil
}

// BlockSize returns 16.
func (c *Serpent) BlockSize() int { return 16 }

// RoundKeyWords returns round key r (0..32) as four words.
func (c *Serpent) RoundKeyWords(r int) [4]uint32 { return c.rk[r] }

// sbox applies S-box b bitsliced across the four state words.
func sbox(box *[16]uint8, x *[4]uint32) {
	var out [4]uint32
	for bit := 0; bit < 32; bit++ {
		n := x[0]>>uint(bit)&1 |
			x[1]>>uint(bit)&1<<1 |
			x[2]>>uint(bit)&1<<2 |
			x[3]>>uint(bit)&1<<3
		m := uint32(box[n])
		for j := 0; j < 4; j++ {
			out[j] |= m >> uint(j) & 1 << uint(bit)
		}
	}
	*x = out
}

// Encrypt encrypts one 16-byte block.
func (c *Serpent) Encrypt(dst, src []byte) {
	var x [4]uint32
	for i := range x {
		x[i] = bits.Load32LE(src[4*i:])
	}
	for r := 0; r < SerpentRounds-1; r++ {
		for i := range x {
			x[i] ^= c.rk[r][i]
		}
		sbox(&SerpentSBoxes[r%8], &x)
		serpentLT(&x)
	}
	for i := range x {
		x[i] ^= c.rk[31][i]
	}
	sbox(&SerpentSBoxes[7], &x)
	for i := range x {
		x[i] ^= c.rk[32][i]
		bits.Store32LE(dst[4*i:], x[i])
	}
}

// Decrypt decrypts one 16-byte block.
func (c *Serpent) Decrypt(dst, src []byte) {
	var x [4]uint32
	for i := range x {
		x[i] = bits.Load32LE(src[4*i:])
		x[i] ^= c.rk[32][i]
	}
	sbox(&serpentInvSBoxes[7], &x)
	for i := range x {
		x[i] ^= c.rk[31][i]
	}
	for r := SerpentRounds - 2; r >= 0; r-- {
		serpentInvLT(&x)
		sbox(&serpentInvSBoxes[r%8], &x)
		for i := range x {
			x[i] ^= c.rk[r][i]
		}
	}
	for i := range x {
		bits.Store32LE(dst[4*i:], x[i])
	}
}

// SerpentCOBRA is the Serpent round workload as realizable on the COBRA
// datapath: identical round structure, round keys, S-box schedule (box
// r mod 8) and linear transformation as Serpent, but with the S-box applied
// to the eight contiguous 4-bit nibbles of each 32-bit word — the operation
// COBRA's C element performs in its paged 4→4 mode — instead of bitsliced
// across the words.
//
// Real Serpent's bitsliced S-box takes one bit from each of the four words,
// which no per-column nibble LUT can realize; the paper does not say how
// its Serpent mapping bridged this (figures 2–3 are unavailable), so the
// reproduction measures the paper's Serpent *workload* with the
// nibble-domain S-box and validates the datapath against this exact
// function. Per-cycle work, operation counts and the reconfiguration
// schedule — everything Table 3 and Table 6 measure — are identical to a
// real-Serpent mapping. See DESIGN.md ("RCE micro-structure assumptions").
type SerpentCOBRA struct {
	rk [33][4]uint32
}

// NewSerpentCOBRA derives the (standard Serpent) key schedule.
func NewSerpentCOBRA(key []byte) (*SerpentCOBRA, error) {
	rk, err := serpentKeySchedule(key)
	if err != nil {
		return nil, err
	}
	return &SerpentCOBRA{rk: *rk}, nil
}

// BlockSize returns 16.
func (c *SerpentCOBRA) BlockSize() int { return 16 }

// RoundKeyWords returns round key r (0..32) as four words.
func (c *SerpentCOBRA) RoundKeyWords(r int) [4]uint32 { return c.rk[r] }

// nibbleSub applies box to the eight contiguous nibbles of w.
func nibbleSub(box *[16]uint8, w uint32) uint32 {
	var out uint32
	for lane := 0; lane < 8; lane++ {
		n := w >> (4 * uint(lane)) & 0xf
		out |= uint32(box[n]) << (4 * uint(lane))
	}
	return out
}

// Encrypt encrypts one 16-byte block.
func (c *SerpentCOBRA) Encrypt(dst, src []byte) {
	var x [4]uint32
	for i := range x {
		x[i] = bits.Load32LE(src[4*i:])
	}
	for r := 0; r < SerpentRounds-1; r++ {
		for i := range x {
			x[i] = nibbleSub(&SerpentSBoxes[r%8], x[i]^c.rk[r][i])
		}
		serpentLT(&x)
	}
	for i := range x {
		x[i] = nibbleSub(&SerpentSBoxes[7], x[i]^c.rk[31][i])
		x[i] ^= c.rk[32][i]
		bits.Store32LE(dst[4*i:], x[i])
	}
}

// Decrypt decrypts one 16-byte block.
func (c *SerpentCOBRA) Decrypt(dst, src []byte) {
	var x [4]uint32
	for i := range x {
		x[i] = bits.Load32LE(src[4*i:]) ^ c.rk[32][i]
		x[i] = nibbleSub(&serpentInvSBoxes[7], x[i])
		x[i] ^= c.rk[31][i]
	}
	for r := SerpentRounds - 2; r >= 0; r-- {
		serpentInvLT(&x)
		for i := range x {
			x[i] = nibbleSub(&serpentInvSBoxes[r%8], x[i])
			x[i] ^= c.rk[r][i]
		}
	}
	for i := range x {
		bits.Store32LE(dst[4*i:], x[i])
	}
}
