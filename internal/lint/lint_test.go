package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// check runs the suite over one in-memory fixture and returns the findings.
func check(t *testing.T, src string) []Finding {
	t.Helper()
	fs, err := CheckSource("fixture.go", []byte(src))
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return fs
}

// codes extracts the analyzer names of a finding list.
func codes(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Code
	}
	return out
}

func TestDeprecatedAnalyzer(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"direct call", `package x
import "cobra/internal/program"
func f() { program.Encrypt(nil, nil, nil) }
`, 1},
		{"renamed import", `package x
import prog "cobra/internal/program"
func f() { prog.EncryptFastInto(nil, nil, nil, nil, nil) }
`, 1},
		{"every wrapper", `package x
import "cobra/internal/program"
func f() {
	program.Encrypt(nil, nil, nil)
	program.EncryptInto(nil, nil, nil, nil)
	program.EncryptBytes(nil, nil, nil)
	program.EncryptBytesInto(nil, nil, nil, nil)
	program.EncryptFastInto(nil, nil, nil, nil, nil)
}
`, 5},
		{"run is fine", `package x
import "cobra/internal/program"
func f() { program.Run(nil, nil, nil, nil, program.Opts{}) }
`, 0},
		{"same name different package", `package x
import program "example.com/other/program"
func f() { program.Encrypt(nil) }
`, 0}, // matched by import path, not by local name
		{"declaring package's own tests exempt", `package program_test
import "cobra/internal/program"
func f() { program.EncryptInto(nil, nil, nil, nil) }
`, 0},
		{"no program import", `package x
func Encrypt() {}
func f() { Encrypt() }
`, 0},
		{"blank import", `package x
import _ "cobra/internal/program"
func f() {}
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := check(t, tc.src)
			if len(fs) != tc.want {
				t.Errorf("got %d findings %v, want %d", len(fs), fs, tc.want)
			}
			for _, f := range fs {
				if f.Code != "deprecated" {
					t.Errorf("unexpected analyzer %q: %v", f.Code, f)
				}
			}
		})
	}
}

func TestFarmnewAnalyzer(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"direct call", `package x
import "cobra/internal/farm"
func f() { farm.New("rijndael", nil, struct{}{}, 4) }
`, 1},
		{"renamed import", `package x
import fm "cobra/internal/farm"
func f() { fm.New("rijndael", nil, struct{}{}, 4) }
`, 1},
		{"open is fine", `package x
import "cobra/internal/farm"
func f() { farm.Open("rijndael", nil, farm.Options{Workers: 4}) }
`, 0},
		{"same name different package", `package x
import farm "example.com/other/farm"
func f() { farm.New() }
`, 0}, // matched by import path, not by local name
		{"declaring package unqualified", `package farm
func f() { _, _ = New("rijndael", nil, struct{}{}, 4) }
func New(a string, k []byte, c any, n int) (any, error) { return nil, nil }
`, 0},
		{"no farm import", `package x
func New() {}
func f() { New() }
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := check(t, tc.src)
			if len(fs) != tc.want {
				t.Errorf("got %d findings %v, want %d", len(fs), fs, tc.want)
			}
			for _, f := range fs {
				if f.Code != "farmnew" {
					t.Errorf("unexpected analyzer %q: %v", f.Code, f)
				}
			}
		})
	}
}

func TestHotpathAnalyzer(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"clean hotpath", `package x
// doc comment.
//
//cobra:hotpath
func f(x uint32) uint32 { return x<<1 | x>>31 }
`, 0},
		{"fmt in hotpath", `package x
import "fmt"

//cobra:hotpath
func f() { fmt.Println("debug") }
`, 1},
		{"allocations in hotpath", `package x
//cobra:hotpath
func f(xs []int) []int {
	buf := make([]int, 4)
	p := new(int)
	_ = p
	return append(xs, buf...)
}
`, 3},
		{"unmarked function is free", `package x
import "fmt"
func f() { fmt.Println(make([]int, 4)) }
`, 0},
		{"marker must be exact", `package x
// cobra:hotpath (a prose mention, not the directive)
func f() { _ = make([]int, 4) }
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := check(t, tc.src)
			if len(fs) != tc.want {
				t.Errorf("got %d findings %v, want %d", len(fs), fs, tc.want)
			}
			for _, f := range fs {
				if f.Code != "hotpath" {
					t.Errorf("unexpected analyzer %q: %v", f.Code, f)
				}
			}
		})
	}
}

func TestHotpathpanicAnalyzer(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"panic in hotpath", `package x
//cobra:hotpath
func f(i int) int {
	if i < 0 {
		panic("negative")
	}
	return i
}
`, 1},
		{"log fatal in hotpath", `package x
import "log"

//cobra:hotpath
func f(err error) {
	if err != nil {
		log.Fatalf("boom: %v", err)
	}
}
`, 1},
		{"every fatal variant", `package x
import "log"

//cobra:hotpath
func f() {
	panic("a")
	log.Fatal("b")
	log.Fatalf("c")
	log.Fatalln("d")
}
`, 4},
		{"errors by return are fine", `package x
import "errors"

//cobra:hotpath
func f(i int) (int, error) {
	if i < 0 {
		return 0, errors.New("negative")
	}
	return i, nil
}
`, 0},
		{"unmarked function may panic", `package x
func f() { panic("fine here") }
`, 0},
		{"log print is fine", `package x
import "log"

//cobra:hotpath
func f() { log.Print("not fatal") }
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := check(t, tc.src)
			if len(fs) != tc.want {
				t.Errorf("got %d findings %v, want %d", len(fs), fs, tc.want)
			}
			for _, f := range fs {
				if f.Code != "hotpathpanic" {
					t.Errorf("unexpected analyzer %q: %v", f.Code, f)
				}
			}
		})
	}
}

// TestRepoIsClean runs the whole suite over the repository — the same gate
// CI runs as `cobra-lint ./...`, kept inside `go test ./...` so it cannot
// be skipped. This subsumes the old AST-walk deprecated-caller test that
// lived in internal/program.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := CheckDir(root, os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		rel, rerr := filepath.Rel(root, f.Pos.Filename)
		if rerr != nil {
			rel = f.Pos.Filename
		}
		t.Errorf("%s:%d: %s: %s", rel, f.Pos.Line, f.Code, f.Msg)
	}
	if t.Failed() {
		t.Log("fix the findings or run: go run ./cmd/cobra-lint ./...")
	}
}
