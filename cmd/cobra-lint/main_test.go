package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cobra/internal/vet"
)

func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.go")
	if err := os.WriteFile(clean, []byte("package x\n\nfunc F() int { return 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dirty := filepath.Join(dir, "dirty.go")
	dirtySrc := `package x

import "cobra/internal/program"

func f() { program.Encrypt(nil, nil, nil) }
`
	if err := os.WriteFile(dirty, []byte(dirtySrc), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"clean file", []string{clean}, 0},
		{"dirty file", []string{dirty}, 1},
		{"dir walk", []string{dir}, 1},
		{"recursive pattern", []string{dir + "/..."}, 1},
		{"missing file", []string{filepath.Join(dir, "absent.go")}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(tc.args, &out, &errb); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, out.String(), errb.String())
			}
		})
	}
}

// TestFullReport pins that a dirty file does not stop later arguments from
// being checked.
func TestFullReport(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.go")
	b := filepath.Join(dir, "b.go")
	os.WriteFile(a, []byte("package x\n\nimport \"cobra/internal/program\"\n\nfunc f() { program.Encrypt(nil, nil, nil) }\n"), 0o644)
	os.WriteFile(b, []byte("package x\n\n//cobra:hotpath\nfunc g() { _ = make([]int, 1) }\n"), 0o644)
	var out, errb bytes.Buffer
	if got := run([]string{a, b}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1", got)
	}
	s := out.String()
	if !strings.Contains(s, "deprecated") || !strings.Contains(s, "hotpath") {
		t.Errorf("expected findings from both files:\n%s", s)
	}
}

// TestJSONReports pins the machine-readable output: source positions in
// the shared cobra-vet schema, one report per argument.
func TestJSONReports(t *testing.T) {
	dir := t.TempDir()
	dirty := filepath.Join(dir, "dirty.go")
	src := `package x

//cobra:hotpath
func g() {
	panic("boom")
}
`
	if err := os.WriteFile(dirty, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "findings.json")
	var out, errb bytes.Buffer
	if got := run([]string{"-json", path, dirty}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", got, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var reports []vet.JSONReport
	if err := json.Unmarshal(raw, &reports); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, raw)
	}
	if len(reports) != 1 || reports[0].Check != "lint" || reports[0].Clean {
		t.Fatalf("reports = %+v", reports)
	}
	f := reports[0].Findings[0]
	if f.Code != "hotpathpanic" || f.File != dirty || f.SrcLine != 5 || f.SrcCol == 0 {
		t.Errorf("finding = %+v", f)
	}
}
