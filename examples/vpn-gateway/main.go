// vpn-gateway simulates the paper's motivating application (§1): a virtual
// private network gateway that must encrypt bulk traffic at the 622 Mbps
// ATM line rate. It streams a synthetic packet trace through a
// full-length-pipeline COBRA configuration for each of the three §4
// ciphers and checks the modeled sustained throughput against the
// requirement — the paper's headline claim.
package main

import (
	"context"
	"fmt"
	"log"

	"cobra/internal/core"
)

// packet sizes typical of a mixed traffic distribution, padded to the
// 16-byte block size by the framer.
var packetSizes = []int{64, 1504, 576, 1504, 128, 1504, 352, 48, 1504, 992}

func main() {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(0x42 + i)
	}

	fmt.Println("COBRA VPN gateway: 622 Mbps ATM encryption requirement (§1)")
	fmt.Println()

	for _, alg := range []core.Algorithm{core.RC6, core.Rijndael, core.Serpent} {
		// Unroll 0 selects the full-length pipeline: the configuration the
		// paper shows meets the ATM requirement for all three ciphers.
		dev, err := core.Configure(alg, key, core.Config{})
		if err != nil {
			log.Fatal(err)
		}

		var trace []byte
		for i, sz := range packetSizes {
			pkt := make([]byte, (sz+15)/16*16)
			for j := range pkt {
				pkt[j] = byte(i*31 + j)
			}
			trace = append(trace, pkt...)
		}

		ct, err := dev.EncryptECB(context.Background(), trace)
		if err != nil {
			log.Fatal(err)
		}
		if len(ct) != len(trace) {
			log.Fatalf("%s: framer length mismatch", alg)
		}
		// Spot-check the gateway can decrypt its own traffic.
		pt, err := dev.DecryptECB(context.Background(), ct)
		if err != nil {
			log.Fatal(err)
		}
		for i := range trace {
			if pt[i] != trace[i] {
				log.Fatalf("%s: corrupted traffic at byte %d", alg, i)
			}
		}

		r := dev.Report()
		verdict := "MEETS"
		if r.ThroughputMbps < 622 {
			verdict = "MISSES"
		}
		fmt.Printf("%-9s unroll=%-2d rows=%-3d  %7.2f cycles/blk  %7.3f MHz  %9.1f Mbps  -> %s 622 Mbps\n",
			dev.Algorithm(), dev.Unroll(), r.Rows, r.CyclesPerBlock, r.DatapathMHz,
			r.ThroughputMbps, verdict)
	}

	fmt.Println()
	fmt.Println("All traffic verified against the host reference ciphers.")
}
