package program

import (
	"bytes"
	"testing"
	"testing/quick"

	"cobra/internal/cipher"
)

var gostKey = func() []byte {
	k := make([]byte, 32)
	for i := range k {
		k[i] = byte(i*11 + 3)
	}
	return k
}()

func TestGOSTOnCOBRA(t *testing.T) {
	ref, err := cipher.NewGOST(gostKey)
	if err != nil {
		t.Fatal(err)
	}
	// 8 GOST blocks = 4 superblocks.
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i * 7)
	}
	want := make([]byte, len(src))
	for i := 0; i < len(src); i += 8 {
		ref.Encrypt(want[i:], src[i:])
	}
	p, err := BuildGOST(gostKey)
	if err != nil {
		t.Fatal(err)
	}
	got, stats := cobraEncryptECB(t, p, src)
	if !bytes.Equal(got, want) {
		t.Errorf("gost: mismatch\n got %x\nwant %x", got, want)
	}
	// Two 64-bit blocks per pass: cycles per *GOST block* should be about
	// half the per-superblock cost.
	perGostBlock := float64(stats.Cycles) / float64(len(src)/8)
	t.Logf("gost-2: %.1f cycles per 64-bit block (%d cycles, %d superblocks)",
		perGostBlock, stats.Cycles, stats.BlocksOut)
}

func TestGOSTOnCOBRARandomized(t *testing.T) {
	f := func(key [32]byte, sb [16]byte) bool {
		ref, err := cipher.NewGOST(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 16)
		ref.Encrypt(want[0:], sb[0:])
		ref.Encrypt(want[8:], sb[8:])
		p, err := BuildGOST(key[:])
		if err != nil {
			return false
		}
		m, err := NewMachine(p)
		if err != nil {
			return false
		}
		if err := Load(m, p); err != nil {
			return false
		}
		got, _, err := EncryptBytes(m, p, sb[:])
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestGOSTKeySize(t *testing.T) {
	if _, err := BuildGOST(make([]byte, 16)); err == nil {
		t.Error("expected key-size error")
	}
}
