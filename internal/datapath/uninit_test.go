package datapath

import (
	"testing"

	"cobra/internal/bits"
	"cobra/internal/isa"
)

// inerReader points r0.c0's ER word at (bank, addr) and makes A1 consume
// the INER port, so every advancing tick reads that eRAM cell.
func inerReader(t *testing.T, a *Array, bank, addr int) {
	t.Helper()
	if err := a.ApplyElem(isa.SliceAt(0, 0), isa.ElemER,
		isa.ERCfg{Bank: uint8(bank), Addr: uint8(addr)}.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := a.ApplyElem(isa.SliceAt(0, 0), isa.ElemA1,
		isa.ACfg{Op: isa.AXor, Operand: isa.SrcINER}.Encode()); err != nil {
		t.Fatal(err)
	}
}

func TestUninitSentinelOffByDefault(t *testing.T) {
	a := newArray(t)
	inerReader(t, a, 1, 7)
	a.Tick(TickInput{External: bits.Block128{1}, HaveExternal: true})
	if got := a.UninitReads(); got != nil {
		t.Errorf("sentinel disarmed but UninitReads() = %v", got)
	}
}

func TestUninitSentinelRecordsINERRead(t *testing.T) {
	a := newArray(t)
	a.TrackUninit()
	inerReader(t, a, 1, 7)
	a.Tick(TickInput{External: bits.Block128{1}, HaveExternal: true})
	want := []ERAMRef{{Col: 0, Bank: 1, Addr: 7}}
	got := a.UninitReads()
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("UninitReads() = %v, want %v", got, want)
	}
	// Repeated reads of the same cell dedup.
	a.Tick(TickInput{External: bits.Block128{2}, HaveExternal: true})
	if got := a.UninitReads(); len(got) != 1 {
		t.Errorf("after second tick UninitReads() = %v, want one entry", got)
	}
}

func TestUninitSentinelWrittenCellIsClean(t *testing.T) {
	a := newArray(t)
	a.TrackUninit()
	a.WriteERAM(0, 1, 7, 42)
	inerReader(t, a, 1, 7)
	a.Tick(TickInput{External: bits.Block128{1}, HaveExternal: true})
	if got := a.UninitReads(); len(got) != 0 {
		t.Errorf("read of a written cell recorded: %v", got)
	}
}

func TestUninitSentinelStallDoesNotRead(t *testing.T) {
	// A non-advancing cycle (external mode, no input) consumes nothing.
	a := newArray(t)
	a.TrackUninit()
	inerReader(t, a, 1, 7)
	if res := a.Tick(TickInput{}); res.Advanced {
		t.Fatal("tick advanced without input")
	}
	if got := a.UninitReads(); len(got) != 0 {
		t.Errorf("stall cycle recorded a read: %v", got)
	}
}

func TestUninitSentinelFrozenRegisterDoesNotRead(t *testing.T) {
	// A frozen registered RCE discards its evaluated value, so its INER
	// selection consumes nothing.
	a := newArray(t)
	a.TrackUninit()
	inerReader(t, a, 1, 7)
	if err := a.ApplyElem(isa.SliceAt(0, 0), isa.ElemReg,
		isa.RegCfg{Enabled: true}.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := a.SetOutEnable(isa.SliceAt(0, 0), false); err != nil {
		t.Fatal(err)
	}
	a.Tick(TickInput{External: bits.Block128{1}, HaveExternal: true})
	if got := a.UninitReads(); len(got) != 0 {
		t.Errorf("frozen register's INER selection recorded a read: %v", got)
	}
	// Thaw: the very next advancing cycle consumes the cell.
	if err := a.SetOutEnable(isa.SliceAt(0, 0), true); err != nil {
		t.Fatal(err)
	}
	a.Tick(TickInput{External: bits.Block128{2}, HaveExternal: true})
	if got := a.UninitReads(); len(got) != 1 {
		t.Errorf("thawed register did not record the read: %v", got)
	}
}

func TestUninitSentinelPlaybackReadsAllColumns(t *testing.T) {
	a := newArray(t)
	a.TrackUninit()
	// Write only columns 0 and 2 at the playback address: the input fetch
	// reads all four columns, so 1 and 3 surface.
	a.WriteERAM(0, 2, 30, 1)
	a.WriteERAM(2, 2, 30, 2)
	a.SetInMux(isa.InMuxCfg{Mode: isa.InERAM, Bank: 2, Addr: 30})
	a.Tick(TickInput{})
	want := []ERAMRef{{Col: 1, Bank: 2, Addr: 30}, {Col: 3, Bank: 2, Addr: 30}}
	got := a.UninitReads()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("UninitReads() = %v, want %v", got, want)
	}
}

func TestUninitSentinelCaptureMarksWritten(t *testing.T) {
	a := newArray(t)
	a.TrackUninit()
	a.SetCapture(0, isa.CaptureCfg{Enabled: true, Bank: 3, Addr: 10})
	a.Tick(TickInput{External: bits.Block128{9}, HaveExternal: true})
	// The capture committed word 10; reading it back via INER is clean,
	// while the never-captured word 11 is not.
	a.SetCapture(0, isa.CaptureCfg{})
	inerReader(t, a, 3, 10)
	a.Tick(TickInput{External: bits.Block128{1}, HaveExternal: true})
	if got := a.UninitReads(); len(got) != 0 {
		t.Errorf("captured cell flagged: %v", got)
	}
	inerReader(t, a, 3, 11)
	a.Tick(TickInput{External: bits.Block128{2}, HaveExternal: true})
	if got := a.UninitReads(); len(got) != 1 || got[0] != (ERAMRef{Col: 0, Bank: 3, Addr: 11}) {
		t.Errorf("uncaptured neighbour not flagged: %v", got)
	}
}

func TestUninitSentinelSurvivesReset(t *testing.T) {
	a := newArray(t)
	a.TrackUninit()
	a.WriteERAM(0, 1, 7, 42)
	inerReader(t, a, 0, 0)
	a.Tick(TickInput{External: bits.Block128{1}, HaveExternal: true})
	a.Reset()
	// Recorded reads persist, and the written set does too: eRAM contents
	// are explicit microcode state that Reset leaves in place.
	if got := a.UninitReads(); len(got) != 1 || got[0] != (ERAMRef{Col: 0, Bank: 0, Addr: 0}) {
		t.Errorf("recorded read lost across Reset: %v", got)
	}
	inerReader(t, a, 1, 7)
	a.Tick(TickInput{External: bits.Block128{2}, HaveExternal: true})
	if got := a.UninitReads(); len(got) != 1 {
		t.Errorf("written set lost across Reset: %v", got)
	}
}

func TestUninitSentinelSorted(t *testing.T) {
	a := newArray(t)
	a.TrackUninit()
	// Read four cells in shuffled order; UninitReads sorts by (col, bank,
	// addr).
	for _, ref := range [][2]int{{1, 9}, {2, 4}, {1, 200}, {1, 3}} {
		inerReader(t, a, ref[0], ref[1])
		a.Tick(TickInput{External: bits.Block128{1}, HaveExternal: true})
	}
	got := a.UninitReads()
	exp := []ERAMRef{
		{Col: 0, Bank: 1, Addr: 3},
		{Col: 0, Bank: 1, Addr: 9},
		{Col: 0, Bank: 1, Addr: 200},
		{Col: 0, Bank: 2, Addr: 4},
	}
	if len(got) != len(exp) {
		t.Fatalf("UninitReads() = %v, want %v", got, exp)
	}
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("UninitReads()[%d] = %v, want %v", i, got[i], exp[i])
		}
	}
}
