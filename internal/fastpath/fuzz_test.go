package fastpath_test

import (
	"testing"

	"cobra/internal/bits"
	"cobra/internal/program"
)

// FuzzFastpathVsInterpreter feeds fuzzer-chosen keys and plaintext through
// both engines over a fixed cipher set and requires identical ciphertext
// and counters. Trace compilation must succeed for every key: the control
// schedule is key-independent (keys only change eRAM contents), so a key
// that broke compilation — or diverged — would falsify the steady-state
// proof. Run via `go test -fuzz=FuzzFastpathVsInterpreter`; CI runs a
// short smoke.
func FuzzFastpathVsInterpreter(f *testing.F) {
	f.Add(uint8(0), []byte("an-example-key-1"), []byte("attack at dawn!!attack at dusk!!"))
	f.Add(uint8(1), make([]byte, 16), []byte{})
	f.Add(uint8(2), []byte{0xff}, []byte("0123456789abcdef"))
	f.Add(uint8(3), []byte("rc5-key-material"), []byte("two 64-bit lanes per superblock!"))
	f.Add(uint8(4), []byte("tea-key-16-bytes"), []byte("big-endian words"))
	f.Add(uint8(5), []byte("simon64/128-key!"), []byte("lik eund mapping"))
	f.Add(uint8(6), []byte("blowfish-pi-key!"), []byte("feistel+sboxes!!"))
	f.Add(uint8(7), []byte("8bytekey"), []byte("partial"))
	f.Fuzz(func(t *testing.T, sel uint8, keyData, ptData []byte) {
		key := make([]byte, 16)
		copy(key, keyData)

		var p *program.Program
		var err error
		switch sel % 8 {
		case 0:
			p, err = program.BuildRC6(key, 2, 20)
		case 1:
			p, err = program.BuildRijndael(key, 2)
		case 2:
			p, err = program.BuildSerpent(key, 4)
		case 3:
			p, err = program.BuildRC5(key, 2, 12)
		case 4:
			p, err = program.BuildTEA(key, 2)
		case 5:
			p, err = program.BuildSIMON(key, 4)
		case 6:
			p, err = program.BuildBlowfish(key, 1)
		default:
			p, err = program.BuildDES(key[:8])
		}
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		ex, err := p.Compile()
		if err != nil {
			t.Fatalf("trace compilation must be key-independent: %v", err)
		}
		m, err := program.NewMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := program.Load(m, p); err != nil {
			t.Fatal(err)
		}

		// Full blocks only; cap the batch so a large fuzz input doesn't
		// stall the interpreter side.
		n := len(ptData) / 16
		if n > 8 {
			n = 8
		}
		if n == 0 {
			ptData = append(ptData, make([]byte, 16)...)
			n = 1
		}
		in := make([]bits.Block128, n)
		for i := range in {
			in[i] = bits.LoadBlock128(ptData[16*i:])
		}

		// Two calls so the fuzzer also exercises the dirty-resume paths.
		for call := 0; call < 2; call++ {
			want := make([]bits.Block128, n)
			wantStats, err := program.Run(m, p, want, in, program.Opts{})
			if err != nil {
				t.Fatal(err)
			}
			got := make([]bits.Block128, n)
			gotStats, err := ex.EncryptInto(got, in)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("call %d block %d: fastpath %08x != interpreter %08x", call, i, got[i], want[i])
				}
			}
			if gotStats != wantStats {
				t.Fatalf("call %d: stats %+v != %+v", call, gotStats, wantStats)
			}
		}
	})
}
