package cipher

import (
	"cobra/internal/bits"
)

// RC6 magic constants (RC6-32: P = Odd((e-2)·2^32), Q = Odd((φ-1)·2^32)).
const (
	rc6P = 0xb7e15163
	rc6Q = 0x9e3779b9
)

// RC6Rounds is the nominal round count of RC6-32/20/b as submitted to the
// AES process and as implemented on COBRA in §4.
const RC6Rounds = 20

// RC6 implements RC6-32/r/b: four 32-bit working registers, a quadratic
// data-dependent rotation t = (B(2B+1)) <<< 5, and 2r+4 round keys. The
// COBRA study selected RC6 for its multiplication and variable-rotation
// requirements (§4).
type RC6 struct {
	rounds int
	s      []uint32 // 2·rounds + 4 round keys
}

// NewRC6 derives the key schedule for a 16-byte key and the
// standard 20 rounds.
func NewRC6(key []byte) (*RC6, error) { return NewRC6Rounds(key, RC6Rounds) }

// NewRC6Rounds derives the key schedule for r rounds (the COBRA evaluation
// sweeps partial-unroll configurations, so reduced-round variants are
// first-class here).
func NewRC6Rounds(key []byte, rounds int) (*RC6, error) {
	if len(key) != 16 && len(key) != 24 && len(key) != 32 {
		return nil, KeySizeError{"rc6", len(key)}
	}
	if rounds < 1 || rounds > 255 {
		return nil, KeySizeError{"rc6", rounds}
	}
	c := len(key) / 4
	l := make([]uint32, c)
	for i := 0; i < c; i++ {
		l[i] = bits.Load32LE(key[4*i:])
	}
	n := 2*rounds + 4
	s := make([]uint32, n)
	s[0] = rc6P
	for i := 1; i < n; i++ {
		s[i] = s[i-1] + rc6Q
	}
	var a, b uint32
	i, j := 0, 0
	for k := 0; k < 3*max(n, c); k++ {
		a = bits.RotL(s[i]+a+b, 3)
		s[i] = a
		b = bits.RotL(l[j]+a+b, uint(a+b))
		l[j] = b
		i = (i + 1) % n
		j = (j + 1) % c
	}
	return &RC6{rounds: rounds, s: s}, nil
}

// BlockSize returns 16 (128-bit blocks).
func (c *RC6) BlockSize() int { return 16 }

// Rounds returns the configured round count.
func (c *RC6) Rounds() int { return c.rounds }

// RoundKeys exposes the key schedule; the COBRA program builder loads these
// words into the eRAMs (the paper's external system supplies key material
// during the key-scheduling phase, §3.4).
func (c *RC6) RoundKeys() []uint32 {
	out := make([]uint32, len(c.s))
	copy(out, c.s)
	return out
}

// Encrypt encrypts one 16-byte block.
func (c *RC6) Encrypt(dst, src []byte) {
	a := bits.Load32LE(src[0:])
	b := bits.Load32LE(src[4:])
	d0 := bits.Load32LE(src[8:])
	e := bits.Load32LE(src[12:])

	b += c.s[0]
	e += c.s[1]
	for i := 1; i <= c.rounds; i++ {
		t := bits.RotL(b*(2*b+1), 5)
		u := bits.RotL(e*(2*e+1), 5)
		a = bits.RotL(a^t, uint(u)) + c.s[2*i]
		d0 = bits.RotL(d0^u, uint(t)) + c.s[2*i+1]
		a, b, d0, e = b, d0, e, a
	}
	a += c.s[2*c.rounds+2]
	d0 += c.s[2*c.rounds+3]

	bits.Store32LE(dst[0:], a)
	bits.Store32LE(dst[4:], b)
	bits.Store32LE(dst[8:], d0)
	bits.Store32LE(dst[12:], e)
}

// Decrypt decrypts one 16-byte block.
func (c *RC6) Decrypt(dst, src []byte) {
	a := bits.Load32LE(src[0:])
	b := bits.Load32LE(src[4:])
	d0 := bits.Load32LE(src[8:])
	e := bits.Load32LE(src[12:])

	d0 -= c.s[2*c.rounds+3]
	a -= c.s[2*c.rounds+2]
	for i := c.rounds; i >= 1; i-- {
		a, b, d0, e = e, a, b, d0
		t := bits.RotL(b*(2*b+1), 5)
		u := bits.RotL(e*(2*e+1), 5)
		a = bits.RotR(a-c.s[2*i], uint(u)) ^ t
		d0 = bits.RotR(d0-c.s[2*i+1], uint(t)) ^ u
	}
	e -= c.s[1]
	b -= c.s[0]

	bits.Store32LE(dst[0:], a)
	bits.Store32LE(dst[4:], b)
	bits.Store32LE(dst[8:], d0)
	bits.Store32LE(dst[12:], e)
}
