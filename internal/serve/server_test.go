package serve_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"cobra/internal/cipher"
	"cobra/internal/core"
	"cobra/internal/serve"
	"cobra/internal/serve/client"
)

// keyN derives a distinct deterministic 16-byte key.
func keyN(n byte) []byte {
	k := make([]byte, 16)
	for i := range k {
		k[i] = byte(i)*7 + n
	}
	return k
}

func testMessage(n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i*31 + i>>8)
	}
	return msg
}

// refBlock builds the host-reference cipher — the oracle every server
// response is checked against.
func refBlock(t testing.TB, alg string, key []byte) cipher.Block {
	t.Helper()
	var blk cipher.Block
	var err error
	switch core.Algorithm(alg) {
	case core.RC6:
		blk, err = cipher.NewRC6(key)
	case core.Rijndael:
		blk, err = cipher.NewRijndael(key)
	case core.Serpent:
		blk, err = cipher.NewSerpentCOBRA(key)
	default:
		t.Fatalf("unknown algorithm %q", alg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

func refECB(blk cipher.Block, src []byte) []byte {
	dst := make([]byte, len(src))
	for off := 0; off < len(src); off += 16 {
		blk.Encrypt(dst[off:], src[off:])
	}
	return dst
}

func refCBC(blk cipher.Block, iv, src []byte) []byte {
	dst := make([]byte, len(src))
	var x [16]byte
	prev := iv
	for off := 0; off < len(src); off += 16 {
		for i := 0; i < 16; i++ {
			x[i] = src[off+i] ^ prev[i]
		}
		blk.Encrypt(dst[off:], x[:])
		prev = dst[off : off+16]
	}
	return dst
}

func refCTR(blk cipher.Block, iv, src []byte) []byte {
	dst := make([]byte, len(src))
	var c, ks [16]byte
	copy(c[:], iv)
	for off := 0; off < len(src); off += 16 {
		blk.Encrypt(ks[:], c[:])
		for i := 15; i >= 0; i-- {
			c[i]++
			if c[i] != 0 {
				break
			}
		}
		n := len(src) - off
		if n > 16 {
			n = 16
		}
		for j := 0; j < n; j++ {
			dst[off+j] = src[off+j] ^ ks[j]
		}
	}
	return dst
}

// startServer runs a server on a loopback port, shut down at cleanup.
func startServer(t testing.TB, opts serve.Options) *serve.Server {
	t.Helper()
	s, err := serve.NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func dial(t testing.TB, s *serve.Server) *client.Client {
	t.Helper()
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

var testIV = testMessage(16)

// TestServeRoundTrips checks every mode round trip on a device backend
// against the host reference ciphers, for all three paper datapaths.
func TestServeRoundTrips(t *testing.T) {
	s := startServer(t, serve.Options{Backend: "device"})
	for i, alg := range []string{"rc6", "rijndael", "serpent"} {
		t.Run(alg, func(t *testing.T) {
			key := keyN(byte(i))
			blk := refBlock(t, alg, key)
			c := dial(t, s)
			ack, err := c.Configure(client.Config{Tenant: alg, Alg: alg, Key: key, Unroll: 1})
			if err != nil {
				t.Fatal(err)
			}
			if ack.Workers != 1 || ack.Rows == 0 {
				t.Fatalf("implausible configure ack: %+v", ack)
			}

			msg := testMessage(4 * 16)
			ct, err := c.Encrypt(serve.ModeECB, nil, msg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ct, refECB(blk, msg)) {
				t.Error("ecb ciphertext differs from host reference")
			}
			pt, err := c.Decrypt(serve.ModeECB, nil, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pt, msg) {
				t.Error("ecb decrypt does not invert encrypt")
			}

			ct, err = c.Encrypt(serve.ModeCBC, testIV, msg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ct, refCBC(blk, testIV, msg)) {
				t.Error("cbc ciphertext differs from host reference")
			}
			pt, err = c.Decrypt(serve.ModeCBC, testIV, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pt, msg) {
				t.Error("cbc decrypt does not invert encrypt")
			}

			tail := testMessage(3*16 + 5) // partial final block
			ct, err = c.Encrypt(serve.ModeCTR, testIV, tail)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ct, refCTR(blk, testIV, tail)) {
				t.Error("ctr ciphertext differs from host reference")
			}
			pt, err = c.Decrypt(serve.ModeCTR, testIV, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pt, tail) {
				t.Error("ctr decrypt does not invert encrypt")
			}
		})
	}
}

// TestServeFarmBackend checks the farm path: sharded CTR against the
// host reference, and block-mode decryption — sharded ECB and
// IV-overlapped sharded CBC — inverting encryption through the wire.
func TestServeFarmBackend(t *testing.T) {
	s := startServer(t, serve.Options{Backend: "farm", Workers: 2})
	key := keyN(9)
	blk := refBlock(t, "rijndael", key)
	c := dial(t, s)
	ack, err := c.Configure(client.Config{Tenant: "farm", Alg: "rijndael", Key: key, Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Workers != 2 || ack.Backend != "farm" {
		t.Fatalf("implausible configure ack: %+v", ack)
	}

	msg := testMessage(100 * 16)
	ct, err := c.Encrypt(serve.ModeCTR, testIV, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct, refCTR(blk, testIV, msg)) {
		t.Error("farm ctr ciphertext differs from host reference")
	}
	pt, err := c.Decrypt(serve.ModeCTR, testIV, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Error("farm ctr decrypt does not invert encrypt")
	}

	pt, err = c.Decrypt(serve.ModeECB, nil, refECB(blk, msg))
	if err != nil {
		t.Fatalf("farm ecb decrypt: %v", err)
	}
	if !bytes.Equal(pt, msg) {
		t.Error("farm ecb decrypt does not invert host-reference encrypt")
	}
	pt, err = c.Decrypt(serve.ModeCBC, testIV, refCBC(blk, testIV, msg))
	if err != nil {
		t.Fatalf("farm cbc decrypt: %v", err)
	}
	if !bytes.Equal(pt, msg) {
		t.Error("farm cbc decrypt does not invert host-reference encrypt")
	}
}

// rawDial opens a bare protocol connection (no client library) for
// tests that violate the protocol on purpose.
func rawDial(t *testing.T, s *serve.Server) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn
}

func rawRoundTrip(t *testing.T, conn net.Conn, f serve.Frame) serve.Frame {
	t.Helper()
	if err := serve.WriteFrame(conn, f); err != nil {
		t.Fatal(err)
	}
	resp, err := serve.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func wantWireError(t *testing.T, f serve.Frame, code uint16) *serve.WireError {
	t.Helper()
	if f.Type != serve.FrameError {
		t.Fatalf("want ERROR frame, got %v", f.Type)
	}
	we, err := serve.DecodeError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if we.Code != code {
		t.Fatalf("want error code %s, got %s (%s)", serve.CodeName(code), serve.CodeName(we.Code), we.Msg)
	}
	return we
}

// TestServeSequenceAndVersionErrors covers the protocol's ordering and
// negotiation failures.
func TestServeSequenceAndVersionErrors(t *testing.T) {
	s := startServer(t, serve.Options{Backend: "device"})

	t.Run("configure-before-hello", func(t *testing.T) {
		conn := rawDial(t, s)
		req := serve.ConfigureReq{Tenant: "x", Alg: "rc6", Key: keyN(0), Unroll: 1}
		resp := rawRoundTrip(t, conn, serve.Frame{Type: serve.FrameConfigure, Payload: req.Encode()})
		wantWireError(t, resp, serve.CodeSequence)
		// The session survives: a proper HELLO still works.
		hello := serve.Hello{MinVersion: serve.Version, MaxVersion: serve.Version}
		resp = rawRoundTrip(t, conn, serve.Frame{Type: serve.FrameHello, Payload: hello.Encode()})
		if resp.Type != serve.FrameHello {
			t.Fatalf("hello after sequence error: got %v", resp.Type)
		}
	})

	t.Run("version-mismatch", func(t *testing.T) {
		conn := rawDial(t, s)
		hello := serve.Hello{MinVersion: serve.Version + 1, MaxVersion: serve.Version + 5}
		resp := rawRoundTrip(t, conn, serve.Frame{Type: serve.FrameHello, Payload: hello.Encode()})
		wantWireError(t, resp, serve.CodeVersion)
		if _, err := serve.ReadFrame(conn, 0); err == nil {
			t.Fatal("connection should be closed after version mismatch")
		}
	})

	t.Run("duplicate-hello", func(t *testing.T) {
		conn := rawDial(t, s)
		hello := serve.Hello{MinVersion: serve.Version, MaxVersion: serve.Version}
		if resp := rawRoundTrip(t, conn, serve.Frame{Type: serve.FrameHello, Payload: hello.Encode()}); resp.Type != serve.FrameHello {
			t.Fatalf("handshake failed: %v", resp.Type)
		}
		resp := rawRoundTrip(t, conn, serve.Frame{Type: serve.FrameHello, Payload: hello.Encode()})
		wantWireError(t, resp, serve.CodeSequence)
	})

	t.Run("encrypt-before-configure", func(t *testing.T) {
		c := dial(t, s)
		_, err := c.Encrypt(serve.ModeECB, nil, testMessage(16))
		var we *serve.WireError
		if !errors.As(err, &we) || we.Code != serve.CodeSequence {
			t.Fatalf("want CodeSequence, got %v", err)
		}
	})

	t.Run("bad-requests", func(t *testing.T) {
		c := dial(t, s)
		_, err := c.Configure(client.Config{Alg: "des", Key: keyN(0)})
		var we *serve.WireError
		if !errors.As(err, &we) || we.Code != serve.CodeBadRequest {
			t.Fatalf("unknown alg: want CodeBadRequest, got %v", err)
		}
		_, err = c.Configure(client.Config{Alg: "rc6", Key: []byte("short")})
		if !errors.As(err, &we) || we.Code != serve.CodeBadRequest {
			t.Fatalf("bad key size: want CodeBadRequest, got %v", err)
		}
		// And after all that, a valid configure still succeeds.
		if _, err := c.Configure(client.Config{Alg: "rc6", Key: keyN(0), Unroll: 1}); err != nil {
			t.Fatalf("valid configure after bad ones: %v", err)
		}
		if _, err := c.Encrypt(serve.ModeCBC, testIV[:8], testMessage(16)); err == nil {
			t.Fatal("want error for 8-byte IV")
		}
	})
}

// TestServeBusyShedAndRecovery pins the admission-control contract: a
// saturated backend sheds BUSY instead of queueing unboundedly, the
// shed is a clean application error (the session survives), and a
// retry succeeds once load passes.
func TestServeBusyShedAndRecovery(t *testing.T) {
	s := startServer(t, serve.Options{
		Backend:     "device",
		Interpreter: true, // slow path: requests dwell long enough to collide
		MaxWaiters:  1,    // 1 executing + 1 queued; the rest shed
	})
	const clients = 8
	key := keyN(3)
	blk := refBlock(t, "rc6", key)
	// Long enough (tens of ms on the interpreter) that the goroutine
	// scheduler preempts a request mid-execution even on one CPU, so
	// concurrent sessions genuinely collide at the admission gate.
	msg := testMessage(512 * 16)
	want := refECB(blk, msg)

	conns := make([]*client.Client, clients)
	for i := range conns {
		conns[i] = dial(t, s)
		if _, err := conns[i].Configure(client.Config{Tenant: "shed", Alg: "rc6", Key: key, Unroll: 1}); err != nil {
			t.Fatal(err)
		}
	}

	start := make(chan struct{})
	type result struct {
		sheds int
		err   error
	}
	results := make(chan result, clients)
	for i := range conns {
		go func(c *client.Client) {
			<-start
			r := result{}
			for {
				ct, err := c.Encrypt(serve.ModeECB, nil, msg)
				if serve.IsBusy(err) {
					r.sheds++
					time.Sleep(10 * time.Millisecond)
					continue // recovery: same session retries
				}
				if err == nil && !bytes.Equal(ct, want) {
					err = fmt.Errorf("ciphertext differs from host reference")
				}
				r.err = err
				results <- r
				return
			}
		}(conns[i])
	}
	close(start)

	sheds := 0
	for i := 0; i < clients; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		sheds += r.sheds
	}
	if sheds == 0 {
		t.Error("8 simultaneous requests against 1 slot + 1 waiter produced no BUSY shed")
	}
	t.Logf("observed %d BUSY sheds, all recovered", sheds)
}

// TestServeBackendLRU pins the cache contract: reuse is reported in the
// CONFIGURE ack, pinned backends cannot be evicted (CONFIGURE sheds
// BUSY instead), and releasing a pin makes its backend evictable again.
func TestServeBackendLRU(t *testing.T) {
	s := startServer(t, serve.Options{Backend: "device", MaxBackends: 2})
	cfg := func(n byte) client.Config {
		return client.Config{Tenant: "lru", Alg: "rc6", Key: keyN(n), Unroll: 1}
	}

	c1 := dial(t, s)
	ack, err := c1.Configure(cfg(1))
	if err != nil || ack.CacheHit {
		t.Fatalf("first configure: hit=%v err=%v", ack.CacheHit, err)
	}
	c1.Close()

	c2 := dial(t, s)
	if ack, err = c2.Configure(cfg(1)); err != nil || !ack.CacheHit {
		t.Fatalf("reconfigure of cached backend: hit=%v err=%v", ack.CacheHit, err)
	}
	c3 := dial(t, s)
	if ack, err = c3.Configure(cfg(2)); err != nil || ack.CacheHit {
		t.Fatalf("second distinct configure: hit=%v err=%v", ack.CacheHit, err)
	}

	// Cache is full (2) and both entries are pinned: a third
	// configuration must shed BUSY, not evict under a live session.
	c4 := dial(t, s)
	if _, err = c4.Configure(cfg(3)); !serve.IsBusy(err) {
		t.Fatalf("configure with all backends pinned: want BUSY, got %v", err)
	}

	// Releasing one pin (session close is asynchronous — poll) makes
	// room: the eviction victim is the released backend.
	c3.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err = c4.Configure(cfg(3)); err == nil {
			break
		}
		if !serve.IsBusy(err) || time.Now().After(deadline) {
			t.Fatalf("configure after release: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Key 2 was evicted: once c2's pin on key 1 is also gone, key 2
	// reconfigures cold while the still-cached key 1 would be the
	// eviction victim.
	c2.Close()
	c5 := dial(t, s)
	for {
		ack, err = c5.Configure(cfg(2))
		if err == nil {
			break
		}
		if !serve.IsBusy(err) || time.Now().After(deadline) {
			t.Fatalf("configure after eviction: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ack.CacheHit {
		t.Fatal("evicted backend should reconfigure cold")
	}
}

// TestServeStatsAndMetrics checks the STATS reply and the per-tenant
// series in the server's own registry.
func TestServeStatsAndMetrics(t *testing.T) {
	s := startServer(t, serve.Options{Backend: "device"})
	alice := dial(t, s)
	if _, err := alice.Configure(client.Config{Tenant: "alice", Alg: "rc6", Key: keyN(1), Unroll: 1}); err != nil {
		t.Fatal(err)
	}
	bob := dial(t, s)
	if _, err := bob.Configure(client.Config{Tenant: "bob", Alg: "rijndael", Key: keyN(2), Unroll: 1}); err != nil {
		t.Fatal(err)
	}

	msg := testMessage(8 * 16)
	for i := 0; i < 2; i++ {
		if _, err := alice.Encrypt(serve.ModeCTR, testIV, msg); err != nil {
			t.Fatal(err)
		}
	}
	ct, err := bob.Encrypt(serve.ModeECB, nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Decrypt(serve.ModeECB, nil, ct); err != nil {
		t.Fatal(err)
	}

	st, err := alice.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "alice" || st.Encrypts != 2 || st.Decrypts != 0 || st.Blocks != 16 {
		t.Fatalf("alice stats: %+v", st)
	}
	if st.Backend.Algorithm != "rc6" {
		t.Fatalf("alice backend summary: %+v", st.Backend)
	}
	if st, err = bob.Stats(); err != nil || st.Encrypts != 1 || st.Decrypts != 1 {
		t.Fatalf("bob stats: %+v err=%v", st, err)
	}

	var buf bytes.Buffer
	if err := s.Obs().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	for _, want := range []string{
		`cobra_serve_requests_total`,
		`tenant="alice"`,
		`tenant="bob"`,
		`cobra_serve_sessions_active`,
		`cobra_serve_backends`,
		`cobra_device_requests_total`, // backend subtree attached...
		`config="rc6-u1-`,             // ...under a key-fingerprint label
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape is missing %s", want)
		}
	}
	if strings.Contains(scrape, fmt.Sprintf("%x", keyN(1))) {
		t.Error("scrape leaks key material")
	}
}

// TestServeDrainInFlightCompletes pins the graceful-drain guarantee: a
// request already executing when Shutdown begins completes with a
// correct response; only then is the session told CodeDraining; and new
// connections are refused with CodeDraining.
func TestServeDrainInFlightCompletes(t *testing.T) {
	s, err := serve.NewServer(serve.Options{Backend: "device", Interpreter: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	key := keyN(7)
	blk := refBlock(t, "rc6", key)
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Configure(client.Config{Tenant: "drain", Alg: "rc6", Key: key, Unroll: 1}); err != nil {
		t.Fatal(err)
	}

	msg := testMessage(512 * 16) // interpreter-slow: still in flight when drain begins
	type enc struct {
		ct  []byte
		err error
	}
	done := make(chan enc, 1)
	go func() {
		ct, err := c.Encrypt(serve.ModeCTR, testIV, msg)
		done <- enc{ct, err}
	}()
	time.Sleep(10 * time.Millisecond) // let the request reach the backend

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request dropped by drain: %v", r.err)
	}
	if !bytes.Equal(r.ct, refCTR(blk, testIV, msg)) {
		t.Fatal("in-flight response corrupted by drain")
	}

	// The session was told why it ended: the next request surfaces the
	// drain notice (or the closed transport, if the teardown won).
	if _, err := c.Encrypt(serve.ModeECB, nil, testMessage(16)); err == nil {
		t.Fatal("session should be unusable after drain")
	} else if we := new(serve.WireError); errors.As(err, &we) && !serve.IsDraining(err) {
		t.Fatalf("post-drain error: %v", err)
	}

	// New connections are refused.
	if c2, err := client.Dial(s.Addr().String()); err == nil {
		c2.Close()
		t.Fatal("dial should fail after shutdown")
	}
}
