// Package datapath models the COBRA top-level architecture and interconnect
// (§3.1, figure 1): four interconnected 32-bit column datapaths, each a
// stack of RCEs (columns 1 and 3 carry RCE MULs), byte shufflers embedded
// before every odd row, sixteen embedded RAMs, whitening registers on the
// outputs of the last row, and a feedback multiplexor allowing iterative
// operation on the 128-bit data stream.
//
// Data flows from top to bottom through a fixed interconnect; every RCE
// receives the full 128-bit stream, with its column's block as the primary
// input INA and the remaining blocks as INB/INC/IND in ascending block
// order. The array advances one step per datapath clock cycle (Tick);
// registered RCEs latch at the end of the cycle, giving round-granular
// pipelining exactly as §4.1 describes.
package datapath

import (
	"fmt"
	"sort"
	"strings"

	"cobra/internal/bits"
	"cobra/internal/isa"
	"cobra/internal/rce"
)

// Architectural constants fixed by the paper.
const (
	// Cols is the number of 32-bit column datapaths (128-bit block).
	Cols = 4
	// BaseRows is the number of RCE rows in the base architecture.
	BaseRows = 4
	// ERAMBanks is the number of embedded RAMs serving each column.
	ERAMBanks = 4
	// ERAMWords is the capacity of one embedded RAM in 32-bit words.
	ERAMWords = 256
)

// Geometry describes an instance of the (tileable) architecture. The base
// architecture has 4 rows; §4 scales the architecture by adding rows, byte
// shufflers and eRAMs for deeper loop unrolling.
type Geometry struct {
	Rows int
}

// BaseGeometry returns the paper's base 4×4 configuration.
func BaseGeometry() Geometry { return Geometry{Rows: BaseRows} }

// Validate checks that the geometry is realizable: at least two rows (one
// shuffler) and an even row count so the row-pair/shuffler tiling holds.
func (g Geometry) Validate() error {
	if g.Rows < 2 || g.Rows%2 != 0 {
		return fmt.Errorf("datapath: geometry must have an even row count >= 2, got %d", g.Rows)
	}
	if g.Rows > 256 {
		return fmt.Errorf("datapath: row count %d exceeds the 8-bit slice row address", g.Rows)
	}
	return nil
}

// Shufflers returns the number of byte shufflers: one before each odd row
// (between rows 0/1 and rows 2/3 in the base architecture).
func (g Geometry) Shufflers() int { return g.Rows / 2 }

// MulColumn reports whether the column carries RCE MULs (columns 1 and 3).
func MulColumn(col int) bool { return col == 1 || col == 3 }

// whiteState is one column's whitening register.
type whiteState struct {
	mode    isa.WhiteMode
	atInput bool
	key     uint32
}

// apply performs the whitening operation on x when pos matches.
func (w whiteState) apply(x uint32, atInput bool) uint32 {
	if w.atInput != atInput {
		return x
	}
	switch w.mode {
	case isa.WhiteXor:
		return x ^ w.key
	case isa.WhiteAdd:
		return x + w.key
	default:
		return x
	}
}

// captureState is one column's eRAM capture port.
type captureState struct {
	enabled bool
	bank    uint8
	addr    uint8
}

// ERAMRef names one embedded-RAM cell.
type ERAMRef struct {
	Col, Bank, Addr int
}

// uninitTracker is the opt-in read-before-write sentinel over the embedded
// RAMs: it remembers which cells microcode has written (OpERAMWrite or a
// capture-port store) and records every advancing-cycle read — an RCE
// actively consuming its INER port, or an eRAM-playback input fetch — that
// hits a cell no write has reached. Package dataflow's uninit-read analysis
// claims exactly this set statically; the fuzz harness cross-checks the two
// in both directions.
type uninitTracker struct {
	written [Cols][ERAMBanks][ERAMWords]bool
	reads   map[ERAMRef]bool
}

func (t *uninitTracker) markWritten(col, bank, addr int) {
	t.written[col&3][bank&3][addr&0xff] = true
}

func (t *uninitTracker) readCell(col, bank, addr int) {
	col, bank, addr = col&3, bank&3, addr&0xff
	if t.written[col][bank][addr] {
		return
	}
	t.reads[ERAMRef{Col: col, Bank: bank, Addr: addr}] = true
}

// Array is the full reconfigurable datapath.
type Array struct {
	geo Geometry

	rces [][Cols]*rce.RCE
	shuf [][16]uint8 // shuf[i][dst] = src byte index

	eram [Cols][ERAMBanks][ERAMWords]uint32

	white   [Cols]whiteState
	capture [Cols]captureState
	inMux   isa.InMuxCfg

	regState [][Cols]uint32
	hold     [][Cols]bool // per-RCE output hold (OpDisOut on a slice)
	enabled  bool         // global datapath enable (OpEnOut/OpDisOut all)

	playAddr uint8 // eRAM playback address counter
	feedback bits.Block128
	output   bits.Block128

	uninit *uninitTracker // nil unless TrackUninit enabled the sentinel
}

// New builds an array for the geometry with every RCE in the identity
// configuration, identity shufflers, whitening off, external input selected
// and outputs enabled.
func New(geo Geometry) (*Array, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		geo:      geo,
		rces:     make([][Cols]*rce.RCE, geo.Rows),
		shuf:     make([][16]uint8, geo.Shufflers()),
		regState: make([][Cols]uint32, geo.Rows),
		hold:     make([][Cols]bool, geo.Rows),
		enabled:  true,
	}
	for r := range a.rces {
		for c := 0; c < Cols; c++ {
			a.rces[r][c] = rce.New(MulColumn(c))
		}
	}
	for i := range a.shuf {
		for b := 0; b < 16; b++ {
			a.shuf[i][b] = uint8(b)
		}
	}
	return a, nil
}

// Geometry returns the array geometry.
func (a *Array) Geometry() Geometry { return a.geo }

// RCE returns the element at (row, col) for inspection.
func (a *Array) RCE(row, col int) *rce.RCE { return a.rces[row][col] }

// forEach visits every RCE addressed by the slice.
func (a *Array) forEach(s isa.Slice, f func(row, col int) error) error {
	rows := a.geo.Rows
	switch s.Scope {
	case isa.ScopeOne:
		if int(s.Row) >= rows {
			return fmt.Errorf("datapath: slice row %d out of range (rows=%d)", s.Row, rows)
		}
		return f(int(s.Row), int(s.Col))
	case isa.ScopeCol:
		for r := 0; r < rows; r++ {
			if err := f(r, int(s.Col)); err != nil {
				return err
			}
		}
	case isa.ScopeRow:
		if int(s.Row) >= rows {
			return fmt.Errorf("datapath: slice row %d out of range (rows=%d)", s.Row, rows)
		}
		for c := 0; c < Cols; c++ {
			if err := f(int(s.Row), c); err != nil {
				return err
			}
		}
	default:
		for r := 0; r < rows; r++ {
			for c := 0; c < Cols; c++ {
				if err := f(r, c); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ApplyElem installs an element control word on every RCE in the slice.
func (a *Array) ApplyElem(s isa.Slice, e isa.Elem, data uint64) error {
	return a.forEach(s, func(r, c int) error {
		if e == isa.ElemD && !MulColumn(c) && s.Scope != isa.ScopeOne {
			// Broadcast D configuration skips plain-RCE columns so that a
			// whole-row configure of the multiplier is expressible.
			return nil
		}
		if err := a.rces[r][c].ApplyElem(e, data); err != nil {
			return fmt.Errorf("r%d.c%d: %w", r, c, err)
		}
		return nil
	})
}

// LoadLUT installs an OpLoadLUT group on every RCE in the slice.
func (a *Array) LoadLUT(s isa.Slice, addr uint16, data uint64) error {
	return a.forEach(s, func(r, c int) error {
		if err := a.rces[r][c].LoadLUT(addr, data); err != nil {
			return fmt.Errorf("r%d.c%d: %w", r, c, err)
		}
		return nil
	})
}

// SetOutEnable implements OpEnOut/OpDisOut. Scope-all toggles the global
// datapath enable used for overfull reconfiguration cycles (§3.4);
// narrower scopes freeze individual registered RCEs.
func (a *Array) SetOutEnable(s isa.Slice, enable bool) error {
	if s.Scope == isa.ScopeAll {
		a.enabled = enable
		return nil
	}
	return a.forEach(s, func(r, c int) error {
		a.hold[r][c] = !enable
		return nil
	})
}

// Enabled reports the global datapath enable state.
func (a *Array) Enabled() bool { return a.enabled }

// SetShuffler installs one half of shuffler idx's permutation.
func (a *Array) SetShuffler(idx int, cfg isa.ShufCfg) error {
	if idx < 0 || idx >= len(a.shuf) {
		return fmt.Errorf("datapath: shuffler %d out of range (have %d)", idx, len(a.shuf))
	}
	base := 0
	if cfg.High {
		base = 8
	}
	for i, p := range cfg.Perm {
		a.shuf[idx][base+i] = p & 15
	}
	return nil
}

// Shuffler returns shuffler idx's full permutation for inspection.
func (a *Array) Shuffler(idx int) [16]uint8 { return a.shuf[idx] }

// SetInMux configures the feedback/input multiplexor. Selecting eRAM
// playback resets the playback address counter to the configured start.
func (a *Array) SetInMux(cfg isa.InMuxCfg) {
	a.inMux = cfg
	if cfg.Mode == isa.InERAM {
		a.playAddr = cfg.Addr
	}
}

// InMux returns the current input multiplexor configuration.
func (a *Array) InMux() isa.InMuxCfg { return a.inMux }

// SetWhitening configures one column's whitening register.
func (a *Array) SetWhitening(cfg isa.WhiteCfg) {
	a.white[cfg.Col&3] = whiteState{mode: cfg.Mode, atInput: cfg.In, key: cfg.Key}
}

// WriteERAM stores a word in an embedded RAM (the key-load path).
func (a *Array) WriteERAM(col, bank, addr int, value uint32) {
	a.eram[col&3][bank&3][addr&0xff] = value
	if a.uninit != nil {
		a.uninit.markWritten(col, bank, addr)
	}
}

// TrackUninit arms the eRAM read-before-write sentinel with an empty
// written set and no recorded reads. Like the eRAM contents themselves the
// sentinel state survives Reset: written cells are explicit state loaded by
// microcode, and a reload replays the same writes.
func (a *Array) TrackUninit() {
	a.uninit = &uninitTracker{reads: make(map[ERAMRef]bool)}
}

// UninitReads returns every recorded read of a never-written eRAM cell,
// sorted by (col, bank, addr). It returns nil when the sentinel is off.
func (a *Array) UninitReads() []ERAMRef {
	if a.uninit == nil {
		return nil
	}
	out := make([]ERAMRef, 0, len(a.uninit.reads))
	for ref := range a.uninit.reads {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool {
		x, y := out[i], out[j]
		if x.Col != y.Col {
			return x.Col < y.Col
		}
		if x.Bank != y.Bank {
			return x.Bank < y.Bank
		}
		return x.Addr < y.Addr
	})
	return out
}

// ReadERAM returns an embedded RAM word for inspection.
func (a *Array) ReadERAM(col, bank, addr int) uint32 {
	return a.eram[col&3][bank&3][addr&0xff]
}

// SetCapture configures a column's eRAM capture port.
func (a *Array) SetCapture(col int, cfg isa.CaptureCfg) {
	a.capture[col&3] = captureState{enabled: cfg.Enabled, bank: cfg.Bank, addr: cfg.Addr}
}

// Whitening returns one column's whitening register configuration for
// inspection (the fastpath recorder snapshots it per cycle).
func (a *Array) Whitening(col int) isa.WhiteCfg {
	w := a.white[col&3]
	return isa.WhiteCfg{Col: uint8(col & 3), Mode: w.mode, In: w.atInput, Key: w.key}
}

// Capture returns one column's eRAM capture port configuration for
// inspection.
func (a *Array) Capture(col int) isa.CaptureCfg {
	c := a.capture[col&3]
	return isa.CaptureCfg{Enabled: c.enabled, Bank: c.bank, Addr: c.addr}
}

// Held reports whether the RCE at (row, col) has its output register frozen
// by a narrow-scope OpDisOut.
func (a *Array) Held(row, col int) bool { return a.hold[row][col] }

// RegValue returns the current output-register contents of the RCE at
// (row, col); meaningful only for registered RCEs.
func (a *Array) RegValue(row, col int) uint32 { return a.regState[row][col] }

// Feedback returns the current feedback-register contents (the whitened
// output of the last advancing cycle, as the feedback multiplexor sees it).
func (a *Array) Feedback() bits.Block128 { return a.feedback }

// PlaybackAddr returns the eRAM playback address counter.
func (a *Array) PlaybackAddr() uint8 { return a.playAddr }

// Output returns the whitened output of the most recent advancing cycle.
func (a *Array) Output() bits.Block128 { return a.output }

// TickInput carries the external input bus state for one datapath cycle.
type TickInput struct {
	External bits.Block128
	// HaveExternal reports whether the external system is presenting a
	// block this cycle; in external-input mode the datapath stalls when no
	// block is available.
	HaveExternal bool
}

// TickResult reports what one datapath cycle did.
type TickResult struct {
	// Advanced is false when the cycle was a stall (outputs disabled, or
	// external mode with no input available); registers hold their state.
	Advanced bool
	// ConsumedExternal reports that the external block was accepted.
	ConsumedExternal bool
	// Output is the whitened 128-bit result of this cycle (valid only when
	// Advanced).
	Output bits.Block128
}

// Tick advances the datapath by one datapath clock cycle. The evaluation is
// the standard two-phase register-transfer step: presented values flow
// combinationally from the input multiplexor down through the rows (byte
// shufflers applied before each odd row), registered RCEs present their
// stored value and latch their newly computed one at commit.
func (a *Array) Tick(in TickInput) TickResult {
	if !a.enabled {
		return TickResult{}
	}

	var vec bits.Block128
	consumed := false
	switch a.inMux.Mode {
	case isa.InExternal:
		if !in.HaveExternal {
			return TickResult{}
		}
		vec = in.External
		consumed = true
	case isa.InFeedback:
		vec = a.feedback
	case isa.InERAM:
		for c := 0; c < Cols; c++ {
			vec[c] = a.eram[c][a.inMux.Bank][a.playAddr]
			if a.uninit != nil {
				a.uninit.readCell(c, int(a.inMux.Bank), int(a.playAddr))
			}
		}
	}
	for c := 0; c < Cols; c++ {
		vec[c] = a.white[c].apply(vec[c], true)
	}

	// Phase 1: compute presented values and pending register updates. prev
	// is the one-row bypass bus: the vector that entered the previous row.
	next := make([][Cols]uint32, a.geo.Rows)
	latch := make([][Cols]bool, a.geo.Rows)
	prev := vec
	for r := 0; r < a.geo.Rows; r++ {
		if r%2 == 1 {
			vec = a.applyShuffler(r/2, vec)
		}
		rowIn := vec
		var out [Cols]uint32
		for c := 0; c < Cols; c++ {
			el := a.rces[r][c]
			inp := rce.Inputs{
				INA:  vec[c],
				INB:  vec[secondary(c, 0)],
				INC:  vec[secondary(c, 1)],
				IND:  vec[secondary(c, 2)],
				INER: a.eram[c][el.Cfg.ER.Bank][el.Cfg.ER.Addr],
				Prev: prev,
			}
			if a.uninit != nil && el.ReadsINER() &&
				!(el.Cfg.Reg.Enabled && a.hold[r][c]) {
				// The cycle consumes the INER word: an active element selects
				// it and the evaluated value is not discarded by a frozen
				// register.
				a.uninit.readCell(c, int(el.Cfg.ER.Bank), int(el.Cfg.ER.Addr))
			}
			v := el.Eval(inp)
			if el.Cfg.Reg.Enabled {
				out[c] = a.regState[r][c]
				if !a.hold[r][c] {
					next[r][c] = v
					latch[r][c] = true
				}
			} else {
				out[c] = v
			}
		}
		vec = bits.Block128(out)
		prev = rowIn
	}

	// Output whitening stage.
	for c := 0; c < Cols; c++ {
		vec[c] = a.white[c].apply(vec[c], false)
	}

	// Phase 2: commit.
	for r := 0; r < a.geo.Rows; r++ {
		for c := 0; c < Cols; c++ {
			if latch[r][c] {
				a.regState[r][c] = next[r][c]
			}
		}
	}
	for c := 0; c < Cols; c++ {
		if a.capture[c].enabled {
			a.eram[c][a.capture[c].bank][a.capture[c].addr] = vec[c]
			if a.uninit != nil {
				a.uninit.markWritten(c, int(a.capture[c].bank), int(a.capture[c].addr))
			}
			a.capture[c].addr++
		}
	}
	if a.inMux.Mode == isa.InERAM {
		a.playAddr++
	}
	a.feedback = vec
	a.output = vec

	return TickResult{Advanced: true, ConsumedExternal: consumed, Output: vec}
}

// secondary returns the block index of column c's k-th secondary input
// (k = 0 → INB, 1 → INC, 2 → IND): the remaining blocks grouped in
// ascending numerical order (§3.1).
func secondary(c, k int) int {
	b := k
	if b >= c {
		b++
	}
	return b
}

// applyShuffler permutes the 16 bytes of the stream through shuffler idx.
func (a *Array) applyShuffler(idx int, v bits.Block128) bits.Block128 {
	var out bits.Block128
	for dst := 0; dst < 16; dst++ {
		out = out.SetByte(dst, v.Byte(int(a.shuf[idx][dst])))
	}
	return out
}

// Reset restores power-up state: identity configurations, cleared
// registers, whitening off, external input, outputs enabled. eRAM contents
// are preserved (they are explicit state loaded by microcode).
func (a *Array) Reset() {
	for r := range a.rces {
		for c := 0; c < Cols; c++ {
			a.rces[r][c].Reset()
			a.regState[r][c] = 0
			a.hold[r][c] = false
		}
	}
	for i := range a.shuf {
		for b := 0; b < 16; b++ {
			a.shuf[i][b] = uint8(b)
		}
	}
	for c := 0; c < Cols; c++ {
		a.white[c] = whiteState{}
		a.capture[c] = captureState{}
	}
	a.inMux = isa.InMuxCfg{}
	a.enabled = true
	a.playAddr = 0
	a.feedback = bits.Block128{}
	a.output = bits.Block128{}
}

// Describe renders the architecture and interconnect: the textual
// equivalent of the paper's figure 1.
func (a *Array) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "COBRA array: %d rows x %d cols (128-bit datapath)\n", a.geo.Rows, Cols)
	b.WriteString("input multiplexor: ")
	b.WriteString(a.inMux.Mode.String())
	b.WriteString("\n")
	for r := 0; r < a.geo.Rows; r++ {
		if r%2 == 1 {
			fmt.Fprintf(&b, "  [byte shuffler %d]\n", r/2)
		}
		fmt.Fprintf(&b, "  row %d:", r)
		for c := 0; c < Cols; c++ {
			kind := "RCE"
			if MulColumn(c) {
				kind = "RCE MUL"
			}
			fmt.Fprintf(&b, "  c%d=%s", c, kind)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  [whitening registers]  [feedback multiplexor]\n")
	fmt.Fprintf(&b, "  eRAMs: %d banks x %d words x 32 bits per column (%d total)\n",
		ERAMBanks, ERAMWords, ERAMBanks*Cols)
	return b.String()
}
