package core

// Invalidation regression for the trace-compiled executor: a compiled
// trace encodes one program's configuration schedule and eRAM-resolved
// constants, so any microcode reload — rekey, algorithm switch, geometry
// change — must replace it. A stale trace would keep emitting the OLD
// key's ciphertext while reporting success; these tests rekey mid-batch
// and check the bytes against the host reference of the NEW key.

import (
	"bytes"
	"context"
	"testing"

	"cobra/internal/cipher"
)

func hostECB(t *testing.T, blk cipher.Block, src []byte) []byte {
	t.Helper()
	out := make([]byte, len(src))
	for off := 0; off < len(src); off += 16 {
		blk.Encrypt(out[off:], src[off:])
	}
	return out
}

// TestReconfigureMidBatchInvalidatesTrace encrypts half a message, rekeys
// the device through the same-geometry reload path (microcode reload on
// the existing machine — the in-place program.Load scenario), and encrypts
// the rest. The second half must come from the new key's schedule: if the
// reload left the old compiled trace wired in, the bytes would still match
// the old key.
func TestReconfigureMidBatchInvalidatesTrace(t *testing.T) {
	key2 := bytes.Repeat([]byte{0xd1, 0x4e}, 8)
	msg := make([]byte, 16*12)
	for i := range msg {
		msg[i] = byte(i * 11)
	}
	ref1, err := cipher.NewRC6(key)
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := cipher.NewRC6(key2)
	if err != nil {
		t.Fatal(err)
	}

	d, err := Configure(RC6, key, Config{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !d.UsesFastpath() {
		t.Fatalf("fastpath refused: %v", d.FastpathErr())
	}
	got1, err := d.EncryptECB(context.Background(), msg[:16*6])
	if err != nil {
		t.Fatal(err)
	}
	if want := hostECB(t, ref1, msg[:16*6]); !bytes.Equal(got1, want) {
		t.Fatalf("first half under key 1: got %x, want %x", got1, want)
	}

	// Same algorithm, same unroll → same geometry: this takes the
	// reload-in-place branch of Reconfigure.
	if err := d.Reconfigure(RC6, key2, Config{Unroll: 2}); err != nil {
		t.Fatal(err)
	}
	if !d.UsesFastpath() {
		t.Fatalf("fastpath refused after rekey: %v", d.FastpathErr())
	}
	got2, err := d.EncryptECB(context.Background(), msg[16*6:])
	if err != nil {
		t.Fatal(err)
	}
	if stale := hostECB(t, ref1, msg[16*6:]); bytes.Equal(got2, stale) {
		t.Fatal("rekeyed device reproduced the OLD key's ciphertext: stale compiled trace survived the reload")
	}
	if want := hostECB(t, ref2, msg[16*6:]); !bytes.Equal(got2, want) {
		t.Fatalf("second half under key 2: got %x, want %x", got2, want)
	}
	// The reload also restarts the counter chain.
	if st := d.Report().Stats; st.BlocksOut != 6 {
		t.Fatalf("stats not reset by reload: %+v", st)
	}
}

// TestReconfigureAcrossGeometriesInvalidatesTrace drives the rebuild
// branch (different array geometry → new machine, new trace) and back,
// checking ciphertext against each algorithm's host reference at every
// hop.
func TestReconfigureAcrossGeometriesInvalidatesTrace(t *testing.T) {
	msg := make([]byte, 16*5)
	for i := range msg {
		msg[i] = byte(0xe7 - i)
	}
	d, err := Configure(RC6, key, Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, hop := range []struct {
		alg Algorithm
		mk  func() (cipher.Block, error)
		cfg Config
	}{
		{Serpent, func() (cipher.Block, error) { return cipher.NewSerpentCOBRA(key) }, Config{}},
		{Rijndael, func() (cipher.Block, error) { return cipher.NewRijndael(key) }, Config{Unroll: 10}},
		{RC6, func() (cipher.Block, error) { return cipher.NewRC6(key) }, Config{Unroll: 1}},
	} {
		if err := d.Reconfigure(hop.alg, key, hop.cfg); err != nil {
			t.Fatalf("%s: %v", hop.alg, err)
		}
		if !d.UsesFastpath() {
			t.Fatalf("%s: fastpath refused: %v", hop.alg, d.FastpathErr())
		}
		ref, err := hop.mk()
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.EncryptECB(context.Background(), msg)
		if err != nil {
			t.Fatalf("%s: %v", hop.alg, err)
		}
		if want := hostECB(t, ref, msg); !bytes.Equal(got, want) {
			t.Fatalf("%s: ciphertext does not match host reference after geometry change", hop.alg)
		}
	}
}
